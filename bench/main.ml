(* The benchmark harness: regenerates every reproduced table/figure of
   the paper's evaluation (experiments E1-E10 and F2; see DESIGN.md and
   EXPERIMENTS.md), then runs bechamel microbenchmarks for the two
   timing-sensitive claims (layer crossing, shadow commit).

   Usage:
     bench/main.exe                   run everything
     bench/main.exe e4 e6             run selected experiments
     bench/main.exe micro             run only the microbenchmarks
     bench/main.exe --smoke           fast subset (CI; no microbenchmarks)
     bench/main.exe --json out.json   also write verdicts as JSON *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("bench setup failed: " ^ Errno.to_string e)

(* E1 microbench: getattr through 0/2/4/8 null layers. *)
let micro_layer_tests () =
  let disk = Disk.create ~nblocks:2048 ~block_size:1024 () in
  let t = ref 0 in
  let fs = get (Ufs.mkfs ~now:(fun () -> incr t; !t) disk) in
  let base = Ufs_vnode.root fs in
  List.map
    (fun depth ->
      let v = Null_layer.wrap_depth depth base in
      Test.make
        ~name:(Printf.sprintf "getattr/depth=%d" depth)
        (Staged.stage (fun () -> ignore (v.Vnode.getattr ()))))
    [ 0; 2; 4; 8 ]

(* E8 microbench: shadow-commit a whole file of each size. *)
let micro_shadow_tests () =
  List.map
    (fun size ->
      let disk = Disk.create ~nblocks:16384 ~block_size:1024 () in
      let t = ref 0 in
      let fs = get (Ufs.mkfs ~now:(fun () -> incr t; !t) disk) in
      let root = Ufs_vnode.root fs in
      let fid = { Ids.issuer = 1; uniq = 1 } in
      let data = String.make size 'x' in
      Test.make
        ~name:(Printf.sprintf "shadow-install/%dKiB" (size / 1024))
        (Staged.stage (fun () -> get (Shadow.install ~dir:root fid ~data))))
    [ 1024; 8192; 65536 ]

let run_micro () =
  let tests = micro_layer_tests () @ micro_shadow_tests () in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\nMicrobenchmarks (bechamel, monotonic clock)\n";
  Printf.printf "  %-28s %14s\n" "benchmark" "ns/op";
  Printf.printf "  %s\n" (String.make 44 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | Some [] | None -> nan
          in
          Printf.printf "  %-28s %14.1f\n" name ns)
        analyzed)
    tests;
  Printf.printf "  %s\n%!" (String.make 44 '-')

(* ------------------------------------------------------------------ *)

let print_summary verdicts =
  Printf.printf "\n";
  Printf.printf "Reproduction summary (paper claim vs. measured)\n";
  Printf.printf "  %s\n" (String.make 76 '=');
  List.iter
    (fun v ->
      Printf.printf "  %-4s %-9s %s\n" v.Experiments.experiment
        (if v.Experiments.holds then "HOLDS" else "FAILS")
        v.Experiments.claim;
      Printf.printf "       measured: %s\n" v.Experiments.detail)
    verdicts;
  let failed = List.filter (fun v -> not v.Experiments.holds) verdicts in
  Printf.printf "  %s\n" (String.make 76 '=');
  Printf.printf "  %d/%d claims reproduced\n%!"
    (List.length verdicts - List.length failed)
    (List.length verdicts)

(* Hand-rolled JSON (no JSON library in the dependency set). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~mode verdicts =
  let oc = open_out path in
  let failed = List.filter (fun v -> not v.Experiments.holds) verdicts in
  Printf.fprintf oc "{\n  \"schema\": \"ficus-bench/1\",\n  \"mode\": %S,\n" mode;
  Printf.fprintf oc "  \"reproduced\": %d,\n  \"total\": %d,\n"
    (List.length verdicts - List.length failed)
    (List.length verdicts);
  Printf.fprintf oc "  \"experiments\": [";
  List.iteri
    (fun i v ->
      Printf.fprintf oc "%s\n    { \"experiment\": \"%s\", \"holds\": %b, \"claim\": \"%s\", \"detail\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape v.Experiments.experiment)
        v.Experiments.holds
        (json_escape v.Experiments.claim)
        (json_escape v.Experiments.detail))
    verdicts;
  Printf.fprintf oc "\n  ]";
  (match !Experiments.last_lag_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"metrics\": {\n";
     Printf.fprintf oc "    \"spans\": %d,\n" m.Experiments.lm_spans;
     Printf.fprintf oc "    \"lag_p50\": %d,\n    \"lag_p95\": %d,\n    \"lag_p99\": %d,\n"
       m.Experiments.lm_lag_p50 m.Experiments.lm_lag_p95 m.Experiments.lm_lag_p99;
     Printf.fprintf oc "    \"per_replica\": {";
     List.iteri
       (fun i (host, (p50, p95, p99)) ->
         Printf.fprintf oc "%s\n      \"%s\": { \"lag_p50\": %d, \"lag_p95\": %d, \"lag_p99\": %d }"
           (if i = 0 then "" else ",")
           (json_escape host) p50 p95 p99)
       m.Experiments.lm_per_replica;
     Printf.fprintf oc "\n    },\n";
     Printf.fprintf oc "    \"journal_flushes\": %d,\n    \"journal_txns\": %d\n  }"
       m.Experiments.lm_journal_flushes m.Experiments.lm_journal_txns
   | None -> ());
  (match !Experiments.last_recon_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"reconciliation\": {\n";
     Printf.fprintf oc "    \"recon.full_rpcs\": %d,\n" m.Experiments.rm_full_rpcs;
     Printf.fprintf oc "    \"recon.rpcs\": %d,\n" m.Experiments.rm_incr_rpcs;
     Printf.fprintf oc "    \"recon.pruned_subtrees\": %d\n  }" m.Experiments.rm_pruned
   | None -> ());
  (match !Experiments.last_member_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"membership\": {\n";
     Printf.fprintf oc "    \"gossip.rounds_to_converge\": %d,\n"
       m.Experiments.mm_rounds_to_converge;
     Printf.fprintf oc "    \"gossip.suspect_events\": %d,\n"
       m.Experiments.mm_suspect_events;
     Printf.fprintf oc "    \"prop.rpcs_skipped_dead\": %d,\n"
       m.Experiments.mm_rpcs_skipped_dead;
     Printf.fprintf oc "    \"membership.eager_pushes\": %d,\n"
       m.Experiments.mm_eager_pushes;
     Printf.fprintf oc "    \"net.rpc.failed_seed\": %d,\n"
       m.Experiments.mm_failed_rpcs_seed;
     Printf.fprintf oc "    \"net.rpc.failed_gossip\": %d\n  }"
       m.Experiments.mm_failed_rpcs_gossip
   | None -> ());
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Printf.printf "\nWrote %s\n%!" path

(* The fast, deterministic subset for CI: no timing-sensitive
   experiments (E1 is wall-clock based), no parameter sweeps, no
   bechamel runs. *)
let smoke_names =
  [ "e2"; "e3"; "e4"; "e6"; "e9"; "e10"; "f2"; "a1"; "a3"; "a5"; "chaos"; "wal";
    "obslag"; "reconscale"; "member" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse args (json, smoke, rest) =
    match args with
    | [] -> (json, smoke, List.rev rest)
    | "--json" :: path :: tl -> parse tl (Some path, smoke, rest)
    | [ "--json" ] ->
      Printf.eprintf "--json requires a path\n";
      exit 2
    | "--smoke" :: tl -> parse tl (json, true, rest)
    | a :: tl -> parse tl (json, smoke, a :: rest)
  in
  let json, smoke, names = parse args (None, false, []) in
  let mode =
    if smoke then "smoke"
    else if names = [] then "full"
    else String.concat "+" names
  in
  let run_names names =
    List.filter_map
      (fun name ->
        if name = "micro" then begin
          run_micro ();
          None
        end
        else
          match Experiments.run_by_name name with
          | Some v -> Some v
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" name
              (String.concat ", " Experiments.names);
            exit 2)
      names
  in
  let verdicts =
    match (smoke, names) with
    | true, [] -> run_names smoke_names
    | true, _ ->
      Printf.eprintf "--smoke takes no experiment names\n";
      exit 2
    | false, [] ->
      let verdicts = Experiments.all () in
      run_micro ();
      verdicts
    | false, [ "micro" ] ->
      run_micro ();
      []
    | false, names -> run_names names
  in
  if verdicts <> [] then print_summary verdicts;
  (match json with Some path -> write_json path ~mode verdicts | None -> ());
  if List.exists (fun v -> not v.Experiments.holds) verdicts then exit 1
