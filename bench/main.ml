(* The benchmark harness: regenerates every reproduced table/figure of
   the paper's evaluation (experiments E1-E10 and F2; see DESIGN.md and
   EXPERIMENTS.md), then runs bechamel microbenchmarks for the two
   timing-sensitive claims (layer crossing, shadow commit).

   Usage:
     bench/main.exe                   run everything
     bench/main.exe e4 e6             run selected experiments
     bench/main.exe micro             run only the microbenchmarks
     bench/main.exe --smoke           fast subset (CI; no microbenchmarks)
     bench/main.exe --json out.json   also write verdicts as JSON
     bench/main.exe --scale-ops N     trace length for the SCALE benchmark
     bench/main.exe --scale-hosts N   cluster size for the SCALE benchmark
     bench/main.exe --scale-floor F   fail SCALE below F sim-ops/sec (CI gate)
     bench/main.exe --trace-out f     stream SCALE spans to f as Chrome
                                      trace-event JSONL (see Trace_export)
     bench/main.exe --check-schema f  validate a previously written JSON file *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("bench setup failed: " ^ Errno.to_string e)

(* E1 microbench: getattr through 0/2/4/8 null layers. *)
let micro_layer_tests () =
  let disk = Disk.create ~nblocks:2048 ~block_size:1024 () in
  let t = ref 0 in
  let fs = get (Ufs.mkfs ~now:(fun () -> incr t; !t) disk) in
  let base = Ufs_vnode.root fs in
  List.map
    (fun depth ->
      let v = Null_layer.wrap_depth depth base in
      Test.make
        ~name:(Printf.sprintf "getattr/depth=%d" depth)
        (Staged.stage (fun () -> ignore (v.Vnode.getattr ()))))
    [ 0; 2; 4; 8 ]

(* E8 microbench: shadow-commit a whole file of each size. *)
let micro_shadow_tests () =
  List.map
    (fun size ->
      let disk = Disk.create ~nblocks:16384 ~block_size:1024 () in
      let t = ref 0 in
      let fs = get (Ufs.mkfs ~now:(fun () -> incr t; !t) disk) in
      let root = Ufs_vnode.root fs in
      let fid = { Ids.issuer = 1; uniq = 1 } in
      let data = String.make size 'x' in
      Test.make
        ~name:(Printf.sprintf "shadow-install/%dKiB" (size / 1024))
        (Staged.stage (fun () -> get (Shadow.install ~dir:root fid ~data))))
    [ 1024; 8192; 65536 ]

let run_micro () =
  let tests = micro_layer_tests () @ micro_shadow_tests () in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\nMicrobenchmarks (bechamel, monotonic clock)\n";
  Printf.printf "  %-28s %14s\n" "benchmark" "ns/op";
  Printf.printf "  %s\n" (String.make 44 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | Some [] | None -> nan
          in
          Printf.printf "  %-28s %14.1f\n" name ns)
        analyzed)
    tests;
  Printf.printf "  %s\n%!" (String.make 44 '-')

(* ------------------------------------------------------------------ *)

let print_summary verdicts =
  Printf.printf "\n";
  Printf.printf "Reproduction summary (paper claim vs. measured)\n";
  Printf.printf "  %s\n" (String.make 76 '=');
  List.iter
    (fun v ->
      Printf.printf "  %-4s %-9s %s\n" v.Experiments.experiment
        (if v.Experiments.holds then "HOLDS" else "FAILS")
        v.Experiments.claim;
      Printf.printf "       measured: %s\n" v.Experiments.detail)
    verdicts;
  let failed = List.filter (fun v -> not v.Experiments.holds) verdicts in
  Printf.printf "  %s\n" (String.make 76 '=');
  Printf.printf "  %d/%d claims reproduced\n%!"
    (List.length verdicts - List.length failed)
    (List.length verdicts)

(* Hand-rolled JSON (no JSON library in the dependency set). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~mode verdicts =
  let oc = open_out path in
  let failed = List.filter (fun v -> not v.Experiments.holds) verdicts in
  Printf.fprintf oc "{\n  \"schema\": \"ficus-bench/1\",\n  \"mode\": %S,\n" mode;
  Printf.fprintf oc "  \"reproduced\": %d,\n  \"total\": %d,\n"
    (List.length verdicts - List.length failed)
    (List.length verdicts);
  Printf.fprintf oc "  \"experiments\": [";
  List.iteri
    (fun i v ->
      Printf.fprintf oc "%s\n    { \"experiment\": \"%s\", \"holds\": %b, \"claim\": \"%s\", \"detail\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape v.Experiments.experiment)
        v.Experiments.holds
        (json_escape v.Experiments.claim)
        (json_escape v.Experiments.detail))
    verdicts;
  Printf.fprintf oc "\n  ]";
  (match !Experiments.last_lag_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"metrics\": {\n";
     Printf.fprintf oc "    \"spans\": %d,\n" m.Experiments.lm_spans;
     Printf.fprintf oc "    \"lag_p50\": %d,\n    \"lag_p95\": %d,\n    \"lag_p99\": %d,\n"
       m.Experiments.lm_lag_p50 m.Experiments.lm_lag_p95 m.Experiments.lm_lag_p99;
     Printf.fprintf oc "    \"per_replica\": {";
     List.iteri
       (fun i (host, (p50, p95, p99)) ->
         Printf.fprintf oc "%s\n      \"%s\": { \"lag_p50\": %d, \"lag_p95\": %d, \"lag_p99\": %d }"
           (if i = 0 then "" else ",")
           (json_escape host) p50 p95 p99)
       m.Experiments.lm_per_replica;
     Printf.fprintf oc "\n    },\n";
     Printf.fprintf oc "    \"journal_flushes\": %d,\n    \"journal_txns\": %d\n  }"
       m.Experiments.lm_journal_flushes m.Experiments.lm_journal_txns
   | None -> ());
  (match !Experiments.last_recon_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"reconciliation\": {\n";
     Printf.fprintf oc "    \"recon.full_rpcs\": %d,\n" m.Experiments.rm_full_rpcs;
     Printf.fprintf oc "    \"recon.rpcs\": %d,\n" m.Experiments.rm_incr_rpcs;
     Printf.fprintf oc "    \"recon.pruned_subtrees\": %d\n  }" m.Experiments.rm_pruned
   | None -> ());
  (match !Experiments.last_member_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"membership\": {\n";
     Printf.fprintf oc "    \"gossip.rounds_to_converge\": %d,\n"
       m.Experiments.mm_rounds_to_converge;
     Printf.fprintf oc "    \"gossip.suspect_events\": %d,\n"
       m.Experiments.mm_suspect_events;
     Printf.fprintf oc "    \"prop.rpcs_skipped_dead\": %d,\n"
       m.Experiments.mm_rpcs_skipped_dead;
     Printf.fprintf oc "    \"membership.eager_pushes\": %d,\n"
       m.Experiments.mm_eager_pushes;
     Printf.fprintf oc "    \"net.rpc.failed_seed\": %d,\n"
       m.Experiments.mm_failed_rpcs_seed;
     Printf.fprintf oc "    \"net.rpc.failed_gossip\": %d\n  }"
       m.Experiments.mm_failed_rpcs_gossip
   | None -> ());
  (match !Experiments.last_consensus_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"consensus\": {\n";
     Printf.fprintf oc "    \"control.divergence_ticks\": %d,\n"
       m.Experiments.cn_raft_divergence_ticks;
     Printf.fprintf oc "    \"control.divergence_ticks_gossip\": %d,\n"
       m.Experiments.cn_gossip_divergence_ticks;
     Printf.fprintf oc "    \"rounds_to_agreement\": %d,\n"
       m.Experiments.cn_raft_rounds_to_agreement;
     Printf.fprintf oc "    \"rounds_to_agreement_gossip\": %d,\n"
       m.Experiments.cn_gossip_rounds_to_agreement;
     Printf.fprintf oc "    \"raft.leader_changes\": %d,\n"
       m.Experiments.cn_raft_leader_changes;
     Printf.fprintf oc "    \"control.unavailable_ticks\": %d,\n"
       m.Experiments.cn_raft_unavailable_ticks;
     Printf.fprintf oc "    \"control.ops\": %d,\n    \"control.failed_ops\": %d,\n"
       m.Experiments.cn_raft_control_ops m.Experiments.cn_raft_control_failed;
     Printf.fprintf oc "    \"data_available\": %b\n  }"
       m.Experiments.cn_data_available
   | None -> ());
  (match !Experiments.last_health_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"health\": {\n";
     Printf.fprintf oc "    \"health.divergence_ticks_max\": %d,\n"
       m.Experiments.hm_divergence_ticks_max;
     Printf.fprintf oc "    \"health.staleness_p99\": %d,\n"
       m.Experiments.hm_staleness_p99;
     Printf.fprintf oc "    \"health.events_degraded\": %d,\n"
       m.Experiments.hm_events_degraded;
     Printf.fprintf oc "    \"health.events_stuck\": %d,\n"
       m.Experiments.hm_events_stuck;
     Printf.fprintf oc "    \"health.quiescent_events\": %d,\n"
       m.Experiments.hm_quiescent_events;
     Printf.fprintf oc "    \"health.stuck_span\": %d,\n"
       m.Experiments.hm_stuck_span;
     Printf.fprintf oc "    \"profile.top_daemon\": \"%s\",\n"
       (json_escape m.Experiments.hm_top_daemon);
     Printf.fprintf oc "    \"profile.top_activations\": %d\n  }"
       m.Experiments.hm_top_activations
   | None -> ());
  (match !Experiments.last_delta_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"delta\": {\n";
     Printf.fprintf oc "    \"file_size\": %d,\n" m.Experiments.dm_file_size;
     Printf.fprintf oc "    \"prop.bytes_whole\": %d,\n" m.Experiments.dm_whole_bytes;
     Printf.fprintf oc "    \"prop.bytes\": %d,\n" m.Experiments.dm_delta_bytes;
     Printf.fprintf oc "    \"prop.bytes_saved\": %d,\n" m.Experiments.dm_saved;
     Printf.fprintf oc "    \"prop.chunks_hit\": %d,\n" m.Experiments.dm_chunks_hit;
     Printf.fprintf oc "    \"prop.chunks_miss\": %d,\n" m.Experiments.dm_chunks_miss;
     Printf.fprintf oc "    \"delta.ratio\": %.1f,\n" m.Experiments.dm_ratio;
     Printf.fprintf oc "    \"digests_equal\": %b\n  }" m.Experiments.dm_digests_equal
   | None -> ());
  (match !Experiments.last_merge_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"merge\": {\n";
     Printf.fprintf oc "    \"merge.converged\": %b,\n" m.Experiments.gm_crdt_converged;
     Printf.fprintf oc "    \"merge.digest_equal\": %b,\n"
       m.Experiments.gm_crdt_digest_equal;
     Printf.fprintf oc "    \"crdt.unreachable_dirs\": %d,\n"
       m.Experiments.gm_crdt_unreachable;
     Printf.fprintf oc "    \"crdt.cycles\": %d,\n" m.Experiments.gm_crdt_cycles;
     Printf.fprintf oc "    \"crdt.cycles_broken\": %d,\n"
       m.Experiments.gm_cycles_broken;
     Printf.fprintf oc "    \"crdt.orphans\": %d,\n" m.Experiments.gm_orphans_attached;
     Printf.fprintf oc "    \"crdt.losers_demoted\": %d,\n"
       m.Experiments.gm_losers_demoted;
     Printf.fprintf oc "    \"merge.payload_kept\": %b,\n"
       m.Experiments.gm_crdt_payload_kept;
     Printf.fprintf oc "    \"legacy.converged\": %b,\n"
       m.Experiments.gm_legacy_converged;
     Printf.fprintf oc "    \"legacy.digest_equal\": %b,\n"
       m.Experiments.gm_legacy_digest_equal;
     Printf.fprintf oc "    \"legacy.payload_kept\": %b,\n"
       m.Experiments.gm_legacy_payload_kept;
     Printf.fprintf oc "    \"legacy.conflicts\": %d\n  }"
       m.Experiments.gm_legacy_conflicts
   | None -> ());
  (match !Experiments.last_scale_metrics with
   | Some m ->
     Printf.fprintf oc ",\n  \"scale\": {\n";
     Printf.fprintf oc "    \"ops\": %d,\n    \"hosts\": %d,\n"
       m.Experiments.sm_ops m.Experiments.sm_hosts;
     Printf.fprintf oc "    \"wall_seconds\": %.3f,\n    \"sim_ops_per_sec\": %.1f,\n"
       m.Experiments.sm_wall_seconds m.Experiments.sm_ops_per_sec;
     Printf.fprintf oc "    \"errors\": %d,\n    \"pulls\": %d,\n"
       m.Experiments.sm_errors m.Experiments.sm_pulls;
     Printf.fprintf oc "    \"deterministic\": %b,\n" m.Experiments.sm_deterministic;
     Printf.fprintf oc "    \"linear_ticks_per_sec\": %.1f,\n"
       m.Experiments.sm_linear_ticks_per_sec;
     Printf.fprintf oc "    \"indexed_ticks_per_sec\": %.1f,\n"
       m.Experiments.sm_indexed_ticks_per_sec;
     Printf.fprintf oc "    \"quiescent_speedup\": %.2f,\n"
       m.Experiments.sm_quiescent_speedup;
     Printf.fprintf oc "    \"spans_cap\": %d,\n    \"spans_live\": %d,\n"
       m.Experiments.sm_spans_cap m.Experiments.sm_spans_live;
     Printf.fprintf oc "    \"spans_minted\": %d,\n    \"trace_spans\": %d,\n"
       m.Experiments.sm_spans_minted m.Experiments.sm_trace_spans;
     Printf.fprintf oc "    \"trace_complete\": %b,\n" m.Experiments.sm_trace_complete;
     Printf.fprintf oc "    \"floor\": %.1f\n  }" !Experiments.scale_floor
   | None -> ());
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Printf.printf "\nWrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Schema validation: the one authoritative list of keys a full bench
   JSON must carry.  CI's bench-smoke job runs `--check-schema` on its
   artifact instead of maintaining its own grep list; extending
   [write_json] means extending this list, and the check fails loudly
   when they drift. *)

let schema_keys =
  [
    (* envelope *)
    "schema"; "mode"; "reproduced"; "total"; "experiments";
    (* per-verdict *)
    "experiment"; "holds"; "claim"; "detail";
    (* observability (obslag) *)
    "metrics"; "spans"; "lag_p50"; "lag_p95"; "lag_p99"; "per_replica";
    "journal_flushes"; "journal_txns";
    (* reconciliation (reconscale) *)
    "reconciliation"; "recon.full_rpcs"; "recon.rpcs"; "recon.pruned_subtrees";
    (* membership (member) *)
    "membership"; "gossip.rounds_to_converge"; "gossip.suspect_events";
    "prop.rpcs_skipped_dead"; "membership.eager_pushes";
    "net.rpc.failed_seed"; "net.rpc.failed_gossip";
    (* control plane (consensus) *)
    "consensus"; "control.divergence_ticks"; "control.divergence_ticks_gossip";
    "rounds_to_agreement"; "rounds_to_agreement_gossip"; "raft.leader_changes";
    "control.unavailable_ticks"; "control.ops"; "control.failed_ops";
    "data_available";
    (* health plane (health) *)
    "health"; "health.divergence_ticks_max"; "health.staleness_p99";
    "health.events_degraded"; "health.events_stuck"; "health.quiescent_events";
    "health.stuck_span"; "profile.top_daemon"; "profile.top_activations";
    (* delta propagation (delta) *)
    "delta"; "file_size"; "prop.bytes_whole"; "prop.bytes"; "prop.bytes_saved";
    "prop.chunks_hit"; "prop.chunks_miss"; "delta.ratio"; "digests_equal";
    (* directory merge (merge) *)
    "merge"; "merge.converged"; "merge.digest_equal"; "crdt.unreachable_dirs";
    "crdt.cycles"; "crdt.cycles_broken"; "crdt.orphans"; "crdt.losers_demoted";
    "merge.payload_kept"; "legacy.converged"; "legacy.digest_equal";
    "legacy.payload_kept"; "legacy.conflicts";
    (* scale *)
    "scale"; "ops"; "hosts"; "wall_seconds"; "sim_ops_per_sec"; "errors";
    "pulls"; "deterministic"; "linear_ticks_per_sec"; "indexed_ticks_per_sec";
    "quiescent_speedup"; "spans_cap"; "spans_live"; "spans_minted";
    "trace_spans"; "trace_complete"; "floor";
  ]

let check_schema path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "--check-schema: cannot read %s: %s\n" path msg;
      exit 1
  in
  let contains key =
    (* Keys appear exactly as "key": in the hand-rolled output. *)
    let needle = Printf.sprintf "\"%s\":" key in
    let nl = String.length needle and cl = String.length contents in
    let rec scan i = i + nl <= cl && (String.sub contents i nl = needle || scan (i + 1)) in
    scan 0
  in
  let missing = List.filter (fun k -> not (contains k)) schema_keys in
  if not (String.length contents > 0 && contents.[0] = '{') then begin
    Printf.eprintf "--check-schema: %s does not look like a JSON object\n" path;
    exit 1
  end;
  if missing <> [] then begin
    Printf.eprintf "--check-schema: %s is missing key(s): %s\n" path
      (String.concat ", " missing);
    exit 1
  end;
  Printf.printf "%s: all %d schema keys present\n%!" path (List.length schema_keys)

(* The fast, deterministic subset for CI: no timing-sensitive
   experiments (E1 is wall-clock based), no parameter sweeps, no
   bechamel runs.  SCALE runs at a reduced trace length (see below) so
   the smoke artifact still carries the full JSON schema. *)
let smoke_names =
  [ "e2"; "e3"; "e4"; "e6"; "e9"; "e10"; "f2"; "a1"; "a3"; "a5"; "chaos"; "wal";
    "obslag"; "reconscale"; "member"; "consensus"; "health"; "delta"; "merge";
    "scale" ]

let smoke_scale_ops = 20_000

let int_arg flag v =
  match int_of_string_opt v with
  | Some n when n > 0 -> n
  | _ ->
    Printf.eprintf "%s requires a positive integer, got %S\n" flag v;
    exit 2

let float_arg flag v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 -> f
  | _ ->
    Printf.eprintf "%s requires a non-negative number, got %S\n" flag v;
    exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale_ops_set = ref false in
  let rec parse args (json, smoke, rest) =
    match args with
    | [] -> (json, smoke, List.rev rest)
    | "--json" :: path :: tl -> parse tl (Some path, smoke, rest)
    | [ "--json" ] ->
      Printf.eprintf "--json requires a path\n";
      exit 2
    | "--smoke" :: tl -> parse tl (json, true, rest)
    | "--check-schema" :: path :: _ ->
      (* A standalone mode: validate and stop. *)
      check_schema path;
      exit 0
    | [ "--check-schema" ] ->
      Printf.eprintf "--check-schema requires a path\n";
      exit 2
    | "--scale-ops" :: v :: tl ->
      Experiments.scale_ops := int_arg "--scale-ops" v;
      scale_ops_set := true;
      parse tl (json, smoke, rest)
    | "--scale-hosts" :: v :: tl ->
      Experiments.scale_hosts := int_arg "--scale-hosts" v;
      parse tl (json, smoke, rest)
    | "--scale-floor" :: v :: tl ->
      Experiments.scale_floor := float_arg "--scale-floor" v;
      parse tl (json, smoke, rest)
    | "--trace-out" :: path :: tl ->
      Experiments.scale_trace_out := Some path;
      parse tl (json, smoke, rest)
    | ([ "--scale-ops" ] | [ "--scale-hosts" ] | [ "--scale-floor" ]
      | [ "--trace-out" ]) as a ->
      Printf.eprintf "%s requires a value\n" (List.hd a);
      exit 2
    | a :: tl -> parse tl (json, smoke, a :: rest)
  in
  let json, smoke, names = parse args (None, false, []) in
  if smoke && not !scale_ops_set then Experiments.scale_ops := smoke_scale_ops;
  let mode =
    if smoke then "smoke"
    else if names = [] then "full"
    else String.concat "+" names
  in
  (* An experiment that dies — setup failure, unexpected exception —
     must still surface as a failing verdict: the JSON gets written, the
     summary shows the crash, and the process exits non-zero, so CI can
     never mistake a crashed run for a clean one. *)
  let run_one name =
    match Experiments.run_by_name name with
    | Some v -> Some v
    | None ->
      Printf.eprintf "unknown experiment %S (known: %s)\n" name
        (String.concat ", " Experiments.names);
      exit 2
    | exception e ->
      Printf.printf "  => %s: CRASHED (%s)\n%!" (String.uppercase_ascii name)
        (Printexc.to_string e);
      Some
        {
          Experiments.experiment = String.uppercase_ascii name;
          claim = "(experiment crashed)";
          holds = false;
          detail = Printexc.to_string e;
        }
  in
  let run_names names =
    List.filter_map
      (fun name ->
        if name = "micro" then begin
          run_micro ();
          None
        end
        else run_one name)
      names
  in
  let verdicts =
    match (smoke, names) with
    | true, [] -> run_names smoke_names
    | true, _ ->
      Printf.eprintf "--smoke takes no experiment names\n";
      exit 2
    | false, [] ->
      let verdicts = run_names Experiments.names in
      run_micro ();
      verdicts
    | false, [ "micro" ] ->
      run_micro ();
      []
    | false, names -> run_names names
  in
  if verdicts <> [] then print_summary verdicts;
  (match json with Some path -> write_json path ~mode verdicts | None -> ());
  if List.exists (fun v -> not v.Experiments.holds) verdicts then exit 1
