(* The health plane: the convergence watchdog's divergence gauge is
   held to its exact meaning — zero iff every replica dominates every
   installed version — over random partition/write/tick schedules, and
   a quiescent cluster soaked for thousands of ticks must raise no
   events at all (no false positives).  Plus unit coverage for the SLO
   classifier's confirm/edge-trigger semantics and the tick profiler. *)

open Util

let prop name ?(count = 100) arb f = QCheck.Test.make ~name ~count arb f

(* ------------------------------------------------------------------ *)
(* Ground truth: an independent walk of every replica's namespace.      *)

(* Collect (fidpath, version vector) for everything a replica stores,
   root included — written against the Physical API directly so it
   shares no code with the cluster's watchdog walk. *)
let version_map phys =
  let acc = ref [] in
  (match Physical.get_version phys [] with
  | Ok vi -> acc := ("", vi.Physical.vi_vv) :: !acc
  | Error _ -> ());
  let rec go path =
    match Physical.fetch_dir phys path with
    | Error _ -> ()
    | Ok fdir ->
      List.iter
        (fun (_name, (e : Fdir.entry)) ->
          let p = path @ [ e.Fdir.fid ] in
          (match Physical.get_version phys p with
          | Ok vi -> acc := (Ids.fidpath_to_string p, vi.Physical.vi_vv) :: !acc
          | Error _ -> ());
          match e.Fdir.kind with
          | Aux_attrs.Fdir | Aux_attrs.Fgraft -> go p
          | Aux_attrs.Freg -> ())
        (Fdir.live fdir)
  in
  go [];
  !acc

(* All replicas dominate all installed versions: for every ordered
   replica pair (a, b), every path b stores is present at a with a
   dominating version vector. *)
let all_dominate physes =
  let maps = List.map version_map physes in
  List.for_all
    (fun ma ->
      List.for_all
        (fun mb ->
          ma == mb
          || List.for_all
               (fun (key, vvb) ->
                 match List.assoc_opt key ma with
                 | None -> false
                 | Some vva -> Version_vector.dominates vva vvb)
               mb)
        maps)
    maps

(* ------------------------------------------------------------------ *)
(* qcheck: gauge = 0  <=>  converged, under random schedules            *)

type step = Write of int * int * int | Tick of int | Split of int | Heal

let step_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun h f tag -> Write (h, f, tag)) (int_bound 2) (int_bound 3) (int_bound 99));
        (4, map (fun n -> Tick (1 + (9 * n))) (int_bound 8));
        (2, map (fun cut -> Split cut) (int_bound 2));
        (3, return Heal);
      ])

let print_step = function
  | Write (h, f, tag) -> Printf.sprintf "w h%d f%d #%d" h f tag
  | Tick n -> Printf.sprintf "tick %d" n
  | Split cut -> Printf.sprintf "split@%d" cut
  | Heal -> "heal"

let schedule_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_step l))
    QCheck.Gen.(list_size (int_bound 20) step_gen)

(* Run one schedule on a health-enabled 3-host cluster, forcing a
   watchdog sample after every step and checking the gauge's iff
   against ground truth each time. *)
let gauge_matches_ground_truth schedule =
  let cluster =
    Cluster.create ~seed:11 ~nhosts:3 ~propagation_delay:10 ~reconcile_period:30
      ~health:Health.default_config ()
  in
  match Cluster.create_volume cluster ~on:[ 0; 1; 2 ] with
  | Error _ -> false
  | Ok vref ->
    let roots =
      List.filter_map
        (fun i -> Result.to_option (Cluster.logical_root cluster i vref))
        [ 0; 1; 2 ]
    in
    let m = (Cluster.obs cluster).Obs.metrics in
    let physes () =
      List.filter_map
        (fun i -> Cluster.replica (Cluster.host cluster i) vref)
        [ 0; 1; 2 ]
    in
    let check () =
      Cluster.health_sample_now cluster;
      let gauge = Metrics.gauge m "health.divergence_age" in
      gauge = 0 = all_dominate (physes ())
    in
    List.length roots = 3
    && List.for_all
         (fun s ->
           (match s with
           | Write (h, f, tag) ->
             let root = List.nth roots h in
             let name = Printf.sprintf "f%d" f in
             let file =
               match root.Vnode.lookup name with
               | Ok v -> Some v
               | Error Errno.ENOENT -> Result.to_option (root.Vnode.create name)
               | Error _ -> None
             in
             (match file with
             | Some v -> ignore (Vnode.write_all v (Printf.sprintf "h%d:%d" h tag))
             | None -> ())
           | Tick n -> ignore (Cluster.tick_daemons cluster n)
           | Split cut -> Cluster.partition cluster [ [ cut ]; List.filter (( <> ) cut) [ 0; 1; 2 ] ]
           | Heal -> Cluster.heal cluster);
           check ())
         schedule
    && begin
         (* Heal and settle: the gauge must come back to zero once the
            schedule's damage is actually repaired. *)
         Cluster.heal cluster;
         for _ = 1 to 12 do
           ignore (Cluster.tick_daemons cluster 30)
         done;
         (match Cluster.converge cluster vref ~max_rounds:30 () with Ok _ | Error _ -> ());
         check ()
       end

let divergence_props =
  [
    prop "divergence gauge = 0 iff all replicas dominate" ~count:30 schedule_arb
      gauge_matches_ground_truth;
  ]

(* ------------------------------------------------------------------ *)
(* Quiescent soak: no false positives                                   *)

let test_quiescent_soak () =
  let cluster =
    Cluster.create ~nhosts:3 ~health:Health.default_config ~gossip:Gossip.default_config ()
  in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let f = ok (root0.Vnode.create "steady") in
  ok (Vnode.write_all f "settled state");
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  (* Soak at the gossip period: a coarser cron would starve heartbeats
     and manufacture suspicion the health plane must not report. *)
  let period = Gossip.default_config.Gossip.period in
  for _ = 1 to 600 do
    ignore (Cluster.tick_daemons cluster period)
  done;
  Cluster.health_sample_now cluster;
  let m = (Cluster.obs cluster).Obs.metrics in
  Alcotest.(check int) "no events" 0 (List.length (Cluster.health_events cluster));
  Alcotest.(check int) "divergence zero" 0 (Metrics.gauge m "health.divergence_age");
  Alcotest.(check int) "staleness zero" 0 (Metrics.gauge m "health.staleness");
  Alcotest.(check int) "no suspects" 0 (Metrics.gauge m "health.gossip_suspects")

(* ------------------------------------------------------------------ *)
(* SLO classifier semantics                                             *)

let test_confirm_and_edge_trigger () =
  let h = Health.create { Health.period = 1; slos = [ ("g", Health.slo ~confirm:2 ~degraded:10 ~stuck:100 ()) ] } in
  let obs tick value = Health.observe h ~tick ~gauge:"g" ~value ~span:Span.none ~detail:"" in
  obs 1 50;
  Alcotest.(check int) "one breach below confirm: silent" 0 (Health.events_degraded h);
  obs 2 50;
  Alcotest.(check int) "second consecutive breach fires" 1 (Health.events_degraded h);
  obs 3 60;
  Alcotest.(check int) "still degraded: edge-triggered, no refire" 1 (Health.events_degraded h);
  obs 4 150;
  Alcotest.(check int) "stuck needs its own confirm streak" 0 (Health.events_stuck h);
  obs 5 150;
  Alcotest.(check int) "stuck confirmed" 1 (Health.events_stuck h);
  obs 6 0;
  Alcotest.(check int) "healthy sample recovers" 1 (Health.recoveries h);
  Alcotest.(check bool) "re-armed" true (Health.current_level h "g" = None);
  obs 7 50;
  obs 8 50;
  Alcotest.(check int) "re-escalation fires again" 2 (Health.events_degraded h);
  (* The streak must be consecutive: a dip resets it. *)
  let h2 = Health.create { Health.period = 1; slos = [ ("g", Health.slo ~confirm:3 ~degraded:10 ~stuck:100 ()) ] } in
  let obs2 tick value = Health.observe h2 ~tick ~gauge:"g" ~value ~span:Span.none ~detail:"" in
  obs2 1 50; obs2 2 50; obs2 3 0; obs2 4 50; obs2 5 50;
  Alcotest.(check int) "dip resets the confirm streak" 0 (Health.events_degraded h2);
  match Health.events h with
  | e :: _ ->
    Alcotest.(check string) "event carries the gauge" "g" e.Health.hv_gauge;
    Alcotest.(check int) "event carries the limit" 10 e.Health.hv_limit
  | [] -> Alcotest.fail "expected events"

let test_slo_validation () =
  Alcotest.check_raises "degraded must be positive" (Invalid_argument "Health.slo")
    (fun () -> ignore (Health.slo ~degraded:0 ~stuck:5 ()));
  Alcotest.check_raises "stuck below degraded rejected" (Invalid_argument "Health.slo")
    (fun () -> ignore (Health.slo ~degraded:10 ~stuck:5 ()));
  Alcotest.check_raises "confirm must be >= 1" (Invalid_argument "Health.slo")
    (fun () -> ignore (Health.slo ~confirm:0 ~degraded:1 ~stuck:2 ()))

(* ------------------------------------------------------------------ *)
(* Tick profiler                                                        *)

let test_profiler_rows () =
  let p = Health.Profile.create () in
  Health.Profile.record p ~daemon:"prop" ~activations:3 ~work:7 ~us:120;
  Health.Profile.record p ~daemon:"prop" ~activations:1 ~work:2 ~us:40;
  Health.Profile.record p ~daemon:"recon" ~activations:1 ~work:1 ~us:900;
  (match Health.Profile.top p with
  | Some r ->
    Alcotest.(check string) "top talker by self-time" "recon" r.Health.Profile.pr_daemon;
    Alcotest.(check int) "self time summed" 900 r.Health.Profile.pr_us
  | None -> Alcotest.fail "expected a top row");
  (match Health.Profile.rows p with
  | [ a; b ] ->
    Alcotest.(check string) "order" "recon" a.Health.Profile.pr_daemon;
    Alcotest.(check string) "order" "prop" b.Health.Profile.pr_daemon;
    Alcotest.(check int) "phase ticks" 2 b.Health.Profile.pr_ticks;
    Alcotest.(check int) "activations" 4 b.Health.Profile.pr_activations;
    Alcotest.(check int) "work" 9 b.Health.Profile.pr_work
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  Alcotest.(check bool) "histogram buckets recorded" true
    (List.length (Health.Profile.us_histogram p "prop") >= 1)

let test_cluster_profiler_populates () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let f = ok (root0.Vnode.create "busy") in
  for i = 1 to 5 do
    ok (Vnode.write_all f (Printf.sprintf "rev %d" i));
    ignore (Cluster.tick_daemons cluster 25)
  done;
  let rows = Health.Profile.rows (Cluster.profile cluster) in
  let daemons = List.map (fun r -> r.Health.Profile.pr_daemon) rows in
  List.iter
    (fun d ->
      Alcotest.(check bool) (d ^ " profiled") true (List.mem d daemons))
    [ "prop"; "recon"; "gossip"; "raft"; "journal" ];
  let prop_row = List.find (fun r -> r.Health.Profile.pr_daemon = "prop") rows in
  Alcotest.(check bool) "propagation did work" true (prop_row.Health.Profile.pr_work >= 1)

let suite =
  List.map QCheck_alcotest.to_alcotest divergence_props
  @ [
      case "quiescent soak: zero events, zero gauges" test_quiescent_soak;
      case "slo: confirm hold and edge-triggered events" test_confirm_and_edge_trigger;
      case "slo: constructor validation" test_slo_validation;
      case "profiler: rows, top talker, histogram" test_profiler_rows;
      case "profiler: cluster ticks populate all daemons" test_cluster_profiler_populates;
    ]
