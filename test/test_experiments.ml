(* Keep the headline reproduction results under test: the fast
   experiments run inside `dune runtest` and must HOLD.  (The full set,
   including the slower sweeps and timing benches, runs from
   bench/main.exe.) *)

let verdict_holds name () =
  match Experiments.run_by_name name with
  | None -> Alcotest.failf "unknown experiment %s" name
  | Some v ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s" v.Experiments.experiment v.Experiments.claim)
      true v.Experiments.holds

let suite =
  List.map
    (fun name -> Alcotest.test_case ("experiment " ^ name) `Slow (verdict_holds name))
    [ "e2"; "e3"; "e4"; "e6"; "e9"; "e10"; "f2"; "a1"; "a3"; "a5"; "chaos"; "wal";
      "obslag"; "reconscale"; "member"; "consensus"; "health"; "delta"; "merge" ]
