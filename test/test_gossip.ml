(* Gossip membership: algebraic laws of the anti-entropy merge (the
   entry join is a semilattice, so any delivery order with duplicates
   converges), the heartbeat failure detector's lifecycle, and
   remove_replica-during-partition converging everywhere after heal. *)

open Util

(* ------------------------------------------------------------------ *)
(* entry_join laws (qcheck)                                            *)

let mk_entry (host, ((inc, hb), ((left, cindex), (reps, span)))) =
  {
    Gossip.e_host = host;
    e_incarnation = 1 + inc;
    e_heartbeat = hb;
    e_status = (if left then Gossip.Left else Gossip.Member);
    e_replicas = List.sort_uniq compare reps;
    e_cindex = cindex;
    e_span = span;
  }

let entry_body_gen =
  QCheck.Gen.(
    pair
      (pair (int_bound 2) (int_bound 6))
      (pair
         (pair bool (int_bound 5))
         (pair
            (list_size (int_bound 3)
               (triple (int_bound 1) (int_bound 2) (int_range 1 4)))
            (int_bound 3))))

let entry_to_string (e : Gossip.entry) =
  Printf.sprintf "%s/inc=%d/hb=%d/%s/%d replicas/span=%d" e.Gossip.e_host
    e.Gossip.e_incarnation e.Gossip.e_heartbeat
    (match e.Gossip.e_status with Gossip.Member -> "member" | Gossip.Left -> "left")
    (List.length e.Gossip.e_replicas)
    e.Gossip.e_span

(* All entries for one host: [entry_join] only joins same-host entries. *)
let arb_entry =
  QCheck.make ~print:entry_to_string
    QCheck.Gen.(map (fun b -> mk_entry ("h", b)) entry_body_gen)

(* Entries across a few hosts, as a gossip delta stream. *)
let arb_stream =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map entry_to_string l))
    QCheck.Gen.(
      list_size (int_bound 12)
        (map mk_entry (pair (oneofl [ "a"; "b"; "c" ]) entry_body_gen)))

(* A membership table is a fold of entry_join per host — exactly what
   applying a stream of received gossip deltas does. *)
let apply stream =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (e : Gossip.entry) ->
      match Hashtbl.find_opt table e.Gossip.e_host with
      | None -> Hashtbl.replace table e.Gossip.e_host e
      | Some old -> Hashtbl.replace table e.Gossip.e_host (Gossip.entry_join old e))
    stream;
  Hashtbl.fold (fun h e acc -> (h, e) :: acc) table []
  |> List.sort compare

let prop name ?(count = 300) arb f = QCheck.Test.make ~name ~count arb f

let props =
  [
    prop "entry_join commutative" (QCheck.pair arb_entry arb_entry)
      (fun (a, b) -> Gossip.entry_join a b = Gossip.entry_join b a);
    prop "entry_join associative"
      (QCheck.triple arb_entry arb_entry arb_entry)
      (fun (a, b, c) ->
        Gossip.entry_join a (Gossip.entry_join b c)
        = Gossip.entry_join (Gossip.entry_join a b) c);
    prop "entry_join idempotent" arb_entry (fun a -> Gossip.entry_join a a = a);
    prop "entry_join is an upper bound" (QCheck.pair arb_entry arb_entry)
      (fun (a, b) ->
        let j = Gossip.entry_join a b in
        compare (Gossip.entry_key j) (Gossip.entry_key a) >= 0
        && compare (Gossip.entry_key j) (Gossip.entry_key b) >= 0);
    (* Anti-entropy exchange order doesn't matter... *)
    prop "table merge order-insensitive" (QCheck.pair arb_stream arb_stream)
      (fun (l1, l2) -> apply (l1 @ l2) = apply (l2 @ l1));
    prop "table merge reversal-insensitive" arb_stream (fun l ->
        apply l = apply (List.rev l));
    (* ...and neither do duplicated deliveries. *)
    prop "table merge duplicate-insensitive" arb_stream (fun l ->
        apply (l @ l) = apply l);
  ]

(* ------------------------------------------------------------------ *)
(* Failure-detector lifecycle (real daemons over a cluster)            *)

let test_failure_detector () =
  let cfg = Gossip.default_config in
  let cluster = Cluster.create ~seed:7 ~nhosts:3 ~gossip:cfg () in
  let g0 = Option.get (Cluster.gossip (Cluster.host cluster 0)) in
  let round () = ignore (Cluster.tick_daemons cluster cfg.Gossip.period) in
  for _ = 1 to 4 do round () done;
  Alcotest.(check bool) "host2 alive while gossiping" true
    (Gossip.liveness g0 "host2" = Gossip.Alive);
  Cluster.set_flaky cluster 2
    ~until:(Clock.now (Cluster.clock cluster) + 10_000);
  for _ = 1 to cfg.Gossip.suspect_missed + 1 do round () done;
  Alcotest.(check bool) "host2 doubtful after silent periods" true
    (Gossip.liveness g0 "host2" <> Gossip.Alive);
  for _ = 1 to cfg.Gossip.dead_missed do round () done;
  Alcotest.(check bool) "host2 dead after more silence" true
    (Gossip.liveness g0 "host2" = Gossip.Dead);
  (* The verdict is advisory and revocable: once the host talks again
     (dead peers still get probed), fresher state refutes the rumor. *)
  Cluster.heal cluster;
  let n = ref 0 in
  while Gossip.liveness g0 "host2" <> Gossip.Alive && !n < 64 do
    round ();
    incr n
  done;
  Alcotest.(check bool) "host2 refuted back to alive" true
    (Gossip.liveness g0 "host2" = Gossip.Alive)

(* ------------------------------------------------------------------ *)
(* remove_replica inside a partition converges everywhere after heal   *)

let test_remove_during_partition () =
  let cfg = Gossip.default_config in
  let cluster = Cluster.create ~seed:5 ~nhosts:6 ~gossip:cfg () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let round () = ignore (Cluster.tick_daemons cluster cfg.Gossip.period) in
  let settle limit =
    let n = ref 0 in
    while (not (Cluster.membership_converged cluster)) && !n < limit do
      round ();
      incr n
    done
  in
  settle 64;
  Alcotest.(check bool) "bootstrap membership converged" true
    (Cluster.membership_converged cluster);
  Cluster.partition cluster [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ];
  (* host2 retires its replica (rid 3): a purely local operation whose
     delta can only reach partition A for now. *)
  ok (Cluster.remove_replica cluster ~host:2 vref);
  for _ = 1 to 4 do round () done;
  Alcotest.(check bool) "views diverge across the partition" false
    (Cluster.membership_converged cluster);
  (match Cluster.replica (Cluster.host cluster 0) vref with
  | Some phys ->
    Alcotest.(check bool) "partition A already dropped rid 3" false
      (List.mem_assoc 3 (Physical.peers phys))
  | None -> Alcotest.fail "host0 lost its replica");
  Cluster.heal cluster;
  settle 64;
  Alcotest.(check bool) "membership converged after heal" true
    (Cluster.membership_converged cluster);
  List.iter
    (fun i ->
      match Cluster.gossip (Cluster.host cluster i) with
      | Some g ->
        Alcotest.(check bool)
          (Printf.sprintf "host%d's view dropped rid 3" i)
          false
          (List.mem_assoc 3
             (Gossip.replica_peers g ~alloc:vref.Ids.alloc ~vol:vref.Ids.vol))
      | None -> Alcotest.fail "gossip daemon missing")
    [ 0; 1; 2; 3; 4; 5 ];
  (* And the volume still works end to end with the survivor set. *)
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let f = ok (root0.Vnode.create "after-retirement") in
  ok (Vnode.write_all f "still available");
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "survivors replicate" "still available"
    (read_file root1 "after-retirement")

let suite =
  List.map QCheck_alcotest.to_alcotest props
  @ [
      Alcotest.test_case "failure detector lifecycle" `Quick test_failure_detector;
      Alcotest.test_case "remove_replica during partition converges after heal"
        `Quick test_remove_during_partition;
    ]
