(* Observability: the metrics registry's quantile math, causal span
   timelines across hosts (under injected network faults), and the
   `.#ficus#stats` ctl-name export through both a local and an
   NFS-interposed stack. *)

open Util

(* ---------------- histogram quantiles ---------------- *)

let test_hist_known_distribution () =
  let m = Metrics.create () in
  (* 1..100 once each: nearest-rank percentiles are exact. *)
  for v = 1 to 100 do
    Metrics.observe m "lat" v
  done;
  Alcotest.(check (option int)) "p50" (Some 50) (Metrics.percentile m "lat" 50.);
  Alcotest.(check (option int)) "p95" (Some 95) (Metrics.percentile m "lat" 95.);
  Alcotest.(check (option int)) "p99" (Some 99) (Metrics.percentile m "lat" 99.);
  Alcotest.(check (option int)) "p100" (Some 100) (Metrics.percentile m "lat" 100.);
  Alcotest.(check (option (triple int int int)))
    "percentiles triple" (Some (50, 95, 99)) (Metrics.percentiles m "lat");
  Alcotest.(check int) "count" 100 (Metrics.hist_count m "lat");
  Alcotest.(check int) "sum" 5050 (Metrics.hist_sum m "lat")

let test_hist_skewed_distribution () =
  let m = Metrics.create () in
  (* Nine fast observations and one slow outlier: the median must ignore
     the outlier, the tail must see it. *)
  for _ = 1 to 9 do
    Metrics.observe m "lat" 1
  done;
  Metrics.observe m "lat" 100;
  Alcotest.(check (option (triple int int int)))
    "skew percentiles" (Some (1, 100, 100)) (Metrics.percentiles m "lat");
  Alcotest.(check (option int)) "p90 stays low" (Some 1) (Metrics.percentile m "lat" 90.);
  (* Empty histogram: no invented numbers. *)
  Alcotest.(check (option int)) "missing hist" None (Metrics.percentile m "nope" 50.)

let test_snapshot_render () =
  let m = Metrics.create () in
  Metrics.incr m "ops";
  Metrics.add m "ops" 2;
  Metrics.gauge_set m "depth" 7;
  Metrics.observe m "lat" 4;
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "counter in snapshot" 3 (List.assoc "ops" snap.Metrics.snap_counters);
  Alcotest.(check int) "gauge in snapshot" 7 (List.assoc "depth" snap.Metrics.snap_gauges);
  let body = Metrics.render snap in
  let has needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (has "counter ops 3");
  Alcotest.(check bool) "gauge line" true (has "gauge depth 7");
  Alcotest.(check bool) "hist line" true (has "hist lat count=1 sum=4 max=4")

(* ---------------- cross-host span timelines ---------------- *)

let contains_sub body needle =
  let nl = String.length needle and bl = String.length body in
  let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
  go 0

(* [labels] must contain [expected] as a (not necessarily contiguous)
   subsequence — events from other stages may interleave. *)
let rec is_subseq expected labels =
  match (expected, labels) with
  | [], _ -> true
  | _, [] -> false
  | e :: etl, l :: ltl -> if e = l then is_subseq etl ltl else is_subseq expected ltl

let test_span_timeline_cross_host () =
  (* Latency, duplication and reordering injected — the timeline must
     still come out causally ordered because every event carries the
     simulated clock. *)
  let faults =
    {
      Sim_net.no_faults with
      latency_min = 1;
      latency_max = 3;
      duplication_prob = 0.3;
      reorder_prob = 0.3;
    }
  in
  let cluster =
    Cluster.create ~faults ~selection:Logical.Prefer_local ~journal_blocks:256
      ~nhosts:2 ()
  in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let f = ok (root0.Vnode.create "f") in
  ok (Vnode.write_all f "traced payload");
  (* Drive daemons long enough for delivery (latency), the pull, and the
     age-based journal flush. *)
  for _ = 1 to 30 do
    ignore (Cluster.tick_daemons cluster 1)
  done;
  let snap = Cluster.metrics_snapshot cluster in
  let timelines = snap.Cluster.ms_spans in
  Alcotest.(check bool) "spans recorded" true (List.length timelines >= 2);
  (* Find the write's span by its originating event. *)
  let write_tl =
    match
      List.find_opt
        (fun (_, tl) ->
          match tl with e :: _ -> e.Span.e_label = "update:write" | [] -> false)
        timelines
    with
    | Some (_, tl) -> tl
    | None -> Alcotest.fail "no update:write span"
  in
  let labels = List.map (fun e -> e.Span.e_label) write_tl in
  Alcotest.(check bool)
    (* write at host0 -> version bump -> notify multicast -> cache entry
       at host1 -> pull -> shadow swap -> install: the full pipeline on
       one timeline. *)
    "causal pipeline order" true
    (is_subseq
       [
         "update:write";
         "phys:update";
         "notify:send";
         "nvc:note";
         "prop:pull";
         "shadow:swap";
         "install:prop";
       ]
       labels);
  Alcotest.(check bool) "journal commit attributed" true
    (List.mem "journal:commit" labels);
  (* Ticks are non-decreasing along the timeline. *)
  let sorted = ref true in
  let rec chk = function
    | a :: (b :: _ as tl) ->
      if a.Span.e_tick > b.Span.e_tick then sorted := false;
      chk tl
    | _ -> ()
  in
  chk write_tl;
  Alcotest.(check bool) "ticks monotone" true !sorted;
  (* Origin and installer are on different hosts. *)
  let first = List.hd write_tl in
  let install =
    List.find (fun e -> e.Span.e_label = "install:prop") write_tl
  in
  Alcotest.(check string) "originates at host0" "host0" first.Span.e_host;
  Alcotest.(check string) "installs at host1" "host1" install.Span.e_host;
  (* The same snapshot carries the cluster-wide lag histogram and the
     journal gauges. *)
  let metrics = snap.Cluster.ms_metrics in
  let lag =
    List.find_opt (fun h -> h.Metrics.hs_name = "prop.lag") metrics.Metrics.snap_hists
  in
  (match lag with
   | None -> Alcotest.fail "no prop.lag histogram"
   | Some h ->
     Alcotest.(check bool) "lag observed" true (h.Metrics.hs_count >= 1);
     Alcotest.(check bool) "lag positive" true (h.Metrics.hs_p50 > 0));
  Alcotest.(check bool) "per-replica lag" true
    (List.exists
       (fun h -> h.Metrics.hs_name = "prop.lag.host1")
       metrics.Metrics.snap_hists);
  Alcotest.(check bool) "journal flushes folded in" true
    (List.assoc "journal.flushes" metrics.Metrics.snap_gauges >= 1)

(* ---------------- `.#ficus#stats` export ---------------- *)

let test_stats_ctl_local_and_nfs () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let f = ok (root0.Vnode.create "f") in
  ok (Vnode.write_all f "local bytes");
  (* Local stack: logical layer passes the ctl name straight through to
     the co-resident physical layer. *)
  let body_local = ok (Remote.stats root0) in
  Alcotest.(check bool) "local body non-empty" true (String.length body_local > 0);
  Alcotest.(check bool) "local counters present" true
    (contains_sub body_local "counter ");
  Alcotest.(check bool) "local spans present" true (contains_sub body_local "span ");
  (* Remote stack: host1 has no replica, so every operation — including
     the ctl lookup — crosses the interposed NFS client/server pair. *)
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  let f1 = ok (root1.Vnode.lookup "f") in
  ok (Vnode.write_all f1 "written across NFS");
  let body_nfs = ok (Remote.stats root1) in
  Alcotest.(check bool) "NFS body non-empty" true (String.length body_nfs > 0);
  Alcotest.(check bool) "NFS counters present" true (contains_sub body_nfs "counter ");
  (* The cross-NFS write's span recorded both sides of the wire. *)
  Alcotest.(check bool) "rpc event traced" true (contains_sub body_nfs "nfs:rpc");
  Alcotest.(check bool) "serve event traced" true (contains_sub body_nfs "nfs:serve");
  Alcotest.(check bool) "stats op counted" true
    (contains_sub body_nfs "phys.ctl.stats")

(* ---------------- retention, eviction status, export hook ---------------- *)

let test_span_status_evicted_vs_unknown () =
  let s = Span.create () in
  Span.set_retention s 2;
  let a = Span.start s ~host:"h" ~tick:1 "first" in
  let b = Span.start s ~host:"h" ~tick:2 "second" in
  let c = Span.start s ~host:"h" ~tick:3 "third" in
  (* Cap 2: minting [c] evicted [a]. *)
  Alcotest.(check int) "one eviction" 1 (Span.evicted s);
  Alcotest.(check int) "two live" 2 (Span.live s);
  Alcotest.(check bool) "oldest evicted" true (Span.status s a = Span.Evicted);
  Alcotest.(check bool) "newer live" true (Span.status s b = Span.Live);
  Alcotest.(check bool) "newest live" true (Span.status s c = Span.Live);
  Alcotest.(check bool) "never minted: unknown" true (Span.status s (c + 1) = Span.Unknown);
  Alcotest.(check bool) "id 0 (none): unknown" true (Span.status s Span.none = Span.Unknown);
  Alcotest.(check bool) "negative: unknown" true (Span.status s (-3) = Span.Unknown);
  (* Lookups on the evicted id degrade quietly rather than lying. *)
  Alcotest.(check bool) "no timeline for evicted" true (Span.timeline s a = []);
  Alcotest.(check bool) "no export for evicted" true (Span.export s a = None);
  Span.event s a ~host:"h" ~tick:9 "late";
  Alcotest.(check int) "event on evicted is a no-op" 1 (Span.evicted s)

let test_export_hook_sees_full_record () =
  let s = Span.create () in
  Span.set_retention s 1;
  let seen = ref [] in
  Span.set_export_hook s (fun x -> seen := x :: !seen);
  let a = Span.start s ~host:"h0" ~tick:5 "victim" in
  Span.event s a ~host:"h1" ~tick:7 "hop";
  let (_ : int) = Span.start s ~host:"h0" ~tick:8 "evictor" in
  (match !seen with
  | [ x ] ->
    Alcotest.(check int) "hook got the evicted span" a x.Span.x_id;
    Alcotest.(check string) "label" "victim" x.Span.x_label;
    Alcotest.(check string) "origin" "h0" x.Span.x_origin;
    Alcotest.(check int) "start tick" 5 x.Span.x_start;
    Alcotest.(check (list string)) "events oldest-first" [ "victim"; "hop" ]
      (List.map (fun e -> e.Span.e_label) x.Span.x_events)
  | l -> Alcotest.failf "expected 1 exported span, got %d" (List.length l));
  Span.clear_export_hook s;
  let (_ : int) = Span.start s ~host:"h0" ~tick:9 "unwatched" in
  Alcotest.(check int) "cleared hook fires no more" 1 (List.length !seen);
  Alcotest.(check int) "evictions continue regardless" 2 (Span.evicted s)

let test_evictions_counted_in_registry () =
  let obs = Obs.create () in
  Span.set_retention obs.Obs.spans 3;
  for i = 1 to 10 do
    ignore (Span.start obs.Obs.spans ~host:"h" ~tick:i "s")
  done;
  Alcotest.(check int) "spans.evicted counter tracks the store" 7
    (Metrics.counter obs.Obs.metrics "spans.evicted");
  Alcotest.(check int) "store agrees" 7 (Span.evicted obs.Obs.spans)

let suite =
  [
    case "histogram: exact nearest-rank quantiles" test_hist_known_distribution;
    case "histogram: skewed distribution" test_hist_skewed_distribution;
    case "snapshot and text rendering" test_snapshot_render;
    case "span timeline: cross-host update under faults" test_span_timeline_cross_host;
    case "stats ctl-name: local and NFS-interposed" test_stats_ctl_local_and_nfs;
    case "span status: evicted vs unknown" test_span_status_evicted_vs_unknown;
    case "export hook: full record before eviction" test_export_hook_sees_full_record;
    case "spans.evicted surfaces in the metrics registry" test_evictions_counted_in_registry;
  ]
