(* Delta propagation: chunk negotiation on the pull path, the fallback
   contract against pre-chunking peers, dominated-notification skips,
   and chunk-map serving across a reboot. *)

open Util
module Vv = Version_vector

(* Deterministic full-entropy contents (an MD5 counter stream), large
   enough to span many chunks with distinct digests. *)
let synth ?(seed = "delta") n =
  let buf = Buffer.create (n + 16) in
  let i = ref 0 in
  while Buffer.length buf < n do
    Buffer.add_string buf (Digest.string (Printf.sprintf "%s-%d" seed !i));
    incr i
  done;
  Buffer.sub buf 0 n

(* A 2-host cluster with a multi-chunk file already propagated to both
   replicas.  4 KiB blocks: the UFS block map tops out at ~268 KiB on
   the default 1 KiB blocks. *)
let big_cluster ?(delta = true) ?(size = 256 * 1024) () =
  let cluster =
    Cluster.create ~prop_delta:delta ~selection:Logical.Prefer_local
      ~disk_blocks:2048 ~block_size:4096 ~cache_capacity:2048 ~nhosts:2 ()
  in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let fv = ok (root0.Vnode.create "big") in
  ok (Vnode.write_all fv (synth size));
  let (_ : int) = Cluster.run_propagation cluster in
  (cluster, vref, fv, size)

let counter cluster name =
  let snap = Cluster.metrics_snapshot cluster in
  match List.assoc_opt name snap.Cluster.ms_metrics.Metrics.snap_counters with
  | Some v -> v
  | None -> 0

let content cluster i vref =
  let root = ok (Cluster.logical_root cluster i vref) in
  ok (Vnode.read_all (ok (root.Vnode.lookup "big")))

let big_fidpath phys =
  let fdir = ok (Physical.fetch_dir phys []) in
  [ (Option.get (Fdir.find_live fdir "big")).Fdir.fid ]

let test_delta_pull_ships_chunks () =
  let cluster, vref, fv, size = big_cluster () in
  let before = counter cluster "prop.bytes" in
  ok (fv.Vnode.write ~off:(size / 2) "one-block edit");
  let (_ : int) = Cluster.run_propagation cluster in
  let edit_bytes = counter cluster "prop.bytes" - before in
  Alcotest.(check bool) "a delta pull happened" true
    (counter cluster "prop.pull.delta" > 0);
  Alcotest.(check int) "no fallbacks" 0 (counter cluster "prop.delta_fallback");
  Alcotest.(check bool)
    (Printf.sprintf "edit shipped %d bytes for a %d-byte file" edit_bytes size)
    true
    (edit_bytes > 0 && edit_bytes * 4 < size);
  Alcotest.(check bool) "chunks mostly resolved locally" true
    (counter cluster "prop.chunks_hit" > counter cluster "prop.chunks_miss");
  Alcotest.(check bool) "savings accounted" true
    (counter cluster "prop.bytes_saved" > 0);
  Alcotest.(check string) "replicas converged"
    (Chunking.digest_hex (content cluster 0 vref))
    (Chunking.digest_hex (content cluster 1 vref))

let test_whole_copy_baseline_reships () =
  (* The ~prop_delta:false arm must keep the seed behavior: the edit
     reships the file, and no delta counters move. *)
  let cluster, vref, fv, size = big_cluster ~delta:false () in
  let before = counter cluster "prop.bytes" in
  ok (fv.Vnode.write ~off:(size / 2) "one-block edit");
  let (_ : int) = Cluster.run_propagation cluster in
  let edit_bytes = counter cluster "prop.bytes" - before in
  Alcotest.(check bool) "whole file travelled" true (edit_bytes >= size);
  Alcotest.(check int) "no delta pulls" 0 (counter cluster "prop.pull.delta");
  Alcotest.(check string) "replicas converged"
    (Chunking.digest_hex (content cluster 0 vref))
    (Chunking.digest_hex (content cluster 1 vref))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_prechunking_peer_falls_back () =
  let cluster, vref, fv, _size = big_cluster () in
  ok (fv.Vnode.write ~off:1000 "edit a stale peer must still receive");
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let host0 = Cluster.host_name (Cluster.host cluster 0) in
  let remote_root = ok ((Cluster.connect_from cluster 1) ~host:host0 ~vref ~rid:1) in
  (* A peer that predates chunking: the delta ctl ops don't exist, so
     their encoded lookups come back EINVAL — exactly what an old
     ctl_lookup does with an unknown op. *)
  let old_root =
    {
      remote_root with
      Vnode.lookup =
        (fun name ->
          if contains name "getchunkmap" || contains name "readchunks" then
            Error Errno.EINVAL
          else remote_root.Vnode.lookup name);
    }
  in
  let path = big_fidpath phys1 in
  let outcome, stats = ok (Delta.fetch_file ~local:phys1 ~remote_root:old_root path) in
  Alcotest.(check bool) "degraded to a whole-file fetch" true
    (stats.Delta.mode = Delta.Fallback);
  let origin_data = content cluster 0 vref in
  (match outcome with
   | Delta.Data (_, data) ->
     Alcotest.(check string) "fallback data is the origin's" origin_data data
   | Delta.Up_to_date _ -> Alcotest.fail "expected data from the fallback fetch");
  (* Against the real (chunk-aware) peer the same fetch negotiates. *)
  let outcome2, stats2 = ok (Delta.fetch_file ~local:phys1 ~remote_root path) in
  Alcotest.(check bool) "negotiated against a chunking peer" true
    (stats2.Delta.mode = Delta.Delta);
  Alcotest.(check bool) "delta is cheaper than the fallback" true
    (stats2.Delta.wire_bytes < stats.Delta.wire_bytes);
  (match outcome2 with
   | Delta.Data (_, data) ->
     Alcotest.(check string) "delta data is the origin's" origin_data data
   | Delta.Up_to_date _ -> Alcotest.fail "expected data from the delta fetch")

let test_dominated_notification_skipped () =
  (* A notification whose version vector the local copy already
     dominates must be dropped without an RPC — even when the origin is
     unreachable. *)
  let cluster, vref, _fv, _size = big_cluster () in
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let path = big_fidpath phys1 in
  let lvi = ok (Physical.get_version phys1 path) in
  Alcotest.(check bool) "replica stores the file" true lvi.Physical.vi_stored;
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  Propagation.on_notify prop1
    {
      Notify.vref;
      fidpath = path;
      fid = List.hd (List.rev path);
      kind = Aux_attrs.Freg;
      origin_rid = 1;
      origin_host = Cluster.host_name (Cluster.host cluster 0);
      span = 0;
      vv = lvi.Physical.vi_vv;
    };
  let (_ : int) = Propagation.run_once prop1 in
  Alcotest.(check int) "skipped without an RPC" 1
    (Counters.get (Propagation.counters prop1) "prop.skipped_dominated");
  Alcotest.(check int) "no retries burned" 0
    (Counters.get (Propagation.counters prop1) "prop.retries");
  Alcotest.(check int) "queue drained" 0 (Propagation.pending prop1)

let test_chunk_serving_survives_reboot () =
  let cluster, vref, fv, size = big_cluster () in
  (* Reboot the puller: its content-keyed chunk cache is volatile and
     gone; maps are recomputed from stored contents and the next pull
     still negotiates (the cache is an optimization, never coherence). *)
  ok ~msg:"reboot host1" (Cluster.reboot cluster 1);
  ok (fv.Vnode.write ~off:(size / 3) "edit after puller reboot");
  let (_ : int) = Cluster.run_propagation cluster in
  Alcotest.(check int) "no fallbacks after puller reboot" 0
    (counter cluster "prop.delta_fallback");
  Alcotest.(check string) "converged after puller reboot"
    (Chunking.digest_hex (content cluster 0 vref))
    (Chunking.digest_hex (content cluster 1 vref));
  let delta_pulls = counter cluster "prop.pull.delta" in
  Alcotest.(check bool) "pull travelled as a delta" true (delta_pulls > 0);
  (* Reboot the origin: served maps come from the re-attached replica
     (vnode handles from before the reboot are stale, so re-resolve). *)
  ok ~msg:"reboot host0" (Cluster.reboot cluster 0);
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let fv = ok (root0.Vnode.lookup "big") in
  ok (fv.Vnode.write ~off:(2 * size / 3) "edit after origin reboot");
  let (_ : int) = Cluster.run_propagation cluster in
  Alcotest.(check int) "no fallbacks after origin reboot" 0
    (counter cluster "prop.delta_fallback");
  Alcotest.(check bool) "still negotiating deltas" true
    (counter cluster "prop.pull.delta" > delta_pulls);
  Alcotest.(check string) "converged after origin reboot"
    (Chunking.digest_hex (content cluster 0 vref))
    (Chunking.digest_hex (content cluster 1 vref))

let test_small_files_skip_negotiation () =
  (* Below min_delta_size the negotiation cannot win; the pull must be a
     plain whole-file fetch with no chunk counters moving. *)
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "small" "tiny contents";
  let (_ : int) = Cluster.run_propagation cluster in
  write_file root0 "small" "tiny contents v2";
  let (_ : int) = Cluster.run_propagation cluster in
  Alcotest.(check int) "no delta pulls for small files" 0
    (counter cluster "prop.pull.delta");
  Alcotest.(check int) "no chunk fetches" 0 (counter cluster "prop.chunks_miss");
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let fdir = ok (Physical.fetch_dir phys1 []) in
  let e = Option.get (Fdir.find_live fdir "small") in
  let _, data = ok (Physical.fetch_file phys1 [ e.Fdir.fid ]) in
  Alcotest.(check string) "propagated" "tiny contents v2" data

let suite =
  [
    case "delta pull ships chunks, not the file" test_delta_pull_ships_chunks;
    case "whole-copy baseline reships the file" test_whole_copy_baseline_reships;
    case "pre-chunking peer falls back to whole-file" test_prechunking_peer_falls_back;
    case "dominated notification skipped without RPC" test_dominated_notification_skipped;
    case "chunk serving survives reboot" test_chunk_serving_survives_reboot;
    case "small files skip negotiation" test_small_files_skip_negotiation;
  ]
