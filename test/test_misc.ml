(* Smaller core modules: aux attribute files, the conflict log, the
   new-version cache, the workload generator. *)

open Util
module Vv = Version_vector

(* ---------------- aux attribute files ---------------- *)

let test_aux_codec_roundtrip () =
  let cases =
    [
      Aux_attrs.make Aux_attrs.Freg;
      { (Aux_attrs.make Aux_attrs.Fdir) with Aux_attrs.uid = 42; conflict = true };
      {
        (Aux_attrs.make Aux_attrs.Fgraft) with
        Aux_attrs.vv = Vv.of_list [ (1, 3); (9, 7) ];
        graft_target = Some { Ids.alloc = 2; vol = 5 };
      };
    ]
  in
  List.iter
    (fun aux ->
      match Aux_attrs.decode (Aux_attrs.encode aux) with
      | None -> Alcotest.fail "decode failed"
      | Some aux' ->
        Alcotest.(check bool) "kind" true (aux.Aux_attrs.kind = aux'.Aux_attrs.kind);
        Alcotest.check vv_testable "vv" aux.Aux_attrs.vv aux'.Aux_attrs.vv;
        Alcotest.(check int) "uid" aux.Aux_attrs.uid aux'.Aux_attrs.uid;
        Alcotest.(check bool) "conflict" aux.Aux_attrs.conflict aux'.Aux_attrs.conflict;
        Alcotest.(check bool) "graft" true
          (aux.Aux_attrs.graft_target = aux'.Aux_attrs.graft_target))
    cases

let test_aux_decode_rejects_garbage () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Aux_attrs.decode s = None))
    [ ""; "kind=banana\nvv=\nuid=0\nconflict=0\n"; "vv=1:1\n"; "kind=reg\nvv=x:y\nuid=0\nconflict=0\n" ]

let test_aux_load_store_via_vnodes () =
  let _, fs = fresh_ufs () in
  let root = Ufs_vnode.root fs in
  let fid = { Ids.issuer = 2; uniq = 9 } in
  let aux = { (Aux_attrs.make Aux_attrs.Freg) with Aux_attrs.vv = Vv.singleton 2 4 } in
  ok (Aux_attrs.store ~dir:root fid aux);
  let aux' = ok (Aux_attrs.load ~dir:root fid) in
  Alcotest.check vv_testable "vv persisted" (Vv.singleton 2 4) aux'.Aux_attrs.vv;
  (* Overwrite in place. *)
  ok (Aux_attrs.store ~dir:root fid { aux with Aux_attrs.conflict = true });
  Alcotest.(check bool) "updated" true (ok (Aux_attrs.load ~dir:root fid)).Aux_attrs.conflict;
  expect_err Errno.ENOENT
    (Result.map (fun _ -> ()) (Aux_attrs.load ~dir:root { Ids.issuer = 0; uniq = 99 }))

(* ---------------- conflict log ---------------- *)

let test_conflict_log_lifecycle () =
  let log = Conflict_log.create () in
  let vref = { Ids.alloc = 0; vol = 1 } in
  let e1 =
    Conflict_log.report log ~vref ~fidpath:[] ~fid:Ids.root_fid ~owner_uid:7 ~detected_at:5
      (Conflict_log.Name_collision { name = "x"; births = [] })
  in
  let _e2 =
    Conflict_log.report log ~vref ~fidpath:[] ~fid:Ids.root_fid ~owner_uid:7 ~detected_at:6
      (Conflict_log.Removed_while_updated { orphaned_to = "ORPHANS/x" })
  in
  Alcotest.(check int) "two pending" 2 (List.length (Conflict_log.pending log));
  Alcotest.(check int) "ids distinct" 1
    (match Conflict_log.all log with a :: b :: _ -> b.Conflict_log.id - a.Conflict_log.id | _ -> 0);
  Conflict_log.mark_resolved log e1.Conflict_log.id;
  Alcotest.(check int) "one left" 1 (List.length (Conflict_log.pending log));
  Alcotest.(check int) "all keeps both" 2 (List.length (Conflict_log.all log));
  Alcotest.(check bool) "find" true (Conflict_log.find log e1.Conflict_log.id <> None);
  Conflict_log.mark_resolved log 999 (* unknown id: no-op *)

(* ---------------- new-version cache ---------------- *)

let event ?(fid = 7) ?(rid = 2) ?(host = "hostB") () =
  {
    Notify.vref = { Ids.alloc = 0; vol = 1 };
    fidpath = [ { Ids.issuer = 1; uniq = fid } ];
    fid = { Ids.issuer = 1; uniq = fid };
    kind = Aux_attrs.Freg;
    origin_rid = rid;
    origin_host = host;
    span = 0;
    vv = Version_vector.empty;
  }

let note nvc e ~now = ignore (New_version_cache.note nvc e ~now : bool)

let test_nvc_dedupes_per_object () =
  let nvc = New_version_cache.create () in
  note nvc (event ()) ~now:0;
  note nvc (event ()) ~now:3;
  note nvc (event ~fid:8 ()) ~now:4;
  Alcotest.(check int) "two objects" 2 (New_version_cache.size nvc);
  Alcotest.(check int) "three notes" 3 (New_version_cache.notes nvc)

let test_nvc_keeps_earliest_age_and_newest_origin () =
  let nvc = New_version_cache.create () in
  note nvc (event ~rid:2 ~host:"hostB" ()) ~now:0;
  note nvc (event ~rid:3 ~host:"hostC" ()) ~now:9;
  (* Not yet old enough if age counts from the second note... it must
     count from the first. *)
  let ready = New_version_cache.take_ready nvc ~now:10 ~min_age:10 in
  Alcotest.(check int) "ready by first-note age" 1 (List.length ready);
  let e = List.hd ready in
  Alcotest.(check string) "newest origin host" "hostC" e.New_version_cache.origin_host;
  Alcotest.(check int) "newest origin rid" 3 e.New_version_cache.origin_rid

let test_nvc_min_age_filter () =
  let nvc = New_version_cache.create () in
  note nvc (event ~fid:1 ()) ~now:0;
  note nvc (event ~fid:2 ()) ~now:8;
  let ready = New_version_cache.take_ready nvc ~now:10 ~min_age:5 in
  Alcotest.(check int) "only the old one" 1 (List.length ready);
  Alcotest.(check int) "younger still parked" 1 (New_version_cache.size nvc);
  (* Requeue puts it back for a later retry. *)
  New_version_cache.requeue nvc (List.hd ready);
  Alcotest.(check int) "requeued" 2 (New_version_cache.size nvc)

let test_nvc_dedup_counter_and_vv_merge () =
  let nvc = New_version_cache.create () in
  let e1 = { (event ()) with Notify.vv = Vv.singleton 1 1 } in
  let e2 = { (event ~rid:3 ~host:"hostC" ()) with Notify.vv = Vv.singleton 1 2 } in
  Alcotest.(check bool) "fresh entry is not a dup" false
    (New_version_cache.note nvc e1 ~now:0);
  Alcotest.(check bool) "second note absorbed" true
    (New_version_cache.note nvc e2 ~now:1);
  Alcotest.(check int) "dedup counted" 1 (New_version_cache.deduped nvc);
  Alcotest.(check int) "one entry" 1 (New_version_cache.size nvc);
  (* The collapsed entry carries the merged version vector, so the
     dominated-pull check sees everything the notifications advertised. *)
  let e = List.hd (New_version_cache.take_ready nvc ~now:5 ~min_age:0) in
  Alcotest.check vv_testable "vvs merged" (Vv.singleton 1 2) e.New_version_cache.vv

(* ---------------- workload generator ---------------- *)

let test_workload_deterministic () =
  let run () =
    let _, fs = fresh_ufs ~blocks:4096 () in
    let root = Ufs_vnode.root fs in
    let cfg = Workload.default in
    ok (Workload.setup root cfg);
    let stats = Workload.run root cfg ~ops:100 in
    (stats, read_file root (Workload.file_path cfg 0))
  in
  let (s1, c1) = run () and (s2, c2) = run () in
  Alcotest.(check bool) "same stats" true (s1 = s2);
  Alcotest.(check string) "same contents" c1 c2

let test_workload_op_counts () =
  let _, fs = fresh_ufs ~blocks:4096 () in
  let root = Ufs_vnode.root fs in
  let cfg = { Workload.default with write_fraction = 0.5; burst = 1 } in
  ok (Workload.setup root cfg);
  let stats = Workload.run root cfg ~ops:200 in
  Alcotest.(check int) "all ops accounted" 200
    (stats.Workload.reads + stats.Workload.writes + stats.Workload.errors);
  Alcotest.(check int) "no errors" 0 stats.Workload.errors;
  Alcotest.(check bool) "mix of both" true (stats.Workload.reads > 0 && stats.Workload.writes > 0)

let test_workload_zipf_skew () =
  (* With heavy skew, the most popular file receives far more writes
     than a tail file. *)
  let _, fs = fresh_ufs ~blocks:8192 () in
  let root = Ufs_vnode.root fs in
  let cfg = { Workload.default with write_fraction = 1.0; zipf_s = 1.5; payload = 4 } in
  ok (Workload.setup root cfg);
  let (_ : Workload.stats) = Workload.run root cfg ~ops:300 in
  let mtime i = (ok (Namei.walk ~root (Workload.file_path cfg i)) |> fun v -> ok (v.Vnode.getattr ())).Vnode.mtime in
  (* The hot file was written recently; the coldest tail file likely
     never (mtime still from setup). *)
  Alcotest.(check bool) "hot file touched later than coldest" true
    (mtime 0 > mtime (Workload.nfiles cfg - 1))

let test_workload_burst () =
  let _, fs = fresh_ufs ~blocks:4096 () in
  let root = Ufs_vnode.root fs in
  let cfg = { Workload.default with write_fraction = 1.0; burst = 10 } in
  ok (Workload.setup root cfg);
  let stats = Workload.run root cfg ~ops:50 in
  Alcotest.(check int) "exactly the requested ops" 50
    (stats.Workload.reads + stats.Workload.writes + stats.Workload.errors)

let suite =
  [
    case "aux codec roundtrip" test_aux_codec_roundtrip;
    case "aux decode rejects garbage" test_aux_decode_rejects_garbage;
    case "aux load/store via vnodes" test_aux_load_store_via_vnodes;
    case "conflict log lifecycle" test_conflict_log_lifecycle;
    case "nvc dedupes per object" test_nvc_dedupes_per_object;
    case "nvc keeps earliest age, newest origin" test_nvc_keeps_earliest_age_and_newest_origin;
    case "nvc min-age filter and requeue" test_nvc_min_age_filter;
    case "nvc dedup counter and vv merge" test_nvc_dedup_counter_and_vv_merge;
    case "workload deterministic" test_workload_deterministic;
    case "workload op counts" test_workload_op_counts;
    case "workload zipf skew" test_workload_zipf_skew;
    case "workload burst" test_workload_burst;
  ]
