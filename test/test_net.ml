(* The simulated network: clock, partitions, datagram semantics, RPC. *)

open Util

type Sim_net.payload += Ping of int | Pong of int

let setup () =
  let clock = Clock.create () in
  let net = Sim_net.create clock in
  let a = Sim_net.add_host net "a" in
  let b = Sim_net.add_host net "b" in
  let c = Sim_net.add_host net "c" in
  (clock, net, a, b, c)

let test_clock () =
  let clock = Clock.create ~start:5 () in
  Alcotest.(check int) "start" 5 (Clock.now clock);
  Clock.advance clock 10;
  Clock.tick clock;
  Alcotest.(check int) "advanced" 16 (Clock.now clock);
  Alcotest.(check int) "fn" 16 (Clock.fn clock ());
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance") (fun () ->
      Clock.advance clock (-1))

let test_datagram_delivery () =
  let _, net, a, b, _ = setup () in
  let received = ref [] in
  Sim_net.register_handler net b (fun ~src payload ->
      match payload with Ping n -> received := (src, n) :: !received | _ -> ());
  Sim_net.send net ~src:a ~dst:b (Ping 1);
  Sim_net.send net ~src:a ~dst:b (Ping 2);
  Alcotest.(check int) "queued" 2 (Sim_net.pending net);
  Alcotest.(check (list (pair int int))) "not yet delivered" [] !received;
  Alcotest.(check int) "pumped" 2 (Sim_net.pump net);
  Alcotest.(check (list (pair int int))) "in order" [ (a, 2); (a, 1) ] !received

let test_partition_drops_datagrams () =
  let _, net, a, b, c = setup () in
  let count = ref 0 in
  List.iter
    (fun h -> Sim_net.register_handler net h (fun ~src:_ _ -> incr count))
    [ b; c ];
  Sim_net.set_partition net [ [ a; b ]; [ c ] ];
  Sim_net.broadcast net ~src:a ~dst:[ b; c ] (Ping 9);
  let delivered = Sim_net.pump net in
  Alcotest.(check int) "only the same-side host" 1 delivered;
  Alcotest.(check int) "handler fired once" 1 !count;
  (* Reachability is evaluated at delivery time: a message sent while
     connected still dies if the partition forms first. *)
  Sim_net.heal net;
  Sim_net.send net ~src:a ~dst:c (Ping 10);
  Sim_net.set_partition net [ [ a ]; [ b; c ] ];
  Alcotest.(check int) "cut before the pump" 0 (Sim_net.pump net)

let test_datagram_loss () =
  let clock = Clock.create () in
  let net = Sim_net.create ~seed:3 ~datagram_loss:1.0 clock in
  let a = Sim_net.add_host net "a" in
  let b = Sim_net.add_host net "b" in
  let hits = ref 0 in
  Sim_net.register_handler net b (fun ~src:_ _ -> incr hits);
  for _ = 1 to 10 do
    Sim_net.send net ~src:a ~dst:b (Ping 0)
  done;
  Alcotest.(check int) "all lost" 0 (Sim_net.pump net);
  Alcotest.(check int) "none seen" 0 !hits;
  Alcotest.(check int) "counted as dropped" 10
    (Counters.get (Sim_net.counters net) "net.datagrams.dropped")

let test_isolate_and_heal () =
  let _, net, a, b, c = setup () in
  Sim_net.isolate net b;
  Alcotest.(check bool) "a-c fine" true (Sim_net.reachable net a c);
  Alcotest.(check bool) "a-b cut" false (Sim_net.reachable net a b);
  Alcotest.(check bool) "self always" true (Sim_net.reachable net b b);
  Sim_net.heal net;
  Alcotest.(check bool) "healed" true (Sim_net.reachable net a b)

let test_unlisted_hosts_become_isolated () =
  let _, net, a, b, c = setup () in
  Sim_net.set_partition net [ [ a; b ] ];
  Alcotest.(check bool) "c cut from a" false (Sim_net.reachable net a c);
  Alcotest.(check bool) "c cut from b" false (Sim_net.reachable net b c)

let test_rpc_roundtrip_and_errors () =
  let _, net, a, b, _ = setup () in
  Sim_net.register_rpc net b (fun ~src:_ payload ->
      match payload with Ping n -> Some (Pong (n + 1)) | _ -> None);
  (match Sim_net.call net ~src:a ~dst:b (Ping 41) with
   | Ok (Pong 42) -> ()
   | Ok _ -> Alcotest.fail "wrong response"
   | Error e -> Alcotest.failf "rpc failed: %s" (Errno.to_string e));
  (* No matching handler. *)
  (match Sim_net.call net ~src:a ~dst:b (Pong 0) with
   | Error Errno.ENOTSUP -> ()
   | Ok _ | Error _ -> Alcotest.fail "expected ENOTSUP");
  (* Across a partition. *)
  Sim_net.set_partition net [ [ a ]; [ b ] ];
  match Sim_net.call net ~src:a ~dst:b (Ping 0) with
  | Error Errno.EUNREACHABLE -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected EUNREACHABLE"

let test_multiple_handlers_first_wins () =
  let _, net, a, b, _ = setup () in
  Sim_net.register_rpc net b (fun ~src:_ -> function Ping 1 -> Some (Pong 100) | _ -> None);
  Sim_net.register_rpc net b (fun ~src:_ -> function Ping _ -> Some (Pong 200) | _ -> None);
  (match Sim_net.call net ~src:a ~dst:b (Ping 1) with
   | Ok (Pong 100) -> ()
   | _ -> Alcotest.fail "first handler should win");
  match Sim_net.call net ~src:a ~dst:b (Ping 2) with
  | Ok (Pong 200) -> ()
  | _ -> Alcotest.fail "second handler should catch the rest"

(* ------------------------------------------------------------------ *)
(* Fault injection.  Probabilities are pinned to 0.0/1.0 so every
   assertion is deterministic regardless of the PRNG stream. *)

let faults_with ?(loss = 0.0) ?(rpc = 0.0) ?(lat_min = 0) ?(lat_max = 0) ?(dup = 0.0)
    ?(reorder = 0.0) () =
  {
    Sim_net.loss;
    rpc_failure_prob = rpc;
    latency_min = lat_min;
    latency_max = lat_max;
    duplication_prob = dup;
    reorder_prob = reorder;
  }

let test_latency_delays_delivery () =
  let clock, net, a, b, _ = setup () in
  Sim_net.set_faults net (faults_with ~lat_min:2 ~lat_max:2 ());
  let received = ref [] in
  Sim_net.register_handler net b (fun ~src:_ payload ->
      match payload with Ping n -> received := !received @ [ n ] | _ -> ());
  Sim_net.send net ~src:a ~dst:b (Ping 1);
  Alcotest.(check int) "not due yet" 0 (Sim_net.pump net);
  Alcotest.(check int) "still queued" 1 (Sim_net.pending net);
  Clock.advance clock 1;
  Alcotest.(check int) "one tick short" 0 (Sim_net.pump net);
  Clock.advance clock 1;
  Alcotest.(check int) "due now" 1 (Sim_net.pump net);
  Alcotest.(check (list int)) "delivered" [ 1 ] !received;
  (* Delivery follows due ticks, not send order: a slow packet sent
     first arrives after a fast packet sent second. *)
  Sim_net.set_faults net (faults_with ~lat_min:3 ~lat_max:3 ());
  Sim_net.send net ~src:a ~dst:b (Ping 2);
  Sim_net.set_faults net (faults_with ~lat_min:1 ~lat_max:1 ());
  Sim_net.send net ~src:a ~dst:b (Ping 3);
  Clock.advance clock 3;
  Alcotest.(check int) "both due" 2 (Sim_net.pump net);
  Alcotest.(check (list int)) "due order, not send order" [ 1; 3; 2 ] !received

let test_duplication () =
  let _, net, a, b, _ = setup () in
  Sim_net.set_faults net (faults_with ~dup:1.0 ());
  let hits = ref 0 in
  Sim_net.register_handler net b (fun ~src:_ _ -> incr hits);
  Sim_net.send net ~src:a ~dst:b (Ping 7);
  Alcotest.(check int) "original + duplicate queued" 2 (Sim_net.pending net);
  Alcotest.(check int) "both delivered" 2 (Sim_net.pump net);
  Alcotest.(check int) "handler saw two" 2 !hits;
  Alcotest.(check int) "counted" 1
    (Counters.get (Sim_net.counters net) "net.datagrams.duplicated")

let test_reordering () =
  let _, net, a, b, _ = setup () in
  Sim_net.set_faults net (faults_with ~reorder:1.0 ());
  let received = ref [] in
  Sim_net.register_handler net b (fun ~src:_ payload ->
      match payload with Ping n -> received := !received @ [ n ] | _ -> ());
  Sim_net.send net ~src:a ~dst:b (Ping 1);
  Sim_net.send net ~src:a ~dst:b (Ping 2);
  Alcotest.(check int) "both delivered" 2 (Sim_net.pump net);
  Alcotest.(check (list int)) "adjacent pair swapped" [ 2; 1 ] !received;
  Alcotest.(check bool) "counted" true
    (Counters.get (Sim_net.counters net) "net.datagrams.reordered" > 0)

let test_rpc_failure_injection () =
  let _, net, a, b, _ = setup () in
  Sim_net.register_rpc net b (fun ~src:_ -> function Ping n -> Some (Pong n) | _ -> None);
  Sim_net.set_faults net (faults_with ~rpc:1.0 ());
  (match Sim_net.call net ~src:a ~dst:b (Ping 1) with
   | Error Errno.EUNREACHABLE -> ()
   | Ok _ | Error _ -> Alcotest.fail "expected injected EUNREACHABLE");
  Alcotest.(check int) "injected counted" 1
    (Counters.get (Sim_net.counters net) "net.rpc.injected");
  Sim_net.clear_faults net;
  match Sim_net.call net ~src:a ~dst:b (Ping 1) with
  | Ok (Pong 1) -> ()
  | _ -> Alcotest.fail "clear_faults should restore RPCs"

let test_asymmetric_sever () =
  let _, net, a, b, _ = setup () in
  Sim_net.register_rpc net a (fun ~src:_ -> function Ping n -> Some (Pong n) | _ -> None);
  let hits = ref 0 in
  Sim_net.register_handler net b (fun ~src:_ _ -> incr hits);
  Sim_net.sever net ~src:a ~dst:b;
  Alcotest.(check bool) "a->b cut" false (Sim_net.reachable net a b);
  Alcotest.(check bool) "b->a still flows" true (Sim_net.reachable net b a);
  Sim_net.send net ~src:a ~dst:b (Ping 1);
  Alcotest.(check int) "datagram dropped" 0 (Sim_net.pump net);
  (match Sim_net.call net ~src:b ~dst:a (Ping 5) with
   | Ok (Pong 5) -> ()
   | _ -> Alcotest.fail "reverse direction must still work");
  Sim_net.unsever net ~src:a ~dst:b;
  Sim_net.send net ~src:a ~dst:b (Ping 2);
  Alcotest.(check int) "restored" 1 (Sim_net.pump net)

let test_flaky_host_window () =
  let clock, net, a, b, c = setup () in
  Sim_net.set_flaky net b ~until:5;
  Alcotest.(check bool) "cut while flaky" false (Sim_net.reachable net a b);
  Alcotest.(check bool) "both directions" false (Sim_net.reachable net b a);
  Alcotest.(check bool) "others unaffected" true (Sim_net.reachable net a c);
  (match Sim_net.call net ~src:a ~dst:b (Ping 1) with
   | Error Errno.EUNREACHABLE -> ()
   | _ -> Alcotest.fail "flaky host must not answer RPCs");
  Clock.advance clock 5;
  Alcotest.(check bool) "window over" true (Sim_net.reachable net a b);
  (* heal ends a window early. *)
  Sim_net.set_flaky net b ~until:1000;
  Alcotest.(check bool) "flaky again" false (Sim_net.reachable net a b);
  Sim_net.heal net;
  Alcotest.(check bool) "healed early" true (Sim_net.reachable net a b)

let test_isolate_robust_to_sparse_groups () =
  (* Regression: isolate must pick a group no other host occupies, even
     after set_partition left arbitrary group ids behind and across
     repeated calls. *)
  let _, net, a, b, c = setup () in
  Sim_net.set_partition net [ [ b ]; [ a; c ] ];
  Sim_net.isolate net a;
  Alcotest.(check bool) "a cut from b" false (Sim_net.reachable net a b);
  Alcotest.(check bool) "a cut from c" false (Sim_net.reachable net a c);
  Sim_net.isolate net a;
  Alcotest.(check bool) "still cut from b" false (Sim_net.reachable net a b);
  Alcotest.(check bool) "still cut from c" false (Sim_net.reachable net a c);
  Sim_net.isolate net c;
  Alcotest.(check bool) "b-c cut" false (Sim_net.reachable net b c);
  Alcotest.(check bool) "a-c cut" false (Sim_net.reachable net a c);
  Sim_net.heal net;
  Alcotest.(check bool) "all back" true
    (Sim_net.reachable net a b && Sim_net.reachable net b c && Sim_net.reachable net a c)

let suite =
  [
    case "clock" test_clock;
    case "datagram delivery order" test_datagram_delivery;
    case "partitions drop datagrams at delivery" test_partition_drops_datagrams;
    case "datagram loss" test_datagram_loss;
    case "isolate and heal" test_isolate_and_heal;
    case "unlisted hosts become isolated" test_unlisted_hosts_become_isolated;
    case "rpc roundtrip and errors" test_rpc_roundtrip_and_errors;
    case "multiple rpc handlers" test_multiple_handlers_first_wins;
    case "latency delays delivery" test_latency_delays_delivery;
    case "duplication" test_duplication;
    case "reordering" test_reordering;
    case "rpc failure injection" test_rpc_failure_injection;
    case "asymmetric sever" test_asymmetric_sever;
    case "flaky host window" test_flaky_host_window;
    case "isolate robust to sparse groups" test_isolate_robust_to_sparse_groups;
  ]
