(* Update notification and the propagation daemon: hints, burst
   collapse, retry/abandon, and the reconciliation backstop under 100%
   notification loss. *)

open Util

let test_notification_drives_propagation () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "pushed";
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  Alcotest.(check int) "nothing pending before delivery" 0 (Propagation.pending prop1);
  let (_ : int) = Cluster.pump cluster in
  Alcotest.(check bool) "hint parked in the cache" true (Propagation.pending prop1 > 0);
  let (_ : int) = Propagation.run_once prop1 in
  let (_ : int) = Cluster.run_propagation cluster in
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let fdir = ok (Physical.fetch_dir phys1 []) in
  let e = Option.get (Fdir.find_live fdir "f") in
  let _, data = ok (Physical.fetch_file phys1 [ e.Fdir.fid ]) in
  Alcotest.(check string) "propagated" "pushed" data

let test_burst_collapses_in_cache () =
  (* Delayed propagation absorbs a burst of updates into one pull
     (paper §3.2: "delayed propagation may reduce the overall
     propagation cost when updates are bursty"). *)
  let cluster = Cluster.create ~nhosts:2 ~propagation_delay:10 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "hot" "v0";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.advance cluster 20;
  let (_ : int) = Cluster.run_propagation cluster in
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  let pulls_before = Counters.get (Propagation.counters prop1) "prop.pull.file" in
  for i = 1 to 10 do
    write_file root0 "hot" (Printf.sprintf "v%d" i)
  done;
  let (_ : int) = Cluster.pump cluster in
  (* All ten notifications arrive before the delay expires: one entry. *)
  Alcotest.(check int) "collapsed to one pending entry" 1 (Propagation.pending prop1);
  Cluster.advance cluster 11;
  let (_ : int) = Cluster.run_propagation cluster in
  let pulls_after = Counters.get (Propagation.counters prop1) "prop.pull.file" in
  Alcotest.(check int) "a single pull" 1 (pulls_after - pulls_before);
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let fdir = ok (Physical.fetch_dir phys1 []) in
  let e = Option.get (Fdir.find_live fdir "hot") in
  let _, data = ok (Physical.fetch_file phys1 [ e.Fdir.fid ]) in
  Alcotest.(check string) "latest version" "v10" data

let test_retry_then_abandon () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  (* Deliver the notification, then cut the link before the pull.
     Retries now back off on the clock, so drive time forward. *)
  let (_ : int) = Cluster.pump cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  for _ = 1 to 600 do
    ignore (Propagation.run_once prop1);
    Cluster.advance cluster 1
  done;
  Alcotest.(check bool) "retried" true
    (Counters.get (Propagation.counters prop1) "prop.retries" > 0);
  Alcotest.(check bool) "eventually abandoned" true
    (Counters.get (Propagation.counters prop1) "prop.abandoned" > 0);
  Alcotest.(check int) "queue drained" 0 (Propagation.pending prop1)

let test_backoff_grows_and_reconciliation_converges () =
  (* The gap between successive retry attempts of one entry must grow
     (exponential backoff: each wait is in [b, 2b) with b doubling, so
     gaps are strictly increasing even with jitter).  A single synthetic
     entry against an always-unreachable origin isolates the schedule. *)
  let _, fs = fresh_ufs () in
  let clock = Clock.create () in
  let vref = { Ids.alloc = 0; vol = 1 } in
  let phys =
    ok
      (Physical.create ~container:(Ufs_vnode.root fs) ~clock ~host:"me" ~vref ~rid:2
         ~peers:[ (1, "origin"); (2, "me") ] ())
  in
  let connect ~host:_ ~vref:_ ~rid:_ = Error Errno.EUNREACHABLE in
  let prop =
    Propagation.create ~clock ~host:"me" ~connect
      ~local_replica:(fun v -> if Ids.vref_equal v vref then Some phys else None)
      ()
  in
  let fid = { Ids.issuer = 9; uniq = 1 } in
  Propagation.on_notify prop
    {
      Notify.vref;
      fidpath = [ fid ];
      fid;
      kind = Aux_attrs.Freg;
      origin_rid = 1;
      origin_host = "origin";
      span = 0;
      vv = Version_vector.empty;
    };
  let attempt_ticks = ref [] in
  for tick = 0 to 599 do
    if Propagation.run_once prop > 0 then attempt_ticks := tick :: !attempt_ticks;
    Clock.advance clock 1
  done;
  let ticks = List.rev !attempt_ticks in
  Alcotest.(check bool) "several attempts" true (List.length ticks >= 3);
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "gaps strictly grow" true (increasing (gaps ticks));
  Alcotest.(check bool) "backoff ticks recorded" true
    (Counters.get (Propagation.counters prop) "prop.backoff_ticks" > 0);
  Alcotest.(check bool) "abandoned" true
    (Counters.get (Propagation.counters prop) "prop.abandoned" > 0);
  Alcotest.(check int) "queue drained" 0 (Propagation.pending prop);
  (* And in a full cluster, an abandoned entry still converges via the
     reconciliation backstop once the partition heals. *)
  let cluster = Cluster.create ~nhosts:2 () in
  let cvref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 cvref) in
  create_file root0 "f" "survives";
  let (_ : int) = Cluster.pump cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  for _ = 1 to 600 do
    ignore (Propagation.run_once prop1);
    Cluster.advance cluster 1
  done;
  Alcotest.(check bool) "cluster entry abandoned" true
    (Counters.get (Propagation.counters prop1) "prop.abandoned" > 0);
  Cluster.heal cluster;
  let (_ : int) = ok (Cluster.converge cluster cvref ()) in
  let root1 = ok (Cluster.logical_root cluster 1 cvref) in
  Alcotest.(check string) "converged via reconciliation" "survives"
    (read_file root1 "f")

let test_convergence_with_total_notification_loss () =
  (* Notifications are an optimization only: with every datagram lost,
     reconciliation alone must still converge the replicas. *)
  let cluster = Cluster.create ~nhosts:2 ~datagram_loss:1.0 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "a" "1";
  create_file root0 "b" "2";
  let (_ : int) = Cluster.run_propagation cluster in
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  Alcotest.(check (list string)) "nothing propagated" []
    (Fdir.live (ok (Physical.fetch_dir phys1 [])) |> List.map fst);
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "a arrived by reconciliation" "1" (read_file root1 "a");
  Alcotest.(check string) "b arrived by reconciliation" "2" (read_file root1 "b")

let test_propagation_of_new_directory_trees () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (Namei.mkdir_p ~root:root0 "deep/nested/tree") in
  create_file root0 "deep/nested/tree/leaf" "found me";
  let (_ : int) = Cluster.run_propagation cluster in
  (* The whole subtree must exist at host1's replica without any
     reconciliation pass. *)
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let rec descend path names =
    match names with
    | [] -> path
    | n :: rest ->
      let fdir = ok (Physical.fetch_dir phys1 path) in
      let e = Option.get (Fdir.find_live fdir n) in
      descend (path @ [ e.Fdir.fid ]) rest
  in
  let leaf_path = descend [] [ "deep"; "nested"; "tree"; "leaf" ] in
  let _, data = ok (Physical.fetch_file phys1 leaf_path) in
  Alcotest.(check string) "leaf content propagated" "found me" data

let test_own_updates_ignored () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  let (_ : int) = Cluster.run_propagation cluster in
  let prop0 = Cluster.propagation (Cluster.host cluster 0) in
  (* host0's own update must not end up in host0's cache. *)
  Alcotest.(check int) "no self-pull pending" 0 (Propagation.pending prop0)

let suite =
  [
    case "notification drives propagation" test_notification_drives_propagation;
    case "burst collapses to one pull" test_burst_collapses_in_cache;
    case "retry then abandon" test_retry_then_abandon;
    case "backoff grows, reconciliation backstops" test_backoff_grows_and_reconciliation_converges;
    case "reconciliation backstop under 100% loss"
      test_convergence_with_total_notification_loss;
    case "new directory trees propagate" test_propagation_of_new_directory_trees;
    case "own updates ignored" test_own_updates_ignored;
  ]
