(* Raft safety: unit coverage of election / replication / persistence /
   compaction over a direct Sim_net harness, qcheck properties asserting
   the paper's safety invariants — election safety (at most one leader
   per term), log matching, committed-entry durability — under random
   partition / crash / timeout schedules, and cluster-level recovery of
   the control plane through a full UFS crash_reboot. *)

open Util

(* ------------------------------------------------------------------ *)
(* Direct harness: n members over one Sim_net, each with an in-memory
   "durable" store (a ref cell standing in for the cluster harness's
   UFS file) and a trivially snapshottable state machine: the list of
   applied commands.  Commands never contain ','. *)

type node = {
  n_raft : Raft.t;
  n_id : Sim_net.host_id;
  mutable n_state : string list;  (* applied commands, newest first *)
  n_store : string option ref;    (* survives crash_recover *)
}

type group = {
  g_clock : Clock.t;
  g_net : Sim_net.t;
  g_nodes : node array;
}

let mk_group ?(config = Raft.default_config) ~seed n =
  let clock = Clock.create () in
  let net = Sim_net.create ~seed clock in
  let obs = Obs.create () in
  let peers = List.init n (Printf.sprintf "m%d") in
  let nodes =
    Array.init n (fun i ->
        let id = Sim_net.add_host net (Printf.sprintf "m%d" i) in
        let store = ref None in
        let rec node =
          lazy
            {
              n_raft =
                Raft.create ~config ~seed:(seed + (31 * i))
                  ~persist:
                    {
                      Raft.p_save = (fun s -> store := Some s);
                      p_load = (fun () -> !store);
                    }
                  ~obs ~net ~peers
                  ~apply:(fun ~index:_ cmd ->
                    let node = Lazy.force node in
                    node.n_state <- cmd :: node.n_state)
                  ~snapshot:(fun () ->
                    String.concat "," (List.rev (Lazy.force node).n_state))
                  ~restore:(fun s ->
                    (Lazy.force node).n_state <-
                      (if s = "" then []
                       else List.rev (String.split_on_char ',' s)))
                  id;
              n_id = id;
              n_state = [];
              n_store = store;
            }
        in
        Lazy.force node)
  in
  { g_clock = clock; g_net = net; g_nodes = nodes }

let step g =
  Clock.advance g.g_clock 1;
  let (_ : int) = Sim_net.pump g.g_net in
  Array.iter (fun n -> Raft.tick n.n_raft) g.g_nodes

let steps g k = for _ = 1 to k do step g done

let leader g =
  let found = ref None in
  Array.iteri
    (fun i n -> if Raft.role n.n_raft = Raft.Leader then
        match !found with
        | Some (_, t) when t >= Raft.term n.n_raft -> ()
        | _ -> found := Some (i, Raft.term n.n_raft))
    g.g_nodes;
  Option.map fst !found

(* Run until a leader exists (bounded); elections are randomized but
   seeded, so failure to elect within the bound is a real bug. *)
let await_leader g =
  let n = ref 0 in
  while leader g = None && !n < 200 do step g; incr n done;
  match leader g with
  | Some i -> i
  | None -> Alcotest.fail "no leader elected within 200 ticks"

let submit_ok g cmd =
  let l = await_leader g in
  match Raft.submit g.g_nodes.(l).n_raft cmd with
  | Ok idx -> idx
  | Error _ -> Alcotest.fail "submit on the leader was redirected"

let final_state n = List.rev n.n_state

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)

let test_election_and_replication () =
  let g = mk_group ~seed:11 3 in
  let l = await_leader g in
  (* Exactly one leader once settled, and everyone agrees who. *)
  steps g 30;
  let leaders =
    Array.to_list g.g_nodes
    |> List.filteri (fun _ n -> Raft.role n.n_raft = Raft.Leader)
  in
  Alcotest.(check int) "one leader" 1 (List.length leaders);
  Array.iter
    (fun n ->
      Alcotest.(check (option string)) "everyone knows the leader"
        (Some (Printf.sprintf "m%d" l))
        (Raft.leader_hint n.n_raft))
    g.g_nodes;
  (* A follower redirects to it. *)
  let f = (l + 1) mod 3 in
  (match Raft.submit g.g_nodes.(f).n_raft "nope" with
  | Ok _ -> Alcotest.fail "follower accepted a submit"
  | Error hint ->
    Alcotest.(check (option string)) "redirect names the leader"
      (Some (Printf.sprintf "m%d" l)) hint);
  (* Commands commit and apply in order on every member. *)
  List.iter (fun c -> ignore (submit_ok g c)) [ "a"; "b"; "c" ];
  steps g 30;
  Array.iter
    (fun n ->
      Alcotest.(check (list string)) "applied in order everywhere"
        [ "a"; "b"; "c" ] (final_state n))
    g.g_nodes

let test_crash_recovery_durability () =
  let g = mk_group ~seed:23 3 in
  List.iter (fun c -> ignore (submit_ok g c)) [ "x"; "y" ];
  steps g 30;
  (* Power-cycle the whole group: volatile state gone, hard state only
     through the persist hooks. *)
  Array.iter
    (fun n ->
      Alcotest.(check bool) "hard state was persisted" true (!(n.n_store) <> None);
      Raft.crash_recover n.n_raft)
    g.g_nodes;
  Array.iter
    (fun n ->
      Alcotest.(check (list string)) "state machine rolled back to snapshot" []
        (final_state n))
    g.g_nodes;
  (* A new leader re-advances the commit index and every committed
     command is re-applied — nothing lost, nothing duplicated. *)
  ignore (await_leader g);
  steps g 40;
  Array.iter
    (fun n ->
      Alcotest.(check (list string)) "committed prefix survives the crash"
        [ "x"; "y" ] (final_state n))
    g.g_nodes

let test_snapshot_catchup () =
  (* A tiny compaction threshold and a partitioned straggler: the leader
     compacts past the straggler's log, so on heal the catch-up must go
     through InstallSnapshot, not AppendEntries. *)
  let config = { Raft.default_config with snapshot_threshold = 3 } in
  let g = mk_group ~config ~seed:37 3 in
  let l = await_leader g in
  steps g 10;
  let straggler = (l + 1) mod 3 in
  Sim_net.set_partition g.g_net
    [ [ g.g_nodes.(straggler).n_id ];
      List.filteri (fun i _ -> i <> straggler)
        (Array.to_list (Array.map (fun n -> n.n_id) g.g_nodes)) ];
  for k = 1 to 8 do
    ignore (submit_ok g (Printf.sprintf "c%d" k));
    steps g 6
  done;
  let l = Option.get (leader g) in
  Alcotest.(check bool) "leader compacted its log" true
    (Raft.snapshot_index g.g_nodes.(l).n_raft > 0);
  Sim_net.heal g.g_net;
  steps g 60;
  let expect = final_state g.g_nodes.(l) in
  Alcotest.(check bool) "straggler restored from a snapshot" true
    (Raft.snapshot_index g.g_nodes.(straggler).n_raft > 0);
  Alcotest.(check (list string)) "straggler caught up" expect
    (final_state g.g_nodes.(straggler))

(* ------------------------------------------------------------------ *)
(* qcheck: safety under random partition / crash / timeout schedules   *)

type event =
  | Run of int             (* tick k times *)
  | Partition of int       (* pick one of a fixed set of splits *)
  | Heal
  | Submit of int          (* client submission attempt via node i *)
  | Crash of int           (* crash_recover node i *)

let event_gen n =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun k -> Run (1 + k)) (int_bound 11));
        (2, map (fun i -> Partition i) (int_bound 3));
        (1, return Heal);
        (3, map (fun i -> Submit (i mod n)) (int_bound (n - 1)));
        (1, map (fun i -> Crash (i mod n)) (int_bound (n - 1)));
      ])

let schedule_gen n =
  QCheck.Gen.(pair (int_bound 1_000_000) (list_size (int_range 10 40) (event_gen n)))

let print_schedule (seed, events) =
  Printf.sprintf "seed=%d [%s]" seed
    (String.concat "; "
       (List.map
          (function
            | Run k -> Printf.sprintf "run %d" k
            | Partition i -> Printf.sprintf "partition %d" i
            | Heal -> "heal"
            | Submit i -> Printf.sprintf "submit@%d" i
            | Crash i -> Printf.sprintf "crash %d" i)
          events))

(* The splits a Partition event can choose between (5 nodes): quorum /
   minority, no-quorum three-way, isolate one, lopsided. *)
let splits =
  [|
    [ [ 0; 1; 2 ]; [ 3; 4 ] ];
    [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ];
    [ [ 0 ]; [ 1; 2; 3; 4 ] ];
    [ [ 0; 1; 2; 3 ]; [ 4 ] ];
  |]

let raft_safety_prop (seed, events) =
  let n = 5 in
  let config = { Raft.default_config with snapshot_threshold = 5 } in
  let g = mk_group ~config ~seed:(1 + (seed mod 99991)) n in
  (* term -> leader host observed at that term; the core safety claim is
     that no term ever shows two. *)
  let leaders_by_term : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let election_safe = ref true in
  let committed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let observe () =
    Array.iter
      (fun node ->
        (if Raft.role node.n_raft = Raft.Leader then
           let t = Raft.term node.n_raft in
           match Hashtbl.find_opt leaders_by_term t with
           | None -> Hashtbl.replace leaders_by_term t (Raft.host node.n_raft)
           | Some h -> if h <> Raft.host node.n_raft then election_safe := false);
        (* Anything any node has applied was committed. *)
        List.iter (fun c -> Hashtbl.replace committed c ())
          node.n_state)
      g.g_nodes
  in
  let tick () = step g; observe () in
  let counter = ref 0 in
  List.iter
    (function
      | Run k -> for _ = 1 to k do tick () done
      | Partition i ->
        Sim_net.set_partition g.g_net
          (List.map (List.map (fun j -> g.g_nodes.(j).n_id)) splits.(i))
      | Heal -> Sim_net.heal g.g_net
      | Submit i ->
        incr counter;
        (* Clients are dumb on purpose: try one node, follow one
           redirect, give up otherwise — commitment is never assumed. *)
        let cmd = Printf.sprintf "op%d" !counter in
        (match Raft.submit g.g_nodes.(i).n_raft cmd with
        | Ok _ -> ()
        | Error (Some h) ->
          Array.iter
            (fun node ->
              if Raft.host node.n_raft = h then
                ignore (Raft.submit node.n_raft cmd))
            g.g_nodes
        | Error None -> ());
        tick ()
      | Crash i ->
        Raft.crash_recover g.g_nodes.(i).n_raft;
        tick ())
    events;
  (* Heal and let the group settle: a leader must emerge and every
     member must converge on one state machine. *)
  Sim_net.heal g.g_net;
  for _ = 1 to 300 do tick () done;
  let l =
    match leader g with
    | Some l -> l
    | None -> QCheck.Test.fail_report "no leader after heal + 300 ticks"
  in
  let canonical = final_state g.g_nodes.(l) in
  (* Log matching: wherever two logs share an (index, term) pair, they
     must agree on every earlier shared index too. *)
  let log_matching =
    let ok = ref true in
    Array.iter
      (fun a ->
        Array.iter
          (fun b ->
            if a != b then begin
              let la = Raft.log_view a.n_raft and lb = Raft.log_view b.n_raft in
              let common =
                List.filter_map
                  (fun (i, ta) ->
                    Option.map (fun tb -> (i, ta, tb)) (List.assoc_opt i lb))
                  la
              in
              let agree_max =
                List.fold_left
                  (fun acc (i, ta, tb) -> if ta = tb then max acc i else acc)
                  0 common
              in
              List.iter
                (fun (i, ta, tb) ->
                  if i <= agree_max && ta <> tb then ok := false)
                common
            end)
          g.g_nodes)
      g.g_nodes;
    !ok
  in
  let all_converged =
    Array.for_all (fun node -> final_state node = canonical) g.g_nodes
  in
  (* Durability: everything ever applied anywhere — including before
     crashes and across snapshot compaction — is in the final history. *)
  let durable =
    Hashtbl.fold
      (fun c () acc -> acc && List.mem c canonical)
      committed true
  in
  if not !election_safe then
    QCheck.Test.fail_report "two leaders observed in one term";
  if not log_matching then
    QCheck.Test.fail_report "log matching violated";
  if not all_converged then
    QCheck.Test.fail_report "state machines diverged after heal";
  if not durable then
    QCheck.Test.fail_report "a committed command vanished";
  true

let props =
  [
    QCheck.Test.make ~name:"raft safety under random schedules" ~count:60
      (QCheck.make ~print:print_schedule (schedule_gen 5))
      raft_safety_prop;
  ]

(* ------------------------------------------------------------------ *)
(* Cluster-level: the control plane survives a real UFS crash_reboot   *)

let test_cluster_reboot_durability () =
  let cfg = Gossip.default_config in
  let cluster =
    Cluster.create ~seed:91 ~nhosts:5 ~gossip:cfg
      ~control:(`Raft [ 0; 1; 2 ]) ~journal_blocks:32 ()
  in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let rid = ok (Cluster.add_replica cluster ~host:3 vref) in
  Alcotest.(check bool) "an election happened" true
    (Cluster.raft_leader cluster <> None);
  (* Crash every coordinator at once: buffer caches drop, journals
     replay, raft reloads its hard state from the recovered file and the
     registry is rebuilt from snapshot + re-applied entries. *)
  List.iter (fun i -> ok (Cluster.reboot cluster i)) [ 0; 1; 2 ];
  (* Recovery rolls each member back to its snapshot; the committed
     suffix is re-applied as the next leader re-advances the commit
     index, so wait for the registry to reappear everywhere, not just
     for the election. *)
  let recovered i =
    match Cluster.control_plane (Cluster.host cluster i) with
    | None -> false
    | Some cp -> (
      match Control_plane.volume cp ~alloc:vref.Ids.alloc ~vol:vref.Ids.vol with
      | Some (reps, _) -> List.mem_assoc rid reps
      | None -> false)
  in
  let n = ref 0 in
  while
    (not (List.for_all recovered [ 0; 1; 2 ] && Cluster.raft_leader cluster <> None))
    && !n < 300
  do
    ignore (Cluster.tick_daemons cluster 1);
    incr n
  done;
  Alcotest.(check bool) "re-elected after the crash" true
    (Cluster.raft_leader cluster <> None);
  (* The committed registry survived: every coordinator still reports
     the post-add replica set. *)
  List.iter
    (fun i ->
      match Cluster.control_plane (Cluster.host cluster i) with
      | None -> Alcotest.fail "coordinator lost its control plane"
      | Some cp -> (
        match Control_plane.volume cp ~alloc:vref.Ids.alloc ~vol:vref.Ids.vol with
        | None -> Alcotest.fail "volume registration lost in the crash"
        | Some (reps, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "host%d still knows the added replica" i)
            true (List.mem_assoc rid reps)))
    [ 0; 1; 2 ];
  (* And the control plane still takes writes. *)
  ok (Cluster.remove_replica cluster ~host:3 vref);
  match Cluster.control_plane (Cluster.host cluster 0) with
  | Some cp ->
    let reps, _ =
      Option.get (Control_plane.volume cp ~alloc:vref.Ids.alloc ~vol:vref.Ids.vol)
    in
    Alcotest.(check bool) "post-reboot removal committed" false
      (List.mem_assoc rid reps)
  | None -> Alcotest.fail "control plane missing"

let suite =
  List.map QCheck_alcotest.to_alcotest props
  @ [
      Alcotest.test_case "election and replication" `Quick
        test_election_and_replication;
      Alcotest.test_case "crash recovery keeps committed entries" `Quick
        test_crash_recovery_durability;
      Alcotest.test_case "snapshot catch-up of a compacted straggler" `Quick
        test_snapshot_catchup;
      Alcotest.test_case "control plane survives UFS crash_reboot" `Quick
        test_cluster_reboot_durability;
    ]
