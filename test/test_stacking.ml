(* Stacking claims from the paper's conclusions: "layers can indeed be
   transparently inserted between other layers, and even surround other
   layers", plus §4.3's "Many graft points for a particular volume may
   exist". *)

open Util

let test_nfs_over_nfs () =
  (* host2 mounts host1's export; host1's export is itself an NFS mount
     of host0's UFS: a two-hop chain of identical interfaces. *)
  let clock = Clock.create () in
  let net = Sim_net.create clock in
  let h0 = Sim_net.add_host net "h0" in
  let h1 = Sim_net.add_host net "h1" in
  let h2 = Sim_net.add_host net "h2" in
  let _, fs = fresh_ufs () in
  let s0 = Nfs_server.create net ~host:h0 in
  Nfs_server.add_export s0 ~name:"disk" (Ufs_vnode.root fs);
  let m1 = ok (Nfs_client.mount ~attr_ttl:0 ~name_ttl:0 net ~client:h1 ~server:h0 ~export:"disk") in
  let s1 = Nfs_server.create net ~host:h1 in
  Nfs_server.add_export s1 ~name:"relay" (Nfs_client.root m1);
  let m2 = ok (Nfs_client.mount ~attr_ttl:0 ~name_ttl:0 net ~client:h2 ~server:h1 ~export:"relay") in
  let root = Nfs_client.root m2 in
  (* Full read/write/namespace activity through both hops. *)
  let d = ok (root.Vnode.mkdir "dir") in
  let f = ok (d.Vnode.create "file") in
  ok (Vnode.write_all f "across two NFS hops");
  Alcotest.(check string) "roundtrip" "across two NFS hops" (read_file root "dir/file");
  ok (d.Vnode.rename "file" d "renamed");
  Alcotest.(check string) "rename through the chain" "across two NFS hops"
    (read_file root "dir/renamed");
  (* The data really lives in h0's UFS. *)
  let inum = ok (Ufs.dir_lookup fs (Ufs.root fs) "dir") in
  let inum = ok (Ufs.dir_lookup fs inum "renamed") in
  Alcotest.(check string) "on the origin disk" "across two NFS hops"
    (ok (Ufs.read fs inum ~off:0 ~len:64));
  (* A partition between h1 and h0 breaks h2's access too. *)
  Sim_net.set_partition net [ [ h1; h2 ]; [ h0 ] ];
  expect_err Errno.EUNREACHABLE (Result.map (fun _ -> ()) (root.Vnode.readdir ()))

let test_ficus_logical_over_nfs_relay () =
  (* The cluster already places NFS between logical and physical; check
     a null layer can be slipped between UFS and the physical layer too
     ("inserted between other layers" at a different boundary). *)
  let _, fs = fresh_ufs () in
  let counters = Counters.create () in
  let container = Null_layer.wrap ~counters (Ufs_vnode.root fs) in
  let clock = Clock.create () in
  let phys =
    ok
      (Physical.create ~container ~clock ~host:"h" ~vref:{ Ids.alloc = 0; vol = 1 } ~rid:1
         ~peers:[ (1, "h") ] ())
  in
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "x") in
  ok (Vnode.write_all f "fine");
  Alcotest.(check string) "works through the interposed layer" "fine" (read_file root "x");
  Alcotest.(check bool) "layer actually crossed" true
    (Counters.get counters "layer.crossings" > 0)

let test_many_graft_points_same_volume () =
  (* §4.3: "Many graft points for a particular volume may exist, even
     within a single volume.  The resulting organization of volumes
     would then be a directed acyclic graph". *)
  let cluster = Cluster.create ~nhosts:2 () in
  let super = ok (Cluster.create_volume cluster ~on:[ 0 ]) in
  let shared = ok (Cluster.create_volume cluster ~on:[ 1 ]) in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) super) in
  ok
    (Physical.make_graft_point phys0 ~parent:[] ~name:"projects" ~target:shared
       ~replicas:[ (1, "host1") ]);
  ok
    (Physical.make_graft_point phys0 ~parent:[] ~name:"backup" ~target:shared
       ~replicas:[ (1, "host1") ]);
  let sroot = ok (Cluster.logical_root cluster 1 shared) in
  create_file sroot "data" "one volume, two doors";
  let root0 = ok (Cluster.logical_root cluster 0 super) in
  Alcotest.(check string) "first door" "one volume, two doors"
    (read_file root0 "projects/data");
  Alcotest.(check string) "second door" "one volume, two doors"
    (read_file root0 "backup/data");
  (* One underlying volume: a write through one door is visible through
     the other, and only one graft exists. *)
  write_file root0 "projects/data" "updated";
  Alcotest.(check string) "same volume behind both" "updated" (read_file root0 "backup/data");
  let log0 = Cluster.logical (Cluster.host cluster 0) in
  Alcotest.(check int) "grafted once" 1
    (Counters.get (Logical.counters log0) "logical.autograft")

let test_crash_consistency_random_failpoints () =
  (* Inject a disk failure at a pseudo-random point during a workload;
     after "reboot" (remount, cold cache), the file system must mount
     and serve whatever committed state it holds, without a crash or a
     parse error. *)
  let attempts = 30 in
  let survived = ref 0 in
  for seed = 1 to attempts do
    let disk = Disk.create ~nblocks:4096 ~block_size:1024 () in
    let t = ref 0 in
    let now () = incr t; !t in
    let fs = ok (Ufs.mkfs ~now disk) in
    let root = Ufs_vnode.root fs in
    let rng = Random.State.make [| seed |] in
    Disk.fail_writes_after disk (Random.State.int rng 60);
    (* Run ops until the injected failure bites (or all complete). *)
    (try
       for i = 0 to 19 do
         let name = Printf.sprintf "f%d" i in
         match root.Vnode.create name with
         | Error _ -> raise Exit
         | Ok f ->
           (match Vnode.write_all f (String.make 100 'x') with
            | Error _ -> raise Exit
            | Ok () -> ());
           if i mod 3 = 0 then
             match root.Vnode.remove name with Error _ -> raise Exit | Ok () -> ()
       done
     with Exit -> ());
    Disk.clear_failures disk;
    (* Reboot: remount from the media. *)
    (match Ufs.mount ~now disk with
     | Error e -> Alcotest.failf "seed %d: remount failed: %s" seed (Errno.to_string e)
     | Ok fs2 ->
       let root2 = Ufs_vnode.root fs2 in
       (match root2.Vnode.readdir () with
        | Error e -> Alcotest.failf "seed %d: readdir failed: %s" seed (Errno.to_string e)
        | Ok entries ->
          (* Every listed file must be fully readable. *)
          List.iter
            (fun e ->
              match root2.Vnode.lookup e.Vnode.entry_name with
              | Error err ->
                Alcotest.failf "seed %d: dangling entry %s: %s" seed e.Vnode.entry_name
                  (Errno.to_string err)
              | Ok v ->
                (match Vnode.read_all v with
                 | Ok _ -> ()
                 | Error err ->
                   Alcotest.failf "seed %d: unreadable %s: %s" seed e.Vnode.entry_name
                     (Errno.to_string err)))
            entries;
          incr survived))
  done;
  Alcotest.(check int) "all crash points recoverable" attempts !survived

let suite =
  [
    case "NFS over NFS (two hops)" test_nfs_over_nfs;
    case "null layer under the physical layer" test_ficus_logical_over_nfs_relay;
    case "many graft points, one volume" test_many_graft_points_same_volume;
    case "crash consistency at random failpoints" test_crash_consistency_random_failpoints;
  ]
