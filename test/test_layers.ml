(* The three layers the paper forecasts (§1): performance monitoring,
   encryption, user authentication — inserted transparently, even
   *under* the whole Ficus stack. *)

open Util

let ufs_root () =
  let _, fs = fresh_ufs () in
  Ufs_vnode.root fs

(* ---------------- measurement ---------------- *)

let test_measure_counts_ops () =
  let metrics = Metrics.create () in
  let root = Measure_layer.wrap ~metrics (ufs_root ()) in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "x");
  let _ = ok (Vnode.read_all f) in
  let _ = root.Vnode.lookup "missing" in
  Alcotest.(check int) "creates" 1 (Metrics.counter metrics "measure.create.calls");
  Alcotest.(check int) "writes" 1 (Metrics.counter metrics "measure.write.calls");
  (* read_all = getattr + read *)
  Alcotest.(check int) "reads" 1 (Metrics.counter metrics "measure.read.calls");
  Alcotest.(check int) "lookup errors" 1 (Metrics.counter metrics "measure.lookup.errors");
  Alcotest.(check bool) "totals" true (Measure_layer.ops_total metrics >= 4);
  Alcotest.(check int) "errors total" 1 (Measure_layer.errors_total metrics);
  let report = Measure_layer.report metrics in
  Alcotest.(check bool) "report row" true (List.mem ("lookup", 1, 1) report)

let test_measure_timing () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let base = ufs_root () in
  let file = ok (base.Vnode.create "f") in
  ok (file.Vnode.write ~off:0 "abc");
  (* A deliberately slow lower vnode: every read burns 5 ticks. *)
  let slow =
    { file with
      Vnode.read =
        (fun ~off ~len ->
          Clock.advance clock 5;
          file.Vnode.read ~off ~len);
    }
  in
  let measured = Measure_layer.wrap ~clock ~metrics slow in
  let _ = ok (measured.Vnode.read ~off:0 ~len:3) in
  let _ = ok (measured.Vnode.read ~off:0 ~len:3) in
  Alcotest.(check int) "ticks attributed" 10 (Measure_layer.ticks_total metrics "read");
  Alcotest.(check (option (triple int int int)))
    "read latency percentiles" (Some (5, 5, 5))
    (Measure_layer.percentiles metrics "read")

let test_measure_transparent_rename () =
  let metrics = Metrics.create () in
  let root = Measure_layer.wrap ~metrics (ufs_root ()) in
  let d1 = ok (root.Vnode.mkdir "d1") in
  let d2 = ok (root.Vnode.mkdir "d2") in
  let _ = ok (d1.Vnode.create "f") in
  (* The destination directory is a measured vnode; the layer below must
     still recognize it. *)
  ok (d1.Vnode.rename "f" d2 "g");
  Alcotest.(check int) "renames" 1 (Metrics.counter metrics "measure.rename.calls")

(* ---------------- encryption ---------------- *)

let test_crypt_roundtrip () =
  let root = Crypt_layer.wrap ~key:"secret" (ufs_root ()) in
  let f = ok (root.Vnode.create "f") in
  ok (Vnode.write_all f "attack at dawn");
  Alcotest.(check string) "plaintext through the layer" "attack at dawn"
    (ok (Vnode.read_all f))

let test_crypt_random_access () =
  let root = Crypt_layer.wrap ~key:"k3y" (ufs_root ()) in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "0123456789");
  (* Overwrite a slice at an odd offset, then read another slice. *)
  ok (f.Vnode.write ~off:3 "XYZ");
  Alcotest.(check string) "mixed" "012XYZ6789" (ok (f.Vnode.read ~off:0 ~len:10));
  Alcotest.(check string) "slice" "YZ67" (ok (f.Vnode.read ~off:4 ~len:4))

let test_crypt_ciphertext_at_rest () =
  let base = ufs_root () in
  let root = Crypt_layer.wrap ~key:"secret" base in
  let f = ok (root.Vnode.create "f") in
  ok (Vnode.write_all f "attack at dawn");
  (* Bypass the layer: the stored bytes must not be the plaintext. *)
  let raw = ok (Vnode.read_all (ok (base.Vnode.lookup "f"))) in
  Alcotest.(check bool) "encrypted at rest" true (raw <> "attack at dawn");
  (* XOR involution: wrapping twice with the same key exposes plaintext. *)
  let double = Crypt_layer.wrap ~key:"secret" root in
  Alcotest.(check string) "involution" raw
    (ok (Vnode.read_all (ok (double.Vnode.lookup "f"))))

let test_ficus_physical_over_crypt () =
  (* The paper's punchline: layers "can indeed be transparently inserted
     between other layers".  Run the whole physical layer over an
     encrypting stack: its DIR and aux files are encrypted at rest and
     everything still works. *)
  let _, fs = fresh_ufs () in
  let base = Ufs_vnode.root fs in
  let container = Crypt_layer.wrap ~key:"volume-key" base in
  let clock = Clock.create () in
  let phys =
    ok
      (Physical.create ~container ~clock ~host:"h" ~vref:{ Ids.alloc = 0; vol = 1 } ~rid:1
         ~peers:[ (1, "h") ] ())
  in
  let root = Physical.root phys in
  let d = ok (root.Vnode.mkdir "docs") in
  let f = ok (d.Vnode.create "plan") in
  ok (Vnode.write_all f "encrypted underneath");
  Alcotest.(check string) "read through the full stack" "encrypted underneath"
    (read_file root "docs/plan");
  (* The on-disk DIR file is ciphertext. *)
  let hexroot = ok (base.Vnode.lookup (Ids.fid_to_hex Ids.root_fid)) in
  let raw_dir = ok (Vnode.read_all (ok (hexroot.Vnode.lookup "DIR"))) in
  Alcotest.(check bool) "DIR file encrypted at rest" true
    (Fdir.decode raw_dir = None)

(* ---------------- access control ---------------- *)

let setup_owned () =
  let base = ufs_root () in
  (* Superuser creates a private file (0600) and a public one (0644). *)
  let su = Access_layer.wrap ~uid:0 base in
  let priv = ok (su.Vnode.create "private") in
  ok (Vnode.write_all priv "sekrit");
  ok (priv.Vnode.setattr { Vnode.setattr_none with set_uid = Some 1; set_mode = Some 0o600 });
  let pub = ok (su.Vnode.create "public") in
  ok (Vnode.write_all pub "hello");
  ok (pub.Vnode.setattr { Vnode.setattr_none with set_uid = Some 1; set_mode = Some 0o644 });
  base

let test_owner_reads_private () =
  let base = setup_owned () in
  let alice = Access_layer.wrap ~uid:1 base in
  Alcotest.(check string) "owner reads" "sekrit"
    (ok (Vnode.read_all (ok (alice.Vnode.lookup "private"))))

let test_other_denied_private () =
  let base = setup_owned () in
  let bob = Access_layer.wrap ~uid:2 base in
  let f = ok (bob.Vnode.lookup "private") in
  expect_err Errno.EACCES (Result.map (fun _ -> ()) (Vnode.read_all f));
  expect_err Errno.EACCES (f.Vnode.write ~off:0 "defaced");
  (* Public file still readable, but not writable (0644, not owner). *)
  let p = ok (bob.Vnode.lookup "public") in
  Alcotest.(check string) "public read ok" "hello" (ok (Vnode.read_all p));
  expect_err Errno.EACCES (p.Vnode.write ~off:0 "defaced")

let test_superuser_bypasses () =
  let base = setup_owned () in
  let su = Access_layer.wrap ~uid:0 base in
  let f = ok (su.Vnode.lookup "private") in
  Alcotest.(check string) "root reads anything" "sekrit" (ok (Vnode.read_all f));
  ok (f.Vnode.write ~off:0 "SEKRIT")

let test_directory_write_gated () =
  let base = setup_owned () in
  let su = Access_layer.wrap ~uid:0 base in
  let d = ok (su.Vnode.mkdir "readonly-dir") in
  ok (d.Vnode.setattr { Vnode.setattr_none with set_mode = Some 0o555 });
  let bob = Access_layer.wrap ~uid:2 base in
  let bd = ok (bob.Vnode.lookup "readonly-dir") in
  expect_err Errno.EACCES (Result.map (fun _ -> ()) (bd.Vnode.create "nope"));
  expect_err Errno.EACCES (Result.map (fun _ -> ()) (bd.Vnode.mkdir "nope"));
  (* Traversal (x bit) is allowed. *)
  let _ = ok (bd.Vnode.readdir ()) in
  ()

let test_chmod_own_file_without_write_bit () =
  let base = setup_owned () in
  let alice = Access_layer.wrap ~uid:1 base in
  let f = ok (alice.Vnode.lookup "private") in
  ok (f.Vnode.setattr { Vnode.setattr_none with set_mode = Some 0o400 });
  (* Now even the owner cannot write... *)
  expect_err Errno.EACCES (f.Vnode.write ~off:0 "x");
  (* ...but can still chmod it back. *)
  ok (f.Vnode.setattr { Vnode.setattr_none with set_mode = Some 0o600 });
  ok (f.Vnode.write ~off:0 "x")

let test_stacked_all_three () =
  (* monitoring over access control over encryption over UFS. *)
  let metrics = Metrics.create () in
  let base = ufs_root () in
  let stack =
    Measure_layer.wrap ~metrics
      (Access_layer.wrap ~uid:0 (Crypt_layer.wrap ~key:"k" base))
  in
  let f = ok (stack.Vnode.create "f") in
  ok (Vnode.write_all f "through three layers");
  Alcotest.(check string) "roundtrip" "through three layers" (ok (Vnode.read_all f));
  Alcotest.(check bool) "measured" true (Measure_layer.ops_total metrics > 0);
  let raw = ok (Vnode.read_all (ok (base.Vnode.lookup "f"))) in
  Alcotest.(check bool) "still encrypted below" true (raw <> "through three layers")

let suite =
  [
    case "measure: counts ops and errors" test_measure_counts_ops;
    case "measure: attributes simulated time" test_measure_timing;
    case "measure: transparent to sibling ops" test_measure_transparent_rename;
    case "crypt: roundtrip" test_crypt_roundtrip;
    case "crypt: random access" test_crypt_random_access;
    case "crypt: ciphertext at rest + involution" test_crypt_ciphertext_at_rest;
    case "crypt: full Ficus physical layer on top" test_ficus_physical_over_crypt;
    case "access: owner reads private" test_owner_reads_private;
    case "access: others denied" test_other_denied_private;
    case "access: superuser bypasses" test_superuser_bypasses;
    case "access: directory writes gated" test_directory_write_gated;
    case "access: chmod own file" test_chmod_own_file_without_write_bit;
    case "all three layers stacked" test_stacked_all_three;
  ]
