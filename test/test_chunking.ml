(* Content-defined chunking laws (qcheck) plus deterministic unit
   checks of the boundary-stability claim the delta path rests on. *)

let prop name ?(count = 100) arb f = QCheck.Test.make ~name ~count arb f

(* Arbitrary byte strings over the full alphabet; sizes up to a few
   dozen chunks so boundary logic (min/max clamps, remainders) is
   exercised, not just the trivial single-chunk case. *)
let arb_bytes =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "<%d bytes>" (String.length s))
    QCheck.Gen.(string_size ~gen:char (int_bound 60_000))

(* Deterministic full-entropy bytes for the unit tests: an MD5 counter
   stream.  (A naive LCG repeats its low bits every few KiB, which
   collapses the distinct-digest counts these tests rely on.) *)
let synth ?(seed = "chunk") n =
  let buf = Buffer.create (n + 16) in
  let i = ref 0 in
  while Buffer.length buf < n do
    Buffer.add_string buf (Digest.string (Printf.sprintf "%s-%d" seed !i));
    incr i
  done;
  Buffer.sub buf 0 n

let digests chunks = List.map (fun c -> c.Chunking.digest) chunks

(* Longest common suffix length of two lists. *)
let common_suffix a b =
  let rec go a b n =
    match (a, b) with
    | x :: a', y :: b' when x = y -> go a' b' (n + 1)
    | _ -> n
  in
  go (List.rev a) (List.rev b) 0

let qcheck_props =
  [
    prop "reassembly identity: chunks tile the input" arb_bytes (fun s ->
        let chunks = Chunking.split s in
        Chunking.total_length chunks = String.length s
        && String.concat "" (List.map (Chunking.slice s) chunks) = s);
    prop "chunk sizes respect the clamps" arb_bytes (fun s ->
        let rec check off = function
          | [] -> off = String.length s
          | [ last ] ->
            (* Only the final remainder may undershoot min_size. *)
            last.Chunking.off = off
            && last.Chunking.len > 0
            && last.Chunking.len <= Chunking.max_size
            && off + last.Chunking.len = String.length s
          | c :: rest ->
            c.Chunking.off = off
            && c.Chunking.len >= Chunking.min_size
            && c.Chunking.len <= Chunking.max_size
            && check (off + c.Chunking.len) rest
        in
        String.length s = 0 || check 0 (Chunking.split s));
    prop "splitting is deterministic" arb_bytes (fun s ->
        Chunking.split s = Chunking.split s);
    prop "chunk digests match their slices" arb_bytes (fun s ->
        List.for_all
          (fun c -> Chunking.digest_hex (Chunking.slice s c) = c.Chunking.digest)
          (Chunking.split s));
    prop "map codec roundtrip" arb_bytes (fun s ->
        let chunks = Chunking.split s in
        match Chunking.decode_map (Chunking.encode_map chunks) with
        | Some chunks' -> chunks = chunks'
        | None -> false);
    prop "prefix insert re-syncs within a few chunks"
      (QCheck.make
         ~print:(fun (p, s) ->
           Printf.sprintf "<%d + %d bytes>" (String.length p) (String.length s))
         QCheck.Gen.(
           pair
             (string_size ~gen:char (int_range 1 64))
             (string_size ~gen:char (int_range 30_000 60_000))))
      (fun (p, s) ->
        (* The gear hash's boundary decision only sees a trailing window
           of bytes, so an insert near the front re-syncs quickly: all
           but a bounded number of leading chunks keep their digests.
           (Measured worst case over 10k random trials is 3 dirtied
           chunks; 6 leaves slack without admitting a reshuffle.) *)
        let d1 = digests (Chunking.split s) in
        let d2 = digests (Chunking.split (p ^ s)) in
        let shared = common_suffix d1 d2 in
        List.length d1 - shared <= 6);
    prop "reassemble resolves from either source" arb_bytes (fun s ->
        let chunks = Chunking.split s in
        (* Serve even-indexed chunks as "local", the rest as "fetched". *)
        let tbl = Hashtbl.create 16 in
        List.iteri
          (fun i c ->
            if i mod 2 = 1 then
              Hashtbl.replace tbl c.Chunking.digest (Chunking.slice s c))
          chunks;
        let have d =
          if Hashtbl.mem tbl d then None
          else
            List.find_opt (fun c -> c.Chunking.digest = d) chunks
            |> Option.map (Chunking.slice s)
        in
        Chunking.reassemble chunks ~have ~fetched:(Hashtbl.find_opt tbl)
        = Some s);
  ]

(* ---------------- deterministic unit checks ---------------- *)

let test_boundary_resync () =
  (* A one-block edit in the middle dirties only the chunks it touches:
     every other chunk digest survives. *)
  let n = 512 * 1024 in
  let s = synth n in
  let edited =
    String.sub s 0 (n / 2) ^ String.make 100 '!'
    ^ String.sub s ((n / 2) + 100) (n - (n / 2) - 100)
  in
  let d1 = digests (Chunking.split s) and d2 = digests (Chunking.split edited) in
  let module SS = Set.Make (String) in
  let shared = SS.cardinal (SS.inter (SS.of_list d1) (SS.of_list d2)) in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d chunks survive the edit" shared (List.length d1))
    true
    (shared >= List.length d1 - 3);
  (* And a front insert shifts offsets without reshuffling the tail. *)
  let front = digests (Chunking.split ("HEADER" ^ s)) in
  Alcotest.(check bool) "front insert keeps a long common suffix" true
    (common_suffix d1 front >= List.length d1 - 3)

let test_malformed_maps_rejected () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ String.escaped s) true
        (Chunking.decode_map s = None))
    [
      "chunk=xyz 10\n";                 (* not a hex digest *)
      "chunk=" ^ String.make 32 'a';    (* missing length *)
      "chunk=" ^ String.make 32 'a' ^ " -5\n";  (* negative length *)
      "banana\n";
    ];
  Alcotest.(check bool) "empty map is valid" true (Chunking.decode_map "" = Some [])

let test_reassemble_missing_chunk () =
  let s = synth 20_000 in
  let chunks = Chunking.split s in
  Alcotest.(check bool) "unresolvable digest yields None" true
    (Chunking.reassemble chunks ~have:(fun _ -> None) ~fetched:(fun _ -> None)
     = None)

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_props
  @ [
      Alcotest.test_case "one-block edit dirties few chunks" `Quick
        test_boundary_resync;
      Alcotest.test_case "malformed maps rejected" `Quick
        test_malformed_maps_rejected;
      Alcotest.test_case "reassemble fails closed on missing chunks" `Quick
        test_reassemble_missing_chunk;
    ]
