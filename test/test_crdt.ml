(* The CRDT directory-merge subsystem: the pure decision kernel
   (Crdt_tree), the multi-value file registers (Mv_register), and the
   end-to-end behavior under Cluster — cycle repair, pluggable
   resolvers, the legacy oracle, and crash durability of mid-merge
   repair state. *)

open Util

(* ------------------------------------------------------------------ *)
(* Pure kernel: Crdt_tree                                              *)

let root = (0, 1)
let orphanage = (0, 2)

let link p c name birth = { Crdt_tree.l_parent = p; l_child = c; l_name = name; l_birth = birth }

let attaches res =
  List.filter_map
    (function Crdt_tree.Attach n -> Some n | _ -> None)
    res.Crdt_tree.decisions

let demotes res =
  List.filter_map
    (function Crdt_tree.Demote l -> Some l | _ -> None)
    res.Crdt_tree.decisions

let keeps res =
  List.filter_map
    (function Crdt_tree.Keep l -> Some l | _ -> None)
    res.Crdt_tree.decisions

let test_tree_orphan_attach () =
  (* A node nobody links to goes to the orphanage; a normal child does
     not. *)
  let c = (3, 7) in
  let d = (2, 9) in
  let res =
    Crdt_tree.resolve ~root ~orphanage ~nodes:[ c; d ]
      ~links:[ link root d "d" (1, 4) ]
  in
  Alcotest.(check int) "one orphan" 1 res.Crdt_tree.orphans;
  Alcotest.(check bool) "c attached" true (List.mem c (attaches res));
  Alcotest.(check bool) "d kept" true
    (List.exists (fun l -> l.Crdt_tree.l_child = d) (keeps res));
  Alcotest.(check int) "no cycles" 0 res.Crdt_tree.cycles_broken

let test_tree_multi_parent_demote () =
  (* Two live parents for one child: the later birth sequence wins, the
     other is demoted — same answer regardless of link order. *)
  let c = (3, 7) in
  let p = (2, 5) in
  let l_old = link root c "early" (1, 3) in
  let l_new = link p c "late" (2, 8) in
  let check links =
    let res =
      Crdt_tree.resolve ~root ~orphanage ~nodes:[ c; p ]
        ~links:(link root p "p" (1, 2) :: links)
    in
    Alcotest.(check bool) "late birth kept" true
      (List.exists (fun l -> l.Crdt_tree.l_name = "late") (keeps res));
    Alcotest.(check bool) "early birth demoted" true
      (List.exists (fun l -> l.Crdt_tree.l_name = "early") (demotes res));
    Alcotest.(check int) "one loser" 1 res.Crdt_tree.losers
  in
  check [ l_old; l_new ];
  check [ l_new; l_old ]

let test_tree_orphanage_link_priority () =
  (* A completed repair (an orphanage parent link) beats any later
     rename: the anti-oscillation rule. *)
  let c = (3, 7) in
  let repaired = link orphanage c "0003.0007" (0, 1) in
  let renamed = link root c "back" (5, 99) in
  let res =
    Crdt_tree.resolve ~root ~orphanage ~nodes:[ c ] ~links:[ renamed; repaired ]
  in
  Alcotest.(check bool) "orphanage link kept" true
    (List.exists (fun l -> l.Crdt_tree.l_parent = orphanage) (keeps res));
  Alcotest.(check bool) "rename demoted" true
    (List.exists (fun l -> l.Crdt_tree.l_name = "back") (demotes res))

let test_tree_cycle_cut_at_min_fid () =
  (* a -> b -> a unreachable from the root: the cycle is cut by
     attaching its smallest fid and demoting the link that kept it in
     the cycle. *)
  let a = (1, 5) and b = (2, 9) in
  let la = link b a "x" (1, 6) in
  (* a lives in b *)
  let lb = link a b "y" (2, 4) in
  (* b lives in a *)
  let res = Crdt_tree.resolve ~root ~orphanage ~nodes:[ a; b ] ~links:[ la; lb ] in
  Alcotest.(check int) "one cycle" 1 res.Crdt_tree.cycles_broken;
  Alcotest.(check (list (pair int int))) "min fid attached" [ a ] (attaches res);
  Alcotest.(check bool) "a's parent link demoted" true
    (List.exists (fun l -> l.Crdt_tree.l_name = "x") (demotes res));
  Alcotest.(check bool) "b stays under a" true
    (List.exists (fun l -> l.Crdt_tree.l_name = "y") (keeps res))

let test_tree_resolve_order_independent () =
  (* Same link set, any presentation order: identical decision sets. *)
  let a = (1, 5) and b = (2, 9) and c = (3, 3) in
  let links =
    [
      link b a "x" (1, 6);
      link a b "y" (2, 4);
      link root c "c" (1, 2);
      link a c "c2" (2, 7);
    ]
  in
  let canon res =
    List.sort compare
      (List.map
         (function
           | Crdt_tree.Keep l -> ("keep", l.Crdt_tree.l_name)
           | Crdt_tree.Demote l -> ("demote", l.Crdt_tree.l_name)
           | Crdt_tree.Attach (i, u) -> ("attach", Printf.sprintf "%d.%d" i u))
         res.Crdt_tree.decisions)
  in
  let r1 = Crdt_tree.resolve ~root ~orphanage ~nodes:[ a; b; c ] ~links in
  let r2 =
    Crdt_tree.resolve ~root ~orphanage ~nodes:[ c; b; a ] ~links:(List.rev links)
  in
  Alcotest.(check (list (pair string string))) "same decisions" (canon r1) (canon r2)

(* ------------------------------------------------------------------ *)
(* Mv_register                                                         *)

let v rid n data =
  { Mv_register.mv_vv = Version_vector.singleton rid n; mv_data = data }

let test_mv_antichain () =
  let base = v 1 1 "old" in
  let newer = { base with Mv_register.mv_vv = Version_vector.bump base.Mv_register.mv_vv 1 } in
  let reg = Mv_register.add (Mv_register.add Mv_register.empty base) newer in
  Alcotest.(check int) "dominated dropped" 1 (Mv_register.cardinal reg);
  let reg2 = Mv_register.add reg (v 2 1 "other") in
  Alcotest.(check int) "concurrent kept" 2 (Mv_register.cardinal reg2)

let test_mv_order_independence () =
  let vs = [ v 1 3 "a"; v 2 1 "b"; v 3 2 "c" ] in
  let build l = List.fold_left Mv_register.add Mv_register.empty l in
  let datas reg = List.map (fun x -> x.Mv_register.mv_data) (Mv_register.versions reg) in
  Alcotest.(check (list string)) "insertion order irrelevant"
    (datas (build vs))
    (datas (build (List.rev vs)));
  Alcotest.(check (list string)) "join agrees"
    (datas (build vs))
    (datas (Mv_register.join (build [ List.hd vs ]) (build (List.tl vs))))

let test_mv_lww_winner () =
  (* Largest vv sum wins; ties break on data digest, identically in
     both insertion orders. *)
  let a = v 1 5 "heavy" and b = v 2 2 "light" in
  let w reg = (Option.get (Mv_register.winner reg)).Mv_register.mv_data in
  Alcotest.(check string) "heavier history wins" "heavy"
    (w (Mv_register.add (Mv_register.add Mv_register.empty b) a));
  let t1 = v 1 2 "alpha" and t2 = v 2 2 "beta" in
  let w12 = w (Mv_register.add (Mv_register.add Mv_register.empty t1) t2) in
  let w21 = w (Mv_register.add (Mv_register.add Mv_register.empty t2) t1) in
  Alcotest.(check string) "tie breaks identically" w12 w21

let test_mv_merge_all () =
  let f a b = a ^ "|" ^ b in
  let vs = [ v 1 1 "x"; v 2 3 "y"; v 3 2 "z" ] in
  let build l = List.fold_left Mv_register.add Mv_register.empty l in
  let m reg = (Option.get (Mv_register.merge_all f reg)).Mv_register.mv_data in
  Alcotest.(check string) "fold order is lww order" (m (build vs)) (m (build (List.rev vs)));
  Alcotest.(check bool) "merge vv dominates inputs" true
    (let merged = Option.get (Mv_register.merge_all f (build vs)) in
     List.for_all
       (fun x -> Version_vector.dominates merged.Mv_register.mv_vv x.Mv_register.mv_vv)
       vs)

(* ------------------------------------------------------------------ *)
(* Cluster helpers                                                     *)

let phys cluster vref i = Option.get (Cluster.replica (Cluster.host cluster i) vref)

let digest_of cluster vref i = ok (Crdt_merge.digest (phys cluster vref i))

let stats_of cluster vref i = ok (Crdt_merge.tree_stats (phys cluster vref i))

let check_clean_tree cluster vref i =
  let s = stats_of cluster vref i in
  Alcotest.(check int)
    (Printf.sprintf "host%d: no unreachable dirs" i)
    0 s.Crdt_merge.ts_unreachable_dirs;
  Alcotest.(check int) (Printf.sprintf "host%d: no cycles" i) 0 s.Crdt_merge.ts_cycles

(* Every regular file's contents, live tree only. *)
let replica_contents p =
  let rec walk path acc =
    match Physical.fetch_dir p path with
    | Error _ -> acc
    | Ok fdir ->
      List.fold_left
        (fun acc (_, (e : Fdir.entry)) ->
          let child = path @ [ e.Fdir.fid ] in
          match e.Fdir.kind with
          | Aux_attrs.Freg ->
            (match Physical.fetch_file p child with
             | Ok (_, d) -> d :: acc
             | Error _ -> acc)
          | Aux_attrs.Fdir | Aux_attrs.Fgraft -> walk child acc)
        acc (Fdir.live fdir)
  in
  List.sort compare (walk [] [])

(* The concurrent cross-rename that makes a cycle: a -> b/x while
   b -> a/y in the other partition. *)
let run_cross_rename ~dir_merge =
  let cluster = Cluster.create ~nhosts:2 ~dir_merge () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (Namei.mkdir_p ~root:root0 "a/inner") in
  let _ = ok (Namei.mkdir_p ~root:root0 "b") in
  create_file root0 "a/inner/keep" "payload";
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  let b0 = ok (root0.Vnode.lookup "b") in
  ok (root0.Vnode.rename "a" b0 "x");
  let a1 = ok (root1.Vnode.lookup "a") in
  ok (root1.Vnode.rename "b" a1 "y");
  Cluster.heal cluster;
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:40 ()) in
  (cluster, vref)

let test_cycle_repair_crdt () =
  let cluster, vref = run_cross_rename ~dir_merge:`Crdt in
  check_clean_tree cluster vref 0;
  check_clean_tree cluster vref 1;
  Alcotest.(check string) "replicas hold the same repaired tree"
    (digest_of cluster vref 0) (digest_of cluster vref 1);
  (* The subtree survived: the file is reachable on both replicas. *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "host%d: payload reachable" i)
        true
        (List.mem "payload" (replica_contents (phys cluster vref i))))
    [ 0; 1 ];
  (* lost+found is where the cycle's cut node landed — a live root
     entry, same name everywhere. *)
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let (_ : Vnode.t) = ok (root0.Vnode.lookup Physical.lost_found_name) in
  ()

let test_cycle_not_silent_legacy () =
  (* The legacy arm of the same schedule must at least report the
     remove/update conflict — the subtree may land in the replica-local
     ORPHANS area, but never disappears without a log entry. *)
  let cluster, vref = run_cross_rename ~dir_merge:`Legacy in
  let reported i =
    List.exists
      (fun (e : Conflict_log.entry) ->
        match e.Conflict_log.detail with
        | Conflict_log.Removed_while_updated _ -> true
        | _ -> false)
      (Conflict_log.all (Physical.conflicts (phys cluster vref i)))
  in
  Alcotest.(check bool) "legacy reports the orphaned subtree" true
    (reported 0 || reported 1)

(* ------------------------------------------------------------------ *)
(* Resolvers, end to end                                               *)

let concurrent_write_cluster ~resolver =
  let cluster = Cluster.create ~nhosts:2 ~dir_merge:`Crdt ~resolver () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "base";
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  write_file root0 "f" "from-zero";
  write_file root1 "f" "from-one";
  Cluster.heal cluster;
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:40 ()) in
  (cluster, vref)

let pending_count p = List.length (Conflict_log.pending (Physical.conflicts p))

let test_resolver_lww () =
  let cluster, vref = concurrent_write_cluster ~resolver:Resolver.Lww in
  let c0 = read_file (ok (Cluster.logical_root cluster 0 vref)) "f" in
  let c1 = read_file (ok (Cluster.logical_root cluster 1 vref)) "f" in
  Alcotest.(check string) "same winner everywhere" c0 c1;
  Alcotest.(check bool) "winner is one of the writes" true
    (List.mem c0 [ "from-zero"; "from-one" ]);
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "host%d: nothing pending" i)
        0
        (pending_count (phys cluster vref i)))
    [ 0; 1 ];
  Alcotest.(check string) "digests agree" (digest_of cluster vref 0)
    (digest_of cluster vref 1)

let test_resolver_app_merge () =
  let merge a b = a ^ "+" ^ b in
  let cluster, vref = concurrent_write_cluster ~resolver:(Resolver.App_merge merge) in
  let c0 = read_file (ok (Cluster.logical_root cluster 0 vref)) "f" in
  let c1 = read_file (ok (Cluster.logical_root cluster 1 vref)) "f" in
  Alcotest.(check string) "same merged contents" c0 c1;
  Alcotest.(check bool) "merge combined both versions" true
    (String.length c0 > String.length "from-zero");
  List.iter
    (fun i -> Alcotest.(check int) "nothing pending" 0 (pending_count (phys cluster vref i)))
    [ 0; 1 ]

let test_resolver_owner_report_round_trip () =
  (* Default resolver: the conflict stays in the log as a multi-value
     register until the owner picks; resolving at one replica then
     converging clears everyone. *)
  let cluster, vref = concurrent_write_cluster ~resolver:Resolver.Owner_report in
  let p0 = phys cluster vref 0 in
  let regs = Crdt_merge.pending_registers p0 in
  Alcotest.(check int) "one pending register" 1 (List.length regs);
  let r = List.hd regs in
  Alcotest.(check int) "both versions in the register" 2
    (Mv_register.cardinal r.Crdt_merge.p_register);
  let entry = List.hd (Conflict_log.pending (Physical.conflicts p0)) in
  ok (Reconcile.resolve_file_conflict ~local:p0 entry ~keep:`Remote);
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:40 ()) in
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "host%d: log drained" i)
        0
        (pending_count (phys cluster vref i)))
    [ 0; 1 ];
  Alcotest.(check string) "resolution propagated" (digest_of cluster vref 0)
    (digest_of cluster vref 1)

(* ------------------------------------------------------------------ *)
(* Crash durability: a reboot in the middle of the merge must replay    *)
(* to the same tree.                                                   *)

let test_crash_mid_merge () =
  let cluster = Cluster.create ~nhosts:2 ~dir_merge:`Crdt ~resolver:Resolver.Lww () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (Namei.mkdir_p ~root:root0 "a/inner") in
  let _ = ok (Namei.mkdir_p ~root:root0 "b") in
  create_file root0 "a/inner/keep" "payload";
  create_file root0 "f" "base";
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  let b0 = ok (root0.Vnode.lookup "b") in
  ok (root0.Vnode.rename "a" b0 "x");
  write_file root0 "f" "from-zero";
  let a1 = ok (root1.Vnode.lookup "a") in
  ok (root1.Vnode.rename "b" a1 "y");
  write_file root1 "f" "from-one";
  Cluster.heal cluster;
  (* One direction only: host0 pulls from host1 and repairs, host1 has
     seen nothing yet — mid-merge. *)
  let remote_root =
    ok ((Cluster.connect_from cluster 0) ~host:(Cluster.host_name (Cluster.host cluster 1))
          ~vref ~rid:2)
  in
  let (_ : Reconcile.stats) =
    ok
      (Reconcile.reconcile_volume
         ~local:(phys cluster vref 0)
         ~remote_root ~remote_rid:2 ())
  in
  (* Crash host0: repair decisions must have been durable. *)
  ok (Cluster.reboot cluster 0);
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:40 ()) in
  check_clean_tree cluster vref 0;
  check_clean_tree cluster vref 1;
  Alcotest.(check string) "same tree after crash replay" (digest_of cluster vref 0)
    (digest_of cluster vref 1);
  List.iter
    (fun i ->
      Alcotest.(check bool) "payload survived" true
        (List.mem "payload" (replica_contents (phys cluster vref i))))
    [ 0; 1 ]

(* ------------------------------------------------------------------ *)
(* Convergence law (qcheck): any op interleaving, any partition         *)
(* schedule -> one tree.                                               *)

type cop =
  | Mkdir of int
  | Write of int * int
  | Nested of int * int * int  (* dir, file, payload *)
  | Remove of int
  | Move of int * int  (* rename d<i> into d<j> *)

let cop_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun d -> Mkdir d) (int_bound 2));
        (3, map2 (fun f p -> Write (f, p)) (int_bound 2) (int_bound 9));
        (2, map3 (fun d f p -> Nested (d, f, p)) (int_bound 2) (int_bound 1) (int_bound 9));
        (2, map (fun f -> Remove f) (int_bound 2));
        (4, map2 (fun a b -> Move (a, b)) (int_bound 2) (int_bound 2));
      ])

let print_cop = function
  | Mkdir d -> Printf.sprintf "mkdir d%d" d
  | Write (f, p) -> Printf.sprintf "w f%d %d" f p
  | Nested (d, f, p) -> Printf.sprintf "w d%d/n%d %d" d f p
  | Remove f -> Printf.sprintf "rm f%d" f
  | Move (a, b) -> Printf.sprintf "mv d%d d%d" a b

(* Ops are best-effort: a schedule may ask for a rename of a directory
   the previous epoch removed — that simply fails at the vnode layer. *)
let apply_cop ?(prefix = "") root op =
  let dname d = Printf.sprintf "%sd%d" prefix d in
  let fname f = Printf.sprintf "%sf%d" prefix f in
  let ignore_err : 'a. ('a, Errno.t) result -> unit = fun _ -> () in
  match op with
  | Mkdir d -> ignore_err (root.Vnode.mkdir (dname d))
  | Write (f, p) ->
    let data = Printf.sprintf "%s:%d" (fname f) p in
    (match root.Vnode.lookup (fname f) with
     | Ok v -> ignore_err (Vnode.write_all v data)
     | Error Errno.ENOENT ->
       (match root.Vnode.create (fname f) with
        | Ok v -> ignore_err (Vnode.write_all v data)
        | Error _ -> ())
     | Error _ -> ())
  | Nested (d, f, p) ->
    (match root.Vnode.lookup (dname d) with
     | Ok dir ->
       let n = Printf.sprintf "n%d" f in
       (match dir.Vnode.lookup n with
        | Ok v -> ignore_err (Vnode.write_all v (Printf.sprintf "%d" p))
        | Error Errno.ENOENT ->
          (match dir.Vnode.create n with
           | Ok v -> ignore_err (Vnode.write_all v (Printf.sprintf "%d" p))
           | Error _ -> ())
        | Error _ -> ())
     | Error _ -> ())
  | Remove f -> ignore_err (root.Vnode.remove (fname f))
  | Move (a, b) ->
    if a <> b then
      match root.Vnode.lookup (dname b) with
      | Ok target ->
        ignore_err (root.Vnode.rename (dname a) target (Printf.sprintf "%sm%d" prefix a))
      | Error _ -> ()

let crdt_arb =
  QCheck.make
    ~print:(fun epochs ->
      String.concat " | "
        (List.map
           (fun (h0, h1) ->
             Printf.sprintf "h0[%s] h1[%s]"
               (String.concat ";" (List.map print_cop h0))
               (String.concat ";" (List.map print_cop h1)))
           epochs))
    QCheck.Gen.(
      list_size (1 -- 2)
        (pair (list_size (int_bound 4) cop_gen) (list_size (int_bound 4) cop_gen)))

let run_epochs ~dir_merge ~resolver ?prefix epochs =
  let cluster = Cluster.create ~nhosts:2 ~dir_merge ~resolver () in
  match Cluster.create_volume cluster ~on:[ 0; 1 ] with
  | Error _ -> None
  | Ok vref ->
    (* Seed the directories so first-epoch moves have targets. *)
    (match Cluster.logical_root cluster 0 vref with
     | Error _ -> ()
     | Ok root0 ->
       List.iter (fun op -> apply_cop ?prefix root0 op) [ Mkdir 0; Mkdir 1; Mkdir 2 ];
       (match prefix with
        | None -> ()
        | Some _ ->
          (* Oracle runs: host1's namespace is seeded too. *)
          List.iter
            (fun op -> apply_cop ~prefix:"h1" root0 op)
            [ Mkdir 0; Mkdir 1; Mkdir 2 ]));
    let (_ : int) = Cluster.run_propagation cluster in
    (match Cluster.converge cluster vref () with
     | Error _ -> None
     | Ok _ ->
       let converged =
         List.for_all
           (fun (h0, h1) ->
             Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
             (match Cluster.logical_root cluster 0 vref with
              | Ok r -> List.iter (fun op -> apply_cop ?prefix r op) h0
              | Error _ -> ());
             (match Cluster.logical_root cluster 1 vref with
              | Ok r ->
                let prefix = Option.map (fun _ -> "h1") prefix in
                List.iter (fun op -> apply_cop ?prefix r op) h1
              | Error _ -> ());
             Cluster.heal cluster;
             match Cluster.converge cluster vref ~max_rounds:60 () with
             | Ok _ -> true
             | Error e ->
               Printf.eprintf "[crdt-prop] converge failed: %s\n%!" (Errno.to_string e);
               false)
           epochs
       in
       if not converged then None
       else
         Some
           ( digest_of cluster vref 0,
             digest_of cluster vref 1,
             stats_of cluster vref 0,
             stats_of cluster vref 1 ))

(* Once a qcheck counterexample: both hosts concurrently rename d1 into
   d2 (same target name, same fid, different births), while a file lands
   inside d1 just before the move.  Exposed two storage bugs — the
   Unmaterialize of the losing birth must not touch storage the winning
   birth still references, and pending summary events must be flushed
   before a directory move re-keys their fidpaths. *)
let test_concurrent_identical_moves () =
  let epochs =
    [
      ([ Remove 0; Nested (1, 0, 3); Move (1, 2) ], [ Move (0, 2); Move (1, 2) ]);
      ( [ Mkdir 2; Nested (2, 0, 4); Move (2, 2); Write (0, 9) ],
        [ Write (0, 9); Write (1, 0) ] );
    ]
  in
  let cluster = Cluster.create ~nhosts:2 ~dir_merge:`Crdt ~resolver:Resolver.Lww () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  List.iter (fun op -> apply_cop root0 op) [ Mkdir 0; Mkdir 1; Mkdir 2 ];
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  List.iter
    (fun (h0, h1) ->
      Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
      let r0 = ok (Cluster.logical_root cluster 0 vref) in
      List.iter (fun op -> apply_cop r0 op) h0;
      let r1 = ok (Cluster.logical_root cluster 1 vref) in
      List.iter (fun op -> apply_cop r1 op) h1;
      Cluster.heal cluster;
      let (_ : int) = ok ~msg:"converge" (Cluster.converge cluster vref ~max_rounds:60 ()) in
      ())
    epochs;
  check_clean_tree cluster vref 0;
  check_clean_tree cluster vref 1;
  Alcotest.(check string) "digests" (digest_of cluster vref 0) (digest_of cluster vref 1);
  (* The file written into d1 right before the move survived the
     concurrent double-rename on both replicas. *)
  List.iter
    (fun i ->
      Alcotest.(check bool) "n0 content present" true
        (List.mem "3" (replica_contents (phys cluster vref i))))
    [ 0; 1 ]

let prop name ?(count = 20) arb f = QCheck.Test.make ~name ~count arb f

let convergence_props =
  [
    prop "crdt: partitioned schedules converge to one clean tree" crdt_arb
      (fun epochs ->
        match run_epochs ~dir_merge:`Crdt ~resolver:Resolver.Lww epochs with
        | None -> false
        | Some (d0, d1, s0, s1) ->
          d0 = d1
          && s0.Crdt_merge.ts_unreachable_dirs = 0
          && s1.Crdt_merge.ts_unreachable_dirs = 0
          && s0.Crdt_merge.ts_cycles = 0
          && s1.Crdt_merge.ts_cycles = 0);
    prop "crdt equals legacy on conflict-free schedules" ~count:15 crdt_arb
      (fun epochs ->
        (* Hosts work in disjoint namespaces ("h0"/"h1" prefixes), so
           the schedule is conflict-free and the legacy merge is an
           exact oracle for the CRDT one. *)
        let run dm = run_epochs ~dir_merge:dm ~resolver:Resolver.Owner_report ~prefix:"h0" epochs in
        match (run `Legacy, run `Crdt) with
        | Some (l0, l1, _, _), Some (c0, c1, _, _) ->
          l0 = l1 && c0 = c1 && l0 = c0
        | _ -> false);
  ]

(* ------------------------------------------------------------------ *)

let suite =
  [
    case "tree: orphan attaches to the orphanage" test_tree_orphan_attach;
    case "tree: multi-parent picks the later birth" test_tree_multi_parent_demote;
    case "tree: orphanage links never oscillate" test_tree_orphanage_link_priority;
    case "tree: cycles cut at the smallest fid" test_tree_cycle_cut_at_min_fid;
    case "tree: decisions ignore presentation order" test_tree_resolve_order_independent;
    case "mv: antichain drops dominated versions" test_mv_antichain;
    case "mv: join is order independent" test_mv_order_independence;
    case "mv: lww winner is deterministic" test_mv_lww_winner;
    case "mv: app merge folds in canonical order" test_mv_merge_all;
    case "cross-rename cycle repairs under crdt" test_cycle_repair_crdt;
    case "cross-rename cycle is reported under legacy" test_cycle_not_silent_legacy;
    case "lww resolver converges concurrent writes" test_resolver_lww;
    case "app-merge resolver combines both versions" test_resolver_app_merge;
    case "owner-report keeps the register until resolved" test_resolver_owner_report_round_trip;
    case "crash mid-merge replays to the same tree" test_crash_mid_merge;
    case "concurrent identical moves keep contents" test_concurrent_identical_moves;
  ]
  @ List.map QCheck_alcotest.to_alcotest convergence_props
