(* The physical layer in isolation: on-disk layout, the dual name/handle
   mapping, control lookups, version bookkeeping, shadow installs,
   graft points. *)

open Util
module Vv = Version_vector

let fresh_phys ?(rid = 1) ?(peers = [ (1, "hostA"); (2, "hostB") ]) () =
  let _, fs = fresh_ufs () in
  let clock = Clock.create () in
  let container = ok (Namei.mkdir_p ~root:(Ufs_vnode.root fs) "vol") in
  let vref = { Ids.alloc = 0; vol = 1 } in
  let phys = ok (Physical.create ~container ~clock ~host:"hostA" ~vref ~rid ~peers ()) in
  (fs, clock, container, phys)

let test_create_layout () =
  let fs, _, container, phys = fresh_phys () in
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "file") in
  ok (f.Vnode.write ~off:0 "data");
  (* The on-disk layout: container/<hexroot>/{DIR, <hexfid>, <hexfid>.aux} *)
  let root_ufs = ok (container.Vnode.lookup (Ids.fid_to_hex Ids.root_fid)) in
  let names =
    ok (root_ufs.Vnode.readdir ()) |> List.map (fun e -> e.Vnode.entry_name) |> List.sort compare
  in
  Alcotest.(check int) "DIR + data + aux" 3 (List.length names);
  Alcotest.(check bool) "has DIR" true (List.mem "DIR" names);
  Alcotest.(check bool) "has aux" true
    (List.exists (fun n -> Filename.check_suffix n ".aux") names);
  ignore fs

let test_dual_mapping_at_names () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let _ = ok (root.Vnode.create "named") in
  let fdir = ok (Physical.fetch_dir phys []) in
  let e = Option.get (Fdir.find_live fdir "named") in
  (* Lookup by handle resolves to the same object as lookup by name. *)
  let via_handle = ok (root.Vnode.lookup (Ids.fid_to_at_name e.Fdir.fid)) in
  ok (via_handle.Vnode.write ~off:0 "through the handle");
  let via_name = ok (root.Vnode.lookup "named") in
  Alcotest.(check string) "same file" "through the handle" (ok (Vnode.read_all via_name))

let test_write_bumps_version_vector () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "f") in
  let fdir = ok (Physical.fetch_dir phys []) in
  let e = Option.get (Fdir.find_live fdir "f") in
  let vi0 = ok (Physical.get_version phys [ e.Fdir.fid ]) in
  Alcotest.(check int) "creation counts once" 1 (Vv.get vi0.Physical.vi_vv 1);
  ok (f.Vnode.write ~off:0 "x");
  ok (f.Vnode.write ~off:1 "y");
  let vi = ok (Physical.get_version phys [ e.Fdir.fid ]) in
  Alcotest.(check int) "two more updates" 3 (Vv.get vi.Physical.vi_vv 1)

let test_dir_updates_bump_dir_vv () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let vv0 = (ok (Physical.fetch_dir phys [])).Fdir.vv in
  let _ = ok (root.Vnode.create "a") in
  ok (root.Vnode.remove "a");
  let vv1 = (ok (Physical.fetch_dir phys [])).Fdir.vv in
  Alcotest.(check int) "two directory updates" (Vv.get vv0 1 + 2) (Vv.get vv1 1)

let test_notifications_emitted () =
  let _, _, _, phys = fresh_phys () in
  let events = ref [] in
  Physical.set_notifier phys (fun ev -> events := ev :: !events);
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "x");
  let kinds = List.rev_map (fun e -> e.Notify.kind) !events in
  Alcotest.(check int) "two events" 2 (List.length kinds);
  Alcotest.(check bool) "dir event for create" true (List.mem Aux_attrs.Fdir kinds);
  Alcotest.(check bool) "file event for write" true (List.mem Aux_attrs.Freg kinds)

let test_install_file_outcomes () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "local v1");
  let fdir = ok (Physical.fetch_dir phys []) in
  let e = Option.get (Fdir.find_live fdir "f") in
  let path = [ e.Fdir.fid ] in
  let local_vv = (ok (Physical.get_version phys path)).Physical.vi_vv in
  (* Dominating remote version: installed. *)
  let newer = Vv.bump local_vv 2 in
  (match ok (Physical.install_file phys path ~vv:newer ~uid:0 ~data:"remote v2" ~origin_rid:2) with
   | Physical.Installed -> ()
   | _ -> Alcotest.fail "expected Installed");
  Alcotest.(check string) "contents replaced" "remote v2" (ok (Vnode.read_all f));
  (* Same version again: up to date. *)
  (match ok (Physical.install_file phys path ~vv:newer ~uid:0 ~data:"remote v2" ~origin_rid:2) with
   | Physical.Up_to_date -> ()
   | _ -> Alcotest.fail "expected Up_to_date");
  (* Concurrent: conflict, local kept, logged once. *)
  let concurrent = Vv.bump newer 3 in
  ok (Vnode.write_all f "local v3");
  (match
     ok (Physical.install_file phys path ~vv:concurrent ~uid:0 ~data:"remote v3" ~origin_rid:3)
   with
   | Physical.Conflict _ -> ()
   | _ -> Alcotest.fail "expected Conflict");
  Alcotest.(check string) "local kept" "local v3" (ok (Vnode.read_all f));
  let (_ : Physical.install_outcome) =
    ok (Physical.install_file phys path ~vv:concurrent ~uid:0 ~data:"remote v3" ~origin_rid:3)
  in
  Alcotest.(check int) "reported once" 1
    (List.length (Conflict_log.pending (Physical.conflicts phys)))

let test_remove_is_tombstone_not_forgetting () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let _ = ok (root.Vnode.create "f") in
  ok (root.Vnode.remove "f");
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (root.Vnode.lookup "f"));
  let fdir = ok (Physical.fetch_dir phys []) in
  Alcotest.(check int) "tombstone retained" 1 (List.length fdir.Fdir.entries)

let test_rename_within_and_across_dirs () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let d1 = ok (root.Vnode.mkdir "d1") in
  let d2 = ok (root.Vnode.mkdir "d2") in
  let f = ok (d1.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "content");
  ok (d1.Vnode.rename "f" d1 "f2");
  Alcotest.(check string) "in-dir rename" "content" (read_file root "d1/f2");
  ok (d1.Vnode.rename "f2" d2 "f3");
  Alcotest.(check string) "cross-dir rename" "content" (read_file root "d2/f3");
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (d1.Vnode.lookup "f2"));
  (* Version history survives the moves. *)
  let fdir2 = ok (Physical.fetch_dir phys []) in
  let d2e = Option.get (Fdir.find_live fdir2 "d2") in
  let sub = ok (Physical.fetch_dir phys [ d2e.Fdir.fid ]) in
  let fe = Option.get (Fdir.find_live sub "f3") in
  let vi = ok (Physical.get_version phys [ d2e.Fdir.fid; fe.Fdir.fid ]) in
  Alcotest.(check int) "vv moved along" 2 (Vv.get vi.Physical.vi_vv 1)

let test_rename_directory_across_dirs () =
  (* Moving a whole Ficus directory relocates its UFS subtree and keeps
     the namespace-parallel layout intact. *)
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let src = ok (root.Vnode.mkdir "src") in
  let dst = ok (root.Vnode.mkdir "dst") in
  let moving = ok (src.Vnode.mkdir "moving") in
  let f = ok (moving.Vnode.create "inner") in
  ok (Vnode.write_all f "survives the move");
  ok (src.Vnode.rename "moving" dst "moved");
  Alcotest.(check string) "contents follow" "survives the move"
    (read_file root "dst/moved/inner");
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (src.Vnode.lookup "moving"));
  (* The moved directory is still writable and versioned. *)
  let moved = ok (Namei.walk ~root "dst/moved") in
  let g = ok (moved.Vnode.create "fresh") in
  ok (Vnode.write_all g "new file after move");
  Alcotest.(check string) "post-move create" "new file after move"
    (read_file root "dst/moved/fresh")

let test_link_shares_storage_and_history () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "a") in
  ok (f.Vnode.write ~off:0 "one");
  let a = ok (root.Vnode.lookup "a") in
  ok (root.Vnode.link a "b");
  ok (a.Vnode.write ~off:0 "two");
  Alcotest.(check string) "visible via b" "two" (read_file root "b");
  (* Removing one name keeps the file alive under the other. *)
  ok (root.Vnode.remove "a");
  Alcotest.(check string) "b survives" "two" (read_file root "b")

let test_rmdir_requires_empty () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let d = ok (root.Vnode.mkdir "d") in
  let _ = ok (d.Vnode.create "f") in
  expect_err Errno.ENOTEMPTY (root.Vnode.rmdir "d");
  ok (d.Vnode.remove "f");
  ok (root.Vnode.rmdir "d");
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (root.Vnode.lookup "d"))

let test_ctl_open_close_counted () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let open_name = ok (Ctl_name.encode ~op:"open" ~args:[ "."; "rw" ]) in
  let close_name = ok (Ctl_name.encode ~op:"close" ~args:[ "." ]) in
  let resp = ok (root.Vnode.lookup open_name) in
  Alcotest.(check string) "ack" "ok\n" (ok (Vnode.read_all resp));
  Alcotest.(check int) "open seen" 1 (Physical.open_files phys);
  let _ = ok (root.Vnode.lookup close_name) in
  Alcotest.(check int) "closed" 0 (Physical.open_files phys);
  Alcotest.(check int) "counted via ctl" 1
    (Counters.get (Physical.counters phys) "phys.open.ctl")

let test_ctl_getvv_readfile_getdir () =
  let _, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "payload");
  (* Exercise the full remote path over the local vnode stack. *)
  let vi = ok (Remote.get_version root []) in
  Alcotest.(check bool) "root is dir" true (vi.Physical.vi_kind = Aux_attrs.Fdir);
  let fdir = ok (Remote.fetch_dir root []) in
  let e = Option.get (Fdir.find_live fdir "f") in
  let vi, data = ok (Remote.fetch_file root [ e.Fdir.fid ]) in
  Alcotest.(check string) "contents" "payload" data;
  Alcotest.(check int) "vv" 2 (Vv.get vi.Physical.vi_vv 1);
  let fid, kind = ok (Remote.resolve root "f") in
  Alcotest.(check bool) "resolve fid" true (Ids.fid_equal fid e.Fdir.fid);
  Alcotest.(check bool) "resolve kind" true (kind = Aux_attrs.Freg);
  let peers = ok (Remote.peers root) in
  Alcotest.(check int) "peers" 2 (List.length peers);
  let vref, rid = ok (Remote.meta root) in
  Alcotest.(check int) "rid" 1 rid;
  Alcotest.(check int) "vol" 1 vref.Ids.vol

let test_graft_point_roundtrip () =
  let _, _, _, phys = fresh_phys () in
  let target = { Ids.alloc = 0; vol = 9 } in
  ok
    (Physical.make_graft_point phys ~parent:[] ~name:"sub" ~target
       ~replicas:[ (1, "hostA"); (2, "hostB") ]);
  let root = Physical.root phys in
  let gp = ok (root.Vnode.lookup "sub") in
  let attrs = ok (gp.Vnode.getattr ()) in
  Alcotest.(check bool) "graft vtype" true (attrs.Vnode.kind = Vnode.VGRAFT);
  let fdir = ok (Physical.fetch_dir phys []) in
  let e = Option.get (Fdir.find_live fdir "sub") in
  let vref, replicas = ok (Physical.graft_point_info phys [ e.Fdir.fid ]) in
  Alcotest.(check int) "target vol" 9 vref.Ids.vol;
  Alcotest.(check int) "two replicas" 2 (List.length replicas);
  ok (Physical.add_graft_replica phys [ e.Fdir.fid ] 3 "hostC");
  let _, replicas = ok (Physical.graft_point_info phys [ e.Fdir.fid ]) in
  Alcotest.(check int) "three replicas" 3 (List.length replicas)

let test_attach_after_restart () =
  let fs, clock, container, phys = fresh_phys () in
  let root = Physical.root phys in
  let f = ok (root.Vnode.create "keep") in
  ok (f.Vnode.write ~off:0 "persisted");
  ignore fs;
  let phys2 = ok (Physical.attach ~container ~clock ~host:"hostA" ()) in
  Alcotest.(check int) "rid recovered" 1 (Physical.rid phys2);
  Alcotest.(check int) "peers recovered" 2 (List.length (Physical.peers phys2));
  let root2 = Physical.root phys2 in
  Alcotest.(check string) "data intact" "persisted" (read_file root2 "keep");
  (* The id allocator must not reissue: create another file and check
     fid uniqueness. *)
  let _ = ok (root2.Vnode.create "fresh") in
  let fdir = ok (Physical.fetch_dir phys2 []) in
  let fids = List.map (fun (_, e) -> Ids.fid_to_hex e.Fdir.fid) (Fdir.live fdir) in
  Alcotest.(check int) "unique fids" (List.length fids)
    (List.length (List.sort_uniq compare fids))

let test_recover_sweeps_shadows () =
  let _, _, container, phys = fresh_phys () in
  let root = Physical.root phys in
  let _ = ok (root.Vnode.create "f") in
  Alcotest.(check int) "nothing to sweep initially" 0 (ok (Physical.recover phys));
  (* Simulate an interrupted install: plant a leftover shadow file next
     to the real storage. *)
  let fdir = ok (Physical.fetch_dir phys []) in
  let e = Option.get (Fdir.find_live fdir "f") in
  let root_ufs = ok (container.Vnode.lookup (Ids.fid_to_hex Ids.root_fid)) in
  let shadow = ok (root_ufs.Vnode.create (Shadow.shadow_name e.Fdir.fid)) in
  ok (shadow.Vnode.write ~off:0 "partial garbage");
  Alcotest.(check int) "one shadow swept" 1 (ok (Physical.recover phys));
  expect_err Errno.ENOENT
    (Result.map (fun _ -> ()) (root_ufs.Vnode.lookup (Shadow.shadow_name e.Fdir.fid)))

let test_summary_tracks_mutations () =
  let _fs, _, _, phys = fresh_phys () in
  let root = Physical.root phys in
  let summary path =
    match (ok (Physical.get_version phys path)).Physical.vi_summary with
    | Some s -> s
    | None -> Alcotest.fail "directory carries no summary"
  in
  let s0 = summary [] in
  let d = ok (root.Vnode.mkdir "d") in
  let s1 = summary [] in
  Alcotest.(check bool) "root summary advances on mkdir" true
    (Vv.dominates s1 s0 && not (Vv.equal s1 s0));
  (* A write deep in the tree advances the enclosing directory's summary
     and every ancestor's, so a dominating root claim really covers the
     whole subtree. *)
  let f = ok (d.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "data");
  let e = Option.get (Fdir.find_live (ok (Physical.fetch_dir phys [])) "d") in
  let sd = summary [ e.Fdir.fid ] in
  let s2 = summary [] in
  Alcotest.(check bool) "child summary nonempty" true (not (Vv.equal sd Vv.empty));
  Alcotest.(check bool) "root covers the child" true (Vv.dominates s2 sd);
  Alcotest.(check bool) "root advanced past mkdir-time" true
    (Vv.dominates s2 s1 && not (Vv.equal s2 s1));
  (* Files never carry one. *)
  let vi = ok (Physical.get_version phys [ e.Fdir.fid; (Option.get (Fdir.find_live (ok (Physical.fetch_dir phys [ e.Fdir.fid ])) "f")).Fdir.fid ]) in
  Alcotest.(check bool) "files carry no summary" true (vi.Physical.vi_summary = None)

let test_summary_recomputed_on_attach () =
  (* A pre-summary disk image (root aux without the field) is upgraded
     on attach: every directory gets a conservative claim covering every
     event this replica has allocated. *)
  let _fs, clock, container, phys = fresh_phys () in
  let root = Physical.root phys in
  let d = ok (root.Vnode.mkdir "d") in
  let f = ok (d.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "x");
  let aux = ok (Aux_attrs.load ~dir:container Ids.root_fid) in
  ok (Aux_attrs.store ~dir:container Ids.root_fid { aux with Aux_attrs.summary = None });
  let phys2 = ok (Physical.attach ~container ~clock ~host:"hostA" ()) in
  let summary path =
    match (ok (Physical.get_version phys2 path)).Physical.vi_summary with
    | Some s -> s
    | None -> Alcotest.fail "no summary after attach"
  in
  Alcotest.(check bool) "root claim covers local events" true
    (Vv.get (summary []) 1 > 0);
  let e = Option.get (Fdir.find_live (ok (Physical.fetch_dir phys2 [])) "d") in
  Alcotest.(check bool) "subdirectory recomputed too" true
    (Vv.get (summary [ e.Fdir.fid ]) 1 > 0)

let suite =
  [
    case "on-disk layout" test_create_layout;
    case "dual name/handle mapping" test_dual_mapping_at_names;
    case "write bumps version vector" test_write_bumps_version_vector;
    case "directory updates bump dir vv" test_dir_updates_bump_dir_vv;
    case "notifications emitted" test_notifications_emitted;
    case "install_file outcomes" test_install_file_outcomes;
    case "remove leaves tombstone" test_remove_is_tombstone_not_forgetting;
    case "rename within and across dirs" test_rename_within_and_across_dirs;
    case "rename directory across dirs" test_rename_directory_across_dirs;
    case "link shares storage and history" test_link_shares_storage_and_history;
    case "rmdir requires empty" test_rmdir_requires_empty;
    case "ctl open/close counted" test_ctl_open_close_counted;
    case "ctl getvv/readfile/getdir/resolve/peers/meta" test_ctl_getvv_readfile_getdir;
    case "graft point roundtrip" test_graft_point_roundtrip;
    case "attach after restart" test_attach_after_restart;
    case "recover sweeps shadows" test_recover_sweeps_shadows;
    case "subtree summaries track mutations" test_summary_tracks_mutations;
    case "summaries recomputed on pre-summary attach" test_summary_recomputed_on_attach;
  ]
