(* The Remote control protocol (ctl-over-lookup) in adversarial
   conditions: NFS caches, embedded separators, and the paper's claim
   that graft points reconcile via the ordinary directory machinery. *)

open Util

let two_hosts () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  (cluster, vref)

let test_fetch_file_with_embedded_separator () =
  (* File contents containing the protocol's header separator must
     survive the encode/decode roundtrip. *)
  let cluster, vref = two_hosts () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let tricky = "header-looking\n--\npayload with separator\n--\nmore" in
  create_file root0 "tricky" tricky;
  let connect = Cluster.connect_from cluster 1 in
  let remote_root = ok (connect ~host:"host0" ~vref ~rid:1) in
  let fdir = ok (Remote.fetch_dir remote_root []) in
  let e = Option.get (Fdir.find_live fdir "tricky") in
  let _, data = ok (Remote.fetch_file remote_root [ e.Fdir.fid ]) in
  Alcotest.(check string) "contents intact" tricky data

let test_ctl_defeats_nfs_name_cache () =
  (* Repeated control fetches through a caching NFS mount must see fresh
     state every time (the per-call serial defeats the name cache). *)
  let cluster, vref = two_hosts () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let connect = Cluster.connect_from cluster 1 in
  let remote_root = ok (connect ~host:"host0" ~vref ~rid:1) in
  let live_count () = List.length (Fdir.live (ok (Remote.fetch_dir remote_root []))) in
  Alcotest.(check int) "initially empty" 0 (live_count ());
  create_file root0 "new-file" "x";
  (* Same mount, same clock instant: a cached response would still say
     empty. *)
  Alcotest.(check int) "fresh state visible" 1 (live_count ())

let test_remote_walk_and_errors () =
  let cluster, vref = two_hosts () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (Namei.mkdir_p ~root:root0 "a/b") in
  create_file root0 "a/b/leaf" "deep";
  let connect = Cluster.connect_from cluster 1 in
  let remote_root = ok (connect ~host:"host0" ~vref ~rid:1) in
  let fdir = ok (Remote.fetch_dir remote_root []) in
  let a = Option.get (Fdir.find_live fdir "a") in
  let sub = ok (Remote.fetch_dir remote_root [ a.Fdir.fid ]) in
  let b = Option.get (Fdir.find_live sub "b") in
  let leaf_fid, kind =
    let subsub = ok (Remote.fetch_dir remote_root [ a.Fdir.fid; b.Fdir.fid ]) in
    let leaf = Option.get (Fdir.find_live subsub "leaf") in
    (leaf.Fdir.fid, leaf.Fdir.kind)
  in
  Alcotest.(check bool) "leaf is a file" true (kind = Aux_attrs.Freg);
  let vi = ok (Remote.get_version remote_root [ a.Fdir.fid; b.Fdir.fid; leaf_fid ]) in
  Alcotest.(check int) "size over the wire" 4 vi.Physical.vi_size;
  (* Unknown fids error cleanly. *)
  expect_err Errno.ENOENT
    (Result.map (fun _ -> ())
       (Remote.get_version remote_root [ { Ids.issuer = 9; uniq = 999 } ]));
  (* readfile of a directory is rejected. *)
  expect_err Errno.EISDIR
    (Result.map (fun _ -> ()) (Remote.fetch_file remote_root [ a.Fdir.fid ]))

let test_resolve_remote () =
  let cluster, vref = two_hosts () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "target" "x";
  let connect = Cluster.connect_from cluster 1 in
  let remote_root = ok (connect ~host:"host0" ~vref ~rid:1) in
  let fid, kind = ok (Remote.resolve remote_root "target") in
  Alcotest.(check bool) "kind" true (kind = Aux_attrs.Freg);
  Alcotest.(check bool) "issuer is replica 1" true (fid.Ids.issuer = 1);
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (Remote.resolve remote_root "missing"))

let test_fetch_dir_versions () =
  (* The batched getdirvvs op: one RPC returns the directory's subtree
     summary, its fdir, and version info for every live child — with
     contents that embed protocol markers surviving the roundtrip. *)
  let cluster, vref = two_hosts () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "plain" "pay\nchild=42\nload";
  create_file root0 "tricky" "body with\nfdir:\nand\nendfdir:\nmarkers";
  let _ = ok (root0.Vnode.mkdir "sub") in
  let connect = Cluster.connect_from cluster 1 in
  let remote_root = ok (connect ~host:"host0" ~vref ~rid:1) in
  let dv = ok (Remote.fetch_dir_versions remote_root []) in
  Alcotest.(check bool) "summary present" true (dv.Remote.dv_summary <> None);
  let live = Fdir.live dv.Remote.dv_fdir in
  Alcotest.(check int) "three live entries" 3 (List.length live);
  Alcotest.(check int) "three child infos" 3 (List.length dv.Remote.dv_children);
  let vi_of name =
    let e = Option.get (Fdir.find_live dv.Remote.dv_fdir name) in
    List.assoc e.Fdir.fid dv.Remote.dv_children
  in
  let plain = vi_of "plain" in
  Alcotest.(check int) "file size over the wire" 17 plain.Physical.vi_size;
  Alcotest.(check bool) "files carry no summary" true (plain.Physical.vi_summary = None);
  let sub = vi_of "sub" in
  Alcotest.(check bool) "dirs carry a summary" true (sub.Physical.vi_summary <> None);
  Alcotest.(check bool) "dir kind" true (sub.Physical.vi_kind = Aux_attrs.Fdir)

let test_graft_points_reconcile_as_directories () =
  (* Paper §4.3: "Overloading the directory concept in this way allows
     implicit use of the Ficus directory reconciliation mechanism to
     manage a replicated object (a graft point)".  Add a volume replica
     to one graft-point replica during a partition; after reconciliation
     the other replica knows it too — with zero graft-specific code. *)
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let target = { Ids.alloc = 0; vol = 77 } in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  ok
    (Physical.make_graft_point phys0 ~parent:[] ~name:"vol" ~target
       ~replicas:[ (1, "hostX") ]);
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  (* Both replicas hold the graft point. *)
  let gp_path phys =
    let fdir = ok (Physical.fetch_dir phys []) in
    let e = Option.get (Fdir.find_live fdir "vol") in
    [ e.Fdir.fid ]
  in
  let _, reps1 = ok (Physical.graft_point_info phys1 (gp_path phys1)) in
  Alcotest.(check int) "replicated graft point" 1 (List.length reps1);
  (* Partition; extend the graft point on host0 only. *)
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  ok (Physical.add_graft_replica phys0 (gp_path phys0) 2 "hostY");
  let _, reps1 = ok (Physical.graft_point_info phys1 (gp_path phys1)) in
  Alcotest.(check int) "host1 not yet aware" 1 (List.length reps1);
  Cluster.heal cluster;
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:10 ()) in
  let t1, reps1 = ok (Physical.graft_point_info phys1 (gp_path phys1)) in
  Alcotest.(check int) "graft point reconciled" 2 (List.length reps1);
  Alcotest.(check bool) "target preserved" true (Ids.vref_equal t1 target);
  Alcotest.(check bool) "new site listed" true (List.mem_assoc 2 reps1)

let test_send_open_close_remote () =
  let cluster, vref = two_hosts () in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let connect = Cluster.connect_from cluster 1 in
  let remote_root = ok (connect ~host:"host0" ~vref ~rid:1) in
  ok (Remote.send_open remote_root None Vnode.Read_write);
  Alcotest.(check int) "open registered across NFS" 1 (Physical.open_files phys0);
  ok (Remote.send_close remote_root None);
  Alcotest.(check int) "closed" 0 (Physical.open_files phys0)

let suite =
  [
    case "fetch_file with embedded separator" test_fetch_file_with_embedded_separator;
    case "ctl serial defeats NFS name cache" test_ctl_defeats_nfs_name_cache;
    case "remote walk and errors" test_remote_walk_and_errors;
    case "remote resolve" test_resolve_remote;
    case "fetch_dir_versions batched op" test_fetch_dir_versions;
    case "graft points reconcile as directories" test_graft_points_reconcile_as_directories;
    case "send open/close across NFS" test_send_open_close_remote;
  ]
