(* The SCALE machinery: equivalence of the simulator's indexed hot
   paths against the legacy linear scans (qcheck, random schedules), the
   Zipf sampler's distribution (chi-squared), and trace-replay
   determinism.  These are the safety net under the benchmark: the
   indexed structures are pure optimizations only as long as no random
   schedule can tell them apart. *)

open Util

let prop name ?(count = 100) arb f = QCheck.Test.make ~name ~count arb f

(* ------------------------------------------------------------------ *)
(* Sim_net: the delivery-tick event queue == the flat-list pump         *)

type Sim_net.payload += Msg of int

(* A random network schedule: sends between random host pairs,
   clock advances, pumps — under latency/duplication/reordering faults
   so the delivery-scheduling machinery actually engages. *)
type net_step = Send of int * int * int | Advance of int | Pump

let net_step_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun s d tag -> Send (s, d, tag)) (int_bound 4) (int_bound 4) (int_bound 99));
        (2, map (fun n -> Advance (n + 1)) (int_bound 4));
        (3, return Pump);
      ])

let print_net_step = function
  | Send (s, d, tag) -> Printf.sprintf "send %d->%d #%d" s d tag
  | Advance n -> Printf.sprintf "advance %d" n
  | Pump -> "pump"

let net_schedule_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_net_step l))
    QCheck.Gen.(list_size (int_bound 40) net_step_gen)

(* Run one schedule and return the full observable trace: every
   delivery (receiver, src, tag, tick) in order, plus each pump's
   return value and the final pending count. *)
let run_net_schedule ~indexed schedule =
  let clock = Clock.create () in
  let faults =
    { Sim_net.no_faults with latency_min = 0; latency_max = 3;
      duplication_prob = 0.2; reorder_prob = 0.2; loss = 0.1 }
  in
  let net = Sim_net.create ~seed:42 ~faults ~indexed clock in
  let hosts = Array.init 5 (fun i -> Sim_net.add_host net (Printf.sprintf "h%d" i)) in
  let log = ref [] in
  Array.iteri
    (fun i h ->
      Sim_net.register_handler net h (fun ~src payload ->
          match payload with
          | Msg tag -> log := (i, src, tag, Clock.now clock) :: !log
          | _ -> ()))
    hosts;
  List.iter
    (fun step ->
      match step with
      | Send (s, d, tag) ->
        Sim_net.send net ~src:hosts.(s) ~dst:hosts.(d) (Msg tag)
      | Advance n -> Clock.advance clock n
      | Pump -> log := (-1, Sim_net.pump net, -1, -1) :: !log)
    schedule;
  (* Drain whatever is still scheduled so the comparison covers the
     in-flight queue too. *)
  for _ = 1 to 8 do
    Clock.advance clock 1;
    ignore (Sim_net.pump net)
  done;
  (List.rev !log, Sim_net.pending net)

let net_props =
  [
    prop "indexed pump == linear pump on random schedules" ~count:200
      net_schedule_arb (fun schedule ->
        run_net_schedule ~indexed:true schedule
        = run_net_schedule ~indexed:false schedule);
  ]

(* ------------------------------------------------------------------ *)
(* Cluster: the ready-queue tick_daemons == the linear scan             *)

(* A random cluster schedule: writes at random hosts, clock ticks of
   random sizes (some long enough to cross reconcile/gossip periods),
   and partition/heal events. *)
type cl_step =
  | Write of int * int * int  (* host, file index, payload tag *)
  | Tick of int
  | Split
  | Heal

let cl_step_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun h f tag -> Write (h, f, tag)) (int_bound 3) (int_bound 3) (int_bound 99));
        (4, map (fun n -> Tick (1 + (7 * n))) (int_bound 8));
        (1, return Split);
        (2, return Heal);
      ])

let print_cl_step = function
  | Write (h, f, tag) -> Printf.sprintf "w h%d f%d #%d" h f tag
  | Tick n -> Printf.sprintf "tick %d" n
  | Split -> "split"
  | Heal -> "heal"

let cl_schedule_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_cl_step l))
    QCheck.Gen.(list_size (int_bound 25) cl_step_gen)

(* Dump a replica's live namespace with version vectors — the state the
   two modes must agree on exactly. *)
let dump phys =
  let rec walk prefix path acc =
    match Physical.fetch_dir phys path with
    | Error _ -> acc
    | Ok fdir ->
      List.fold_left
        (fun acc (name, e) ->
          let child = path @ [ e.Fdir.fid ] in
          let vv =
            match Physical.get_version phys child with
            | Ok vi -> Version_vector.to_string vi.Physical.vi_vv
            | Error _ -> "?"
          in
          let line = Printf.sprintf "%s%s vv=%s" prefix name vv in
          match e.Fdir.kind with
          | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
            walk (prefix ^ name ^ "/") child (line :: acc)
          | Aux_attrs.Freg -> line :: acc)
        acc (Fdir.live fdir)
  in
  List.sort compare (walk "" [] [])

let run_cl_schedule ~indexed schedule =
  let cluster =
    Cluster.create ~seed:7 ~nhosts:4 ~propagation_delay:20 ~reconcile_period:30
      ~gossip:Gossip.default_config ~indexed ()
  in
  match Cluster.create_volume cluster ~on:[ 0; 1; 2; 3 ] with
  | Error _ -> None
  | Ok vref ->
    let roots =
      List.filter_map
        (fun i -> Result.to_option (Cluster.logical_root cluster i vref))
        [ 0; 1; 2; 3 ]
    in
    if List.length roots <> 4 then None
    else begin
      let pulls = ref 0 and recon_errors = ref 0 in
      let tick n =
        let p, stats = Cluster.tick_daemons cluster n in
        pulls := !pulls + p;
        recon_errors := !recon_errors + stats.Reconcile.errors
      in
      List.iter
        (fun step ->
          match step with
          | Write (h, f, tag) ->
            let root = List.nth roots h in
            let name = Printf.sprintf "f%d" f in
            let file =
              match root.Vnode.lookup name with
              | Ok v -> Some v
              | Error Errno.ENOENT -> Result.to_option (root.Vnode.create name)
              | Error _ -> None
            in
            (match file with
             | Some v -> ignore (Vnode.write_all v (Printf.sprintf "h%d:%d" h tag))
             | None -> ())
          | Tick n -> tick n
          | Split -> Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3 ] ]
          | Heal -> Cluster.heal cluster)
        schedule;
      (* Heal and settle so the final state is partition-independent
         enough to compare deeply (both modes see the same schedule, so
         even transient states must match — the settle just makes the
         dumps meaningful). *)
      Cluster.heal cluster;
      for _ = 1 to 12 do
        tick 30
      done;
      let dumps =
        List.filter_map
          (fun i ->
            Option.map dump (Cluster.replica (Cluster.host cluster i) vref))
          [ 0; 1; 2; 3 ]
      in
      Some (dumps, !pulls, !recon_errors, Clock.now (Cluster.clock cluster))
    end

let cluster_props =
  [
    prop "indexed tick_daemons == linear scan on random schedules" ~count:30
      cl_schedule_arb (fun schedule ->
        match
          (run_cl_schedule ~indexed:true schedule,
           run_cl_schedule ~indexed:false schedule)
        with
        | Some a, Some b -> a = b
        | None, None -> true
        | _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Zipf sampler: chi-squared goodness of fit                            *)

(* Draw many samples and compare the observed rank counts against the
   exact Zipf(s) expectation.  With n=8 ranks (7 degrees of freedom)
   the 99.9% chi-squared critical value is 24.32; a correct sampler
   fails this about once per thousand seeds, and the seed is fixed. *)
let chi_squared ~n ~s ~samples ~seed =
  let rng = Random.State.make [| seed |] in
  let pick = Workload.zipf_sampler ~n ~s rng in
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    let r = pick () in
    counts.(r) <- counts.(r) + 1
  done;
  let weight i = 1.0 /. (float_of_int (i + 1) ** s) in
  let total = Array.init n weight |> Array.fold_left ( +. ) 0.0 in
  let chi2 = ref 0.0 in
  for i = 0 to n - 1 do
    let expected = float_of_int samples *. weight i /. total in
    let d = float_of_int counts.(i) -. expected in
    chi2 := !chi2 +. (d *. d /. expected)
  done;
  !chi2

let test_zipf_chi_squared () =
  List.iter
    (fun s ->
      let chi2 = chi_squared ~n:8 ~s ~samples:20_000 ~seed:1234 in
      if chi2 > 24.32 then
        Alcotest.failf "zipf(s=%.1f) chi2 = %.2f exceeds the 99.9%% critical value"
          s chi2)
    [ 0.0; 0.8; 1.1; 2.0 ]

let test_zipf_skew_orders_ranks () =
  (* Sanity on the shape, not just the fit: with real skew, rank 0 must
     be drawn more often than rank n-1 by about the analytic ratio. *)
  let rng = Random.State.make [| 99 |] in
  let n = 16 in
  let pick = Workload.zipf_sampler ~n ~s:1.1 rng in
  let counts = Array.make n 0 in
  for _ = 1 to 50_000 do
    let r = pick () in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates the tail" true
    (counts.(0) > 10 * counts.(n - 1))

(* ------------------------------------------------------------------ *)
(* Trace generation and replay determinism                              *)

let test_trace_deterministic () =
  let cfg = Workload.default_trace in
  let take k =
    let rec go acc n seq =
      if n = 0 then List.rev acc
      else
        match seq () with
        | Seq.Nil -> List.rev acc
        | Seq.Cons (op, rest) -> go (op :: acc) (n - 1) rest
    in
    go [] k (Workload.trace cfg)
  in
  let a = take 5_000 and b = take 5_000 in
  Alcotest.(check bool) "two streams from one seed are identical" true (a = b);
  let c = take 5_000
  and d =
    let rec go acc n seq =
      if n = 0 then List.rev acc
      else
        match seq () with
        | Seq.Nil -> List.rev acc
        | Seq.Cons (op, rest) -> go (op :: acc) (n - 1) rest
    in
    go [] 5_000 (Workload.trace { cfg with Workload.t_seed = cfg.Workload.t_seed + 1 })
  in
  Alcotest.(check bool) "a different seed diverges" true (c <> d)

let test_replay_deterministic () =
  (* Replay the same trace twice over fresh single-host stacks: op
     counts and the final namespace must match bit-for-bit. *)
  let run () =
    let _, fs = fresh_ufs ~blocks:8192 () in
    let root = Ufs_vnode.root fs in
    let cfg =
      { Workload.default_trace with Workload.t_users = 4; t_files = 8 }
    in
    (match Workload.setup_trace root cfg with
     | Ok () -> ()
     | Error e -> Alcotest.failf "setup: %s" (Errno.to_string e));
    let stats = Workload.replay ~root_for:(fun _ -> root) cfg ~ops:2_000 in
    let dump = ref [] in
    (match root.Vnode.readdir () with
     | Error _ -> ()
     | Ok entries ->
       List.iter
         (fun e ->
           match root.Vnode.lookup e.Vnode.entry_name with
           | Error _ -> ()
           | Ok dv ->
             (match dv.Vnode.readdir () with
              | Error _ -> ()
              | Ok files ->
                List.iter
                  (fun f ->
                    let size =
                      match dv.Vnode.lookup f.Vnode.entry_name with
                      | Ok fv ->
                        (match fv.Vnode.getattr () with
                         | Ok at -> at.Vnode.size
                         | Error _ -> -1)
                      | Error _ -> -1
                    in
                    dump :=
                      (e.Vnode.entry_name ^ "/" ^ f.Vnode.entry_name, size)
                      :: !dump)
                  files))
         entries);
    (stats, List.sort compare !dump)
  in
  let s1, d1 = run () and s2, d2 = run () in
  Alcotest.(check bool) "identical stats" true (s1 = s2);
  Alcotest.(check bool) "identical namespace" true (d1 = d2);
  Alcotest.(check int) "no op errors" 0 s1.Workload.tr_errors;
  Alcotest.(check bool) "every kind exercised" true
    (s1.Workload.tr_reads > 0 && s1.Workload.tr_writes > 0
   && s1.Workload.tr_renames > 0 && s1.Workload.tr_mkdirs > 0)

let suite =
  List.map QCheck_alcotest.to_alcotest (net_props @ cluster_props)
  @ [
      Alcotest.test_case "zipf sampler passes chi-squared" `Quick
        test_zipf_chi_squared;
      Alcotest.test_case "zipf skew orders ranks" `Quick
        test_zipf_skew_orders_ranks;
      Alcotest.test_case "trace stream is seed-deterministic" `Quick
        test_trace_deterministic;
      Alcotest.test_case "trace replay is deterministic" `Quick
        test_replay_deterministic;
    ]
