(* Cluster-level machinery: dynamic replica placement, reboot under
   load, reconciliation scheduling, host crash during propagation. *)

open Util

let test_add_replica_populates () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (Namei.mkdir_p ~root:root0 "a/b") in
  create_file root0 "a/b/deep" "payload";
  create_file root0 "top" "up here";
  let (_ : int) = Cluster.run_propagation cluster in
  (* Host2 joins the replica set; it must end up with the full tree. *)
  let rid = ok (Cluster.add_replica cluster ~host:2 vref) in
  Alcotest.(check int) "fresh replica id" 3 rid;
  let phys2 = Option.get (Cluster.replica (Cluster.host cluster 2) vref) in
  Alcotest.(check int) "peer list grew" 3 (List.length (Physical.peers phys2));
  let fdir = ok (Physical.fetch_dir phys2 []) in
  let names = Fdir.live fdir |> List.map fst |> List.sort compare in
  Alcotest.(check (list string)) "populated" [ "a"; "top" ] names;
  (* And it participates in the volume from now on. *)
  Cluster.partition cluster [ [ 2 ]; [ 0; 1 ] ];
  let root2 = ok (Cluster.logical_root cluster 2 vref) in
  Alcotest.(check string) "serves alone" "payload" (read_file root2 "a/b/deep")

let test_new_replica_receives_notifications () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "v1";
  let (_ : int) = Cluster.run_propagation cluster in
  let _rid = ok (Cluster.add_replica cluster ~host:2 vref) in
  (* A post-join update must reach the newcomer through the ordinary
     notification/propagation path. *)
  write_file root0 "f" "v2";
  let (_ : int) = Cluster.run_propagation cluster in
  let phys2 = Option.get (Cluster.replica (Cluster.host cluster 2) vref) in
  let fdir = ok (Physical.fetch_dir phys2 []) in
  let e = Option.get (Fdir.find_live fdir "f") in
  let _, data = ok (Physical.fetch_file phys2 [ e.Fdir.fid ]) in
  Alcotest.(check string) "notified and pulled" "v2" data

let test_remove_replica () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "v1";
  let (_ : int) = Cluster.run_propagation cluster in
  ok (Cluster.remove_replica cluster ~host:2 vref);
  Alcotest.(check bool) "replica gone" true
    (Cluster.replica (Cluster.host cluster 2) vref = None);
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  Alcotest.(check int) "peer list shrank" 2 (List.length (Physical.peers phys0));
  (* The volume still works and still converges with two replicas. *)
  write_file root0 "f" "v2";
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "still replicating" "v2" (read_file root1 "f")

let test_tombstone_gc_after_membership_change () =
  (* Removing a replica must unblock tombstone GC that was waiting for
     it (the GC quantifies over the *current* peer list). *)
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "doomed" "x";
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  (* host2 vanishes for good; then the file is deleted. *)
  Cluster.partition cluster [ [ 0; 1 ]; [ 2 ] ];
  ok (root0.Vnode.remove "doomed");
  (* With host2 still a peer, the tombstone cannot be collected... *)
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:20 ()) in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  Alcotest.(check bool) "tombstone pinned by absent peer" true
    (List.length (ok (Physical.fetch_dir phys0 [])).Fdir.entries = 1);
  (* ...after retiring host2's replica, another round collects it. *)
  ok (Cluster.remove_replica cluster ~host:2 vref);
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:20 ()) in
  Alcotest.(check int) "tombstone collected" 0
    (List.length (ok (Physical.fetch_dir phys0 [])).Fdir.entries)

let test_reboot_under_load () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "before" "durable";
  let (_ : int) = Cluster.run_propagation cluster in
  (* host1 crashes with a notification still queued (not yet pumped). *)
  write_file root0 "before" "updated";
  ok (Cluster.reboot cluster 1);
  (* The datagram was queued before the crash; after reboot it is
     delivered and acted on (or reconciliation covers it). *)
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "converged after reboot" "updated" (read_file root1 "before");
  (* And the rebooted host keeps serving its own clients. *)
  write_file root1 "before" "from host1";
  Alcotest.(check string) "rebooted host writes" "from host1" (read_file root1 "before")

let test_summaries_survive_reboot () =
  (* Subtree summary claims are flushed ahead of serving them (journaled
     like any metadata write), so a crash cannot forget a claim a peer
     may have used to prune. *)
  let cluster = Cluster.create ~journal_blocks:256 ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "data";
  let _ = ok (root0.Vnode.mkdir "d") in
  (* Converging makes host1 issue getdirvvs against host0, which flushes
     host0's pending summary claims to disk. *)
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  let summary_of phys =
    match (ok (Physical.get_version phys [])).Physical.vi_summary with
    | Some s -> s
    | None -> Alcotest.fail "root carries no summary"
  in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let before = summary_of phys0 in
  Alcotest.(check bool) "claims cover local events" true
    (Version_vector.get before 1 > 0);
  (* Age out the group commit, then crash. *)
  let (_ : int * Reconcile.stats) = Cluster.tick_daemons cluster 10 in
  ok (Cluster.reboot cluster 0);
  let phys0' = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  Alcotest.(check bool) "claims survive the crash" true
    (Version_vector.dominates (summary_of phys0') before)

let test_reboot_preserves_uniq_allocator () =
  let cluster = Cluster.create ~nhosts:1 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0 ]) in
  let root = ok (Cluster.logical_root cluster 0 vref) in
  create_file root "a" "1";
  ok (Cluster.reboot cluster 0);
  let root = ok (Cluster.logical_root cluster 0 vref) in
  create_file root "b" "2";
  let phys = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let fdir = ok (Physical.fetch_dir phys []) in
  let fids = Fdir.live fdir |> List.map (fun (_, e) -> Ids.fid_to_hex e.Fdir.fid) in
  Alcotest.(check int) "no fid reuse across reboot" (List.length fids)
    (List.length (List.sort_uniq compare fids))

let test_converge_reports_partitioned_failure () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  (* Reconciliation cannot run across the cut; the ring round reports
     errors rather than pretending to converge. *)
  let stats = ok (Cluster.reconcile_ring cluster vref) in
  Alcotest.(check int) "both directions failed" 2 stats.Reconcile.errors

let suite =
  [
    case "add_replica populates the newcomer" test_add_replica_populates;
    case "new replica receives notifications" test_new_replica_receives_notifications;
    case "remove_replica" test_remove_replica;
    case "membership change unblocks tombstone GC" test_tombstone_gc_after_membership_change;
    case "reboot under load" test_reboot_under_load;
    case "reboot preserves the fid allocator" test_reboot_preserves_uniq_allocator;
    case "summaries survive a crash reboot" test_summaries_survive_reboot;
    case "reconcile reports partition errors" test_converge_reports_partitioned_failure;
  ]
