(* Property-based tests (qcheck): algebraic laws of version vectors, the
   directory-merge CRDT, UFS model conformance, and whole-cluster
   convergence under random workloads and partitions. *)

module Vv = Version_vector

let vv_gen =
  QCheck.Gen.(
    map Vv.of_list
      (list_size (int_bound 5) (pair (int_bound 4) (int_bound 6))))

let arb_vv = QCheck.make ~print:Vv.to_string vv_gen

let prop name ?(count = 200) arb f = QCheck.Test.make ~name ~count arb f

(* ------------------------------------------------------------------ *)
(* Version vector laws                                                 *)

let vv_props =
  [
    prop "merge commutative" (QCheck.pair arb_vv arb_vv) (fun (a, b) ->
        Vv.equal (Vv.merge a b) (Vv.merge b a));
    prop "merge associative" (QCheck.triple arb_vv arb_vv arb_vv) (fun (a, b, c) ->
        Vv.equal (Vv.merge a (Vv.merge b c)) (Vv.merge (Vv.merge a b) c));
    prop "merge idempotent" arb_vv (fun a -> Vv.equal (Vv.merge a a) a);
    prop "merge is an upper bound" (QCheck.pair arb_vv arb_vv) (fun (a, b) ->
        let m = Vv.merge a b in
        Vv.dominates m a && Vv.dominates m b);
    prop "bump strictly dominates" (QCheck.pair arb_vv (QCheck.int_bound 4))
      (fun (a, r) -> Vv.compare_vv (Vv.bump a r) a = Vv.Dominates);
    prop "compare antisymmetric" (QCheck.pair arb_vv arb_vv) (fun (a, b) ->
        match Vv.compare_vv a b, Vv.compare_vv b a with
        | Vv.Equal, Vv.Equal
        | Vv.Dominates, Vv.Dominated
        | Vv.Dominated, Vv.Dominates
        | Vv.Concurrent, Vv.Concurrent -> true
        | _, _ -> false);
    prop "dominates transitive" (QCheck.triple arb_vv arb_vv arb_vv) (fun (a, b, c) ->
        let m1 = Vv.merge a b and m2 = Vv.merge (Vv.merge a b) c in
        (* m2 >= m1 >= a implies m2 >= a *)
        (not (Vv.dominates m2 m1 && Vv.dominates m1 a)) || Vv.dominates m2 a);
    prop "codec roundtrip" arb_vv (fun a ->
        match Vv.decode (Vv.encode a) with Some a' -> Vv.equal a a' | None -> false);
    prop "equal iff compare Equal" (QCheck.pair arb_vv arb_vv) (fun (a, b) ->
        Vv.equal a b = (Vv.compare_vv a b = Vv.Equal));
  ]

(* ------------------------------------------------------------------ *)
(* Fdir merge: convergence of random divergent histories               *)

(* A random local-update script for one replica: add / kill / rename by
   index.  Applying scripts at several replicas and then gossiping
   merges around must converge every replica to the same live view. *)
type dir_op = Add of string | Kill of int | Rename of int * string

let dir_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun i -> Add (Printf.sprintf "f%d" i)) (int_bound 6));
        (2, map (fun i -> Kill i) (int_bound 8));
        (2, map2 (fun i j -> Rename (i, Printf.sprintf "r%d" j)) (int_bound 8) (int_bound 6));
      ])

let print_dir_op = function
  | Add n -> "Add " ^ n
  | Kill i -> Printf.sprintf "Kill %d" i
  | Rename (i, n) -> Printf.sprintf "Rename (%d, %s)" i n

let apply_script rid script =
  let seq = ref 100 in
  let next () = incr seq; !seq in
  let apply d op =
    match op with
    | Add name ->
      let n = next () in
      (match
         Fdir.add d ~rid ~name ~fid:{ Ids.issuer = rid; uniq = n } ~kind:Aux_attrs.Freg
           ~birth:{ Fdir.b_rid = rid; b_seq = n }
       with
       | Ok d -> d
       | Error _ -> d)
    | Kill i ->
      let live = Fdir.live d in
      if live = [] then d
      else
        let _, e = List.nth live (i mod List.length live) in
        (match Fdir.kill d ~rid e.Fdir.birth with Ok d -> d | Error _ -> d)
    | Rename (i, name) ->
      let live = Fdir.live d in
      if live = [] then d
      else
        let _, e = List.nth live (i mod List.length live) in
        let n = next () in
        (match Fdir.kill d ~rid e.Fdir.birth with
         | Error _ -> d
         | Ok d ->
           (match
              Fdir.add d ~rid ~name ~fid:e.Fdir.fid ~kind:e.Fdir.kind
                ~birth:{ Fdir.b_rid = rid; b_seq = n }
            with
            | Ok d -> d
            | Error _ -> d))
  in
  List.fold_left apply (Fdir.empty rid) script

let live_view d = Fdir.live d |> List.map (fun (n, e) -> (n, Ids.fid_to_hex e.Fdir.fid))

let gossip_until_converged replicas ~peers ~max_rounds =
  (* One round: every replica pulls from its ring successor. *)
  let n = Array.length replicas in
  let round () =
    for i = 0 to n - 1 do
      let remote = replicas.((i + 1) mod n) in
      let r =
        Fdir.merge ~local_rid:(i + 1) ~remote_rid:(((i + 1) mod n) + 1) ~peers replicas.(i)
          remote
      in
      replicas.(i) <- r.Fdir.merged
    done
  in
  let converged () =
    let v0 = live_view replicas.(0) in
    Array.for_all (fun d -> live_view d = v0) replicas
  in
  let rec go k = if converged () then true else if k = 0 then false else (round (); go (k - 1)) in
  go max_rounds

let scripts_arb =
  QCheck.make
    ~print:(fun (a, b, c) ->
      let p s = String.concat ";" (List.map print_dir_op s) in
      Printf.sprintf "[%s] [%s] [%s]" (p a) (p b) (p c))
    QCheck.Gen.(
      triple (list_size (int_bound 8) dir_op_gen) (list_size (int_bound 8) dir_op_gen)
        (list_size (int_bound 8) dir_op_gen))

let fdir_props =
  [
    prop "three divergent replicas converge" ~count:300 scripts_arb (fun (s1, s2, s3) ->
        let replicas =
          [| apply_script 1 s1; apply_script 2 s2; apply_script 3 s3 |]
        in
        gossip_until_converged replicas ~peers:[ 1; 2; 3 ] ~max_rounds:6);
    prop "merge idempotent on random states" ~count:300 scripts_arb (fun (s1, s2, _) ->
        let a = apply_script 1 s1 and b = apply_script 2 s2 in
        let m1 = (Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] a b).Fdir.merged in
        let m2 = (Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] m1 b).Fdir.merged in
        live_view m1 = live_view m2);
    prop "merge never loses unobserved entries" ~count:300 scripts_arb (fun (s1, s2, _) ->
        (* Every entry live at B and never killed anywhere stays live
           after A merges B. *)
        let a = apply_script 1 s1 and b = apply_script 2 s2 in
        let m = (Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] a b).Fdir.merged in
        let killed_at rep e =
          match Fdir.find_birth rep e.Fdir.birth with
          | Some { Fdir.status = Fdir.Dead _; _ } -> true
          | _ -> false
        in
        let live_in rep e =
          match Fdir.find_birth rep e.Fdir.birth with
          | Some { Fdir.status = Fdir.Live; _ } -> true
          | _ -> false
        in
        List.for_all (fun (_, e) -> killed_at a e || live_in m e) (Fdir.live b));
    prop "codec roundtrip on random states" ~count:300 scripts_arb (fun (s1, _, _) ->
        let a = apply_script 1 s1 in
        match Fdir.decode (Fdir.encode a) with
        | Some a' -> live_view a = live_view a' && Vv.equal a.Fdir.vv a'.Fdir.vv
        | None -> false);
  ]

(* ------------------------------------------------------------------ *)
(* UFS conformance against a functional model                          *)

type fs_op =
  | Create of int * int           (* dir index, name index *)
  | WriteF of int * int * string  (* dir, name, data *)
  | Unlink of int * int
  | MkdirOp of int
  | RenameF of int * int * int * int

let fs_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun d n -> Create (d, n)) (int_bound 3) (int_bound 5));
        (4, map3 (fun d n s -> WriteF (d, n, s)) (int_bound 3) (int_bound 5)
             (string_size (int_bound 64) ~gen:printable));
        (2, map2 (fun d n -> Unlink (d, n)) (int_bound 3) (int_bound 5));
        (1, map (fun d -> MkdirOp d) (int_bound 3));
        (2,
         map
           (fun (a, b, c, d) -> RenameF (a, b, c, d))
           (quad (int_bound 3) (int_bound 5) (int_bound 3) (int_bound 5)));
      ])

let print_fs_op = function
  | Create (d, n) -> Printf.sprintf "Create(%d,%d)" d n
  | WriteF (d, n, s) -> Printf.sprintf "Write(%d,%d,%S)" d n s
  | Unlink (d, n) -> Printf.sprintf "Unlink(%d,%d)" d n
  | MkdirOp d -> Printf.sprintf "Mkdir(%d)" d
  | RenameF (a, b, c, d) -> Printf.sprintf "Rename(%d,%d->%d,%d)" a b c d

(* Model: a map from "dir/name" to contents; directories "d0".."d3"
   implicitly created on first use. *)
module Smap = Map.Make (String)

let run_model ops =
  let dir d = Printf.sprintf "d%d" (d mod 4) in
  let file d n = Printf.sprintf "%s/f%d" (dir d) (n mod 6) in
  let apply (dirs, files) op =
    match op with
    | MkdirOp d -> (Smap.add (dir d) () dirs, files)
    | Create (d, n) ->
      let dirs = Smap.add (dir d) () dirs in
      let key = file d n in
      if Smap.mem key files then (dirs, files) else (dirs, Smap.add key "" files)
    | WriteF (d, n, s) ->
      let key = file d n in
      if Smap.mem key files then (dirs, Smap.add key s files) else (dirs, files)
    | Unlink (d, n) -> (dirs, Smap.remove (file d n) files)
    | RenameF (a, b, c, d) ->
      let src = file a b and dst = file c d in
      (match Smap.find_opt src files with
       | None -> (dirs, files)
       | Some contents ->
         if Smap.mem (dir c) dirs && not (Smap.mem dst files) then
           (dirs, Smap.add dst contents (Smap.remove src files))
         else (dirs, files))
  in
  List.fold_left apply (Smap.empty, Smap.empty) ops

(* The same operation script executed through an (uncached) NFS mount
   must observe exactly what direct vnode access observes: the transport
   is semantically transparent (modulo the caches, here disabled). *)
let run_ops_via root ops =
  let dir d = Printf.sprintf "d%d" (d mod 4) in
  let file d n = Printf.sprintf "%s/f%d" (dir d) (n mod 6) in
  let ensure_dir d =
    match root.Vnode.lookup (dir d) with
    | Ok v -> Some v
    | Error Errno.ENOENT ->
      (match root.Vnode.mkdir (dir d) with Ok v -> Some v | Error _ -> None)
    | Error _ -> None
  in
  List.iter
    (fun op ->
      match op with
      | MkdirOp d -> ignore (ensure_dir d)
      | Create (d, n) ->
        (match ensure_dir d with
         | None -> ()
         | Some dv -> ignore (dv.Vnode.create (Printf.sprintf "f%d" (n mod 6))))
      | WriteF (d, n, s) ->
        (match Namei.walk ~root (file d n) with
         | Ok v -> ignore (Vnode.write_all v s)
         | Error _ -> ())
      | Unlink (d, n) ->
        (match Namei.walk ~root (dir d) with
         | Ok dv -> ignore (dv.Vnode.remove (Printf.sprintf "f%d" (n mod 6)))
         | Error _ -> ())
      | RenameF (a, b, c, d) ->
        (match Namei.walk ~root (dir a), Namei.walk ~root (dir c) with
         | Ok sv, Ok dv ->
           let dst = Printf.sprintf "f%d" (d mod 6) in
           (match dv.Vnode.lookup dst with
            | Error Errno.ENOENT ->
              ignore (sv.Vnode.rename (Printf.sprintf "f%d" (b mod 6)) dv dst)
            | Ok _ | Error _ -> ())
         | _, _ -> ()))
    ops

let run_ufs ops =
  let _, fs = Util.fresh_ufs ~blocks:4096 () in
  let root = Ufs_vnode.root fs in
  run_ops_via root ops;
  (fs, root)

let observe_ufs root =
  let contents = ref [] in
  (match root.Vnode.readdir () with
   | Error _ -> ()
   | Ok dirs ->
     List.iter
       (fun d ->
         match root.Vnode.lookup d.Vnode.entry_name with
         | Error _ -> ()
         | Ok dv ->
           (match dv.Vnode.readdir () with
            | Error _ -> ()
            | Ok files ->
              List.iter
                (fun f ->
                  match dv.Vnode.lookup f.Vnode.entry_name with
                  | Error _ -> ()
                  | Ok fv ->
                    (match Vnode.read_all fv with
                     | Ok data ->
                       contents :=
                         (d.Vnode.entry_name ^ "/" ^ f.Vnode.entry_name, data) :: !contents
                     | Error _ -> ()))
                files))
       dirs);
  List.sort compare !contents

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_fs_op ops))
    QCheck.Gen.(list_size (int_bound 40) fs_op_gen)

let ufs_props =
  [
    prop "UFS matches the functional model" ~count:150 ops_arb (fun ops ->
        let _, files = run_model ops in
        let fs, root = run_ufs ops in
        let expected = List.sort compare (Smap.bindings files) in
        let actual = observe_ufs root in
        expected = actual
        && (match Ufs.check fs with Ok () -> true | Error _ -> false));
    prop "NFS transport is semantically transparent" ~count:100 ops_arb (fun ops ->
        (* Direct stack. *)
        let _, direct_fs = Util.fresh_ufs ~blocks:4096 () in
        let direct_root = Ufs_vnode.root direct_fs in
        run_ops_via direct_root ops;
        (* Identical ops through an NFS mount (caches off). *)
        let clock = Clock.create () in
        let net = Sim_net.create clock in
        let sid = Sim_net.add_host net "server" in
        let cid = Sim_net.add_host net "client" in
        let _, nfs_fs = Util.fresh_ufs ~blocks:4096 () in
        let server = Nfs_server.create net ~host:sid in
        Nfs_server.add_export server ~name:"e" (Ufs_vnode.root nfs_fs);
        (match Nfs_client.mount ~attr_ttl:0 ~name_ttl:0 net ~client:cid ~server:sid ~export:"e" with
         | Error _ -> false
         | Ok m ->
           run_ops_via (Nfs_client.root m) ops;
           observe_ufs direct_root = observe_ufs (Ufs_vnode.root nfs_fs)));
  ]

(* ------------------------------------------------------------------ *)
(* Whole-cluster convergence under random partitioned workloads        *)

type cl_action =
  | Cwrite of int * int     (* file index, payload tag *)
  | Cmkdir of int           (* directory index *)
  | Cnested of int * int    (* dir index, file index: write inside a dir *)
  | Cremove of int          (* file index *)

type cl_op = { host : int; action : cl_action }

let cl_action_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun f d -> Cwrite (f, d)) (int_bound 3) (int_bound 99));
        (2, map (fun d -> Cmkdir d) (int_bound 2));
        (3, map2 (fun d f -> Cnested (d, f)) (int_bound 2) (int_bound 2));
        (2, map (fun f -> Cremove f) (int_bound 3));
      ])

let print_cl_action = function
  | Cwrite (f, d) -> Printf.sprintf "w f%d %d" f d
  | Cmkdir d -> Printf.sprintf "mkdir d%d" d
  | Cnested (d, f) -> Printf.sprintf "w d%d/n%d" d f
  | Cremove f -> Printf.sprintf "rm f%d" f

let cl_arb =
  QCheck.make
    ~print:(fun (epochs : cl_op list list) ->
      String.concat " | "
        (List.map
           (fun ops ->
             String.concat ";"
               (List.map (fun o -> Printf.sprintf "h%d:%s" o.host (print_cl_action o.action)) ops))
           epochs))
    QCheck.Gen.(
      list_size (1 -- 3)
        (list_size (int_bound 7)
           (map2 (fun host action -> { host; action }) (int_bound 2) cl_action_gen)))

(* Dump a replica's full namespace as (path, contents) pairs. *)
let dump_replica phys =
  let rec walk path acc =
    match Physical.fetch_dir phys path with
    | Error _ -> acc
    | Ok fdir ->
      List.fold_left
        (fun acc (name, e) ->
          let child = path @ [ e.Fdir.fid ] in
          match e.Fdir.kind with
          | Aux_attrs.Freg ->
            (match Physical.fetch_file phys child with
             | Ok (_, data) -> (name, data) :: acc
             | Error _ -> (name, "<unstored>") :: acc)
          | Aux_attrs.Fdir | Aux_attrs.Fgraft -> walk child ((name, "<dir>") :: acc))
        acc (Fdir.live fdir)
  in
  List.sort compare (walk [] [])

let cluster_props =
  [
    prop "replicas converge after partitioned churn" ~count:25 cl_arb (fun epochs ->
        let cluster = Cluster.create ~nhosts:3 () in
        match Cluster.create_volume cluster ~on:[ 0; 1; 2 ] with
        | Error _ -> false
        | Ok vref ->
          let roots =
            List.filter_map
              (fun i -> Result.to_option (Cluster.logical_root cluster i vref))
              [ 0; 1; 2 ]
          in
          if List.length roots <> 3 then false
          else begin
            (* Each epoch: partition into singletons, apply updates at
               each host against its own replica, heal, reconcile. *)
            List.iter
              (fun ops ->
                Cluster.partition cluster [ [ 0 ]; [ 1 ]; [ 2 ] ];
                let lookup_or_create (dir : Vnode.t) name =
                  match dir.Vnode.lookup name with
                  | Ok v -> Some v
                  | Error Errno.ENOENT ->
                    (match dir.Vnode.create name with Ok v -> Some v | Error _ -> None)
                  | Error _ -> None
                in
                let write_in dir name payload =
                  match lookup_or_create dir name with
                  | Some v -> ignore (Vnode.write_all v payload)
                  | None -> ()
                in
                List.iter
                  (fun { host; action } ->
                    let root = List.nth roots host in
                    match action with
                    | Cwrite (f, data) ->
                      write_in root (Printf.sprintf "f%d" f) (Printf.sprintf "h%d:%d" host data)
                    | Cmkdir d -> ignore (root.Vnode.mkdir (Printf.sprintf "d%d" d))
                    | Cnested (d, f) ->
                      let dname = Printf.sprintf "d%d" d in
                      let dir =
                        match root.Vnode.lookup dname with
                        | Ok v -> Some v
                        | Error Errno.ENOENT ->
                          (match root.Vnode.mkdir dname with Ok v -> Some v | Error _ -> None)
                        | Error _ -> None
                      in
                      (match dir with
                       | Some dir ->
                         write_in dir (Printf.sprintf "n%d" f) (Printf.sprintf "h%d" host)
                       | None -> ())
                    | Cremove f -> ignore (root.Vnode.remove (Printf.sprintf "f%d" f)))
                  ops;
                Cluster.heal cluster;
                ignore (Cluster.run_propagation cluster);
                ignore (Cluster.converge cluster vref ~max_rounds:12 ()))
              epochs;
            (* All three replicas must hold identical trees (modulo
               unresolved file conflicts, which keep replicas on their
               own version — exclude conflicted files). *)
            let dumps =
              List.filter_map
                (fun i -> Option.map dump_replica (Cluster.replica (Cluster.host cluster i) vref))
                [ 0; 1; 2 ]
            in
            let conflicted =
              List.exists
                (fun i ->
                  match Cluster.replica (Cluster.host cluster i) vref with
                  | Some phys -> Conflict_log.pending (Physical.conflicts phys) <> []
                  | None -> false)
                [ 0; 1; 2 ]
            in
            let names_of dump = List.map fst dump in
            match dumps with
            | [ a; b; c ] ->
              if conflicted then
                (* Name spaces still converge even when contents differ. *)
                names_of a = names_of b && names_of b = names_of c
              else a = b && b = c
            | _ -> false
          end);
  ]

(* ------------------------------------------------------------------ *)
(* UFS packed directory encoding: round-trip and torn-suffix safety    *)

(* The on-disk directory format (u32 inum, u8 kind, u8 namelen, name
   bytes per entry) is what a mid-append crash tears.  parse_dir's
   contract: any byte-level truncation of a serialized directory parses
   as exactly the preceding complete entries — never a partial entry,
   never a lost earlier one. *)

let dirent_gen =
  QCheck.Gen.(
    let letter = map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25) in
    let name =
      map (fun cs -> String.init (List.length cs) (List.nth cs))
        (list_size (int_range 1 8) letter)
    in
    map
      (fun (name, inum, dir) -> (name, inum + 1, if dir then Ufs.Dir else Ufs.Reg))
      (triple name (int_bound 60000) bool))

let arb_dirents =
  let print_dirent (n, i, k) =
    Printf.sprintf "(%S, %d, %s)" n i (match k with Ufs.Dir -> "Dir" | Ufs.Reg -> "Reg")
  in
  QCheck.make
    ~print:(fun l -> "[" ^ String.concat "; " (List.map print_dirent l) ^ "]")
    QCheck.Gen.(list_size (int_bound 12) dirent_gen)

let dir_codec_props =
  [
    prop "dir encoding round-trips" arb_dirents (fun entries ->
        Ufs.parse_dir (Ufs.serialize_dir entries) = entries);
    prop "dir decoding stops at the zero terminator" arb_dirents (fun entries ->
        Ufs.parse_dir (Ufs.serialize_dir entries ^ String.make 6 '\000') = entries);
    prop "torn dir suffix: every byte cut keeps exactly the complete prefix"
      ~count:100 arb_dirents
      (fun entries ->
        let s = Ufs.serialize_dir entries in
        let expect cut =
          let rec go acc off = function
            | ((name, _, _) as e) :: tl when off + 6 + String.length name <= cut ->
              go (e :: acc) (off + 6 + String.length name) tl
            | _ -> List.rev acc
          in
          go [] 0 entries
        in
        let ok = ref true in
        for cut = 0 to String.length s do
          if Ufs.parse_dir (String.sub s 0 cut) <> expect cut then ok := false
        done;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Ctl-name escaping                                                   *)

let arb_bytes =
  QCheck.make
    ~print:(Printf.sprintf "%S")
    QCheck.Gen.(string_size ~gen:char (int_bound 60))

let is_hex_digit = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let ctl_name_props =
  [
    prop "ctl-name escape round-trips on arbitrary bytes" ~count:500 arb_bytes
      (fun s -> Ctl_name.unescape (Ctl_name.escape s) = Some s);
    prop "ctl-name escape output never contains '#'" ~count:500 arb_bytes
      (fun s -> not (String.contains (Ctl_name.escape s) '#'));
    prop "ctl-name unescape rejects malformed %-sequences" ~count:500
      (QCheck.pair arb_bytes (QCheck.pair QCheck.char QCheck.char))
      (fun (s, (a, b)) ->
        (* Splice a literal '%' followed by two arbitrary characters into
           otherwise-clean text: unescape must accept it exactly when
           both are hex digits. *)
        let clean = Ctl_name.escape s in
        let spliced = Printf.sprintf "%s%%%c%c%s" clean a b clean in
        let well_formed = is_hex_digit a && is_hex_digit b in
        (Ctl_name.unescape spliced <> None) = well_formed);
    prop "ctl-name encode/decode round-trips args" ~count:300
      (QCheck.pair arb_bytes arb_bytes)
      (fun (a1, a2) ->
        match Ctl_name.encode ~op:"test" ~args:[ a1; a2 ] with
        | Error Errno.ENAMETOOLONG -> true (* oversized: correctly refused *)
        | Error _ -> false
        | Ok name -> Ctl_name.decode name = Some ("test", [ a1; a2 ]));
  ]

(* ------------------------------------------------------------------ *)
(* Incremental reconciliation equivalence                              *)

(* Summary pruning and batched version RPCs are pure optimizations: on
   any divergence history, driving convergence with the incremental
   pass must land every replica in exactly the state the original
   full-walk pass produces. *)
let recon_equiv_props =
  let apply_ops roots ops =
    let lookup_or_create (dir : Vnode.t) name =
      match dir.Vnode.lookup name with
      | Ok v -> Some v
      | Error Errno.ENOENT ->
        (match dir.Vnode.create name with Ok v -> Some v | Error _ -> None)
      | Error _ -> None
    in
    let write_in dir name payload =
      match lookup_or_create dir name with
      | Some v -> ignore (Vnode.write_all v payload)
      | None -> ()
    in
    List.iter
      (fun { host; action } ->
        let host = host mod 2 in
        let root = List.nth roots host in
        match action with
        | Cwrite (f, data) ->
          write_in root (Printf.sprintf "f%d" f) (Printf.sprintf "h%d:%d" host data)
        | Cmkdir d -> ignore (root.Vnode.mkdir (Printf.sprintf "d%d" d))
        | Cnested (d, f) ->
          let dname = Printf.sprintf "d%d" d in
          let dir =
            match root.Vnode.lookup dname with
            | Ok v -> Some v
            | Error Errno.ENOENT ->
              (match root.Vnode.mkdir dname with Ok v -> Some v | Error _ -> None)
            | Error _ -> None
          in
          (match dir with
           | Some dir -> write_in dir (Printf.sprintf "n%d" f) (Printf.sprintf "h%d" host)
           | None -> ())
        | Cremove f -> ignore (root.Vnode.remove (Printf.sprintf "f%d" f)))
      ops
  in
  let ring_reconcile cluster vref ~full =
    let step me peer =
      match Cluster.replica (Cluster.host cluster me) vref with
      | None -> ()
      | Some phys ->
        let connect = Cluster.connect_from cluster me in
        let peer_host = Cluster.host_name (Cluster.host cluster peer) in
        (match connect ~host:peer_host ~vref ~rid:(peer + 1) with
         | Error _ -> ()
         | Ok remote_root ->
           let remote_rid = peer + 1 in
           ignore
             (if full then
                Reconcile.reconcile_subtree ~local:phys ~remote_root ~remote_rid []
              else Reconcile.reconcile_volume ~local:phys ~remote_root ~remote_rid ()))
    in
    for _ = 1 to 4 do
      step 0 1;
      step 1 0
    done
  in
  let run_scenario epochs ~full =
    let cluster = Cluster.create ~nhosts:2 () in
    match Cluster.create_volume cluster ~on:[ 0; 1 ] with
    | Error _ -> None
    | Ok vref ->
      let roots =
        List.filter_map
          (fun i -> Result.to_option (Cluster.logical_root cluster i vref))
          [ 0; 1 ]
      in
      if List.length roots <> 2 then None
      else begin
        List.iter
          (fun ops ->
            Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
            apply_ops roots ops;
            Cluster.heal cluster;
            ring_reconcile cluster vref ~full)
          epochs;
        let dump i =
          Option.map dump_replica (Cluster.replica (Cluster.host cluster i) vref)
        in
        (match (dump 0, dump 1) with
         | Some a, Some b -> Some (a, b)
         | _ -> None)
      end
  in
  (* Collision-repair suffixes ("name#rid.seq") embed the fid sequence
     number, and the incremental pass legitimately allocates fewer
     summary events than the full walk, shifting later seqs — so compare
     the entry multiset with suffixes stripped, not raw names. *)
  let normalize dump =
    List.sort compare
      (List.map
         (fun (name, contents) ->
           let base =
             match String.index_opt name '#' with
             | Some i -> String.sub name 0 i
             | None -> name
           in
           (base, contents))
         dump)
  in
  [
    prop "incremental reconciliation equals the full walk" ~count:25 cl_arb
      (fun epochs ->
        match (run_scenario epochs ~full:true, run_scenario epochs ~full:false) with
        | Some (f0, f1), Some (i0, i1) ->
          (* Per-host across methods; cross-host equality is the churn
             property's business (unresolved file conflicts keep
             replicas on their own contents by design). *)
          normalize f0 = normalize i0 && normalize f1 = normalize i1
        | _ -> false);
  ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    (vv_props @ fdir_props @ ufs_props @ dir_codec_props @ ctl_name_props
   @ cluster_props @ recon_equiv_props)
