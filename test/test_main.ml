let () =
  Alcotest.run "ficus"
    [
      ("version-vectors", Test_vv.suite);
      ("ids", Test_ids.suite);
      ("ctl-name", Test_ctl_name.suite);
      ("fdir", Test_fdir.suite);
      ("storage", Test_storage.suite);
      ("ufs", Test_ufs.suite);
      ("journal", Test_journal.suite);
      ("vnode", Test_vnode.suite);
      ("net", Test_net.suite);
      ("nfs", Test_nfs.suite);
      ("misc", Test_misc.suite);
      ("shadow", Test_shadow.suite);
      ("physical", Test_physical.suite);
      ("logical", Test_logical.suite);
      ("chunking", Test_chunking.suite);
      ("delta", Test_delta.suite);
      ("propagation", Test_propagation.suite);
      ("reconcile", Test_reconcile.suite);
      ("baselines", Test_baselines.suite);
      ("integration", Test_integration.suite);
      ("remote", Test_remote.suite);
      ("stacking", Test_stacking.suite);
      ("daemons", Test_daemons.suite);
      ("trace", Test_trace.suite);
      ("syscall", Test_syscall.suite);
      ("cluster", Test_cluster.suite);
      ("layers", Test_layers.suite);
      ("obs", Test_obs.suite);
      ("gossip", Test_gossip.suite);
      ("raft", Test_raft.suite);
      ("properties", Test_props.suite);
      ("scale", Test_scale.suite);
      ("health", Test_health.suite);
      ("experiments", Test_experiments.suite);
    ]
