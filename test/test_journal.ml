(* The write-ahead metadata journal: group commit, sync durability,
   crash/replay semantics, and the journaled cluster.  The exhaustive
   every-write-point crash sweep lives in Experiments.wal_crash_sweep
   (run from test_experiments.ml); these are the targeted unit cases. *)

open Util

(* A journaled UFS whose clock the test controls.  The huge default
   flush thresholds mean nothing reaches the device unless the test
   forces it (sync / tick / threshold), so each case can pin down
   exactly which state is durable at the crash. *)
let fresh_journaled ?(blocks = 2048) ?(cache = 128) ?(journal_blocks = 64)
    ?(flush_blocks = 10_000) ?(flush_age = 10_000) () =
  let disk = Disk.create ~nblocks:blocks ~block_size:1024 () in
  let clock = ref 0 in
  let now () = incr clock; !clock in
  let fs =
    ok ~msg:"mkfs"
      (Ufs.mkfs ~cache_capacity:cache ~journal_blocks
         ~journal_flush_blocks:flush_blocks ~journal_flush_age:flush_age ~now disk)
  in
  (disk, clock, fs)

let fsck fs =
  match Ufs.check fs with Ok () -> () | Error m -> Alcotest.failf "fsck: %s" m

let test_sync_then_crash_loses_nothing () =
  let _disk, _clock, fs = fresh_journaled () in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "d") in
  let f = ok (Ufs.create fs ~dir:d "f") in
  ok (Ufs.write fs f ~off:0 "must survive the crash");
  ok (Ufs.sync fs);
  ok (Ufs.crash_reboot fs);
  fsck fs;
  let d' = ok (Ufs.dir_lookup fs root "d") in
  let f' = ok (Ufs.dir_lookup fs d' "f") in
  Alcotest.(check string)
    "content survives" "must survive the crash"
    (ok (Ufs.read fs f' ~off:0 ~len:1024))

let test_unsynced_ops_lost_atomically () =
  let _disk, _clock, fs = fresh_journaled () in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "d") in
  let f = ok (Ufs.create fs ~dir:d "f") in
  ok (Ufs.write fs f ~off:0 "synced");
  ok (Ufs.sync fs);
  (* Committed but never flushed: staged only, gone at power loss. *)
  let g = ok (Ufs.create fs ~dir:d "g") in
  ok (Ufs.write fs g ~off:0 "staged only");
  ok (Ufs.crash_reboot fs);
  fsck fs;
  let d' = ok (Ufs.dir_lookup fs root "d") in
  let f' = ok (Ufs.dir_lookup fs d' "f") in
  Alcotest.(check string) "synced op intact" "synced" (ok (Ufs.read fs f' ~off:0 ~len:64));
  expect_err Errno.ENOENT (Ufs.dir_lookup fs d' "g")

let test_replay_is_idempotent () =
  (* flush_blocks = 1: every commit goes straight to the log, so the
     crash leaves sealed-but-not-checkpointed groups for replay. *)
  let _disk, _clock, fs = fresh_journaled ~flush_blocks:1 () in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "dir") in
  for i = 0 to 5 do
    let f = ok (Ufs.create fs ~dir:d (Printf.sprintf "f%d" i)) in
    ok (Ufs.write fs f ~off:0 (Printf.sprintf "payload %d" i))
  done;
  ok (Ufs.unlink fs ~dir:d "f0");
  let dump fs =
    let d = ok (Ufs.dir_lookup fs (Ufs.root fs) "dir") in
    List.map
      (fun (name, i, _) -> (name, ok (Ufs.read fs i ~off:0 ~len:64)))
      (List.sort compare (ok (Ufs.dir_entries fs d)))
  in
  ok (Ufs.crash_reboot fs);
  fsck fs;
  let first = dump fs in
  Alcotest.(check bool) "replay applied something" true
    (List.assoc "replayed" (Ufs.journal_stats fs) > 0);
  (* A second crash immediately after: replaying the same log again
     must land in the identical state. *)
  ok (Ufs.crash_reboot fs);
  fsck fs;
  Alcotest.(check (list (pair string string))) "second replay identical" first (dump fs);
  Alcotest.(check int) "five files live" 5 (List.length first)

let test_staged_state_visible_before_flush () =
  (* A tiny cache forces evictions, so reads must come from the
     journal's staged table, not from cache luck. *)
  let disk, _clock, fs = fresh_journaled ~cache:2 () in
  let w0 = Disk.writes disk in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "d") in
  let f = ok (Ufs.create fs ~dir:d "f") in
  ok (Ufs.write fs f ~off:0 (String.make 2500 'x'));
  Alcotest.(check int) "no device writes before flush" w0 (Disk.writes disk);
  let f' = ok (Ufs.dir_lookup fs (ok (Ufs.dir_lookup fs root "d")) "f") in
  Alcotest.(check string)
    "staged contents readable" (String.make 2500 'x')
    (ok (Ufs.read fs f' ~off:0 ~len:2500));
  fsck fs

let test_tick_flushes_by_age () =
  let disk, clock, fs = fresh_journaled ~flush_age:4 () in
  let root = Ufs.root fs in
  let f = ok (Ufs.create fs ~dir:root "aged") in
  ok (Ufs.write fs f ~off:0 "flushed by the daemon");
  let w0 = Disk.writes disk in
  (* Too young: the tick must not flush yet. *)
  ok (Ufs.journal_tick fs);
  Alcotest.(check int) "young commit stays staged" w0 (Disk.writes disk);
  (* Age it past the threshold: the tick seals it into the log. *)
  clock := !clock + 10;
  ok (Ufs.journal_tick fs);
  Alcotest.(check bool) "aged commit flushed" true (Disk.writes disk > w0);
  (* Flushed-but-not-checkpointed survives the crash via replay. *)
  ok (Ufs.crash_reboot fs);
  fsck fs;
  let f' = ok (Ufs.dir_lookup fs root "aged") in
  Alcotest.(check string)
    "daemon-flushed op durable" "flushed by the daemon"
    (ok (Ufs.read fs f' ~off:0 ~len:64))

let test_journaled_cluster_reboot () =
  let cluster = Cluster.create ~nhosts:2 ~journal_blocks:64 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let f = ok (root0.Vnode.create "hello") in
  ok (Vnode.write_all f "journaled cluster");
  let (_ : int) = Cluster.run_propagation cluster in
  ok (Ufs.sync (Cluster.ufs (Cluster.host cluster 0)));
  (* reboot replays the journal and fscks; corruption would raise. *)
  ok (Cluster.reboot cluster 0);
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let f = ok (root0.Vnode.lookup "hello") in
  Alcotest.(check string) "file survives host reboot" "journaled cluster"
    (ok (Vnode.read_all f))

let suite =
  [
    case "sync then crash loses nothing" test_sync_then_crash_loses_nothing;
    case "unsynced ops are lost atomically, fsck clean" test_unsynced_ops_lost_atomically;
    case "journal replay is idempotent" test_replay_is_idempotent;
    case "staged state visible before any flush" test_staged_state_visible_before_flush;
    case "journal_tick flushes by age" test_tick_flushes_by_age;
    case "journaled cluster survives reboot" test_journaled_cluster_reboot;
  ]
