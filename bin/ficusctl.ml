(* ficusctl: drive the Ficus simulation from the command line.

     ficusctl demo                          guided tour of the stack
     ficusctl experiment e4 e6 ...          run reproduction experiments
     ficusctl availability -n 5 -g 3        availability table
     ficusctl simulate --hosts 3 --epochs 20 --partition-prob 0.4
                                            partitioned workload + report *)

open Cmdliner

let get = function
  | Ok v -> v
  | Error e -> failwith ("ficusctl: " ^ Errno.to_string e)

(* ------------------------------------------------------------------ *)

let demo () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = get (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  Printf.printf "three hosts, volume %s replicated on all of them\n"
    (Fmt.str "%a" Ids.pp_vref vref);
  let root0 = get (Cluster.logical_root cluster 0 vref) in
  let f = get (root0.Vnode.create "demo.txt") in
  get (Vnode.write_all f "written on host0");
  let (_ : int) = Cluster.run_propagation cluster in
  Printf.printf "wrote demo.txt on host0; propagated to the other replicas\n";
  Cluster.partition cluster [ [ 0 ]; [ 1; 2 ] ];
  Printf.printf "partition: {host0} | {host1,host2}\n";
  let root1 = get (Cluster.logical_root cluster 1 vref) in
  get (Vnode.write_all (get (root0.Vnode.lookup "demo.txt")) "edited on host0, offline");
  get (Vnode.write_all (get (root1.Vnode.lookup "demo.txt")) "edited on host1, offline");
  Printf.printf "both sides updated demo.txt under one-copy availability\n";
  Cluster.heal cluster;
  let rounds = get (Cluster.converge cluster vref ~max_rounds:20 ()) in
  Printf.printf "healed; reconciliation converged in %d round(s)\n" rounds;
  List.iter
    (fun i ->
      match Cluster.replica (Cluster.host cluster i) vref with
      | None -> ()
      | Some phys ->
        List.iter
          (fun e -> Printf.printf "host%d conflict: %s\n" i (Fmt.str "%a" Conflict_log.pp_entry e))
          (Conflict_log.pending (Physical.conflicts phys)))
    [ 0; 1; 2 ];
  Printf.printf "conflicting updates were detected and reported, not lost.\n";
  0

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Guided tour: replicate, partition, diverge, reconcile")
    Term.(const demo $ const ())

(* ------------------------------------------------------------------ *)

let experiment names =
  let names = if names = [] then Experiments.names else names in
  let verdicts =
    List.map
      (fun name ->
        match Experiments.run_by_name name with
        | Some v -> v
        | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" name
            (String.concat ", " Experiments.names);
          exit 2)
      names
  in
  if List.for_all (fun v -> v.Experiments.holds) verdicts then 0 else 1

let experiment_cmd =
  let names = Arg.(value & pos_all string [] & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run reproduction experiments (default: all)")
    Term.(const experiment $ names)

(* ------------------------------------------------------------------ *)

let availability nreplicas groups p trials =
  let model =
    match p with
    | Some p -> Availability.Independent p
    | None -> Availability.Partition_groups groups
  in
  let policies =
    [
      Replica_control.One_copy;
      Replica_control.Primary_copy;
      Replica_control.Majority_voting;
      Replica_control.default_weighted ~nreplicas;
      Replica_control.Quorum_consensus
        { read_quorum = (nreplicas / 2) + 1; write_quorum = (nreplicas / 2) + 1 };
    ]
  in
  let rows =
    List.map
      (fun policy ->
        let r = Availability.evaluate ~trials ~nreplicas ~model policy in
        [
          Replica_control.name policy;
          Table.fmt_pct r.Availability.read_availability;
          Table.fmt_pct r.Availability.update_availability;
        ])
      policies
  in
  let model_name =
    match p with
    | Some p -> Printf.sprintf "independent reachability p=%.2f" p
    | None -> Printf.sprintf "uniform %d-way partitions" groups
  in
  Table.print
    ~title:(Printf.sprintf "availability: %d replicas, %s, %d trials" nreplicas model_name trials)
    ~headers:[ "policy"; "read"; "update" ]
    rows;
  0

let availability_cmd =
  let n = Arg.(value & opt int 3 & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Replica count") in
  let g = Arg.(value & opt int 3 & info [ "g"; "groups" ] ~docv:"K" ~doc:"Partition groups") in
  let p =
    Arg.(value & opt (some float) None
         & info [ "p" ] ~docv:"P" ~doc:"Independent reachability probability (overrides -g)")
  in
  let trials = Arg.(value & opt int 50_000 & info [ "trials" ] ~docv:"T" ~doc:"Trials") in
  Cmd.v
    (Cmd.info "availability" ~doc:"Compare replica-control policies under failures")
    Term.(const availability $ n $ g $ p $ trials)

(* ------------------------------------------------------------------ *)

let simulate hosts epochs partition_prob write_fraction seed =
  let cluster = Cluster.create ~nhosts:hosts ~seed () in
  let all_hosts = List.init hosts Fun.id in
  let vref = get (Cluster.create_volume cluster ~on:all_hosts) in
  let roots = List.map (fun i -> get (Cluster.logical_root cluster i vref)) all_hosts in
  let cfg = { Workload.default with write_fraction; seed } in
  get (Workload.setup (List.hd roots) cfg);
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = get (Cluster.converge cluster vref ()) in
  let rng = Random.State.make [| seed |] in
  let total = ref { Workload.reads = 0; writes = 0; errors = 0 } in
  for _ = 1 to epochs do
    if Random.State.float rng 1.0 < partition_prob then
      Cluster.partition cluster (List.map (fun i -> [ i ]) all_hosts)
    else Cluster.heal cluster;
    List.iter
      (fun root ->
        let s = Workload.run root { cfg with seed = Random.State.int rng 100000 } ~ops:20 in
        total :=
          {
            Workload.reads = !total.Workload.reads + s.Workload.reads;
            writes = !total.Workload.writes + s.Workload.writes;
            errors = !total.Workload.errors + s.Workload.errors;
          })
      roots;
    Cluster.heal cluster;
    let (_ : int) = Cluster.run_propagation cluster in
    (match Cluster.converge cluster vref ~max_rounds:20 () with Ok _ | Error _ -> ())
  done;
  let conflicts =
    List.fold_left
      (fun acc i ->
        match Cluster.replica (Cluster.host cluster i) vref with
        | Some phys -> acc + List.length (Conflict_log.all (Physical.conflicts phys))
        | None -> acc)
      0 all_hosts
  in
  Table.print ~title:"simulation report"
    ~headers:[ "metric"; "value" ]
    [
      [ "hosts"; string_of_int hosts ];
      [ "epochs"; string_of_int epochs ];
      [ "reads"; string_of_int !total.Workload.reads ];
      [ "writes"; string_of_int !total.Workload.writes ];
      [ "op errors"; string_of_int !total.Workload.errors ];
      [ "conflicts detected"; string_of_int conflicts ];
      [ "conflict rate";
        (if !total.Workload.writes = 0 then "n/a"
         else Table.fmt_pct (float_of_int conflicts /. float_of_int !total.Workload.writes)) ];
    ];
  0

let simulate_cmd =
  let hosts = Arg.(value & opt int 3 & info [ "hosts" ] ~docv:"N" ~doc:"Host count") in
  let epochs = Arg.(value & opt int 20 & info [ "epochs" ] ~docv:"E" ~doc:"Workload epochs") in
  let pp =
    Arg.(value & opt float 0.3
         & info [ "partition-prob" ] ~docv:"P" ~doc:"Probability an epoch is partitioned")
  in
  let wf =
    Arg.(value & opt float 0.2 & info [ "write-fraction" ] ~docv:"W" ~doc:"Fraction of writes")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a partitioned workload and report conflict statistics")
    Term.(const simulate $ hosts $ epochs $ pp $ wf $ seed)

(* ------------------------------------------------------------------ *)

(* `ficusctl stats`: generate some cross-host activity, then fetch the
   `.#ficus#stats` ctl name through the interposed NFS stack — host1
   holds no replica, so the fetch itself crosses the wire — and
   pretty-print the line-oriented snapshot body. *)

let stats () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = get (Cluster.create_volume cluster ~on:[ 0 ]) in
  let root0 = get (Cluster.logical_root cluster 0 vref) in
  let f = get (root0.Vnode.create "stats-demo.txt") in
  get (Vnode.write_all f "written locally on host0");
  let root1 = get (Cluster.logical_root cluster 1 vref) in
  get (Vnode.write_all (get (root1.Vnode.lookup "stats-demo.txt")) "written across NFS");
  let (_ : int) = Cluster.run_propagation cluster in
  let body = get (Remote.stats root1) in
  let lines = String.split_on_char '\n' body |> List.filter (fun l -> l <> "") in
  let counters = ref [] and gauges = ref [] and hists = ref [] and spans = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "counter"; name; v ] -> counters := [ name; v ] :: !counters
      | [ "gauge"; name; v ] -> gauges := [ name; v ] :: !gauges
      | "hist" :: name :: rest -> hists := [ name; String.concat " " rest ] :: !hists
      | "span" :: _ -> spans := line :: !spans
      | _ -> ())
    lines;
  Table.print
    ~title:"`.#ficus#stats` counters (fetched across NFS from host1)"
    ~headers:[ "counter"; "value" ]
    (List.rev !counters);
  if !gauges <> [] then
    Table.print ~title:"gauges" ~headers:[ "gauge"; "value" ] (List.rev !gauges);
  if !hists <> [] then
    Table.print ~title:"histograms" ~headers:[ "histogram"; "summary" ] (List.rev !hists);
  let spans = List.rev !spans in
  let nspans = List.length spans in
  let tail = 8 in
  Printf.printf "\n%d span timeline event(s)%s:\n" nspans
    (if nspans > tail then Printf.sprintf "; last %d" tail else "");
  List.iteri (fun i l -> if i >= nspans - tail then Printf.printf "  %s\n" l) spans;
  0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Fetch `.#ficus#stats` through the NFS stack and pretty-print it")
    Term.(const stats $ const ())

(* ------------------------------------------------------------------ *)

(* `ficusctl trace`: run a replicated workload with a retention-capped
   span store and the streaming Chrome trace-event exporter attached,
   so evicted spans land in the JSONL instead of vanishing. *)

let trace out ops cap =
  let cluster = Cluster.create ~nhosts:3 () in
  let spans = (Cluster.obs cluster).Obs.spans in
  Span.set_retention spans cap;
  let exporter = Trace_export.create out in
  Trace_export.attach exporter spans;
  let vref = get (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let roots = List.init 3 (fun i -> get (Cluster.logical_root cluster i vref)) in
  let cfg = { Workload.default with seed = 7 } in
  get (Workload.setup (List.hd roots) cfg);
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = get (Cluster.converge cluster vref ()) in
  let errors = ref 0 in
  List.iteri
    (fun i root ->
      let s = Workload.run root { cfg with seed = 100 + i } ~ops in
      errors := !errors + s.Workload.errors;
      let (_ : int * Reconcile.stats) = Cluster.tick_daemons cluster 50 in
      ())
    roots;
  let (_ : int) = Cluster.run_propagation cluster in
  (match Cluster.converge cluster vref ~max_rounds:50 () with Ok _ | Error _ -> ());
  let streamed = Trace_export.exported exporter in
  let drained = Trace_export.drain exporter spans in
  Trace_export.close exporter;
  Table.print ~title:"trace export"
    ~headers:[ "metric"; "value" ]
    [
      [ "ops per host"; string_of_int ops ];
      [ "op errors"; string_of_int !errors ];
      [ "spans minted"; string_of_int (Span.minted spans) ];
      [ "retention cap"; string_of_int cap ];
      [ "spans live at end"; string_of_int (Span.live spans) ];
      [ "spans streamed on eviction"; string_of_int streamed ];
      [ "spans drained at end"; string_of_int drained ];
      [ "JSONL lines"; string_of_int (Trace_export.lines exporter) ];
    ];
  Printf.printf "\nwrote %s (Chrome trace-event JSONL; load in Perfetto, 1 tick = 1us)\n"
    (Trace_export.path exporter);
  if Trace_export.exported exporter = Span.minted spans then 0
  else begin
    Printf.eprintf "trace incomplete: %d exported of %d minted\n"
      (Trace_export.exported exporter) (Span.minted spans);
    1
  end

let trace_cmd =
  let out =
    Arg.(value & opt string "ficus_trace.jsonl"
         & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output JSONL path")
  in
  let ops = Arg.(value & opt int 300 & info [ "ops" ] ~docv:"N" ~doc:"Operations per host") in
  let cap =
    Arg.(value & opt int 256 & info [ "cap" ] ~docv:"N" ~doc:"Span-store retention cap")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Export a workload's span timelines as Chrome trace-event JSONL")
    Term.(const trace $ out $ ops $ cap)

(* ------------------------------------------------------------------ *)

(* `ficusctl top`: run a partitioned workload on a health-enabled
   cluster and show where the simulator's cycles went (the per-daemon
   tick profiler) next to the watchdog's gauges and any events. *)

let top hosts epochs seed =
  let cluster = Cluster.create ~health:Health.default_config ~nhosts:hosts ~seed () in
  let all_hosts = List.init hosts Fun.id in
  let vref = get (Cluster.create_volume cluster ~on:all_hosts) in
  let roots = List.map (fun i -> get (Cluster.logical_root cluster i vref)) all_hosts in
  let cfg = { Workload.default with seed } in
  get (Workload.setup (List.hd roots) cfg);
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = get (Cluster.converge cluster vref ()) in
  let rng = Random.State.make [| seed |] in
  for epoch = 1 to epochs do
    (* A third of the epochs run minority-partitioned so the watchdog
       has something to watch. *)
    if epoch mod 3 = 0 && hosts > 1 then
      Cluster.partition cluster [ [ 0 ]; List.tl all_hosts ]
    else Cluster.heal cluster;
    List.iter
      (fun root ->
        let (_ : Workload.stats) =
          Workload.run root { cfg with seed = Random.State.int rng 100000 } ~ops:20
        in
        ())
      roots;
    let (_ : int * Reconcile.stats) = Cluster.tick_daemons cluster 25 in
    ()
  done;
  Cluster.heal cluster;
  let (_ : int) = Cluster.run_propagation cluster in
  (match Cluster.converge cluster vref ~max_rounds:50 () with Ok _ | Error _ -> ());
  Cluster.health_sample_now cluster;
  let profile = Cluster.profile cluster in
  Table.print ~title:"per-daemon tick profile (top talkers first)"
    ~headers:[ "daemon"; "phase ticks"; "activations"; "work"; "self us" ]
    (List.map
       (fun r ->
         [
           r.Health.Profile.pr_daemon;
           string_of_int r.Health.Profile.pr_ticks;
           string_of_int r.Health.Profile.pr_activations;
           string_of_int r.Health.Profile.pr_work;
           string_of_int r.Health.Profile.pr_us;
         ])
       (Health.Profile.rows profile));
  let snap = (Cluster.metrics_snapshot cluster).Cluster.ms_metrics in
  let health_gauges =
    List.filter (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "health.")
      snap.Metrics.snap_gauges
  in
  if health_gauges <> [] then
    Table.print ~title:"health gauges (final sample)"
      ~headers:[ "gauge"; "value" ]
      (List.map (fun (k, v) -> [ k; string_of_int v ]) health_gauges);
  (* Unresolved conflicts keep replicas mutually undominated, so a
     nonzero final divergence age with conflicts pending is the gauge
     being honest, not the cluster failing to converge. *)
  let conflicts =
    List.fold_left
      (fun acc i ->
        match Cluster.replica (Cluster.host cluster i) vref with
        | Some phys -> acc + List.length (Conflict_log.pending (Physical.conflicts phys))
        | None -> acc)
      0 all_hosts
  in
  Printf.printf "\n%d unresolved conflict(s) pending\n" conflicts;
  let events = Cluster.health_events cluster in
  Printf.printf "%d health event(s)\n" (List.length events);
  List.iter (fun e -> Printf.printf "  %s\n" (Fmt.str "%a" Health.pp_event e)) events;
  0

let top_cmd =
  let hosts = Arg.(value & opt int 3 & info [ "hosts" ] ~docv:"N" ~doc:"Host count") in
  let epochs = Arg.(value & opt int 12 & info [ "epochs" ] ~docv:"E" ~doc:"Workload epochs") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed") in
  Cmd.v
    (Cmd.info "top" ~doc:"Profile daemon self-time and show health-plane gauges and events")
    Term.(const top $ hosts $ epochs $ seed)

(* ------------------------------------------------------------------ *)

(* `ficusctl conflicts` / `ficusctl resolve`: the owner-facing side of
   the CRDT directory-merge subsystem.  Both commands drive the same
   deterministic scenario — a 2-host `Crdt-mode cluster in Owner_report
   mode, partitioned so both sides edit one file and cross-rename two
   directories into each other — so `conflicts` shows what the repair
   left for the owner, and `resolve <fid> <winner>` picks a winner for
   one register and reconverges the cluster. *)

let conflict_scenario () =
  let cluster =
    Cluster.create ~nhosts:2 ~dir_merge:`Crdt ~resolver:Resolver.Owner_report ()
  in
  let vref = get (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = get (Cluster.logical_root cluster 0 vref) in
  ignore (get (root0.Vnode.mkdir "a"));
  ignore (get (root0.Vnode.mkdir "b"));
  let f = get (root0.Vnode.create "report.txt") in
  get (Vnode.write_all f "base revision");
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = get (Cluster.converge cluster vref ()) in
  let root1 = get (Cluster.logical_root cluster 1 vref) in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  get (Vnode.write_all (get (root0.Vnode.lookup "report.txt")) "edited on host0, offline");
  get (Vnode.write_all (get (root1.Vnode.lookup "report.txt")) "edited on host1, offline");
  get (root0.Vnode.rename "a" (get (root0.Vnode.lookup "b")) "x");
  get (root1.Vnode.rename "b" (get (root1.Vnode.lookup "a")) "y");
  Cluster.heal cluster;
  (match Cluster.converge cluster vref ~max_rounds:60 () with Ok _ | Error _ -> ());
  (cluster, vref)

let preview s =
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s <= 24 then s else String.sub s 0 21 ^ "..."

let print_conflicts cluster vref =
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let pending = Crdt_merge.pending_registers phys0 in
  let rows =
    List.concat_map
      (fun p ->
        List.mapi
          (fun i (v : Mv_register.version) ->
            [
              Ids.fid_to_hex p.Crdt_merge.p_fid;
              string_of_int p.Crdt_merge.p_span;
              (if i = 0 then "winner" else Printf.sprintf "rival %d" i);
              Fmt.str "%a" Version_vector.pp v.Mv_register.mv_vv;
              preview v.Mv_register.mv_data;
            ])
          (Mv_register.versions p.Crdt_merge.p_register))
      pending
  in
  if rows = [] then Printf.printf "no pending file conflicts\n"
  else
    Table.print
      ~title:"pending file conflicts on host0 (multi-value registers, LWW order)"
      ~headers:[ "fid"; "span"; "rank"; "version vector"; "contents" ]
      rows;
  (* The conflict orphanage: subtrees the tree repair re-parented after
     losing every live path. *)
  (match Physical.fetch_dir phys0 [] with
   | Error _ -> ()
   | Ok root_fdir ->
     (match Fdir.find_live root_fdir Physical.lost_found_name with
      | None -> Printf.printf "lost+found is empty\n"
      | Some lf ->
        (match Physical.fetch_dir phys0 [ lf.Fdir.fid ] with
         | Error _ -> ()
         | Ok lf_fdir ->
           Table.print ~title:"lost+found (re-parented by the CRDT tree repair)"
             ~headers:[ "name"; "fid"; "kind" ]
             (List.map
                (fun (name, (e : Fdir.entry)) ->
                  [
                    name;
                    Ids.fid_to_hex e.Fdir.fid;
                    (match e.Fdir.kind with
                     | Aux_attrs.Freg -> "file"
                     | Aux_attrs.Fdir -> "dir"
                     | Aux_attrs.Fgraft -> "graft");
                  ])
                (Fdir.live lf_fdir)))));
  pending

let conflicts () =
  let cluster, vref = conflict_scenario () in
  let pending = print_conflicts cluster vref in
  if pending <> [] then
    Printf.printf
      "\nresolve one with: ficusctl resolve <fid> <local|remote|merged>\n";
  0

let conflicts_cmd =
  Cmd.v
    (Cmd.info "conflicts"
       ~doc:"List pending file-conflict registers and the lost+found orphanage")
    Term.(const conflicts $ const ())

let resolve fid_hex winner =
  let keep =
    match String.lowercase_ascii winner with
    | "local" -> `Local
    | "remote" -> `Remote
    | "merged" -> `Merged "merged by the owner: both offline edits kept"
    | w ->
      Printf.eprintf "unknown winner %S (expected local, remote or merged)\n" w;
      exit 2
  in
  let cluster, vref = conflict_scenario () in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let matching =
    List.filter
      (fun (e : Conflict_log.entry) -> Ids.fid_to_hex e.Conflict_log.fid = fid_hex)
      (Conflict_log.pending (Physical.conflicts phys0))
  in
  match matching with
  | [] ->
    Printf.eprintf "no pending conflict for fid %s on host0; run `ficusctl conflicts`\n"
      fid_hex;
    let (_ : Crdt_merge.pending list) = print_conflicts cluster vref in
    1
  | entry :: _ ->
    get (Reconcile.resolve_file_conflict ~local:phys0 entry ~keep);
    let (_ : int) = Cluster.run_propagation cluster in
    (match Cluster.converge cluster vref ~max_rounds:40 () with Ok _ | Error _ -> ());
    let remaining i =
      let p = Option.get (Cluster.replica (Cluster.host cluster i) vref) in
      List.length (Crdt_merge.pending_registers p)
    in
    let digest i =
      get (Crdt_merge.digest (Option.get (Cluster.replica (Cluster.host cluster i) vref)))
    in
    let contents i =
      let root = get (Cluster.logical_root cluster i vref) in
      get (Vnode.read_all (get (root.Vnode.lookup "report.txt")))
    in
    Table.print ~title:(Printf.sprintf "resolved %s keeping %s" fid_hex winner)
      ~headers:[ "check"; "host0"; "host1" ]
      [
        [ "contents"; preview (contents 0); preview (contents 1) ];
        [ "pending registers"; string_of_int (remaining 0); string_of_int (remaining 1) ];
        [ "tree digests equal"; string_of_bool (digest 0 = digest 1); "" ];
      ];
    if remaining 0 = 0 && remaining 1 = 0 && digest 0 = digest 1 then 0 else 1

let resolve_cmd =
  let fid = Arg.(required & pos 0 (some string) None & info [] ~docv:"FID") in
  let winner =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"WINNER")
  in
  Cmd.v
    (Cmd.info "resolve"
       ~doc:"Resolve a pending file conflict by fid, keeping local, remote or merged")
    Term.(const resolve $ fid $ winner)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "drive the Ficus replicated file system simulation" in
  let info = Cmd.info "ficusctl" ~version:"1.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            demo_cmd; experiment_cmd; availability_cmd; simulate_cmd; stats_cmd; trace_cmd;
            top_cmd; conflicts_cmd; resolve_cmd;
          ]))
