(* The paper's §1 forecast, realized: "we expect to use it for
   performance monitoring, user authentication and encryption".  This
   example assembles a five-deep stack --

       syscalls -> access control -> monitoring -> Ficus logical
                -> (replication) -> Ficus physical -> encryption -> UFS

   -- where no layer knows its neighbours, and the replicated volume's
   bytes are encrypted at rest on the host that stores them.

   Run with:  dune exec examples/layered_stack.exe *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("layered_stack failed: " ^ Errno.to_string e)

let () =
  (* Build a host by hand so we can slip the encryption layer between
     the physical layer and the UFS. *)
  let clock = Clock.create () in
  let disk = Disk.create ~nblocks:4096 ~block_size:1024 () in
  let ufs = get (Ufs.mkfs ~now:(Clock.fn clock) disk) in
  let plain_container = Ufs_vnode.root ufs in
  let container = Crypt_layer.wrap ~key:"at-rest-key" plain_container in
  let vref = { Ids.alloc = 0; vol = 1 } in
  let phys =
    get (Physical.create ~container ~clock ~host:"h0" ~vref ~rid:1 ~peers:[ (1, "h0") ] ())
  in

  (* Logical layer over the (single-replica) volume. *)
  let connect ~host:_ ~vref:_ ~rid:_ = Ok (Physical.root phys) in
  let logical = Logical.create ~host:"h0" ~clock ~connect () in
  Logical.graft_volume logical vref ~replicas:[ (1, "h0") ];
  let lroot = get (Logical.root logical vref) in

  (* Monitoring, then an access-control credential, then syscalls. *)
  let metrics = Metrics.create () in
  let monitored = Measure_layer.wrap ~clock ~metrics lroot in

  (* The administrator prepares alice's home directory... *)
  let su = Syscall.create ~root:(Access_layer.wrap ~uid:0 monitored) in
  get (Syscall.mkdir su "inbox");
  let inbox = get (Namei.walk ~root:lroot "inbox") in
  get
    (inbox.Vnode.setattr
       { Vnode.setattr_none with Vnode.set_uid = Some 1; set_mode = Some 0o755 });

  (* ...and alice works in it through her own credential. *)
  let as_alice = Access_layer.wrap ~uid:1 monitored in
  let sys = Syscall.create ~root:as_alice in
  get (Syscall.write_file sys "inbox/mail1" "Dear Alice, the layers are stacked.");
  let fd = get (Syscall.openf sys "inbox/mail1" Syscall.O_rdonly) in
  Printf.printf "alice reads: %S\n" (get (Syscall.read sys fd 64));
  get (Syscall.close sys fd);

  (* The monitoring layer saw everything... *)
  print_endline "per-operation counts observed by the monitoring layer:";
  List.iter
    (fun (op, calls, errors) -> Printf.printf "  %-8s calls=%-3d errors=%d\n" op calls errors)
    (Measure_layer.report metrics);

  (* ...and the bytes on the UFS are ciphertext. *)
  let hexroot = get (plain_container.Vnode.lookup (Ids.fid_to_hex Ids.root_fid)) in
  let raw_dir = get (Vnode.read_all (get (hexroot.Vnode.lookup "DIR"))) in
  Printf.printf "volume root DIR file decodes without the key: %b\n"
    (Fdir.decode raw_dir <> None);

  (* The access layer actually guards: bob cannot read alice's mail
     once she locks it down. *)
  let mail = get (Namei.walk ~root:lroot "inbox/mail1") in
  get
    (mail.Vnode.setattr
       { Vnode.setattr_none with Vnode.set_uid = Some 1; set_mode = Some 0o600 });
  let as_bob = Access_layer.wrap ~uid:2 monitored in
  let bob = Syscall.create ~root:as_bob in
  (match Syscall.read_file bob "inbox/mail1" with
   | Error Errno.EACCES -> print_endline "bob is denied: EACCES"
   | Ok _ -> failwith "bob should have been denied"
   | Error e -> failwith ("unexpected: " ^ Errno.to_string e));
  print_endline "layered_stack OK"
