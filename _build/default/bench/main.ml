(* The benchmark harness: regenerates every reproduced table/figure of
   the paper's evaluation (experiments E1-E10 and F2; see DESIGN.md and
   EXPERIMENTS.md), then runs bechamel microbenchmarks for the two
   timing-sensitive claims (layer crossing, shadow commit).

   Usage:
     bench/main.exe            run everything
     bench/main.exe e4 e6      run selected experiments
     bench/main.exe micro      run only the microbenchmarks *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("bench setup failed: " ^ Errno.to_string e)

(* E1 microbench: getattr through 0/2/4/8 null layers. *)
let micro_layer_tests () =
  let disk = Disk.create ~nblocks:2048 ~block_size:1024 () in
  let t = ref 0 in
  let fs = get (Ufs.mkfs ~now:(fun () -> incr t; !t) disk) in
  let base = Ufs_vnode.root fs in
  List.map
    (fun depth ->
      let v = Null_layer.wrap_depth depth base in
      Test.make
        ~name:(Printf.sprintf "getattr/depth=%d" depth)
        (Staged.stage (fun () -> ignore (v.Vnode.getattr ()))))
    [ 0; 2; 4; 8 ]

(* E8 microbench: shadow-commit a whole file of each size. *)
let micro_shadow_tests () =
  List.map
    (fun size ->
      let disk = Disk.create ~nblocks:16384 ~block_size:1024 () in
      let t = ref 0 in
      let fs = get (Ufs.mkfs ~now:(fun () -> incr t; !t) disk) in
      let root = Ufs_vnode.root fs in
      let fid = { Ids.issuer = 1; uniq = 1 } in
      let data = String.make size 'x' in
      Test.make
        ~name:(Printf.sprintf "shadow-install/%dKiB" (size / 1024))
        (Staged.stage (fun () -> get (Shadow.install ~dir:root fid ~data))))
    [ 1024; 8192; 65536 ]

let run_micro () =
  let tests = micro_layer_tests () @ micro_shadow_tests () in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "\nMicrobenchmarks (bechamel, monotonic clock)\n";
  Printf.printf "  %-28s %14s\n" "benchmark" "ns/op";
  Printf.printf "  %s\n" (String.make 44 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | Some [] | None -> nan
          in
          Printf.printf "  %-28s %14.1f\n" name ns)
        analyzed)
    tests;
  Printf.printf "  %s\n%!" (String.make 44 '-')

(* ------------------------------------------------------------------ *)

let print_summary verdicts =
  Printf.printf "\n";
  Printf.printf "Reproduction summary (paper claim vs. measured)\n";
  Printf.printf "  %s\n" (String.make 76 '=');
  List.iter
    (fun v ->
      Printf.printf "  %-4s %-9s %s\n" v.Experiments.experiment
        (if v.Experiments.holds then "HOLDS" else "FAILS")
        v.Experiments.claim;
      Printf.printf "       measured: %s\n" v.Experiments.detail)
    verdicts;
  let failed = List.filter (fun v -> not v.Experiments.holds) verdicts in
  Printf.printf "  %s\n" (String.make 76 '=');
  Printf.printf "  %d/%d claims reproduced\n%!"
    (List.length verdicts - List.length failed)
    (List.length verdicts)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    let verdicts = Experiments.all () in
    run_micro ();
    print_summary verdicts;
    if List.exists (fun v -> not v.Experiments.holds) verdicts then exit 1
  | [ "micro" ] -> run_micro ()
  | names ->
    let verdicts =
      List.filter_map
        (fun name ->
          if name = "micro" then begin
            run_micro ();
            None
          end
          else
            match Experiments.run_by_name name with
            | Some v -> Some v
            | None ->
              Printf.eprintf "unknown experiment %S (known: %s)\n" name
                (String.concat ", " Experiments.names);
              exit 2)
        names
    in
    print_summary verdicts;
    if List.exists (fun v -> not v.Experiments.holds) verdicts then exit 1
