(** Deterministic synthetic workloads.

    The paper leans on two empirical observations about general-purpose
    Unix file usage (Floyd 1986): strong reference {e locality} (which
    the namespace-parallel on-disk layout exploits) and {e bursty}
    updates (which delayed propagation exploits).  This generator
    reproduces both knobs: a Zipf-skewed file popularity distribution
    and a configurable updates-per-burst count. *)

type config = {
  seed : int;
  ndirs : int;             (** directories under the root *)
  files_per_dir : int;
  payload : int;           (** bytes written per update *)
  write_fraction : float;  (** probability an operation is an update *)
  zipf_s : float;          (** skew of file selection; 0 = uniform *)
  burst : int;             (** consecutive updates applied to a chosen file *)
}

val default : config

type stats = { reads : int; writes : int; errors : int }

val setup : Vnode.t -> config -> (unit, Errno.t) result
(** Create the directory tree and empty files under the given (logical)
    root. *)

val run : Vnode.t -> config -> ops:int -> stats
(** Execute [ops] operations against the tree; individual failures are
    counted, not raised. *)

val file_path : config -> int -> string
(** Path of the i-th file (for assertions). *)

val nfiles : config -> int
