type config = {
  seed : int;
  ndirs : int;
  files_per_dir : int;
  payload : int;
  write_fraction : float;
  zipf_s : float;
  burst : int;
}

let default =
  {
    seed = 5;
    ndirs = 4;
    files_per_dir = 8;
    payload = 256;
    write_fraction = 0.2;
    zipf_s = 1.0;
    burst = 1;
  }

type stats = { reads : int; writes : int; errors : int }

let nfiles cfg = cfg.ndirs * cfg.files_per_dir

let file_path cfg i =
  Printf.sprintf "d%d/f%d" (i / cfg.files_per_dir) (i mod cfg.files_per_dir)

let ( let* ) = Result.bind

let setup root cfg =
  let rec make_dirs d =
    if d >= cfg.ndirs then Ok ()
    else
      let* dir = root.Vnode.mkdir (Printf.sprintf "d%d" d) in
      let rec make_files f =
        if f >= cfg.files_per_dir then Ok ()
        else
          let* _file = dir.Vnode.create (Printf.sprintf "f%d" f) in
          make_files (f + 1)
      in
      let* () = make_files 0 in
      make_dirs (d + 1)
  in
  make_dirs 0

(* Zipf(s) over ranks 1..n by inverse-CDF on precomputed cumulative
   weights. *)
let zipf_sampler ~n ~s rng =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let cumulative = Array.make n 0.0 in
  let total =
    Array.fold_left
      (fun (acc, i) w ->
        cumulative.(i) <- acc +. w;
        (acc +. w, i + 1))
      (0.0, 0) weights
    |> fst
  in
  fun () ->
    let x = Random.State.float rng total in
    let rec find lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < x then find (mid + 1) hi else find lo mid
    in
    find 0 (n - 1)

let run root cfg ~ops =
  let rng = Random.State.make [| cfg.seed |] in
  let pick = zipf_sampler ~n:(nfiles cfg) ~s:cfg.zipf_s rng in
  let payload i = String.make cfg.payload (Char.chr (Char.code 'a' + (i mod 26))) in
  let stats = ref { reads = 0; writes = 0; errors = 0 } in
  let record outcome kind =
    let s = !stats in
    stats :=
      (match outcome, kind with
       | Ok _, `Read -> { s with reads = s.reads + 1 }
       | Ok _, `Write -> { s with writes = s.writes + 1 }
       | Error _, _ -> { s with errors = s.errors + 1 })
  in
  let op_on i kind =
    match Namei.walk ~root (file_path cfg i) with
    | Error _ as e -> record e kind
    | Ok file ->
      (match kind with
       | `Read -> record (file.Vnode.read ~off:0 ~len:cfg.payload) `Read
       | `Write -> record (file.Vnode.write ~off:0 (payload i)) `Write)
  in
  let remaining = ref ops in
  while !remaining > 0 do
    let i = pick () in
    if Random.State.float rng 1.0 < cfg.write_fraction then begin
      (* A burst of updates to the same file. *)
      let burst = min cfg.burst !remaining in
      for _ = 1 to burst do
        op_on i `Write
      done;
      remaining := !remaining - burst
    end
    else begin
      op_on i `Read;
      decr remaining
    end
  done;
  !stats
