let print ?(out = Format.std_formatter) ~title ~headers rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width col =
    List.fold_left
      (fun acc row -> match List.nth_opt row col with
         | Some cell -> max acc (String.length cell)
         | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let render row =
    List.mapi (fun i w -> pad (Option.value ~default:"" (List.nth_opt row i)) w) widths
    |> String.concat "  "
    |> String.trim
    |> fun line -> Format.fprintf out "  %s@." line
  in
  let total = List.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Format.fprintf out "@.%s@." title;
  Format.fprintf out "  %s@." (String.make total '-');
  render headers;
  Format.fprintf out "  %s@." (String.make total '-');
  List.iter render rows;
  Format.fprintf out "  %s@." (String.make total '-')

let fmt_f x = Printf.sprintf "%.4f" x

let fmt_pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
