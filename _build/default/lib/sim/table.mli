(** Plain-text table rendering for experiment output (the benchmark
    harness prints one table per reproduced claim). *)

val print :
  ?out:Format.formatter -> title:string -> headers:string list -> string list list -> unit
(** Render with aligned columns, a title line and a rule. *)

val fmt_f : float -> string
(** Fixed 4-decimal float. *)

val fmt_pct : float -> string
(** A [0,1] fraction as a percentage with 2 decimals. *)
