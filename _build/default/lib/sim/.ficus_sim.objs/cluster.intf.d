lib/sim/cluster.mli: Clock Disk Errno Ids Logical Nfs_server Physical Propagation Recon_daemon Reconcile Remote Sim_net Ufs Vnode
