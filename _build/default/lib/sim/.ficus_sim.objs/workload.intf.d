lib/sim/workload.mli: Errno Vnode
