lib/sim/table.ml: Format List Option Printf String
