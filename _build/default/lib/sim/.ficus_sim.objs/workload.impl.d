lib/sim/workload.ml: Array Char Namei Printf Random Result String Vnode
