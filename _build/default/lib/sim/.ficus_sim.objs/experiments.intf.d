lib/sim/experiments.mli:
