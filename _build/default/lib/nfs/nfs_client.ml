open Nfs_proto

type m = {
  net : Sim_net.t;
  client : Sim_net.host_id;
  server : Sim_net.host_id;
  export : string;
  attr_ttl : int;
  name_ttl : int;
  data_ttl : int;
  attr_cache : (fh, Vnode.attrs * int) Hashtbl.t;          (* fh -> attrs, expiry *)
  name_cache : (fh * string, fh * int) Hashtbl.t;          (* dir fh, name -> fh, expiry *)
  data_cache : (fh * int * int, string * int) Hashtbl.t;   (* fh, off, len -> data, expiry *)
  counters : Counters.t;
  mutable root_fh : fh;
}

type Vnode.vdata += Nfs_vnode of m * fh

let now m = Clock.now (Sim_net.clock m.net)

let rpc m req =
  Counters.incr m.counters "nfs.client.calls";
  match Sim_net.call m.net ~src:m.client ~dst:m.server (Nfs_request req) with
  | Error _ as e -> e
  | Ok (Nfs_response resp) -> Ok resp
  | Ok _ -> Error Errno.EINVAL

let ( let* ) = Result.bind

let expect_ok m req =
  let* resp = rpc m req in
  match resp with R_ok -> Ok () | R_error e -> Error e | _ -> Error Errno.EINVAL

(* Drop any cached state about [fh]; on ESTALE or update. *)
let forget_attrs m fh = Hashtbl.remove m.attr_cache fh

let forget_data m fh =
  let stale =
    Hashtbl.fold
      (fun ((fh', _, _) as key) _ acc -> if fh' = fh then key :: acc else acc)
      m.data_cache []
  in
  List.iter (Hashtbl.remove m.data_cache) stale

let cache_data m fh ~off ~len data =
  if m.data_ttl > 0 then
    Hashtbl.replace m.data_cache (fh, off, len) (data, now m + m.data_ttl)

let cached_data m fh ~off ~len =
  match Hashtbl.find_opt m.data_cache (fh, off, len) with
  | Some (data, expiry) when now m < expiry ->
    Counters.incr m.counters "nfs.client.data_hits";
    Some data
  | Some _ ->
    Hashtbl.remove m.data_cache (fh, off, len);
    None
  | None -> None

let cache_attrs m fh attrs =
  if m.attr_ttl > 0 then Hashtbl.replace m.attr_cache fh (attrs, now m + m.attr_ttl)

let cache_name m dir name fh =
  if m.name_ttl > 0 then Hashtbl.replace m.name_cache (dir, name) (fh, now m + m.name_ttl)

let cached_attrs m fh =
  match Hashtbl.find_opt m.attr_cache fh with
  | Some (attrs, expiry) when now m < expiry ->
    Counters.incr m.counters "nfs.client.attr_hits";
    Some attrs
  | Some _ ->
    Hashtbl.remove m.attr_cache fh;
    None
  | None -> None

let cached_name m dir name =
  match Hashtbl.find_opt m.name_cache (dir, name) with
  | Some (fh, expiry) when now m < expiry ->
    Counters.incr m.counters "nfs.client.name_hits";
    Some fh
  | Some _ ->
    Hashtbl.remove m.name_cache (dir, name);
    None
  | None -> None

let rec make m fh : Vnode.t =
  let sibling (v : Vnode.t) =
    match v.Vnode.data with
    | Nfs_vnode (m', fh') when m' == m -> Ok fh'
    | _ -> Error Errno.EXDEV
  in
  let node_result = function
    | R_node (child_fh, attrs) ->
      cache_attrs m child_fh attrs;
      Ok (child_fh, attrs)
    | R_error e -> Error e
    | _ -> Error Errno.EINVAL
  in
  {
    (Vnode.not_supported (Nfs_vnode (m, fh))) with
    getattr =
      (fun () ->
        match cached_attrs m fh with
        | Some attrs -> Ok attrs
        | None ->
          let* resp = rpc m (Getattr fh) in
          (match resp with
           | R_attrs attrs ->
             cache_attrs m fh attrs;
             Ok attrs
           | R_error e ->
             forget_attrs m fh;
             Error e
           | _ -> Error Errno.EINVAL));
    setattr =
      (fun sa ->
        forget_attrs m fh;
        expect_ok m (Setattr (fh, sa)));
    lookup =
      (fun name ->
        match cached_name m fh name with
        | Some child_fh -> Ok (make m child_fh)
        | None ->
          let* resp = rpc m (Lookup (fh, name)) in
          let* child_fh, _attrs = node_result resp in
          cache_name m fh name child_fh;
          Ok (make m child_fh));
    create =
      (fun name ->
        forget_attrs m fh;
        let* resp = rpc m (Create (fh, name)) in
        let* child_fh, _ = node_result resp in
        cache_name m fh name child_fh;
        Ok (make m child_fh));
    mkdir =
      (fun name ->
        forget_attrs m fh;
        let* resp = rpc m (Mkdir (fh, name)) in
        let* child_fh, _ = node_result resp in
        cache_name m fh name child_fh;
        Ok (make m child_fh));
    remove =
      (fun name ->
        forget_attrs m fh;
        Hashtbl.remove m.name_cache (fh, name);
        expect_ok m (Remove (fh, name)));
    rmdir =
      (fun name ->
        forget_attrs m fh;
        Hashtbl.remove m.name_cache (fh, name);
        expect_ok m (Rmdir (fh, name)));
    rename =
      (fun sname dst_dir dname ->
        let* dfh = sibling dst_dir in
        Hashtbl.remove m.name_cache (fh, sname);
        Hashtbl.remove m.name_cache (dfh, dname);
        forget_attrs m fh;
        forget_attrs m dfh;
        expect_ok m (Rename (fh, sname, dfh, dname)));
    link =
      (fun target name ->
        let* tfh = sibling target in
        forget_attrs m fh;
        forget_attrs m tfh;
        expect_ok m (Link (fh, tfh, name)));
    readdir =
      (fun () ->
        let* resp = rpc m (Readdir fh) in
        match resp with
        | R_dirents entries -> Ok entries
        | R_error e -> Error e
        | _ -> Error Errno.EINVAL);
    read =
      (fun ~off ~len ->
        match cached_data m fh ~off ~len with
        | Some data -> Ok data
        | None ->
          let* resp = rpc m (Read (fh, off, len)) in
          (match resp with
           | R_data data ->
             cache_data m fh ~off ~len data;
             Ok data
           | R_error e -> Error e
           | _ -> Error Errno.EINVAL));
    write =
      (fun ~off data ->
        forget_attrs m fh;
        forget_data m fh;
        expect_ok m (Write (fh, off, data)));
    (* The stateless protocol has no open or close: both succeed locally
       and nothing reaches the server (paper §2.2). *)
    openv =
      (fun _ ->
        Counters.incr m.counters "nfs.client.openclose_dropped";
        Ok ());
    closev =
      (fun () ->
        Counters.incr m.counters "nfs.client.openclose_dropped";
        Ok ());
    fsync = (fun () -> Ok ());
    inactive = (fun () -> Ok ());
  }

let mount ?(attr_ttl = 30) ?(name_ttl = 30) ?(data_ttl = 0) net ~client ~server ~export =
  let m =
    {
      net;
      client;
      server;
      export;
      attr_ttl;
      name_ttl;
      data_ttl;
      attr_cache = Hashtbl.create 64;
      name_cache = Hashtbl.create 64;
      data_cache = Hashtbl.create 64;
      counters = Counters.create ();
      root_fh = "";
    }
  in
  let* resp = rpc m (Root export) in
  match resp with
  | R_node (fh, attrs) ->
    m.root_fh <- fh;
    cache_attrs m fh attrs;
    Ok m
  | R_error e -> Error e
  | _ -> Error Errno.EINVAL

let root m = make m m.root_fh

let flush_caches m =
  Hashtbl.reset m.attr_cache;
  Hashtbl.reset m.name_cache;
  Hashtbl.reset m.data_cache

let counters m = m.counters
