lib/nfs/nfs_proto.ml: Errno Fmt Sim_net String Vnode
