lib/nfs/nfs_client.mli: Counters Errno Sim_net Vnode
