lib/nfs/nfs_server.ml: Errno Hashtbl Nfs_proto Printf Result Sim_net String Vnode
