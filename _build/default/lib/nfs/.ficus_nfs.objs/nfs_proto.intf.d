lib/nfs/nfs_proto.mli: Errno Format Sim_net Vnode
