lib/nfs/nfs_client.ml: Clock Counters Errno Hashtbl List Nfs_proto Result Sim_net Vnode
