lib/nfs/nfs_server.mli: Nfs_proto Sim_net Vnode
