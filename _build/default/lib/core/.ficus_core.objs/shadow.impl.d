lib/core/shadow.ml: Errno Ids Result Vnode
