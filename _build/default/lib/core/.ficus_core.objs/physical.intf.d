lib/core/physical.mli: Aux_attrs Clock Conflict_log Counters Errno Fdir Ids Notify Version_vector Vnode
