lib/core/aux_attrs.mli: Errno Ids Version_vector Vnode
