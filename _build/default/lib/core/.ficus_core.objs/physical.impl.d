lib/core/physical.ml: Aux_attrs Clock Conflict_log Counters Ctl_name Errno Fdir Fun Ids List Logs Namei Notify Option Printf Result Shadow String Version_vector Vnode
