lib/core/remote.ml: Aux_attrs Ctl_name Errno Fdir Fun Ids List Option Physical Printf Result String Version_vector Vnode
