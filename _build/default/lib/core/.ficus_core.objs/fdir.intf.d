lib/core/fdir.mli: Aux_attrs Errno Format Ids Version_vector
