lib/core/propagation.ml: Aux_attrs Clock Counters Errno Fdir Ids List Logs New_version_cache Notify Physical Remote Result String
