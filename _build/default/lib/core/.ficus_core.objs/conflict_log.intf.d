lib/core/conflict_log.mli: Fdir Format Ids Version_vector
