lib/core/propagation.mli: Clock Counters Ids New_version_cache Notify Physical Remote
