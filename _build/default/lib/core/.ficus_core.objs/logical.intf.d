lib/core/logical.mli: Clock Counters Errno Ids Remote Vnode
