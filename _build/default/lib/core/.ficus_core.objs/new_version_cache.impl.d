lib/core/new_version_cache.ml: Aux_attrs Hashtbl Ids Int List Notify
