lib/core/shadow.mli: Errno Ids Vnode
