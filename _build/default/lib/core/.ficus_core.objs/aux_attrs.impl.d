lib/core/aux_attrs.ml: Errno Ids List Printf Result String Version_vector Vnode
