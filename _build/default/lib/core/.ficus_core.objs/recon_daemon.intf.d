lib/core/recon_daemon.mli: Clock Counters Ids Physical Reconcile Remote
