lib/core/remote.mli: Aux_attrs Errno Fdir Ids Physical Vnode
