lib/core/conflict_log.ml: Fdir Fmt Ids List Version_vector
