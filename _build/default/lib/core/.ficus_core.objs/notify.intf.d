lib/core/notify.mli: Aux_attrs Format Ids Sim_net
