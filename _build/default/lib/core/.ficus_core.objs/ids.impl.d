lib/core/ids.ml: Fmt Int List Printf String
