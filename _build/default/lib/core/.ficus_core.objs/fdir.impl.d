lib/core/fdir.ml: Aux_attrs Buffer Char Ctl_name Errno Fmt Hashtbl Ids Int List Option Printf String Version_vector
