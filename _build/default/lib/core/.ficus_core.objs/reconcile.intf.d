lib/core/reconcile.mli: Conflict_log Errno Format Ids Physical Vnode
