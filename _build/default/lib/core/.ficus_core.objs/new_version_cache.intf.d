lib/core/new_version_cache.mli: Aux_attrs Ids Notify
