lib/core/logical.ml: Aux_attrs Clock Counters Errno Hashtbl Ids Int List Physical Remote Result Version_vector Vnode
