lib/core/syscall.ml: Errno Hashtbl List Namei Result String Vnode
