lib/core/recon_daemon.ml: Clock Counters Hashtbl Ids List Option Physical Reconcile Remote
