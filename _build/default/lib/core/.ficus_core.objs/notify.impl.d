lib/core/notify.ml: Aux_attrs Fmt Ids Sim_net
