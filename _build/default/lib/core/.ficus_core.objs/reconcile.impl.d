lib/core/reconcile.ml: Aux_attrs Conflict_log Errno Fdir Fmt Hashtbl Ids List Physical Remote Result Version_vector
