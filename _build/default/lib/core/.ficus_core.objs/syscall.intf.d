lib/core/syscall.mli: Errno Vnode
