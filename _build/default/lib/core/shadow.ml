let shadow_name fid = Ids.fid_to_hex fid ^ ".shadow"

let ( let* ) = Result.bind

let install ~dir fid ~data =
  let shadow = shadow_name fid in
  let target = Ids.fid_to_hex fid in
  let* shadow_vnode =
    match dir.Vnode.lookup shadow with
    | Ok v -> Ok v (* leftover from an interrupted install: reuse *)
    | Error Errno.ENOENT -> dir.Vnode.create shadow
    | Error _ as e -> e
  in
  let* () = Vnode.write_all shadow_vnode data in
  (* Commit point: one low-level directory-reference change. *)
  dir.Vnode.rename shadow dir target

let recover ~dir fid =
  match dir.Vnode.remove (shadow_name fid) with Ok () | Error _ -> ()
