(** The Ficus file-system reconciliation protocol (paper §3.3).

    "This protocol is executed periodically to traverse an entire
    subgraph (not just a single node), and reconcile the local replica
    against a remote replica."  It is the correctness backstop: update
    notification and propagation are mere optimizations and may all be
    lost; pairwise reconciliation alone must drive all replicas of a
    volume to convergence.

    The walk is one-way pull (local adopts remote state, never the
    reverse); running it in both directions — or around any gossip
    topology that connects all replicas — converges everyone.  Per
    directory it calls {!Physical.merge_dir}; per regular file it
    compares version vectors and either adopts the dominating remote
    version (shadow commit) or reports a conflict. *)

type stats = {
  dirs_merged : int;
  files_pulled : int;
  files_conflicted : int;
  entries_materialized : int;
  entries_unmaterialized : int;
  tombstones_expired : int;
  name_collisions : int;
  errors : int;         (** subtrees skipped because the remote failed *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

val reconcile_dir :
  local:Physical.t -> remote_root:Vnode.t -> remote_rid:Ids.replica_id ->
  Physical.fidpath -> (stats, Errno.t) result
(** Reconcile a single directory (no recursion). *)

val reconcile_subtree :
  local:Physical.t -> remote_root:Vnode.t -> remote_rid:Ids.replica_id ->
  Physical.fidpath -> (stats, Errno.t) result
(** Reconcile the subtree rooted at [fidpath] (the whole volume when
    [[]]), depth-first.  Individual file or subdirectory failures are
    counted in [errors] and skipped; the error return is reserved for
    the root being unreachable. *)

val reconcile_volume :
  local:Physical.t -> remote_root:Vnode.t -> remote_rid:Ids.replica_id ->
  (stats, Errno.t) result
(** [reconcile_subtree] from the volume root. *)

val resolve_file_conflict :
  local:Physical.t -> Conflict_log.entry -> keep:[ `Local | `Remote | `Merged of string ] ->
  (unit, Errno.t) result
(** Owner-driven resolution of a reported file conflict: install the
    chosen contents under a version vector dominating both histories,
    clear the conflict flag, mark the log entry resolved, and notify so
    the resolution propagates like any other update. *)
