type allocator_id = int
type volume_id = int
type replica_id = int

type file_id = { issuer : replica_id; uniq : int }

type volume_ref = { alloc : allocator_id; vol : volume_id }

type replica_ref = { vref : volume_ref; rid : replica_id }

type handle = { volume : volume_ref; file : file_id; replica : replica_id }

let root_fid = { issuer = 0; uniq = 1 }

let fid_equal a b = a.issuer = b.issuer && a.uniq = b.uniq

let fid_compare a b =
  match Int.compare a.issuer b.issuer with 0 -> Int.compare a.uniq b.uniq | c -> c

let vref_equal a b = a.alloc = b.alloc && a.vol = b.vol

let fid_to_hex fid = Printf.sprintf "%08x.%08x" fid.issuer fid.uniq

let fid_of_hex s =
  if String.length s <> 17 || s.[8] <> '.' then None
  else
    let hex part = int_of_string_opt ("0x" ^ part) in
    match hex (String.sub s 0 8), hex (String.sub s 9 8) with
    | Some issuer, Some uniq -> Some { issuer; uniq }
    | _, _ -> None

let fid_to_at_name fid = "@" ^ fid_to_hex fid

let fid_of_at_name s =
  if String.length s = 18 && s.[0] = '@' then fid_of_hex (String.sub s 1 17) else None

let fidpath_to_string fids = String.concat "/" (List.map fid_to_hex fids)

let fidpath_of_string s =
  if s = "" then Some []
  else
    let rec parse acc = function
      | [] -> Some (List.rev acc)
      | part :: rest ->
        (match fid_of_hex part with
         | None -> None
         | Some fid -> parse (fid :: acc) rest)
    in
    parse [] (String.split_on_char '/' s)

let aux_name fid = fid_to_hex fid ^ ".aux"

let pp_fid ppf fid = Fmt.pf ppf "%s" (fid_to_hex fid)
let pp_vref ppf v = Fmt.pf ppf "vol<%d.%d>" v.alloc v.vol
let pp_handle ppf h =
  Fmt.pf ppf "<%d.%d.%s.%d>" h.volume.alloc h.volume.vol (fid_to_hex h.file) h.replica
