type fd = int

type open_mode = O_rdonly | O_wronly | O_rdwr

type descriptor = {
  vnode : Vnode.t;
  mode : open_mode;
  mutable offset : int;
}

type t = {
  root : Vnode.t;
  table : (fd, descriptor) Hashtbl.t;
  mutable next_fd : int;
}

let max_fds = 256

let create ~root = { root; table = Hashtbl.create 16; next_fd = 3 (* 0-2 reserved *) }

let ( let* ) = Result.bind

let flag_of_mode = function
  | O_rdonly -> Vnode.Read_only
  | O_wronly -> Vnode.Write_only
  | O_rdwr -> Vnode.Read_write

let openf t ?(create = false) ?(trunc = false) path mode =
  if Hashtbl.length t.table >= max_fds then Error Errno.ENFILE
  else
    let* vnode =
      match Namei.walk ~root:t.root path with
      | Ok v -> Ok v
      | Error Errno.ENOENT when create ->
        let* parent, name = Namei.walk_parent ~root:t.root path in
        parent.Vnode.create name
      | Error _ as e -> e
    in
    let* attrs = vnode.Vnode.getattr () in
    let* () =
      match attrs.Vnode.kind, mode with
      | (Vnode.VDIR | Vnode.VGRAFT), (O_wronly | O_rdwr) -> Error Errno.EISDIR
      | _, _ -> Ok ()
    in
    let* () = vnode.Vnode.openv (flag_of_mode mode) in
    let* () =
      if trunc && mode <> O_rdonly then
        vnode.Vnode.setattr { Vnode.setattr_none with set_size = Some 0 }
      else Ok ()
    in
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.replace t.table fd { vnode; mode; offset = 0 };
    Ok fd

let descriptor t fd =
  match Hashtbl.find_opt t.table fd with
  | Some d -> Ok d
  | None -> Error Errno.EINVAL

let close t fd =
  let* d = descriptor t fd in
  Hashtbl.remove t.table fd;
  d.vnode.Vnode.closev ()

let check_readable d =
  match d.mode with O_rdonly | O_rdwr -> Ok () | O_wronly -> Error Errno.EINVAL

let check_writable d =
  match d.mode with O_wronly | O_rdwr -> Ok () | O_rdonly -> Error Errno.EINVAL

let pread t fd ~off ~len =
  let* d = descriptor t fd in
  let* () = check_readable d in
  d.vnode.Vnode.read ~off ~len

let pwrite t fd ~off data =
  let* d = descriptor t fd in
  let* () = check_writable d in
  d.vnode.Vnode.write ~off data

let read t fd n =
  let* d = descriptor t fd in
  let* () = check_readable d in
  let* data = d.vnode.Vnode.read ~off:d.offset ~len:n in
  d.offset <- d.offset + String.length data;
  Ok data

let write t fd data =
  let* d = descriptor t fd in
  let* () = check_writable d in
  let* () = d.vnode.Vnode.write ~off:d.offset data in
  d.offset <- d.offset + String.length data;
  Ok ()

let lseek t fd pos =
  let* d = descriptor t fd in
  if pos < 0 then Error Errno.EINVAL
  else begin
    d.offset <- pos;
    Ok ()
  end

let fstat t fd =
  let* d = descriptor t fd in
  d.vnode.Vnode.getattr ()

let stat t path =
  let* v = Namei.walk ~root:t.root path in
  v.Vnode.getattr ()

let mkdir t path =
  let* parent, name = Namei.walk_parent ~root:t.root path in
  let* _ = parent.Vnode.mkdir name in
  Ok ()

let unlink t path =
  let* parent, name = Namei.walk_parent ~root:t.root path in
  parent.Vnode.remove name

let rmdir t path =
  let* parent, name = Namei.walk_parent ~root:t.root path in
  parent.Vnode.rmdir name

let rename t src dst =
  let* sparent, sname = Namei.walk_parent ~root:t.root src in
  let* dparent, dname = Namei.walk_parent ~root:t.root dst in
  sparent.Vnode.rename sname dparent dname

let link t existing new_path =
  let* target = Namei.walk ~root:t.root existing in
  let* parent, name = Namei.walk_parent ~root:t.root new_path in
  parent.Vnode.link target name

let readdir t path =
  let* v = Namei.walk ~root:t.root path in
  let* entries = v.Vnode.readdir () in
  Ok (List.map (fun e -> e.Vnode.entry_name) entries)

let truncate t path len =
  let* v = Namei.walk ~root:t.root path in
  v.Vnode.setattr { Vnode.setattr_none with set_size = Some len }

let read_file t path =
  let* v = Namei.walk ~root:t.root path in
  Vnode.read_all v

let write_file t path data =
  let* fd = openf t ~create:true ~trunc:true path O_wronly in
  let* () = write t fd data in
  close t fd

let open_fds t = Hashtbl.length t.table
