(** The system-call layer: a Unix-flavoured, path-and-descriptor API over
    any vnode stack.

    Paper Figure 1 puts "System Calls" at the top of the stack — "the
    Ficus logical layer presents its clients (normally the Unix system
    call family) with the abstraction that each file has only a single
    copy".  This module is that client: open/read/write/close with a
    file-descriptor table, plus the usual path calls.  It works over any
    root vnode — a bare UFS, a logical layer, an NFS mount — because the
    interface below is always the same.

    Descriptors carry their own offset ([read]/[write] advance it;
    [pread]/[pwrite] do not), and [openv]/[closev] are delivered to the
    stack so Ficus's whole-file concurrency control and open/close
    accounting engage. *)

type t
(** A "process": a root vnode plus a descriptor table. *)

type fd = int

val create : root:Vnode.t -> t

type open_mode = O_rdonly | O_wronly | O_rdwr

val openf : t -> ?create:bool -> ?trunc:bool -> string -> open_mode -> (fd, Errno.t) result
(** [EMFILE]-style table exhaustion is reported as [ENFILE]. *)

val close : t -> fd -> (unit, Errno.t) result
val read : t -> fd -> int -> (string, Errno.t) result
(** Read up to [n] bytes at the descriptor offset, advancing it. *)

val write : t -> fd -> string -> (unit, Errno.t) result
val pread : t -> fd -> off:int -> len:int -> (string, Errno.t) result
val pwrite : t -> fd -> off:int -> string -> (unit, Errno.t) result
val lseek : t -> fd -> int -> (unit, Errno.t) result
val fstat : t -> fd -> (Vnode.attrs, Errno.t) result

val stat : t -> string -> (Vnode.attrs, Errno.t) result
val mkdir : t -> string -> (unit, Errno.t) result
val unlink : t -> string -> (unit, Errno.t) result
val rmdir : t -> string -> (unit, Errno.t) result
val rename : t -> string -> string -> (unit, Errno.t) result
val link : t -> string -> string -> (unit, Errno.t) result
(** [link existing new_path]. *)

val readdir : t -> string -> (string list, Errno.t) result
val truncate : t -> string -> int -> (unit, Errno.t) result

val read_file : t -> string -> (string, Errno.t) result
(** Whole-file convenience read. *)

val write_file : t -> string -> string -> (unit, Errno.t) result
(** Create-or-truncate convenience write. *)

val open_fds : t -> int
