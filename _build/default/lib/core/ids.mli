(** Ficus identifiers (paper §4.2).

    A volume is named by ⟨allocator-id, volume-id⟩; a volume replica adds
    a replica-id.  Within a volume, a logical file is named by a file-id,
    which is itself ⟨issuing-replica-id, unique-id⟩ so replicas can issue
    ids independently; a file replica is a file-id plus the containing
    volume replica's replica-id.  The fully specified form
    ⟨allocator-id, volume-id, file-id, replica-id⟩ is unique across all
    Ficus hosts in existence. *)

type allocator_id = int
type volume_id = int

type replica_id = int
(** Volume-replica identifiers; these also index version vectors. *)

type file_id = { issuer : replica_id; uniq : int }
(** Unique within its volume: [issuer] stamped by the volume replica that
    created the file. *)

type volume_ref = { alloc : allocator_id; vol : volume_id }

type replica_ref = { vref : volume_ref; rid : replica_id }

type handle = { volume : volume_ref; file : file_id; replica : replica_id }
(** Fully specified file-replica identifier. *)

val root_fid : file_id
(** Every volume replica stores the volume root directory; by convention
    it is file ⟨0,1⟩. *)

val fid_equal : file_id -> file_id -> bool
val fid_compare : file_id -> file_id -> int
val vref_equal : volume_ref -> volume_ref -> bool

val fid_to_hex : file_id -> string
(** The dual mapping (paper §2.6): a file-id as the 17-character
    hexadecimal UFS name ["xxxxxxxx.xxxxxxxx"] under which the replica's
    storage lives. *)

val fid_of_hex : string -> file_id option

val fid_to_at_name : file_id -> string
(** ["@xxxxxxxx.xxxxxxxx"]: the reserved lookup-name form in which the
    logical layer passes a file handle to a physical layer through the
    unmodified vnode [lookup] operation. *)

val fid_of_at_name : string -> file_id option

val fidpath_to_string : file_id list -> string
val fidpath_of_string : string -> file_id list option
(** A path of file-ids from the volume root (excluding the root itself),
    used to locate a replica's storage through the namespace-parallel
    on-disk layout; slash-separated hex. *)

val aux_name : file_id -> string
(** Name of the auxiliary replication-attribute file: [hex ^ ".aux"]. *)

val pp_fid : Format.formatter -> file_id -> unit
val pp_vref : Format.formatter -> volume_ref -> unit
val pp_handle : Format.formatter -> handle -> unit
