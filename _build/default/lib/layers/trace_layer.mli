(** Trace capture and replay.

    The Ficus design leans on trace-driven studies of Unix file usage
    (Floyd 1986, cited in §1) for its locality assumptions.  This layer
    is the tool for making such studies against any vnode stack: wrap a
    stack, run a workload, and every operation is appended to a trace;
    the trace can then be {e replayed} against a different stack — e.g.
    captured over a bare UFS and replayed over the full Ficus stack to
    compare I/O behaviour on identical operation sequences.

    Vnodes are identified by small integers assigned at first sight
    (the wrapped root is 0); lookup/create/mkdir events record the
    parent id, the name and the id assigned to the result, which is
    what makes the trace self-contained and replayable. *)

type event =
  | Lookup of int * string * int      (** parent, name, result id *)
  | Create of int * string * int
  | Mkdir of int * string * int
  | Remove of int * string
  | Rmdir of int * string
  | Rename of int * string * int * string
  | Link of int * int * string        (** directory, target, new name *)
  | Getattr of int
  | Readdir of int
  | Read of int * int * int           (** vnode, offset, length *)
  | Write of int * int * int          (** vnode, offset, length; payload is
                                          synthesized deterministically on
                                          replay *)
  | Open of int
  | Close of int

type t
(** A trace being captured. *)

val create : unit -> t
val wrap : t -> Vnode.t -> Vnode.t
(** Start capturing below this point; the returned vnode is id 0. *)

val events : t -> event list
(** Captured events, in order.  Only successful operations are recorded
    (a failed lookup resolves no id and cannot be replayed). *)

val length : t -> int

type replay_stats = { applied : int; failed : int }

val replay : Vnode.t -> event list -> replay_stats
(** Re-apply a trace against a fresh stack.  Events whose ids cannot be
    resolved (because an earlier event failed on this stack) count as
    [failed]; replay always runs to the end. *)

val encode : event list -> string
val decode : string -> event list option
(** Line-oriented persistence, names percent-escaped. *)

val pp_event : Format.formatter -> event -> unit
