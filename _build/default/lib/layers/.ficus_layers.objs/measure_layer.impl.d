lib/layers/measure_layer.ml: Clock Counters List Result String Vnode
