lib/layers/measure_layer.mli: Clock Counters Vnode
