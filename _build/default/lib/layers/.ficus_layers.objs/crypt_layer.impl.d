lib/layers/crypt_layer.ml: Char Result String Vnode
