lib/layers/access_layer.ml: Errno Result Vnode
