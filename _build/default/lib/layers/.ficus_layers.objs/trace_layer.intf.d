lib/layers/trace_layer.mli: Format Vnode
