lib/layers/crypt_layer.mli: Vnode
