lib/layers/trace_layer.ml: Buffer Char Ctl_name Errno Fmt Fun Hashtbl List Option Printf Result String Vnode
