lib/layers/access_layer.mli: Vnode
