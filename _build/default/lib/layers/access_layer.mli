(** User-authentication / access-control layer (the paper's third
    forecast use of stackable layers, §1).

    Interposes a credential: every operation through the wrapped stack
    runs as a fixed user id, and the standard owner/other permission
    bits of the objects below are enforced — read bits gate [read] and
    [readdir]; execute bits gate directory traversal ([lookup]); write
    bits gate [write], [setattr], [create], [remove], [mkdir], [rmdir],
    [rename] and [link].  Denied operations fail with [EACCES].  The
    superuser (uid 0) bypasses all checks, as tradition demands.

    Like every layer here it is purely interposed: the layers below
    store ordinary mode bits and know nothing about enforcement, and
    the layers above need not know a credential check is happening. *)

val wrap : uid:int -> Vnode.t -> Vnode.t
