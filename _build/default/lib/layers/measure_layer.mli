(** Performance-monitoring layer.

    The paper (§1) forecasts that the stackable architecture will be
    used "for performance monitoring, user authentication and
    encryption".  This is the first of those three: a transparent layer
    that counts every operation crossing it, its failures, and the
    simulated time it consumed — without the layers above or below
    changing in any way.

    Counter names are [measure.<op>.calls], [measure.<op>.errors] and
    [measure.<op>.ticks] (simulated-clock time observed below this
    layer, when a clock is supplied). *)

val wrap : ?clock:Clock.t -> counters:Counters.t -> Vnode.t -> Vnode.t

val ops_total : Counters.t -> int
(** Sum of all [measure.*.calls]. *)

val errors_total : Counters.t -> int

val report : Counters.t -> (string * int * int) list
(** [(op, calls, errors)] rows, sorted by op name — a ready-made table. *)
