let ( let* ) = Result.bind

type perm = Pread | Pwrite | Pexec

(* Owner bits if the credential owns the object, otherwise the
   world bits (the simulation has no groups). *)
let permitted ~uid (attrs : Vnode.attrs) perm =
  uid = 0
  ||
  let shift = if attrs.Vnode.uid = uid then 6 else 0 in
  let bit = match perm with Pread -> 4 | Pwrite -> 2 | Pexec -> 1 in
  attrs.Vnode.mode lsr shift land bit <> 0

let wrap ~uid lower =
  let rec make (lower : Vnode.t) : Vnode.t =
    let wrap_child = Result.map make in
    let check perm k =
      let* attrs = lower.Vnode.getattr () in
      if permitted ~uid attrs perm then k () else Error Errno.EACCES
    in
    {
      lower with
      Vnode.lookup =
        (fun name -> check Pexec (fun () -> wrap_child (lower.Vnode.lookup name)));
      create =
        (fun name ->
          check Pwrite (fun () ->
              let* child = lower.Vnode.create name in
              (* New objects belong to their creator, as in Unix. *)
              let* () =
                child.Vnode.setattr { Vnode.setattr_none with Vnode.set_uid = Some uid }
              in
              Ok (make child)));
      mkdir =
        (fun name ->
          check Pwrite (fun () ->
              let* child = lower.Vnode.mkdir name in
              let* () =
                child.Vnode.setattr { Vnode.setattr_none with Vnode.set_uid = Some uid }
              in
              Ok (make child)));
      remove = (fun name -> check Pwrite (fun () -> lower.Vnode.remove name));
      rmdir = (fun name -> check Pwrite (fun () -> lower.Vnode.rmdir name));
      rename =
        (fun src dst dname -> check Pwrite (fun () -> lower.Vnode.rename src dst dname));
      link = (fun target name -> check Pwrite (fun () -> lower.Vnode.link target name));
      readdir = (fun () -> check Pread (fun () -> lower.Vnode.readdir ()));
      read = (fun ~off ~len -> check Pread (fun () -> lower.Vnode.read ~off ~len));
      write = (fun ~off data -> check Pwrite (fun () -> lower.Vnode.write ~off data));
      setattr =
        (fun sa ->
          (* chmod/chown of your own file is allowed even without the
             write bit, like Unix. *)
          let* attrs = lower.Vnode.getattr () in
          let chmod_only =
            sa.Vnode.set_size = None && (attrs.Vnode.uid = uid || uid = 0)
          in
          if chmod_only || permitted ~uid attrs Pwrite then lower.Vnode.setattr sa
          else Error Errno.EACCES);
    }
  in
  make lower
