type event =
  | Lookup of int * string * int
  | Create of int * string * int
  | Mkdir of int * string * int
  | Remove of int * string
  | Rmdir of int * string
  | Rename of int * string * int * string
  | Link of int * int * string   (* dir, target, name *)
  | Getattr of int
  | Readdir of int
  | Read of int * int * int
  | Write of int * int * int
  | Open of int
  | Close of int

type t = { mutable events : event list (* reversed *); mutable next_id : int }

type Vnode.vdata += Traced of t * int * Vnode.t  (* trace, id, lower *)

let create () = { events = []; next_id = 1 }

let note t ev = t.events <- ev :: t.events

let events t = List.rev t.events
let length t = List.length t.events

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let rec make t id (lower : Vnode.t) : Vnode.t =
  let child_result parent name mk_event result =
    match result with
    | Error _ as e -> e
    | Ok child ->
      let child_id = fresh_id t in
      note t (mk_event parent name child_id);
      Ok (make t child_id child)
  in
  let unwrap (v : Vnode.t) =
    match v.Vnode.data with
    | Traced (t', id', lower') when t' == t -> Ok (id', lower')
    | _ -> Error Errno.EXDEV
  in
  let logged ev result =
    (match result with Ok _ -> note t ev | Error _ -> ());
    result
  in
  {
    (Vnode.not_supported (Traced (t, id, lower))) with
    getattr = (fun () -> logged (Getattr id) (lower.Vnode.getattr ()));
    setattr = (fun sa -> lower.Vnode.setattr sa);
    lookup =
      (fun name -> child_result id name (fun p n c -> Lookup (p, n, c)) (lower.Vnode.lookup name));
    create =
      (fun name -> child_result id name (fun p n c -> Create (p, n, c)) (lower.Vnode.create name));
    mkdir =
      (fun name -> child_result id name (fun p n c -> Mkdir (p, n, c)) (lower.Vnode.mkdir name));
    remove = (fun name -> logged (Remove (id, name)) (lower.Vnode.remove name));
    rmdir = (fun name -> logged (Rmdir (id, name)) (lower.Vnode.rmdir name));
    rename =
      (fun sname dst dname ->
        match unwrap dst with
        | Error _ as e -> e
        | Ok (dst_id, dst_lower) ->
          logged (Rename (id, sname, dst_id, dname)) (lower.Vnode.rename sname dst_lower dname));
    link =
      (fun target name ->
        match unwrap target with
        | Error _ as e -> e
        | Ok (target_id, target_lower) ->
          logged (Link (id, target_id, name)) (lower.Vnode.link target_lower name));
    readdir = (fun () -> logged (Readdir id) (lower.Vnode.readdir ()));
    read = (fun ~off ~len -> logged (Read (id, off, len)) (lower.Vnode.read ~off ~len));
    write =
      (fun ~off data ->
        logged (Write (id, off, String.length data)) (lower.Vnode.write ~off data));
    openv = (fun flag -> logged (Open id) (lower.Vnode.openv flag));
    closev = (fun () -> logged (Close id) (lower.Vnode.closev ()));
    fsync = (fun () -> lower.Vnode.fsync ());
    inactive = (fun () -> lower.Vnode.inactive ());
  }

let wrap t root = make t 0 root

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replay_stats = { applied : int; failed : int }

(* Deterministic synthetic payload for replayed writes. *)
let payload id len = String.init len (fun i -> Char.chr (Char.code 'a' + ((id + i) mod 26)))

let replay root trace =
  let table : (int, Vnode.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace table 0 root;
  let applied = ref 0 and failed = ref 0 in
  let resolve id = Hashtbl.find_opt table id in
  let outcome = function
    | Some (Ok _) -> incr applied
    | Some (Error _) | None -> incr failed
  in
  let with_vnode id f = outcome (Option.map f (resolve id)) in
  let bind_child parent name child_id op =
    match resolve parent with
    | None -> incr failed
    | Some v ->
      (match op v name with
       | Ok child ->
         Hashtbl.replace table child_id child;
         incr applied
       | Error _ -> incr failed)
  in
  List.iter
    (fun ev ->
      match ev with
      | Lookup (p, n, c) -> bind_child p n c (fun v name -> v.Vnode.lookup name)
      | Create (p, n, c) -> bind_child p n c (fun v name -> v.Vnode.create name)
      | Mkdir (p, n, c) -> bind_child p n c (fun v name -> v.Vnode.mkdir name)
      | Remove (id, n) -> with_vnode id (fun v -> v.Vnode.remove n)
      | Rmdir (id, n) -> with_vnode id (fun v -> v.Vnode.rmdir n)
      | Rename (s, sn, d, dn) ->
        (match resolve s, resolve d with
         | Some sv, Some dv -> outcome (Some (sv.Vnode.rename sn dv dn))
         | _, _ -> incr failed)
      | Link (d, tgt, n) ->
        (match resolve d, resolve tgt with
         | Some dv, Some tv -> outcome (Some (dv.Vnode.link tv n))
         | _, _ -> incr failed)
      | Getattr id -> with_vnode id (fun v -> Result.map ignore (v.Vnode.getattr ()))
      | Readdir id -> with_vnode id (fun v -> Result.map ignore (v.Vnode.readdir ()))
      | Read (id, off, len) ->
        with_vnode id (fun v -> Result.map ignore (v.Vnode.read ~off ~len))
      | Write (id, off, len) -> with_vnode id (fun v -> v.Vnode.write ~off (payload id len))
      | Open id -> with_vnode id (fun v -> v.Vnode.openv Vnode.Read_write)
      | Close id -> with_vnode id (fun v -> v.Vnode.closev ()))
    trace;
  { applied = !applied; failed = !failed }

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

(* Percent-escape the field separators (space, newline) as well as '%'
   itself; Ctl_name.unescape inverts any percent-escaping. *)
let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\t' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unesc = Ctl_name.unescape

let encode_event = function
  | Lookup (p, n, c) -> Printf.sprintf "lookup %d %s %d" p (esc n) c
  | Create (p, n, c) -> Printf.sprintf "create %d %s %d" p (esc n) c
  | Mkdir (p, n, c) -> Printf.sprintf "mkdir %d %s %d" p (esc n) c
  | Remove (id, n) -> Printf.sprintf "remove %d %s" id (esc n)
  | Rmdir (id, n) -> Printf.sprintf "rmdir %d %s" id (esc n)
  | Rename (s, sn, d, dn) -> Printf.sprintf "rename %d %s %d %s" s (esc sn) d (esc dn)
  | Link (d, tgt, n) -> Printf.sprintf "link %d %d %s" d tgt (esc n)
  | Getattr id -> Printf.sprintf "getattr %d" id
  | Readdir id -> Printf.sprintf "readdir %d" id
  | Read (id, off, len) -> Printf.sprintf "read %d %d %d" id off len
  | Write (id, off, len) -> Printf.sprintf "write %d %d %d" id off len
  | Open id -> Printf.sprintf "open %d" id
  | Close id -> Printf.sprintf "close %d" id

let encode trace = String.concat "\n" (List.map encode_event trace) ^ "\n"

let decode_event line =
  let int = int_of_string_opt in
  match String.split_on_char ' ' line with
  | [ "lookup"; p; n; c ] ->
    (match int p, unesc n, int c with
     | Some p, Some n, Some c -> Some (Lookup (p, n, c))
     | _, _, _ -> None)
  | [ "create"; p; n; c ] ->
    (match int p, unesc n, int c with
     | Some p, Some n, Some c -> Some (Create (p, n, c))
     | _, _, _ -> None)
  | [ "mkdir"; p; n; c ] ->
    (match int p, unesc n, int c with
     | Some p, Some n, Some c -> Some (Mkdir (p, n, c))
     | _, _, _ -> None)
  | [ "remove"; id; n ] ->
    (match int id, unesc n with Some id, Some n -> Some (Remove (id, n)) | _, _ -> None)
  | [ "rmdir"; id; n ] ->
    (match int id, unesc n with Some id, Some n -> Some (Rmdir (id, n)) | _, _ -> None)
  | [ "rename"; s; sn; d; dn ] ->
    (match int s, unesc sn, int d, unesc dn with
     | Some s, Some sn, Some d, Some dn -> Some (Rename (s, sn, d, dn))
     | _, _, _, _ -> None)
  | [ "link"; d; tgt; n ] ->
    (match int d, int tgt, unesc n with
     | Some d, Some tgt, Some n -> Some (Link (d, tgt, n))
     | _, _, _ -> None)
  | [ "getattr"; id ] -> Option.map (fun id -> Getattr id) (int id)
  | [ "readdir"; id ] -> Option.map (fun id -> Readdir id) (int id)
  | [ "read"; id; off; len ] ->
    (match int id, int off, int len with
     | Some id, Some off, Some len -> Some (Read (id, off, len))
     | _, _, _ -> None)
  | [ "write"; id; off; len ] ->
    (match int id, int off, int len with
     | Some id, Some off, Some len -> Some (Write (id, off, len))
     | _, _, _ -> None)
  | [ "open"; id ] -> Option.map (fun id -> Open id) (int id)
  | [ "close"; id ] -> Option.map (fun id -> Close id) (int id)
  | _ -> None

let decode s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let decoded = List.map decode_event lines in
  if List.exists Option.is_none decoded then None else Some (List.filter_map Fun.id decoded)

let pp_event ppf ev = Fmt.string ppf (encode_event ev)
