(* Repeating-key XOR, keyed by absolute file position so that a read or
   write at any offset transforms independently of any other. *)
let transform ~key ~off data =
  let klen = String.length key in
  String.init (String.length data) (fun i ->
      Char.chr (Char.code data.[i] lxor Char.code key.[(off + i) mod klen]))

let wrap ~key lower =
  if key = "" then invalid_arg "Crypt_layer.wrap: empty key";
  let rec make (lower : Vnode.t) : Vnode.t =
    let wrap_child = Result.map make in
    {
      lower with
      Vnode.lookup = (fun name -> wrap_child (lower.Vnode.lookup name));
      create = (fun name -> wrap_child (lower.Vnode.create name));
      mkdir = (fun name -> wrap_child (lower.Vnode.mkdir name));
      read =
        (fun ~off ~len ->
          Result.map (fun data -> transform ~key ~off data) (lower.Vnode.read ~off ~len));
      write = (fun ~off data -> lower.Vnode.write ~off (transform ~key ~off data));
    }
  in
  make lower
