(** Transparent encryption layer (the paper's second forecast use of
    stackable layers, §1).

    Encrypts regular-file contents below it with a position-dependent
    keystream, so random-access reads and writes at any offset remain
    O(length) and layers above are completely unaware: the whole Ficus
    physical layer runs unmodified on top of an encrypting stack (its
    DIR and aux files are then encrypted at rest too — see the tests).

    Names and attributes are not hidden, and the keystream is a toy
    (repeating-key XOR): this demonstrates the {e architecture} —
    transparent insertion of a data-transforming layer — not a real
    cipher.  A production layer would swap in an actual stream cipher
    behind the same 30 lines. *)

val wrap : key:string -> Vnode.t -> Vnode.t
(** [key] must be non-empty.  Wrapping the same stack twice with the
    same key yields plaintext (XOR involution) — handy in tests. *)
