(** Classical replica-control policies, implemented from the papers Ficus
    cites, as pluggable availability predicates.

    The paper's claim (§1, §3.1): {e one-copy availability} — any copy
    readable, any copy updatable — "provides strictly greater
    availability than primary copy [Alsberg–Day 1976], voting
    [Thomas 1979], weighted voting [Gifford 1979], and quorum consensus
    [Herlihy 1986]".  Experiment E4 regenerates that comparison.

    A policy is judged against an {e accessibility vector}: for each of
    the [n] replicas, whether the client can currently reach it. *)

type t =
  | One_copy
      (** Ficus: read the most recent accessible copy, update any
          accessible copy. *)
  | Primary_copy
      (** Alsberg & Day: all updates at replica 0; reads at any copy. *)
  | Majority_voting
      (** Thomas: both reads and updates require a strict majority. *)
  | Weighted_voting of { weights : int array; read_quorum : int; write_quorum : int }
      (** Gifford: votes per replica; r + w must exceed the total and
          2w must exceed the total (checked by {!validate}). *)
  | Quorum_consensus of { read_quorum : int; write_quorum : int }
      (** Herlihy's quorum consensus specialized to read/write quorums on
          equal-weight replicas. *)

val name : t -> string

val validate : t -> nreplicas:int -> (unit, string) result
(** Check quorum-intersection requirements (r+w > total votes,
    w > total/2) and dimension agreement. *)

val can_read : t -> up:bool array -> bool
(** Can a client with this accessibility vector complete a read? *)

val can_update : t -> up:bool array -> bool

val default_weighted : nreplicas:int -> t
(** A reasonable Gifford configuration: weight 2 on replica 0 and 1
    elsewhere, with the smallest legal write quorum and matching read
    quorum. *)
