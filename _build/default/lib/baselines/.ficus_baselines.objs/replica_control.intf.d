lib/baselines/replica_control.mli:
