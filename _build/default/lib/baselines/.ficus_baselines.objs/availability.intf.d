lib/baselines/availability.mli: Replica_control
