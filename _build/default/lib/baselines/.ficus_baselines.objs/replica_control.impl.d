lib/baselines/replica_control.ml: Array Fun
