lib/baselines/availability.ml: Array Random Replica_control
