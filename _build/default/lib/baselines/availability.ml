type model = Independent of float | Partition_groups of int

type result = { read_availability : float; update_availability : float }

let sample_up rng model nreplicas =
  match model with
  | Independent p -> Array.init nreplicas (fun _ -> Random.State.float rng 1.0 < p)
  | Partition_groups k ->
    let client_group = Random.State.int rng k in
    Array.init nreplicas (fun _ -> Random.State.int rng k = client_group)

let evaluate ?(seed = 7) ~trials ~nreplicas ~model policy =
  if trials <= 0 || nreplicas <= 0 then invalid_arg "Availability.evaluate";
  let rng = Random.State.make [| seed |] in
  let reads = ref 0 and updates = ref 0 in
  for _ = 1 to trials do
    let up = sample_up rng model nreplicas in
    if Replica_control.can_read policy ~up then incr reads;
    if Replica_control.can_update policy ~up then incr updates
  done;
  {
    read_availability = float_of_int !reads /. float_of_int trials;
    update_availability = float_of_int !updates /. float_of_int trials;
  }

let binomial_tail ~n ~p ~k =
  (* P[X >= k]; exact summation, n is small. *)
  let choose n r =
    let r = min r (n - r) in
    let rec go acc i = if i > r then acc else go (acc *. float_of_int (n - r + i) /. float_of_int i) (i + 1) in
    if r < 0 then 0.0 else go 1.0 1
  in
  let term i = choose n i *. (p ** float_of_int i) *. ((1.0 -. p) ** float_of_int (n - i)) in
  let rec sum i acc = if i > n then acc else sum (i + 1) (acc +. term i) in
  sum (max 0 k) 0.0

let majority n = (n / 2) + 1

let analytic_read ~nreplicas ~p policy =
  match policy with
  | Replica_control.One_copy | Replica_control.Primary_copy ->
    Some (1.0 -. ((1.0 -. p) ** float_of_int nreplicas))
  | Replica_control.Majority_voting ->
    Some (binomial_tail ~n:nreplicas ~p ~k:(majority nreplicas))
  | Replica_control.Quorum_consensus { read_quorum; _ } ->
    Some (binomial_tail ~n:nreplicas ~p ~k:read_quorum)
  | Replica_control.Weighted_voting _ -> None

let analytic_update ~nreplicas ~p policy =
  match policy with
  | Replica_control.One_copy ->
    Some (1.0 -. ((1.0 -. p) ** float_of_int nreplicas))
  | Replica_control.Primary_copy -> Some p
  | Replica_control.Majority_voting ->
    Some (binomial_tail ~n:nreplicas ~p ~k:(majority nreplicas))
  | Replica_control.Quorum_consensus { write_quorum; _ } ->
    Some (binomial_tail ~n:nreplicas ~p ~k:write_quorum)
  | Replica_control.Weighted_voting _ -> None
