(** Availability evaluation of replica-control policies under simulated
    communication failures (experiment E4).

    Two failure models:
    - {!Independent}: each replica is reachable from the client
      independently with probability [p] — the classic analytical model;
    - {!Partition_groups}: the client and all replica hosts are thrown
      uniformly into [k] network partitions; a replica is accessible iff
      it landed in the client's group — closer to the paper's
      "communications outages rendering inaccessible some replicas".

    Monte-Carlo estimates use a seeded deterministic PRNG; the
    [Independent] model also has closed forms for several policies,
    used by the test suite to validate the sampler. *)

type model =
  | Independent of float       (** reachability probability per replica *)
  | Partition_groups of int    (** number of uniform partition groups *)

type result = { read_availability : float; update_availability : float }

val evaluate :
  ?seed:int -> trials:int -> nreplicas:int -> model:model ->
  Replica_control.t -> result

val analytic_read :
  nreplicas:int -> p:float -> Replica_control.t -> float option
(** Closed-form read availability under [Independent p], where known. *)

val analytic_update :
  nreplicas:int -> p:float -> Replica_control.t -> float option

val binomial_tail : n:int -> p:float -> k:int -> float
(** P[X >= k] for X ~ Binomial(n, p); exposed for tests. *)
