type t =
  | One_copy
  | Primary_copy
  | Majority_voting
  | Weighted_voting of { weights : int array; read_quorum : int; write_quorum : int }
  | Quorum_consensus of { read_quorum : int; write_quorum : int }

let name = function
  | One_copy -> "one-copy (Ficus)"
  | Primary_copy -> "primary copy"
  | Majority_voting -> "majority voting"
  | Weighted_voting _ -> "weighted voting"
  | Quorum_consensus _ -> "quorum consensus"

let validate t ~nreplicas =
  match t with
  | One_copy | Primary_copy -> Ok ()
  | Majority_voting -> if nreplicas >= 1 then Ok () else Error "no replicas"
  | Weighted_voting { weights; read_quorum; write_quorum } ->
    if Array.length weights <> nreplicas then Error "weights dimension mismatch"
    else
      let total = Array.fold_left ( + ) 0 weights in
      if read_quorum + write_quorum <= total then Error "r + w must exceed total votes"
      else if 2 * write_quorum <= total then Error "2w must exceed total votes"
      else Ok ()
  | Quorum_consensus { read_quorum; write_quorum } ->
    if read_quorum + write_quorum <= nreplicas then Error "r + w must exceed n"
    else if 2 * write_quorum <= nreplicas then Error "2w must exceed n"
    else Ok ()

let count_up up = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 up

let votes_up weights up =
  let sum = ref 0 in
  Array.iteri (fun i w -> if up.(i) then sum := !sum + w) weights;
  !sum

let any_up up = Array.exists Fun.id up

let can_read t ~up =
  match t with
  | One_copy -> any_up up
  | Primary_copy -> any_up up
  | Majority_voting -> 2 * count_up up > Array.length up
  | Weighted_voting { weights; read_quorum; _ } -> votes_up weights up >= read_quorum
  | Quorum_consensus { read_quorum; _ } -> count_up up >= read_quorum

let can_update t ~up =
  match t with
  | One_copy -> any_up up
  | Primary_copy -> Array.length up > 0 && up.(0)
  | Majority_voting -> 2 * count_up up > Array.length up
  | Weighted_voting { weights; write_quorum; _ } -> votes_up weights up >= write_quorum
  | Quorum_consensus { write_quorum; _ } -> count_up up >= write_quorum

let default_weighted ~nreplicas =
  let weights = Array.make nreplicas 1 in
  if nreplicas > 0 then weights.(0) <- 2;
  let total = Array.fold_left ( + ) 0 weights in
  let write_quorum = (total / 2) + 1 in
  let read_quorum = total - write_quorum + 1 in
  Weighted_voting { weights; read_quorum; write_quorum }
