(** Little-endian fixed-width integer (de)serialization helpers used by
    the UFS on-disk structures. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
(** Read 4 bytes as a non-negative OCaml int. *)

val set_u32 : bytes -> int -> int -> unit
(** Write the low 32 bits of a non-negative int. *)

val get_string : bytes -> int -> int -> string
val set_string : bytes -> int -> string -> unit
