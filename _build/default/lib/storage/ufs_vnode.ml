type Vnode.vdata += Ufs_vnode of Ufs.t * Ufs.inum

let ( let* ) = Result.bind

let to_vattrs (a : Ufs.attrs) : Vnode.attrs =
  {
    kind = (match a.kind with Ufs.Reg -> Vnode.VREG | Ufs.Dir -> Vnode.VDIR);
    size = a.size;
    nlink = a.nlink;
    mtime = a.mtime;
    mode = a.mode;
    uid = a.uid;
    gen = a.gen;
  }

let inum_of (v : Vnode.t) =
  match v.Vnode.data with Ufs_vnode (_, inum) -> Some inum | _ -> None

let rec of_inum fs inum : Vnode.t =
  let wrap = function Ok i -> Ok (of_inum fs i) | Error _ as e -> e in
  let sibling (v : Vnode.t) =
    match v.Vnode.data with
    | Ufs_vnode (fs', i) when fs' == fs -> Ok i
    | _ -> Error Errno.EXDEV
  in
  {
    (Vnode.not_supported (Ufs_vnode (fs, inum))) with
    getattr =
      (fun () ->
        let* a = Ufs.stat fs inum in
        Ok (to_vattrs a));
    setattr =
      (fun sa ->
        let apply set = function None -> Ok () | Some v -> set v in
        let* () = apply (Ufs.truncate fs inum) sa.Vnode.set_size in
        let* () = apply (Ufs.set_mtime fs inum) sa.Vnode.set_mtime in
        let* () = apply (Ufs.set_mode fs inum) sa.Vnode.set_mode in
        apply (Ufs.set_uid fs inum) sa.Vnode.set_uid);
    lookup = (fun name -> wrap (Ufs.dir_lookup fs inum name));
    create = (fun name -> wrap (Ufs.create fs ~dir:inum name));
    mkdir = (fun name -> wrap (Ufs.mkdir fs ~dir:inum name));
    remove = (fun name -> Ufs.unlink fs ~dir:inum name);
    rmdir = (fun name -> Ufs.rmdir fs ~dir:inum name);
    rename =
      (fun sname dst_dir dname ->
        let* ddir = sibling dst_dir in
        Ufs.rename fs ~sdir:inum ~sname ~ddir ~dname);
    link =
      (fun target name ->
        let* target_inum = sibling target in
        Ufs.link fs ~dir:inum name target_inum);
    readdir =
      (fun () ->
        let* entries = Ufs.dir_entries fs inum in
        let to_dirent (name, _, kind) =
          {
            Vnode.entry_name = name;
            entry_kind = (match kind with Ufs.Reg -> Vnode.VREG | Ufs.Dir -> Vnode.VDIR);
          }
        in
        Ok (List.map to_dirent entries));
    read = (fun ~off ~len -> Ufs.read fs inum ~off ~len);
    write = (fun ~off data -> Ufs.write fs inum ~off data);
    openv = (fun _ -> Ok ());
    closev = (fun () -> Ok ());
    fsync = (fun () -> Ufs.sync fs);
    inactive = (fun () -> Ok ());
  }

let root fs = of_inum fs (Ufs.root fs)
