(** Export a {!Ufs} as a stack of vnodes — the bottom layer of every
    Ficus stack (paper Figure 1).  Each vnode wraps a (file system, inode)
    pair; directory operations translate one-to-one to {!Ufs} calls. *)

type Vnode.vdata += Ufs_vnode of Ufs.t * Ufs.inum
(** Exposed so co-resident layers (and tests) can recognize UFS vnodes. *)

val of_inum : Ufs.t -> Ufs.inum -> Vnode.t

val root : Ufs.t -> Vnode.t
(** The vnode for the UFS root directory. *)

val inum_of : Vnode.t -> Ufs.inum option
(** [Some inum] when the vnode belongs to this layer. *)
