(** A from-scratch Unix file system on a simulated disk.

    This is the storage substrate Ficus stacks on: inodes, allocation
    bitmaps, directories, and a write-through buffer cache, with a real
    on-disk layout so that every metadata or data access is charged to the
    device unless the buffer cache absorbs it.  It deliberately keeps the
    4.2BSD UFS shape the paper assumes — inode + data page per file
    touched — because the §6 I/O-overhead numbers are stated in exactly
    those units.

    Differences from a production UFS, chosen for the simulation:
    ["."]/[".."] entries are implicit; [link] may target directories
    (Ficus directories form a DAG — paper §2.5); all metadata writes are
    synchronous write-through. *)

type t

type inum = int
(** Inode number; the root directory is inode 1 (0 is reserved). *)

type kind = Reg | Dir

type attrs = {
  kind : kind;
  size : int;
  nlink : int;
  mtime : int;
  mode : int;
  uid : int;
  gen : int;  (** incremented each time the inode slot is reused *)
}

type 'a io = ('a, Errno.t) result

val mkfs :
  ?cache_capacity:int -> ?ninodes:int -> ?inode_size:int -> now:(unit -> int) ->
  Disk.t -> t io
(** Format the disk and mount the fresh file system.  [now] supplies
    mtime stamps (typically the simulated clock).  Default [ninodes] is
    one per four data blocks.  [inode_size] (default 128, min 128, must
    divide the block size) controls how many inodes share a block: the
    I/O-accounting experiments set it to the block size so each inode
    fetch is one I/O, as on a cylinder-group UFS where distinct files'
    inodes rarely share a cached block. *)

val mount : ?cache_capacity:int -> now:(unit -> int) -> Disk.t -> t io
(** Mount an existing file system (e.g. after a simulated crash: the
    buffer cache starts cold).  Fails with [EINVAL] on a bad superblock. *)

val root : t -> inum
val cache : t -> Block_cache.t
val disk : t -> Disk.t

val nfree_blocks : t -> int io
val nfree_inodes : t -> int io

(** {1 Inode operations} *)

val stat : t -> inum -> attrs io
val set_mode : t -> inum -> int -> unit io
val set_uid : t -> inum -> int -> unit io
val set_mtime : t -> inum -> int -> unit io

val read : t -> inum -> off:int -> len:int -> string io
(** Short read at EOF; [""] past EOF; [EISDIR] on directories. *)

val write : t -> inum -> off:int -> string -> unit io
(** Extends the file as needed; sparse gaps read back as zeros. *)

val truncate : t -> inum -> int -> unit io
(** Shrink (freeing blocks) or extend (zero-filled) to exactly [len]. *)

(** {1 Directory operations} *)

val dir_lookup : t -> inum -> string -> inum io
val dir_entries : t -> inum -> (string * inum * kind) list io

val create : t -> dir:inum -> string -> inum io
(** New empty regular file; [EEXIST] if the name is taken. *)

val mkdir : t -> dir:inum -> string -> inum io

val link : t -> dir:inum -> string -> inum -> unit io
(** Add a name for an existing inode (directories allowed — see above). *)

val unlink : t -> dir:inum -> string -> unit io
(** Remove a name for a non-directory; the inode and its blocks are freed
    when the last link goes. *)

val rmdir : t -> dir:inum -> string -> unit io
(** Remove a directory name.  Removing the {e last} link to a non-empty
    directory is [ENOTEMPTY]; removing one of several links is fine. *)

val rename : t -> sdir:inum -> sname:string -> ddir:inum -> dname:string -> unit io
(** Atomic within the file system.  An existing destination is replaced
    ([ENOTEMPTY] if it is a non-empty directory's last link). *)

(** {1 Maintenance} *)

val sync : t -> unit io
(** No-op (write-through cache); present for interface completeness. *)

val check : t -> (unit, string) result
(** Cheap fsck: bitmap vs. reachable blocks/inodes, link counts.  Used by
    property tests. *)
