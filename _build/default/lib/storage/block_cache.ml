(* LRU as a hashtable of entries holding a recency stamp; eviction scans
   for the minimum stamp.  Capacities here are small (hundreds), and the
   simulation favours obvious correctness over asymptotics. *)

type entry = { buf : bytes; mutable stamp : int }

type t = {
  disk : Disk.t;
  capacity : int;
  table : (int, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 256) disk =
  if capacity < 0 then invalid_arg "Block_cache.create";
  { disk; capacity; table = Hashtbl.create (max 16 capacity); tick = 0; hits = 0; misses = 0 }

let disk t = t.disk

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity && t.capacity > 0 then begin
    let victim = ref None in
    let consider i e =
      match !victim with
      | Some (_, best) when best.stamp <= e.stamp -> ()
      | _ -> victim := Some (i, e)
    in
    Hashtbl.iter consider t.table;
    match !victim with
    | Some (i, _) -> Hashtbl.remove t.table i
    | None -> ()
  end

let insert t i buf =
  if t.capacity > 0 then begin
    evict_if_full t;
    let e = { buf; stamp = 0 } in
    Hashtbl.replace t.table i e;
    touch t e
  end

let read t i =
  match Hashtbl.find_opt t.table i with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Ok e.buf
  | None ->
    t.misses <- t.misses + 1;
    (match Disk.read t.disk i with
     | Error _ as e -> e
     | Ok buf ->
       insert t i buf;
       Ok buf)

let read_copy t i =
  match read t i with Error _ as e -> e | Ok buf -> Ok (Bytes.copy buf)

let write t i buf =
  match Disk.write t.disk i buf with
  | Error _ as e -> e
  | Ok () ->
    (match Hashtbl.find_opt t.table i with
     | Some e ->
       Bytes.blit buf 0 e.buf 0 (Bytes.length buf);
       touch t e
     | None -> insert t i (Bytes.copy buf));
    Ok ()

let invalidate t = Hashtbl.reset t.table

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
