(** Simulated block device.

    A fixed array of fixed-size blocks with precise I/O accounting: every
    [read]/[write] that reaches the device is one I/O, the unit in which
    the paper's §6 overhead numbers are stated.  Supports write-failure
    injection (for testing the shadow-file commit's crash safety) and a
    whole-device snapshot/restore (for simulating a host crash and
    reboot). *)

type t

val create :
  ?label:string ->
  ?on_io:(unit -> unit) ->
  nblocks:int -> block_size:int -> unit -> t
(** Fresh zeroed device.  [label] appears in error messages and stats.
    [on_io], if given, is invoked once per device access — typically a
    closure advancing the simulated clock by the device's access time,
    which turns I/O counts into simulated latency. *)

val label : t -> string
val nblocks : t -> int
val block_size : t -> int

val read : t -> int -> (bytes, Errno.t) result
(** One device read.  Returns a private copy of the block.  [EINVAL] out
    of range. *)

val write : t -> int -> bytes -> (unit, Errno.t) result
(** One device write.  The buffer must be exactly [block_size] long. *)

val reads : t -> int
val writes : t -> int
val io_total : t -> int
val reset_stats : t -> unit

val fail_writes_after : t -> int -> unit
(** [fail_writes_after d n]: the next [n] writes succeed, every write
    after that fails with [EIO] until {!clear_failures} — models losing
    power mid-update. *)

val clear_failures : t -> unit

val snapshot : t -> bytes array
(** Copy of the current media contents (not the stats). *)

val restore : t -> bytes array -> unit
(** Reset media to a snapshot, as after a crash that lost nothing the
    device had acknowledged. *)
