(** Write-through LRU buffer cache over a {!Disk}.

    The cache is what turns the paper's "recently accessed" into a
    measurable property: a block hit costs zero device I/Os, a miss costs
    one.  Writes go through to the device immediately (UFS here is
    synchronous-metadata, like the original), updating the cached copy.

    Ficus relies on the UFS cache continuing to exploit the namespace
    locality of its hex-encoded on-disk layout (paper §2.6); experiments
    E2/E3 read these hit/miss numbers. *)

type t

val create : ?capacity:int -> Disk.t -> t
(** [capacity] is the number of cached blocks (default 256).  A capacity
    of zero disables caching — every access reaches the device. *)

val disk : t -> Disk.t

val read : t -> int -> (bytes, Errno.t) result
(** Cached read.  The returned buffer is shared with the cache: callers
    must not mutate it (use {!read_copy} to mutate). *)

val read_copy : t -> int -> (bytes, Errno.t) result

val write : t -> int -> bytes -> (unit, Errno.t) result
(** Write-through: device first (so injected failures leave the cache
    consistent with media), then cache. *)

val invalidate : t -> unit
(** Drop every cached block — simulates the cache lost in a host crash,
    and lets experiments create a deliberately cold cache. *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
