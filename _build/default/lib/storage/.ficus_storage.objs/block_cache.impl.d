lib/storage/block_cache.ml: Bytes Disk Hashtbl
