lib/storage/block_cache.mli: Disk Errno
