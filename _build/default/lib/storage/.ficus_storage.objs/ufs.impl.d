lib/storage/ufs.ml: Array Block_cache Buffer Bytes Char Codec Disk Errno Format Hashtbl List Option Result String
