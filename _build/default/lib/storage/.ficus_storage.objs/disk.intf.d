lib/storage/disk.mli: Errno
