lib/storage/ufs_vnode.ml: Errno List Result Ufs Vnode
