lib/storage/codec.ml: Bytes Char Int32 String
