lib/storage/ufs.mli: Block_cache Disk Errno
