lib/storage/codec.mli:
