lib/storage/disk.ml: Array Bytes Errno
