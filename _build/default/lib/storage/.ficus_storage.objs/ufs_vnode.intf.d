lib/storage/ufs_vnode.mli: Ufs Vnode
