type t = {
  label : string;
  block_size : int;
  blocks : bytes array;
  on_io : unit -> unit;
  mutable reads : int;
  mutable writes : int;
  mutable writes_before_failure : int option;
      (* [Some n]: n more writes succeed, then EIO *)
}

let create ?(label = "disk") ?(on_io = fun () -> ()) ~nblocks ~block_size () =
  if nblocks <= 0 || block_size <= 0 then invalid_arg "Disk.create";
  {
    label;
    block_size;
    blocks = Array.init nblocks (fun _ -> Bytes.make block_size '\000');
    on_io;
    reads = 0;
    writes = 0;
    writes_before_failure = None;
  }

let label t = t.label
let nblocks t = Array.length t.blocks
let block_size t = t.block_size

let read t i =
  if i < 0 || i >= Array.length t.blocks then Error Errno.EINVAL
  else begin
    t.reads <- t.reads + 1;
    t.on_io ();
    Ok (Bytes.copy t.blocks.(i))
  end

let write t i buf =
  if i < 0 || i >= Array.length t.blocks then Error Errno.EINVAL
  else if Bytes.length buf <> t.block_size then Error Errno.EINVAL
  else
    match t.writes_before_failure with
    | Some 0 -> Error Errno.EIO
    | remaining ->
      (match remaining with
       | Some n -> t.writes_before_failure <- Some (n - 1)
       | None -> ());
      t.writes <- t.writes + 1;
      t.on_io ();
      Bytes.blit buf 0 t.blocks.(i) 0 t.block_size;
      Ok ()

let reads t = t.reads
let writes t = t.writes
let io_total t = t.reads + t.writes

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0

let fail_writes_after t n =
  if n < 0 then invalid_arg "Disk.fail_writes_after";
  t.writes_before_failure <- Some n

let clear_failures t = t.writes_before_failure <- None

let snapshot t = Array.map Bytes.copy t.blocks

let restore t media =
  if Array.length media <> Array.length t.blocks then invalid_arg "Disk.restore";
  Array.iteri (fun i b -> Bytes.blit b 0 t.blocks.(i) 0 t.block_size) media
