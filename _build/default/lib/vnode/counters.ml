type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let add t name n = cell t name := !(cell t name) + n

let incr t name = add t name 1

let get t name = match Hashtbl.find_opt t name with None -> 0 | Some r -> !r

let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let snapshot t =
  Hashtbl.fold (fun name r acc -> if !r = 0 then acc else (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  let lookup name l = match List.assoc_opt name l with None -> 0 | Some n -> n in
  let names = List.sort_uniq String.compare (List.map fst before @ List.map fst after) in
  List.filter_map
    (fun name ->
      let d = lookup name after - lookup name before in
      if d = 0 then None else Some (name, d))
    names

let pp ppf t =
  let pp_one ppf (name, n) = Fmt.pf ppf "%s=%d" name n in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any ", ") pp_one) (snapshot t)
