(** Named event counters.

    The simulation charges costs (disk I/Os, layer crossings, RPCs,
    propagated bytes) to named counters so experiments can report them.
    Counters live in explicit counter sets, not global state, so parallel
    experiments never interfere. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** Zero for a counter never incremented. *)

val reset : t -> unit
(** Zero every counter. *)

val snapshot : t -> (string * int) list
(** Non-zero counters, sorted by name. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-name difference [after - before], dropping zero entries. *)

val pp : Format.formatter -> t -> unit
