lib/vnode/ctl_name.ml: Buffer Char Errno List Printf String
