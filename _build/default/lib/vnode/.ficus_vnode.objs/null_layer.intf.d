lib/vnode/null_layer.mli: Counters Vnode
