lib/vnode/namei.mli: Vnode
