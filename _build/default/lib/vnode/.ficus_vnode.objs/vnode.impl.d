lib/vnode/vnode.ml: Errno Fmt
