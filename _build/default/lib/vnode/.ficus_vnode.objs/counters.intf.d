lib/vnode/counters.mli: Format
