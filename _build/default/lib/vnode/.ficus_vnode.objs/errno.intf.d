lib/vnode/errno.mli: Format
