lib/vnode/counters.ml: Fmt Hashtbl List String
