lib/vnode/null_layer.ml: Counters Errno Vnode
