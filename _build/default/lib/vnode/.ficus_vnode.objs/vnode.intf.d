lib/vnode/vnode.mli: Errno Format
