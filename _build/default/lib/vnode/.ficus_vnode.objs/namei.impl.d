lib/vnode/namei.ml: Errno List String Vnode
