lib/vnode/errno.ml: Format
