lib/vnode/ctl_name.mli: Errno
