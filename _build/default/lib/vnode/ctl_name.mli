(** Overloading [lookup] with encoded control requests (paper §2.3).

    The vnode interface predates Ficus and cannot be extended without
    touching every transport in between — in particular NFS, which
    silently discards [open]/[close].  Ficus therefore smuggles new
    services through [lookup] as specially formatted name strings that
    NFS forwards "without interpretation or interference".

    A control name is [".#ficus#<op>#<arg>#<arg>..."] where each argument
    is percent-escaped so it cannot contain ['#'].  The whole name must
    fit in a directory-name component (255 bytes); the paper notes the
    encoding reduces the usable file-name length to about 200 characters
    and that this costs nothing in practice ("we've never seen a
    component of even length 40"). *)

val prefix : string
(** [".#ficus#"] — no legal Ficus file name may start with this. *)

val max_component : int
(** 255, the UFS name-component limit. *)

val is_ctl : string -> bool
(** Does this lookup name carry an encoded control request? *)

val encode : op:string -> args:string list -> (string, Errno.t) result
(** Build a control name; [Error ENAMETOOLONG] if it exceeds
    {!max_component}. *)

val decode : string -> (string * string list) option
(** [decode name] is [Some (op, args)] for a well-formed control name and
    [None] otherwise. *)

val escape : string -> string
val unescape : string -> string option
