let split path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

let walk ~root path =
  let rec go v = function
    | [] -> Ok v
    | name :: rest ->
      (match v.Vnode.lookup name with
       | Error _ as e -> e
       | Ok child -> go child rest)
  in
  go root (split path)

let walk_parent ~root path =
  match List.rev (split path) with
  | [] -> Error Errno.EINVAL
  | final :: rev_dirs ->
    (match walk ~root (String.concat "/" (List.rev rev_dirs)) with
     | Error _ as e -> e
     | Ok parent -> Ok (parent, final))

let mkdir_p ~root path =
  let rec go v = function
    | [] -> Ok v
    | name :: rest ->
      let next =
        match v.Vnode.lookup name with
        | Ok child ->
          (match Vnode.is_dir child with
           | Ok true -> Ok child
           | Ok false -> Error Errno.ENOTDIR
           | Error _ as e -> e)
        | Error Errno.ENOENT -> v.Vnode.mkdir name
        | Error _ as e -> e
      in
      (match next with Error _ as e -> e | Ok child -> go child rest)
  in
  go root (split path)
