(** Pathname translation over any vnode stack.

    [walk] is the system-call layer's name-to-vnode translation: it splits
    a slash-separated path and resolves one component at a time with
    [lookup], so every layer (including autografting logical layers) sees
    each component individually — exactly how graft points get noticed
    during translation (paper §4.4). *)

val split : string -> string list
(** Path components, ignoring repeated and leading/trailing slashes.
    ["/a//b/"] is [["a"; "b"]]. *)

val walk : root:Vnode.t -> string -> Vnode.t Vnode.io
(** Resolve [path] starting at [root].  An empty path or ["/"] resolves to
    [root] itself. *)

val walk_parent : root:Vnode.t -> string -> (Vnode.t * string) Vnode.io
(** Resolve all but the final component, returning the parent vnode and
    the final name — what creat/unlink/rename need.  Fails with [EINVAL]
    on the empty path. *)

val mkdir_p : root:Vnode.t -> string -> Vnode.t Vnode.io
(** Create each missing directory along [path]; existing directories are
    fine, an existing non-directory is [ENOTDIR]. *)
