(** Error codes shared by every layer of the stack.

    These mirror the Unix errno values a SunOS vnode operation could
    return, plus [ECONFLICT] (a Ficus-specific code for detected
    conflicting replica updates) and [EUNREACHABLE] (the simulated
    network's equivalent of a dropped or timed-out RPC). *)

type t =
  | ENOENT        (** no such file or directory *)
  | EEXIST        (** file exists *)
  | EIO           (** disk I/O error *)
  | ENOTDIR       (** not a directory *)
  | EISDIR        (** is a directory *)
  | ENOSPC        (** no space left on device *)
  | ENOTEMPTY     (** directory not empty *)
  | EINVAL        (** invalid argument *)
  | ENAMETOOLONG  (** name exceeds the per-component limit *)
  | ESTALE        (** stale (NFS) file handle *)
  | EROFS         (** read-only file system *)
  | EXDEV         (** cross-device link *)
  | ENOTSUP       (** operation not supported by this layer *)
  | EMLINK        (** too many links *)
  | EFBIG         (** file too large *)
  | ENFILE        (** file table overflow *)
  | EAGAIN        (** resource temporarily unavailable *)
  | EACCES        (** permission denied *)
  | EUNREACHABLE  (** host unreachable (network partition or timeout) *)
  | ECONFLICT     (** conflicting concurrent updates detected *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
