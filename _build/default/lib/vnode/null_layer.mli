(** The identity (null) layer.

    Forwards every vnode operation unchanged to the layer below, wrapping
    any vnode that comes back so the whole subtree stays inside the layer.
    Useful on its own to measure the cost of crossing a formal layer
    boundary (paper §6: "one additional procedure call, one pointer
    indirection, and storage for another vnode block"), and as the
    skeleton from which interposing layers are written. *)

val wrap : ?counters:Counters.t -> Vnode.t -> Vnode.t
(** [wrap v] interposes one null layer above [v].  If [counters] is given,
    each operation that crosses the boundary increments
    ["layer.crossings"]. *)

val wrap_depth : ?counters:Counters.t -> int -> Vnode.t -> Vnode.t
(** [wrap_depth n v] stacks [n] null layers above [v]. *)
