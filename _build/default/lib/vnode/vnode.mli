(** The stackable vnode interface.

    This is the Ficus reproduction's rendition of the SunOS vnode
    interface (Kleiman 1986): a fixed set of file operations behind which
    any file system — or any {e layer} over another file system — can sit.
    The interface is symmetric, which is what makes layers stackable: a
    module exports exactly the interface it imports from the layer below
    (paper §2.1).

    A vnode is a record of closures over the implementing layer's private
    state, plus a [data] field carrying an extensible-variant witness.
    The closures give each layer complete freedom in representation; the
    [data] field lets a layer recognize {e its own} vnodes when an
    operation receives a sibling vnode as an argument (e.g. [rename]'s
    destination directory). *)

type vtype =
  | VREG    (** regular file *)
  | VDIR    (** directory *)
  | VGRAFT  (** Ficus graft point (paper §4.3): a special directory kind *)
  | VCTL    (** synthetic control vnode returned by an overloaded lookup *)

type attrs = {
  kind : vtype;
  size : int;          (** bytes for VREG/VCTL; entry payload size for VDIR *)
  nlink : int;         (** number of names referring to the object *)
  mtime : int;         (** simulated-clock timestamp of last modification *)
  mode : int;          (** permission bits, advisory in the simulation *)
  uid : int;           (** owning user, used for conflict reporting *)
  gen : int;           (** generation number; distinguishes reused slots *)
}

type setattr = {
  set_size : int option;   (** truncate/extend to this many bytes *)
  set_mtime : int option;
  set_mode : int option;
  set_uid : int option;
}

val setattr_none : setattr
(** A [setattr] that changes nothing; override fields as needed. *)

type dirent = { entry_name : string; entry_kind : vtype }

type open_flag = Read_only | Write_only | Read_write

(** Extensible per-layer private data.  Each layer declares
    [type Vnode.vdata += Mine of state] and matches on it to recognize its
    own vnodes. *)
type vdata = ..

type vdata += No_data

type 'a io = ('a, Errno.t) result
(** Every vnode operation returns [Ok] or an {!Errno.t}. *)

type t = {
  data : vdata;
  getattr : unit -> attrs io;
  setattr : setattr -> unit io;
  lookup : string -> t io;
    (** [lookup name] resolves one component in a directory vnode.  Layers
        may {e overload} this operation with encoded requests (paper
        §2.3); see {!Ctl_name}. *)
  create : string -> t io;
    (** Create a regular file; [EEXIST] if the name is taken. *)
  mkdir : string -> t io;
  remove : string -> unit io;
    (** Remove a non-directory name. *)
  rmdir : string -> unit io;
  rename : string -> t -> string -> unit io;
    (** [v.rename src dst_dir dst] moves [src] from directory [v] to name
        [dst] in [dst_dir].  [dst_dir] must belong to the same layer. *)
  link : t -> string -> unit io;
    (** [v.link target name] adds [name] in directory [v] for [target]. *)
  readdir : unit -> dirent list io;
  read : off:int -> len:int -> string io;
    (** Short reads at end of file; [""] at or past EOF. *)
  write : off:int -> string -> unit io;
    (** Writes extend the file as needed; a gap reads back as zeros. *)
  openv : open_flag -> unit io;
    (** Not preserved by NFS (paper §2.2) — hence the overloaded-lookup
        encoding that Ficus uses instead. *)
  closev : unit -> unit io;
  fsync : unit -> unit io;
  inactive : unit -> unit io;
    (** Hint that the vnode is no longer referenced; layers may release
        caches or prune grafts. *)
}

val not_supported : vdata -> t
(** A vnode whose every operation fails with [ENOTSUP]; build real vnodes
    by functional update of this record so unimplemented operations fail
    cleanly rather than being forgotten. *)

val kind_to_string : vtype -> string
val pp_attrs : Format.formatter -> attrs -> unit
val pp_dirent : Format.formatter -> dirent -> unit

val is_dir : t -> bool io
(** Convenience: [getattr] and test for [VDIR] or [VGRAFT]. *)

val read_all : t -> string io
(** Read an entire regular file through the vnode interface. *)

val write_all : t -> string -> unit io
(** Truncate to zero then write the full contents. *)
