type vtype = VREG | VDIR | VGRAFT | VCTL

type attrs = {
  kind : vtype;
  size : int;
  nlink : int;
  mtime : int;
  mode : int;
  uid : int;
  gen : int;
}

type setattr = {
  set_size : int option;
  set_mtime : int option;
  set_mode : int option;
  set_uid : int option;
}

let setattr_none = { set_size = None; set_mtime = None; set_mode = None; set_uid = None }

type dirent = { entry_name : string; entry_kind : vtype }

type open_flag = Read_only | Write_only | Read_write

type vdata = ..

type vdata += No_data

type 'a io = ('a, Errno.t) result

type t = {
  data : vdata;
  getattr : unit -> attrs io;
  setattr : setattr -> unit io;
  lookup : string -> t io;
  create : string -> t io;
  mkdir : string -> t io;
  remove : string -> unit io;
  rmdir : string -> unit io;
  rename : string -> t -> string -> unit io;
  link : t -> string -> unit io;
  readdir : unit -> dirent list io;
  read : off:int -> len:int -> string io;
  write : off:int -> string -> unit io;
  openv : open_flag -> unit io;
  closev : unit -> unit io;
  fsync : unit -> unit io;
  inactive : unit -> unit io;
}

let not_supported data =
  let e _ = Error Errno.ENOTSUP in
  {
    data;
    getattr = e;
    setattr = e;
    lookup = e;
    create = e;
    mkdir = e;
    remove = e;
    rmdir = e;
    rename = (fun _ _ _ -> Error Errno.ENOTSUP);
    link = (fun _ _ -> Error Errno.ENOTSUP);
    readdir = e;
    read = (fun ~off:_ ~len:_ -> Error Errno.ENOTSUP);
    write = (fun ~off:_ _ -> Error Errno.ENOTSUP);
    openv = e;
    closev = e;
    fsync = e;
    inactive = e;
  }

let kind_to_string = function
  | VREG -> "VREG"
  | VDIR -> "VDIR"
  | VGRAFT -> "VGRAFT"
  | VCTL -> "VCTL"

let pp_attrs ppf a =
  Fmt.pf ppf "{%s size=%d nlink=%d mtime=%d mode=%o uid=%d gen=%d}"
    (kind_to_string a.kind) a.size a.nlink a.mtime a.mode a.uid a.gen

let pp_dirent ppf d =
  Fmt.pf ppf "%s(%s)" d.entry_name (kind_to_string d.entry_kind)

let is_dir v =
  match v.getattr () with
  | Error _ as e -> e
  | Ok a -> Ok (match a.kind with VDIR | VGRAFT -> true | VREG | VCTL -> false)

let read_all v =
  match v.getattr () with
  | Error _ as e -> e
  | Ok a -> v.read ~off:0 ~len:a.size

let write_all v contents =
  match v.setattr { setattr_none with set_size = Some 0 } with
  | Error _ as e -> e
  | Ok () -> v.write ~off:0 contents
