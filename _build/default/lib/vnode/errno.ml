type t =
  | ENOENT
  | EEXIST
  | EIO
  | ENOTDIR
  | EISDIR
  | ENOSPC
  | ENOTEMPTY
  | EINVAL
  | ENAMETOOLONG
  | ESTALE
  | EROFS
  | EXDEV
  | ENOTSUP
  | EMLINK
  | EFBIG
  | ENFILE
  | EAGAIN
  | EACCES
  | EUNREACHABLE
  | ECONFLICT

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EIO -> "EIO"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOSPC -> "ENOSPC"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ESTALE -> "ESTALE"
  | EROFS -> "EROFS"
  | EXDEV -> "EXDEV"
  | ENOTSUP -> "ENOTSUP"
  | EMLINK -> "EMLINK"
  | EFBIG -> "EFBIG"
  | ENFILE -> "ENFILE"
  | EAGAIN -> "EAGAIN"
  | EACCES -> "EACCES"
  | EUNREACHABLE -> "EUNREACHABLE"
  | ECONFLICT -> "ECONFLICT"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let equal (a : t) (b : t) = a = b
