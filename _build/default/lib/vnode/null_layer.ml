type Vnode.vdata += Null of Vnode.t

(* Unwrap a sibling vnode passed as an argument (rename destination, link
   target).  A vnode from a different layer is a caller error. *)
let lower_of (v : Vnode.t) =
  match v.Vnode.data with
  | Null lower -> Ok lower
  | _ -> Error Errno.EXDEV

let wrap ?counters lower =
  let tick () =
    match counters with
    | None -> ()
    | Some c -> Counters.incr c "layer.crossings"
  in
  let rec make (lower : Vnode.t) : Vnode.t =
    let wrap_result = function
      | Ok v -> Ok (make v)
      | Error _ as e -> e
    in
    {
      Vnode.data = Null lower;
      getattr = (fun () -> tick (); lower.getattr ());
      setattr = (fun sa -> tick (); lower.setattr sa);
      lookup = (fun name -> tick (); wrap_result (lower.lookup name));
      create = (fun name -> tick (); wrap_result (lower.create name));
      mkdir = (fun name -> tick (); wrap_result (lower.mkdir name));
      remove = (fun name -> tick (); lower.remove name);
      rmdir = (fun name -> tick (); lower.rmdir name);
      rename =
        (fun src dst_dir dst ->
          tick ();
          match lower_of dst_dir with
          | Error _ as e -> e
          | Ok dst_lower -> lower.rename src dst_lower dst);
      link =
        (fun target name ->
          tick ();
          match lower_of target with
          | Error _ as e -> e
          | Ok target_lower -> lower.link target_lower name);
      readdir = (fun () -> tick (); lower.readdir ());
      read = (fun ~off ~len -> tick (); lower.read ~off ~len);
      write = (fun ~off data -> tick (); lower.write ~off data);
      openv = (fun flag -> tick (); lower.openv flag);
      closev = (fun () -> tick (); lower.closev ());
      fsync = (fun () -> tick (); lower.fsync ());
      inactive = (fun () -> tick (); lower.inactive ());
    }
  in
  make lower

let wrap_depth ?counters n lower =
  let rec go n v = if n <= 0 then v else go (n - 1) (wrap ?counters v) in
  go n lower
