(** Version vectors, after Parker et al., "Detection of Mutual Inconsistency
    in Distributed Systems" (IEEE TSE 1983), as used by Ficus to detect
    concurrent unsynchronized updates to file replicas.

    A version vector maps a replica identifier to the number of updates that
    replica has originated.  Missing entries are implicitly zero.  The
    vectors form a partial order under pointwise comparison; two vectors
    that are unordered witness a concurrent (conflicting) update history. *)

type replica_id = int
(** Replicas are identified by small integers.  Ficus replica ids are
    32-bit; the simulation never needs more than [max_int]. *)

type t
(** An immutable version vector. *)

val empty : t
(** The vector of a freshly created, never-updated object. *)

val singleton : replica_id -> int -> t
(** [singleton r n] is the vector with [n] updates at [r] and zero
    elsewhere.  Raises [Invalid_argument] if [n < 0]. *)

val of_list : (replica_id * int) list -> t
(** Build from association list; later bindings win.  Negative counts are
    rejected with [Invalid_argument]. *)

val to_list : t -> (replica_id * int) list
(** Bindings with non-zero counts, sorted by replica id. *)

val get : t -> replica_id -> int
(** [get v r] is the update count for [r] (zero when absent). *)

val bump : t -> replica_id -> t
(** [bump v r] records one more update originated at replica [r]. *)

val merge : t -> t -> t
(** Pointwise maximum: the least vector that dominates both arguments.
    Used when a replica adopts a newer version of a file. *)

val sum : t -> int
(** Total number of updates recorded (pointwise sum). *)

type comparison =
  | Equal       (** identical update histories *)
  | Dominates   (** left has seen everything right has, and more *)
  | Dominated   (** right has seen everything left has, and more *)
  | Concurrent  (** conflicting histories: neither includes the other *)

val compare_vv : t -> t -> comparison
(** Pointwise partial-order comparison. *)

val dominates : t -> t -> bool
(** [dominates a b] iff [compare_vv a b] is [Equal] or [Dominates]. *)

val concurrent : t -> t -> bool
(** [concurrent a b] iff neither vector dominates the other. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as [<r0:3 r2:1>]. *)

val to_string : t -> string

val encode : t -> string
(** Compact ASCII encoding, suitable for storage in an auxiliary attribute
    file: ["r:n,r:n,..."] sorted by replica id. *)

val decode : string -> t option
(** Inverse of {!encode}; [None] on malformed input. *)
