(* Version vectors (Parker et al. 1983).  Represented as an int-keyed map
   holding only strictly-positive counts, so that structural equality of the
   map coincides with vector equality and absent replicas cost nothing. *)

module Imap = Map.Make (Int)

type replica_id = int

type t = int Imap.t

let empty = Imap.empty

let check_count n =
  if n < 0 then invalid_arg "Version_vector: negative update count"

let singleton r n =
  check_count n;
  if n = 0 then Imap.empty else Imap.singleton r n

let of_list bindings =
  let add acc (r, n) =
    check_count n;
    if n = 0 then Imap.remove r acc else Imap.add r n acc
  in
  List.fold_left add Imap.empty bindings

let to_list v = Imap.bindings v

let get v r = match Imap.find_opt r v with None -> 0 | Some n -> n

let bump v r = Imap.add r (get v r + 1) v

let merge a b =
  let keep_max _ x y = Some (max x y) in
  Imap.union keep_max a b

let sum v = Imap.fold (fun _ n acc -> acc + n) v 0

type comparison = Equal | Dominates | Dominated | Concurrent

(* Compare by scanning the union of keys once, tracking whether the left
   side ever exceeds the right and vice versa. *)
let compare_vv a b =
  let left_gt = ref false and right_gt = ref false in
  let examine _ x y =
    let x = match x with None -> 0 | Some n -> n in
    let y = match y with None -> 0 | Some n -> n in
    if x > y then left_gt := true;
    if y > x then right_gt := true;
    None
  in
  let (_ : int Imap.t) = Imap.merge examine a b in
  match !left_gt, !right_gt with
  | false, false -> Equal
  | true, false -> Dominates
  | false, true -> Dominated
  | true, true -> Concurrent

let dominates a b =
  match compare_vv a b with Equal | Dominates -> true | Dominated | Concurrent -> false

let concurrent a b = compare_vv a b = Concurrent

let equal a b = Imap.equal Int.equal a b

let pp ppf v =
  let pp_binding ppf (r, n) = Fmt.pf ppf "r%d:%d" r n in
  Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any " ") pp_binding) (to_list v)

let to_string v = Fmt.str "%a" pp v

let encode v =
  to_list v
  |> List.map (fun (r, n) -> Printf.sprintf "%d:%d" r n)
  |> String.concat ","

let decode s =
  if String.trim s = "" then Some empty
  else
    let parse_binding acc part =
      match acc with
      | None -> None
      | Some bindings ->
        (match String.split_on_char ':' part with
         | [r; n] ->
           (match int_of_string_opt r, int_of_string_opt n with
            | Some r, Some n when n >= 0 -> Some ((r, n) :: bindings)
            | _, _ -> None)
         | _ -> None)
    in
    match List.fold_left parse_binding (Some []) (String.split_on_char ',' s) with
    | None -> None
    | Some bindings -> Some (of_list bindings)
