lib/net/sim_net.mli: Clock Counters Errno
