lib/net/sim_net.ml: Array Clock Counters Errno Fun Hashtbl List Random
