lib/net/clock.mli:
