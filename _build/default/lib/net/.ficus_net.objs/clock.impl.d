lib/net/clock.ml:
