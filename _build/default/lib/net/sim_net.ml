type host_id = int

type payload = ..

type host = {
  name : string;
  mutable group : int;
  mutable datagram_handlers : (src:host_id -> payload -> unit) list;
  mutable rpc_handlers : (src:host_id -> payload -> payload option) list;
}

type t = {
  clock : Clock.t;
  rng : Random.State.t;
  datagram_loss : float;
  mutable host_table : host array;
  mutable queue : (host_id * host_id * payload) list;  (* reversed send order *)
  counters : Counters.t;
}

let create ?(seed = 42) ?(datagram_loss = 0.0) clock =
  if datagram_loss < 0.0 || datagram_loss > 1.0 then invalid_arg "Sim_net.create";
  {
    clock;
    rng = Random.State.make [| seed |];
    datagram_loss;
    host_table = [||];
    queue = [];
    counters = Counters.create ();
  }

let clock t = t.clock
let counters t = t.counters

let add_host t name =
  let id = Array.length t.host_table in
  let h = { name; group = 0; datagram_handlers = []; rpc_handlers = [] } in
  t.host_table <- Array.append t.host_table [| h |];
  id

let host t id =
  if id < 0 || id >= Array.length t.host_table then invalid_arg "Sim_net: bad host id";
  t.host_table.(id)

let host_name t id = (host t id).name

let hosts t = List.init (Array.length t.host_table) Fun.id

let set_partition t groups =
  let mentioned = Hashtbl.create 16 in
  List.iteri
    (fun gi members ->
      List.iter
        (fun id ->
          (host t id).group <- gi;
          Hashtbl.replace mentioned id ())
        members)
    groups;
  (* Unmentioned hosts become isolated in fresh singleton groups. *)
  let next = ref (List.length groups) in
  Array.iteri
    (fun id h ->
      if not (Hashtbl.mem mentioned id) then begin
        h.group <- !next;
        incr next
      end)
    t.host_table

let heal t = Array.iter (fun h -> h.group <- 0) t.host_table

let isolate t id =
  let lowest_free =
    Array.fold_left (fun acc h -> max acc (h.group + 1)) 1 t.host_table
  in
  (host t id).group <- lowest_free

let reachable t a b = a = b || (host t a).group = (host t b).group

let send t ~src ~dst p =
  Counters.incr t.counters "net.datagrams.sent";
  t.queue <- (src, dst, p) :: t.queue

let broadcast t ~src ~dst p = List.iter (fun d -> send t ~src ~dst:d p) dst

let register_handler t id f =
  let h = host t id in
  h.datagram_handlers <- h.datagram_handlers @ [ f ]

let pending t = List.length t.queue

let pump t =
  let batch = List.rev t.queue in
  t.queue <- [];
  let delivered = ref 0 in
  let deliver (src, dst, p) =
    let lost = t.datagram_loss > 0.0 && Random.State.float t.rng 1.0 < t.datagram_loss in
    if lost || not (reachable t src dst) then
      Counters.incr t.counters "net.datagrams.dropped"
    else begin
      Counters.incr t.counters "net.datagrams.delivered";
      incr delivered;
      List.iter (fun f -> f ~src p) (host t dst).datagram_handlers
    end
  in
  List.iter deliver batch;
  !delivered

let register_rpc t id f =
  let h = host t id in
  h.rpc_handlers <- h.rpc_handlers @ [ f ]

let call t ~src ~dst p =
  Counters.incr t.counters "net.rpc.calls";
  if not (reachable t src dst) then begin
    Counters.incr t.counters "net.rpc.failed";
    Error Errno.EUNREACHABLE
  end
  else
    let rec try_handlers = function
      | [] ->
        Counters.incr t.counters "net.rpc.failed";
        Error Errno.ENOTSUP
      | f :: rest ->
        (match f ~src p with Some resp -> Ok resp | None -> try_handlers rest)
    in
    try_handlers (host t dst).rpc_handlers
