type t = { mutable now : int }

let create ?(start = 0) () = { now = start }

let now t = t.now

let advance t n =
  if n < 0 then invalid_arg "Clock.advance";
  t.now <- t.now + n

let tick t = advance t 1

let fn t () = now t
