(** Simulated time.

    A single logical clock shared by every component of a simulation;
    mtimes, cache timeouts, propagation delays and reconciliation periods
    are all expressed in its ticks.  Nothing in the repository reads wall
    time — runs are deterministic. *)

type t

val create : ?start:int -> unit -> t
val now : t -> int
val advance : t -> int -> unit
(** Move time forward; negative amounts are rejected. *)

val tick : t -> unit
(** [advance t 1]. *)

val fn : t -> unit -> int
(** [fn t] is a [now] closure, the shape {!Ufs.mkfs} expects. *)
