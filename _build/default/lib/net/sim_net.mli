(** Simulated wide-area network.

    The environment the paper targets is one of "continual partial
    operation": hosts, links and gateways fail independently and
    partitions are the norm, not the exception (§1).  This module gives a
    simulation direct control over exactly that — which hosts can talk —
    plus two communication primitives:

    - {b datagrams}: unreliable, asynchronous, queued until {!pump}; used
      for Ficus update notifications ("asynchronous multicast datagram",
      §2.5).  Dropped silently across partitions or by the configured
      loss rate.
    - {b RPC}: synchronous request/response; used by the simulated NFS.
      Fails with [EUNREACHABLE] across a partition — the caller sees the
      same thing as an RPC timeout.

    Payloads are an extensible variant: each protocol (NFS, Ficus
    notifications…) declares its own constructors and hosts may register
    several handlers; a handler ignores payloads it does not recognize. *)

type host_id = int

type payload = ..

type t

val create : ?seed:int -> ?datagram_loss:float -> Clock.t -> t
(** [datagram_loss] (default 0.0) is the probability, from a seeded PRNG,
    that any given datagram is silently dropped even without a
    partition. *)

val clock : t -> Clock.t
val counters : t -> Counters.t
(** ["net.datagrams.sent"], ["net.datagrams.delivered"],
    ["net.datagrams.dropped"], ["net.rpc.calls"], ["net.rpc.failed"]. *)

val add_host : t -> string -> host_id
val host_name : t -> host_id -> string
val hosts : t -> host_id list

(** {1 Partitions} *)

val set_partition : t -> host_id list list -> unit
(** Divide the network into the given groups; hosts in different groups
    cannot exchange any traffic.  Hosts not mentioned keep their current
    group only if it still exists, otherwise each becomes isolated.
    Simplest usage: list every host exactly once. *)

val heal : t -> unit
(** Put every host back into one group. *)

val isolate : t -> host_id -> unit
(** Cut one host off from everyone else. *)

val reachable : t -> host_id -> host_id -> bool
(** Hosts can always reach themselves. *)

(** {1 Datagrams} *)

val send : t -> src:host_id -> dst:host_id -> payload -> unit
(** Queue a datagram.  Reachability is checked at {e delivery} time, so a
    partition that forms after [send] still loses the message. *)

val broadcast : t -> src:host_id -> dst:host_id list -> payload -> unit
(** The multicast notification primitive: one {!send} per destination. *)

val register_handler : t -> host_id -> (src:host_id -> payload -> unit) -> unit
(** Datagram receivers; every handler on the destination host sees every
    delivered datagram and ignores payloads it does not recognize. *)

val pump : t -> int
(** Deliver every queued datagram (dropping unreachable/lost ones);
    returns the number delivered.  Handlers may queue more datagrams;
    those wait for the next pump. *)

val pending : t -> int

(** {1 RPC} *)

val register_rpc : t -> host_id -> (src:host_id -> payload -> payload option) -> unit
(** RPC servers; the first handler returning [Some response] wins. *)

val call : t -> src:host_id -> dst:host_id -> payload -> (payload, Errno.t) result
(** Synchronous call; [EUNREACHABLE] across a partition, [ENOTSUP] if no
    handler on the destination recognizes the request. *)
