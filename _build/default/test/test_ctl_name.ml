(* The overloaded-lookup encoding (paper §2.3, footnote 2). *)

open Util

let test_roundtrip () =
  let cases =
    [
      ("open", [ "@00000001.00000002"; "rw" ]);
      ("getvv", [ "." ]);
      ("resolve", [ "a name with spaces" ]);
      ("x", [ "arg#with#hashes"; "arg%with%percents" ]);
      ("noargs", []);
    ]
  in
  List.iter
    (fun (op, args) ->
      let name = ok (Ctl_name.encode ~op ~args) in
      Alcotest.(check bool) "recognized" true (Ctl_name.is_ctl name);
      match Ctl_name.decode name with
      | None -> Alcotest.fail "decode failed"
      | Some (op', args') ->
        Alcotest.(check string) "op" op op';
        Alcotest.(check (list string)) "args" args args')
    cases

let test_plain_names_not_ctl () =
  List.iter
    (fun name ->
      Alcotest.(check bool) name false (Ctl_name.is_ctl name);
      Alcotest.(check bool) "no decode" true (Ctl_name.decode name = None))
    [ "README"; ".hidden"; ".#fic"; "#ficus#x"; "" ]

let test_name_length_limit () =
  (* Footnote 2: encoding reduces the usable component length to ~200. *)
  let long_arg = String.make 300 'a' in
  expect_err Errno.ENAMETOOLONG (Ctl_name.encode ~op:"open" ~args:[ long_arg ]);
  let fine = String.make 200 'a' in
  let name = ok (Ctl_name.encode ~op:"open" ~args:[ fine ]) in
  Alcotest.(check bool) "within component limit" true
    (String.length name <= Ctl_name.max_component)

let test_escape_roundtrip () =
  let s = "we#ird%stri#ng%%" in
  Alcotest.(check string) "roundtrip" s (Option.get (Ctl_name.unescape (Ctl_name.escape s)));
  Alcotest.(check bool) "no separators survive" true
    (not (String.contains (Ctl_name.escape s) '#'))

let test_unescape_rejects_truncated () =
  Alcotest.(check bool) "truncated escape" true (Ctl_name.unescape "abc%2" = None)

let suite =
  [
    case "encode/decode roundtrip" test_roundtrip;
    case "plain names are not control names" test_plain_names_not_ctl;
    case "component length limit (footnote 2)" test_name_length_limit;
    case "escape roundtrip" test_escape_roundtrip;
    case "unescape rejects truncated input" test_unescape_rejects_truncated;
  ]
