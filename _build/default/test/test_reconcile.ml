(* The reconciliation protocol: subtree walks, delete/update conflicts,
   orphan preservation, tombstone GC end-to-end. *)

open Util

let test_subtree_reconciles_nested_changes () =
  let cluster = Cluster.create ~nhosts:2 ~datagram_loss:1.0 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (Namei.mkdir_p ~root:root0 "a/b") in
  create_file root0 "a/b/deep" "nested";
  create_file root0 "top" "shallow";
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "deep file" "nested" (read_file root1 "a/b/deep");
  Alcotest.(check string) "top file" "shallow" (read_file root1 "top")

let test_delete_update_conflict_orphans_contents () =
  (* One partition removes a directory; the other adds to it.  The
     tombstone wins, but the new content is preserved in the orphanage
     and the conflict reported. *)
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (root0.Vnode.mkdir "shared") in
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  create_file root1 "shared/precious" "do not lose me";
  ok (root0.Vnode.rmdir "shared");
  Cluster.heal cluster;
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:20 ()) in
  (* The directory is gone everywhere... *)
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (root1.Vnode.lookup "shared"));
  (* ...but host1 preserved the contents and reported the conflict. *)
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let orphaned =
    List.exists
      (fun e ->
        match e.Conflict_log.detail with
        | Conflict_log.Removed_while_updated _ -> true
        | _ -> false)
      (Conflict_log.all (Physical.conflicts phys1))
  in
  Alcotest.(check bool) "orphan conflict reported" true orphaned

let test_rename_rename_conflict_keeps_both_names () =
  (* The same directory renamed differently in two partitions: after
     reconciliation the directory has both names (paper §2.5 fn.3). *)
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let d = ok (root0.Vnode.mkdir "original") in
  ignore d;
  create_file root0 "original/inside" "kept";
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  ok (root0.Vnode.rename "original" root0 "name-at-0");
  ok (root1.Vnode.rename "original" root1 "name-at-1");
  Cluster.heal cluster;
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:20 ()) in
  let names root =
    ok (root.Vnode.readdir ()) |> List.map (fun e -> e.Vnode.entry_name) |> List.sort compare
  in
  let n0 = names root0 and n1 = names root1 in
  Alcotest.(check (list string)) "same view everywhere" n0 n1;
  Alcotest.(check (list string)) "both names retained" [ "name-at-0"; "name-at-1" ] n0;
  (* Both names reach the same directory contents. *)
  Alcotest.(check string) "via name-at-0" "kept" (read_file root0 "name-at-0/inside");
  Alcotest.(check string) "via name-at-1" "kept" (read_file root0 "name-at-1/inside")

let test_tombstones_gced_after_full_rounds () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "doomed" "x";
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  ok (root0.Vnode.remove "doomed");
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:20 ()) in
  (* After enough rounds, no tombstone remains on either replica. *)
  List.iter
    (fun i ->
      let phys = Option.get (Cluster.replica (Cluster.host cluster i) vref) in
      let fdir = ok (Physical.fetch_dir phys []) in
      Alcotest.(check int)
        (Printf.sprintf "no tombstones at host%d" i)
        0
        (List.length fdir.Fdir.entries))
    [ 0; 1 ]

let test_no_lost_updates_under_churn () =
  (* Interleave updates, partitions and reconciliations; at the end every
     surviving file's latest write must be present somewhere and, after
     convergence, everywhere. *)
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let roots = List.map (fun i -> ok (Cluster.logical_root cluster i vref)) [ 0; 1; 2 ] in
  let root0 = List.nth roots 0 in
  List.iteri (fun i _ -> create_file root0 (Printf.sprintf "file%d" i) "init") roots;
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  (* Disjoint updates in a 3-way partition (different files per host, so
     no conflicts). *)
  Cluster.partition cluster [ [ 0 ]; [ 1 ]; [ 2 ] ];
  List.iteri (fun i root -> write_file root (Printf.sprintf "file%d" i) (Printf.sprintf "by%d" i)) roots;
  Cluster.heal cluster;
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:20 ()) in
  List.iteri
    (fun reader root ->
      List.iteri
        (fun i _ ->
          Alcotest.(check string)
            (Printf.sprintf "host%d sees file%d" reader i)
            (Printf.sprintf "by%d" i)
            (read_file root (Printf.sprintf "file%d" i)))
        roots)
    roots

let test_resolve_conflict_invalid_kind_rejected () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let entry =
    Conflict_log.report (Physical.conflicts phys0) ~vref ~fidpath:[] ~fid:Ids.root_fid
      ~owner_uid:0 ~detected_at:0
      (Conflict_log.Name_collision { name = "x"; births = [] })
  in
  expect_err Errno.EINVAL (Reconcile.resolve_file_conflict ~local:phys0 entry ~keep:`Local)

let test_conflict_superseded_everywhere_after_resolution () =
  (* Resolving a conflict at one replica must clear the pending report at
     the other replica too, once the dominating resolution propagates. *)
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "doc" "base";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  write_file root0 "doc" "A";
  write_file root1 "doc" "B";
  Cluster.heal cluster;
  let (_ : Reconcile.stats) = ok (Cluster.reconcile_ring cluster vref) in
  let phys i = Option.get (Cluster.replica (Cluster.host cluster i) vref) in
  let pending i = List.length (Conflict_log.pending (Physical.conflicts (phys i))) in
  Alcotest.(check bool) "both sides reported" true (pending 0 = 1 && pending 1 = 1);
  (* Resolve at host0; converge; host1's report must close by itself. *)
  let entry = List.hd (Conflict_log.pending (Physical.conflicts (phys 0))) in
  ok (Reconcile.resolve_file_conflict ~local:(phys 0) entry ~keep:(`Merged "AB"));
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = ok (Cluster.converge cluster vref ~max_rounds:20 ()) in
  Alcotest.(check int) "host0 clear" 0 (pending 0);
  Alcotest.(check int) "host1 superseded" 0 (pending 1);
  Alcotest.(check string) "content everywhere" "AB" (read_file root1 "doc")

let suite =
  [
    case "subtree reconciles nested changes" test_subtree_reconciles_nested_changes;
    case "conflict superseded everywhere after resolution"
      test_conflict_superseded_everywhere_after_resolution;
    case "delete/update conflict preserves orphans"
      test_delete_update_conflict_orphans_contents;
    case "rename/rename keeps both names" test_rename_rename_conflict_keeps_both_names;
    case "tombstones GCed after full rounds" test_tombstones_gced_after_full_rounds;
    case "no lost updates under churn" test_no_lost_updates_under_churn;
    case "resolve rejects non-file conflicts" test_resolve_conflict_invalid_kind_rejected;
  ]
