(* The stackable vnode framework: null layers, pathname walking,
   counters, and the UFS vnode export. *)

open Util

let ufs_root () =
  let _, fs = fresh_ufs () in
  Ufs_vnode.root fs

let test_not_supported_defaults () =
  let v = Vnode.not_supported Vnode.No_data in
  expect_err Errno.ENOTSUP (Result.map (fun _ -> ()) (v.Vnode.getattr ()));
  expect_err Errno.ENOTSUP (Result.map (fun _ -> ()) (v.Vnode.lookup "x"));
  expect_err Errno.ENOTSUP (v.Vnode.write ~off:0 "x")

let test_ufs_vnode_roundtrip () =
  let root = ufs_root () in
  let f = ok (root.Vnode.create "file") in
  ok (f.Vnode.write ~off:0 "via vnodes");
  Alcotest.(check string) "read" "via vnodes" (ok (Vnode.read_all f));
  let attrs = ok (f.Vnode.getattr ()) in
  Alcotest.(check bool) "regular" true (attrs.Vnode.kind = Vnode.VREG);
  Alcotest.(check int) "size" 10 attrs.Vnode.size

let test_write_all_truncates () =
  let root = ufs_root () in
  let f = ok (root.Vnode.create "f") in
  ok (Vnode.write_all f "a long first version");
  ok (Vnode.write_all f "short");
  Alcotest.(check string) "replaced" "short" (ok (Vnode.read_all f))

let test_null_layer_transparent () =
  let root = ufs_root () in
  let wrapped = Null_layer.wrap_depth 4 root in
  let d = ok (wrapped.Vnode.mkdir "dir") in
  let f = ok (d.Vnode.create "file") in
  ok (f.Vnode.write ~off:0 "through 4 layers");
  (* Visible through the unwrapped stack too. *)
  Alcotest.(check string) "contents" "through 4 layers" (read_file root "dir/file")

let test_null_layer_counts_crossings () =
  let counters = Counters.create () in
  let root = Null_layer.wrap ~counters (ufs_root ()) in
  let _ = ok (root.Vnode.getattr ()) in
  let _ = ok (root.Vnode.readdir ()) in
  Alcotest.(check int) "two crossings" 2 (Counters.get counters "layer.crossings")

let test_null_layer_rename_unwraps_sibling () =
  let root = ufs_root () in
  let wrapped = Null_layer.wrap root in
  let d1 = ok (wrapped.Vnode.mkdir "d1") in
  let d2 = ok (wrapped.Vnode.mkdir "d2") in
  let _ = ok (d1.Vnode.create "f") in
  ok (d1.Vnode.rename "f" d2 "g");
  Alcotest.(check string) "moved" "" (read_file root "d2/g");
  (* A sibling from a different layer is rejected, not misinterpreted. *)
  expect_err Errno.EXDEV (d1.Vnode.rename "x" root "y")

let test_namei_walk () =
  let root = ufs_root () in
  let _ = ok (Namei.mkdir_p ~root "a/b/c") in
  create_file root "a/b/c/leaf" "found";
  Alcotest.(check string) "walk" "found" (read_file root "/a//b/c/leaf");
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (Namei.walk ~root "a/zz"));
  let parent, name = ok (Namei.walk_parent ~root "a/b/c/leaf") in
  Alcotest.(check string) "final" "leaf" name;
  let _ = ok (parent.Vnode.lookup "leaf") in
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (Namei.walk_parent ~root "/"))

let test_namei_mkdir_p_idempotent () =
  let root = ufs_root () in
  let _ = ok (Namei.mkdir_p ~root "x/y") in
  let _ = ok (Namei.mkdir_p ~root "x/y/z") in
  create_file root "x/y/z/f" "v";
  expect_err Errno.ENOTDIR (Result.map (fun _ -> ()) (Namei.mkdir_p ~root "x/y/z/f/deeper"))

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.add c "a" 4;
  Counters.incr c "b";
  Alcotest.(check int) "a" 5 (Counters.get c "a");
  Alcotest.(check int) "missing" 0 (Counters.get c "zz");
  Alcotest.(check (list (pair string int))) "snapshot" [ ("a", 5); ("b", 1) ] (Counters.snapshot c);
  let before = Counters.snapshot c in
  Counters.add c "a" 2;
  Alcotest.(check (list (pair string int))) "diff" [ ("a", 2) ]
    (Counters.diff ~before ~after:(Counters.snapshot c));
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.get c "a")

let suite =
  [
    case "not_supported defaults" test_not_supported_defaults;
    case "UFS vnode roundtrip" test_ufs_vnode_roundtrip;
    case "write_all truncates" test_write_all_truncates;
    case "null layer is transparent" test_null_layer_transparent;
    case "null layer counts crossings" test_null_layer_counts_crossings;
    case "null layer rename unwraps siblings" test_null_layer_rename_unwraps_sibling;
    case "namei walk" test_namei_walk;
    case "namei mkdir_p idempotent" test_namei_mkdir_p_idempotent;
    case "counters" test_counters;
  ]
