(* Ficus directory files: OR-set merge, collision repair, tombstone GC. *)

open Util
module Vv = Version_vector

let fid i = { Ids.issuer = 1; uniq = i }
let birth rid seq = { Fdir.b_rid = rid; b_seq = seq }

let add d ~rid ~name ~f ~b =
  ok (Fdir.add d ~rid ~name ~fid:f ~kind:Aux_attrs.Freg ~birth:b)

let live_names d = Fdir.live d |> List.map fst |> List.sort compare

let test_add_and_lookup () =
  let d = add (Fdir.empty 1) ~rid:1 ~name:"a" ~f:(fid 2) ~b:(birth 1 2) in
  Alcotest.(check (list string)) "names" [ "a" ] (live_names d);
  let e = Option.get (Fdir.find_live d "a") in
  Alcotest.(check bool) "fid" true (Ids.fid_equal e.Fdir.fid (fid 2));
  Alcotest.(check bool) "by fid" true (Fdir.find_by_fid d (fid 2) <> None);
  Alcotest.(check int) "vv bumped" 1 (Vv.get d.Fdir.vv 1)

let test_add_duplicate_name_rejected () =
  let d = add (Fdir.empty 1) ~rid:1 ~name:"a" ~f:(fid 2) ~b:(birth 1 2) in
  expect_err Errno.EEXIST
    (Fdir.add d ~rid:1 ~name:"a" ~fid:(fid 3) ~kind:Aux_attrs.Freg ~birth:(birth 1 3))

let test_add_invalid_names_rejected () =
  let d = Fdir.empty 1 in
  List.iter
    (fun name ->
      expect_err Errno.EINVAL
        (Fdir.add d ~rid:1 ~name ~fid:(fid 2) ~kind:Aux_attrs.Freg ~birth:(birth 1 2)))
    [ ""; "a/b"; "@handle"; ".#ficus#open"; String.make 201 'x' ]

let test_kill_makes_tombstone () =
  let d = add (Fdir.empty 1) ~rid:1 ~name:"a" ~f:(fid 2) ~b:(birth 1 2) in
  let d = ok (Fdir.kill d ~rid:1 (birth 1 2)) in
  Alcotest.(check (list string)) "gone from live view" [] (live_names d);
  Alcotest.(check int) "tombstone retained" 1 (List.length d.Fdir.entries);
  expect_err Errno.ENOENT (Fdir.kill d ~rid:1 (birth 1 2))

let test_insert_insert_merge () =
  let base = Fdir.empty 1 in
  let at1 = add base ~rid:1 ~name:"x" ~f:{ Ids.issuer = 1; uniq = 5 } ~b:(birth 1 5) in
  let at2 = add base ~rid:2 ~name:"y" ~f:{ Ids.issuer = 2; uniq = 5 } ~b:(birth 2 5) in
  let r = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] at1 at2 in
  Alcotest.(check (list string)) "union" [ "x"; "y" ] (live_names r.Fdir.merged);
  Alcotest.(check int) "one materialize" 1
    (List.length
       (List.filter (function Fdir.Materialize _ -> true | _ -> false) r.Fdir.actions))

let test_delete_wins_over_live () =
  let d = add (Fdir.empty 1) ~rid:1 ~name:"a" ~f:(fid 2) ~b:(birth 1 2) in
  (* Replica 2 saw the entry and killed it. *)
  let at2 = ok (Fdir.kill d ~rid:2 (birth 1 2)) in
  let r = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] d at2 in
  Alcotest.(check (list string)) "deleted" [] (live_names r.Fdir.merged);
  Alcotest.(check int) "one unmaterialize" 1
    (List.length
       (List.filter (function Fdir.Unmaterialize _ -> true | _ -> false) r.Fdir.actions))

let test_merge_idempotent () =
  let d = add (Fdir.empty 1) ~rid:1 ~name:"a" ~f:(fid 2) ~b:(birth 1 2) in
  let r1 = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] d d in
  Alcotest.(check (list string)) "same live view" (live_names d) (live_names r1.Fdir.merged);
  let r2 = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] r1.Fdir.merged d in
  Alcotest.(check (list string)) "still same" (live_names d) (live_names r2.Fdir.merged)

let test_merge_symmetric_convergence () =
  let base = Fdir.empty 1 in
  let at1 = add base ~rid:1 ~name:"x" ~f:{ Ids.issuer = 1; uniq = 5 } ~b:(birth 1 5) in
  let at2 = add base ~rid:2 ~name:"y" ~f:{ Ids.issuer = 2; uniq = 5 } ~b:(birth 2 5) in
  let m12 = (Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] at1 at2).Fdir.merged in
  let m21 = (Fdir.merge ~local_rid:2 ~remote_rid:1 ~peers:[ 1; 2 ] at2 at1).Fdir.merged in
  Alcotest.(check (list string)) "same entries" (live_names m12) (live_names m21);
  Alcotest.check vv_testable "same vv" m12.Fdir.vv m21.Fdir.vv

let test_collision_repair_deterministic () =
  let base = Fdir.empty 1 in
  let at1 = add base ~rid:1 ~name:"n" ~f:{ Ids.issuer = 1; uniq = 9 } ~b:(birth 1 9) in
  let at2 = add base ~rid:2 ~name:"n" ~f:{ Ids.issuer = 2; uniq = 3 } ~b:(birth 2 3) in
  let r = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] at1 at2 in
  let names = live_names r.Fdir.merged in
  Alcotest.(check int) "both kept" 2 (List.length names);
  Alcotest.(check bool) "older birth keeps plain name" true (List.mem "n" names);
  Alcotest.(check bool) "younger renamed" true (List.mem "n#2.3" names);
  Alcotest.(check int) "collision reported" 1 (List.length r.Fdir.new_collisions);
  (* The other side computes the identical repaired view. *)
  let r' = Fdir.merge ~local_rid:2 ~remote_rid:1 ~peers:[ 1; 2 ] at2 at1 in
  Alcotest.(check (list string)) "same everywhere" names (live_names r'.Fdir.merged)

let test_collision_suffix_avoids_existing_name () =
  let base = Fdir.empty 1 in
  (* A user file already holds the repair name "n#2.3". *)
  let at1 = add base ~rid:1 ~name:"n#2.3" ~f:{ Ids.issuer = 1; uniq = 8 } ~b:(birth 1 8) in
  let at1 = add at1 ~rid:1 ~name:"n" ~f:{ Ids.issuer = 1; uniq = 9 } ~b:(birth 1 9) in
  let at2 = add base ~rid:2 ~name:"n" ~f:{ Ids.issuer = 2; uniq = 3 } ~b:(birth 2 3) in
  let r = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] at1 at2 in
  let names = live_names r.Fdir.merged in
  Alcotest.(check int) "all three kept" 3 (List.length names);
  Alcotest.(check bool) "extended suffix used" true (List.mem "n#2.3#" names)

let test_mixed_kind_name_collision () =
  (* A file and a directory created under one name in different
     partitions: both survive, deterministically disambiguated. *)
  let base = Fdir.empty 1 in
  let at1 = add base ~rid:1 ~name:"thing" ~f:{ Ids.issuer = 1; uniq = 4 } ~b:(birth 1 4) in
  let at2 =
    ok
      (Fdir.add base ~rid:2 ~name:"thing" ~fid:{ Ids.issuer = 2; uniq = 4 }
         ~kind:Aux_attrs.Fdir ~birth:(birth 2 4))
  in
  let r = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] at1 at2 in
  let live = Fdir.live r.Fdir.merged in
  Alcotest.(check int) "both kept" 2 (List.length live);
  let kinds = List.map (fun (_, e) -> e.Fdir.kind) live |> List.sort_uniq compare in
  Alcotest.(check int) "one of each kind" 2 (List.length kinds)

let test_tombstone_gc_two_replicas () =
  (* Kill at 1; merge to 2; once both replicas' known-vvs cover the death,
     the tombstone is expired on merge. *)
  let d = add (Fdir.empty 1) ~rid:1 ~name:"a" ~f:(fid 2) ~b:(birth 1 2) in
  let at2 = (Fdir.merge ~local_rid:2 ~remote_rid:1 ~peers:[ 1; 2 ] (Fdir.empty 2) d).Fdir.merged in
  let d = ok (Fdir.kill d ~rid:1 (birth 1 2)) in
  (* 2 pulls from 1: sees the tombstone, applies the deletion. *)
  let at2 = (Fdir.merge ~local_rid:2 ~remote_rid:1 ~peers:[ 1; 2 ] at2 d).Fdir.merged in
  Alcotest.(check (list string)) "deleted at 2" [] (live_names at2);
  (* 1 pulls from 2: learns that 2 has seen the deletion -> GC fires. *)
  let r1 = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2 ] d at2 in
  Alcotest.(check int) "tombstone expired at 1" 0 (List.length r1.Fdir.merged.Fdir.entries);
  (* 2 pulls from 1 again: GC fires there too, and the entry must NOT
     resurrect. *)
  let r2 = Fdir.merge ~local_rid:2 ~remote_rid:1 ~peers:[ 1; 2 ] at2 r1.Fdir.merged in
  Alcotest.(check int) "expired at 2" 0 (List.length r2.Fdir.merged.Fdir.entries);
  Alcotest.(check (list string)) "still deleted" [] (live_names r2.Fdir.merged)

let test_tombstone_not_gced_before_all_peers_know () =
  let d = add (Fdir.empty 1) ~rid:1 ~name:"a" ~f:(fid 2) ~b:(birth 1 2) in
  let d = ok (Fdir.kill d ~rid:1 (birth 1 2)) in
  (* Three peers; only 2 has merged.  The tombstone must survive at both
     1 and 2 because 3 has not seen the deletion. *)
  let at2 = (Fdir.merge ~local_rid:2 ~remote_rid:1 ~peers:[ 1; 2; 3 ] (Fdir.empty 2) d).Fdir.merged in
  Alcotest.(check int) "tombstone survives at 2" 1 (List.length at2.Fdir.entries);
  let r1 = Fdir.merge ~local_rid:1 ~remote_rid:2 ~peers:[ 1; 2; 3 ] d at2 in
  Alcotest.(check int) "tombstone survives at 1" 1 (List.length r1.Fdir.merged.Fdir.entries)

let test_codec_roundtrip () =
  let d = add (Fdir.empty 1) ~rid:1 ~name:"plain" ~f:(fid 2) ~b:(birth 1 2) in
  let d = add d ~rid:1 ~name:"with space & weird%chars#" ~f:(fid 3) ~b:(birth 1 3) in
  let d = ok (Fdir.kill d ~rid:1 (birth 1 2)) in
  match Fdir.decode (Fdir.encode d) with
  | None -> Alcotest.fail "decode failed"
  | Some d' ->
    Alcotest.(check (list string)) "live view" (live_names d) (live_names d');
    Alcotest.check vv_testable "vv" d.Fdir.vv d'.Fdir.vv;
    Alcotest.(check int) "entry count" (List.length d.Fdir.entries) (List.length d'.Fdir.entries)

let test_decode_rejects_garbage () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Fdir.decode s = None))
    [ "E"; "E name"; "X whatever"; "V notavv"; "E n 00000001.00000001 1.2 reg Q" ]

let suite =
  [
    case "add and lookup" test_add_and_lookup;
    case "duplicate name rejected" test_add_duplicate_name_rejected;
    case "invalid names rejected" test_add_invalid_names_rejected;
    case "kill leaves a tombstone" test_kill_makes_tombstone;
    case "insert/insert merge" test_insert_insert_merge;
    case "delete wins over live" test_delete_wins_over_live;
    case "merge idempotent" test_merge_idempotent;
    case "merge symmetric convergence" test_merge_symmetric_convergence;
    case "collision repair deterministic" test_collision_repair_deterministic;
    case "collision suffix avoids existing names" test_collision_suffix_avoids_existing_name;
    case "mixed-kind name collision" test_mixed_kind_name_collision;
    case "tombstone GC after both replicas know" test_tombstone_gc_two_replicas;
    case "tombstone survives until all peers know" test_tombstone_not_gced_before_all_peers_know;
    case "encode/decode roundtrip" test_codec_roundtrip;
    case "decode rejects garbage" test_decode_rejects_garbage;
  ]
