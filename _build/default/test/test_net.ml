(* The simulated network: clock, partitions, datagram semantics, RPC. *)

open Util

type Sim_net.payload += Ping of int | Pong of int

let setup () =
  let clock = Clock.create () in
  let net = Sim_net.create clock in
  let a = Sim_net.add_host net "a" in
  let b = Sim_net.add_host net "b" in
  let c = Sim_net.add_host net "c" in
  (clock, net, a, b, c)

let test_clock () =
  let clock = Clock.create ~start:5 () in
  Alcotest.(check int) "start" 5 (Clock.now clock);
  Clock.advance clock 10;
  Clock.tick clock;
  Alcotest.(check int) "advanced" 16 (Clock.now clock);
  Alcotest.(check int) "fn" 16 (Clock.fn clock ());
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance") (fun () ->
      Clock.advance clock (-1))

let test_datagram_delivery () =
  let _, net, a, b, _ = setup () in
  let received = ref [] in
  Sim_net.register_handler net b (fun ~src payload ->
      match payload with Ping n -> received := (src, n) :: !received | _ -> ());
  Sim_net.send net ~src:a ~dst:b (Ping 1);
  Sim_net.send net ~src:a ~dst:b (Ping 2);
  Alcotest.(check int) "queued" 2 (Sim_net.pending net);
  Alcotest.(check (list (pair int int))) "not yet delivered" [] !received;
  Alcotest.(check int) "pumped" 2 (Sim_net.pump net);
  Alcotest.(check (list (pair int int))) "in order" [ (a, 2); (a, 1) ] !received

let test_partition_drops_datagrams () =
  let _, net, a, b, c = setup () in
  let count = ref 0 in
  List.iter
    (fun h -> Sim_net.register_handler net h (fun ~src:_ _ -> incr count))
    [ b; c ];
  Sim_net.set_partition net [ [ a; b ]; [ c ] ];
  Sim_net.broadcast net ~src:a ~dst:[ b; c ] (Ping 9);
  let delivered = Sim_net.pump net in
  Alcotest.(check int) "only the same-side host" 1 delivered;
  Alcotest.(check int) "handler fired once" 1 !count;
  (* Reachability is evaluated at delivery time: a message sent while
     connected still dies if the partition forms first. *)
  Sim_net.heal net;
  Sim_net.send net ~src:a ~dst:c (Ping 10);
  Sim_net.set_partition net [ [ a ]; [ b; c ] ];
  Alcotest.(check int) "cut before the pump" 0 (Sim_net.pump net)

let test_datagram_loss () =
  let clock = Clock.create () in
  let net = Sim_net.create ~seed:3 ~datagram_loss:1.0 clock in
  let a = Sim_net.add_host net "a" in
  let b = Sim_net.add_host net "b" in
  let hits = ref 0 in
  Sim_net.register_handler net b (fun ~src:_ _ -> incr hits);
  for _ = 1 to 10 do
    Sim_net.send net ~src:a ~dst:b (Ping 0)
  done;
  Alcotest.(check int) "all lost" 0 (Sim_net.pump net);
  Alcotest.(check int) "none seen" 0 !hits;
  Alcotest.(check int) "counted as dropped" 10
    (Counters.get (Sim_net.counters net) "net.datagrams.dropped")

let test_isolate_and_heal () =
  let _, net, a, b, c = setup () in
  Sim_net.isolate net b;
  Alcotest.(check bool) "a-c fine" true (Sim_net.reachable net a c);
  Alcotest.(check bool) "a-b cut" false (Sim_net.reachable net a b);
  Alcotest.(check bool) "self always" true (Sim_net.reachable net b b);
  Sim_net.heal net;
  Alcotest.(check bool) "healed" true (Sim_net.reachable net a b)

let test_unlisted_hosts_become_isolated () =
  let _, net, a, b, c = setup () in
  Sim_net.set_partition net [ [ a; b ] ];
  Alcotest.(check bool) "c cut from a" false (Sim_net.reachable net a c);
  Alcotest.(check bool) "c cut from b" false (Sim_net.reachable net b c)

let test_rpc_roundtrip_and_errors () =
  let _, net, a, b, _ = setup () in
  Sim_net.register_rpc net b (fun ~src:_ payload ->
      match payload with Ping n -> Some (Pong (n + 1)) | _ -> None);
  (match Sim_net.call net ~src:a ~dst:b (Ping 41) with
   | Ok (Pong 42) -> ()
   | Ok _ -> Alcotest.fail "wrong response"
   | Error e -> Alcotest.failf "rpc failed: %s" (Errno.to_string e));
  (* No matching handler. *)
  (match Sim_net.call net ~src:a ~dst:b (Pong 0) with
   | Error Errno.ENOTSUP -> ()
   | Ok _ | Error _ -> Alcotest.fail "expected ENOTSUP");
  (* Across a partition. *)
  Sim_net.set_partition net [ [ a ]; [ b ] ];
  match Sim_net.call net ~src:a ~dst:b (Ping 0) with
  | Error Errno.EUNREACHABLE -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected EUNREACHABLE"

let test_multiple_handlers_first_wins () =
  let _, net, a, b, _ = setup () in
  Sim_net.register_rpc net b (fun ~src:_ -> function Ping 1 -> Some (Pong 100) | _ -> None);
  Sim_net.register_rpc net b (fun ~src:_ -> function Ping _ -> Some (Pong 200) | _ -> None);
  (match Sim_net.call net ~src:a ~dst:b (Ping 1) with
   | Ok (Pong 100) -> ()
   | _ -> Alcotest.fail "first handler should win");
  match Sim_net.call net ~src:a ~dst:b (Ping 2) with
  | Ok (Pong 200) -> ()
  | _ -> Alcotest.fail "second handler should catch the rest"

let suite =
  [
    case "clock" test_clock;
    case "datagram delivery order" test_datagram_delivery;
    case "partitions drop datagrams at delivery" test_partition_drops_datagrams;
    case "datagram loss" test_datagram_loss;
    case "isolate and heal" test_isolate_and_heal;
    case "unlisted hosts become isolated" test_unlisted_hosts_become_isolated;
    case "rpc roundtrip and errors" test_rpc_roundtrip_and_errors;
    case "multiple rpc handlers" test_multiple_handlers_first_wins;
  ]
