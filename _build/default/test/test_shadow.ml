(* The single-file atomic commit (paper §3.2): a crash mid-install must
   never damage the original version. *)

open Util

let setup () =
  let disk, fs = fresh_ufs () in
  let root = Ufs_vnode.root fs in
  let fid = { Ids.issuer = 1; uniq = 7 } in
  (disk, root, fid)

let test_install_creates () =
  let _, root, fid = setup () in
  ok (Shadow.install ~dir:root fid ~data:"fresh contents");
  Alcotest.(check string) "created" "fresh contents" (read_file root (Ids.fid_to_hex fid))

let test_install_replaces_atomically () =
  let _, root, fid = setup () in
  ok (Shadow.install ~dir:root fid ~data:"version 1");
  ok (Shadow.install ~dir:root fid ~data:"version 2 is longer");
  Alcotest.(check string) "replaced" "version 2 is longer"
    (read_file root (Ids.fid_to_hex fid));
  (* No shadow leftover after a clean install. *)
  expect_err Errno.ENOENT
    (Result.map (fun _ -> ()) (root.Vnode.lookup (Shadow.shadow_name fid)))

let test_crash_mid_install_preserves_original () =
  let disk, root, fid = setup () in
  ok (Shadow.install ~dir:root fid ~data:"the original");
  (* Let a handful of writes through (shadow creation + some data), then
     fail the device: the commit rename never happens. *)
  Disk.fail_writes_after disk 3;
  (match Shadow.install ~dir:root fid ~data:"the replacement" with
   | Ok () -> Alcotest.fail "install should have failed"
   | Error Errno.EIO -> ()
   | Error e -> Alcotest.failf "unexpected error %s" (Errno.to_string e));
  Disk.clear_failures disk;
  Alcotest.(check string) "original intact" "the original"
    (read_file root (Ids.fid_to_hex fid));
  (* Recovery discards the leftover shadow and a retry succeeds. *)
  Shadow.recover ~dir:root fid;
  expect_err Errno.ENOENT
    (Result.map (fun _ -> ()) (root.Vnode.lookup (Shadow.shadow_name fid)));
  ok (Shadow.install ~dir:root fid ~data:"the replacement");
  Alcotest.(check string) "retry wins" "the replacement"
    (read_file root (Ids.fid_to_hex fid))

let test_crash_at_every_write_preserves_original () =
  (* Sweep the failure point across the whole install: at no point may
     the original be lost or corrupted. *)
  let attempts = ref 0 in
  let survived = ref 0 in
  let fail_at n =
    let disk, root, fid = setup () in
    ok (Shadow.install ~dir:root fid ~data:"precious");
    Disk.fail_writes_after disk n;
    (match Shadow.install ~dir:root fid ~data:"replacement" with
     | Ok () ->
       Disk.clear_failures disk;
       (* Install completed before the injected failure: replacement is
          fine too. *)
       let data = read_file root (Ids.fid_to_hex fid) in
       if data = "replacement" then incr survived
     | Error _ ->
       Disk.clear_failures disk;
       (* The install failed: the file must hold ONE complete version —
          the original if the commit write never landed, the replacement
          if only post-commit cleanup failed.  Never a torn mixture. *)
       let data = read_file root (Ids.fid_to_hex fid) in
       if data = "precious" || data = "replacement" then incr survived
       else Alcotest.failf "torn contents after failing at write %d: %S" n data);
    incr attempts
  in
  for n = 0 to 12 do
    fail_at n
  done;
  Alcotest.(check int) "all sweep points safe" !attempts !survived

let test_reuses_leftover_shadow () =
  let _, root, fid = setup () in
  ok (Shadow.install ~dir:root fid ~data:"v1");
  let leftover = ok (root.Vnode.create (Shadow.shadow_name fid)) in
  ok (leftover.Vnode.write ~off:0 "stale partial data from a crash");
  ok (Shadow.install ~dir:root fid ~data:"v2");
  Alcotest.(check string) "clean contents" "v2" (read_file root (Ids.fid_to_hex fid))

let suite =
  [
    case "install creates" test_install_creates;
    case "install replaces atomically" test_install_replaces_atomically;
    case "crash mid-install preserves original" test_crash_mid_install_preserves_original;
    case "crash sweep: original always safe" test_crash_at_every_write_preserves_original;
    case "reuses a leftover shadow" test_reuses_leftover_shadow;
  ]
