test/test_fdir.ml: Alcotest Aux_attrs Errno Fdir Ids List Option String Util Version_vector
