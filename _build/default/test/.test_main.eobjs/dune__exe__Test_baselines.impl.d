test/test_baselines.ml: Alcotest Array Availability Float List Printf Replica_control Util
