test/test_ctl_name.ml: Alcotest Ctl_name Errno List Option String Util
