test/test_physical.ml: Alcotest Aux_attrs Clock Conflict_log Counters Ctl_name Errno Fdir Filename Ids List Namei Notify Option Physical Remote Result Shadow Ufs_vnode Util Version_vector Vnode
