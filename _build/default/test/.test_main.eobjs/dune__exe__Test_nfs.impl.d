test/test_nfs.ml: Alcotest Clock Counters Ctl_name Errno List Nfs_client Nfs_server Result Sim_net Ufs Ufs_vnode Util Vnode
