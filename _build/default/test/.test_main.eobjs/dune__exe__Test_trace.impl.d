test/test_trace.ml: Alcotest Cluster List Printf String Trace_layer Ufs_vnode Util Vnode
