test/test_misc.ml: Alcotest Aux_attrs Conflict_log Errno Ids List Namei New_version_cache Notify Result Ufs_vnode Util Version_vector Vnode Workload
