test/test_logical.ml: Alcotest Cluster Counters Errno List Logical Option Physical Result String Util Vnode
