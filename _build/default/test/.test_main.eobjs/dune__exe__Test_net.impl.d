test/test_net.ml: Alcotest Clock Counters Errno List Sim_net Util
