test/test_layers.ml: Access_layer Alcotest Clock Counters Crypt_layer Errno Fdir Ids List Measure_layer Physical Result Ufs_vnode Util Vnode
