test/test_reconcile.ml: Alcotest Cluster Conflict_log Errno Fdir Ids List Namei Option Physical Printf Reconcile Result Util Vnode
