test/test_shadow.ml: Alcotest Disk Errno Ids Result Shadow Ufs_vnode Util Vnode
