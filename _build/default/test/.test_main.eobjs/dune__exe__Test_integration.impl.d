test/test_integration.ml: Alcotest Cluster Conflict_log Errno Fdir List Option Physical Printf Reconcile Util Vnode
