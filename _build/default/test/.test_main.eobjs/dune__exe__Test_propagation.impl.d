test/test_propagation.ml: Alcotest Cluster Counters Fdir List Namei Option Physical Printf Propagation Util
