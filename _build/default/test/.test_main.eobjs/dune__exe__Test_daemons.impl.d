test/test_daemons.ml: Alcotest Clock Cluster Counters Fdir List Nfs_client Nfs_server Option Physical Printf Recon_daemon Reconcile Sim_net Ufs Ufs_vnode Util Vnode
