test/test_ufs.ml: Alcotest Disk Errno List Printf Result String Ufs Util
