test/test_syscall.ml: Alcotest Cluster Errno Result Syscall Ufs_vnode Util
