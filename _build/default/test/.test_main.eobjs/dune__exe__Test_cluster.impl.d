test/test_cluster.ml: Alcotest Cluster Fdir Ids List Namei Option Physical Reconcile Util Vnode
