test/test_remote.ml: Alcotest Aux_attrs Cluster Errno Fdir Ids List Namei Option Physical Remote Result Util Vnode
