test/test_ids.ml: Alcotest Ids List Option String Util
