test/test_stacking.ml: Alcotest Clock Cluster Counters Disk Errno Ids List Logical Nfs_client Nfs_server Null_layer Option Physical Printf Random Result Sim_net String Ufs Ufs_vnode Util Vnode
