test/test_vnode.ml: Alcotest Counters Errno Namei Null_layer Result Ufs_vnode Util Vnode
