test/util.ml: Alcotest Disk Errno Namei Ufs Version_vector Vnode
