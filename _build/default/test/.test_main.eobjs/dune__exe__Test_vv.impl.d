test/test_vv.ml: Alcotest Fmt List Util Version_vector
