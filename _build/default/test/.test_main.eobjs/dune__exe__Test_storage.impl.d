test/test_storage.ml: Alcotest Block_cache Bytes Clock Disk Errno Result Util
