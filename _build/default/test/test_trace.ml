(* Trace capture and replay: record a workload on one stack, replay it
   bit-for-bit on another. *)

open Util

let ufs_root () =
  let _, fs = fresh_ufs ~blocks:4096 () in
  Ufs_vnode.root fs

let test_capture_basic () =
  let trace = Trace_layer.create () in
  let root = Trace_layer.wrap trace (ufs_root ()) in
  let d = ok (root.Vnode.mkdir "d") in
  let f = ok (d.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "hello");
  let _ = ok (f.Vnode.read ~off:0 ~len:5) in
  let events = Trace_layer.events trace in
  Alcotest.(check int) "four events" 4 (List.length events);
  match events with
  | [ Trace_layer.Mkdir (0, "d", _); Trace_layer.Create (_, "f", fid);
      Trace_layer.Write (fid', 0, 5); Trace_layer.Read (fid'', 0, 5) ] ->
    Alcotest.(check int) "consistent ids" fid fid';
    Alcotest.(check int) "consistent ids 2" fid fid''
  | _ -> Alcotest.fail "unexpected event shapes"

let test_failed_ops_not_recorded () =
  let trace = Trace_layer.create () in
  let root = Trace_layer.wrap trace (ufs_root ()) in
  let _ = root.Vnode.lookup "missing" in
  let _ = root.Vnode.remove "missing" in
  Alcotest.(check int) "nothing recorded" 0 (Trace_layer.length trace)

let test_replay_reproduces_structure () =
  (* Capture a small tree build on one UFS, replay on a fresh one. *)
  let trace = Trace_layer.create () in
  let root = Trace_layer.wrap trace (ufs_root ()) in
  let d = ok (root.Vnode.mkdir "docs") in
  let f = ok (d.Vnode.create "a.txt") in
  ok (f.Vnode.write ~off:0 (String.make 64 'z'));
  let _ = ok (root.Vnode.create "top") in
  ok (d.Vnode.rename "a.txt" d "b.txt");
  let fresh = ufs_root () in
  let stats = Trace_layer.replay fresh (Trace_layer.events trace) in
  Alcotest.(check int) "no failures" 0 stats.Trace_layer.failed;
  (* Structure matches. *)
  let names v = ok (v.Vnode.readdir ()) |> List.map (fun e -> e.Vnode.entry_name) |> List.sort compare in
  Alcotest.(check (list string)) "root" [ "docs"; "top" ] (names fresh);
  let docs = ok (fresh.Vnode.lookup "docs") in
  Alcotest.(check (list string)) "docs" [ "b.txt" ] (names docs);
  let b = ok (docs.Vnode.lookup "b.txt") in
  Alcotest.(check int) "size replayed" 64 (ok (b.Vnode.getattr ())).Vnode.size

let test_replay_against_ficus_stack () =
  (* The point of the tool: a trace captured over a bare UFS replays
     unchanged over the full replicated stack. *)
  let trace = Trace_layer.create () in
  let root = Trace_layer.wrap trace (ufs_root ()) in
  let d = ok (root.Vnode.mkdir "proj") in
  for i = 0 to 4 do
    let f = ok (d.Vnode.create (Printf.sprintf "src%d" i)) in
    ok (f.Vnode.write ~off:0 (String.make 32 'c'))
  done;
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let froot = ok (Cluster.logical_root cluster 0 vref) in
  let stats = Trace_layer.replay froot (Trace_layer.events trace) in
  Alcotest.(check int) "replays cleanly" 0 stats.Trace_layer.failed;
  (* And the replayed activity replicates like any other. *)
  let (_ : int) = Cluster.run_propagation cluster in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check int) "replicated" 32 (String.length (read_file root1 "proj/src3"))

let test_codec_roundtrip () =
  let trace = Trace_layer.create () in
  let root = Trace_layer.wrap trace (ufs_root ()) in
  let d = ok (root.Vnode.mkdir "dir with space") in
  let f = ok (d.Vnode.create "file%weird") in
  ok (f.Vnode.write ~off:3 "abc");
  ok (root.Vnode.link f "hard link");
  let events = Trace_layer.events trace in
  match Trace_layer.decode (Trace_layer.encode events) with
  | None -> Alcotest.fail "decode failed"
  | Some events' ->
    Alcotest.(check int) "same length" (List.length events) (List.length events');
    Alcotest.(check bool) "identical" true (events = events')

let test_replay_failures_counted () =
  let trace = Trace_layer.create () in
  let root = Trace_layer.wrap trace (ufs_root ()) in
  let _ = ok (root.Vnode.create "dup") in
  let fresh = ufs_root () in
  (* Pre-create the same name so the replayed create fails; dependent
     events on the unresolved id count as failures too. *)
  let _ = ok (fresh.Vnode.create "dup") in
  let stats = Trace_layer.replay fresh (Trace_layer.events trace) in
  Alcotest.(check int) "failure counted" 1 stats.Trace_layer.failed

let suite =
  [
    case "capture basic" test_capture_basic;
    case "failed ops not recorded" test_failed_ops_not_recorded;
    case "replay reproduces structure" test_replay_reproduces_structure;
    case "UFS trace replays over Ficus" test_replay_against_ficus_stack;
    case "codec roundtrip" test_codec_roundtrip;
    case "replay failures counted" test_replay_failures_counted;
  ]
