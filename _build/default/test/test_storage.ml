(* Disk simulation and the buffer cache: the I/O accounting that the
   paper's performance numbers are stated in. *)

open Util

let test_disk_read_write () =
  let d = Disk.create ~nblocks:8 ~block_size:64 () in
  let buf = Bytes.make 64 'z' in
  ok (Disk.write d 3 buf);
  Alcotest.(check bytes) "roundtrip" buf (ok (Disk.read d 3));
  Alcotest.(check int) "reads" 1 (Disk.reads d);
  Alcotest.(check int) "writes" 1 (Disk.writes d)

let test_disk_bounds_and_size_checks () =
  let d = Disk.create ~nblocks:4 ~block_size:64 () in
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (Disk.read d 4));
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (Disk.read d (-1)));
  expect_err Errno.EINVAL (Disk.write d 0 (Bytes.make 32 'x'))

let test_disk_returns_private_copies () =
  let d = Disk.create ~nblocks:2 ~block_size:16 () in
  let b = ok (Disk.read d 0) in
  Bytes.fill b 0 16 'X';
  Alcotest.(check bytes) "media unaffected" (Bytes.make 16 '\000') (ok (Disk.read d 0))

let test_write_failure_injection () =
  let d = Disk.create ~nblocks:4 ~block_size:16 () in
  Disk.fail_writes_after d 2;
  ok (Disk.write d 0 (Bytes.make 16 'a'));
  ok (Disk.write d 1 (Bytes.make 16 'b'));
  expect_err Errno.EIO (Disk.write d 2 (Bytes.make 16 'c'));
  Disk.clear_failures d;
  ok (Disk.write d 2 (Bytes.make 16 'c'))

let test_snapshot_restore () =
  let d = Disk.create ~nblocks:2 ~block_size:16 () in
  ok (Disk.write d 0 (Bytes.make 16 'a'));
  let snap = Disk.snapshot d in
  ok (Disk.write d 0 (Bytes.make 16 'b'));
  Disk.restore d snap;
  Alcotest.(check bytes) "restored" (Bytes.make 16 'a') (ok (Disk.read d 0))

let test_cache_hit_avoids_device () =
  let d = Disk.create ~nblocks:8 ~block_size:64 () in
  let c = Block_cache.create ~capacity:4 d in
  let _ = ok (Block_cache.read c 0) in
  let reads_after_miss = Disk.reads d in
  let _ = ok (Block_cache.read c 0) in
  Alcotest.(check int) "no extra device read" reads_after_miss (Disk.reads d);
  Alcotest.(check int) "hits" 1 (Block_cache.hits c);
  Alcotest.(check int) "misses" 1 (Block_cache.misses c)

let test_cache_write_through () =
  let d = Disk.create ~nblocks:8 ~block_size:64 () in
  let c = Block_cache.create ~capacity:4 d in
  ok (Block_cache.write c 1 (Bytes.make 64 'q'));
  Alcotest.(check int) "device write happened" 1 (Disk.writes d);
  (* The cached copy serves reads without touching the device. *)
  let r = Disk.reads d in
  Alcotest.(check bytes) "cached" (Bytes.make 64 'q') (ok (Block_cache.read c 1));
  Alcotest.(check int) "served from cache" r (Disk.reads d)

let test_cache_lru_eviction () =
  let d = Disk.create ~nblocks:8 ~block_size:64 () in
  let c = Block_cache.create ~capacity:2 d in
  let _ = ok (Block_cache.read c 0) in
  let _ = ok (Block_cache.read c 1) in
  let _ = ok (Block_cache.read c 0) in  (* touch 0: 1 becomes LRU *)
  let _ = ok (Block_cache.read c 2) in  (* evicts 1 *)
  Block_cache.reset_stats c;
  let _ = ok (Block_cache.read c 0) in
  Alcotest.(check int) "0 still cached" 1 (Block_cache.hits c);
  let _ = ok (Block_cache.read c 1) in
  Alcotest.(check int) "1 was evicted" 1 (Block_cache.misses c)

let test_cache_invalidate () =
  let d = Disk.create ~nblocks:8 ~block_size:64 () in
  let c = Block_cache.create ~capacity:4 d in
  let _ = ok (Block_cache.read c 0) in
  Block_cache.invalidate c;
  Block_cache.reset_stats c;
  let _ = ok (Block_cache.read c 0) in
  Alcotest.(check int) "cold after invalidate" 1 (Block_cache.misses c)

let test_zero_capacity_disables_caching () =
  let d = Disk.create ~nblocks:8 ~block_size:64 () in
  let c = Block_cache.create ~capacity:0 d in
  let _ = ok (Block_cache.read c 0) in
  let _ = ok (Block_cache.read c 0) in
  Alcotest.(check int) "every access reaches the device" 2 (Disk.reads d)

let test_disk_latency_charging () =
  (* The on_io hook turns I/O counts into simulated time. *)
  let clock = Clock.create () in
  let d =
    Disk.create ~on_io:(fun () -> Clock.advance clock 10) ~nblocks:8 ~block_size:64 ()
  in
  let c = Block_cache.create ~capacity:4 d in
  let _ = ok (Block_cache.read c 0) in
  Alcotest.(check int) "miss costs 10 ticks" 10 (Clock.now clock);
  let _ = ok (Block_cache.read c 0) in
  Alcotest.(check int) "hit costs nothing" 10 (Clock.now clock);
  ok (Block_cache.write c 1 (Bytes.make 64 'x'));
  Alcotest.(check int) "write-through charged" 20 (Clock.now clock)

let suite =
  [
    case "disk read/write" test_disk_read_write;
    case "disk latency charging" test_disk_latency_charging;
    case "disk bounds and size checks" test_disk_bounds_and_size_checks;
    case "disk returns private copies" test_disk_returns_private_copies;
    case "write failure injection" test_write_failure_injection;
    case "snapshot/restore" test_snapshot_restore;
    case "cache hit avoids device" test_cache_hit_avoids_device;
    case "cache write-through" test_cache_write_through;
    case "cache LRU eviction" test_cache_lru_eviction;
    case "cache invalidate" test_cache_invalidate;
    case "zero capacity disables caching" test_zero_capacity_disables_caching;
  ]
