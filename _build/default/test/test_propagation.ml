(* Update notification and the propagation daemon: hints, burst
   collapse, retry/abandon, and the reconciliation backstop under 100%
   notification loss. *)

open Util

let test_notification_drives_propagation () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "pushed";
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  Alcotest.(check int) "nothing pending before delivery" 0 (Propagation.pending prop1);
  let (_ : int) = Cluster.pump cluster in
  Alcotest.(check bool) "hint parked in the cache" true (Propagation.pending prop1 > 0);
  let (_ : int) = Propagation.run_once prop1 in
  let (_ : int) = Cluster.run_propagation cluster in
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let fdir = ok (Physical.fetch_dir phys1 []) in
  let e = Option.get (Fdir.find_live fdir "f") in
  let _, data = ok (Physical.fetch_file phys1 [ e.Fdir.fid ]) in
  Alcotest.(check string) "propagated" "pushed" data

let test_burst_collapses_in_cache () =
  (* Delayed propagation absorbs a burst of updates into one pull
     (paper §3.2: "delayed propagation may reduce the overall
     propagation cost when updates are bursty"). *)
  let cluster = Cluster.create ~nhosts:2 ~propagation_delay:10 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "hot" "v0";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.advance cluster 20;
  let (_ : int) = Cluster.run_propagation cluster in
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  let pulls_before = Counters.get (Propagation.counters prop1) "prop.pull.file" in
  for i = 1 to 10 do
    write_file root0 "hot" (Printf.sprintf "v%d" i)
  done;
  let (_ : int) = Cluster.pump cluster in
  (* All ten notifications arrive before the delay expires: one entry. *)
  Alcotest.(check int) "collapsed to one pending entry" 1 (Propagation.pending prop1);
  Cluster.advance cluster 11;
  let (_ : int) = Cluster.run_propagation cluster in
  let pulls_after = Counters.get (Propagation.counters prop1) "prop.pull.file" in
  Alcotest.(check int) "a single pull" 1 (pulls_after - pulls_before);
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let fdir = ok (Physical.fetch_dir phys1 []) in
  let e = Option.get (Fdir.find_live fdir "hot") in
  let _, data = ok (Physical.fetch_file phys1 [ e.Fdir.fid ]) in
  Alcotest.(check string) "latest version" "v10" data

let test_retry_then_abandon () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  (* Deliver the notification, then cut the link before the pull. *)
  let (_ : int) = Cluster.pump cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let prop1 = Cluster.propagation (Cluster.host cluster 1) in
  for _ = 1 to 10 do
    ignore (Propagation.run_once prop1)
  done;
  Alcotest.(check bool) "retried" true
    (Counters.get (Propagation.counters prop1) "prop.retries" > 0);
  Alcotest.(check bool) "eventually abandoned" true
    (Counters.get (Propagation.counters prop1) "prop.abandoned" > 0);
  Alcotest.(check int) "queue drained" 0 (Propagation.pending prop1)

let test_convergence_with_total_notification_loss () =
  (* Notifications are an optimization only: with every datagram lost,
     reconciliation alone must still converge the replicas. *)
  let cluster = Cluster.create ~nhosts:2 ~datagram_loss:1.0 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "a" "1";
  create_file root0 "b" "2";
  let (_ : int) = Cluster.run_propagation cluster in
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  Alcotest.(check (list string)) "nothing propagated" []
    (Fdir.live (ok (Physical.fetch_dir phys1 [])) |> List.map fst);
  let (_ : int) = ok (Cluster.converge cluster vref ()) in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "a arrived by reconciliation" "1" (read_file root1 "a");
  Alcotest.(check string) "b arrived by reconciliation" "2" (read_file root1 "b")

let test_propagation_of_new_directory_trees () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let _ = ok (Namei.mkdir_p ~root:root0 "deep/nested/tree") in
  create_file root0 "deep/nested/tree/leaf" "found me";
  let (_ : int) = Cluster.run_propagation cluster in
  (* The whole subtree must exist at host1's replica without any
     reconciliation pass. *)
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let rec descend path names =
    match names with
    | [] -> path
    | n :: rest ->
      let fdir = ok (Physical.fetch_dir phys1 path) in
      let e = Option.get (Fdir.find_live fdir n) in
      descend (path @ [ e.Fdir.fid ]) rest
  in
  let leaf_path = descend [] [ "deep"; "nested"; "tree"; "leaf" ] in
  let _, data = ok (Physical.fetch_file phys1 leaf_path) in
  Alcotest.(check string) "leaf content propagated" "found me" data

let test_own_updates_ignored () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  let (_ : int) = Cluster.run_propagation cluster in
  let prop0 = Cluster.propagation (Cluster.host cluster 0) in
  (* host0's own update must not end up in host0's cache. *)
  Alcotest.(check int) "no self-pull pending" 0 (Propagation.pending prop0)

let suite =
  [
    case "notification drives propagation" test_notification_drives_propagation;
    case "burst collapses to one pull" test_burst_collapses_in_cache;
    case "retry then abandon" test_retry_then_abandon;
    case "reconciliation backstop under 100% loss"
      test_convergence_with_total_notification_loss;
    case "new directory trees propagate" test_propagation_of_new_directory_trees;
    case "own updates ignored" test_own_updates_ignored;
  ]
