(* Shared helpers for the test suites. *)

let errno = Alcotest.testable Errno.pp Errno.equal

(* Unwrap a result or fail the test with the error. *)
let ok ?(msg = "unexpected error") = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Errno.to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> Alcotest.check errno "errno" expected e

let vv_testable = Alcotest.testable Version_vector.pp Version_vector.equal

(* A small in-memory UFS for unit tests. *)
let fresh_ufs ?(blocks = 2048) ?(block_size = 1024) ?(cache = 128) () =
  let disk = Disk.create ~nblocks:blocks ~block_size () in
  let counter = ref 0 in
  let now () = incr counter; !counter in
  (disk, ok ~msg:"mkfs" (Ufs.mkfs ~cache_capacity:cache ~now disk))

let read_file root path =
  let v = ok (Namei.walk ~root path) in
  ok (Vnode.read_all v)

let write_file root path data =
  let v = ok (Namei.walk ~root path) in
  ok (Vnode.write_all v data)

let create_file root path data =
  let parent, name = ok (Namei.walk_parent ~root path) in
  let v = ok (parent.Vnode.create name) in
  ok (Vnode.write_all v data)

let case name f = Alcotest.test_case name `Quick f
