(* Replica-control baselines and the availability evaluator (E4). *)

open Util

let up bools = Array.of_list bools

let test_one_copy () =
  let p = Replica_control.One_copy in
  Alcotest.(check bool) "read any" true (Replica_control.can_read p ~up:(up [ false; true ]));
  Alcotest.(check bool) "update any" true
    (Replica_control.can_update p ~up:(up [ false; true ]));
  Alcotest.(check bool) "nothing up" false
    (Replica_control.can_update p ~up:(up [ false; false ]))

let test_primary_copy () =
  let p = Replica_control.Primary_copy in
  Alcotest.(check bool) "read from secondary" true
    (Replica_control.can_read p ~up:(up [ false; true ]));
  Alcotest.(check bool) "no update without primary" false
    (Replica_control.can_update p ~up:(up [ false; true; true ]));
  Alcotest.(check bool) "update at primary" true
    (Replica_control.can_update p ~up:(up [ true; false; false ]))

let test_majority_voting () =
  let p = Replica_control.Majority_voting in
  Alcotest.(check bool) "2 of 3" true (Replica_control.can_update p ~up:(up [ true; true; false ]));
  Alcotest.(check bool) "1 of 3" false (Replica_control.can_read p ~up:(up [ true; false; false ]));
  Alcotest.(check bool) "2 of 4 is not a majority" false
    (Replica_control.can_update p ~up:(up [ true; true; false; false ]))

let ok_or_fail = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_weighted_voting () =
  let p =
    Replica_control.Weighted_voting
      { weights = [| 2; 1; 1 |]; read_quorum = 2; write_quorum = 3 }
  in
  ok_or_fail (Replica_control.validate p ~nreplicas:3);
  (* The weight-2 replica alone satisfies the read quorum. *)
  Alcotest.(check bool) "heavy replica reads alone" true
    (Replica_control.can_read p ~up:(up [ true; false; false ]));
  Alcotest.(check bool) "light replicas together" true
    (Replica_control.can_read p ~up:(up [ false; true; true ]));
  Alcotest.(check bool) "write needs 3 votes" false
    (Replica_control.can_update p ~up:(up [ true; false; false ]));
  Alcotest.(check bool) "heavy + light writes" true
    (Replica_control.can_update p ~up:(up [ true; true; false ]))

let test_validate_rejects_bad_quorums () =
  let bad = Replica_control.Quorum_consensus { read_quorum = 1; write_quorum = 1 } in
  (match Replica_control.validate bad ~nreplicas:3 with
   | Ok () -> Alcotest.fail "should reject r+w <= n"
   | Error _ -> ());
  let bad2 =
    Replica_control.Weighted_voting { weights = [| 1; 1 |]; read_quorum = 2; write_quorum = 1 }
  in
  (match Replica_control.validate bad2 ~nreplicas:2 with
   | Ok () -> Alcotest.fail "should reject 2w <= total"
   | Error _ -> ())

let close_to ?(eps = 0.02) expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "expected %.4f, got %.4f" expected actual

let test_monte_carlo_matches_analytic () =
  let trials = 40_000 in
  let p = 0.8 in
  List.iter
    (fun policy ->
      List.iter
        (fun n ->
          let mc =
            Availability.evaluate ~trials ~nreplicas:n ~model:(Availability.Independent p)
              policy
          in
          (match Availability.analytic_read ~nreplicas:n ~p policy with
           | Some expected -> close_to expected mc.Availability.read_availability
           | None -> ());
          match Availability.analytic_update ~nreplicas:n ~p policy with
          | Some expected -> close_to expected mc.Availability.update_availability
          | None -> ())
        [ 1; 3; 5 ])
    [
      Replica_control.One_copy;
      Replica_control.Primary_copy;
      Replica_control.Majority_voting;
      Replica_control.Quorum_consensus { read_quorum = 2; write_quorum = 2 };
    ]

let test_one_copy_dominates_everything () =
  (* The paper's strict-dominance claim, over both failure models. *)
  let trials = 20_000 in
  let models = [ Availability.Independent 0.7; Availability.Partition_groups 3 ] in
  let rivals n =
    [
      Replica_control.Primary_copy;
      Replica_control.Majority_voting;
      Replica_control.default_weighted ~nreplicas:n;
      Replica_control.Quorum_consensus
        { read_quorum = (n / 2) + 1; write_quorum = (n / 2) + 1 };
    ]
  in
  List.iter
    (fun model ->
      List.iter
        (fun n ->
          let ficus =
            Availability.evaluate ~trials ~nreplicas:n ~model Replica_control.One_copy
          in
          List.iter
            (fun rival ->
              let r = Availability.evaluate ~trials ~nreplicas:n ~model rival in
              Alcotest.(check bool)
                (Printf.sprintf "read: one-copy >= %s (n=%d)" (Replica_control.name rival) n)
                true
                (ficus.Availability.read_availability
                 >= r.Availability.read_availability -. 0.001);
              Alcotest.(check bool)
                (Printf.sprintf "update: one-copy > %s (n=%d)" (Replica_control.name rival) n)
                true
                (ficus.Availability.update_availability
                 > r.Availability.update_availability))
            (rivals n))
        [ 3; 5 ])
    models

let test_binomial_tail () =
  close_to ~eps:1e-9 1.0 (Availability.binomial_tail ~n:3 ~p:0.5 ~k:0);
  close_to ~eps:1e-9 0.125 (Availability.binomial_tail ~n:3 ~p:0.5 ~k:3);
  close_to ~eps:1e-9 0.5 (Availability.binomial_tail ~n:3 ~p:0.5 ~k:2)

let test_deterministic_with_seed () =
  let run () =
    Availability.evaluate ~seed:123 ~trials:1000 ~nreplicas:3
      ~model:(Availability.Partition_groups 2) Replica_control.One_copy
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same result" true (a = b)

let suite =
  [
    case "one-copy availability" test_one_copy;
    case "primary copy" test_primary_copy;
    case "majority voting" test_majority_voting;
    case "weighted voting" test_weighted_voting;
    case "validate rejects bad quorums" test_validate_rejects_bad_quorums;
    case "Monte-Carlo matches closed forms" test_monte_carlo_matches_analytic;
    case "one-copy dominates all baselines" test_one_copy_dominates_everything;
    case "binomial tail" test_binomial_tail;
    case "deterministic with seed" test_deterministic_with_seed;
  ]
