(* End-to-end tests over the full stack: logical layer -> (NFS) ->
   physical layer -> UFS -> disk, on a simulated multi-host cluster. *)

open Util

let two_host_volume () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  (cluster, vref)

let test_write_read_same_host () =
  let cluster, vref = two_host_volume () in
  let root = ok (Cluster.logical_root cluster 0 vref) in
  create_file root "hello.txt" "greetings from host0";
  Alcotest.(check string) "read back" "greetings from host0" (read_file root "hello.txt")

let test_remote_read_through_nfs () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "shared.txt" "payload";
  (* Propagate the update to host1's replica, then read it there. *)
  let (_ : int) = Cluster.run_propagation cluster in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "remote read" "payload" (read_file root1 "shared.txt")

let test_propagation_converges_replicas () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "v1";
  let (_ : int) = Cluster.run_propagation cluster in
  (* host1's own replica must now store the contents. *)
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let fdir = ok (Physical.fetch_dir phys1 []) in
  let entry = Option.get (Fdir.find_live fdir "f") in
  let vi, data = ok (Physical.fetch_file phys1 [ entry.Fdir.fid ]) in
  Alcotest.(check string) "replica contents" "v1" data;
  Alcotest.(check bool) "stored" true vi.Physical.vi_stored

let test_update_during_partition_one_copy_availability () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "doc" "base";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  (* Both sides keep working: updates allowed with any accessible copy. *)
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  write_file root0 "doc" "from host0";
  Alcotest.(check string) "host0 sees its write" "from host0" (read_file root0 "doc");
  Alcotest.(check string) "host1 still reads old" "base" (read_file root1 "doc")

let test_reconcile_after_partition () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "doc" "base";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  write_file root0 "doc" "newer";
  Cluster.heal cluster;
  let (_ : int) = Cluster.converge cluster vref () |> ok in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  Alcotest.(check string) "host1 converged" "newer" (read_file root1 "doc")

let test_conflicting_updates_detected_not_lost () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "doc" "base";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  write_file root0 "doc" "version A";
  write_file root1 "doc" "version B";
  Cluster.heal cluster;
  let (_ : Reconcile.stats) = ok (Cluster.reconcile_ring cluster vref) in
  (* Both physical layers must have detected the concurrent histories;
     neither version is silently overwritten. *)
  let conflicts_somewhere =
    List.exists
      (fun i ->
        match Cluster.replica (Cluster.host cluster i) vref with
        | None -> false
        | Some phys -> Conflict_log.pending (Physical.conflicts phys) <> [])
      [ 0; 1 ]
  in
  Alcotest.(check bool) "conflict reported" true conflicts_somewhere;
  let a = read_file root0 "doc" and b = read_file root1 "doc" in
  Alcotest.(check bool) "no silent loss"
    true
    ((a = "version A" || a = "version B") && (b = "version A" || b = "version B"))

let test_conflict_resolution_propagates () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "doc" "base";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  write_file root0 "doc" "version A";
  write_file root1 "doc" "version B";
  Cluster.heal cluster;
  let (_ : Reconcile.stats) = ok (Cluster.reconcile_ring cluster vref) in
  (* Resolve at whichever replica logged the conflict. *)
  let resolved =
    List.exists
      (fun i ->
        match Cluster.replica (Cluster.host cluster i) vref with
        | None -> false
        | Some phys ->
          (match Conflict_log.pending (Physical.conflicts phys) with
           | [] -> false
           | entry :: _ ->
             ok (Reconcile.resolve_file_conflict ~local:phys entry ~keep:(`Merged "merged AB"));
             true))
      [ 0; 1 ]
  in
  Alcotest.(check bool) "resolved somewhere" true resolved;
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = Cluster.converge cluster vref () |> ok in
  Alcotest.(check string) "host0 merged" "merged AB" (read_file root0 "doc");
  Alcotest.(check string) "host1 merged" "merged AB" (read_file root1 "doc")

let test_directory_updates_merge_automatically () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  create_file root0 "a" "from0";
  create_file root1 "b" "from1";
  Cluster.heal cluster;
  let (_ : int) = Cluster.converge cluster vref () |> ok in
  (* Both names visible on both sides: the insert/insert case repairs
     automatically. *)
  List.iter
    (fun root ->
      let names =
        ok (root.Vnode.readdir ()) |> List.map (fun d -> d.Vnode.entry_name) |> List.sort compare
      in
      Alcotest.(check (list string)) "merged entries" [ "a"; "b" ] names)
    [ root0; root1 ];
  Alcotest.(check string) "a content" "from0" (read_file root1 "a");
  Alcotest.(check string) "b content" "from1" (read_file root0 "b")

let test_remove_propagates () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "victim" "x";
  let (_ : int) = Cluster.run_propagation cluster in
  ok (root0.Vnode.remove "victim");
  let (_ : int) = Cluster.converge cluster vref () |> ok in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  expect_err Errno.ENOENT (root1.Vnode.lookup "victim")

let test_name_collision_repair () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  create_file root0 "same" "zero";
  create_file root1 "same" "one";
  Cluster.heal cluster;
  let (_ : int) = Cluster.converge cluster vref () |> ok in
  (* Both files survive under deterministically repaired names, the same
     on every replica. *)
  let names root =
    ok (root.Vnode.readdir ()) |> List.map (fun d -> d.Vnode.entry_name) |> List.sort compare
  in
  let n0 = names root0 and n1 = names root1 in
  Alcotest.(check (list string)) "same view" n0 n1;
  Alcotest.(check int) "both survive" 2 (List.length n0);
  Alcotest.(check bool) "plain name kept" true (List.mem "same" n0);
  (* Contents agree across replicas under each repaired name. *)
  List.iter
    (fun name ->
      Alcotest.(check string)
        (Printf.sprintf "content of %s" name)
        (read_file root0 name) (read_file root1 name))
    n0

let test_reboot_recovers () =
  let cluster, vref = two_host_volume () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "persist" "survives";
  ok (Cluster.reboot cluster 0);
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  Alcotest.(check string) "after reboot" "survives" (read_file root0 "persist")

let test_three_replicas_converge () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "base" "b";
  let (_ : int) = Cluster.run_propagation cluster in
  Cluster.partition cluster [ [ 0 ]; [ 1 ]; [ 2 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  let root2 = ok (Cluster.logical_root cluster 2 vref) in
  create_file root0 "only0" "0";
  create_file root1 "only1" "1";
  create_file root2 "only2" "2";
  Cluster.heal cluster;
  let (_ : int) = Cluster.converge cluster vref () |> ok in
  List.iter
    (fun root ->
      let names =
        ok (root.Vnode.readdir ()) |> List.map (fun d -> d.Vnode.entry_name) |> List.sort compare
      in
      Alcotest.(check (list string)) "all entries everywhere"
        [ "base"; "only0"; "only1"; "only2" ] names)
    [ root0; root1; root2 ]

let suite =
  [
    case "write/read on one host" test_write_read_same_host;
    case "remote read through NFS" test_remote_read_through_nfs;
    case "propagation converges replicas" test_propagation_converges_replicas;
    case "update during partition (one-copy availability)"
      test_update_during_partition_one_copy_availability;
    case "reconcile after partition" test_reconcile_after_partition;
    case "conflicting updates detected, not lost" test_conflicting_updates_detected_not_lost;
    case "conflict resolution propagates" test_conflict_resolution_propagates;
    case "directory updates merge automatically" test_directory_updates_merge_automatically;
    case "remove propagates" test_remove_propagates;
    case "name collision repaired deterministically" test_name_collision_repair;
    case "reboot recovers" test_reboot_recovers;
    case "three replicas converge" test_three_replicas_converge;
  ]
