(* The logical layer: replica selection, failover, concurrency control,
   autografting and pruning. *)

open Util

let cluster3 () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  (cluster, vref)

let test_failover_to_any_accessible_replica () =
  let cluster, vref = cluster3 () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "v";
  let (_ : int) = Cluster.run_propagation cluster in
  (* Cut host0 off from host1 but keep host2: a client on host0 keeps
     working because one replica (its own, plus host2's) is accessible. *)
  Cluster.partition cluster [ [ 0; 2 ]; [ 1 ] ];
  Alcotest.(check string) "still readable" "v" (read_file root0 "f");
  write_file root0 "f" "updated";
  Alcotest.(check string) "still writable" "updated" (read_file root0 "f")

let test_total_isolation_still_serves_local_replica () =
  let cluster, vref = cluster3 () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "v";
  Cluster.partition cluster [ [ 0 ]; [ 1 ]; [ 2 ] ];
  Alcotest.(check string) "local replica serves" "v" (read_file root0 "f");
  write_file root0 "f" "lonely update";
  Alcotest.(check string) "update accepted" "lonely update" (read_file root0 "f")

let test_client_without_local_replica () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  (* host2 stores nothing; it works purely through NFS. *)
  let root2 = ok (Cluster.logical_root cluster 2 vref) in
  create_file root2 "from2" "remote create";
  Alcotest.(check string) "reads back" "remote create" (read_file root2 "from2");
  (* If every replica becomes unreachable, operations fail cleanly. *)
  Cluster.partition cluster [ [ 2 ]; [ 0; 1 ] ];
  expect_err Errno.EUNREACHABLE (Result.map (fun _ -> ()) (root2.Vnode.readdir ()))

let test_most_recent_selection () =
  (* After divergence, a reader that can see both replicas gets the most
     recent version (the paper's default policy). *)
  let cluster = Cluster.create ~nhosts:3 ~selection:Logical.Most_recent () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "old";
  let (_ : int) = Cluster.run_propagation cluster in
  (* host1 updates while host0 is cut off; host2 can see both. *)
  Cluster.partition cluster [ [ 0 ]; [ 1; 2 ] ];
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  write_file root1 "f" "newest";
  let root2 = ok (Cluster.logical_root cluster 2 vref) in
  Alcotest.(check string) "reads the newest accessible copy" "newest" (read_file root2 "f")

let test_open_close_lock_bookkeeping () =
  let cluster, vref = cluster3 () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  let log = Cluster.logical (Cluster.host cluster 0) in
  let f1 = ok (root0.Vnode.lookup "f") in
  let f2 = ok (root0.Vnode.lookup "f") in
  ok (f1.Vnode.openv Vnode.Read_only);
  ok (f2.Vnode.openv Vnode.Read_only);
  Alcotest.(check int) "lock table" 1 (Logical.open_locks log);
  (* A writer is excluded while readers hold the file. *)
  let f3 = ok (root0.Vnode.lookup "f") in
  expect_err Errno.EAGAIN (f3.Vnode.openv Vnode.Write_only);
  ok (f1.Vnode.closev ());
  ok (f2.Vnode.closev ());
  ok (f3.Vnode.openv Vnode.Write_only);
  (* And a second writer or reader is excluded by the writer. *)
  expect_err Errno.EAGAIN (f1.Vnode.openv Vnode.Read_only);
  ok (f3.Vnode.closev ());
  Alcotest.(check int) "all released" 0 (Logical.open_locks log)

let test_open_reaches_physical_layer_through_nfs () =
  (* The whole point of the overloaded lookup: a remote physical layer
     observes opens even though NFS discards openv. *)
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 1 ]) in
  (* Only host1 stores the volume; host0's logical layer is remote. *)
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  let phys1 = Option.get (Cluster.replica (Cluster.host cluster 1) vref) in
  let before = Counters.get (Physical.counters phys1) "phys.open.ctl" in
  let f = ok (root0.Vnode.lookup "f") in
  ok (f.Vnode.openv Vnode.Read_only);
  Alcotest.(check int) "physical layer saw the open" (before + 1)
    (Counters.get (Physical.counters phys1) "phys.open.ctl");
  Alcotest.(check int) "open accounted" 1 (Physical.open_files phys1);
  ok (f.Vnode.closev ());
  Alcotest.(check int) "close accounted" 0 (Physical.open_files phys1)

let test_autograft_on_path_translation () =
  let cluster = Cluster.create ~nhosts:2 () in
  let parent_vol = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let child_vol = ok (Cluster.create_volume cluster ~on:[ 1 ]) in
  (* Plant a graft point for child_vol inside parent_vol. *)
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) parent_vol) in
  ok
    (Physical.make_graft_point phys0 ~parent:[] ~name:"projects" ~target:child_vol
       ~replicas:[ (1, "host1") ]);
  (* Put a file inside the child volume. *)
  let child_root = ok (Cluster.logical_root cluster 1 child_vol) in
  create_file child_root "readme" "inside the grafted volume";
  (* A client on host0 walks across the graft point without ever naming
     the child volume. *)
  let root0 = ok (Cluster.logical_root cluster 0 parent_vol) in
  let log0 = Cluster.logical (Cluster.host cluster 0) in
  Alcotest.(check int) "nothing autografted yet" 0
    (Counters.get (Logical.counters log0) "logical.autograft");
  Alcotest.(check string) "transparent crossing" "inside the grafted volume"
    (read_file root0 "projects/readme");
  Alcotest.(check int) "one autograft" 1
    (Counters.get (Logical.counters log0) "logical.autograft");
  (* A second walk reuses the existing graft. *)
  Alcotest.(check string) "again" "inside the grafted volume"
    (read_file root0 "projects/readme");
  Alcotest.(check int) "still one autograft" 1
    (Counters.get (Logical.counters log0) "logical.autograft")

let test_graft_pruning () =
  let cluster = Cluster.create ~nhosts:2 () in
  let parent_vol = ok (Cluster.create_volume cluster ~on:[ 0 ]) in
  let child_vol = ok (Cluster.create_volume cluster ~on:[ 1 ]) in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) parent_vol) in
  ok
    (Physical.make_graft_point phys0 ~parent:[] ~name:"g" ~target:child_vol
       ~replicas:[ (1, "host1") ]);
  let child_root = ok (Cluster.logical_root cluster 1 child_vol) in
  create_file child_root "f" "x";
  let root0 = ok (Cluster.logical_root cluster 0 parent_vol) in
  let log0 = Cluster.logical (Cluster.host cluster 0) in
  Alcotest.(check string) "crossing grafts" "x" (read_file root0 "g/f");
  let grafted_before = List.length (Logical.grafted log0) in
  (* Not yet idle: nothing pruned. *)
  Alcotest.(check int) "too fresh to prune" 0 (Logical.prune_grafts log0 ~idle:100);
  Cluster.advance cluster 200;
  Alcotest.(check int) "pruned when idle" 1 (Logical.prune_grafts log0 ~idle:100);
  Alcotest.(check int) "one fewer graft" (grafted_before - 1)
    (List.length (Logical.grafted log0));
  (* The explicit graft of the parent volume survives pruning... *)
  Alcotest.(check string) "re-grafts on demand" "x" (read_file root0 "g/f")

let test_reset_connections_recovers () =
  let cluster, vref = cluster3 () in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "v";
  let log0 = Cluster.logical (Cluster.host cluster 0) in
  Logical.reset_connections log0;
  Alcotest.(check string) "reconnects lazily" "v" (read_file root0 "f")

let test_cross_volume_rename_rejected () =
  let cluster = Cluster.create ~nhosts:2 () in
  let v1 = ok (Cluster.create_volume cluster ~on:[ 0 ]) in
  let v2 = ok (Cluster.create_volume cluster ~on:[ 1 ]) in
  let r1 = ok (Cluster.logical_root cluster 0 v1) in
  let r2 = ok (Cluster.logical_root cluster 0 v2) in
  create_file r1 "f" "x";
  (* Directory references do not cross volume boundaries (paper §4.1). *)
  expect_err Errno.EXDEV (r1.Vnode.rename "f" r2 "f");
  let f = ok (r1.Vnode.lookup "f") in
  expect_err Errno.EXDEV (r2.Vnode.link f "alias")

let test_reserved_names_not_creatable () =
  let cluster = Cluster.create ~nhosts:1 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0 ]) in
  let root = ok (Cluster.logical_root cluster 0 vref) in
  (* Handle-shaped and control-prefixed names are reserved by the layer
     protocol and must be rejected as user file names. *)
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (root.Vnode.create "@00000001.00000002"));
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (root.Vnode.create ".#ficus#open#."));
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (root.Vnode.mkdir "a/b"));
  expect_err Errno.EINVAL
    (Result.map (fun _ -> ()) (root.Vnode.create (String.make 201 'x')))

let test_lock_released_even_if_remote_close_fails () =
  (* The concurrency-control bookkeeping is local; a partition at close
     time must not wedge the lock. *)
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 1 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "f" "x";
  let f = ok (root0.Vnode.lookup "f") in
  ok (f.Vnode.openv Vnode.Write_only);
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  ok (f.Vnode.closev ());
  Cluster.heal cluster;
  let log0 = Cluster.logical (Cluster.host cluster 0) in
  Alcotest.(check int) "lock released" 0 (Logical.open_locks log0);
  ok (f.Vnode.openv Vnode.Write_only);
  ok (f.Vnode.closev ())

let suite =
  [
    case "failover to any accessible replica" test_failover_to_any_accessible_replica;
    case "cross-volume rename/link rejected" test_cross_volume_rename_rejected;
    case "reserved names not creatable" test_reserved_names_not_creatable;
    case "lock released despite partition at close" test_lock_released_even_if_remote_close_fails;
    case "total isolation still serves local replica"
      test_total_isolation_still_serves_local_replica;
    case "client without local replica" test_client_without_local_replica;
    case "most-recent selection" test_most_recent_selection;
    case "open/close lock bookkeeping" test_open_close_lock_bookkeeping;
    case "open reaches physical layer through NFS"
      test_open_reaches_physical_layer_through_nfs;
    case "autograft on path translation" test_autograft_on_path_translation;
    case "graft pruning" test_graft_pruning;
    case "reset connections recovers" test_reset_connections_recovers;
  ]
