(* The system-call layer over two very different stacks: a bare UFS and
   the full replicated Ficus stack.  Same code, same behavior. *)

open Util

let over_ufs () =
  let _, fs = fresh_ufs () in
  Syscall.create ~root:(Ufs_vnode.root fs)

let over_ficus () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let root = ok (Cluster.logical_root cluster 0 vref) in
  (cluster, vref, Syscall.create ~root)

let test_open_write_read_close sys =
  let fd = ok (Syscall.openf sys ~create:true "file.txt" Syscall.O_rdwr) in
  ok (Syscall.write sys fd "hello ");
  ok (Syscall.write sys fd "world");
  ok (Syscall.lseek sys fd 0);
  Alcotest.(check string) "sequential read" "hello world" (ok (Syscall.read sys fd 64));
  Alcotest.(check string) "eof" "" (ok (Syscall.read sys fd 64));
  ok (Syscall.close sys fd);
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (Syscall.read sys fd 1))

let test_basic_over_ufs () = test_open_write_read_close (over_ufs ())

let test_basic_over_ficus () =
  let _, _, sys = over_ficus () in
  test_open_write_read_close sys

let test_mode_enforcement () =
  let sys = over_ufs () in
  ok (Syscall.write_file sys "f" "data");
  let ro = ok (Syscall.openf sys "f" Syscall.O_rdonly) in
  expect_err Errno.EINVAL (Syscall.write sys ro "x");
  let wo = ok (Syscall.openf sys "f" Syscall.O_wronly) in
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (Syscall.read sys wo 1));
  ok (Syscall.close sys ro);
  ok (Syscall.close sys wo)

let test_pread_pwrite_do_not_move_offset () =
  let sys = over_ufs () in
  let fd = ok (Syscall.openf sys ~create:true "f" Syscall.O_rdwr) in
  ok (Syscall.write sys fd "0123456789");
  ok (Syscall.lseek sys fd 2);
  Alcotest.(check string) "pread" "45" (ok (Syscall.pread sys fd ~off:4 ~len:2));
  ok (Syscall.pwrite sys fd ~off:0 "XX");
  Alcotest.(check string) "offset unmoved" "23" (ok (Syscall.read sys fd 2));
  ok (Syscall.close sys fd)

let test_trunc_flag () =
  let sys = over_ufs () in
  ok (Syscall.write_file sys "f" "long old contents");
  let fd = ok (Syscall.openf sys ~trunc:true "f" Syscall.O_wronly) in
  ok (Syscall.write sys fd "new");
  ok (Syscall.close sys fd);
  Alcotest.(check string) "truncated" "new" (ok (Syscall.read_file sys "f"))

let test_path_calls () =
  let sys = over_ufs () in
  ok (Syscall.mkdir sys "d");
  ok (Syscall.mkdir sys "d/sub");
  ok (Syscall.write_file sys "d/sub/f" "x");
  Alcotest.(check (list string)) "readdir" [ "sub" ] (ok (Syscall.readdir sys "d"));
  ok (Syscall.rename sys "d/sub/f" "d/f2");
  Alcotest.(check string) "renamed" "x" (ok (Syscall.read_file sys "d/f2"));
  ok (Syscall.link sys "d/f2" "alias");
  Alcotest.(check string) "linked" "x" (ok (Syscall.read_file sys "alias"));
  ok (Syscall.unlink sys "alias");
  ok (Syscall.unlink sys "d/f2");
  ok (Syscall.rmdir sys "d/sub");
  ok (Syscall.rmdir sys "d");
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (Syscall.stat sys "d"))

let test_open_dir_for_write_rejected () =
  let sys = over_ufs () in
  ok (Syscall.mkdir sys "d");
  expect_err Errno.EISDIR (Result.map (fun _ -> ()) (Syscall.openf sys "d" Syscall.O_wronly))

let test_open_engages_ficus_locking () =
  (* openf over the logical layer must engage whole-file concurrency
     control: two writers are excluded. *)
  let _, _, sys = over_ficus () in
  ok (Syscall.write_file sys "shared" "x");
  let w1 = ok (Syscall.openf sys "shared" Syscall.O_wronly) in
  expect_err Errno.EAGAIN (Result.map (fun _ -> ()) (Syscall.openf sys "shared" Syscall.O_wronly));
  ok (Syscall.close sys w1);
  let w2 = ok (Syscall.openf sys "shared" Syscall.O_wronly) in
  ok (Syscall.close sys w2);
  Alcotest.(check int) "table empty" 0 (Syscall.open_fds sys)

let test_replication_through_syscalls () =
  let cluster, vref, sys0 = over_ficus () in
  ok (Syscall.write_file sys0 "doc" "written via syscalls");
  let (_ : int) = Cluster.run_propagation cluster in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  let sys1 = Syscall.create ~root:root1 in
  Alcotest.(check string) "read on the other host" "written via syscalls"
    (ok (Syscall.read_file sys1 "doc"))

let suite =
  [
    case "open/write/read/close over UFS" test_basic_over_ufs;
    case "open/write/read/close over Ficus" test_basic_over_ficus;
    case "mode enforcement" test_mode_enforcement;
    case "pread/pwrite leave offset alone" test_pread_pwrite_do_not_move_offset;
    case "O_TRUNC" test_trunc_flag;
    case "path calls" test_path_calls;
    case "open dir for write rejected" test_open_dir_for_write_rejected;
    case "open engages Ficus locking" test_open_engages_ficus_locking;
    case "replication through syscalls" test_replication_through_syscalls;
  ]
