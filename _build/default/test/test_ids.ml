open Util

let fid = Alcotest.testable Ids.pp_fid Ids.fid_equal

let test_hex_roundtrip () =
  let cases =
    [ Ids.root_fid; { Ids.issuer = 7; uniq = 42 }; { Ids.issuer = 0xffff; uniq = 0xdeadbeef } ]
  in
  List.iter
    (fun f ->
      Alcotest.(check int) "hex length" 17 (String.length (Ids.fid_to_hex f));
      match Ids.fid_of_hex (Ids.fid_to_hex f) with
      | None -> Alcotest.fail "hex decode failed"
      | Some f' -> Alcotest.check fid "roundtrip" f f')
    cases

let test_hex_rejects_malformed () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Ids.fid_of_hex s = None))
    [ ""; "0000000100000001x"; "00000001-00000001"; "zzzzzzzz.00000001"; "short" ]

let test_at_name () =
  let f = { Ids.issuer = 3; uniq = 9 } in
  let name = Ids.fid_to_at_name f in
  Alcotest.(check bool) "starts with @" true (name.[0] = '@');
  Alcotest.check fid "roundtrip" f (Option.get (Ids.fid_of_at_name name));
  Alcotest.(check bool) "plain hex not an at-name" true
    (Ids.fid_of_at_name (Ids.fid_to_hex f) = None)

let test_fidpath () =
  let p = [ { Ids.issuer = 1; uniq = 2 }; { Ids.issuer = 3; uniq = 4 } ] in
  let s = Ids.fidpath_to_string p in
  (match Ids.fidpath_of_string s with
   | None -> Alcotest.fail "fidpath decode failed"
   | Some p' ->
     Alcotest.(check int) "length" 2 (List.length p');
     List.iter2 (fun a b -> Alcotest.check fid "component" a b) p p');
  Alcotest.(check bool) "empty path" true (Ids.fidpath_of_string "" = Some [])

let test_compare_total_order () =
  let a = { Ids.issuer = 1; uniq = 5 } in
  let b = { Ids.issuer = 1; uniq = 6 } in
  let c = { Ids.issuer = 2; uniq = 0 } in
  Alcotest.(check bool) "a < b" true (Ids.fid_compare a b < 0);
  Alcotest.(check bool) "b < c" true (Ids.fid_compare b c < 0);
  Alcotest.(check bool) "a = a" true (Ids.fid_compare a a = 0)

let suite =
  [
    case "hex roundtrip" test_hex_roundtrip;
    case "hex rejects malformed" test_hex_rejects_malformed;
    case "@-name encoding" test_at_name;
    case "fidpath roundtrip" test_fidpath;
    case "fid compare total order" test_compare_total_order;
  ]
