(* The long-running deployment story: daemons alone (notification pump,
   propagation, periodic reconciliation) converge the system — nobody
   calls converge() by hand.  Plus the NFS file-block cache staleness
   the paper complains about (§2.2). *)

open Util

let test_daemons_converge_without_explicit_reconcile () =
  let cluster = Cluster.create ~nhosts:3 ~reconcile_period:50 ~datagram_loss:1.0 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let root0 = ok (Cluster.logical_root cluster 0 vref) in
  create_file root0 "slow-news" "travels anyway";
  (* Every notification is lost; only the periodic reconcilers can move
     the data.  Tick simulated time forward and let them fire. *)
  for _ = 1 to 12 do
    let (_ : int * Reconcile.stats) = Cluster.tick_daemons cluster 25 in
    ()
  done;
  List.iter
    (fun i ->
      let phys = Option.get (Cluster.replica (Cluster.host cluster i) vref) in
      let fdir = ok (Physical.fetch_dir phys []) in
      match Fdir.find_live fdir "slow-news" with
      | None -> Alcotest.failf "host%d never converged" i
      | Some e ->
        let _, data = ok (Physical.fetch_file phys [ e.Fdir.fid ]) in
        Alcotest.(check string) (Printf.sprintf "host%d content" i) "travels anyway" data)
    [ 1; 2 ]

let test_recon_daemon_period_respected () =
  let cluster = Cluster.create ~nhosts:2 ~reconcile_period:100 () in
  let _vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let recon = Cluster.reconciler (Cluster.host cluster 0) in
  Alcotest.(check bool) "not due yet" true (Recon_daemon.tick recon = None);
  Cluster.advance cluster 99;
  Alcotest.(check bool) "still not due" true (Recon_daemon.tick recon = None);
  Cluster.advance cluster 1;
  Alcotest.(check bool) "fires at the period" true (Recon_daemon.tick recon <> None);
  Alcotest.(check bool) "and re-arms" true (Recon_daemon.tick recon = None);
  Alcotest.(check int) "one pass counted" 1
    (Counters.get (Recon_daemon.counters recon) "recon.passes")

let test_recon_daemon_rotates_peers () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let root1 = ok (Cluster.logical_root cluster 1 vref) in
  let root2 = ok (Cluster.logical_root cluster 2 vref) in
  create_file root1 "at1" "1";
  create_file root2 "at2" "2";
  (* host0's daemon alone, with all datagrams delivered nowhere (we never
     pump), must still pick both peers over successive forced passes. *)
  let recon = Cluster.reconciler (Cluster.host cluster 0) in
  let (_ : Reconcile.stats) = Recon_daemon.force recon in
  let (_ : Reconcile.stats) = Recon_daemon.force recon in
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) vref) in
  let names =
    Fdir.live (ok (Physical.fetch_dir phys0 [])) |> List.map fst |> List.sort compare
  in
  Alcotest.(check (list string)) "pulled from both peers" [ "at1"; "at2" ] names;
  Alcotest.(check int) "two pair reconciliations" 2
    (Counters.get (Recon_daemon.counters recon) "recon.pairs")

let test_recon_daemon_survives_unreachable_peer () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = ok (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  ignore vref;
  Cluster.partition cluster [ [ 0 ]; [ 1 ] ];
  let recon = Cluster.reconciler (Cluster.host cluster 0) in
  let stats = Recon_daemon.force recon in
  Alcotest.(check int) "error counted" 1 stats.Reconcile.errors;
  Alcotest.(check int) "counter too" 1
    (Counters.get (Recon_daemon.counters recon) "recon.errors")

(* ---------------- NFS file-block cache ---------------- *)

let nfs_pair ?data_ttl () =
  let clock = Clock.create () in
  let net = Sim_net.create clock in
  let server_id = Sim_net.add_host net "server" in
  let client_id = Sim_net.add_host net "client" in
  let _, fs = fresh_ufs () in
  let server = Nfs_server.create net ~host:server_id in
  Nfs_server.add_export server ~name:"export" (Ufs_vnode.root fs);
  let m = ok (Nfs_client.mount ?data_ttl net ~client:client_id ~server:server_id ~export:"export") in
  (clock, fs, m)

let test_data_cache_serves_stale_reads () =
  let clock, fs, m = nfs_pair ~data_ttl:10 () in
  let root = Nfs_client.root m in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "original");
  Alcotest.(check string) "first read" "original" (ok (f.Vnode.read ~off:0 ~len:8));
  (* Server-side change behind the client's back. *)
  let inum = ok (Ufs.dir_lookup fs (Ufs.root fs) "f") in
  ok (Ufs.write fs inum ~off:0 "CHANGED!");
  Alcotest.(check string) "stale cached read" "original" (ok (f.Vnode.read ~off:0 ~len:8));
  Alcotest.(check int) "served from cache" 1
    (Counters.get (Nfs_client.counters m) "nfs.client.data_hits");
  Clock.advance clock 11;
  Alcotest.(check string) "fresh after TTL" "CHANGED!" (ok (f.Vnode.read ~off:0 ~len:8))

let test_data_cache_own_writes_invalidate () =
  let _, _, m = nfs_pair ~data_ttl:10 () in
  let root = Nfs_client.root m in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "one");
  Alcotest.(check string) "read" "one" (ok (f.Vnode.read ~off:0 ~len:3));
  ok (f.Vnode.write ~off:0 "two");
  Alcotest.(check string) "own write visible" "two" (ok (f.Vnode.read ~off:0 ~len:3))

let test_data_cache_disabled_by_default () =
  let _, fs, m = nfs_pair () in
  let root = Nfs_client.root m in
  let f = ok (root.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "original");
  let _ = ok (f.Vnode.read ~off:0 ~len:8) in
  let inum = ok (Ufs.dir_lookup fs (Ufs.root fs) "f") in
  ok (Ufs.write fs inum ~off:0 "CHANGED!");
  Alcotest.(check string) "always fresh when disabled" "CHANGED!"
    (ok (f.Vnode.read ~off:0 ~len:8))

let suite =
  [
    case "daemons converge without explicit reconcile"
      test_daemons_converge_without_explicit_reconcile;
    case "reconciler period respected" test_recon_daemon_period_respected;
    case "reconciler rotates peers" test_recon_daemon_rotates_peers;
    case "reconciler survives unreachable peer" test_recon_daemon_survives_unreachable_peer;
    case "NFS data cache serves stale reads" test_data_cache_serves_stale_reads;
    case "NFS data cache invalidated by own writes" test_data_cache_own_writes_invalidate;
    case "NFS data cache disabled by default" test_data_cache_disabled_by_default;
  ]
