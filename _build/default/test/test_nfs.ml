(* The simulated NFS: statelessness, the open/close gap, cache staleness,
   stale handles after server restart, partitions. *)

open Util

let setup () =
  let clock = Clock.create () in
  let net = Sim_net.create clock in
  let server_id = Sim_net.add_host net "server" in
  let client_id = Sim_net.add_host net "client" in
  let _, fs = fresh_ufs () in
  let server = Nfs_server.create net ~host:server_id in
  Nfs_server.add_export server ~name:"export" (Ufs_vnode.root fs);
  (clock, net, server, server_id, client_id, fs)

let mount ?attr_ttl ?name_ttl (net, server_id, client_id) =
  ok (Nfs_client.mount ?attr_ttl ?name_ttl net ~client:client_id ~server:server_id ~export:"export")

let test_mount_and_basic_ops () =
  let _, net, _, sid, cid, _ = setup () in
  let m = mount (net, sid, cid) in
  let root = Nfs_client.root m in
  let d = ok (root.Vnode.mkdir "dir") in
  let f = ok (d.Vnode.create "file") in
  ok (f.Vnode.write ~off:0 "over the wire");
  Alcotest.(check string) "read back" "over the wire" (ok (Vnode.read_all f));
  let entries = ok (root.Vnode.readdir ()) in
  Alcotest.(check (list string)) "readdir" [ "dir" ]
    (List.map (fun e -> e.Vnode.entry_name) entries)

let test_unknown_export () =
  let _, net, _, sid, cid, _ = setup () in
  expect_err Errno.ENOENT
    (Result.map (fun _ -> ()) (Nfs_client.mount net ~client:cid ~server:sid ~export:"nope"))

let test_open_close_not_forwarded () =
  (* The defining semantic gap (paper §2.2): a layer above NFS never
     sees open/close. *)
  let _, net, server, sid, cid, _ = setup () in
  let opens = ref 0 in
  let counting =
    let base = Ufs_vnode.root (snd (fresh_ufs ())) in
    { base with Vnode.openv = (fun _ -> incr opens; Ok ()) }
  in
  Nfs_server.add_export server ~name:"export2" counting;
  let m = ok (Nfs_client.mount net ~client:cid ~server:sid ~export:"export2") in
  let root = Nfs_client.root m in
  ok (root.Vnode.openv Vnode.Read_only);
  ok (root.Vnode.closev ());
  Alcotest.(check int) "server never saw the open" 0 !opens;
  Alcotest.(check int) "client dropped both" 2
    (Counters.get (Nfs_client.counters m) "nfs.client.openclose_dropped")

let test_ctl_lookup_passes_through () =
  (* ...but an encoded lookup name travels fine -- the Ficus trick. *)
  let _, net, server, sid, cid, _ = setup () in
  let seen = ref None in
  let base = Ufs_vnode.root (snd (fresh_ufs ())) in
  let spying =
    { base with
      Vnode.lookup =
        (fun name ->
          if Ctl_name.is_ctl name then begin
            seen := Ctl_name.decode name;
            Ok base
          end
          else base.Vnode.lookup name);
    }
  in
  Nfs_server.add_export server ~name:"export2" spying;
  let m = ok (Nfs_client.mount net ~client:cid ~server:sid ~export:"export2") in
  let root = Nfs_client.root m in
  let name = ok (Ctl_name.encode ~op:"open" ~args:[ "."; "rw" ]) in
  let _ = ok (root.Vnode.lookup name) in
  match !seen with
  | Some ("open", [ "."; "rw" ]) -> ()
  | _ -> Alcotest.fail "control request did not reach the lower layer"

let test_attr_cache_staleness_and_expiry () =
  let clock, net, _, sid, cid, fs = setup () in
  let m = mount ~attr_ttl:10 (net, sid, cid) in
  let root = Nfs_client.root m in
  let f = ok (root.Vnode.create "f") in
  let size0 = (ok (f.Vnode.getattr ())).Vnode.size in
  Alcotest.(check int) "empty" 0 size0;
  (* Server-side change behind the client's back. *)
  let inum = ok (Ufs.dir_lookup fs (Ufs.root fs) "f") in
  ok (Ufs.write fs inum ~off:0 "grown");
  Alcotest.(check int) "stale cached size" 0 (ok (f.Vnode.getattr ())).Vnode.size;
  Clock.advance clock 11;
  Alcotest.(check int) "fresh after TTL" 5 (ok (f.Vnode.getattr ())).Vnode.size

let test_name_cache_staleness () =
  let clock, net, _, sid, cid, fs = setup () in
  let m = mount ~name_ttl:10 (net, sid, cid) in
  let root = Nfs_client.root m in
  let _ = ok (root.Vnode.create "old") in
  let _ = ok (root.Vnode.lookup "old") in
  (* Rename behind the client's back: the name cache still resolves the
     old name until the TTL expires. *)
  ok (Ufs.rename fs ~sdir:(Ufs.root fs) ~sname:"old" ~ddir:(Ufs.root fs) ~dname:"new");
  let stale = root.Vnode.lookup "old" in
  Alcotest.(check bool) "stale hit" true (Result.is_ok stale);
  Clock.advance clock 11;
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (root.Vnode.lookup "old"))

let test_write_invalidates_attr_cache () =
  let _, net, _, sid, cid, _ = setup () in
  let m = mount (net, sid, cid) in
  let root = Nfs_client.root m in
  let f = ok (root.Vnode.create "f") in
  let _ = ok (f.Vnode.getattr ()) in
  ok (f.Vnode.write ~off:0 "123456");
  Alcotest.(check int) "own write visible immediately" 6 (ok (f.Vnode.getattr ())).Vnode.size

let test_stale_handles_after_restart () =
  let _, net, server, sid, cid, _ = setup () in
  let m = mount (net, sid, cid) in
  let root = Nfs_client.root m in
  let f = ok (root.Vnode.create "f") in
  Nfs_server.restart server;
  Nfs_client.flush_caches m;
  expect_err Errno.ESTALE (f.Vnode.write ~off:0 "x");
  expect_err Errno.ESTALE (Result.map (fun _ -> ()) (root.Vnode.lookup "f"));
  (* A fresh mount works again. *)
  let m2 = mount (net, sid, cid) in
  let root2 = Nfs_client.root m2 in
  let _ = ok (root2.Vnode.lookup "f") in
  ()

let test_partition_gives_unreachable () =
  let _, net, _, sid, cid, _ = setup () in
  let m = mount (net, sid, cid) in
  let root = Nfs_client.root m in
  Sim_net.set_partition net [ [ sid ]; [ cid ] ];
  expect_err Errno.EUNREACHABLE (Result.map (fun _ -> ()) (root.Vnode.readdir ()));
  (* Cached attributes still answer during the outage. *)
  let _ = ok (root.Vnode.getattr ()) in
  Sim_net.heal net;
  let _ = ok (root.Vnode.readdir ()) in
  ()

let test_rename_and_link_through_nfs () =
  let _, net, _, sid, cid, _ = setup () in
  let m = mount (net, sid, cid) in
  let root = Nfs_client.root m in
  let d1 = ok (root.Vnode.mkdir "d1") in
  let d2 = ok (root.Vnode.mkdir "d2") in
  let f = ok (d1.Vnode.create "f") in
  ok (f.Vnode.write ~off:0 "x");
  ok (d1.Vnode.rename "f" d2 "g");
  Alcotest.(check string) "moved" "x" (read_file root "d2/g");
  let g = ok (d2.Vnode.lookup "g") in
  ok (d1.Vnode.link g "back");
  Alcotest.(check string) "linked" "x" (read_file root "d1/back")

let test_error_mapping_preserved () =
  let _, net, _, sid, cid, _ = setup () in
  let m = mount (net, sid, cid) in
  let root = Nfs_client.root m in
  expect_err Errno.ENOENT (Result.map (fun _ -> ()) (root.Vnode.lookup "missing"));
  let _ = ok (root.Vnode.create "dup") in
  expect_err Errno.EEXIST (Result.map (fun _ -> ()) (root.Vnode.create "dup"));
  let d = ok (root.Vnode.mkdir "d") in
  let _ = ok (d.Vnode.create "inner") in
  expect_err Errno.ENOTEMPTY (root.Vnode.rmdir "d")

let suite =
  [
    case "mount and basic ops" test_mount_and_basic_ops;
    case "unknown export" test_unknown_export;
    case "open/close not forwarded (stateless)" test_open_close_not_forwarded;
    case "encoded lookup passes through" test_ctl_lookup_passes_through;
    case "attribute cache staleness and expiry" test_attr_cache_staleness_and_expiry;
    case "name cache staleness" test_name_cache_staleness;
    case "write invalidates attr cache" test_write_invalidates_attr_cache;
    case "stale handles after server restart" test_stale_handles_after_restart;
    case "partition gives EUNREACHABLE" test_partition_gives_unreachable;
    case "rename and link through NFS" test_rename_and_link_through_nfs;
    case "error mapping preserved" test_error_mapping_preserved;
  ]
