(* Version vector algebra (Parker et al. 1983). *)

open Util
module Vv = Version_vector

let vv = vv_testable

let test_empty () =
  Alcotest.(check int) "get on empty" 0 (Vv.get Vv.empty 3);
  Alcotest.(check int) "sum of empty" 0 (Vv.sum Vv.empty);
  Alcotest.(check (list (pair int int))) "to_list empty" [] (Vv.to_list Vv.empty)

let test_bump_and_get () =
  let v = Vv.bump (Vv.bump (Vv.bump Vv.empty 1) 1) 2 in
  Alcotest.(check int) "r1" 2 (Vv.get v 1);
  Alcotest.(check int) "r2" 1 (Vv.get v 2);
  Alcotest.(check int) "r3" 0 (Vv.get v 3);
  Alcotest.(check int) "sum" 3 (Vv.sum v)

let test_zero_counts_normalized () =
  Alcotest.check vv "explicit zeros vanish" Vv.empty (Vv.of_list [ (1, 0); (5, 0) ]);
  Alcotest.check vv "singleton zero" Vv.empty (Vv.singleton 3 0)

let test_of_list_later_bindings_win () =
  let v = Vv.of_list [ (1, 5); (1, 2) ] in
  Alcotest.(check int) "later wins" 2 (Vv.get v 1)

let test_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Version_vector: negative update count")
    (fun () -> ignore (Vv.singleton 1 (-1)))

let comparison =
  Alcotest.testable
    (fun ppf -> function
      | Vv.Equal -> Fmt.string ppf "Equal"
      | Vv.Dominates -> Fmt.string ppf "Dominates"
      | Vv.Dominated -> Fmt.string ppf "Dominated"
      | Vv.Concurrent -> Fmt.string ppf "Concurrent")
    ( = )

let test_compare_cases () =
  let a = Vv.of_list [ (1, 2); (2, 1) ] in
  let b = Vv.of_list [ (1, 2); (2, 1) ] in
  let c = Vv.of_list [ (1, 3); (2, 1) ] in
  let d = Vv.of_list [ (1, 1); (2, 5) ] in
  Alcotest.check comparison "equal" Vv.Equal (Vv.compare_vv a b);
  Alcotest.check comparison "dominates" Vv.Dominates (Vv.compare_vv c a);
  Alcotest.check comparison "dominated" Vv.Dominated (Vv.compare_vv a c);
  Alcotest.check comparison "concurrent" Vv.Concurrent (Vv.compare_vv c d);
  Alcotest.check comparison "empty vs empty" Vv.Equal (Vv.compare_vv Vv.empty Vv.empty);
  Alcotest.check comparison "any vs empty" Vv.Dominates (Vv.compare_vv a Vv.empty)

let test_merge_is_lub () =
  let a = Vv.of_list [ (1, 3); (2, 1) ] in
  let b = Vv.of_list [ (2, 4); (3, 2) ] in
  let m = Vv.merge a b in
  Alcotest.check vv "pointwise max" (Vv.of_list [ (1, 3); (2, 4); (3, 2) ]) m;
  Alcotest.(check bool) "dominates a" true (Vv.dominates m a);
  Alcotest.(check bool) "dominates b" true (Vv.dominates m b)

let test_concurrent_detection_after_partition () =
  (* The classic scenario: both replicas update independently. *)
  let base = Vv.of_list [ (1, 1) ] in
  let at_1 = Vv.bump base 1 in
  let at_2 = Vv.bump base 2 in
  Alcotest.(check bool) "concurrent" true (Vv.concurrent at_1 at_2);
  (* After replica 1 adopts the merge and updates again, it dominates. *)
  let resolved = Vv.bump (Vv.merge at_1 at_2) 1 in
  Alcotest.(check bool) "resolution dominates 1" true (Vv.dominates resolved at_1);
  Alcotest.(check bool) "resolution dominates 2" true (Vv.dominates resolved at_2)

let test_codec_roundtrip () =
  let cases =
    [ Vv.empty; Vv.singleton 0 1; Vv.of_list [ (1, 2); (7, 9); (42, 1) ] ]
  in
  List.iter
    (fun v ->
      match Vv.decode (Vv.encode v) with
      | None -> Alcotest.fail "decode failed"
      | Some v' -> Alcotest.check vv "roundtrip" v v')
    cases

let test_decode_rejects_garbage () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Vv.decode s = None))
    [ "1:"; "x:1"; "1:-2"; "1:2,,3:4"; "1" ]

let suite =
  [
    case "empty vector" test_empty;
    case "bump and get" test_bump_and_get;
    case "zero counts normalized" test_zero_counts_normalized;
    case "of_list later bindings win" test_of_list_later_bindings_win;
    case "negative counts rejected" test_negative_rejected;
    case "compare: all four cases" test_compare_cases;
    case "merge is least upper bound" test_merge_is_lub;
    case "partition scenario" test_concurrent_detection_after_partition;
    case "encode/decode roundtrip" test_codec_roundtrip;
    case "decode rejects garbage" test_decode_rejects_garbage;
  ]
