(* The UFS substrate: inodes, directories, allocation, fsck. *)

open Util

let fsck fs =
  match Ufs.check fs with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck: %s" msg

let test_mkfs_mount () =
  let disk, fs = fresh_ufs () in
  fsck fs;
  let counter = ref 1000 in
  let now () = incr counter; !counter in
  let fs2 = ok (Ufs.mount ~now disk) in
  let attrs = ok (Ufs.stat fs2 (Ufs.root fs2)) in
  Alcotest.(check bool) "root is a dir" true (attrs.Ufs.kind = Ufs.Dir)

let test_mount_rejects_unformatted () =
  let disk = Disk.create ~nblocks:64 ~block_size:1024 () in
  expect_err Errno.EINVAL (Result.map (fun _ -> ()) (Ufs.mount ~now:(fun () -> 0) disk))

let test_create_write_read () =
  let _, fs = fresh_ufs () in
  let f = ok (Ufs.create fs ~dir:(Ufs.root fs) "file") in
  ok (Ufs.write fs f ~off:0 "hello world");
  Alcotest.(check string) "read" "hello world" (ok (Ufs.read fs f ~off:0 ~len:100));
  Alcotest.(check string) "offset read" "world" (ok (Ufs.read fs f ~off:6 ~len:5));
  Alcotest.(check string) "past eof" "" (ok (Ufs.read fs f ~off:100 ~len:10));
  fsck fs

let test_overwrite_and_extend () =
  let _, fs = fresh_ufs () in
  let f = ok (Ufs.create fs ~dir:(Ufs.root fs) "file") in
  ok (Ufs.write fs f ~off:0 "aaaaaaaaaa");
  ok (Ufs.write fs f ~off:5 "BB");
  Alcotest.(check string) "patched" "aaaaaBBaaa" (ok (Ufs.read fs f ~off:0 ~len:10));
  ok (Ufs.write fs f ~off:20 "tail");
  let s = ok (Ufs.read fs f ~off:0 ~len:24) in
  Alcotest.(check int) "extended size" 24 (String.length s);
  Alcotest.(check string) "gap is zeros" (String.make 10 '\000') (String.sub s 10 10);
  Alcotest.(check string) "tail" "tail" (String.sub s 20 4);
  fsck fs

let test_large_file_spans_indirect_blocks () =
  let _, fs = fresh_ufs ~blocks:4096 () in
  let f = ok (Ufs.create fs ~dir:(Ufs.root fs) "big") in
  (* 1 KiB blocks, 12 direct: write 40 KiB to exercise the indirect
     block. *)
  let chunk = String.make 1024 'x' in
  for i = 0 to 39 do
    ok (Ufs.write fs f ~off:(i * 1024) chunk)
  done;
  let attrs = ok (Ufs.stat fs f) in
  Alcotest.(check int) "size" (40 * 1024) attrs.Ufs.size;
  Alcotest.(check string) "far read" "xxxx" (ok (Ufs.read fs f ~off:(39 * 1024) ~len:4));
  ok (Ufs.truncate fs f 100);
  Alcotest.(check int) "shrunk" 100 (ok (Ufs.stat fs f)).Ufs.size;
  fsck fs

let test_truncate_zeroes_tail () =
  let _, fs = fresh_ufs () in
  let f = ok (Ufs.create fs ~dir:(Ufs.root fs) "file") in
  ok (Ufs.write fs f ~off:0 "abcdefghij");
  ok (Ufs.truncate fs f 4);
  ok (Ufs.truncate fs f 10);
  Alcotest.(check string) "tail re-reads as zeros" ("abcd" ^ String.make 6 '\000')
    (ok (Ufs.read fs f ~off:0 ~len:10));
  fsck fs

let test_mkdir_lookup_entries () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "sub") in
  let f = ok (Ufs.create fs ~dir:d "inner") in
  Alcotest.(check int) "lookup" f (ok (Ufs.dir_lookup fs d "inner"));
  expect_err Errno.ENOENT (Ufs.dir_lookup fs d "nope");
  expect_err Errno.ENOTDIR (Ufs.dir_lookup fs f "x");
  let entries = ok (Ufs.dir_entries fs root) in
  Alcotest.(check (list string)) "root entries" [ "sub" ]
    (List.map (fun (n, _, _) -> n) entries);
  fsck fs

let test_create_existing_rejected () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let _ = ok (Ufs.create fs ~dir:root "x") in
  expect_err Errno.EEXIST (Ufs.create fs ~dir:root "x");
  expect_err Errno.EEXIST (Ufs.mkdir fs ~dir:root "x")

let test_invalid_names_rejected () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  expect_err Errno.EINVAL (Ufs.create fs ~dir:root "");
  expect_err Errno.EINVAL (Ufs.create fs ~dir:root "a/b");
  expect_err Errno.ENAMETOOLONG (Ufs.create fs ~dir:root (String.make 300 'n'))

let test_unlink_frees_space () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let free0 = ok (Ufs.nfree_blocks fs) in
  let f = ok (Ufs.create fs ~dir:root "file") in
  ok (Ufs.write fs f ~off:0 (String.make 4096 'x'));
  Alcotest.(check bool) "blocks consumed" true (ok (Ufs.nfree_blocks fs) < free0);
  ok (Ufs.unlink fs ~dir:root "file");
  Alcotest.(check int) "blocks restored" free0 (ok (Ufs.nfree_blocks fs));
  expect_err Errno.ENOENT (Ufs.dir_lookup fs root "file");
  fsck fs

let test_unlink_respects_links () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let f = ok (Ufs.create fs ~dir:root "a") in
  ok (Ufs.write fs f ~off:0 "shared");
  ok (Ufs.link fs ~dir:root "b" f);
  Alcotest.(check int) "nlink" 2 (ok (Ufs.stat fs f)).Ufs.nlink;
  ok (Ufs.unlink fs ~dir:root "a");
  Alcotest.(check string) "alive via b" "shared" (ok (Ufs.read fs f ~off:0 ~len:6));
  ok (Ufs.unlink fs ~dir:root "b");
  expect_err Errno.ESTALE (Result.map (fun _ -> ()) (Ufs.stat fs f));
  fsck fs

let test_rmdir_rules () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "d") in
  let _ = ok (Ufs.create fs ~dir:d "f") in
  expect_err Errno.ENOTEMPTY (Ufs.rmdir fs ~dir:root "d");
  ok (Ufs.unlink fs ~dir:d "f");
  ok (Ufs.rmdir fs ~dir:root "d");
  expect_err Errno.ENOENT (Ufs.dir_lookup fs root "d");
  fsck fs

let test_dir_hard_links () =
  (* Ficus needs directory links (the namespace is a DAG, paper §2.5). *)
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "d1") in
  ok (Ufs.link fs ~dir:root "d2" d);
  Alcotest.(check int) "nlink 2" 2 (ok (Ufs.stat fs d)).Ufs.nlink;
  let _ = ok (Ufs.create fs ~dir:d "inner") in
  (* Removing one name of a non-empty multi-linked dir is allowed... *)
  ok (Ufs.rmdir fs ~dir:root "d1");
  Alcotest.(check int) "lookup via d2" d (ok (Ufs.dir_lookup fs root "d2"));
  (* ...but removing the last name still requires empty. *)
  expect_err Errno.ENOTEMPTY (Ufs.rmdir fs ~dir:root "d2");
  ok (Ufs.unlink fs ~dir:d "inner");
  ok (Ufs.rmdir fs ~dir:root "d2");
  fsck fs

let test_rename_basic_and_replace () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let d1 = ok (Ufs.mkdir fs ~dir:root "d1") in
  let d2 = ok (Ufs.mkdir fs ~dir:root "d2") in
  let f = ok (Ufs.create fs ~dir:d1 "f") in
  ok (Ufs.write fs f ~off:0 "payload");
  ok (Ufs.rename fs ~sdir:d1 ~sname:"f" ~ddir:d2 ~dname:"g");
  expect_err Errno.ENOENT (Ufs.dir_lookup fs d1 "f");
  Alcotest.(check int) "moved" f (ok (Ufs.dir_lookup fs d2 "g"));
  (* Replace an existing destination. *)
  let g2 = ok (Ufs.create fs ~dir:d2 "h") in
  ok (Ufs.write fs g2 ~off:0 "doomed");
  ok (Ufs.rename fs ~sdir:d2 ~sname:"g" ~ddir:d2 ~dname:"h");
  Alcotest.(check int) "replaced" f (ok (Ufs.dir_lookup fs d2 "h"));
  expect_err Errno.ESTALE (Result.map (fun _ -> ()) (Ufs.stat fs g2));
  fsck fs

let test_rename_same_object_noop () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let f = ok (Ufs.create fs ~dir:root "a") in
  ok (Ufs.link fs ~dir:root "b" f);
  ok (Ufs.rename fs ~sdir:root ~sname:"a" ~ddir:root ~dname:"b");
  (* POSIX: same file under both names -> no-op, both remain. *)
  Alcotest.(check int) "a stays" f (ok (Ufs.dir_lookup fs root "a"));
  Alcotest.(check int) "b stays" f (ok (Ufs.dir_lookup fs root "b"));
  fsck fs

let test_enospc () =
  let _, fs = fresh_ufs ~blocks:96 ~block_size:1024 () in
  let f = ok (Ufs.create fs ~dir:(Ufs.root fs) "hog") in
  let rec fill off =
    match Ufs.write fs f ~off (String.make 1024 'x') with
    | Ok () -> fill (off + 1024)
    | Error e -> e
  in
  Alcotest.check errno "fills up" Errno.ENOSPC (fill 0)

let test_inode_exhaustion () =
  let _, fs = fresh_ufs ~blocks:2048 () in
  let root = Ufs.root fs in
  let rec create i =
    match Ufs.create fs ~dir:root (Printf.sprintf "f%d" i) with
    | Ok _ -> create (i + 1)
    | Error e -> e
  in
  Alcotest.check errno "runs out of inodes" Errno.ENFILE (create 0)

let test_generation_bumped_on_reuse () =
  let _, fs = fresh_ufs () in
  let root = Ufs.root fs in
  let f1 = ok (Ufs.create fs ~dir:root "a") in
  let gen1 = (ok (Ufs.stat fs f1)).Ufs.gen in
  ok (Ufs.unlink fs ~dir:root "a");
  let f2 = ok (Ufs.create fs ~dir:root "b") in
  if f1 = f2 then
    Alcotest.(check bool) "gen bumped" true ((ok (Ufs.stat fs f2)).Ufs.gen > gen1)

let test_persistence_across_mount () =
  let disk, fs = fresh_ufs () in
  let d = ok (Ufs.mkdir fs ~dir:(Ufs.root fs) "keep") in
  let f = ok (Ufs.create fs ~dir:d "data") in
  ok (Ufs.write fs f ~off:0 "durable");
  (* Remount with a cold cache; everything must come from the media. *)
  let fs2 = ok (Ufs.mount ~now:(fun () -> 0) disk) in
  let d' = ok (Ufs.dir_lookup fs2 (Ufs.root fs2) "keep") in
  let f' = ok (Ufs.dir_lookup fs2 d' "data") in
  Alcotest.(check string) "contents survive" "durable" (ok (Ufs.read fs2 f' ~off:0 ~len:7));
  fsck fs2

let test_directory_spanning_blocks () =
  (* ~80 entries x ~23 bytes exceeds one 1 KiB block: directory data must
     parse correctly across block boundaries and keep working after
     deletions shrink it back. *)
  let _, fs = fresh_ufs ~blocks:4096 () in
  let root = Ufs.root fs in
  let d = ok (Ufs.mkdir fs ~dir:root "big") in
  for i = 0 to 79 do
    let _ = ok (Ufs.create fs ~dir:d (Printf.sprintf "entry-%02d-padpadpad" i)) in
    ()
  done;
  Alcotest.(check int) "all present" 80 (List.length (ok (Ufs.dir_entries fs d)));
  Alcotest.(check bool) "dir data spans blocks" true ((ok (Ufs.stat fs d)).Ufs.size > 1024);
  (* Random-access lookups across the boundary. *)
  let _ = ok (Ufs.dir_lookup fs d "entry-00-padpadpad") in
  let _ = ok (Ufs.dir_lookup fs d "entry-79-padpadpad") in
  (* Shrink below one block again. *)
  for i = 0 to 75 do
    ok (Ufs.unlink fs ~dir:d (Printf.sprintf "entry-%02d-padpadpad" i))
  done;
  Alcotest.(check int) "four left" 4 (List.length (ok (Ufs.dir_entries fs d)));
  fsck fs

let test_sparse_file_reads_zeros () =
  let _, fs = fresh_ufs () in
  let f = ok (Ufs.create fs ~dir:(Ufs.root fs) "sparse") in
  ok (Ufs.write fs f ~off:(5 * 1024) "end");
  Alcotest.(check string) "hole is zeros" (String.make 16 '\000')
    (ok (Ufs.read fs f ~off:1024 ~len:16));
  fsck fs

let suite =
  [
    case "mkfs and mount" test_mkfs_mount;
    case "mount rejects unformatted disk" test_mount_rejects_unformatted;
    case "create, write, read" test_create_write_read;
    case "overwrite and extend" test_overwrite_and_extend;
    case "large file uses indirect blocks" test_large_file_spans_indirect_blocks;
    case "truncate zeroes the tail" test_truncate_zeroes_tail;
    case "mkdir, lookup, entries" test_mkdir_lookup_entries;
    case "create existing rejected" test_create_existing_rejected;
    case "invalid names rejected" test_invalid_names_rejected;
    case "unlink frees space" test_unlink_frees_space;
    case "unlink respects hard links" test_unlink_respects_links;
    case "rmdir rules" test_rmdir_rules;
    case "directory hard links (DAG)" test_dir_hard_links;
    case "rename: move and replace" test_rename_basic_and_replace;
    case "rename same object is a no-op" test_rename_same_object_noop;
    case "ENOSPC when full" test_enospc;
    case "ENFILE when inodes exhausted" test_inode_exhaustion;
    case "generation bumped on inode reuse" test_generation_bumped_on_reuse;
    case "persistence across remount" test_persistence_across_mount;
    case "directory spanning blocks" test_directory_spanning_blocks;
    case "sparse files read zeros" test_sparse_file_reads_zeros;
  ]
