(* Volumes and autografting (paper §4): a namespace assembled from three
   volumes on different host sets, crossed transparently during pathname
   translation, surviving replica outages, and pruned when idle.

   Run with:  dune exec examples/volume_grafting.exe *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("volume_grafting failed: " ^ Errno.to_string e)

let () =
  let cluster = Cluster.create ~nhosts:4 () in

  (* Three volumes: a super-volume ("/"), /home and /projects, each
     replicated on a different subset of hosts. *)
  let root_vol = get (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  let home_vol = get (Cluster.create_volume cluster ~on:[ 1; 2 ]) in
  let proj_vol = get (Cluster.create_volume cluster ~on:[ 2; 3 ]) in

  (* Graft points live in the super-volume like ordinary (replicated)
     directories; their entries name the target volume's replicas. *)
  let phys0 = Option.get (Cluster.replica (Cluster.host cluster 0) root_vol) in
  get
    (Physical.make_graft_point phys0 ~parent:[] ~name:"home" ~target:home_vol
       ~replicas:[ (1, "host1"); (2, "host2") ]);
  get
    (Physical.make_graft_point phys0 ~parent:[] ~name:"projects" ~target:proj_vol
       ~replicas:[ (1, "host2"); (2, "host3") ]);

  (* Populate the grafted volumes. *)
  let home = get (Cluster.logical_root cluster 1 home_vol) in
  let alice = get (home.Vnode.mkdir "alice") in
  let profile = get (alice.Vnode.create ".profile") in
  get (Vnode.write_all profile "export EDITOR=ed");
  let proj = get (Cluster.logical_root cluster 2 proj_vol) in
  let ficus = get (proj.Vnode.mkdir "ficus") in
  let readme = get (ficus.Vnode.create "README") in
  get (Vnode.write_all readme "a replicated file system");
  let (_ : int) = Cluster.run_propagation cluster in

  (* host0 only grafted the super-volume; everything below arrives by
     autografting during the walk. *)
  let root = get (Cluster.logical_root cluster 0 root_vol) in
  let log0 = Cluster.logical (Cluster.host cluster 0) in
  let cat path =
    let v = get (Namei.walk ~root path) in
    Printf.printf "  %-28s -> %S\n" path (get (Vnode.read_all v))
  in
  Printf.printf "walking across graft points from host0:\n";
  cat "home/alice/.profile";
  cat "projects/ficus/README";
  Printf.printf "volumes autografted: %d\n"
    (Counters.get (Logical.counters log0) "logical.autograft");
  List.iter
    (fun (vref, replicas) ->
      Printf.printf "  grafted %s at %s\n"
        (Fmt.str "%a" Ids.pp_vref vref)
        (String.concat ", " (List.map (fun (r, h) -> Printf.sprintf "r%d@%s" r h) replicas)))
    (Logical.grafted log0);

  (* One replica of /projects goes down; the graft fails over. *)
  Cluster.partition cluster [ [ 0; 1; 3 ]; [ 2 ] ];
  Printf.printf "host2 unreachable; reading via the other replica:\n";
  cat "projects/ficus/README";
  Cluster.heal cluster;

  (* Idle grafts are quietly pruned (paper §4.4) and return on demand. *)
  Cluster.advance cluster 10_000;
  let pruned = Logical.prune_grafts log0 ~idle:5_000 in
  Printf.printf "pruned %d idle graft(s); walking re-grafts on demand:\n" pruned;
  cat "home/alice/.profile";
  print_endline "volume_grafting OK"
