(* One-copy availability vs. the classical replica-control policies
   (paper §1/§3.1): during a partition Ficus keeps accepting updates at
   every accessible replica, while primary-copy and quorum schemes must
   refuse on the minority side.  This example runs a real partitioned
   workload on the Ficus stack and, side by side, evaluates what each
   classical policy would have allowed.

   Run with:  dune exec examples/optimistic_vs_quorum.exe *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("optimistic_vs_quorum failed: " ^ Errno.to_string e)

let () =
  let cluster = Cluster.create ~nhosts:3 () in
  let vref = get (Cluster.create_volume cluster ~on:[ 0; 1; 2 ]) in
  let roots = List.map (fun i -> get (Cluster.logical_root cluster i vref)) [ 0; 1; 2 ] in
  let root0 = List.nth roots 0 in
  let f = get (root0.Vnode.create "journal") in
  get (Vnode.write_all f "entry 0\n");
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = get (Cluster.converge cluster vref ()) in

  (* A 3-way partition: every host is alone.  For quorum policies, each
     side sees one replica of three. *)
  Cluster.partition cluster [ [ 0 ]; [ 1 ]; [ 2 ] ];
  print_endline "network fully partitioned: each host sees only its own replica";

  (* Ficus: every host appends to its replica. *)
  let appended = ref 0 in
  List.iteri
    (fun i root ->
      let v = get (root.Vnode.lookup "journal") in
      let contents = get (Vnode.read_all v) in
      get (Vnode.write_all v (contents ^ Printf.sprintf "entry from host%d\n" i));
      incr appended)
    roots;
  Printf.printf "Ficus accepted %d/3 partitioned updates (one-copy availability)\n" !appended;

  (* What the classical policies would have allowed in the same state:
     each client can reach exactly 1 of 3 replicas. *)
  let up_for_host i = Array.init 3 (fun r -> r = i) in
  let policies =
    [
      Replica_control.One_copy;
      Replica_control.Primary_copy;
      Replica_control.Majority_voting;
      Replica_control.default_weighted ~nreplicas:3;
      Replica_control.Quorum_consensus { read_quorum = 2; write_quorum = 2 };
    ]
  in
  Printf.printf "%-20s %-24s %-24s\n" "policy" "updates allowed (of 3)" "reads allowed (of 3)";
  List.iter
    (fun p ->
      let count f = List.length (List.filter f [ 0; 1; 2 ]) in
      let updates = count (fun i -> Replica_control.can_update p ~up:(up_for_host i)) in
      let reads = count (fun i -> Replica_control.can_read p ~up:(up_for_host i)) in
      Printf.printf "%-20s %-24d %-24d\n" (Replica_control.name p) updates reads)
    policies;

  (* Heal; reconciliation merges the three concurrent appends — as file
     conflicts, since all three wrote the same file. *)
  Cluster.heal cluster;
  let (_ : int) = get (Cluster.converge cluster vref ~max_rounds:20 ()) in
  let conflicts =
    List.fold_left
      (fun acc i ->
        match Cluster.replica (Cluster.host cluster i) vref with
        | Some phys -> acc + List.length (Conflict_log.pending (Physical.conflicts phys))
        | None -> acc)
      0 [ 0; 1; 2 ]
  in
  Printf.printf "after healing: %d concurrent-update conflicts detected and reported\n" conflicts;
  Printf.printf "(the price of optimism -- and the paper's bet is that this is rare;\n";
  Printf.printf " see `dune exec bench/main.exe e7` for the conflict-rate sweep)\n";
  print_endline "optimistic_vs_quorum OK"
