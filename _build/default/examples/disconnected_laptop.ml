(* The disconnected-laptop scenario that motivates optimistic
   replication: a laptop replica leaves the network, both sides keep
   editing under one-copy availability, and reconciliation on reconnect
   merges the namespaces automatically, detects the one true conflict,
   and the owner resolves it.

   Run with:  dune exec examples/disconnected_laptop.exe *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("disconnected_laptop failed: " ^ Errno.to_string e)

let server = 0
let laptop = 1

let () =
  let cluster = Cluster.create ~nhosts:2 () in
  let vref = get (Cluster.create_volume cluster ~on:[ server; laptop ]) in
  let sroot = get (Cluster.logical_root cluster server vref) in
  let lroot = get (Cluster.logical_root cluster laptop vref) in

  (* Shared starting state. *)
  let paper = get (sroot.Vnode.create "paper.tex") in
  get (Vnode.write_all paper "\\title{Ficus}");
  let _ = get (sroot.Vnode.mkdir "figures") in
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = get (Cluster.converge cluster vref ()) in
  print_endline "shared state replicated to the laptop";

  (* The laptop leaves the network. *)
  Cluster.partition cluster [ [ server ]; [ laptop ] ];
  print_endline "laptop disconnected -- both sides keep working:";

  (* Laptop work: edit the paper, add a figure. *)
  get (Vnode.write_all (get (lroot.Vnode.lookup "paper.tex")) "\\title{Ficus}  % laptop edit");
  let figs_l = get (lroot.Vnode.lookup "figures") in
  let fig = get (figs_l.Vnode.create "stack.eps") in
  get (Vnode.write_all fig "%!PS layered architecture");
  print_endline "  laptop: edited paper.tex, added figures/stack.eps";

  (* Server work: a colleague also edits the paper and adds notes. *)
  get (Vnode.write_all (get (sroot.Vnode.lookup "paper.tex")) "\\title{Ficus}  % office edit");
  let notes = get (sroot.Vnode.create "reviews.txt") in
  get (Vnode.write_all notes "reviewer 2 wants more benchmarks");
  print_endline "  server: edited paper.tex, added reviews.txt";

  (* Reconnect and reconcile. *)
  Cluster.heal cluster;
  let rounds = get (Cluster.converge cluster vref ~max_rounds:20 ()) in
  Printf.printf "reconnected; reconciliation converged in %d round(s)\n" rounds;

  (* The disjoint changes merged automatically... *)
  let show root who =
    let names =
      get (root.Vnode.readdir ()) |> List.map (fun d -> d.Vnode.entry_name) |> List.sort compare
    in
    Printf.printf "  %s sees: %s\n" who (String.concat ", " names)
  in
  show sroot "server";
  show lroot "laptop";

  (* ...and the concurrent edit of paper.tex was detected, not lost. *)
  let phys_s = Option.get (Cluster.replica (Cluster.host cluster server) vref) in
  let phys_l = Option.get (Cluster.replica (Cluster.host cluster laptop) vref) in
  let pending =
    Conflict_log.pending (Physical.conflicts phys_s)
    @ Conflict_log.pending (Physical.conflicts phys_l)
  in
  Printf.printf "conflicts reported to the owner: %d\n" (List.length pending);
  List.iter (fun e -> Printf.printf "  %s\n" (Fmt.str "%a" Conflict_log.pp_entry e)) pending;

  (* The owner resolves by merging both edits; the resolution propagates
     like any other update. *)
  (match pending with
   | [] -> failwith "expected a conflict"
   | entry :: _ ->
     let local =
       if Conflict_log.pending (Physical.conflicts phys_s) <> [] then phys_s else phys_l
     in
     get
       (Reconcile.resolve_file_conflict ~local entry
          ~keep:(`Merged "\\title{Ficus}  % office + laptop edits merged")));
  let (_ : int) = Cluster.run_propagation cluster in
  let (_ : int) = get (Cluster.converge cluster vref ~max_rounds:20 ()) in
  List.iter
    (fun (root, who) ->
      let v = get (root.Vnode.lookup "paper.tex") in
      Printf.printf "%s paper.tex: %S\n" who (get (Vnode.read_all v)))
    [ (sroot, "server"); (lroot, "laptop") ];
  print_endline "disconnected_laptop OK"
