(* Quickstart: the Ficus stack of layers (paper Figure 1), end to end.

   Two hosts each store a replica of one volume.  A client on host0
   writes through its logical layer; update notification and the
   propagation daemon carry the new version to host1's replica; a client
   on host1 reads it back — through logical -> NFS -> physical -> UFS.

   Run with:  dune exec examples/quickstart.exe *)

let get = function
  | Ok v -> v
  | Error e -> failwith ("quickstart failed: " ^ Errno.to_string e)

let () =
  (* A simulated two-host network, each host with its own disk and UFS. *)
  let cluster = Cluster.create ~nhosts:2 () in

  (* One volume, replicated on both hosts (replica 1 on host0, replica 2
     on host1). *)
  let vref = get (Cluster.create_volume cluster ~on:[ 0; 1 ]) in
  Printf.printf "created volume %s with replicas on host0 and host1\n"
    (Fmt.str "%a" Ids.pp_vref vref);

  (* The client-facing root vnode on host0: the logical layer presents a
     single-copy view of the replicated volume. *)
  let root0 = get (Cluster.logical_root cluster 0 vref) in

  (* Ordinary file operations through the vnode interface. *)
  let dir = get (root0.Vnode.mkdir "notes") in
  let file = get (dir.Vnode.create "hello.txt") in
  get (Vnode.write_all file "Hello from host0, via the Ficus logical layer!");
  Printf.printf "host0 wrote notes/hello.txt\n";

  (* The physical layer emitted update notifications; pump the network
     and let host1's propagation daemon pull the new versions in. *)
  let pulls = Cluster.run_propagation cluster in
  Printf.printf "propagation daemons performed %d pulls\n" pulls;

  (* A client on host1 reads through its own logical layer.  Its replica
     already has the data — no cross-host traffic is even needed. *)
  let root1 = get (Cluster.logical_root cluster 1 vref) in
  let v = get (Namei.walk ~root:root1 "notes/hello.txt") in
  Printf.printf "host1 read: %S\n" (get (Vnode.read_all v));

  (* Show the replica version vectors agree. *)
  List.iter
    (fun i ->
      let phys = Option.get (Cluster.replica (Cluster.host cluster i) vref) in
      let fdir = get (Physical.fetch_dir phys []) in
      let notes = Option.get (Fdir.find_live fdir "notes") in
      let sub = get (Physical.fetch_dir phys [ notes.Fdir.fid ]) in
      let hello = Option.get (Fdir.find_live sub "hello.txt") in
      let vi = get (Physical.get_version phys [ notes.Fdir.fid; hello.Fdir.fid ]) in
      Printf.printf "host%d replica version vector: %s\n" i
        (Version_vector.to_string vi.Physical.vi_vv))
    [ 0; 1 ];
  print_endline "quickstart OK"
