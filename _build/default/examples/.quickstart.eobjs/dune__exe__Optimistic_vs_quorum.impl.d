examples/optimistic_vs_quorum.ml: Array Cluster Conflict_log Errno List Physical Printf Replica_control Vnode
