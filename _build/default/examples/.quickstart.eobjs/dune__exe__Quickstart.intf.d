examples/quickstart.mli:
