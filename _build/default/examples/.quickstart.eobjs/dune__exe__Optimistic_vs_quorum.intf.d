examples/optimistic_vs_quorum.mli:
