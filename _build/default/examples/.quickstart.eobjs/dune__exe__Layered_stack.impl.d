examples/layered_stack.ml: Access_layer Clock Counters Crypt_layer Disk Errno Fdir Ids List Logical Measure_layer Namei Physical Printf Syscall Ufs Ufs_vnode Vnode
