examples/quickstart.ml: Cluster Errno Fdir Fmt Ids List Namei Option Physical Printf Version_vector Vnode
