examples/volume_grafting.ml: Cluster Counters Errno Fmt Ids List Logical Namei Option Physical Printf String Vnode
