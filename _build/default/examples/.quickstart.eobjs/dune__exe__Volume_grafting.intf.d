examples/volume_grafting.mli:
