examples/disconnected_laptop.mli:
