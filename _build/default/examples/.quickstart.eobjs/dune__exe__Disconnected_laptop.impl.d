examples/disconnected_laptop.ml: Cluster Conflict_log Errno Fmt List Option Physical Printf Reconcile String Vnode
