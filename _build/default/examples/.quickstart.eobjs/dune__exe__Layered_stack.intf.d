examples/layered_stack.mli:
