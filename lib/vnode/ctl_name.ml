let prefix = ".#ficus#"

let max_component = 255

let is_ctl name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

(* Percent-escape '#' and '%' so arguments can carry arbitrary bytes. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '#' | '%' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Strict hex-digit parsing: [int_of_string_opt "0x.."] would also
   accept underscores ("%_f"), silently decoding malformed sequences. *)
let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else
      match s.[i] with
      | '%' ->
        if i + 2 >= n then None
        else
          (match (hex_digit s.[i + 1], hex_digit s.[i + 2]) with
           | Some hi, Some lo ->
             Buffer.add_char buf (Char.chr ((hi * 16) + lo));
             go (i + 3)
           | _ -> None)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0

let encode ~op ~args =
  let name = prefix ^ String.concat "#" (op :: List.map escape args) in
  if String.length name > max_component then Error Errno.ENAMETOOLONG else Ok name

let decode name =
  if not (is_ctl name) then None
  else
    let body = String.sub name (String.length prefix) (String.length name - String.length prefix) in
    match String.split_on_char '#' body with
    | [] | [""] -> None
    | op :: raw_args ->
      let rec unescape_all acc = function
        | [] -> Some (List.rev acc)
        | a :: rest ->
          (match unescape a with None -> None | Some a -> unescape_all (a :: acc) rest)
      in
      (match unescape_all [] raw_args with
       | None -> None
       | Some args -> Some (op, args))
