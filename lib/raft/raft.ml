(* Deterministic Raft over Sim_net datagrams.  See raft.mli for the
   model; the implementation follows the paper (Ongaro & Ousterhout
   2014, Figure 2) with the usual engineering additions: a leader no-op
   entry on election, conflict-hint back-off for AppendEntries, and
   snapshot-based log compaction.  All randomness comes from a seeded
   per-member PRNG and all time from the simulated clock, so a given
   (seed, schedule) replays identically. *)

let src = Logs.Src.create "raft" ~doc:"Raft consensus"

module Log = (val Logs.src_log src : Logs.LOG)

type role = Follower | Candidate | Leader

let role_to_string = function
  | Follower -> "follower"
  | Candidate -> "candidate"
  | Leader -> "leader"

type entry = { e_term : int; e_index : int; e_cmd : string; e_span : int }

type config = {
  heartbeat : int;
  election_min : int;
  election_max : int;
  snapshot_threshold : int;
}

let default_config =
  { heartbeat = 4; election_min = 12; election_max = 24; snapshot_threshold = 64 }

type persist = { p_save : string -> unit; p_load : unit -> string option }

type t = {
  r_host : string;
  r_id : Sim_net.host_id;
  r_net : Sim_net.t;
  r_clock : Clock.t;
  r_obs : Obs.t;
  r_config : config;
  r_rng : Random.State.t;
  r_peers : string list;  (* the static member list, self included *)
  r_apply : index:int -> string -> unit;
  r_snapshot_fn : unit -> string;
  r_restore : string -> unit;
  r_persist : persist option;
  (* Hard state: survives crashes via [r_persist]. *)
  mutable r_term : int;
  mutable r_voted_for : string option;
  mutable r_log : entry list;  (* post-snapshot suffix, ascending index *)
  mutable r_snap_index : int;
  mutable r_snap_term : int;
  mutable r_snap_data : string;
  (* Volatile state. *)
  mutable r_role : role;
  mutable r_leader : string option;
  mutable r_commit : int;
  mutable r_applied : int;
  mutable r_votes : string list;  (* granted this candidacy *)
  r_next : (string, int) Hashtbl.t;   (* leader: next index per follower *)
  r_match : (string, int) Hashtbl.t;  (* leader: highest replicated index *)
  mutable r_election_deadline : int;
  mutable r_next_heartbeat : int;
  mutable r_stopped : bool;
}

(* Wire protocol: five asynchronous datagram kinds.  Losses, duplicates
   and reordering from the fault layer are all tolerated — stale terms
   are dropped, votes are counted once, appends are idempotent. *)

type Sim_net.payload +=
  | Raft_vote_req of {
      v_term : int;
      v_from : string;
      v_last_index : int;
      v_last_term : int;
    }
  | Raft_vote_rsp of { v_term : int; v_from : string; v_granted : bool }
  | Raft_append of {
      a_term : int;
      a_from : string;
      a_prev_index : int;
      a_prev_term : int;
      a_entries : entry list;
      a_commit : int;
    }
  | Raft_append_rsp of {
      a_term : int;
      a_from : string;
      a_ok : bool;
      a_match : int;
          (* on success the highest index known replicated; on failure a
             back-off hint: the follower's best guess at where its log
             still agrees *)
    }
  | Raft_snap of {
      s_term : int;
      s_from : string;
      s_index : int;
      s_last_term : int;
      s_data : string;
    }
  | Raft_snap_rsp of { s_term : int; s_from : string; s_match : int }

let now t = Clock.now t.r_clock
let metrics t = t.r_obs.Obs.metrics
let spans t = t.r_obs.Obs.spans

let host t = t.r_host
let config t = t.r_config
let role t = t.r_role
let term t = t.r_term
let leader_hint t = t.r_leader
let commit_index t = t.r_commit
let last_applied t = t.r_applied
let snapshot_index t = t.r_snap_index
let stopped t = t.r_stopped

let majority t = (List.length t.r_peers / 2) + 1
let others t = List.filter (fun p -> not (String.equal p t.r_host)) t.r_peers

let last_index t =
  let rec go = function
    | [] -> t.r_snap_index
    | [ e ] -> e.e_index
    | _ :: rest -> go rest
  in
  go t.r_log

let term_at t i =
  if i = t.r_snap_index then Some t.r_snap_term
  else if i = 0 then Some 0
  else
    List.find_opt (fun e -> e.e_index = i) t.r_log
    |> Option.map (fun e -> e.e_term)

let last_term t = Option.value (term_at t (last_index t)) ~default:0

let log_view t = List.map (fun e -> (e.e_index, e.e_term)) t.r_log

(* ------------------------------------------------------------------ *)
(* Persistence: term, vote, snapshot and log encoded into one string,
   written through the caller's closure before any message that depends
   on them is sent.  Length-prefixed strings keep opaque commands (and
   the snapshot blob) safe to embed. *)

let encode_hard t =
  let b = Buffer.create 256 in
  let str s = Printf.bprintf b "%d:%s" (String.length s) s in
  Printf.bprintf b "raft1 %d " t.r_term;
  str (Option.value t.r_voted_for ~default:"");
  Printf.bprintf b " %d %d " t.r_snap_index t.r_snap_term;
  str t.r_snap_data;
  Printf.bprintf b " %d" (List.length t.r_log);
  List.iter
    (fun e ->
      Printf.bprintf b " %d %d %d " e.e_term e.e_index e.e_span;
      str e.e_cmd)
    t.r_log;
  Buffer.contents b

let decode_hard s =
  let pos = ref 0 in
  let fail () = failwith "Raft: corrupt persisted state" in
  let expect c =
    if !pos >= String.length s || s.[!pos] <> c then fail ();
    incr pos
  in
  let int () =
    let start = !pos in
    if !pos < String.length s && s.[!pos] = '-' then incr pos;
    while !pos < String.length s && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail ();
    int_of_string (String.sub s start (!pos - start))
  in
  let str () =
    let n = int () in
    expect ':';
    if n < 0 || !pos + n > String.length s then fail ();
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  if String.length s < 6 || not (String.equal (String.sub s 0 6) "raft1 ") then
    fail ();
  pos := 6;
  let term = int () in
  expect ' ';
  let voted = str () in
  expect ' ';
  let snap_index = int () in
  expect ' ';
  let snap_term = int () in
  expect ' ';
  let snap_data = str () in
  expect ' ';
  let n = int () in
  let rec entries k acc =
    if k = 0 then List.rev acc
    else begin
      expect ' ';
      let e_term = int () in
      expect ' ';
      let e_index = int () in
      expect ' ';
      let e_span = int () in
      expect ' ';
      let e_cmd = str () in
      entries (k - 1) ({ e_term; e_index; e_cmd; e_span } :: acc)
    end
  in
  let log = entries n [] in
  ( term,
    (if String.equal voted "" then None else Some voted),
    snap_index,
    snap_term,
    snap_data,
    log )

let persist t =
  match t.r_persist with
  | Some p -> p.p_save (encode_hard t)
  | None -> ()

let load_hard t s =
  let term, voted, snap_index, snap_term, snap_data, log = decode_hard s in
  t.r_term <- term;
  t.r_voted_for <- voted;
  t.r_snap_index <- snap_index;
  t.r_snap_term <- snap_term;
  t.r_snap_data <- snap_data;
  t.r_log <- log

(* ------------------------------------------------------------------ *)
(* Sending                                                             *)

let find_id t name =
  List.find_opt
    (fun id -> String.equal (Sim_net.host_name t.r_net id) name)
    (Sim_net.hosts t.r_net)

let send t ~dst payload =
  match find_id t dst with
  | Some id -> Sim_net.send t.r_net ~src:t.r_id ~dst:id payload
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Role transitions                                                    *)

let reset_deadline t =
  let cfg = t.r_config in
  let spread = max 1 (cfg.election_max - cfg.election_min + 1) in
  t.r_election_deadline <- now t + cfg.election_min + Random.State.int t.r_rng spread

let become_follower t new_term =
  if new_term > t.r_term then begin
    t.r_term <- new_term;
    t.r_voted_for <- None
  end;
  if t.r_role <> Follower then
    Log.debug (fun m ->
        m "%s: stepping down to follower at term %d" t.r_host t.r_term);
  t.r_role <- Follower;
  t.r_votes <- [];
  reset_deadline t

(* When can the next tick act?  Followers/candidates: their election
   deadline.  Leaders: the next heartbeat round.  Datagram handlers run
   at delivery, not here, so ticking earlier is a guaranteed no-op. *)
let next_due t =
  if t.r_stopped then max_int
  else
    match t.r_role with
    | Leader -> t.r_next_heartbeat
    | Follower | Candidate -> t.r_election_deadline

(* ------------------------------------------------------------------ *)
(* Commit / apply / compact                                            *)

let maybe_compact t =
  let cfg = t.r_config in
  if cfg.snapshot_threshold > 0 && t.r_applied - t.r_snap_index >= cfg.snapshot_threshold
  then begin
    let data = t.r_snapshot_fn () in
    t.r_snap_term <- Option.value (term_at t t.r_applied) ~default:t.r_snap_term;
    t.r_snap_data <- data;
    t.r_log <- List.filter (fun e -> e.e_index > t.r_applied) t.r_log;
    t.r_snap_index <- t.r_applied;
    persist t;
    Metrics.incr (metrics t) "raft.snapshots";
    Log.debug (fun m ->
        m "%s: compacted log through index %d" t.r_host t.r_snap_index)
  end

let rec apply_committed t =
  if t.r_applied < t.r_commit then begin
    let i = t.r_applied + 1 in
    (match List.find_opt (fun e -> e.e_index = i) t.r_log with
    | Some e ->
      if not (String.equal e.e_cmd "") then begin
        t.r_apply ~index:i e.e_cmd;
        Metrics.incr (metrics t) "raft.commits";
        if e.e_span <> Span.none then
          Span.event (spans t) e.e_span ~host:t.r_host ~tick:(now t)
            "raft:commit"
      end
    | None ->
      (* Inside the snapshot prefix; the restore already covered it. *)
      ());
    t.r_applied <- i;
    apply_committed t
  end
  else maybe_compact t

(* Leader rule: advance commit to the largest majority-replicated index,
   but only if that entry is from the current term (the Figure 8
   restriction — earlier-term entries commit implicitly underneath). *)
let advance_commit t =
  let li = last_index t in
  let counted i =
    1
    + List.length
        (List.filter
           (fun p ->
             Option.value (Hashtbl.find_opt t.r_match p) ~default:0 >= i)
           (others t))
  in
  let rec scan i best =
    if i > li then best
    else if counted i >= majority t then scan (i + 1) (Some i)
    else best
  in
  match scan (t.r_commit + 1) None with
  | Some i when term_at t i = Some t.r_term ->
    t.r_commit <- i;
    apply_committed t
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Leader replication                                                  *)

let send_append t follower =
  let next =
    Option.value (Hashtbl.find_opt t.r_next follower)
      ~default:(last_index t + 1)
  in
  if next <= t.r_snap_index then begin
    (* Too far behind for the log we still hold: ship the snapshot. *)
    Metrics.incr (metrics t) "raft.snapshots_sent";
    send t ~dst:follower
      (Raft_snap
         {
           s_term = t.r_term;
           s_from = t.r_host;
           s_index = t.r_snap_index;
           s_last_term = t.r_snap_term;
           s_data = t.r_snap_data;
         })
  end
  else begin
    let prev = next - 1 in
    let prev_term = Option.value (term_at t prev) ~default:0 in
    let entries = List.filter (fun e -> e.e_index >= next) t.r_log in
    Metrics.incr (metrics t) "raft.appends_sent";
    send t ~dst:follower
      (Raft_append
         {
           a_term = t.r_term;
           a_from = t.r_host;
           a_prev_index = prev;
           a_prev_term = prev_term;
           a_entries = entries;
           a_commit = t.r_commit;
         })
  end

let send_round t = List.iter (send_append t) (others t)

let become_leader t =
  t.r_role <- Leader;
  t.r_leader <- Some t.r_host;
  Metrics.incr (metrics t) "raft.leader_changes";
  Log.info (fun m -> m "%s: elected leader at term %d" t.r_host t.r_term);
  Hashtbl.reset t.r_next;
  Hashtbl.reset t.r_match;
  List.iter
    (fun p ->
      Hashtbl.replace t.r_next p (last_index t + 1);
      Hashtbl.replace t.r_match p 0)
    (others t);
  (* A no-op entry at the new term lets earlier-term entries commit
     promptly (a leader may only count replicas for current-term
     entries). *)
  let noop =
    {
      e_term = t.r_term;
      e_index = last_index t + 1;
      e_cmd = "";
      e_span = Span.none;
    }
  in
  t.r_log <- t.r_log @ [ noop ];
  persist t;
  t.r_next_heartbeat <- now t + t.r_config.heartbeat;
  if others t = [] then advance_commit t else send_round t

let maybe_win t =
  if t.r_role = Candidate && List.length t.r_votes >= majority t then
    become_leader t

let start_election t =
  t.r_term <- t.r_term + 1;
  t.r_role <- Candidate;
  t.r_voted_for <- Some t.r_host;
  t.r_votes <- [ t.r_host ];
  t.r_leader <- None;
  reset_deadline t;
  persist t;
  Metrics.incr (metrics t) "raft.elections";
  Log.debug (fun m -> m "%s: starting election for term %d" t.r_host t.r_term);
  List.iter
    (fun p ->
      send t ~dst:p
        (Raft_vote_req
           {
             v_term = t.r_term;
             v_from = t.r_host;
             v_last_index = last_index t;
             v_last_term = last_term t;
           }))
    (others t);
  maybe_win t

(* ------------------------------------------------------------------ *)
(* Message handling (at datagram delivery)                             *)

(* Idempotent truncate-and-append: entries already present with the
   right term are skipped; the first term conflict truncates the rest of
   the log (it is from a deposed leader and uncommitted by the log
   matching property). *)
let rec merge_entries t = function
  | [] -> ()
  | e :: rest -> (
    match term_at t e.e_index with
    | Some tm when tm = e.e_term -> merge_entries t rest
    | Some _ ->
      t.r_log <-
        List.filter (fun x -> x.e_index < e.e_index) t.r_log @ (e :: rest)
    | None -> t.r_log <- t.r_log @ (e :: rest))

let handle_vote_req t ~v_term ~v_from ~v_last_index ~v_last_term =
  if v_term > t.r_term then become_follower t v_term;
  let granted =
    v_term = t.r_term
    && (match t.r_voted_for with
       | None -> true
       | Some v -> String.equal v v_from)
    && compare (v_last_term, v_last_index) (last_term t, last_index t) >= 0
  in
  if granted then begin
    t.r_voted_for <- Some v_from;
    (* Granting a vote defers our own candidacy. *)
    reset_deadline t
  end;
  persist t;
  send t ~dst:v_from
    (Raft_vote_rsp { v_term = t.r_term; v_from = t.r_host; v_granted = granted })

let handle_vote_rsp t ~v_term ~v_from ~v_granted =
  if v_term > t.r_term then begin
    become_follower t v_term;
    persist t
  end
  else if t.r_role = Candidate && v_term = t.r_term && v_granted then begin
    if not (List.exists (String.equal v_from) t.r_votes) then
      t.r_votes <- v_from :: t.r_votes;
    maybe_win t
  end

let handle_append t ~a_term ~a_from ~a_prev_index ~a_prev_term ~a_entries
    ~a_commit =
  if a_term < t.r_term then
    send t ~dst:a_from
      (Raft_append_rsp
         { a_term = t.r_term; a_from = t.r_host; a_ok = false; a_match = 0 })
  else begin
    if a_term > t.r_term || t.r_role <> Follower then become_follower t a_term;
    t.r_leader <- Some a_from;
    reset_deadline t;
    (* Entries at or below our snapshot are already committed here;
       shift the consistency point up to the snapshot boundary. *)
    let prev, prev_term, entries =
      if a_prev_index < t.r_snap_index then
        ( t.r_snap_index,
          t.r_snap_term,
          List.filter (fun e -> e.e_index > t.r_snap_index) a_entries )
      else (a_prev_index, a_prev_term, a_entries)
    in
    match term_at t prev with
    | Some tm when tm = prev_term ->
      merge_entries t entries;
      let matched =
        List.fold_left (fun acc e -> max acc e.e_index) prev entries
      in
      persist t;
      if a_commit > t.r_commit then begin
        t.r_commit <- min a_commit (last_index t);
        apply_committed t
      end;
      send t ~dst:a_from
        (Raft_append_rsp
           { a_term = t.r_term; a_from = t.r_host; a_ok = true; a_match = matched })
    | _ ->
      (* Consistency check failed; hint where our log might still agree
         so the leader can back off in one round instead of one index
         per round. *)
      let hint =
        if prev > last_index t then last_index t
        else max t.r_snap_index (prev - 1)
      in
      persist t;
      send t ~dst:a_from
        (Raft_append_rsp
           { a_term = t.r_term; a_from = t.r_host; a_ok = false; a_match = hint })
  end

let handle_append_rsp t ~a_term ~a_from ~a_ok ~a_match =
  if a_term > t.r_term then begin
    become_follower t a_term;
    persist t
  end
  else if t.r_role = Leader && a_term = t.r_term then
    if a_ok then begin
      let old = Option.value (Hashtbl.find_opt t.r_match a_from) ~default:0 in
      let matched = max old a_match in
      Hashtbl.replace t.r_match a_from matched;
      Hashtbl.replace t.r_next a_from (matched + 1);
      advance_commit t;
      (* Still behind (e.g. it just installed a snapshot): keep feeding
         it without waiting a heartbeat. *)
      if matched < last_index t then send_append t a_from
    end
    else begin
      let next =
        Option.value (Hashtbl.find_opt t.r_next a_from)
          ~default:(last_index t + 1)
      in
      Hashtbl.replace t.r_next a_from (max 1 (min (next - 1) (a_match + 1)));
      send_append t a_from
    end

let handle_snap t ~s_term ~s_from ~s_index ~s_last_term ~s_data =
  if s_term < t.r_term then
    send t ~dst:s_from
      (Raft_snap_rsp { s_term = t.r_term; s_from = t.r_host; s_match = 0 })
  else begin
    if s_term > t.r_term || t.r_role <> Follower then become_follower t s_term;
    t.r_leader <- Some s_from;
    reset_deadline t;
    if s_index > t.r_commit then begin
      t.r_snap_index <- s_index;
      t.r_snap_term <- s_last_term;
      t.r_snap_data <- s_data;
      (* Keep a log suffix that agrees with the snapshot; otherwise the
         log is entirely superseded. *)
      (match term_at t s_index with
      | Some tm when tm = s_last_term ->
        t.r_log <- List.filter (fun e -> e.e_index > s_index) t.r_log
      | _ -> t.r_log <- []);
      t.r_restore s_data;
      t.r_applied <- s_index;
      t.r_commit <- s_index;
      Metrics.incr (metrics t) "raft.snapshot_installs"
    end;
    persist t;
    send t ~dst:s_from
      (Raft_snap_rsp
         { s_term = t.r_term; s_from = t.r_host; s_match = t.r_snap_index })
  end

let handle_snap_rsp t ~s_term ~s_from ~s_match =
  if s_term > t.r_term then begin
    become_follower t s_term;
    persist t
  end
  else if t.r_role = Leader && s_term = t.r_term then begin
    let old = Option.value (Hashtbl.find_opt t.r_match s_from) ~default:0 in
    let matched = max old s_match in
    Hashtbl.replace t.r_match s_from matched;
    Hashtbl.replace t.r_next s_from (matched + 1);
    advance_commit t;
    if matched < last_index t then send_append t s_from
  end

let handle t payload =
  if not t.r_stopped then
    match payload with
    | Raft_vote_req { v_term; v_from; v_last_index; v_last_term } ->
      handle_vote_req t ~v_term ~v_from ~v_last_index ~v_last_term
    | Raft_vote_rsp { v_term; v_from; v_granted } ->
      handle_vote_rsp t ~v_term ~v_from ~v_granted
    | Raft_append { a_term; a_from; a_prev_index; a_prev_term; a_entries; a_commit }
      ->
      handle_append t ~a_term ~a_from ~a_prev_index ~a_prev_term ~a_entries
        ~a_commit
    | Raft_append_rsp { a_term; a_from; a_ok; a_match } ->
      handle_append_rsp t ~a_term ~a_from ~a_ok ~a_match
    | Raft_snap { s_term; s_from; s_index; s_last_term; s_data } ->
      handle_snap t ~s_term ~s_from ~s_index ~s_last_term ~s_data
    | Raft_snap_rsp { s_term; s_from; s_match } ->
      handle_snap_rsp t ~s_term ~s_from ~s_match
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Public driving                                                      *)

let tick t =
  if not t.r_stopped then
    match t.r_role with
    | Leader ->
      if now t >= t.r_next_heartbeat then begin
        t.r_next_heartbeat <- now t + t.r_config.heartbeat;
        send_round t
      end
    | Follower | Candidate ->
      if now t >= t.r_election_deadline then start_election t

let submit t ?(span = Span.none) cmd =
  if t.r_stopped then Error None
  else
    match t.r_role with
    | Leader ->
      let idx = last_index t + 1 in
      let e = { e_term = t.r_term; e_index = idx; e_cmd = cmd; e_span = span } in
      t.r_log <- t.r_log @ [ e ];
      persist t;
      Metrics.incr (metrics t) "raft.submits";
      if span <> Span.none then
        Span.event (spans t) span ~host:t.r_host ~tick:(now t) "raft:append";
      if others t = [] then advance_commit t
      else begin
        (* Replicate eagerly instead of waiting out the heartbeat. *)
        t.r_next_heartbeat <- now t + t.r_config.heartbeat;
        send_round t
      end;
      Ok idx
    | Follower | Candidate -> Error t.r_leader

let crash_recover t =
  t.r_role <- Follower;
  t.r_leader <- None;
  t.r_votes <- [];
  Hashtbl.reset t.r_next;
  Hashtbl.reset t.r_match;
  (match t.r_persist with
  | Some p -> (
    match p.p_load () with
    | Some s -> load_hard t s
    | None ->
      (* The durable state vanished: model a wiped disk, back to blank. *)
      t.r_term <- 0;
      t.r_voted_for <- None;
      t.r_log <- [];
      t.r_snap_index <- 0;
      t.r_snap_term <- 0;
      t.r_snap_data <- "")
  | None -> ());
  (* Roll the state machine back to the snapshot; committed entries
     above it re-apply as the commit index re-advances. *)
  t.r_restore t.r_snap_data;
  t.r_applied <- t.r_snap_index;
  t.r_commit <- t.r_snap_index;
  reset_deadline t;
  Metrics.incr (metrics t) "raft.recoveries"

let stop t = t.r_stopped <- true

let create ?(config = default_config) ?seed ?persist:p ~obs ~net ~peers ~apply
    ~snapshot ~restore id =
  if config.heartbeat <= 0 || config.election_min <= 0
     || config.election_max < config.election_min
  then invalid_arg "Raft.create: bad config";
  let name = Sim_net.host_name net id in
  if not (List.exists (String.equal name) peers) then
    invalid_arg "Raft.create: host not in peers";
  let seed = Option.value seed ~default:(0x4a71 + id) in
  let t =
    {
      r_host = name;
      r_id = id;
      r_net = net;
      r_clock = Sim_net.clock net;
      r_obs = obs;
      r_config = config;
      r_rng = Random.State.make [| seed; id |];
      r_peers = List.sort_uniq String.compare peers;
      r_apply = apply;
      r_snapshot_fn = snapshot;
      r_restore = restore;
      r_persist = p;
      r_term = 0;
      r_voted_for = None;
      r_log = [];
      r_snap_index = 0;
      r_snap_term = 0;
      r_snap_data = "";
      r_role = Follower;
      r_leader = None;
      r_commit = 0;
      r_applied = 0;
      r_votes = [];
      r_next = Hashtbl.create 8;
      r_match = Hashtbl.create 8;
      r_election_deadline = 0;
      r_next_heartbeat = 0;
      r_stopped = false;
    }
  in
  (match p with
  | Some p -> (
    match p.p_load () with
    | Some s ->
      load_hard t s;
      if not (String.equal t.r_snap_data "") then t.r_restore t.r_snap_data;
      t.r_applied <- t.r_snap_index;
      t.r_commit <- t.r_snap_index
    | None -> ())
  | None -> ());
  reset_deadline t;
  Sim_net.register_handler net id (fun ~src:_ payload -> handle t payload);
  t
