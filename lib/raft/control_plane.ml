(* The replicated control-plane registry.  Pure data + deterministic
   application; Raft owns ordering and durability.  The same
   length-prefixed encoding as the Raft hard state keeps host names and
   labels safe to embed in log entries and snapshots. *)

type cmd =
  | Register_volume of {
      rv_alloc : int;
      rv_vol : int;
      rv_label : string;
      rv_replicas : (int * string) list;
    }
  | Set_replicas of {
      sr_alloc : int;
      sr_vol : int;
      sr_replicas : (int * string) list;
    }
  | Set_graft of { sg_path : string; sg_alloc : int; sg_vol : int }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let buf_str b s = Printf.bprintf b "%d:%s" (String.length s) s

let buf_replicas b reps =
  Printf.bprintf b "%d" (List.length reps);
  List.iter
    (fun (rid, h) ->
      Printf.bprintf b " %d " rid;
      buf_str b h)
    reps

let encode_cmd cmd =
  let b = Buffer.create 64 in
  (match cmd with
  | Register_volume { rv_alloc; rv_vol; rv_label; rv_replicas } ->
    Printf.bprintf b "regv %d %d " rv_alloc rv_vol;
    buf_str b rv_label;
    Buffer.add_char b ' ';
    buf_replicas b rv_replicas
  | Set_replicas { sr_alloc; sr_vol; sr_replicas } ->
    Printf.bprintf b "setr %d %d " sr_alloc sr_vol;
    buf_replicas b sr_replicas
  | Set_graft { sg_path; sg_alloc; sg_vol } ->
    Printf.bprintf b "graf %d %d " sg_alloc sg_vol;
    buf_str b sg_path);
  Buffer.contents b

(* A tiny cursor parser shared by command and snapshot decoding. *)
type cursor = { c_s : string; mutable c_pos : int }

exception Bad

let expect c ch =
  if c.c_pos >= String.length c.c_s || c.c_s.[c.c_pos] <> ch then raise Bad;
  c.c_pos <- c.c_pos + 1

let cur_int c =
  let start = c.c_pos in
  if c.c_pos < String.length c.c_s && c.c_s.[c.c_pos] = '-' then
    c.c_pos <- c.c_pos + 1;
  while
    c.c_pos < String.length c.c_s
    && c.c_s.[c.c_pos] >= '0'
    && c.c_s.[c.c_pos] <= '9'
  do
    c.c_pos <- c.c_pos + 1
  done;
  if c.c_pos = start then raise Bad;
  int_of_string (String.sub c.c_s start (c.c_pos - start))

let cur_str c =
  let n = cur_int c in
  expect c ':';
  if n < 0 || c.c_pos + n > String.length c.c_s then raise Bad;
  let r = String.sub c.c_s c.c_pos n in
  c.c_pos <- c.c_pos + n;
  r

let cur_replicas c =
  let n = cur_int c in
  let rec go k acc =
    if k = 0 then List.rev acc
    else begin
      expect c ' ';
      let rid = cur_int c in
      expect c ' ';
      let h = cur_str c in
      go (k - 1) ((rid, h) :: acc)
    end
  in
  go n []

let decode_cmd s =
  if String.length s < 5 then None
  else
    let tag = String.sub s 0 4 in
    let c = { c_s = s; c_pos = 4 } in
    try
      expect c ' ';
      match tag with
      | "regv" ->
        let rv_alloc = cur_int c in
        expect c ' ';
        let rv_vol = cur_int c in
        expect c ' ';
        let rv_label = cur_str c in
        expect c ' ';
        let rv_replicas = cur_replicas c in
        Some (Register_volume { rv_alloc; rv_vol; rv_label; rv_replicas })
      | "setr" ->
        let sr_alloc = cur_int c in
        expect c ' ';
        let sr_vol = cur_int c in
        expect c ' ';
        let sr_replicas = cur_replicas c in
        Some (Set_replicas { sr_alloc; sr_vol; sr_replicas })
      | "graf" ->
        let sg_alloc = cur_int c in
        expect c ' ';
        let sg_vol = cur_int c in
        expect c ' ';
        let sg_path = cur_str c in
        Some (Set_graft { sg_path; sg_alloc; sg_vol })
      | _ -> None
    with Bad -> None

(* ------------------------------------------------------------------ *)
(* State                                                               *)

type vol_state = {
  vs_label : string;
  vs_replicas : (int * string) list;
  vs_cindex : int;  (* log index of the command that last touched this *)
}

type t = {
  cp_vols : (int * int, vol_state) Hashtbl.t;
  cp_grafts : (string, (int * int) * int) Hashtbl.t;
  mutable cp_applied : int;
  mutable cp_bad : int;  (* undecodable commands skipped *)
}

let create () =
  {
    cp_vols = Hashtbl.create 8;
    cp_grafts = Hashtbl.create 8;
    cp_applied = 0;
    cp_bad = 0;
  }

let apply t ~index cmd =
  (match decode_cmd cmd with
  | None -> t.cp_bad <- t.cp_bad + 1
  | Some (Register_volume { rv_alloc; rv_vol; rv_label; rv_replicas }) ->
    if not (Hashtbl.mem t.cp_vols (rv_alloc, rv_vol)) then
      Hashtbl.replace t.cp_vols (rv_alloc, rv_vol)
        {
          vs_label = rv_label;
          vs_replicas = List.sort compare rv_replicas;
          vs_cindex = index;
        }
  | Some (Set_replicas { sr_alloc; sr_vol; sr_replicas }) -> (
    match Hashtbl.find_opt t.cp_vols (sr_alloc, sr_vol) with
    | None -> ()
    | Some vs ->
      Hashtbl.replace t.cp_vols (sr_alloc, sr_vol)
        {
          vs with
          vs_replicas = List.sort compare sr_replicas;
          vs_cindex = index;
        })
  | Some (Set_graft { sg_path; sg_alloc; sg_vol }) ->
    Hashtbl.replace t.cp_grafts sg_path ((sg_alloc, sg_vol), index));
  t.cp_applied <- max t.cp_applied index

let applied_index t = t.cp_applied

let volume t ~alloc ~vol =
  Option.map
    (fun vs -> (vs.vs_replicas, vs.vs_cindex))
    (Hashtbl.find_opt t.cp_vols (alloc, vol))

let volumes t =
  Hashtbl.fold
    (fun key vs acc -> (key, vs.vs_label, vs.vs_replicas) :: acc)
    t.cp_vols []
  |> List.sort compare

let graft_target t path = Hashtbl.find_opt t.cp_grafts path

let grafts t =
  Hashtbl.fold (fun path (vref, _) acc -> (path, vref) :: acc) t.cp_grafts []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Snapshot: the whole registry in one string, same cursor format.     *)

let snapshot t =
  let b = Buffer.create 128 in
  Printf.bprintf b "cp1 %d %d " t.cp_applied t.cp_bad;
  let vols =
    Hashtbl.fold (fun key vs acc -> (key, vs) :: acc) t.cp_vols []
    |> List.sort compare
  in
  Printf.bprintf b "%d" (List.length vols);
  List.iter
    (fun ((alloc, vol), vs) ->
      Printf.bprintf b " %d %d %d " alloc vol vs.vs_cindex;
      buf_str b vs.vs_label;
      Buffer.add_char b ' ';
      buf_replicas b vs.vs_replicas)
    vols;
  let grafts =
    Hashtbl.fold (fun path tgt acc -> (path, tgt) :: acc) t.cp_grafts []
    |> List.sort compare
  in
  Printf.bprintf b " %d" (List.length grafts);
  List.iter
    (fun (path, ((alloc, vol), cindex)) ->
      Printf.bprintf b " %d %d %d " alloc vol cindex;
      buf_str b path)
    grafts;
  Buffer.contents b

let restore t s =
  Hashtbl.reset t.cp_vols;
  Hashtbl.reset t.cp_grafts;
  t.cp_applied <- 0;
  t.cp_bad <- 0;
  if not (String.equal s "") then begin
    if String.length s < 4 || not (String.equal (String.sub s 0 4) "cp1 ") then
      failwith "Control_plane: corrupt snapshot";
    let c = { c_s = s; c_pos = 4 } in
    try
      t.cp_applied <- cur_int c;
      expect c ' ';
      t.cp_bad <- cur_int c;
      expect c ' ';
      let nvols = cur_int c in
      for _ = 1 to nvols do
        expect c ' ';
        let alloc = cur_int c in
        expect c ' ';
        let vol = cur_int c in
        expect c ' ';
        let vs_cindex = cur_int c in
        expect c ' ';
        let vs_label = cur_str c in
        expect c ' ';
        let vs_replicas = cur_replicas c in
        Hashtbl.replace t.cp_vols (alloc, vol)
          { vs_label; vs_replicas; vs_cindex }
      done;
      expect c ' ';
      let ngrafts = cur_int c in
      for _ = 1 to ngrafts do
        expect c ' ';
        let alloc = cur_int c in
        expect c ' ';
        let vol = cur_int c in
        expect c ' ';
        let cindex = cur_int c in
        expect c ' ';
        let path = cur_str c in
        Hashtbl.replace t.cp_grafts path ((alloc, vol), cindex)
      done
    with Bad -> failwith "Control_plane: corrupt snapshot"
  end
