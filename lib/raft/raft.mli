(** A deterministic Raft core over {!Sim_net} datagrams.

    Ficus keeps file {e data} optimistic — any replica accepts any
    update, divergence is reconciled later — but control-plane metadata
    (which hosts hold which replicas, where volumes are grafted) has no
    natural merge: two partitions editing the same replica set can
    disagree for unbounded time under pure gossip.  This module provides
    the alternative the ROADMAP calls for: a small elected-coordinator
    group that serializes control commands through a replicated log, so
    there is always one authoritative, linearizable history of control
    decisions — while the data plane keeps Ficus one-copy availability.

    The implementation is vanilla Raft (Ongaro & Ousterhout 2014)
    restricted to what a simulation needs, with every source of
    nondeterminism routed through the seeded PRNG and the simulated
    clock:

    - {b roles}: follower / candidate / leader, randomized election
      timeouts drawn from [election_min, election_max];
    - {b persistence}: the hard state (term, vote, log, snapshot) is
      encoded to one string and handed to a caller-supplied [persist]
      pair before any message that depends on it is sent — the cluster
      harness stores it in a file on the member's journaled UFS, so a
      {!crash_recover} after {!Ufs.crash_reboot} finds exactly the
      sealed prefix;
    - {b replication}: AppendEntries with conflict back-off, commit
      advancement restricted to current-term entries, and a leader no-op
      entry appended on election so earlier-term entries commit
      promptly;
    - {b compaction}: once the applied prefix outgrows
      [snapshot_threshold], the state machine is asked to snapshot
      itself and the log is truncated; followers too far behind are
      caught up with an InstallSnapshot message.

    Messages are processed at datagram delivery (handlers registered on
    the net), so duplication, reordering and loss from the fault layer
    are tolerated the way the protocol intends: stale terms are dropped,
    duplicate votes don't double-count, appends are idempotent. *)

type role = Follower | Candidate | Leader

val role_to_string : role -> string

type entry = {
  e_term : int;
  e_index : int;
  e_cmd : string;  (** opaque encoded command; [""] is the leader no-op *)
  e_span : int;    (** observability span riding the entry, or [Span.none] *)
}

type config = {
  heartbeat : int;      (** ticks between leader AppendEntries rounds *)
  election_min : int;   (** election timeout drawn uniformly from *)
  election_max : int;   (** [election_min, election_max] ticks *)
  snapshot_threshold : int;
      (** compact once this many applied entries sit above the snapshot;
          [0] disables compaction *)
}

val default_config : config
(** [{ heartbeat = 4; election_min = 12; election_max = 24;
      snapshot_threshold = 64 }] — sized against the gossip period (4)
    so coordinator elections settle within a few gossip rounds. *)

type persist = {
  p_save : string -> unit;
      (** Durably store the encoded hard state; called {e before} any
          message depending on it leaves the node. *)
  p_load : unit -> string option;
      (** Reload it; [None] means a blank node (first boot). *)
}

type t

val create :
  ?config:config ->
  ?seed:int ->
  ?persist:persist ->
  obs:Obs.t ->
  net:Sim_net.t ->
  peers:string list ->
  apply:(index:int -> string -> unit) ->
  snapshot:(unit -> string) ->
  restore:(string -> unit) ->
  Sim_net.host_id ->
  t
(** One Raft member on host [id].  [peers] is the full member list by
    host name, this member included; the group is static.  [apply] is
    called exactly once per committed command, in index order (no-ops
    excluded).  [snapshot] must render the state machine after every
    [apply] so far; [restore] must replace it (the empty string restores
    the initial state).  If [persist] is given, hard state is saved
    through it and {!create} starts from whatever [p_load] returns. *)

val host : t -> string
val config : t -> config
val role : t -> role
val term : t -> int
val leader_hint : t -> string option
(** Who this member currently believes leads (itself when leader). *)

val commit_index : t -> int
val last_applied : t -> int
val last_index : t -> int
val snapshot_index : t -> int

val log_view : t -> (int * int) list
(** [(index, term)] pairs of the in-log suffix (post-snapshot), in
    ascending index order — what the log-matching property quantifies
    over. *)

val submit : t -> ?span:int -> string -> (int, string option) result
(** Propose a command.  On the leader, appends it (persisted) and
    returns its log index; commitment is observed later via [apply] or
    {!commit_index}.  On any other role, [Error hint] names the believed
    leader so the client can retry there. *)

val tick : t -> unit
(** Drive timeouts: candidates/followers start elections past their
    randomized deadline; leaders send their AppendEntries round when the
    heartbeat interval elapses.  Message {e handling} is not here — it
    happens at datagram delivery. *)

val next_due : t -> int
(** Earliest tick at which {!tick} could act (election deadline or next
    heartbeat); ticking earlier is a guaranteed no-op, which lets the
    indexed cluster driver skip idle members.  Datagram arrival may move
    it closer. *)

val crash_recover : t -> unit
(** Simulated crash + reboot in place: volatile state (role, commit
    index, leader hint, peer cursors) is reset, hard state is reloaded
    through [persist] (without it the node keeps its in-memory hard
    state), and the state machine is rolled back to the snapshot via
    [restore] — committed-but-unapplied entries are re-applied as the
    new leader re-advances the commit index. *)

val stop : t -> unit
(** Permanently silence the member (handlers drop everything, tick
    no-ops) — a host that left for good. *)

val stopped : t -> bool
