(** The control-plane state machine replicated by {!Raft}.

    Commands are the cluster's control metadata mutations — volume
    registration, replica-set changes, graft-table edits — encoded as
    opaque strings for the log.  Application is deterministic and
    sequential, so every coordinator that applies the same committed
    prefix holds the same registry; the log index of the last command
    applied ({!applied_index}) doubles as the {e committed-index
    high-water mark} that non-members compare against gossip-carried
    state to decide which view of a volume is fresher. *)

type cmd =
  | Register_volume of {
      rv_alloc : int;
      rv_vol : int;
      rv_label : string;
      rv_replicas : (int * string) list;  (** (replica-id, host) *)
    }
      (** Create the volume with its initial replica set.  Applying to an
          already-registered volume is a no-op (first writer wins). *)
  | Set_replicas of {
      sr_alloc : int;
      sr_vol : int;
      sr_replicas : (int * string) list;
    }
      (** Replace the volume's replica set (add/remove replica).  No-op
          for unregistered volumes. *)
  | Set_graft of { sg_path : string; sg_alloc : int; sg_vol : int }
      (** Bind a graft point (a logical pathname) to a volume; later
          commands overwrite earlier ones. *)

val encode_cmd : cmd -> string
val decode_cmd : string -> cmd option

type t

val create : unit -> t

(** {1 The state-machine hooks Raft drives} *)

val apply : t -> index:int -> string -> unit
(** Apply one committed command (undecodable commands are counted and
    skipped — a bug, not a crash, in a simulation). *)

val snapshot : t -> string
val restore : t -> string -> unit
(** [restore t ""] resets to the initial empty state. *)

(** {1 Reads} *)

val applied_index : t -> int
(** Raft log index of the last command applied; 0 initially. *)

val volume : t -> alloc:int -> vol:int -> ((int * string) list * int) option
(** Committed replica set and the log index of the command that last
    touched this volume. *)

val volumes : t -> ((int * int) * string * (int * string) list) list
(** Every registered volume: [(alloc, vol), label, replicas], sorted. *)

val graft_target : t -> string -> ((int * int) * int) option
(** Volume bound at a graft point, with the binding's log index. *)

val grafts : t -> (string * (int * int)) list
