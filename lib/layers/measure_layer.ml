let wrap ?clock ~metrics lower =
  let observe op result =
    Metrics.incr metrics ("measure." ^ op ^ ".calls");
    (match result with
     | Ok _ -> ()
     | Error _ -> Metrics.incr metrics ("measure." ^ op ^ ".errors"));
    result
  in
  let timed op f =
    match clock with
    | None -> observe op (f ())
    | Some clock ->
      let t0 = Clock.now clock in
      let result = f () in
      Metrics.observe metrics ("measure." ^ op ^ ".ticks") (Clock.now clock - t0);
      observe op result
  in
  let rec make (lower : Vnode.t) : Vnode.t =
    let wrap_child = Result.map make in
    {
      Vnode.data = lower.Vnode.data;
      getattr = (fun () -> timed "getattr" lower.getattr);
      setattr = (fun sa -> timed "setattr" (fun () -> lower.setattr sa));
      lookup = (fun name -> wrap_child (timed "lookup" (fun () -> lower.lookup name)));
      create = (fun name -> wrap_child (timed "create" (fun () -> lower.create name)));
      mkdir = (fun name -> wrap_child (timed "mkdir" (fun () -> lower.mkdir name)));
      remove = (fun name -> timed "remove" (fun () -> lower.remove name));
      rmdir = (fun name -> timed "rmdir" (fun () -> lower.rmdir name));
      rename =
        (fun src dst dname -> timed "rename" (fun () -> lower.rename src dst dname));
      link = (fun target name -> timed "link" (fun () -> lower.link target name));
      readdir = (fun () -> timed "readdir" lower.readdir);
      read = (fun ~off ~len -> timed "read" (fun () -> lower.read ~off ~len));
      write = (fun ~off data -> timed "write" (fun () -> lower.write ~off data));
      openv = (fun flag -> timed "open" (fun () -> lower.openv flag));
      closev = (fun () -> timed "close" lower.closev);
      fsync = (fun () -> timed "fsync" lower.fsync);
      inactive = (fun () -> lower.inactive ());
    }
  in
  make lower

(* The measured vnode exposes the lower layer's [data] unchanged, so
   sibling-vnode operations (rename, link) keep working: the lower layer
   recognizes its own vnodes through the measurement skin.  That is why
   [wrap] interposes no private state of its own. *)

let prefix = "measure."

let suffix_is s suffix =
  String.length s > String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let sum metrics suffix =
  (Metrics.snapshot metrics).Metrics.snap_counters
  |> List.filter (fun (name, _) ->
         String.length name > String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
         && suffix_is name suffix)
  |> List.fold_left (fun acc (_, n) -> acc + n) 0

let ops_total metrics = sum metrics ".calls"
let errors_total metrics = sum metrics ".errors"

let ticks_total metrics op = Metrics.hist_sum metrics (prefix ^ op ^ ".ticks")

let percentiles metrics op = Metrics.percentiles metrics (prefix ^ op ^ ".ticks")

let report metrics =
  let snapshot = (Metrics.snapshot metrics).Metrics.snap_counters in
  let calls =
    List.filter_map
      (fun (name, n) ->
        if String.length name > String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
           && suffix_is name ".calls"
        then
          let op =
            String.sub name (String.length prefix)
              (String.length name - String.length prefix - String.length ".calls")
          in
          Some (op, n)
        else None)
      snapshot
  in
  List.map
    (fun (op, n) ->
      let errors =
        match List.assoc_opt (prefix ^ op ^ ".errors") snapshot with
        | Some e -> e
        | None -> 0
      in
      (op, n, errors))
    (List.sort compare calls)
