(** Performance-monitoring layer.

    The paper (§1) forecasts that the stackable architecture will be
    used "for performance monitoring, user authentication and
    encryption".  This is the first of those three: a transparent layer
    that counts every operation crossing it, its failures, and the
    simulated time it consumed — without the layers above or below
    changing in any way.

    Reports into a {!Metrics} registry: counters
    [measure.<op>.calls] and [measure.<op>.errors], and a latency
    histogram [measure.<op>.ticks] per operation (simulated-clock time
    observed below this layer, when a clock is supplied) from which
    percentiles are available. *)

val wrap : ?clock:Clock.t -> metrics:Metrics.t -> Vnode.t -> Vnode.t

val ops_total : Metrics.t -> int
(** Sum of all [measure.*.calls]. *)

val errors_total : Metrics.t -> int

val ticks_total : Metrics.t -> string -> int
(** Total ticks observed below the layer for one op (histogram sum). *)

val percentiles : Metrics.t -> string -> (int * int * int) option
(** [(p50, p95, p99)] of an op's latency histogram, or [None] when it
    was never timed. *)

val report : Metrics.t -> (string * int * int) list
(** [(op, calls, errors)] rows, sorted by op name — a ready-made table. *)
