(* Causal trace spans.

   An update is stamped with a span id where it enters the system (the
   logical layer, or the NFS client on a remote mount) and every later
   stage of its life — NFS transport, physical-layer version bump,
   journal group commit, notify multicast, new-version-cache admission,
   propagation pull, shadow swap, reconciliation install — appends a
   timestamped event to the same span.  The result is a per-update
   timeline across hosts, ordered by the simulated clock.

   Span ids travel two ways:
   - explicitly, as an [int] field on wire messages and stored aux
     attributes (0 = "no span", so old encodings decode fine);
   - implicitly, through a process-global *ambient context*, so deep
     layers (the UFS journal, the shadow installer) can emit events
     without threading an argument through every signature.  The
     ambient form mirrors how a kernel would hang a trace id off the
     current thread. *)

type event = { e_tick : int; e_host : string; e_label : string; e_seq : int }

type span = {
  sp_id : int;
  sp_label : string;
  sp_origin : string;
  sp_start : int;
  mutable sp_events : event list; (* newest first *)
}

(* A span's full record at the moment it leaves the in-memory table:
   what the export hook receives, and what [export] returns for a span
   still resident.  Events are oldest-first. *)
type exported = {
  x_id : int;
  x_label : string;
  x_origin : string;
  x_start : int;
  x_events : event list;
}

type t = {
  mutable next_id : int;
  mutable next_seq : int; (* total order for same-tick events *)
  mutable retention : int option; (* keep at most this many spans *)
  mutable oldest : int; (* eviction cursor; ids are dense from 1 *)
  spans : (int, span) Hashtbl.t;
  mutable n_evicted : int;
  mutable export_hook : (exported -> unit) option;
  mutable evict_notify : (unit -> unit) option;
}

let none = 0

let create () =
  {
    next_id = 1;
    next_seq = 0;
    retention = None;
    oldest = 1;
    spans = Hashtbl.create 64;
    n_evicted = 0;
    export_hook = None;
    evict_notify = None;
  }

let set_retention t cap =
  if cap <= 0 then invalid_arg "Span.set_retention";
  t.retention <- Some cap

let set_export_hook t f = t.export_hook <- Some f
let clear_export_hook t = t.export_hook <- None
let set_evict_notify t f = t.evict_notify <- Some f
let evicted t = t.n_evicted
let live t = Hashtbl.length t.spans
let minted t = t.next_id - 1

let sort_events events =
  List.sort
    (fun a b ->
      match compare a.e_tick b.e_tick with 0 -> compare a.e_seq b.e_seq | c -> c)
    events

let exported_of_span sp =
  {
    x_id = sp.sp_id;
    x_label = sp.sp_label;
    x_origin = sp.sp_origin;
    x_start = sp.sp_start;
    x_events = sort_events sp.sp_events;
  }

let export t id =
  Option.map exported_of_span (Hashtbl.find_opt t.spans id)

let push t sp ~host ~tick label =
  let e = { e_tick = tick; e_host = host; e_label = label; e_seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  sp.sp_events <- e :: sp.sp_events

let start t ~host ~tick label =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sp = { sp_id = id; sp_label = label; sp_origin = host; sp_start = tick; sp_events = [] } in
  Hashtbl.replace t.spans id sp;
  (match t.retention with
  | None -> ()
  | Some cap ->
    (* Ids are minted densely, so the oldest surviving span is at the
       cursor; [event] on an evicted id is already a silent no-op.  The
       export hook fires before the removal so no trace data is lost to
       the cap; the evict notify lets the owner count the eviction. *)
    while id - t.oldest + 1 > cap do
      (match Hashtbl.find_opt t.spans t.oldest with
      | Some victim ->
        (match t.export_hook with
        | Some f -> f (exported_of_span victim)
        | None -> ());
        Hashtbl.remove t.spans t.oldest;
        t.n_evicted <- t.n_evicted + 1;
        (match t.evict_notify with Some f -> f () | None -> ())
      | None ->
        (* Cursor position already vacant (retention tightened); still
           advance so the loop terminates. *)
        ());
      t.oldest <- t.oldest + 1
    done);
  push t sp ~host ~tick label;
  id

(* Distinguish "this span existed here and was aged out" from "this id
   was never minted by this registry": ids are dense from 1, so anything
   below the allocation cursor but absent from the table was evicted. *)
type status = Live | Evicted | Unknown

let status t id =
  if id < 1 || id >= t.next_id then Unknown
  else if Hashtbl.mem t.spans id then Live
  else Evicted

let event t id ~host ~tick label =
  if id <> none then
    match Hashtbl.find_opt t.spans id with
    | None -> () (* span minted on another registry; drop, don't invent *)
    | Some sp -> push t sp ~host ~tick label

let timeline t id =
  match Hashtbl.find_opt t.spans id with
  | None -> []
  | Some sp ->
    List.sort
      (fun a b ->
        match compare a.e_tick b.e_tick with 0 -> compare a.e_seq b.e_seq | c -> c)
      sp.sp_events

let start_tick t id =
  match Hashtbl.find_opt t.spans id with None -> None | Some sp -> Some sp.sp_start

let origin t id =
  match Hashtbl.find_opt t.spans id with None -> None | Some sp -> Some sp.sp_origin

let label t id =
  match Hashtbl.find_opt t.spans id with None -> None | Some sp -> Some sp.sp_label

let ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.spans [])

let pp_timeline ppf events =
  List.iter
    (fun e -> Format.fprintf ppf "[%6d] %-8s %s@." e.e_tick e.e_host e.e_label)
    events

(* ------------------------------------------------------------------ *)
(* Ambient context                                                     *)

type ctx = { c_spans : t; c_id : int; c_host : string; c_now : unit -> int }

let current : ctx option ref = ref None

let make_ctx ~spans ~id ~host ~now = { c_spans = spans; c_id = id; c_host = host; c_now = now }

let capture () = !current
let ambient_id () = match !current with None -> none | Some c -> c.c_id

let emit_in c ?host label =
  let host = Option.value ~default:c.c_host host in
  event c.c_spans c.c_id ~host ~tick:(c.c_now ()) label

let emit ?host label = match !current with None -> () | Some c -> emit_in c ?host label

let with_ctx c f =
  let saved = !current in
  current := Some c;
  Fun.protect ~finally:(fun () -> current := saved) f

let without_ctx f =
  let saved = !current in
  current := None;
  Fun.protect ~finally:(fun () -> current := saved) f
