(** The health plane: SLO thresholds over live convergence gauges, and
    a per-daemon tick profiler.

    The cluster's convergence watchdog samples gauges (divergence age,
    replica staleness, journal backlog, gossip suspects, raft churn,
    propagation backlog) on a period and feeds them through
    {!observe}; this module classifies each sample against the gauge's
    SLO and raises edge-triggered [Degraded]/[Stuck] events with
    span-linked evidence. *)

type level = Degraded | Stuck

val level_name : level -> string

type slo = { degraded : int; stuck : int; confirm : int }
(** A sample [v] is healthy below [degraded], [Degraded] while
    [degraded <= v < stuck], [Stuck] at [v >= stuck].  A level is only
    confirmed — and its event raised — once it has held for [confirm]
    consecutive samples (the Prometheus "for:" idiom); recovery clears
    on the first healthy sample. *)

val slo : ?confirm:int -> degraded:int -> stuck:int -> unit -> slo
(** [confirm] defaults to 1 (fire on first breach).
    @raise Invalid_argument
      unless [0 < degraded <= stuck] and [confirm >= 1]. *)

type config = { period : int; slos : (string * slo) list }
(** [period] is the watchdog sampling interval in simulated ticks;
    gauges without an entry in [slos] are informational only. *)

val default_config : config

val with_slo : config -> string -> slo -> config
(** Replace (or add) one gauge's thresholds. *)

type event = {
  hv_tick : int;
  hv_level : level;
  hv_gauge : string;
  hv_value : int;
  hv_limit : int;  (** the threshold that was crossed *)
  hv_span : int;  (** evidence span, [Span.none] when not applicable *)
  hv_detail : string;
}

type t

val create : ?metrics:Metrics.t -> config -> t
(** With [?metrics], event counts surface live in the registry as
    [health.events_degraded] / [health.events_stuck] /
    [health.recoveries]. *)

val config : t -> config

val observe :
  t -> tick:int -> gauge:string -> value:int -> span:int -> detail:string -> unit
(** Classify one gauge sample.  Transitions are edge-triggered: an
    event fires only when the gauge's confirmed level escalates past a
    limit it was previously under; a return to healthy counts a
    recovery and re-arms the gauge. *)

val events : t -> event list
(** All events raised so far, oldest first. *)

val events_degraded : t -> int
val events_stuck : t -> int
val recoveries : t -> int

val current_level : t -> string -> level option
(** The gauge's level as of its last sample ([None] = healthy). *)

val pp_event : Format.formatter -> event -> unit

(** Per-daemon tick profiler: self-time and work attribution for the
    prop/recon/gossip/raft/journal phases of [Cluster.tick_daemons].
    Kept outside the metrics registry because wall-clock can never be
    part of the linear/indexed equivalence contract. *)
module Profile : sig
  type t

  val create : unit -> t

  val record : t -> daemon:string -> activations:int -> work:int -> us:int -> unit
  (** Record one phase activation: [activations] per-host daemon runs,
      [work] daemon-reported work units, [us] wall-clock self-time in
      microseconds (also bucketed into a power-of-two histogram). *)

  type row = {
    pr_daemon : string;
    pr_ticks : int;
    pr_activations : int;
    pr_work : int;
    pr_us : int;
  }

  val rows : t -> row list
  (** Top talkers first: by self-time, then work, then activations. *)

  val top : t -> row option

  val us_histogram : t -> string -> (int * int) list
  (** [(log2 bucket, count)] pairs for one daemon's self-times. *)

  val pp : Format.formatter -> t -> unit
end
