(* A process-wide metrics registry: counters, gauges, and latency
   histograms over the *simulated* clock.

   Because time in this codebase is an integer tick counter, observed
   latencies are small exact integers; the histogram therefore keeps an
   exact value -> count table instead of fixed bucket boundaries, and
   the percentile export is the true nearest-rank percentile, not an
   interpolation.  (The paper's §1 forecasts a "performance monitoring"
   layer as the first use of stacking; this registry is the sink every
   instrumented layer reports into.) *)

type hist = {
  buckets : (int, int ref) Hashtbl.t; (* observed value -> occurrences *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 16; hists = Hashtbl.create 16 }

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace tbl name r;
    r

let add t name n = cell t.counters name := !(cell t.counters name) + n
let incr t name = add t name 1
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge_set t name v = cell t.gauges name := v
let gauge t name = match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = { buckets = Hashtbl.create 16; h_count = 0; h_sum = 0; h_max = 0 } in
    Hashtbl.replace t.hists name h;
    h

let observe t name v =
  let h = hist t name in
  (match Hashtbl.find_opt h.buckets v with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.replace h.buckets v (ref 1));
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

let hist_count t name =
  match Hashtbl.find_opt t.hists name with Some h -> h.h_count | None -> 0

let hist_sum t name =
  match Hashtbl.find_opt t.hists name with Some h -> h.h_sum | None -> 0

(* Nearest-rank percentile over the exact value table: the smallest
   observed value v such that at least ceil(p/100 * count) observations
   are <= v. *)
let percentile_of_hist h p =
  if h.h_count = 0 then None
  else begin
    let rank =
      let r = int_of_float (ceil (p *. float_of_int h.h_count /. 100.)) in
      max 1 (min h.h_count r)
    in
    let values =
      List.sort compare (Hashtbl.fold (fun v r acc -> (v, !r) :: acc) h.buckets [])
    in
    let rec walk seen = function
      | [] -> None
      | (v, n) :: tl -> if seen + n >= rank then Some v else walk (seen + n) tl
    in
    walk 0 values
  end

let percentile t name p =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h -> percentile_of_hist h p

let percentiles t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h when h.h_count = 0 -> None
  | Some h ->
    let q p = Option.get (percentile_of_hist h p) in
    Some (q 50., q 95., q 99.)

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)

type hist_summary = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_max : int;
  hs_p50 : int;
  hs_p95 : int;
  hs_p99 : int;
}

type snapshot = {
  snap_counters : (string * int) list; (* sorted by name *)
  snap_gauges : (string * int) list;
  snap_hists : hist_summary list;
}

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])

let snapshot t =
  let hists =
    Hashtbl.fold
      (fun name h acc ->
        if h.h_count = 0 then acc
        else
          let q p = Option.value ~default:0 (percentile_of_hist h p) in
          {
            hs_name = name;
            hs_count = h.h_count;
            hs_sum = h.h_sum;
            hs_max = h.h_max;
            hs_p50 = q 50.;
            hs_p95 = q 95.;
            hs_p99 = q 99.;
          }
          :: acc)
      t.hists []
  in
  {
    snap_counters = sorted_bindings t.counters;
    snap_gauges = sorted_bindings t.gauges;
    snap_hists = List.sort (fun a b -> compare a.hs_name b.hs_name) hists;
  }

(* Line-oriented text rendering, served through the `.#ficus#stats`
   ctl-name.  One `kind name fields...` record per line so a remote
   client can parse it without a JSON library. *)
let render snap =
  let buf = Buffer.create 512 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" k v))
    snap.snap_counters;
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "gauge %s %d\n" k v))
    snap.snap_gauges;
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "hist %s count=%d sum=%d max=%d p50=%d p95=%d p99=%d\n"
           h.hs_name h.hs_count h.hs_sum h.hs_max h.hs_p50 h.hs_p95 h.hs_p99))
    snap.snap_hists;
  Buffer.contents buf

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists
