(* Streaming span export in Chrome trace-event JSONL.

   One line per trace event, so a million-op soak can stream spans out
   as retention evicts them instead of holding every timeline in
   memory.  Each span becomes an async begin ("ph":"b") at its start
   tick, one instant ("ph":"i") per recorded event, and an async end
   ("ph":"e") at its last event's tick; the span id doubles as the
   async-event id so viewers nest the instants under the span.  Ticks
   are written as microseconds (ts), which renders one simulated tick
   as 1us in chrome://tracing / Perfetto.

   The writer is append-only and flushes on [close]; it never reads the
   file back, so the same path can be inspected while a soak runs. *)

type t = {
  oc : out_channel;
  path : string;
  mutable n_spans : int;
  mutable n_lines : int;
  mutable closed : bool;
}

let create path =
  { oc = open_out path; path; n_spans = 0; n_lines = 0; closed = false }

let path t = t.path
let exported t = t.n_spans
let lines t = t.n_lines

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let line t fmt =
  Printf.ksprintf
    (fun s ->
      output_string t.oc s;
      output_char t.oc '\n';
      t.n_lines <- t.n_lines + 1)
    fmt

let write_span t (x : Span.exported) =
  if t.closed then invalid_arg "Trace_export.write_span: closed";
  let last_tick =
    List.fold_left (fun acc (e : Span.event) -> max acc e.e_tick) x.x_start x.x_events
  in
  line t {|{"name":"%s","cat":"span","ph":"b","id":%d,"ts":%d,"pid":1,"tid":"%s"}|}
    (json_escape x.x_label) x.x_id x.x_start (json_escape x.x_origin);
  List.iter
    (fun (e : Span.event) ->
      line t
        {|{"name":"%s","cat":"span","ph":"i","s":"t","ts":%d,"pid":1,"tid":"%s","args":{"span":%d}}|}
        (json_escape e.e_label) e.e_tick (json_escape e.e_host) x.x_id)
    x.x_events;
  line t {|{"name":"%s","cat":"span","ph":"e","id":%d,"ts":%d,"pid":1,"tid":"%s"}|}
    (json_escape x.x_label) x.x_id last_tick (json_escape x.x_origin);
  t.n_spans <- t.n_spans + 1

let attach t spans = Span.set_export_hook spans (fun x -> write_span t x)

let drain t spans =
  let ids = Span.ids spans in
  List.iter
    (fun id -> match Span.export spans id with Some x -> write_span t x | None -> ())
    ids;
  List.length ids

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end
