(* The observability bundle a cluster (or a standalone stack) carries:
   one metrics registry plus one span table, and the shared Logs
   reporter that tags every line with host name and simulated time. *)

type t = { metrics : Metrics.t; spans : Span.t }

let create () =
  let metrics = Metrics.create () in
  let spans = Span.create () in
  (* Retention evictions surface in the registry as they happen, so a
     capped soak's [.#ficus#stats] snapshot shows the loss rate live. *)
  Span.set_evict_notify spans (fun () -> Metrics.incr metrics "spans.evicted");
  { metrics; spans }

(* A process-wide default, used by components constructed without an
   explicit [?obs] (unit tests building a bare Physical.t, say).  Each
   Cluster.create makes its own bundle, so simulations never bleed
   metrics into each other. *)
let default = create ()

(* Count once into a component's private counter set and the shared
   cluster-wide registry together — daemons keep isolated counters for
   inspection while metrics_snapshot sees the same key.  Shared here so
   every daemon doesn't re-grow its own copy of the mirroring helper. *)
let count ?(n = 1) t counters key =
  Counters.add counters key n;
  Metrics.add t.metrics key n

(* ------------------------------------------------------------------ *)
(* Shared Logs reporter                                                *)

(* Log lines are tagged with the emitting host so a multi-host
   simulation interleaved in one process stays readable. *)
let host_tag : string Logs.Tag.def =
  Logs.Tag.def "host" ~doc:"emitting replica host name" Format.pp_print_string

let reporter ?(out = Format.err_formatter) ~now () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags fmt ->
    ignore header;
    let host =
      match Option.bind tags (Logs.Tag.find host_tag) with
      | Some h -> h
      | None -> "-"
    in
    Format.kfprintf k out
      ("[%6d] %a %s %s: " ^^ fmt ^^ "@.")
      (now ()) Logs.pp_level level (Logs.Src.name src) host
  in
  { Logs.report }

let install_reporter ?out ?(level = Logs.Info) ~now () =
  Logs.set_reporter (reporter ?out ~now ());
  Logs.set_level ~all:true (Some level)
