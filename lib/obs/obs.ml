(* The observability bundle a cluster (or a standalone stack) carries:
   one metrics registry plus one span table, and the shared Logs
   reporter that tags every line with host name and simulated time. *)

type t = { metrics : Metrics.t; spans : Span.t }

let create () =
  let metrics = Metrics.create () in
  let spans = Span.create () in
  (* Retention evictions surface in the registry as they happen, so a
     capped soak's [.#ficus#stats] snapshot shows the loss rate live. *)
  Span.set_evict_notify spans (fun () -> Metrics.incr metrics "spans.evicted");
  { metrics; spans }

(* A process-wide default, used by components constructed without an
   explicit [?obs] (unit tests building a bare Physical.t, say).  Each
   Cluster.create makes its own bundle, so simulations never bleed
   metrics into each other. *)
let default = create ()

(* ------------------------------------------------------------------ *)
(* Shared Logs reporter                                                *)

(* Log lines are tagged with the emitting host so a multi-host
   simulation interleaved in one process stays readable. *)
let host_tag : string Logs.Tag.def =
  Logs.Tag.def "host" ~doc:"emitting replica host name" Format.pp_print_string

let reporter ?(out = Format.err_formatter) ~now () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags fmt ->
    ignore header;
    let host =
      match Option.bind tags (Logs.Tag.find host_tag) with
      | Some h -> h
      | None -> "-"
    in
    Format.kfprintf k out
      ("[%6d] %a %s %s: " ^^ fmt ^^ "@.")
      (now ()) Logs.pp_level level (Logs.Src.name src) host
  in
  { Logs.report }

let install_reporter ?out ?(level = Logs.Info) ~now () =
  Logs.set_reporter (reporter ?out ~now ());
  Logs.set_level ~all:true (Some level)
