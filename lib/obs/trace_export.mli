(** Streaming span export as Chrome trace-event JSONL.

    Pairs with {!Span.set_export_hook} so a retention-capped span store
    streams each span's full timeline to disk just before eviction:
    bounded memory, no lost trace data.  The output loads in
    chrome://tracing or Perfetto (one simulated tick = 1us); each span
    is an async begin/end pair carrying the span id, with one instant
    event per recorded hop. *)

type t

val create : string -> t
(** Open [path] for appending trace lines (truncates any existing
    file). *)

val write_span : t -> Span.exported -> unit
(** Emit one span's complete record: a ["ph":"b"] line, one
    ["ph":"i"] line per event, and a ["ph":"e"] line.
    @raise Invalid_argument after [close]. *)

val attach : t -> Span.t -> unit
(** Install [write_span] as the store's export hook, so spans stream
    out as retention evicts them. *)

val drain : t -> Span.t -> int
(** Export every still-live span in id order (used at end of run to
    flush spans the cap never evicted).  Returns the number written. *)

val exported : t -> int
(** Spans written so far (eviction-streamed plus drained). *)

val lines : t -> int
(** Raw JSONL lines written. *)

val path : t -> string
val close : t -> unit
