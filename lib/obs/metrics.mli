(** Process-wide metrics registry: counters, gauges, and exact
    simulated-clock latency histograms with nearest-rank percentiles. *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int

(** {2 Gauges} *)

val gauge_set : t -> string -> int -> unit
val gauge : t -> string -> int

(** {2 Histograms} *)

val observe : t -> string -> int -> unit
val hist_count : t -> string -> int

val hist_sum : t -> string -> int
(** Sum of every value observed under [name] (0 when none). *)

val percentile : t -> string -> float -> int option
(** [percentile t name p] is the nearest-rank [p]-th percentile (0-100)
    of every value observed under [name], or [None] if nothing was
    observed. *)

val percentiles : t -> string -> (int * int * int) option
(** [(p50, p95, p99)] of the named histogram. *)

(** {2 Snapshot} *)

type hist_summary = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_max : int;
  hs_p50 : int;
  hs_p95 : int;
  hs_p99 : int;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * int) list;
  snap_hists : hist_summary list;
}

val snapshot : t -> snapshot

val render : snapshot -> string
(** Line-oriented text form: [counter k v], [gauge k v],
    [hist k count= sum= max= p50= p95= p99=] records, one per line. *)

val reset : t -> unit
