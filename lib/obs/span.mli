(** Causal trace spans: per-update timelines across hosts, ordered by
    the simulated clock. *)

type t

type event = { e_tick : int; e_host : string; e_label : string; e_seq : int }

val none : int
(** The null span id (0): [event] on it is a no-op, and it is what old
    on-disk/wire encodings without a span field decode to. *)

val create : unit -> t

val set_retention : t -> int -> unit
(** Bound the table to the newest [cap] spans ([cap > 0]); older spans
    are evicted as new ones start, and later [event]s on them become
    no-ops.  By default retention is unbounded — every span is kept,
    which is what the observability experiments rely on.  Million-op
    replays (the SCALE benchmark) set a cap so per-update spans do not
    accumulate without bound. *)

type exported = {
  x_id : int;
  x_label : string;
  x_origin : string;
  x_start : int;
  x_events : event list;  (** oldest-first *)
}
(** A span's full record at the moment it is handed to an export hook
    (or read back with [export]). *)

val set_export_hook : t -> (exported -> unit) -> unit
(** Install a hook that receives each span's complete record just
    before retention evicts it from the table.  With a hook installed a
    capped store loses no trace data: everything is either still live
    or has passed through the hook. *)

val clear_export_hook : t -> unit

val set_evict_notify : t -> (unit -> unit) -> unit
(** Called once per evicted span, after the export hook; [Obs.create]
    wires this to a [spans.evicted] counter in the metrics registry. *)

val export : t -> int -> exported option
(** The full record of a still-live span (events oldest-first); [None]
    if evicted or never minted. *)

val evicted : t -> int
(** Spans dropped by retention so far. *)

val minted : t -> int
(** Total spans ever started. *)

val live : t -> int
(** Spans currently resident ([minted] minus [evicted]). *)

type status = Live | Evicted | Unknown

val status : t -> int -> status
(** Distinguish a span aged out by retention ([Evicted]) from an id
    this registry never minted ([Unknown]).  Ids are dense from 1, so
    anything below the allocation cursor but absent from the table was
    evicted.  (An id minted by a {e different} registry that happens to
    fall below this one's cursor is indistinguishable from a local
    eviction; callers comparing across registries must carry the
    origin.) *)

val start : t -> host:string -> tick:int -> string -> int
(** Mint a fresh span id and record its first event. *)

val event : t -> int -> host:string -> tick:int -> string -> unit
(** Append an event to an existing span.  No-op for [none] or unknown
    ids. *)

val timeline : t -> int -> event list
(** All events of a span, sorted by (tick, admission order). *)

val start_tick : t -> int -> int option
val origin : t -> int -> string option
val label : t -> int -> string option
val ids : t -> int list
val pp_timeline : Format.formatter -> event list -> unit

(** {2 Ambient context}

    A process-global "current span" so layers deep in the stack (the
    journal's group commit, the shadow installer) can attribute events
    without an explicit argument in every signature. *)

type ctx

val make_ctx : spans:t -> id:int -> host:string -> now:(unit -> int) -> ctx
val with_ctx : ctx -> (unit -> 'a) -> 'a
val without_ctx : (unit -> 'a) -> 'a
val capture : unit -> ctx option
(** Grab the ambient context for deferred attribution (e.g. a group
    commit that seals later than the write it covers). *)

val ambient_id : unit -> int
val emit : ?host:string -> string -> unit
(** Record an event on the ambient span; silently does nothing when no
    context is installed. *)

val emit_in : ctx -> ?host:string -> string -> unit
