(* The health plane: SLO thresholds over live gauges, plus a per-daemon
   tick profiler.

   The convergence watchdog (lib/sim/cluster.ml) samples a handful of
   gauges on a period — oldest undominated update age per volume,
   per-replica staleness, journal flush backlog, gossip suspect count,
   raft leadership churn, propagation backlog — and feeds each sample
   through [observe].  This module owns the threshold semantics: each
   gauge has a [Degraded] and a [Stuck] limit, transitions are
   edge-triggered (an event fires only when a gauge escalates past a
   limit it was previously under, not on every breached sample), and a
   return to healthy re-arms the gauge so a later breach fires again.
   Events carry the breaching value, the limit, and a span id linking
   the symptom back to the concrete update that exhibits it. *)

type level = Degraded | Stuck

let level_name = function Degraded -> "degraded" | Stuck -> "stuck"
let level_rank = function Degraded -> 1 | Stuck -> 2

type slo = { degraded : int; stuck : int; confirm : int }
(* A gauge sample [v] is healthy below [degraded], Degraded at
   [degraded <= v < stuck], Stuck at [v >= stuck] — but a level is only
   *confirmed* (and its event raised) once it has held for [confirm]
   consecutive samples, the Prometheus "for:" idiom.  confirm = 1 fires
   on first breach; noisy sources (an epidemic failure detector will
   transiently suspect a healthy peer) set it higher. *)

let slo ?(confirm = 1) ~degraded ~stuck () =
  if degraded <= 0 || stuck < degraded || confirm < 1 then invalid_arg "Health.slo";
  { degraded; stuck; confirm }

type config = { period : int; slos : (string * slo) list }

(* Thresholds are in simulated ticks (ages/backlogs) or plain counts
   (suspects, churn).  Defaults are sized for the default daemon
   periods: propagation delay 10, reconcile period 50, gossip period 5 —
   an update older than 400 ticks has missed many daemon rounds. *)
let default_config =
  {
    period = 50;
    slos =
      [
        ("health.divergence_age", slo ~degraded:400 ~stuck:1200 ());
        ("health.staleness", slo ~degraded:400 ~stuck:1200 ());
        ("health.journal_backlog", slo ~degraded:64 ~stuck:512 ());
        ("health.gossip_suspects", slo ~confirm:2 ~degraded:1 ~stuck:4 ());
        ("health.raft_churn", slo ~degraded:2 ~stuck:6 ());
        ("health.prop_backlog", slo ~degraded:256 ~stuck:2048 ());
      ];
  }

let with_slo cfg gauge slo =
  { cfg with slos = (gauge, slo) :: List.remove_assoc gauge cfg.slos }

type event = {
  hv_tick : int;
  hv_level : level;
  hv_gauge : string;
  hv_value : int;
  hv_limit : int;
  hv_span : int; (* evidence: a span exhibiting the symptom; Span.none if n/a *)
  hv_detail : string;
}

(* Per-gauge alerting state: the last *confirmed* level (what events
   are edge-triggered against) plus the consecutive-breach streaks that
   implement the [confirm] hold. *)
type gstate = {
  mutable g_confirmed : level option;
  mutable g_deg_streak : int; (* consecutive samples at >= degraded *)
  mutable g_stuck_streak : int; (* consecutive samples at >= stuck *)
}

type t = {
  config : config;
  metrics : Metrics.t option;
  state : (string, gstate) Hashtbl.t;
  mutable events : event list; (* newest first *)
  mutable n_degraded : int;
  mutable n_stuck : int;
  mutable n_recoveries : int;
}

let create ?metrics config =
  {
    config;
    metrics;
    state = Hashtbl.create 8;
    events = [];
    n_degraded = 0;
    n_stuck = 0;
    n_recoveries = 0;
  }

let config t = t.config
let events t = List.rev t.events
let events_degraded t = t.n_degraded
let events_stuck t = t.n_stuck
let recoveries t = t.n_recoveries

let gstate t gauge =
  match Hashtbl.find_opt t.state gauge with
  | Some g -> g
  | None ->
    let g = { g_confirmed = None; g_deg_streak = 0; g_stuck_streak = 0 } in
    Hashtbl.replace t.state gauge g;
    g

let current_level t gauge =
  Option.bind (Hashtbl.find_opt t.state gauge) (fun g -> g.g_confirmed)

let count t = function
  | Degraded ->
    t.n_degraded <- t.n_degraded + 1;
    Option.iter (fun m -> Metrics.incr m "health.events_degraded") t.metrics
  | Stuck ->
    t.n_stuck <- t.n_stuck + 1;
    Option.iter (fun m -> Metrics.incr m "health.events_stuck") t.metrics

let rank = function None -> 0 | Some l -> level_rank l

let observe t ~tick ~gauge ~value ~span ~detail =
  match List.assoc_opt gauge t.config.slos with
  | None -> () (* no SLO configured: the gauge is informational only *)
  | Some slo ->
    let g = gstate t gauge in
    g.g_deg_streak <- (if value >= slo.degraded then g.g_deg_streak + 1 else 0);
    g.g_stuck_streak <- (if value >= slo.stuck then g.g_stuck_streak + 1 else 0);
    let target =
      if g.g_stuck_streak >= slo.confirm then Some Stuck
      else if g.g_deg_streak >= slo.confirm then Some Degraded
      else None
    in
    if rank target > rank g.g_confirmed then begin
      let lv = Option.get target in
      let limit = match lv with Degraded -> slo.degraded | Stuck -> slo.stuck in
      g.g_confirmed <- target;
      count t lv;
      t.events <-
        {
          hv_tick = tick;
          hv_level = lv;
          hv_gauge = gauge;
          hv_value = value;
          hv_limit = limit;
          hv_span = span;
          hv_detail = detail;
        }
        :: t.events
    end
    else if rank target < rank g.g_confirmed then begin
      (* Silent downgrade: a later re-escalation must re-fire, and a
         full return to healthy counts as a recovery. *)
      if target = None then begin
        t.n_recoveries <- t.n_recoveries + 1;
        Option.iter (fun m -> Metrics.incr m "health.recoveries") t.metrics
      end;
      g.g_confirmed <- target
    end

let pp_event ppf e =
  Format.fprintf ppf "[%6d] %-8s %s value=%d limit=%d span=%d %s" e.hv_tick
    (level_name e.hv_level) e.hv_gauge e.hv_value e.hv_limit e.hv_span e.hv_detail

(* ------------------------------------------------------------------ *)
(* Per-daemon tick profiler                                            *)

(* Attribution for "where do the simulator's cycles go": every daemon
   phase that [Cluster.tick_daemons] activates records how many host
   activations ran, how much work they did (pulls, recon installs,
   gossip rounds...), and the wall-clock self-time of the phase in
   microseconds.  Self-times go into power-of-two bucket histograms so
   the shape survives a million ticks without storing samples.

   The profiler is deliberately *outside* the metrics registry: the
   linear and indexed tick paths are held observably identical by a
   qcheck equivalence over cluster state + metrics, and wall-clock can
   never be part of that contract. *)
module Profile = struct
  type cell = {
    mutable p_ticks : int; (* phase activations recorded *)
    mutable p_activations : int; (* per-host daemon activations *)
    mutable p_work : int; (* daemon-reported work units *)
    mutable p_us : int; (* total self-time, microseconds *)
    buckets : (int, int) Hashtbl.t; (* log2(us+1) -> count *)
  }

  type t = { cells : (string, cell) Hashtbl.t }

  let create () = { cells = Hashtbl.create 8 }

  let cell t daemon =
    match Hashtbl.find_opt t.cells daemon with
    | Some c -> c
    | None ->
      let c = { p_ticks = 0; p_activations = 0; p_work = 0; p_us = 0; buckets = Hashtbl.create 8 } in
      Hashtbl.replace t.cells daemon c;
      c

  let bucket_of us =
    let rec log2 n acc = if n <= 0 then acc else log2 (n lsr 1) (acc + 1) in
    log2 us 0

  let record t ~daemon ~activations ~work ~us =
    let c = cell t daemon in
    c.p_ticks <- c.p_ticks + 1;
    c.p_activations <- c.p_activations + activations;
    c.p_work <- c.p_work + work;
    c.p_us <- c.p_us + us;
    let b = bucket_of us in
    Hashtbl.replace c.buckets b (1 + Option.value ~default:0 (Hashtbl.find_opt c.buckets b))

  type row = {
    pr_daemon : string;
    pr_ticks : int;
    pr_activations : int;
    pr_work : int;
    pr_us : int;
  }

  let rows t =
    Hashtbl.fold
      (fun daemon c acc ->
        {
          pr_daemon = daemon;
          pr_ticks = c.p_ticks;
          pr_activations = c.p_activations;
          pr_work = c.p_work;
          pr_us = c.p_us;
        }
        :: acc)
      t.cells []
    |> List.sort (fun a b ->
           (* top talkers first: self-time, then work, then activations *)
           match compare b.pr_us a.pr_us with
           | 0 -> (
             match compare b.pr_work a.pr_work with
             | 0 -> (
               match compare b.pr_activations a.pr_activations with
               | 0 -> compare a.pr_daemon b.pr_daemon
               | c -> c)
             | c -> c)
           | c -> c)

  let top t = match rows t with [] -> None | r :: _ -> Some r

  let us_histogram t daemon =
    match Hashtbl.find_opt t.cells daemon with
    | None -> []
    | Some c ->
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) c.buckets [] |> List.sort compare

  let pp ppf t =
    Format.fprintf ppf "%-8s %10s %12s %10s %10s@." "daemon" "ticks" "activations" "work" "us";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-8s %10d %12d %10d %10d@." r.pr_daemon r.pr_ticks r.pr_activations
          r.pr_work r.pr_us)
      (rows t)
end
