(** The observability bundle: one metrics registry + one span table,
    plus the shared [Logs] reporter tagging host and simulated time. *)

type t = { metrics : Metrics.t; spans : Span.t }

val create : unit -> t

val default : t
(** Fallback bundle for components built without an explicit [?obs].
    Clusters create their own so simulations stay isolated. *)

val count : ?n:int -> t -> Counters.t -> string -> unit
(** Add [n] (default 1) to [key] in both the given private counter set
    and the bundle's metrics registry — the single mirroring helper the
    daemons share instead of each keeping its own copy. *)

val host_tag : string Logs.Tag.def
(** Attach with [Logs.Tag.add host_tag name Logs.Tag.empty] so the
    reporter prefixes the line with the emitting replica. *)

val reporter : ?out:Format.formatter -> now:(unit -> int) -> unit -> Logs.reporter
(** Formats every line as [[tick] LEVEL src host: msg] using the
    simulated clock. *)

val install_reporter :
  ?out:Format.formatter -> ?level:Logs.level -> now:(unit -> int) -> unit -> unit
