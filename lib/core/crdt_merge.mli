(** The CRDT directory-merge subsystem: tree repair over the optimistic
    OR-set directory merge, plus pluggable file-conflict resolvers.

    Per-directory reconciliation ({!Physical.merge_dir}) converges each
    directory's entry set but leaves the {e tree} unconstrained:
    concurrent cross-renames can tombstone every path to a subtree
    (orphans) or make the surviving parent links cyclic.  In [`Crdt]
    mode ({!Physical.set_dir_merge}) tombstoned directories keep their
    storage in place, and {!repair} — run by
    {!Reconcile.reconcile_volume} after every active pass — walks that
    storage, feeds the live parent links to the pure decision kernel
    ({!Crdt_tree.resolve}), and applies its verdicts as ordinary
    joinable directory operations: losing links are tombstoned, parent-
    less directories are re-attached under the replicated [lost+found]
    with a name and birth derived from their fid alone.  Replicas that
    repair independently therefore produce entries that {e join} under
    the OR-set merge instead of fighting, and every replica converges
    to the same repaired tree.

    File conflicts get the same treatment through {!Mv_register}: each
    pending conflict is a multi-value register (the maximal antichain
    of concurrent versions), and {!resolve_pending} applies the
    session's {!Resolver} — last-writer-wins, an app-level merge
    callback, or the paper's owner-report behavior (leave it in the
    {!Conflict_log}). *)

type repair_stats = {
  rs_demoted : int;       (** losing live links tombstoned *)
  rs_attached : int;      (** directories re-parented into lost+found *)
  rs_cycles_broken : int; (** winner-graph cycles cut *)
  rs_orphans : int;       (** parent-less directories found *)
}

val repair : Physical.t -> (repair_stats, Errno.t) result
(** One repair pass: discover the stored parent graph, resolve it with
    {!Crdt_tree.resolve}, apply the decisions.  Idempotent — at the
    fixpoint every decision is a [Keep] and nothing changes.  Feeds the
    ["crdt.merges"], ["crdt.cycles_broken"], ["crdt.orphans_attached"]
    and ["crdt.losers_demoted"] counters (replica + obs registry) and
    emits a ["crdt:repair"] span when anything changed. *)

type tree_stats = {
  ts_reachable_dirs : int;
      (** directories reachable from the root via live entries *)
  ts_unreachable_dirs : int;
      (** stored directories holding live entries that no live path
          reaches — orphaned subtrees; 0 after repair *)
  ts_cycles : int;
      (** back-edges met walking the live tree; 0 after repair *)
}

val tree_stats : Physical.t -> (tree_stats, Errno.t) result

val digest : Physical.t -> (string, Errno.t) result
(** Canonical digest of the live tree: a depth-first walk in effective-
    name order emitting one line per entry (directories recurse; files
    contribute their version vector and content digest), hashed.  Two
    replicas hold the same resolved tree iff their digests are equal. *)

type pending = {
  p_entry_ids : int list;       (** conflict-log entries backing this register *)
  p_fidpath : Physical.fidpath;
  p_fid : Ids.file_id;
  p_span : int;                 (** trace span of the local version (0 untraced) *)
  p_register : Mv_register.t;   (** local version joined with every reported remote *)
}

val pending_registers : Physical.t -> pending list
(** The unresolved file conflicts as multi-value registers, one per
    file: the local stored version joined with every remote version the
    conflict log preserved.  What [ficusctl conflicts] lists. *)

val resolve_pending : local:Physical.t -> resolver:Resolver.t -> int
(** Resolve every pending file conflict the [resolver] can decide
    ([Owner_report] decides none).  The chosen contents are installed
    under the {e join} of all version vectors — no bump — so replicas
    resolving independently install byte-identical results and later
    exchanges see them as up to date.  Returns how many registers were
    resolved; feeds ["crdt.mv_registers"] and
    ["crdt.resolver_invocations"]. *)
