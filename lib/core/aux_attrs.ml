type fkind = Freg | Fdir | Fgraft

type t = {
  kind : fkind;
  vv : Version_vector.t;
  uid : int;
  conflict : bool;
  graft_target : Ids.volume_ref option;
  span : int;
  summary : Version_vector.t option;
  digest : string option;
}

let make kind =
  {
    kind;
    vv = Version_vector.empty;
    uid = 0;
    conflict = false;
    graft_target = None;
    span = 0;
    summary = None;
    digest = None;
  }

let kind_to_string = function Freg -> "reg" | Fdir -> "dir" | Fgraft -> "graft"

let kind_of_string = function
  | "reg" -> Some Freg
  | "dir" -> Some Fdir
  | "graft" -> Some Fgraft
  | _ -> None

let kind_to_vtype = function
  | Freg -> Vnode.VREG
  | Fdir -> Vnode.VDIR
  | Fgraft -> Vnode.VGRAFT

let encode t =
  let lines =
    [
      "kind=" ^ kind_to_string t.kind;
      "vv=" ^ Version_vector.encode t.vv;
      "uid=" ^ string_of_int t.uid;
      "conflict=" ^ (if t.conflict then "1" else "0");
    ]
    @ (match t.graft_target with
       | None -> []
       | Some { Ids.alloc; vol } -> [ Printf.sprintf "graft=%d.%d" alloc vol ])
    @ (if t.span = 0 then [] else [ Printf.sprintf "span=%d" t.span ])
    @ (match t.summary with
       | None -> []
       | Some s -> [ "summary=" ^ Version_vector.encode s ])
    @ (match t.digest with None -> [] | Some d -> [ "digest=" ^ d ])
  in
  String.concat "\n" lines ^ "\n"

let decode s =
  let fields =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.index_opt line '=' with
           | None -> None
           | Some i ->
             Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)))
  in
  let find k = List.assoc_opt k fields in
  match find "kind", find "vv", find "uid", find "conflict" with
  | Some kind, Some vv, Some uid, Some conflict ->
    (match kind_of_string kind, Version_vector.decode vv, int_of_string_opt uid with
     | Some kind, Some vv, Some uid ->
       let graft_target =
         match find "graft" with
         | None -> None
         | Some g ->
           (match String.split_on_char '.' g with
            | [ a; v ] ->
              (match int_of_string_opt a, int_of_string_opt v with
               | Some alloc, Some vol -> Some { Ids.alloc; vol }
               | _, _ -> None)
            | _ -> None)
       in
       let span =
         match find "span" with
         | None -> 0
         | Some s -> Option.value ~default:0 (int_of_string_opt s)
       in
       let summary =
         match find "summary" with None -> None | Some s -> Version_vector.decode s
       in
       let digest = find "digest" in
       Some { kind; vv; uid; conflict = conflict = "1"; graft_target; span; summary; digest }
     | _, _, _ -> None)
  | _, _, _, _ -> None

let ( let* ) = Result.bind

let load ~dir fid =
  let* aux_vnode = dir.Vnode.lookup (Ids.aux_name fid) in
  let* contents = Vnode.read_all aux_vnode in
  match decode contents with None -> Error Errno.EIO | Some t -> Ok t

let store ~dir fid t =
  let name = Ids.aux_name fid in
  let* aux_vnode =
    match dir.Vnode.lookup name with
    | Ok v -> Ok v
    | Error Errno.ENOENT -> dir.Vnode.create name
    | Error _ as e -> e
  in
  Vnode.write_all aux_vnode (encode t)
