let log_src = Logs.Src.create "ficus.propagation" ~doc:"Ficus update propagation daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Tag every message with the host so the shared {!Obs.reporter} can
   attribute interleaved multi-host logs. *)
let log_tags host = Logs.Tag.add Obs.host_tag host Logs.Tag.empty


type t = {
  nvc : New_version_cache.t;
  clock : Clock.t;
  host : string;
  connect : Remote.connector;
  local_replica : Ids.volume_ref -> Physical.t option;
  liveness : string -> Gossip.liveness;
  delta : bool;
  delay : int;
  max_attempts : int;
  backoff_base : int;
  backoff_max : int;
  deadline : int;
  rng : Random.State.t;
  counters : Counters.t;
  obs : Obs.t;
}

let create ?(delay = 0) ?(max_attempts = 5) ?(backoff_base = 2) ?(backoff_max = 64)
    ?(deadline = 500) ?seed ?(obs = Obs.default) ?(delta = true)
    ?(liveness = fun _ -> Gossip.Alive) ~clock ~host ~connect ~local_replica () =
  if backoff_base < 0 || backoff_max < 0 || deadline < 0 then
    invalid_arg "Propagation.create";
  let seed = match seed with Some s -> s | None -> Hashtbl.hash host in
  {
    nvc = New_version_cache.create ();
    clock;
    host;
    connect;
    local_replica;
    liveness;
    delta;
    delay;
    max_attempts;
    backoff_base;
    backoff_max;
    deadline;
    rng = Random.State.make [| seed |];
    counters = Counters.create ();
    obs;
  }

(* Exponential backoff with jitter: after the [n]th failure wait
   [base * 2^(n-1)] ticks (capped) plus up to that much again of
   jitter, so retries from many hosts decorrelate instead of hammering
   a recovering origin in lockstep. *)
let backoff t attempts =
  let shift = min (max 0 (attempts - 1)) 16 in
  let base = min t.backoff_max (t.backoff_base * (1 lsl shift)) in
  let jitter = if base > 1 then Random.State.int t.rng base else 0 in
  base + jitter

let ( let* ) = Result.bind

(* Per-daemon private counter plus the shared cluster-wide registry, so
   propagation activity shows up in Cluster.metrics_snapshot. *)
let count t key = Obs.count t.obs t.counters key
let count_n t key n = Obs.count ~n t.obs t.counters key

let on_notify t (e : Notify.event) =
  match t.local_replica e.Notify.vref with
  | None -> ()
  | Some phys ->
    (* Our own updates come back via the multicast; ignore them. *)
    if e.Notify.origin_rid <> Physical.rid phys then begin
      let now = Clock.now t.clock in
      Span.event t.obs.Obs.spans e.Notify.span ~host:t.host ~tick:now "nvc:note";
      Metrics.incr t.obs.Obs.metrics "notify.received";
      if New_version_cache.note t.nvc e ~now then count t "prop.nvc_deduped"
    end

(* Record one delta-fetch outcome in the counters ("prop.bytes" now
   covers every byte the pull put on the wire: file bodies, directory
   fetches, chunk maps and negotiation requests alike). *)
let count_fetch t (stats : Delta.stats) =
  count_n t "prop.bytes" stats.Delta.wire_bytes;
  if stats.Delta.saved_bytes > 0 then
    count_n t "prop.bytes_saved" stats.Delta.saved_bytes;
  if stats.Delta.chunks_hit > 0 then count_n t "prop.chunks_hit" stats.Delta.chunks_hit;
  if stats.Delta.chunks_miss > 0 then
    count_n t "prop.chunks_miss" stats.Delta.chunks_miss;
  match stats.Delta.mode with
  | Delta.Delta -> count t "prop.pull.delta"
  | Delta.Fallback -> count t "prop.delta_fallback"
  | Delta.Whole -> ()

let pull t phys (e : New_version_cache.entry) =
  match e.New_version_cache.kind with
  | Aux_attrs.Freg
    when (not (Version_vector.equal e.New_version_cache.vv Version_vector.empty))
         && (match Physical.get_version phys e.New_version_cache.fidpath with
             | Ok lvi ->
               lvi.Physical.vi_stored
               && Version_vector.dominates lvi.Physical.vi_vv e.New_version_cache.vv
             | Error _ -> false) ->
    (* The notification carried the origin's version vector and our local
       history already dominates it: the pull is provably redundant —
       drop it without an RPC. *)
    count t "prop.skipped_dominated";
    Span.event t.obs.Obs.spans e.New_version_cache.span ~host:t.host
      ~tick:(Clock.now t.clock) "prop:skip-dominated";
    Ok []
  | _ ->
  let* remote_root =
    t.connect ~host:e.New_version_cache.origin_host ~vref:e.New_version_cache.vref
      ~rid:e.New_version_cache.origin_rid
  in
  match e.New_version_cache.kind with
  | Aux_attrs.Freg ->
    let* outcome, stats =
      if t.delta then
        Delta.fetch_file ~local:phys ~remote_root e.New_version_cache.fidpath
      else
        (* Whole-copy mode: the measurement baseline for the DELTA
           experiment, and an escape hatch if chunking misbehaves. *)
        let* vi, data, wire =
          Remote.fetch_file_sized remote_root e.New_version_cache.fidpath
        in
        Ok
          ( Delta.Data (vi, data),
            {
              Delta.mode = Delta.Whole;
              wire_bytes = wire;
              saved_bytes = 0;
              chunks_hit = 0;
              chunks_miss = 0;
            } )
    in
    count_fetch t stats;
    (match outcome with
     | Delta.Up_to_date _ ->
       (* A header-sized answer: the advertised version was already ours
          (stale notification, or raced with reconciliation). *)
       count t "prop.uptodate_header";
       Ok []
     | Delta.Data (vi, data) ->
       (* Prefer the span carried by the notification; fall back to the
          one stored in the origin's aux attributes (a reconciled hint). *)
       let span =
         if e.New_version_cache.span <> 0 then e.New_version_cache.span
         else vi.Physical.vi_span
       in
       Span.event t.obs.Obs.spans span ~host:t.host ~tick:(Clock.now t.clock)
         (if stats.Delta.mode = Delta.Delta then "prop:pull-delta" else "prop:pull");
       let ctx =
         Span.make_ctx ~spans:t.obs.Obs.spans ~id:span ~host:t.host
           ~now:(fun () -> Clock.now t.clock)
       in
       let* outcome =
         Span.with_ctx ctx @@ fun () ->
         Physical.install_file ~span ~via:"prop" phys e.New_version_cache.fidpath
           ~vv:vi.Physical.vi_vv ~uid:vi.Physical.vi_uid ~data
           ~origin_rid:e.New_version_cache.origin_rid
       in
       count t "prop.pull.file";
       (match outcome with
        | Physical.Conflict _ -> count t "prop.conflicts"
        | Physical.Installed | Physical.Up_to_date -> ());
       Ok [])
  | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
    let* remote_fdir, dir_wire =
      Remote.fetch_dir_sized remote_root e.New_version_cache.fidpath
    in
    let* result =
      Physical.merge_dir phys e.New_version_cache.fidpath
        ~remote_rid:e.New_version_cache.origin_rid remote_fdir
    in
    count t "prop.pull.dir";
    count_n t "prop.bytes" dir_wire;
    (* Entries the merge materialized need their own contents pulled. *)
    let followups =
      List.filter_map
        (fun action ->
          match action with
          | Fdir.Materialize entry ->
            Some
              {
                Notify.vref = e.New_version_cache.vref;
                fidpath = e.New_version_cache.fidpath @ [ entry.Fdir.fid ];
                fid = entry.Fdir.fid;
                kind = entry.Fdir.kind;
                origin_rid = e.New_version_cache.origin_rid;
                origin_host = e.New_version_cache.origin_host;
                span = e.New_version_cache.span;
                vv = Version_vector.empty;
              }
          | Fdir.Unmaterialize _ | Fdir.Expire _ -> None)
        result.Fdir.actions
    in
    Ok followups

let run_once t =
  let now = Clock.now t.clock in
  let ready = New_version_cache.take_ready t.nvc ~now ~min_age:t.delay in
  let attempted = ref 0 in
  let handle e =
    match t.local_replica e.New_version_cache.vref with
    | None -> ()
    | Some _
      when t.liveness e.New_version_cache.origin_host <> Gossip.Alive ->
      (* The failure detector says the origin is doubtful: don't burn an
         RPC (and its retry/backoff budget) on it.  The entry sleeps and
         keeps its attempts; if the origin never refutes the suspicion,
         the deadline below abandons the pull to reconciliation — the
         detector is an optimization, never a correctness gate. *)
      let now = Clock.now t.clock in
      let expired =
        t.deadline > 0 && now - e.New_version_cache.queued_at >= t.deadline
      in
      if expired then begin
        count t "prop.abandoned";
        Log.info (fun m ->
            m ~tags:(log_tags t.host)
              "%s abandoning pull of %s: origin %s still %s at deadline"
              t.host
              (Ids.fidpath_to_string e.New_version_cache.fidpath)
              e.New_version_cache.origin_host
              (Gossip.liveness_to_string
                 (t.liveness e.New_version_cache.origin_host)))
      end
      else begin
        count t "prop.rpcs_skipped_dead";
        e.New_version_cache.not_before <-
          now + backoff t (e.New_version_cache.attempts + 1);
        New_version_cache.requeue t.nvc e
      end
    | Some phys ->
      incr attempted;
      (match pull t phys e with
       | Ok followups ->
         Log.debug (fun m ->
             m ~tags:(log_tags t.host) "%s pulled %s from %s" t.host
               (Ids.fidpath_to_string e.New_version_cache.fidpath)
               e.New_version_cache.origin_host);
         List.iter
           (fun ev ->
             if New_version_cache.note t.nvc ev ~now then count t "prop.nvc_deduped")
           followups
       | Error err ->
         e.New_version_cache.attempts <- e.New_version_cache.attempts + 1;
         let now = Clock.now t.clock in
         let expired =
           t.deadline > 0 && now - e.New_version_cache.queued_at >= t.deadline
         in
         if e.New_version_cache.attempts < t.max_attempts && not expired then begin
           (* Back off only on network failure; other errors are usually
              ordering (a parent directory still being pulled) and want
              an immediate retry in the same propagation pass. *)
           let wait =
             match err with
             | Errno.EUNREACHABLE -> backoff t e.New_version_cache.attempts
             | _ -> 0
           in
           e.New_version_cache.not_before <- now + wait;
           count t "prop.retries";
           count_n t "prop.backoff_ticks" wait;
           New_version_cache.requeue t.nvc e
         end
         else begin
           (* Give up; the reconciliation protocol will converge it. *)
           Log.info (fun m ->
               m ~tags:(log_tags t.host) "%s abandoning pull of %s from %s after %d attempts (%s%s)" t.host
                 (Ids.fidpath_to_string e.New_version_cache.fidpath)
                 e.New_version_cache.origin_host e.New_version_cache.attempts
                 (Errno.to_string err)
                 (if expired then ", deadline passed" else ""));
           count t "prop.abandoned"
         end)
  in
  List.iter handle ready;
  !attempted

let pending t = New_version_cache.size t.nvc
let cache t = t.nvc
let counters t = t.counters
