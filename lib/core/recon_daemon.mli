(** The periodic reconciliation daemon.

    Paper §3.3: "This protocol is executed periodically to traverse an
    entire subgraph ... and reconcile the local replica against a remote
    replica."  One daemon per host; on each {!tick} past its period it
    reconciles every locally stored volume replica against the {e next}
    peer in round-robin rotation, so that over successive periods every
    pair is exercised and the whole replica set converges even when some
    peers are down at any given moment.

    Like the propagation daemon, it is driven explicitly (the simulation
    owns time): call {!tick} as the clock advances. *)

type t

val create :
  ?period:int ->
  ?obs:Obs.t ->
  ?liveness:(string -> Gossip.liveness) ->
  ?dir_merge:[ `Legacy | `Crdt ] ->
  ?resolver:Resolver.t ->
  clock:Clock.t ->
  host:string ->
  connect:Remote.connector ->
  replicas:(unit -> (Ids.volume_ref * Physical.t) list) ->
  unit -> t
(** [period] (default 100 ticks) is the interval between passes;
    [replicas] lists the volume replicas this host currently stores
    (re-read each pass, so dynamically added replicas join the
    rotation).  Counters are mirrored into [obs]'s metrics registry so
    they appear in cluster-wide snapshots.

    [liveness] (default: everyone [Alive]) reorders each pass so peers
    the gossip failure detector calls [Suspect] or [Dead] are tried
    after every healthy one; when a healthy peer then absorbs the pass,
    the doubtful peers it spared are counted in
    ["recon.skipped_doubtful"].  Doubtful peers are deprioritized, never
    excluded, so all-pairs convergence is preserved.

    [dir_merge]/[resolver] are forwarded to every
    {!Reconcile.reconcile_volume} pass; when [dir_merge] is omitted each
    replica's own sticky mode applies. *)

val tick : t -> Reconcile.stats option
(** Run a pass if the period has elapsed; [None] when not yet due.
    An unreachable peer is skipped (counted in ["recon.skipped"]) and
    the pass fails over to the next peer in rotation order; only when
    {e every} peer is unreachable does the pass count an error. *)

val force : t -> Reconcile.stats
(** Run a pass now, regardless of the period. *)

val counters : t -> Counters.t
(** ["recon.passes"], ["recon.pairs"], ["recon.skipped"] (unreachable
    peers failed over), ["recon.skipped_doubtful"], ["recon.errors"]. *)

val next_due : t -> int
