(** The auxiliary replication-attribute file (paper §2.6).

    Each Ficus file replica is stored as a UFS file; the
    replication-related attributes — foremost the version vector — live
    in a companion file named [<hex-fid>.aux] in the same UFS directory.
    (The paper notes these would go in the inode if the UFS could be
    modified; the extra inode+data I/O of the auxiliary file is exactly
    the overhead experiment E2 measures.) *)

type fkind = Freg | Fdir | Fgraft

type t = {
  kind : fkind;
  vv : Version_vector.t;       (** update history of this replica *)
  uid : int;                   (** owner, for conflict reporting *)
  conflict : bool;             (** an unresolved concurrent update was detected *)
  graft_target : Ids.volume_ref option;  (** for [Fgraft] entries only *)
  span : int;
      (** trace span of the last update applied to this replica (0 =
          untraced; absent in old encodings and decoded as 0).  Lets
          reconciliation attribute a pulled version to the update's
          original timeline. *)
  summary : Version_vector.t option;
      (** subtree summary vector, directories only: a lower bound on the
          update events this replica has incorporated anywhere in the
          subtree rooted here, keyed by originating replica.  [None] in
          pre-summary encodings (recomputed at attach time) and for
          regular files. *)
  digest : string option;
      (** regular files: hex MD5 of the stored contents, recorded by the
          install path and {e cleared} by every local write (which goes
          through the version bump) — so a [Some] is never stale.  Served
          in the chunk-map header and checked by the delta puller after
          reassembly; [None] (old encodings, locally written files) makes
          the server recompute it from the contents. *)
}

val make : fkind -> t
(** Fresh attributes: empty version vector, uid 0, no conflict. *)

val encode : t -> string
val decode : string -> t option

val kind_to_vtype : fkind -> Vnode.vtype
val kind_to_string : fkind -> string

(** {1 Vnode-mediated access}

    Read and write the aux file through the layer below — these are the
    charged I/Os. *)

val load : dir:Vnode.t -> Ids.file_id -> (t, Errno.t) result
(** Read and parse [<hex>.aux] in [dir]; [EIO] if unparseable. *)

val store : dir:Vnode.t -> Ids.file_id -> t -> (unit, Errno.t) result
(** Create or overwrite the aux file. *)
