(** Client-side helpers for talking to a (possibly remote) physical layer
    {e exclusively through the vnode interface}.

    The logical layer, the propagation daemon and the reconciliation
    protocol never get a [Physical.t] for a remote replica — they hold
    only a root vnode, which may be the physical layer directly
    (co-resident) or an NFS client mount of it (paper Figure 2).  All the
    services the vnode interface lacks travel as {!Ctl_name}-encoded
    [lookup] names; this module does the encoding and response parsing. *)

type connector =
  host:string -> vref:Ids.volume_ref -> rid:Ids.replica_id -> (Vnode.t, Errno.t) result
(** How a host obtains the root vnode of some volume replica.  The
    simulation supplies one that returns the local physical root
    co-resident replicas and an NFS mount otherwise. *)

val walk : Vnode.t -> Physical.fidpath -> (Vnode.t, Errno.t) result
(** Resolve a fid path from a physical root by repeated ["@hex"]
    handle-lookups. *)

val get_version : Vnode.t -> Physical.fidpath -> (Physical.version_info, Errno.t) result
val fetch_file :
  Vnode.t -> Physical.fidpath -> (Physical.version_info * string, Errno.t) result
val fetch_dir : Vnode.t -> Physical.fidpath -> (Fdir.t, Errno.t) result

val fetch_file_sized :
  Vnode.t -> Physical.fidpath -> (Physical.version_info * string * int, Errno.t) result
(** {!fetch_file} plus the bytes the exchange put on the wire (request
    name + response body), for honest transfer accounting. *)

val fetch_dir_sized : Vnode.t -> Physical.fidpath -> (Fdir.t * int, Errno.t) result

(** {1 Delta negotiation}

    The chunk protocol is pull-shaped to fit the 255-byte ctl-name
    budget: the puller cannot enumerate the digests it holds in one
    request name, so instead it fetches the origin's (compact) chunk
    map, diffs it against its own locally computed map, and batch-fetches
    only the missing bodies a handful of digests per request. *)

type chunk_map = {
  cm_vi : Physical.version_info;
  cm_digest : string option;
      (** whole-content MD5 from the header — the puller's end-to-end
          check after reassembly; [None] from peers that predate it *)
  cm_chunks : Chunking.chunk list;
}

val fetch_chunk_map :
  Vnode.t -> Physical.fidpath -> (chunk_map * int, Errno.t) result
(** The ["getchunkmap"] ctl op: version info + whole-file digest +
    content-defined chunk map, plus wire bytes.  Peers that predate
    chunking answer [EINVAL]; callers fall back to {!fetch_file}
    (mirroring the [getdirvvs] fallback). *)

val fetch_chunks :
  Vnode.t -> Physical.fidpath -> string list ->
  ((string, string) Hashtbl.t * int, Errno.t) result
(** Fetch the bodies of the listed chunk digests via batched
    ["readchunks"] calls; returns digest → body plus total wire bytes.
    Every body is digest-verified before it is returned ([EIO] on
    mismatch); [EAGAIN] means the origin's contents changed since the
    map was served — fall back to a whole-file fetch. *)

type dir_versions = {
  dv_summary : Version_vector.t option;
      (** the directory's subtree summary; [None] from pre-summary peers *)
  dv_fdir : Fdir.t;
  dv_children : (Ids.file_id * Physical.version_info) list;
      (** version info for every live child, one batched RPC instead of a
          [get_version] per file *)
}

val fetch_dir_versions : Vnode.t -> Physical.fidpath -> (dir_versions, Errno.t) result
(** Batched ["getdirvvs"] fetch: a directory's summary, fdir and all
    child version infos in a single round trip.  Servers that predate the
    op answer [EINVAL]; callers fall back to the per-file walk. *)

val resolve :
  Vnode.t -> string -> (Ids.file_id * Aux_attrs.fkind, Errno.t) result
(** Name-to-handle translation in a directory vnode: the mapping the
    logical layer performs for every pathname component (paper §2.5). *)

val peers : Vnode.t -> ((Ids.replica_id * string) list, Errno.t) result
val meta : Vnode.t -> (Ids.volume_ref * Ids.replica_id, Errno.t) result

val stats : Vnode.t -> (string, Errno.t) result
(** Fetch the observability snapshot (metrics + span timelines) through
    the [".#ficus#stats"] ctl-name — the paper's encoded-lookup trick
    carrying a service the vnode interface never anticipated. *)

val send_open : Vnode.t -> Ids.file_id option -> Vnode.open_flag -> (unit, Errno.t) result
(** Deliver an open to the physical layer through the encoded-lookup
    channel, surviving NFS's open/close suppression (paper §2.3). *)

val send_close : Vnode.t -> Ids.file_id option -> (unit, Errno.t) result
