(** The new-version cache (paper §3.2).

    "A physical layer that receives an update notification makes an entry
    for the file in a new version cache.  An update propagation daemon
    consults this cache to see what new replica versions should be
    propagated in, and performs the propagation when it deems it
    appropriate to expend the effort."

    Entries are deduplicated per object: a burst of updates to one file
    collapses into a single pending pull, which is precisely why "delayed
    propagation may reduce the overall propagation cost when updates are
    bursty" (experiment E5). *)

type entry = {
  vref : Ids.volume_ref;
  fidpath : Ids.file_id list;
  fid : Ids.file_id;
  kind : Aux_attrs.fkind;
  origin_rid : Ids.replica_id;
  origin_host : string;
  span : int;            (** trace span of the newest absorbed update *)
  vv : Version_vector.t;
      (** merge of every absorbed notification's advertised version
          vector ([empty] when no notification carried one); the pull
          may be skipped only if the local history dominates this *)
  queued_at : int;       (** simulated time of first pending notification *)
  mutable attempts : int;
  mutable not_before : int;
      (** retry backoff: {!take_ready} skips the entry until the clock
          reaches this tick (0 = ready immediately) *)
}

type t

val create : unit -> t

val note : t -> Notify.event -> now:int -> bool
(** Record a notification.  A pending entry for the same object absorbs
    it — keeping the earliest [queued_at], adopting the newest origin and
    non-zero span, and merging the advertised version vectors — and
    [true] is returned (the collapse the ["prop.nvc_deduped"] counter
    tracks); [false] means a fresh entry was created. *)

val take_ready : t -> now:int -> min_age:int -> entry list
(** Remove and return entries that have been pending at least [min_age]
    ticks and whose [not_before] backoff has expired; [min_age] 0 means
    propagate eagerly. *)

val requeue : t -> entry -> unit
(** Put a failed entry back (e.g. origin unreachable); [attempts] and
    [not_before] are preserved so the daemon backs off between retries
    and can eventually give up and leave the work to reconciliation. *)

val peek : t -> entry list
(** Non-destructive view of every pending entry, oldest [queued_at]
    first — the health plane's staleness gauge reads the cache without
    disturbing the propagation daemon's backoff state. *)

val size : t -> int
val notes : t -> int
(** Total notifications absorbed since creation (for the burst-collapse
    measurement). *)

val deduped : t -> int
(** How many of those notifications collapsed into an already-pending
    entry instead of creating a new one. *)
