(** The Ficus logical layer (paper §2.5).

    Presents clients with the abstraction that each file has a single
    copy, although it may have many physical replicas.  Per operation it

    - selects a replica according to the consistency policy in effect
      (the default, per the paper, is {e one-copy availability}: use the
      most recent copy available — and {e any} accessible copy may accept
      an update, no quorum, no primary);
    - maps client-supplied names to Ficus file handles and uses handles
      to address the physical layers below (through plain vnode [lookup]
      with reserved ["@hex"] names, so an interposed NFS costs nothing);
    - performs whole-file concurrency control among its own clients;
    - autografts volumes (paper §4.4): when pathname translation meets a
      graft point, the volume named there is located via the graft
      point's own entries and grafted transparently; idle grafts are
      quietly pruned later.

    Failover between replicas is the layer's whole point: an operation
    fails only if {e no} replica of the file is accessible. *)

type t

type selection =
  | Most_recent       (** query accessible replicas' version vectors, use a maximal one (paper default) *)
  | Prefer_local      (** use a co-resident replica when one exists *)
  | First_available   (** first reachable replica in graft order *)

val create :
  ?selection:selection ->
  ?obs:Obs.t ->
  ?liveness:(string -> Gossip.liveness) ->
  host:string -> clock:Clock.t -> connect:Remote.connector -> unit -> t
(** [host] is this logical layer's host name, used to recognize local
    replicas; [connect] supplies physical-root vnodes (direct or via
    NFS).  Default selection is [Most_recent].  [obs] (default
    {!Obs.default}) receives metrics and the causal span that every
    mutating operation originates here, at the top of the stack.

    [liveness] (default: everyone [Alive]) lets the gossip failure
    detector steer replica selection: the first pass over a graft's
    replicas skips hosts judged [Suspect] or [Dead] (counted in
    ["logical.skipped_doubtful"]), but the retry pass always considers
    the full list — one-copy availability is never forfeited to a
    suspicion. *)

val host : t -> string
val obs : t -> Obs.t
val counters : t -> Counters.t
(** ["logical.ops"], ["logical.fallback"] (ops served by a non-preferred
    replica), ["logical.autograft"], ["logical.lock_denied"],
    ["logical.prune"], ["logical.skipped_doubtful"]. *)

(** {1 Volumes and grafting} *)

val graft_volume :
  t -> Ids.volume_ref -> replicas:(Ids.replica_id * string) list -> unit
(** Explicitly graft (mount) a volume — normally only the super-volume;
    everything below arrives by autografting. *)

val ungraft : t -> Ids.volume_ref -> unit

val grafted : t -> (Ids.volume_ref * (Ids.replica_id * string) list) list

val prune_grafts : t -> idle:int -> int
(** Drop autografted volumes unused for at least [idle] ticks; returns
    how many were pruned.  Explicit grafts stay. *)

val reset_connections : t -> unit
(** Drop every cached physical-root connection (e.g. after a server
    reboot invalidated NFS handles); they reconnect lazily. *)

(** {1 The client-facing vnode stack} *)

val root : t -> Ids.volume_ref -> (Vnode.t, Errno.t) result
(** The logical root vnode of a grafted volume: what the system-call
    layer mounts. *)

val open_locks : t -> int
(** Number of files currently open through this layer (lock-table size),
    for tests of the concurrency-control bookkeeping. *)
