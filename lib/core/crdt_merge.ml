let ( let* ) = Result.bind

type repair_stats = {
  rs_demoted : int;
  rs_attached : int;
  rs_cycles_broken : int;
  rs_orphans : int;
}

let node_of (fid : Ids.file_id) = (fid.Ids.issuer, fid.Ids.uniq)
let fid_of (issuer, uniq) = { Ids.issuer; uniq }

(* Mirror a repair counter into both the replica's private counters and
   the cluster-wide registry. *)
let count ?n t key = Obs.count ?n (Physical.obs t) (Physical.counters t) key

(* ------------------------------------------------------------------ *)
(* Discovery: the stored parent graph

   Walks storage, not the live namespace: in [`Crdt] mode a directory
   tombstoned everywhere still has its UFS subtree in place, which is
   exactly what makes it repairable.  A fid whose storage exists in two
   places (a stale copy behind a tombstone plus the live one) is walked
   once, whichever copy the walk meets first; the copies' link sets may
   differ between replicas, but every decision applied below is a
   joinable directory op, so divergent discoveries still converge. *)

let discover t =
  let paths = Hashtbl.create 32 in (* node -> storage fidpath *)
  let kinds = Hashtbl.create 32 in (* node -> entry kind *)
  let nodes = ref [] in
  let links = ref [] in
  let* () =
    Physical.walk_stored_dirs t (fun path fdir ->
        let fid = match List.rev path with [] -> Ids.root_fid | f :: _ -> f in
        let n = node_of fid in
        if not (Hashtbl.mem paths n) then begin
          Hashtbl.replace paths n path;
          nodes := n :: !nodes
        end;
        List.iter
          (fun (name, (e : Fdir.entry)) ->
            match e.Fdir.kind with
            | Aux_attrs.Freg -> ()
            | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
              let c = node_of e.Fdir.fid in
              Hashtbl.replace kinds c e.Fdir.kind;
              links :=
                {
                  Crdt_tree.l_parent = n;
                  l_child = c;
                  l_name = name;
                  l_birth = (e.Fdir.birth.Fdir.b_rid, e.Fdir.birth.Fdir.b_seq);
                }
                :: !links)
          (Fdir.live fdir))
  in
  Ok (paths, kinds, !nodes, !links)

let repair t =
  let* paths, kinds, nodes, links = discover t in
  let res =
    Crdt_tree.resolve ~root:(node_of Ids.root_fid)
      ~orphanage:(node_of Physical.lost_found_fid) ~nodes ~links
  in
  (* Demotes are applied before attaches: their target paths were
     recorded during discovery and attaching moves storage. *)
  let demotes =
    List.filter_map
      (function Crdt_tree.Demote l -> Some l | Crdt_tree.Keep _ | Crdt_tree.Attach _ -> None)
      res.Crdt_tree.decisions
  in
  let attaches =
    List.filter_map
      (function Crdt_tree.Attach n -> Some n | Crdt_tree.Keep _ | Crdt_tree.Demote _ -> None)
      res.Crdt_tree.decisions
  in
  let demoted = ref 0 in
  let attached = ref 0 in
  let rec do_demotes = function
    | [] -> Ok ()
    | (l : Crdt_tree.link) :: rest ->
      (match Hashtbl.find_opt paths l.Crdt_tree.l_parent with
       | None -> do_demotes rest
       | Some path ->
         let birth =
           { Fdir.b_rid = fst l.Crdt_tree.l_birth; b_seq = snd l.Crdt_tree.l_birth }
         in
         let* changed = Physical.demote_entry t path birth in
         if changed then incr demoted;
         do_demotes rest)
  in
  let rec do_attaches = function
    | [] -> Ok ()
    | n :: rest ->
      let kind = Option.value ~default:Aux_attrs.Fdir (Hashtbl.find_opt kinds n) in
      let* changed = Physical.attach_to_lost_found t ~fid:(fid_of n) ~kind in
      if changed then incr attached;
      do_attaches rest
  in
  let* () = do_demotes demotes in
  let* () = do_attaches attaches in
  count t "crdt.merges";
  if !demoted > 0 then count ~n:!demoted t "crdt.losers_demoted";
  if !attached > 0 then count ~n:!attached t "crdt.orphans_attached";
  if res.Crdt_tree.cycles_broken > 0 then
    count ~n:res.Crdt_tree.cycles_broken t "crdt.cycles_broken";
  if !demoted + !attached > 0 then begin
    let obs = Physical.obs t in
    let tick = Clock.now (Physical.clock t) in
    let span = Span.start obs.Obs.spans ~host:(Physical.host t) ~tick "crdt:repair" in
    Span.event obs.Obs.spans span ~host:(Physical.host t) ~tick
      (Printf.sprintf "crdt:applied demote=%d attach=%d cycles=%d" !demoted !attached
         res.Crdt_tree.cycles_broken)
  end;
  Ok
    {
      rs_demoted = !demoted;
      rs_attached = !attached;
      rs_cycles_broken = res.Crdt_tree.cycles_broken;
      rs_orphans = res.Crdt_tree.orphans;
    }

(* ------------------------------------------------------------------ *)
(* Tree health: reachability, cycles, canonical digest                 *)

type tree_stats = {
  ts_reachable_dirs : int;
  ts_unreachable_dirs : int;
  ts_cycles : int;
}

module NodeSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

(* Walk the live tree from the root, tolerating (and counting) cycles. *)
let live_walk t visit =
  let cycles = ref 0 in
  let seen = ref NodeSet.empty in
  let rec go path fid on_path =
    let n = node_of fid in
    if NodeSet.mem n on_path then begin
      incr cycles;
      Ok ()
    end
    else if NodeSet.mem n !seen then Ok ()
    else begin
      seen := NodeSet.add n !seen;
      let on_path = NodeSet.add n on_path in
      match Physical.fetch_dir t path with
      | Error Errno.ENOENT -> Ok () (* entry live, storage not materialized *)
      | Error _ as e -> e
      | Ok fdir ->
        let rec each = function
          | [] -> Ok ()
          | (name, (e : Fdir.entry)) :: rest ->
            let* () = visit path name e in
            let* () =
              match e.Fdir.kind with
              | Aux_attrs.Freg -> Ok ()
              | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
                go (path @ [ e.Fdir.fid ]) e.Fdir.fid on_path
            in
            each rest
        in
        each (Fdir.live fdir)
    end
  in
  let* () = go [] Ids.root_fid NodeSet.empty in
  Ok (!seen, !cycles)

let tree_stats t =
  let* reachable, cycles = live_walk t (fun _ _ _ -> Ok ()) in
  let unreachable = ref 0 in
  let* () =
    Physical.walk_stored_dirs t (fun path fdir ->
        let fid = match List.rev path with [] -> Ids.root_fid | f :: _ -> f in
        if (not (NodeSet.mem (node_of fid) reachable)) && Fdir.live fdir <> [] then
          incr unreachable)
  in
  Ok
    {
      ts_reachable_dirs = NodeSet.cardinal reachable;
      ts_unreachable_dirs = !unreachable;
      ts_cycles = cycles;
    }

let digest t =
  let buf = Buffer.create 256 in
  let* _reach, _cycles =
    live_walk t (fun path name e ->
        let p =
          String.concat "/" (List.map Ids.fid_to_hex path) ^ "/" ^ name
        in
        match e.Fdir.kind with
        | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
          Buffer.add_string buf (Printf.sprintf "D %s %s\n" p (Ids.fid_to_hex e.Fdir.fid));
          Ok ()
        | Aux_attrs.Freg ->
          let fpath = path @ [ e.Fdir.fid ] in
          (match Physical.fetch_file t fpath with
           | Ok (vi, data) ->
             Buffer.add_string buf
               (Printf.sprintf "F %s %s %s\n" p
                  (Version_vector.to_string vi.Physical.vi_vv)
                  (Chunking.digest_hex data));
             Ok ()
           | Error _ ->
             (* Entry known, contents not stored here yet. *)
             Buffer.add_string buf (Printf.sprintf "F %s ? ?\n" p);
             Ok ()))
  in
  Ok (Chunking.digest_hex (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* File conflicts as multi-value registers                             *)

type pending = {
  p_entry_ids : int list;
  p_fidpath : Physical.fidpath;
  p_fid : Ids.file_id;
  p_span : int;
  p_register : Mv_register.t;
}

let pending_file_groups t =
  let groups = ref [] in
  List.iter
    (fun (e : Conflict_log.entry) ->
      match e.Conflict_log.detail with
      | Conflict_log.Name_collision _ | Conflict_log.Removed_while_updated _ -> ()
      | Conflict_log.File_update { remote_vv; remote_data; _ } ->
        let key = e.Conflict_log.fidpath in
        let v = { Mv_register.mv_vv = remote_vv; mv_data = remote_data } in
        (match
           List.find_opt
             (fun (p, _, _) ->
               List.length p = List.length key && List.for_all2 Ids.fid_equal p key)
             !groups
         with
         | Some (_, ids, reg) ->
           ids := e.Conflict_log.id :: !ids;
           reg := v :: !reg
         | None ->
           groups :=
             (key, ref [ e.Conflict_log.id ], ref [ v ]) :: !groups))
    (Conflict_log.pending (Physical.conflicts t));
  List.rev !groups

let pending_registers t =
  List.filter_map
    (fun (fidpath, ids, remotes) ->
      match Physical.fetch_file t fidpath with
      | Error _ -> None
      | Ok (vi, data) ->
        let reg =
          List.fold_left Mv_register.add
            (Mv_register.add Mv_register.empty
               { Mv_register.mv_vv = vi.Physical.vi_vv; mv_data = data })
            !remotes
        in
        let fid = match List.rev fidpath with [] -> Ids.root_fid | f :: _ -> f in
        Some
          {
            p_entry_ids = List.rev !ids;
            p_fidpath = fidpath;
            p_fid = fid;
            p_span = vi.Physical.vi_span;
            p_register = reg;
          })
    (pending_file_groups t)

let resolve_pending ~local ~resolver =
  match resolver with
  | Resolver.Owner_report -> 0
  | Resolver.Lww | Resolver.App_merge _ ->
    let t = local in
    List.fold_left
      (fun n p ->
        count t "crdt.mv_registers";
        let chosen =
          match resolver with
          | Resolver.Owner_report -> None
          | Resolver.Lww ->
            Option.map (fun (w : Mv_register.version) -> w.Mv_register.mv_data)
              (Mv_register.winner p.p_register)
          | Resolver.App_merge f ->
            Option.map (fun (v : Mv_register.version) -> v.Mv_register.mv_data)
              (Mv_register.merge_all f p.p_register)
        in
        match chosen, Physical.fetch_file t p.p_fidpath with
        | None, _ | _, Error _ -> n
        | Some data, Ok (vi, local_data) ->
          (* Install under the *join* of every version — no bump — so a
             replica resolving the same register independently installs
             byte-identical state and later compares Equal. *)
          let vv =
            List.fold_left
              (fun acc (v : Mv_register.version) -> Version_vector.merge acc v.Mv_register.mv_vv)
              vi.Physical.vi_vv
              (Mv_register.versions p.p_register)
          in
          let install =
            if Version_vector.equal vv vi.Physical.vi_vv && String.equal data local_data
            then Ok () (* local state already is the resolution *)
            else Physical.force_install t p.p_fidpath ~vv ~uid:vi.Physical.vi_uid ~data
          in
          (match install with
           | Error _ -> n
           | Ok () ->
             let (_ : int) =
               Conflict_log.resolve_matching (Physical.conflicts t) ~fidpath:p.p_fidpath
             in
             count t "crdt.resolver_invocations";
             n + 1))
      0 (pending_registers t)
