(** The Ficus file-system reconciliation protocol (paper §3.3).

    "This protocol is executed periodically to traverse an entire
    subgraph (not just a single node), and reconcile the local replica
    against a remote replica."  It is the correctness backstop: update
    notification and propagation are mere optimizations and may all be
    lost; pairwise reconciliation alone must drive all replicas of a
    volume to convergence.

    The walk is one-way pull (local adopts remote state, never the
    reverse); running it in both directions — or around any gossip
    topology that connects all replicas — converges everyone.  Per
    directory it calls {!Physical.merge_dir}; per regular file it
    compares version vectors and either adopts the dominating remote
    version (shadow commit) or reports a conflict.

    {!reconcile_volume} runs the walk {e incrementally}: one batched
    [getdirvvs] RPC per directory (instead of a [getvv] per file), and
    whole subtrees are skipped when the local subtree summary vector
    dominates the remote one — a quiescent pass over any volume costs a
    single RPC.  Peers that predate summaries answer the batched op with
    [EINVAL] and are served by the original full walk
    ({!reconcile_subtree}). *)

type stats = {
  dirs_merged : int;
  files_pulled : int;
  files_conflicted : int;
  entries_materialized : int;
  entries_unmaterialized : int;
  tombstones_expired : int;
  name_collisions : int;
  errors : int;         (** subtrees skipped because the remote failed *)
  rpcs : int;
      (** remote protocol round trips issued on successfully handled
          paths (getdirvvs/getdir/getvv/readfile) — the cost metric the
          incremental walk minimizes *)
  subtrees_pruned : int;
      (** subtrees skipped because the local summary dominated the
          remote one *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

val reconcile_dir :
  local:Physical.t -> remote_root:Vnode.t -> remote_rid:Ids.replica_id ->
  Physical.fidpath -> (stats, Errno.t) result
(** Reconcile a single directory (no recursion). *)

val reconcile_subtree :
  local:Physical.t -> remote_root:Vnode.t -> remote_rid:Ids.replica_id ->
  Physical.fidpath -> (stats, Errno.t) result
(** The original full walk: reconcile the subtree rooted at [fidpath]
    (the whole volume when [[]]), depth-first, one [getvv] RPC per file.
    Individual file or subdirectory failures are counted in [errors] and
    skipped; the error return is reserved for the root being
    unreachable.  Kept as the fallback for pre-summary peers and as the
    baseline the [reconscale] experiment measures against. *)

val reconcile_volume :
  ?dir_merge:[ `Legacy | `Crdt ] ->
  ?resolver:Resolver.t ->
  local:Physical.t -> remote_root:Vnode.t -> remote_rid:Ids.replica_id ->
  unit -> (stats, Errno.t) result
(** Incremental reconciliation from the volume root: batched version
    fetches, summary-vector pruning, full-walk fallback when the peer
    answers [EINVAL].  Also feeds the [recon.rpcs] and
    [recon.pruned_subtrees] counters of the local replica's metrics
    registry.

    [dir_merge] (default: the local replica's sticky mode, see
    {!Physical.set_dir_merge}) selects the directory-merge discipline.
    Under [`Crdt], every {e active} pass is followed by a
    {!Crdt_merge.repair} (re-parent orphaned subtrees into
    [lost+found], cut rename cycles deterministically) and by
    {!Crdt_merge.resolve_pending} with [resolver] (default
    [Owner_report], the paper's behavior: conflicts stay in the log for
    the owner). *)

val resolve_file_conflict :
  local:Physical.t -> Conflict_log.entry -> keep:[ `Local | `Remote | `Merged of string ] ->
  (unit, Errno.t) result
(** Owner-driven resolution of a reported file conflict: install the
    chosen contents under a version vector dominating both histories,
    clear the conflict flag, mark the log entry resolved, and notify so
    the resolution propagates like any other update. *)
