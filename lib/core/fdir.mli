(** Ficus directory files and the directory reconciliation merge
    (paper §2.6, §3.3; Guy & Popek, "Reconciling partially replicated
    name spaces", UCLA CSD-900010).

    A Ficus directory is stored as a UFS {e file} (named ["DIR"] in the
    directory's hex-named UFS directory), not a UFS directory.  Each
    entry maps a name to a Ficus file-id and carries a globally unique
    {e birth} stamp, so that independently created entries can never be
    confused.  Deleted entries become {e tombstones} rather than
    disappearing: reconciliation must be able to distinguish "deleted
    remotely" from "not yet created locally".

    Merging two directory replicas is an observed-remove set union:
    an entry is dead as soon as either side holds its tombstone, live if
    either side holds it live and no tombstone exists.  Directory updates
    made in different partitions therefore merge automatically — the
    "conflicting updates to directories are detected and automatically
    repaired" of the abstract.  Two {e different} files created under the
    same name in different partitions both survive; the collision is
    repaired deterministically at read time (the older birth keeps the
    plain name, later births read as [name#<replica>.<seq>]) and reported
    via the merge result so the owner can be told.

    Tombstones are garbage-collected with a two-phase scheme in the
    spirit of Wuu & Bernstein (PODC 1984): each tombstone records the
    directory version vector at deletion time ([death_vv]); the directory
    carries a gossiped [known] map from replica-id to the directory
    version vector that replica is known to have reached.  Once every
    replica's known vector dominates a tombstone's [death_vv], every
    replica has applied the deletion and the tombstone can never again be
    needed, so it is dropped. *)

module Kmap : Map.S with type key = Ids.replica_id
(** Sorted map keyed by replica id, used for the [known] knowledge map
    so the tombstone-GC dominance check stays logarithmic per lookup on
    wide replica sets. *)

type birth = { b_rid : Ids.replica_id; b_seq : int }
(** Globally unique entry identity: issuing volume replica and a
    per-replica sequence number (drawn from the same allocator as
    file-ids). *)

type status =
  | Live
  | Dead of { death_vv : Version_vector.t }

type entry = {
  name : string;   (** the name as created; collision repair is at read time *)
  fid : Ids.file_id;
  kind : Aux_attrs.fkind;
  birth : birth;
  status : status;
}

type t = {
  entries : entry list;                  (** sorted by birth *)
  vv : Version_vector.t;                 (** directory version vector *)
  known : Version_vector.t Kmap.t;       (** gossip: replica → vv it has reached *)
}

val empty : Ids.replica_id -> t
(** An empty directory at the given replica ([known] seeded with it). *)

val birth_compare : birth -> birth -> int

(** {1 Read-time view} *)

val live : t -> (string * entry) list
(** Live entries with their {e effective} names after deterministic
    collision repair, sorted by effective name. *)

val find_live : t -> string -> entry option
(** Look up by effective name. *)

val find_by_fid : t -> Ids.file_id -> entry option
(** First live entry for the file, if any (a file may have several names). *)

val live_fids : t -> entry list
(** Live entries deduplicated by fid, in effective-name order — the unit
    of per-child work during reconciliation. *)

val find_birth : t -> birth -> entry option

(** {1 Local updates}

    Each bumps the directory version vector at [rid]. *)

val add :
  t -> rid:Ids.replica_id -> name:string -> fid:Ids.file_id ->
  kind:Aux_attrs.fkind -> birth:birth -> (t, Errno.t) result
(** [EEXIST] if the effective name is taken, [EINVAL] for a malformed
    name or duplicate birth. *)

val kill : t -> rid:Ids.replica_id -> birth -> (t, Errno.t) result
(** Turn a live entry into a tombstone; [ENOENT] if absent or dead. *)

(** {1 Reconciliation merge} *)

type action =
  | Materialize of entry  (** newly live here: physical layer must create storage *)
  | Unmaterialize of entry  (** was live here, now dead: remove storage *)
  | Expire of entry       (** tombstone garbage-collected *)

type merge_result = {
  merged : t;
  actions : action list;
  new_collisions : (string * birth list) list;
      (** names that became collided by this merge — report to owner *)
}

val merge :
  ?may_expire:(entry -> bool) ->
  local_rid:Ids.replica_id ->
  remote_rid:Ids.replica_id ->
  peers:Ids.replica_id list ->
  t -> t -> merge_result
(** One-way pull: merge the remote replica's state into the local one.
    Idempotent; applying [merge a b] at A and [merge b a] at B leaves
    both with identical entries, vv and (eventually, after gossip)
    [known] maps.

    [may_expire] (default: always) is consulted before a fully-known
    tombstone is dropped; answering [false] defers the expiry to a later
    merge.  The CRDT directory-merge mode uses it to keep a dead
    directory's entry discoverable while its stored subtree still holds
    live entries awaiting tree repair — a deferred tombstone is still a
    tombstone, so replicas that expired it earlier re-converge on the
    next exchange. *)

(** {1 Serialization} *)

val encode : t -> string
val decode : string -> t option

val pp_entry : Format.formatter -> entry -> unit
