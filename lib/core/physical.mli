(** The Ficus physical layer (paper §2.6, §3).

    One [t] manages one {e volume replica}: a container directory in the
    host's UFS holding, in a layout that parallels the logical namespace,

    - per Ficus directory: a UFS directory named [<hex-fid>] containing a
      ["DIR"] file (the {!Fdir} directory file) and the children's storage;
    - per regular-file replica: a UFS file [<hex-fid>] plus an auxiliary
      attribute file [<hex-fid>.aux] ({!Aux_attrs}) beside it;
    - a ["META"] file with the replica's identity, peer list and the
      file-id allocator high-water mark;
    - an ["ORPHANS"] directory preserving victims of remove/update
      conflicts.

    The layer exports a plain vnode stack ({!root}) so it can sit under a
    logical layer directly or behind an NFS server, and {e overloads}
    [lookup] with encoded control requests ({!Ctl_name}) for the services
    the vnode interface lacks: open/close signalling, version-vector
    queries, whole-file fetch and directory-state fetch.  Lookup also
    accepts reserved ["@<hex>"] names, the dual name↔handle mapping by
    which the logical layer addresses files by Ficus file handle.

    Update installation ({!install_file}, {!merge_dir}) is a direct API:
    in the pull model every host's daemons write only to local replicas. *)

type t

type fidpath = Ids.file_id list
(** Path of file-ids from the volume root; [[]] is the root directory
    itself, and for files the last element is the file's own fid. *)

(** {1 Lifecycle} *)

val create :
  ?obs:Obs.t ->
  container:Vnode.t -> clock:Clock.t -> host:string ->
  vref:Ids.volume_ref -> rid:Ids.replica_id ->
  peers:(Ids.replica_id * string) list -> unit -> (t, Errno.t) result
(** Initialize a fresh volume replica in [container] (an empty UFS
    directory).  [peers] must list every replica of the volume including
    this one with its host name.  [obs] is the observability bundle the
    layer reports into (defaults to the process-wide {!Obs.default}). *)

val attach :
  ?obs:Obs.t -> container:Vnode.t -> clock:Clock.t -> host:string -> unit -> (t, Errno.t) result
(** Mount an existing volume replica (e.g. after a simulated reboot);
    reads ["META"] and discards leftover shadow files. *)

val vref : t -> Ids.volume_ref
val rid : t -> Ids.replica_id
val host : t -> string
val peers : t -> (Ids.replica_id * string) list
(** All replicas of the volume, including this one. *)

val set_peers : t -> (Ids.replica_id * string) list -> (unit, Errno.t) result
val counters : t -> Counters.t
val obs : t -> Obs.t
val clock : t -> Clock.t
val conflicts : t -> Conflict_log.t
val open_files : t -> int
(** Current opens minus closes seen by this layer (via [openv] or the
    encoded control path). *)

val set_notifier : t -> (Notify.event -> unit) -> unit
(** Called after every locally applied update; the host runtime turns
    events into best-effort datagrams to the peer replicas. *)

val dir_merge_mode : t -> [ `Legacy | `Crdt ]
val set_dir_merge : t -> [ `Legacy | `Crdt ] -> unit
(** Directory-merge discipline.  [`Legacy] (default) preserves the seed
    behavior: a directory tombstoned remotely while holding live content
    here is moved into the replica-local ["ORPHANS"] UFS directory.
    [`Crdt] keeps such subtrees' storage in place behind the tombstone
    and lets the {!Crdt_merge} repair pass re-parent them into the
    replicated [lost+found] directory as joinable operations, so all
    replicas converge on the same repaired tree.  The mode is volatile;
    re-apply it after {!attach}. *)

(** {1 The vnode stack} *)

val root : t -> Vnode.t

(** {1 Direct control interface (co-resident callers)} *)

type version_info = {
  vi_kind : Aux_attrs.fkind;
  vi_vv : Version_vector.t;
  vi_size : int;
  vi_uid : int;
  vi_stored : bool;  (** false: entry known but contents not stored here *)
  vi_span : int;
      (** trace span of the last update applied to the replica (0 when
          untraced); lets a reconciling peer continue the update's
          timeline *)
  vi_summary : Version_vector.t option;
      (** directories only: the subtree summary vector — a lower bound on
          the update events this replica has incorporated anywhere under
          the directory, keyed by originating replica.  [None] for
          regular files and in responses from peers that predate
          summaries.  A reconciler whose own summary dominates the
          remote one may skip the whole subtree. *)
}

val get_version : t -> fidpath -> (version_info, Errno.t) result
val fetch_file : t -> fidpath -> (version_info * string, Errno.t) result
val fetch_dir : t -> fidpath -> (Fdir.t, Errno.t) result

val chunks_of_content : t -> string -> Chunking.chunk list
(** The content-defined chunk map of [contents], served from the
    content-keyed chunk cache (write-through from the install path;
    computed and cached on miss).  Content addressing makes a stale map
    structurally impossible — changed contents are a different key.  The
    delta puller uses this for its {e local} copy; remote maps travel via
    the ["getchunkmap"] ctl op. *)

type install_outcome =
  | Installed       (** remote version adopted atomically *)
  | Up_to_date      (** local history already includes the remote one *)
  | Conflict of Version_vector.t
      (** concurrent histories: local kept, conflict logged; the value is
          the local version vector *)

val install_file :
  ?span:int -> ?via:string ->
  t -> fidpath -> vv:Version_vector.t -> uid:int -> data:string ->
  origin_rid:Ids.replica_id -> (install_outcome, Errno.t) result
(** Adopt a newer remote version of a regular file via shadow-file atomic
    commit.  A concurrent history is never overwritten: it is reported
    ([Conflict]) with the remote version preserved in the log.  [span]
    attributes the install to the originating update's trace (recording
    shadow-swap and install events and the propagation-lag observation);
    [via] labels the install path (["prop"] or ["recon"]). *)

val force_install :
  t -> fidpath -> vv:Version_vector.t -> uid:int -> data:string ->
  (unit, Errno.t) result
(** Conflict resolution: install [data] with the given (caller-computed,
    dominating) version vector, clear the conflict flag and emit an
    update notification. *)

val merge_dir :
  t -> fidpath -> remote_rid:Ids.replica_id -> Fdir.t -> (Fdir.merge_result, Errno.t) result
(** Reconcile the local directory replica at [fidpath] against remote
    state: OR-set entry merge, storage materialization for new entries,
    storage removal (with orphan preservation) for remote deletions, and
    tombstone GC.  Name collisions are auto-repaired and logged. *)

val make_graft_point :
  t -> parent:fidpath -> name:string -> target:Ids.volume_ref ->
  replicas:(Ids.replica_id * string) list -> (unit, Errno.t) result
(** Create a graft point (paper §4.3): a special directory whose entries
    are the ⟨volume replica, storage site⟩ pairs of the target volume —
    "overloading the directory concept" so the graft point is reconciled
    by the ordinary directory machinery. *)

val graft_point_info :
  t -> fidpath -> (Ids.volume_ref * (Ids.replica_id * string) list, Errno.t) result
(** Read a graft point's target volume and replica list. *)

val graft_entries_of_fdir :
  Fdir.t -> (Ids.volume_ref * (Ids.replica_id * string) list) option
(** Parse graft-point directory entries fetched from any replica (the
    logical layer autografts from remote graft points too). *)

val add_graft_replica :
  t -> fidpath -> Ids.replica_id -> string -> (unit, Errno.t) result
(** Record an additional volume replica in a graft point. *)

(** {1 Subtree summaries (incremental reconciliation)} *)

val join_summary : t -> fidpath -> Version_vector.t -> (unit, Errno.t) result
(** After a reconciliation pass has {e fully} incorporated a peer's
    subtree at [fidpath] (every child merged, pulled, pruned or
    conflict-logged — no errors), fold the peer's summary into the local
    one so future passes can prune.  Joins never allocate events, so
    mutually quiescent replicas reach a fixpoint. *)

val flush_summaries : t -> (int, Errno.t) result
(** Write pending in-memory summary bumps to the aux files (done
    automatically when serving a [getdirvvs] request); returns how many
    directories were updated.  Pending bumps lost in a crash only
    under-claim, costing a wider walk, never correctness. *)

(** {1 CRDT tree-repair primitives}

    Building blocks for the {!Crdt_merge} repair pass ([`Crdt] mode
    only).  Each repair is an ordinary joinable Fdir operation —
    tombstones and adds with deterministic, fid-derived identity — so
    replicas that repair independently still converge by merge. *)

val lost_found_fid : Ids.file_id
(** The reserved fid [(0,2)] of the conflict orphanage.  Issuer 0 is the
    reserved allocator the root fid (0,1) comes from, so no replica can
    mint a colliding fid, and every replica creating the orphanage
    independently creates the {e same} entry. *)

val lost_found_name : string

val walk_stored_dirs : t -> (fidpath -> Fdir.t -> unit) -> (unit, Errno.t) result
(** Visit every directory whose storage exists under the
    namespace-parallel layout — including directories reachable only
    through tombstoned entries — exactly once each, with its storage
    path and decoded directory file. *)

val demote_entry : t -> fidpath -> Fdir.birth -> (bool, Errno.t) result
(** Tombstone a live entry (a cycle-losing or duplicate link) of the
    directory stored at [fidpath].  Returns whether anything changed;
    already-dead entries are a no-op. *)

val attach_to_lost_found :
  t -> fid:Ids.file_id -> kind:Aux_attrs.fkind -> (bool, Errno.t) result
(** Re-parent an unplaced directory into [lost+found]: ensure the
    orphanage exists, add a live entry named [<hex-fid>] with the
    directory's own creation birth (both derived from the fid alone, so
    concurrent repairs at different replicas join cleanly), and move the
    directory's storage subtree underneath.  Returns whether anything
    changed. *)

(** {1 Maintenance} *)

val recover : t -> (int, Errno.t) result
(** Remove leftover shadow files after a crash; returns how many. *)

val orphans_dirname : string
