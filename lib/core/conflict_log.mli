(** Conflict detection reports.

    "Conflicting updates to directories are detected and automatically
    repaired; conflicting updates to ordinary files are detected and
    reported to the owner" (abstract).  This module is the report: a
    per-host append-only log of detected conflicts, with enough
    information (both version vectors, the remote contents) for the
    owner — or a resolution tool — to repair them. *)

type detail =
  | File_update of {
      local_vv : Version_vector.t;
      remote_vv : Version_vector.t;
      remote_rid : Ids.replica_id;
      remote_data : string;    (** the losing-by-default version, preserved *)
    }  (** concurrent writes to a regular file *)
  | Name_collision of { name : string; births : Fdir.birth list }
      (** different files created under one name in different partitions;
          automatically repaired by deterministic renaming *)
  | Removed_while_updated of { orphaned_to : string }
      (** a directory removed in one partition while another partition
          added to it; the live contents are preserved in the orphanage *)

type entry = {
  id : int;
  vref : Ids.volume_ref;
  fidpath : Ids.file_id list;
  fid : Ids.file_id;
  owner_uid : int;
  detail : detail;
  detected_at : int;
  mutable resolved : bool;
}

type t

val create : unit -> t

val report :
  t -> vref:Ids.volume_ref -> fidpath:Ids.file_id list -> fid:Ids.file_id ->
  owner_uid:int -> detected_at:int -> detail -> entry

val pending : t -> entry list
val all : t -> entry list
val mark_resolved : t -> int -> unit
val find : t -> int -> entry option

val has_pending : t -> fidpath:Ids.file_id list -> bool
(** Is there an unresolved [File_update] entry for this object?  The
    install path consults this so a conflict whose in-memory report was
    lost to a crash (the on-disk aux conflict flag survives; the log
    does not) is re-reported on the next exchange instead of staying
    invisible to the owner forever. *)

val resolve_matching : t -> fidpath:Ids.file_id list -> int
(** Mark every pending [File_update] entry for this object resolved —
    used when a dominating version arrives from elsewhere, superseding
    the local conflict.  Returns how many were closed. *)

val pp_entry : Format.formatter -> entry -> unit
