let shadow_name fid = Ids.fid_to_hex fid ^ ".shadow"

let ( let* ) = Result.bind

(* Write the new contents — possibly arriving as a list of delta-fetch
   parts — into the shadow file, then substitute it for the original by
   one directory-reference change (the commit point).  Writing part by
   part keeps the reassembly path on the exact same write points the
   crash sweep covers: nothing is visible under the real name until the
   rename. *)
let install_parts ~dir fid ~parts =
  let shadow = shadow_name fid in
  let target = Ids.fid_to_hex fid in
  let* shadow_vnode =
    match dir.Vnode.lookup shadow with
    | Ok v -> Ok v (* leftover from an interrupted install: reuse *)
    | Error Errno.ENOENT -> dir.Vnode.create shadow
    | Error _ as e -> e
  in
  let* () = shadow_vnode.Vnode.setattr { Vnode.setattr_none with Vnode.set_size = Some 0 } in
  let rec write_from off = function
    | [] -> Ok ()
    | part :: rest ->
      let* () = shadow_vnode.Vnode.write ~off part in
      write_from (off + String.length part) rest
  in
  let* () = write_from 0 parts in
  (* Commit point: one low-level directory-reference change. *)
  dir.Vnode.rename shadow dir target

let install ~dir fid ~data = install_parts ~dir fid ~parts:[ data ]

let recover ~dir fid =
  match dir.Vnode.remove (shadow_name fid) with Ok () | Error _ -> ()
