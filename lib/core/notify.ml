type event = {
  vref : Ids.volume_ref;
  fidpath : Ids.file_id list;
  fid : Ids.file_id;
  kind : Aux_attrs.fkind;
  origin_rid : Ids.replica_id;
  origin_host : string;
  span : int;
  vv : Version_vector.t;
}

type Sim_net.payload += Ficus_notify of event

let pp ppf e =
  Fmt.pf ppf "notify{%a /%s %s from r%d@%s}" Ids.pp_vref e.vref
    (Ids.fidpath_to_string e.fidpath)
    (Aux_attrs.kind_to_string e.kind)
    e.origin_rid e.origin_host
