let log_src = Logs.Src.create "ficus.reconcile" ~doc:"Ficus reconciliation protocol"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Tag every message with the host so the shared {!Obs.reporter} can
   attribute interleaved multi-host logs. *)
let log_tags host = Logs.Tag.add Obs.host_tag host Logs.Tag.empty


type stats = {
  dirs_merged : int;
  files_pulled : int;
  files_conflicted : int;
  entries_materialized : int;
  entries_unmaterialized : int;
  tombstones_expired : int;
  name_collisions : int;
  errors : int;
}

let empty_stats =
  {
    dirs_merged = 0;
    files_pulled = 0;
    files_conflicted = 0;
    entries_materialized = 0;
    entries_unmaterialized = 0;
    tombstones_expired = 0;
    name_collisions = 0;
    errors = 0;
  }

let add_stats a b =
  {
    dirs_merged = a.dirs_merged + b.dirs_merged;
    files_pulled = a.files_pulled + b.files_pulled;
    files_conflicted = a.files_conflicted + b.files_conflicted;
    entries_materialized = a.entries_materialized + b.entries_materialized;
    entries_unmaterialized = a.entries_unmaterialized + b.entries_unmaterialized;
    tombstones_expired = a.tombstones_expired + b.tombstones_expired;
    name_collisions = a.name_collisions + b.name_collisions;
    errors = a.errors + b.errors;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "dirs=%d pulls=%d conflicts=%d +mat=%d -mat=%d gc=%d collisions=%d errors=%d"
    s.dirs_merged s.files_pulled s.files_conflicted s.entries_materialized
    s.entries_unmaterialized s.tombstones_expired s.name_collisions s.errors

let ( let* ) = Result.bind

let merge_stats_of_result (result : Fdir.merge_result) =
  let count f = List.length (List.filter f result.Fdir.actions) in
  {
    empty_stats with
    dirs_merged = 1;
    entries_materialized =
      count (function Fdir.Materialize _ -> true | Fdir.Unmaterialize _ | Fdir.Expire _ -> false);
    entries_unmaterialized =
      count (function Fdir.Unmaterialize _ -> true | Fdir.Materialize _ | Fdir.Expire _ -> false);
    tombstones_expired =
      count (function Fdir.Expire _ -> true | Fdir.Materialize _ | Fdir.Unmaterialize _ -> false);
    name_collisions = List.length result.Fdir.new_collisions;
  }

let reconcile_dir ~local ~remote_root ~remote_rid path =
  let* remote_fdir = Remote.fetch_dir remote_root path in
  let* result = Physical.merge_dir local path ~remote_rid remote_fdir in
  Ok (merge_stats_of_result result)

(* Pull one regular file if the remote history is ahead of ours; report a
   conflict if the histories are concurrent. *)
let reconcile_file ~local ~remote_root ~remote_rid path =
  let* local_vi = Physical.get_version local path in
  match Remote.get_version remote_root path with
  | Error Errno.ENOENT ->
    (* The remote directory no longer lists it — a later merge pass will
       carry the tombstone; nothing to do now. *)
    Ok empty_stats
  | Error _ as e -> e
  | Ok remote_vi ->
    if not remote_vi.Physical.vi_stored then Ok empty_stats
    else
      let local_vv = local_vi.Physical.vi_vv in
      let remote_vv = remote_vi.Physical.vi_vv in
      let needs_pull =
        (not local_vi.Physical.vi_stored)
        || (match Version_vector.compare_vv remote_vv local_vv with
            | Version_vector.Dominates | Version_vector.Concurrent -> true
            | Version_vector.Equal | Version_vector.Dominated -> false)
      in
      if not needs_pull then Ok empty_stats
      else
        let* vi, data = Remote.fetch_file remote_root path in
        let span = vi.Physical.vi_span in
        let obs = Physical.obs local in
        Span.event obs.Obs.spans span
          ~host:(Physical.host local)
          ~tick:(Clock.now (Physical.clock local))
          "recon:pull";
        let* outcome =
          Physical.install_file ~span ~via:"recon" local path ~vv:vi.Physical.vi_vv
            ~uid:vi.Physical.vi_uid ~data ~origin_rid:remote_rid
        in
        (match outcome with
         | Physical.Installed ->
           Log.debug (fun m ->
               m ~tags:(log_tags (Physical.host local)) "%s pulled %s during reconciliation with r%d" (Physical.host local)
                 (Ids.fidpath_to_string path) remote_rid);
           Ok { empty_stats with files_pulled = 1 }
         | Physical.Up_to_date -> Ok empty_stats
         | Physical.Conflict _ -> Ok { empty_stats with files_conflicted = 1 })

let rec reconcile_subtree ~local ~remote_root ~remote_rid path =
  let* stats = reconcile_dir ~local ~remote_root ~remote_rid path in
  (* Walk the merged local view: every child now has an entry locally. *)
  let* fdir = Physical.fetch_dir local path in
  let children = Fdir.live fdir in
  let visit acc (_name, entry) =
    let child_path = path @ [ entry.Fdir.fid ] in
    let result =
      match entry.Fdir.kind with
      | Aux_attrs.Freg -> reconcile_file ~local ~remote_root ~remote_rid child_path
      | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
        reconcile_subtree ~local ~remote_root ~remote_rid child_path
    in
    match result with
    | Ok s -> add_stats acc s
    | Error _ -> add_stats acc { empty_stats with errors = 1 }
  in
  (* A file can be reached twice through multiple names; visit each fid
     once. *)
  let seen = Hashtbl.create 16 in
  let children =
    List.filter
      (fun (_, e) ->
        let key = (e.Fdir.fid.Ids.issuer, e.Fdir.fid.Ids.uniq) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      children
  in
  Ok (List.fold_left visit stats children)

let reconcile_volume ~local ~remote_root ~remote_rid =
  let result = reconcile_subtree ~local ~remote_root ~remote_rid [] in
  (match result with
  | Ok s when s.dirs_merged + s.files_pulled + s.files_conflicted > 0 ->
    Log.info (fun m ->
        m ~tags:(log_tags (Physical.host local)) "%s reconciled with r%d: %a" (Physical.host local) remote_rid pp_stats s)
  | Ok _ | Error _ -> ());
  result

let resolve_file_conflict ~local (entry : Conflict_log.entry) ~keep =
  match entry.Conflict_log.detail with
  | Conflict_log.Name_collision _ | Conflict_log.Removed_while_updated _ ->
    Error Errno.EINVAL
  | Conflict_log.File_update { local_vv; remote_vv; remote_data; _ } ->
    let path = entry.Conflict_log.fidpath in
    let* data =
      match keep with
      | `Remote -> Ok remote_data
      | `Merged data -> Ok data
      | `Local ->
        let* _vi, data = Physical.fetch_file local path in
        Ok data
    in
    (* The resolution is a fresh update dominating both histories. *)
    let vv =
      Version_vector.bump (Version_vector.merge local_vv remote_vv) (Physical.rid local)
    in
    let* () = Physical.force_install local path ~vv ~uid:entry.Conflict_log.owner_uid ~data in
    Conflict_log.mark_resolved (Physical.conflicts local) entry.Conflict_log.id;
    Ok ()
