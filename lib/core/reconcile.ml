let log_src = Logs.Src.create "ficus.reconcile" ~doc:"Ficus reconciliation protocol"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Tag every message with the host so the shared {!Obs.reporter} can
   attribute interleaved multi-host logs. *)
let log_tags host = Logs.Tag.add Obs.host_tag host Logs.Tag.empty


type stats = {
  dirs_merged : int;
  files_pulled : int;
  files_conflicted : int;
  entries_materialized : int;
  entries_unmaterialized : int;
  tombstones_expired : int;
  name_collisions : int;
  errors : int;
  rpcs : int;
  subtrees_pruned : int;
}

let empty_stats =
  {
    dirs_merged = 0;
    files_pulled = 0;
    files_conflicted = 0;
    entries_materialized = 0;
    entries_unmaterialized = 0;
    tombstones_expired = 0;
    name_collisions = 0;
    errors = 0;
    rpcs = 0;
    subtrees_pruned = 0;
  }

let add_stats a b =
  {
    dirs_merged = a.dirs_merged + b.dirs_merged;
    files_pulled = a.files_pulled + b.files_pulled;
    files_conflicted = a.files_conflicted + b.files_conflicted;
    entries_materialized = a.entries_materialized + b.entries_materialized;
    entries_unmaterialized = a.entries_unmaterialized + b.entries_unmaterialized;
    tombstones_expired = a.tombstones_expired + b.tombstones_expired;
    name_collisions = a.name_collisions + b.name_collisions;
    errors = a.errors + b.errors;
    rpcs = a.rpcs + b.rpcs;
    subtrees_pruned = a.subtrees_pruned + b.subtrees_pruned;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "dirs=%d pulls=%d conflicts=%d +mat=%d -mat=%d gc=%d collisions=%d errors=%d \
     rpcs=%d pruned=%d"
    s.dirs_merged s.files_pulled s.files_conflicted s.entries_materialized
    s.entries_unmaterialized s.tombstones_expired s.name_collisions s.errors s.rpcs
    s.subtrees_pruned

let ( let* ) = Result.bind

let merge_stats_of_result (result : Fdir.merge_result) =
  let count f = List.length (List.filter f result.Fdir.actions) in
  {
    empty_stats with
    dirs_merged = 1;
    entries_materialized =
      count (function Fdir.Materialize _ -> true | Fdir.Unmaterialize _ | Fdir.Expire _ -> false);
    entries_unmaterialized =
      count (function Fdir.Unmaterialize _ -> true | Fdir.Materialize _ | Fdir.Expire _ -> false);
    tombstones_expired =
      count (function Fdir.Expire _ -> true | Fdir.Materialize _ | Fdir.Unmaterialize _ -> false);
    name_collisions = List.length result.Fdir.new_collisions;
  }

let reconcile_dir ~local ~remote_root ~remote_rid path =
  let* remote_fdir = Remote.fetch_dir remote_root path in
  let* result = Physical.merge_dir local path ~remote_rid remote_fdir in
  Ok { (merge_stats_of_result result) with rpcs = 1 }

(* The decide-and-pull half of per-file reconciliation, shared by the
   per-file protocol and the batched walk (which already holds the remote
   version info). *)
let pull_file ~local ~remote_root ~remote_rid path remote_vi =
  let* local_vi = Physical.get_version local path in
  if not remote_vi.Physical.vi_stored then Ok empty_stats
  else
    let local_vv = local_vi.Physical.vi_vv in
    let remote_vv = remote_vi.Physical.vi_vv in
    let needs_pull =
      (not local_vi.Physical.vi_stored)
      || (match Version_vector.compare_vv remote_vv local_vv with
          | Version_vector.Dominates | Version_vector.Concurrent -> true
          | Version_vector.Equal | Version_vector.Dominated -> false)
    in
    if not needs_pull then Ok empty_stats
    else
      (* Same delta negotiation as the propagation daemon: a replica
         that already stores most of the file's chunks ships only the
         missing ones. *)
      let* fetched, dstats = Delta.fetch_file ~local ~remote_root path in
      let obs = Physical.obs local in
      Metrics.add obs.Obs.metrics "recon.bytes" dstats.Delta.wire_bytes;
      if dstats.Delta.saved_bytes > 0 then
        Metrics.add obs.Obs.metrics "recon.bytes_saved" dstats.Delta.saved_bytes;
      match fetched with
      | Delta.Up_to_date _ ->
        (* The chunk-map header showed we raced ahead of [remote_vi]. *)
        Ok { empty_stats with rpcs = 1 }
      | Delta.Data (vi, data) ->
      let span = vi.Physical.vi_span in
      Span.event obs.Obs.spans span
        ~host:(Physical.host local)
        ~tick:(Clock.now (Physical.clock local))
        "recon:pull";
      let* outcome =
        Physical.install_file ~span ~via:"recon" local path ~vv:vi.Physical.vi_vv
          ~uid:vi.Physical.vi_uid ~data ~origin_rid:remote_rid
      in
      (match outcome with
       | Physical.Installed ->
         Log.debug (fun m ->
             m ~tags:(log_tags (Physical.host local)) "%s pulled %s during reconciliation with r%d" (Physical.host local)
               (Ids.fidpath_to_string path) remote_rid);
         Ok { empty_stats with files_pulled = 1; rpcs = 1 }
       | Physical.Up_to_date -> Ok { empty_stats with rpcs = 1 }
       | Physical.Conflict _ -> Ok { empty_stats with files_conflicted = 1; rpcs = 1 })

(* Pull one regular file if the remote history is ahead of ours; report a
   conflict if the histories are concurrent. *)
let reconcile_file ~local ~remote_root ~remote_rid path =
  match Remote.get_version remote_root path with
  | Error Errno.ENOENT ->
    (* The remote directory no longer lists it — a later merge pass will
       carry the tombstone; nothing to do now. *)
    Ok { empty_stats with rpcs = 1 }
  | Error _ as e -> e
  | Ok remote_vi ->
    let* s = pull_file ~local ~remote_root ~remote_rid path remote_vi in
    Ok (add_stats s { empty_stats with rpcs = 1 })

let reconcile_subtree ~local ~remote_root ~remote_rid path =
  let rec go rev_path =
    let path = List.rev rev_path in
    let* stats = reconcile_dir ~local ~remote_root ~remote_rid path in
    (* Walk the merged local view: every child now has an entry locally.
       A file can be reached twice through multiple names; visit each fid
       once. *)
    let* fdir = Physical.fetch_dir local path in
    let visit acc entry =
      let child_rev = entry.Fdir.fid :: rev_path in
      let result =
        match entry.Fdir.kind with
        | Aux_attrs.Freg ->
          reconcile_file ~local ~remote_root ~remote_rid (List.rev child_rev)
        | Aux_attrs.Fdir | Aux_attrs.Fgraft -> go child_rev
      in
      match result with
      | Ok s -> add_stats acc s
      | Error _ -> add_stats acc { empty_stats with errors = 1 }
    in
    Ok (List.fold_left visit stats (Fdir.live_fids fdir))
  in
  go (List.rev path)

(* ------------------------------------------------------------------ *)
(* Incremental walk: one batched getdirvvs per directory instead of a
   getvv per file, and whole-subtree pruning when the local summary
   vector dominates the remote one.  Returns the completeness flag that
   gates summary joins: a peer's claims may only be adopted after every
   child was merged, pulled, pruned or conflict-logged without error. *)

let rec reconcile_subtree_incr ~local ~remote_root ~remote_rid rev_path dv =
  let path = List.rev rev_path in
  let* merge_result = Physical.merge_dir local path ~remote_rid dv.Remote.dv_fdir in
  let stats = ref (merge_stats_of_result merge_result) in
  let complete = ref true in
  let count s = stats := add_stats !stats s in
  let* fdir = Physical.fetch_dir local path in
  List.iter
    (fun e ->
      let fid = e.Fdir.fid in
      let remote_vi =
        List.find_opt (fun (f, _) -> Ids.fid_equal f fid) dv.Remote.dv_children
        |> Option.map snd
      in
      match e.Fdir.kind, remote_vi with
      | Aux_attrs.Freg, None ->
        (* Not live remotely (tombstone already merged) — nothing to pull. *)
        ()
      | Aux_attrs.Freg, Some rvi ->
        (match
           pull_file ~local ~remote_root ~remote_rid (List.rev (fid :: rev_path)) rvi
         with
         | Ok s -> count s
         | Error _ ->
           complete := false;
           count { empty_stats with errors = 1 })
      | (Aux_attrs.Fdir | Aux_attrs.Fgraft), None ->
        (* Local-only subtree: the peer stores nothing to incorporate. *)
        ()
      | (Aux_attrs.Fdir | Aux_attrs.Fgraft), Some rvi ->
        let child_rev = fid :: rev_path in
        let child_path = List.rev child_rev in
        let local_summary =
          match Physical.get_version local child_path with
          | Ok vi -> vi.Physical.vi_summary
          | Error _ -> None
        in
        let prune =
          match local_summary, rvi.Physical.vi_summary with
          | Some ls, Some rs -> Version_vector.dominates ls rs
          | _, _ -> false
        in
        if prune then count { empty_stats with subtrees_pruned = 1 }
        else (
          match Remote.fetch_dir_versions remote_root child_path with
          | Error Errno.ENOENT ->
            (* Raced with a remote removal; the tombstone arrives later. *)
            count { empty_stats with rpcs = 1 }
          | Error _ ->
            complete := false;
            count { empty_stats with errors = 1; rpcs = 1 }
          | Ok child_dv ->
            (match
               reconcile_subtree_incr ~local ~remote_root ~remote_rid child_rev child_dv
             with
             | Ok (s, child_complete) ->
               count (add_stats s { empty_stats with rpcs = 1 });
               if not child_complete then complete := false
             | Error _ ->
               complete := false;
               count { empty_stats with errors = 1; rpcs = 1 })))
    (Fdir.live_fids fdir);
  (if !complete then
     match dv.Remote.dv_summary with
     | Some rs ->
       (match Physical.join_summary local path rs with
        | Ok () -> ()
        | Error _ -> complete := false)
     | None -> ());
  Ok (!stats, !complete)

let note_metrics local s =
  let m = (Physical.obs local).Obs.metrics in
  if s.rpcs > 0 then Metrics.add m "recon.rpcs" s.rpcs;
  if s.subtrees_pruned > 0 then Metrics.add m "recon.pruned_subtrees" s.subtrees_pruned

let reconcile_volume ?dir_merge ?(resolver = Resolver.Owner_report) ~local ~remote_root
    ~remote_rid () =
  (* An explicit mode overrides the replica's sticky one; either way the
     physical layer must agree with the pass (its Unmaterialize behavior
     depends on it). *)
  (match dir_merge with Some m -> Physical.set_dir_merge local m | None -> ());
  let mode = Physical.dir_merge_mode local in
  let result =
    match Remote.fetch_dir_versions remote_root [] with
    | Error Errno.EINVAL ->
      (* The peer predates the batched op: full per-file walk. *)
      reconcile_subtree ~local ~remote_root ~remote_rid []
    | Error e -> Error e
    | Ok dv ->
      (* Root fast path: when our root summary dominates the peer's, the
         whole volume is already incorporated — a quiescent pass costs
         one RPC. *)
      let local_summary =
        match Physical.get_version local [] with
        | Ok vi -> vi.Physical.vi_summary
        | Error _ -> None
      in
      let prune =
        match local_summary, dv.Remote.dv_summary with
        | Some ls, Some rs -> Version_vector.dominates ls rs
        | _, _ -> false
      in
      if prune then Ok { empty_stats with rpcs = 1; subtrees_pruned = 1 }
      else (
        match reconcile_subtree_incr ~local ~remote_root ~remote_rid [] dv with
        | Ok (s, _complete) -> Ok (add_stats s { empty_stats with rpcs = 1 })
        | Error e -> Error e)
  in
  (match result with
  | Ok s ->
    note_metrics local s;
    if s.dirs_merged + s.files_pulled + s.files_conflicted > 0 then
      Log.info (fun m ->
          m ~tags:(log_tags (Physical.host local)) "%s reconciled with r%d: %a" (Physical.host local) remote_rid pp_stats s)
  | Error _ -> ());
  match result with
  | Error _ -> result
  | Ok s when mode <> `Crdt -> Ok s
  | Ok s ->
    (* CRDT mode: the walk converged every *directory*; now converge the
       *tree* (re-parent orphans, cut cycles) and apply the session's
       file-conflict resolver.  Quiescent passes (nothing merged, pulled
       or conflicted) are already at the fixpoint — skip the storage
       walk so a quiet volume stays one RPC per pass. *)
    let active =
      s.dirs_merged + s.files_pulled + s.files_conflicted + s.entries_materialized
      + s.entries_unmaterialized
      > 0
    in
    if not active then Ok s
    else begin
      let resolved = Crdt_merge.resolve_pending ~local ~resolver in
      match Crdt_merge.repair local with
      | Error _ -> Ok { s with errors = s.errors + 1 }
      | Ok r ->
        if r.Crdt_merge.rs_demoted + r.Crdt_merge.rs_attached + resolved > 0 then
          Log.info (fun m ->
              m
                ~tags:(log_tags (Physical.host local))
                "%s crdt repair: %d demoted, %d attached, %d cycles broken, %d conflicts resolved"
                (Physical.host local) r.Crdt_merge.rs_demoted r.Crdt_merge.rs_attached
                r.Crdt_merge.rs_cycles_broken resolved);
        Ok s
    end

let resolve_file_conflict ~local (entry : Conflict_log.entry) ~keep =
  match entry.Conflict_log.detail with
  | Conflict_log.Name_collision _ | Conflict_log.Removed_while_updated _ ->
    Error Errno.EINVAL
  | Conflict_log.File_update { local_vv; remote_vv; remote_data; _ } ->
    let path = entry.Conflict_log.fidpath in
    let* data =
      match keep with
      | `Remote -> Ok remote_data
      | `Merged data -> Ok data
      | `Local ->
        let* _vi, data = Physical.fetch_file local path in
        Ok data
    in
    (* The resolution is a fresh update dominating both histories. *)
    let vv =
      Version_vector.bump (Version_vector.merge local_vv remote_vv) (Physical.rid local)
    in
    let* () = Physical.force_install local path ~vv ~uid:entry.Conflict_log.owner_uid ~data in
    Conflict_log.mark_resolved (Physical.conflicts local) entry.Conflict_log.id;
    Ok ()
