(** Single-file atomic commit via shadow files (paper §3.2).

    Update propagation replaces a replica's contents wholesale.  To keep
    the old version available if the propagation is interrupted, the new
    contents are written to a {e shadow} file and then substituted for
    the original "by changing a low-level directory reference" — here the
    UFS [rename], the commit point.  A crash before the rename leaves the
    original untouched; recovery just discards the shadow.

    The paper's footnote 5 notes the cost: updating a few bytes of a
    large file still rewrites the whole file (experiment E8). *)

val shadow_name : Ids.file_id -> string
(** [<hex>.shadow]. *)

val install : dir:Vnode.t -> Ids.file_id -> data:string -> (unit, Errno.t) result
(** Atomically replace (or create) the data file [<hex>] in [dir] with
    [data].  On failure the original contents are still intact; a partial
    shadow may remain and is removed by {!recover}. *)

val recover : dir:Vnode.t -> Ids.file_id -> unit
(** Discard a leftover shadow, if any (crash recovery). *)

val install_parts :
  dir:Vnode.t -> Ids.file_id -> parts:string list -> (unit, Errno.t) result
(** {!install} with the new contents supplied as an ordered list of
    fragments (as delta propagation reassembles them: locally held chunks
    interleaved with freshly fetched ones), written sequentially into the
    shadow before the same single-rename commit point. *)
