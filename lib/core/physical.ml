module Vv = Version_vector

let log_src = Logs.Src.create "ficus.physical" ~doc:"Ficus physical layer"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Tag every message with the host so the shared {!Obs.reporter} can
   attribute interleaved multi-host logs. *)
let log_tags host = Logs.Tag.add Obs.host_tag host Logs.Tag.empty


type fidpath = Ids.file_id list

type t = {
  container : Vnode.t;
  clock : Clock.t;
  host : string;
  mutable vref : Ids.volume_ref;
  mutable rid : Ids.replica_id;
  mutable next_uniq : int;
  mutable peers : (Ids.replica_id * string) list;
  mutable notifier : (Notify.event -> unit) option;
  conflicts : Conflict_log.t;
  counters : Counters.t;
  obs : Obs.t;
  mutable open_count : int;
  (* Directory-merge discipline.  [`Legacy] is the seed behavior: a
     directory tombstoned remotely while it holds live content here is
     moved to the replica-local UFS ORPHANS dir (preserved, but outside
     the replicated namespace).  [`Crdt] keeps the subtree's storage in
     place behind the tombstone; the CRDT repair pass ({!Crdt_merge})
     then re-parents it into the replicated lost+found directory as
     ordinary joinable Fdir operations, so every replica converges on
     the same repaired tree.  Volatile: the cluster wiring re-applies
     the mode after attach/reboot. *)
  mutable dir_merge : [ `Legacy | `Crdt ];
  (* Subtree-summary bumps not yet written to the aux files: path key ->
     (path, pending vector).  Purely an I/O batching device — losing it
     in a crash only under-claims, which is always safe. *)
  pending_summaries : (string, fidpath * Vv.t ref) Hashtbl.t;
  (* Decoded-directory cache, keyed by the DIR file's encoded bytes.
     Content addressing makes staleness impossible: any directory update
     rewrites the DIR file, and the new bytes simply miss.  Fdir values
     are immutable, so sharing the decoded structure is safe.  Bounded;
     see [load_fdir]. *)
  fdir_cache : (string, Fdir.t) Hashtbl.t;
  (* Chunk-map cache for delta propagation, content-keyed like
     [fdir_cache] (same structural-staleness-freedom argument: new
     contents are a new key) and write-through from the install path, so
     serving a chunk map for a just-installed file never re-chunks. *)
  chunk_cache : (string, Chunking.chunk list) Hashtbl.t;
}

type version_info = {
  vi_kind : Aux_attrs.fkind;
  vi_vv : Vv.t;
  vi_size : int;
  vi_uid : int;
  vi_stored : bool;
  vi_span : int;
  vi_summary : Vv.t option;
}

type install_outcome = Installed | Up_to_date | Conflict of Vv.t

let ( let* ) = Result.bind

let orphans_dirname = "ORPHANS"
let meta_name = "META"
let dirfile_name = "DIR"

let vref t = t.vref
let rid t = t.rid
let host t = t.host
let peers t = t.peers
let counters t = t.counters
let obs t = t.obs
let clock t = t.clock
let conflicts t = t.conflicts
let open_files t = t.open_count
let set_notifier t f = t.notifier <- Some f
let dir_merge_mode t = t.dir_merge
let set_dir_merge t m = t.dir_merge <- m

(* The conflict orphanage: a reserved, deterministic directory every
   replica can create independently and still converge on — issuer 0 is
   the reserved allocator the root fid (0,1) comes from, so (0,2) can
   never collide with a replica-allocated fid, and giving the entry the
   birth (0,2) makes concurrent creations of it the *same* entry under
   the OR-set union. *)
let lost_found_fid = { Ids.issuer = 0; uniq = 2 }
let lost_found_name = "lost+found"

(* ------------------------------------------------------------------ *)
(* META                                                                *)

let encode_meta t =
  let peers =
    t.peers
    |> List.map (fun (r, h) -> Printf.sprintf "%d@%s" r h)
    |> String.concat ","
  in
  Printf.sprintf "vref=%d.%d\nrid=%d\nnext_uniq=%d\npeers=%s\n" t.vref.Ids.alloc
    t.vref.Ids.vol t.rid t.next_uniq peers

let parse_peers s =
  if s = "" then Some []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           match String.index_opt part '@' with
           | None -> None
           | Some i ->
             (match int_of_string_opt (String.sub part 0 i) with
              | None -> None
              | Some r -> Some (r, String.sub part (i + 1) (String.length part - i - 1))))
    |> fun parsed ->
    if List.exists Option.is_none parsed then None else Some (List.filter_map Fun.id parsed)

let store_meta t =
  let* meta =
    match t.container.Vnode.lookup meta_name with
    | Ok v -> Ok v
    | Error Errno.ENOENT -> t.container.Vnode.create meta_name
    | Error _ as e -> e
  in
  Vnode.write_all meta (encode_meta t)

let load_meta t =
  let* meta = t.container.Vnode.lookup meta_name in
  let* contents = Vnode.read_all meta in
  let fields =
    String.split_on_char '\n' contents
    |> List.filter_map (fun line ->
           match String.index_opt line '=' with
           | None -> None
           | Some i ->
             Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)))
  in
  let find k = List.assoc_opt k fields in
  match find "vref", find "rid", find "next_uniq", find "peers" with
  | Some vref, Some rid, Some next_uniq, Some peers ->
    (match
       String.split_on_char '.' vref, int_of_string_opt rid, int_of_string_opt next_uniq,
       parse_peers peers
     with
     | [ a; v ], Some rid, Some next_uniq, Some peers ->
       (match int_of_string_opt a, int_of_string_opt v with
        | Some alloc, Some vol ->
          t.vref <- { Ids.alloc; vol };
          t.rid <- rid;
          t.next_uniq <- next_uniq;
          t.peers <- peers;
          Ok ()
        | _, _ -> Error Errno.EIO)
     | _, _, _, _ -> Error Errno.EIO)
  | _, _, _, _ -> Error Errno.EIO

let set_peers t peers =
  t.peers <- peers;
  store_meta t

let alloc_uniq t =
  let n = t.next_uniq in
  t.next_uniq <- n + 1;
  let* () = store_meta t in
  Ok n

(* ------------------------------------------------------------------ *)
(* Storage resolution along the namespace-parallel layout              *)

(* UFS directory holding the Ficus directory at [path] ([] = root). *)
let resolve_dir t path =
  let* root_ufs = t.container.Vnode.lookup (Ids.fid_to_hex Ids.root_fid) in
  let rec walk v = function
    | [] -> Ok v
    | fid :: rest ->
      let* child = v.Vnode.lookup (Ids.fid_to_hex fid) in
      walk child rest
  in
  walk root_ufs path

let split_file_path path =
  match List.rev path with
  | [] -> Error Errno.EINVAL
  | fid :: rev_parent -> Ok (List.rev rev_parent, fid)

(* Decoding a directory is the hot path's dominant allocation (every
   lookup re-reads the DIR file); the content-addressed cache turns the
   common re-decode into one Hashtbl probe.  Crude bounded eviction: the
   working set is the handful of directories under active use, so a full
   reset on overflow is simpler than LRU and just as effective. *)
let fdir_cache_cap = 512

let fdir_cache_put t contents fdir =
  if Hashtbl.length t.fdir_cache >= fdir_cache_cap then Hashtbl.reset t.fdir_cache;
  Hashtbl.replace t.fdir_cache contents fdir

let load_fdir t ufs_dir =
  let* dirfile = ufs_dir.Vnode.lookup dirfile_name in
  let* contents = Vnode.read_all dirfile in
  match Hashtbl.find_opt t.fdir_cache contents with
  | Some d -> Ok d
  | None ->
    (match Fdir.decode contents with
     | None -> Error Errno.EIO
     | Some d ->
       fdir_cache_put t contents d;
       Ok d)

(* Chunk maps are far larger per entry than decoded directories (the
   whole file contents is the key), so the cap is small; the working set
   is the files currently moving through propagation. *)
let chunk_cache_cap = 64

let chunk_cache_put t contents chunks =
  if Hashtbl.length t.chunk_cache >= chunk_cache_cap then Hashtbl.reset t.chunk_cache;
  Hashtbl.replace t.chunk_cache contents chunks

let chunks_of_content t contents =
  match Hashtbl.find_opt t.chunk_cache contents with
  | Some chunks ->
    Counters.incr t.counters "phys.chunkmap.hit";
    chunks
  | None ->
    Counters.incr t.counters "phys.chunkmap.miss";
    let chunks = Chunking.split contents in
    chunk_cache_put t contents chunks;
    chunks

(* Write-through: seeding the cache with the bytes just written means
   the next load after an update hits. *)
let store_fdir t ufs_dir fdir =
  let* dirfile = ufs_dir.Vnode.lookup dirfile_name in
  let contents = Fdir.encode fdir in
  fdir_cache_put t contents fdir;
  Vnode.write_all dirfile contents

(* Create the UFS storage of a fresh, empty Ficus directory. *)
let make_dir_storage t parent_ufs fid aux =
  let* child = parent_ufs.Vnode.mkdir (Ids.fid_to_hex fid) in
  let* dirfile = child.Vnode.create dirfile_name in
  let* () = Vnode.write_all dirfile (Fdir.encode (Fdir.empty t.rid)) in
  (* The DIR file's mode/uid double as the Ficus directory's attributes
     (presented by dir_getattr, updated by dir_setattr). *)
  let* () = dirfile.Vnode.setattr { Vnode.setattr_none with Vnode.set_mode = Some 0o755 } in
  let* () = Aux_attrs.store ~dir:parent_ufs fid aux in
  Ok child

(* ------------------------------------------------------------------ *)
(* Subtree summary vectors (incremental reconciliation)

   Each directory's aux file carries a summary vector: a lower bound, per
   originating replica, on the update *events* whose effects this replica
   has incorporated anywhere in the subtree rooted at that directory.
   Events are numbered from the same monotone counter as fids
   ([next_uniq]), so a claim "r:n" means "every local event numbered <= n
   is reflected here".  Reconciliation can then skip a whole subtree
   whose local summary dominates the remote one.

   Bumps are accumulated in memory and flushed lazily (serving a
   [getdirvvs] request flushes first), so local mutators pay no extra
   I/O.  Losing pending bumps in a crash merely under-claims: the next
   reconciliation pass walks more than strictly necessary, never less
   than required. *)

let summary_key path = String.concat "/" (List.map Ids.fid_to_hex path)

let pending_summary t path =
  match Hashtbl.find_opt t.pending_summaries (summary_key path) with
  | Some (_, r) -> !r
  | None -> Vv.empty

(* Record one local update event touching the directory at [dirpath]:
   merge a fresh event number into the pending summary of that directory
   and of every ancestor up to the volume root. *)
let note_summary_event t dirpath =
  let seq = t.next_uniq in
  t.next_uniq <- seq + 1;
  let s = Vv.singleton t.rid seq in
  let note p =
    let k = summary_key p in
    match Hashtbl.find_opt t.pending_summaries k with
    | Some (_, r) -> r := Vv.merge !r s
    | None -> Hashtbl.replace t.pending_summaries k (p, ref s)
  in
  let rec go prefix_rev rest =
    note (List.rev prefix_rev);
    match rest with [] -> () | fid :: tl -> go (fid :: prefix_rev) tl
  in
  go [] dirpath

(* Where the aux file of the directory at [path] lives: the volume
   container for the root, the parent's UFS directory otherwise. *)
let dir_aux_location t path =
  match path with
  | [] -> Ok (t.container, Ids.root_fid)
  | _ ->
    let* parent, fid = split_file_path path in
    let* parent_ufs = resolve_dir t parent in
    Ok (parent_ufs, fid)

(* Write all pending summary bumps to the aux files.  The uniq watermark
   is persisted first: a durable claim must never reference an event
   number that a reboot could reissue. *)
let flush_summaries t =
  if Hashtbl.length t.pending_summaries = 0 then Ok 0
  else begin
    let* () = store_meta t in
    let entries =
      Hashtbl.fold (fun _ (p, r) acc -> (p, !r) :: acc) t.pending_summaries []
    in
    Hashtbl.reset t.pending_summaries;
    let flush_one (path, pend) =
      match dir_aux_location t path with
      | Error Errno.ENOENT -> Ok false (* directory removed; ancestors carry the claim *)
      | Error _ as e -> e
      | Ok (dir, fid) ->
        (match Aux_attrs.load ~dir fid with
         | Error Errno.ENOENT -> Ok false
         | Error _ as e -> e
         | Ok aux ->
           let cur = Option.value ~default:Vv.empty aux.Aux_attrs.summary in
           let merged = Vv.merge cur pend in
           let unchanged =
             match aux.Aux_attrs.summary with Some s -> Vv.equal s merged | None -> false
           in
           if unchanged then Ok false
           else
             let* () =
               Aux_attrs.store ~dir fid { aux with Aux_attrs.summary = Some merged }
             in
             Ok true)
    in
    let rec go n = function
      | [] -> Ok n
      | e :: rest ->
        let* wrote = flush_one e in
        go (if wrote then n + 1 else n) rest
    in
    let* n = go 0 entries in
    Counters.add t.counters "phys.summary.flush" n;
    Ok n
  end

(* Fold a remote peer's summary into ours after reconciliation has fully
   incorporated that peer's subtree.  Never allocates an event: joins
   must reach a fixpoint for quiescent pruning to kick in. *)
let join_summary t path remote_summary =
  let k = summary_key path in
  let pend =
    match Hashtbl.find_opt t.pending_summaries k with Some (_, r) -> Some !r | None -> None
  in
  let* () = match pend with Some _ -> store_meta t | None -> Ok () in
  let* dir, fid = dir_aux_location t path in
  let* aux = Aux_attrs.load ~dir fid in
  let cur = Option.value ~default:Vv.empty aux.Aux_attrs.summary in
  let merged =
    Vv.merge (Vv.merge cur (Option.value ~default:Vv.empty pend)) remote_summary
  in
  let unchanged =
    match aux.Aux_attrs.summary with Some s -> Vv.equal s merged | None -> false
  in
  let* () =
    if unchanged then Ok ()
    else Aux_attrs.store ~dir fid { aux with Aux_attrs.summary = Some merged }
  in
  Hashtbl.remove t.pending_summaries k;
  Ok ()

(* Recursively delete a UFS subtree under [name] in [dir]. *)
let rec rm_tree dir name =
  let* child = dir.Vnode.lookup name in
  let* attrs = child.Vnode.getattr () in
  match attrs.Vnode.kind with
  | Vnode.VREG | Vnode.VCTL -> dir.Vnode.remove name
  | Vnode.VDIR | Vnode.VGRAFT ->
    let* entries = child.Vnode.readdir () in
    let rec clear = function
      | [] -> Ok ()
      | e :: rest ->
        let* () = rm_tree child e.Vnode.entry_name in
        clear rest
    in
    let* () = clear entries in
    dir.Vnode.rmdir name

let ignore_enoent = function
  | Ok () | Error Errno.ENOENT -> Ok ()
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Notifications                                                       *)

let emit ?(vv = Vv.empty) t ~fidpath ~fid ~kind =
  match t.notifier with
  | None -> ()
  | Some f ->
    let span = Span.ambient_id () in
    if span <> Span.none then begin
      Span.emit "notify:send";
      Metrics.incr t.obs.Obs.metrics "notify.sent"
    end;
    f
      {
        Notify.vref = t.vref;
        fidpath;
        fid;
        kind;
        origin_rid = t.rid;
        origin_host = t.host;
        span;
        vv;
      }

let dir_event t path =
  let fid = match List.rev path with [] -> Ids.root_fid | fid :: _ -> fid in
  emit t ~fidpath:path ~fid ~kind:Aux_attrs.Fdir

(* [vv] is the file's post-update version vector; receivers whose local
   history already dominates it drop the notification without an RPC. *)
let file_event ?vv t path fid = emit ?vv t ~fidpath:path ~fid ~kind:Aux_attrs.Freg

(* ------------------------------------------------------------------ *)
(* Version info                                                        *)

let dir_version_info t path =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  let* kind, uid, stored_summary =
    match path with
    | [] ->
      (match Aux_attrs.load ~dir:t.container Ids.root_fid with
       | Ok aux -> Ok (aux.Aux_attrs.kind, aux.Aux_attrs.uid, aux.Aux_attrs.summary)
       | Error Errno.ENOENT -> Ok (Aux_attrs.Fdir, 0, None)
       | Error _ as e -> e)
    | _ ->
      let* parent, fid = split_file_path path in
      let* parent_ufs = resolve_dir t parent in
      let* aux = Aux_attrs.load ~dir:parent_ufs fid in
      Ok (aux.Aux_attrs.kind, aux.Aux_attrs.uid, aux.Aux_attrs.summary)
  in
  let summary =
    Vv.merge (Option.value ~default:Vv.empty stored_summary) (pending_summary t path)
  in
  Ok
    {
      vi_kind = kind;
      vi_vv = fdir.Fdir.vv;
      vi_size = List.length (Fdir.live fdir);
      vi_uid = uid;
      vi_stored = true;
      vi_span = 0;
      vi_summary = Some summary;
    }

let reg_version_info t path =
  let* parent, fid = split_file_path path in
  let* parent_ufs = resolve_dir t parent in
  let* aux =
    match Aux_attrs.load ~dir:parent_ufs fid with
    | Ok aux -> Ok aux
    | Error Errno.ENOENT ->
      (* No aux yet: the entry may exist in the parent directory without
         any materialized storage. *)
      let* fdir = load_fdir t parent_ufs in
      (match Fdir.find_by_fid fdir fid with
       | Some e -> Ok { (Aux_attrs.make e.Fdir.kind) with Aux_attrs.vv = Vv.empty }
       | None -> Error Errno.ENOENT)
    | Error _ as e -> e
  in
  let* size, stored =
    match parent_ufs.Vnode.lookup (Ids.fid_to_hex fid) with
    | Ok data ->
      let* attrs = data.Vnode.getattr () in
      Ok (attrs.Vnode.size, true)
    | Error Errno.ENOENT -> Ok (0, false)
    | Error _ as e -> e
  in
  Ok
    {
      vi_kind = aux.Aux_attrs.kind;
      vi_vv = aux.Aux_attrs.vv;
      vi_size = size;
      vi_uid = aux.Aux_attrs.uid;
      vi_stored = stored;
      vi_span = aux.Aux_attrs.span;
      vi_summary = None;
    }

let get_version t path =
  match path with
  | [] -> dir_version_info t []
  | _ ->
    let* parent, fid = split_file_path path in
    let* parent_ufs = resolve_dir t parent in
    let* fdir = load_fdir t parent_ufs in
    (match Fdir.find_by_fid fdir fid with
     | None -> Error Errno.ENOENT
     | Some e ->
       (match e.Fdir.kind with
        | Aux_attrs.Freg -> reg_version_info t path
        | Aux_attrs.Fdir | Aux_attrs.Fgraft -> dir_version_info t path))

let fetch_file t path =
  let* vi = reg_version_info t path in
  if not vi.vi_stored then Error Errno.EAGAIN
  else
    let* parent, fid = split_file_path path in
    let* parent_ufs = resolve_dir t parent in
    let* data = parent_ufs.Vnode.lookup (Ids.fid_to_hex fid) in
    let* contents = Vnode.read_all data in
    Ok (vi, contents)

let fetch_dir t path =
  let* ufs_dir = resolve_dir t path in
  load_fdir t ufs_dir

(* Version info for child entry [e] of the directory at [path] whose UFS
   directory is [ufs_dir] — the per-child body of the batched [getdirvvs]
   response, avoiding a root-relative re-resolution per child. *)
let child_version_info t ufs_dir path e =
  let fid = e.Fdir.fid in
  match e.Fdir.kind with
  | Aux_attrs.Freg ->
    let* aux =
      match Aux_attrs.load ~dir:ufs_dir fid with
      | Ok aux -> Ok aux
      | Error Errno.ENOENT -> Ok (Aux_attrs.make Aux_attrs.Freg)
      | Error _ as err -> err
    in
    let* size, stored =
      match ufs_dir.Vnode.lookup (Ids.fid_to_hex fid) with
      | Ok data ->
        let* attrs = data.Vnode.getattr () in
        Ok (attrs.Vnode.size, true)
      | Error Errno.ENOENT -> Ok (0, false)
      | Error _ as err -> err
    in
    Ok
      {
        vi_kind = aux.Aux_attrs.kind;
        vi_vv = aux.Aux_attrs.vv;
        vi_size = size;
        vi_uid = aux.Aux_attrs.uid;
        vi_stored = stored;
        vi_span = aux.Aux_attrs.span;
        vi_summary = None;
      }
  | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
    let* aux = Aux_attrs.load ~dir:ufs_dir fid in
    let* child_ufs = ufs_dir.Vnode.lookup (Ids.fid_to_hex fid) in
    let* child_fdir = load_fdir t child_ufs in
    let summary =
      Vv.merge
        (Option.value ~default:Vv.empty aux.Aux_attrs.summary)
        (pending_summary t (path @ [ fid ]))
    in
    Ok
      {
        vi_kind = aux.Aux_attrs.kind;
        vi_vv = child_fdir.Fdir.vv;
        vi_size = List.length (Fdir.live child_fdir);
        vi_uid = aux.Aux_attrs.uid;
        vi_stored = true;
        vi_span = 0;
        vi_summary = Some summary;
      }

(* ------------------------------------------------------------------ *)
(* The vnode layer                                                     *)

type Vnode.vdata +=
  | Phys_dir of t * fidpath * Aux_attrs.fkind
  | Phys_reg of t * fidpath
  | Phys_ctl of string

let ctl_vnode response =
  {
    (Vnode.not_supported (Phys_ctl response)) with
    getattr =
      (fun () ->
        Ok
          {
            Vnode.kind = Vnode.VCTL;
            size = String.length response;
            nlink = 1;
            mtime = 0;
            mode = 0o400;
            uid = 0;
            gen = 0;
          });
    read =
      (fun ~off ~len ->
        if off < 0 || len < 0 then Error Errno.EINVAL
        else
          let n = String.length response in
          let off = min off n in
          Ok (String.sub response off (min len (n - off))));
    openv = (fun _ -> Ok ());
    closev = (fun () -> Ok ());
    inactive = (fun () -> Ok ());
  }

let vtype_of_fkind = Aux_attrs.kind_to_vtype

(* Forward declarations for mutually recursive vnode builders. *)
let rec dir_vnode t path kind : Vnode.t =
  {
    (Vnode.not_supported (Phys_dir (t, path, kind))) with
    getattr = (fun () -> dir_getattr t path kind);
    lookup = (fun name -> dir_lookup t path name);
    create = (fun name -> dir_create t path name);
    mkdir = (fun name -> dir_mkdir t path name);
    remove = (fun name -> dir_remove t path name);
    rmdir = (fun name -> dir_rmdir t path name);
    rename = (fun sname dst dname -> dir_rename t path sname dst dname);
    link = (fun target name -> dir_link t path target name);
    readdir = (fun () -> dir_readdir t path);
    openv =
      (fun _ ->
        Counters.incr t.counters "phys.open.vnode";
        t.open_count <- t.open_count + 1;
        Ok ());
    closev =
      (fun () ->
        Counters.incr t.counters "phys.close.vnode";
        t.open_count <- t.open_count - 1;
        Ok ());
    fsync = (fun () -> Ok ());
    inactive = (fun () -> Ok ());
    setattr = (fun sa -> dir_setattr t path sa);
  }

(* chmod/chown of a Ficus directory: applied to its DIR file, whose
   attributes dir_getattr presents.  Resizing a directory is senseless. *)
and dir_setattr t path sa =
  if sa.Vnode.set_size <> None then Error Errno.EISDIR
  else
    let* ufs_dir = resolve_dir t path in
    let* dirfile = ufs_dir.Vnode.lookup dirfile_name in
    dirfile.Vnode.setattr sa

and reg_vnode t path : Vnode.t =
  {
    (Vnode.not_supported (Phys_reg (t, path))) with
    getattr = (fun () -> reg_getattr t path);
    setattr = (fun sa -> reg_setattr t path sa);
    read = (fun ~off ~len -> reg_read t path ~off ~len);
    write = (fun ~off data -> reg_write t path ~off data);
    openv =
      (fun _ ->
        Counters.incr t.counters "phys.open.vnode";
        t.open_count <- t.open_count + 1;
        Ok ());
    closev =
      (fun () ->
        Counters.incr t.counters "phys.close.vnode";
        t.open_count <- t.open_count - 1;
        Ok ());
    fsync = (fun () -> Ok ());
    inactive = (fun () -> Ok ());
  }

and dir_getattr t path kind =
  let* ufs_dir = resolve_dir t path in
  let* dirfile = ufs_dir.Vnode.lookup dirfile_name in
  let* attrs = dirfile.Vnode.getattr () in
  Ok { attrs with Vnode.kind = vtype_of_fkind kind; nlink = 1 }

and dir_lookup t path name =
  Counters.incr t.counters "phys.lookup";
  if Ctl_name.is_ctl name then ctl_lookup t path name
  else
    let* ufs_dir = resolve_dir t path in
    let* fdir = load_fdir t ufs_dir in
    let* entry =
      if String.length name > 0 && name.[0] = '@' then
        match Ids.fid_of_at_name name with
        | None -> Error Errno.EINVAL
        | Some fid ->
          (match Fdir.find_by_fid fdir fid with
           | Some e -> Ok e
           | None -> Error Errno.ENOENT)
      else
        match Fdir.find_live fdir name with
        | Some e -> Ok e
        | None -> Error Errno.ENOENT
    in
    let child_path = path @ [ entry.Fdir.fid ] in
    (match entry.Fdir.kind with
     | Aux_attrs.Freg -> Ok (reg_vnode t child_path)
     | Aux_attrs.Fdir -> Ok (dir_vnode t child_path Aux_attrs.Fdir)
     | Aux_attrs.Fgraft -> Ok (dir_vnode t child_path Aux_attrs.Fgraft))

and dir_create t path name =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  let* uniq = alloc_uniq t in
  let fid = { Ids.issuer = t.rid; uniq } in
  let birth = { Fdir.b_rid = t.rid; b_seq = uniq } in
  let* fdir = Fdir.add fdir ~rid:t.rid ~name ~fid ~kind:Aux_attrs.Freg ~birth in
  let* _data = ufs_dir.Vnode.create (Ids.fid_to_hex fid) in
  let aux =
    { (Aux_attrs.make Aux_attrs.Freg) with Aux_attrs.vv = Vv.singleton t.rid 1 }
  in
  let* () = Aux_attrs.store ~dir:ufs_dir fid aux in
  let* () = store_fdir t ufs_dir fdir in
  note_summary_event t path;
  dir_event t path;
  Ok (reg_vnode t (path @ [ fid ]))

and dir_mkdir t path name =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  let* uniq = alloc_uniq t in
  let fid = { Ids.issuer = t.rid; uniq } in
  let birth = { Fdir.b_rid = t.rid; b_seq = uniq } in
  let* fdir = Fdir.add fdir ~rid:t.rid ~name ~fid ~kind:Aux_attrs.Fdir ~birth in
  let* _child = make_dir_storage t ufs_dir fid (Aux_attrs.make Aux_attrs.Fdir) in
  let* () = store_fdir t ufs_dir fdir in
  note_summary_event t path;
  dir_event t path;
  Ok (dir_vnode t (path @ [ fid ]) Aux_attrs.Fdir)

(* Drop a file's UFS storage from this directory unless another live
   entry (a second name in the same directory) still references the fid. *)
and drop_file_storage fdir ufs_dir fid =
  if Fdir.find_by_fid fdir fid <> None then Ok ()
  else
    let* () = ignore_enoent (ufs_dir.Vnode.remove (Ids.fid_to_hex fid)) in
    ignore_enoent (ufs_dir.Vnode.remove (Ids.aux_name fid))

and dir_remove t path name =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  match Fdir.find_live fdir name with
  | None -> Error Errno.ENOENT
  | Some e ->
    if e.Fdir.kind <> Aux_attrs.Freg then Error Errno.EISDIR
    else
      let* fdir = Fdir.kill fdir ~rid:t.rid e.Fdir.birth in
      let* () = drop_file_storage fdir ufs_dir e.Fdir.fid in
      let* () = store_fdir t ufs_dir fdir in
      note_summary_event t path;
      dir_event t path;
      Ok ()

and dir_rmdir t path name =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  match Fdir.find_live fdir name with
  | None -> Error Errno.ENOENT
  | Some e ->
    if e.Fdir.kind = Aux_attrs.Freg then Error Errno.ENOTDIR
    else
      let* child_ufs = ufs_dir.Vnode.lookup (Ids.fid_to_hex e.Fdir.fid) in
      let* child_fdir = load_fdir t child_ufs in
      if Fdir.live child_fdir <> [] then Error Errno.ENOTEMPTY
      else
        let* fdir = Fdir.kill fdir ~rid:t.rid e.Fdir.birth in
        let* () = rm_tree ufs_dir (Ids.fid_to_hex e.Fdir.fid) in
        let* () = ignore_enoent (ufs_dir.Vnode.remove (Ids.aux_name e.Fdir.fid)) in
        let* () = store_fdir t ufs_dir fdir in
        note_summary_event t path;
        dir_event t path;
        Ok ()

(* Move the UFS storage of [e] from [src_ufs] to [dst_ufs] (no-op when
   the destination already stores the fid, e.g. an extra hard link). *)
and move_storage e src_ufs dst_ufs =
  let hex = Ids.fid_to_hex e.Fdir.fid in
  let aux = Ids.aux_name e.Fdir.fid in
  match dst_ufs.Vnode.lookup hex with
  | Ok _ ->
    let* () = ignore_enoent (src_ufs.Vnode.remove hex) in
    ignore_enoent (src_ufs.Vnode.remove aux)
  | Error Errno.ENOENT ->
    let* () =
      match src_ufs.Vnode.lookup hex with
      | Ok _ ->
        let* () = src_ufs.Vnode.rename hex dst_ufs hex in
        src_ufs.Vnode.rename aux dst_ufs aux
      | Error Errno.ENOENT -> Ok () (* not stored locally: nothing to move *)
      | Error _ as err -> err
    in
    Ok ()
  | Error _ as err -> err

and dir_rename t path sname dst dname =
  let* dst_path =
    match dst.Vnode.data with
    | Phys_dir (t', q, _) when t' == t -> Ok q
    | _ -> Error Errno.EXDEV
  in
  let same_dir = List.length path = List.length dst_path
                 && List.for_all2 Ids.fid_equal path dst_path in
  let* src_ufs = resolve_dir t path in
  let* dst_ufs = if same_dir then Ok src_ufs else resolve_dir t dst_path in
  let* src_fdir = load_fdir t src_ufs in
  let* entry =
    match Fdir.find_live src_fdir sname with
    | Some e -> Ok e
    | None -> Error Errno.ENOENT
  in
  let* dst_fdir = if same_dir then Ok src_fdir else load_fdir t dst_ufs in
  (* Destination name handling: replace a plain file, refuse a directory. *)
  let* dst_fdir =
    match Fdir.find_live dst_fdir dname with
    | None -> Ok dst_fdir
    | Some de when same_dir && Fdir.birth_compare de.Fdir.birth entry.Fdir.birth = 0 ->
      Ok dst_fdir (* renaming onto itself *)
    | Some de ->
      if de.Fdir.kind <> Aux_attrs.Freg then Error Errno.EEXIST
      else
        let* d = Fdir.kill dst_fdir ~rid:t.rid de.Fdir.birth in
        let* () = drop_file_storage d dst_ufs de.Fdir.fid in
        Ok d
  in
  let* uniq = alloc_uniq t in
  let birth = { Fdir.b_rid = t.rid; b_seq = uniq } in
  if same_dir then begin
    let* fdir = Fdir.kill dst_fdir ~rid:t.rid entry.Fdir.birth in
    let* fdir =
      Fdir.add fdir ~rid:t.rid ~name:dname ~fid:entry.Fdir.fid ~kind:entry.Fdir.kind ~birth
    in
    let* () = store_fdir t src_ufs fdir in
    note_summary_event t path;
    dir_event t path;
    Ok ()
  end
  else begin
    (* Moving a directory relocates its subtree's aux files.  Flush
       pending summary events first, while their recorded fidpaths
       still resolve — flushed later they would miss the moved aux and
       the subtree's own summary would lose them, letting peers prune
       it as already incorporated. *)
    let* _ =
      if entry.Fdir.kind = Aux_attrs.Freg then Ok 0 else flush_summaries t
    in
    let* src_fdir = Fdir.kill src_fdir ~rid:t.rid entry.Fdir.birth in
    let* dst_fdir =
      Fdir.add dst_fdir ~rid:t.rid ~name:dname ~fid:entry.Fdir.fid ~kind:entry.Fdir.kind ~birth
    in
    let* () = move_storage entry src_ufs dst_ufs in
    let* () = store_fdir t src_ufs src_fdir in
    let* () = store_fdir t dst_ufs dst_fdir in
    note_summary_event t path;
    note_summary_event t dst_path;
    dir_event t path;
    dir_event t dst_path;
    Ok ()
  end

and dir_link t path target name =
  let* target_path =
    match target.Vnode.data with
    | Phys_reg (t', p) when t' == t -> Ok p
    | _ -> Error Errno.EXDEV
  in
  let* tparent, tfid = split_file_path target_path in
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  let* uniq = alloc_uniq t in
  let birth = { Fdir.b_rid = t.rid; b_seq = uniq } in
  let* fdir = Fdir.add fdir ~rid:t.rid ~name ~fid:tfid ~kind:Aux_attrs.Freg ~birth in
  let hex = Ids.fid_to_hex tfid in
  let* () =
    match ufs_dir.Vnode.lookup hex with
    | Ok _ -> Ok () (* this directory already stores the file *)
    | Error Errno.ENOENT ->
      let* tparent_ufs = resolve_dir t tparent in
      (match tparent_ufs.Vnode.lookup hex with
       | Ok data ->
         let* () = ufs_dir.Vnode.link data hex in
         let* aux = tparent_ufs.Vnode.lookup (Ids.aux_name tfid) in
         ufs_dir.Vnode.link aux (Ids.aux_name tfid)
       | Error Errno.ENOENT -> Ok () (* sparse replica: entry only *)
       | Error _ as e -> e)
    | Error _ as e -> e
  in
  let* () = store_fdir t ufs_dir fdir in
  note_summary_event t path;
  dir_event t path;
  Ok ()

and dir_readdir t path =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  Ok
    (List.map
       (fun (name, e) ->
         { Vnode.entry_name = name; entry_kind = vtype_of_fkind e.Fdir.kind })
       (Fdir.live fdir))

(* ---------------- regular files ---------------- *)

and data_vnode t path =
  let* parent, fid = split_file_path path in
  let* parent_ufs = resolve_dir t parent in
  match parent_ufs.Vnode.lookup (Ids.fid_to_hex fid) with
  | Ok v -> Ok (v, parent_ufs, fid)
  | Error Errno.ENOENT -> Error Errno.EAGAIN (* entry exists, contents not stored here *)
  | Error _ as e -> e

and bump_file_version t parent_ufs fid =
  let* aux = Aux_attrs.load ~dir:parent_ufs fid in
  (* Persist the ambient trace span alongside the version bump: a
     reconciling replica that later fetches this version learns which
     update timeline it belongs to. *)
  let span =
    match Span.ambient_id () with 0 -> aux.Aux_attrs.span | s -> s
  in
  (* The recorded content digest is only ever valid for installed
     contents; a local write invalidates it (recomputed lazily when a
     chunk map is next served). *)
  let aux =
    { aux with Aux_attrs.vv = Vv.bump aux.Aux_attrs.vv t.rid; span; digest = None }
  in
  let* () = Aux_attrs.store ~dir:parent_ufs fid aux in
  Ok aux.Aux_attrs.vv

and reg_getattr t path =
  let* data, parent_ufs, fid = data_vnode t path in
  let* attrs = data.Vnode.getattr () in
  let* aux = Aux_attrs.load ~dir:parent_ufs fid in
  Ok { attrs with Vnode.kind = Vnode.VREG; uid = aux.Aux_attrs.uid }

and reg_setattr t path sa =
  let* data, parent_ufs, fid = data_vnode t path in
  let* () =
    match sa.Vnode.set_uid with
    | None -> Ok ()
    | Some uid ->
      let* aux = Aux_attrs.load ~dir:parent_ufs fid in
      Aux_attrs.store ~dir:parent_ufs fid { aux with Aux_attrs.uid = uid }
  in
  let* () = data.Vnode.setattr sa in
  if sa.Vnode.set_size <> None then begin
    let* vv = bump_file_version t parent_ufs fid in
    Counters.incr t.counters "phys.update";
    Span.emit "phys:update";
    (match split_file_path path with
     | Ok (parent, fid) ->
       note_summary_event t parent;
       file_event ~vv t path fid
     | Error _ -> ());
    Ok ()
  end
  else Ok ()

and reg_read t path ~off ~len =
  let* data, _, _ = data_vnode t path in
  data.Vnode.read ~off ~len

and reg_write t path ~off payload =
  let* data, parent_ufs, fid = data_vnode t path in
  let* () = data.Vnode.write ~off payload in
  let* vv = bump_file_version t parent_ufs fid in
  Counters.incr t.counters "phys.update";
  Span.emit "phys:update";
  (match split_file_path path with
   | Ok (parent, _) -> note_summary_event t parent
   | Error _ -> ());
  file_event ~vv t path fid;
  Ok ()

(* ---------------- control requests over lookup ---------------- *)

(* Resolve a control-operation target: "." is the directory the lookup
   arrived at; otherwise a child by "@hex" handle or by name. *)
and ctl_target t path who =
  if who = "." then
    let* vi = dir_version_info t path in
    Ok (path, vi)
  else
    let* ufs_dir = resolve_dir t path in
    let* fdir = load_fdir t ufs_dir in
    let* entry =
      if String.length who > 0 && who.[0] = '@' then
        match Ids.fid_of_at_name who with
        | None -> Error Errno.EINVAL
        | Some fid ->
          (match Fdir.find_by_fid fdir fid with
           | Some e -> Ok e
           | None -> Error Errno.ENOENT)
      else
        match Fdir.find_live fdir who with
        | Some e -> Ok e
        | None -> Error Errno.ENOENT
    in
    let child = path @ [ entry.Fdir.fid ] in
    let* vi = get_version t child in
    Ok (child, vi)

and encode_version_info vi =
  Printf.sprintf "kind=%s\nvv=%s\nsize=%d\nuid=%d\nstored=%d\nspan=%d\n%s"
    (Aux_attrs.kind_to_string vi.vi_kind)
    (Vv.encode vi.vi_vv) vi.vi_size vi.vi_uid
    (if vi.vi_stored then 1 else 0)
    vi.vi_span
    (match vi.vi_summary with
     | None -> ""
     | Some s -> Printf.sprintf "summary=%s\n" (Vv.encode s))

(* Whole-content digest for the chunk-map header: trust the aux record
   when present (the install path writes it, every local write clears
   it — a [Some] is never stale), else compute from the contents. *)
and stored_digest t path data =
  let from_aux =
    match split_file_path path with
    | Error _ -> None
    | Ok (parent, fid) ->
      (match resolve_dir t parent with
       | Error _ -> None
       | Ok parent_ufs ->
         (match Aux_attrs.load ~dir:parent_ufs fid with
          | Ok aux -> aux.Aux_attrs.digest
          | Error _ -> None))
  in
  match from_aux with Some d -> d | None -> Chunking.digest_hex data

(* The `.#ficus#stats` body: the whole observability snapshot in the
   same line-oriented style as the other ctl responses — metrics first,
   then every span timeline as [span <id> <tick> <host> <label>]. *)
and stats_body t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Metrics.render (Metrics.snapshot t.obs.Obs.metrics));
  let spans = t.obs.Obs.spans in
  List.iter
    (fun id ->
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "span %d %d %s %s\n" id e.Span.e_tick e.Span.e_host
               e.Span.e_label))
        (Span.timeline spans id))
    (Span.ids spans);
  Buffer.contents buf

and ctl_lookup t path name =
  Counters.incr t.counters "phys.ctl";
  match Ctl_name.decode name with
  | None -> Error Errno.EINVAL
  | Some (op, args) ->
    (match op, args with
     | "open", _ ->
       Counters.incr t.counters "phys.open.ctl";
       t.open_count <- t.open_count + 1;
       Ok (ctl_vnode "ok\n")
     | "close", _ ->
       Counters.incr t.counters "phys.close.ctl";
       t.open_count <- t.open_count - 1;
       Ok (ctl_vnode "ok\n")
     | "getvv", who :: _ ->
       let* _, vi = ctl_target t path who in
       Ok (ctl_vnode (encode_version_info vi))
     | "readfile", who :: _ ->
       let* target, vi = ctl_target t path who in
       if vi.vi_kind <> Aux_attrs.Freg then Error Errno.EISDIR
       else
         let* vi, data = fetch_file t target in
         Ok (ctl_vnode (encode_version_info vi ^ "--\n" ^ data))
     | "getdir", who :: _ ->
       let* target, vi = ctl_target t path who in
       if vi.vi_kind = Aux_attrs.Freg then Error Errno.ENOTDIR
       else
         let* fdir = fetch_dir t target in
         Ok (ctl_vnode (Fdir.encode fdir))
     | "getdirvvs", who :: _ ->
       (* Batched: one directory's summary + fdir + version info for all
          its children in a single response.  Flush pending summary
          bumps first so every claim we serve is durable. *)
       Counters.incr t.counters "phys.ctl.getdirvvs";
       let* (_ : int) = flush_summaries t in
       let* target, vi = ctl_target t path who in
       if vi.vi_kind = Aux_attrs.Freg then Error Errno.ENOTDIR
       else
         let* ufs_dir = resolve_dir t target in
         let* fdir = load_fdir t ufs_dir in
         let buf = Buffer.create 1024 in
         (match vi.vi_summary with
          | Some s -> Buffer.add_string buf ("summary=" ^ Vv.encode s ^ "\n")
          | None -> ());
         Buffer.add_string buf "fdir:\n";
         Buffer.add_string buf (Fdir.encode fdir);
         Buffer.add_string buf "endfdir:\n";
         List.iter
           (fun e ->
             match child_version_info t ufs_dir target e with
             | Error _ -> () (* omitted child: the walker falls back for it *)
             | Ok cvi ->
               Buffer.add_string buf
                 (Printf.sprintf "child=%s\n" (Ids.fid_to_hex e.Fdir.fid));
               Buffer.add_string buf (encode_version_info cvi))
           (Fdir.live_fids fdir);
         Ok (ctl_vnode (Buffer.contents buf))
     | "getchunkmap", who :: _ ->
       (* Delta negotiation, step 1: the file's version info, whole-file
          digest and content-defined chunk map — a header-sized answer
          from which the puller works out which bodies it is missing. *)
       Counters.incr t.counters "phys.ctl.getchunkmap";
       let* target, vi = ctl_target t path who in
       if vi.vi_kind <> Aux_attrs.Freg then Error Errno.EISDIR
       else
         let* vi, data = fetch_file t target in
         let digest = stored_digest t target data in
         let chunks = chunks_of_content t data in
         Ok
           (ctl_vnode
              (encode_version_info vi ^ "digest=" ^ digest ^ "\n--\n"
               ^ Chunking.encode_map chunks))
     | "readchunks", who :: wanted :: _ ->
       (* Delta negotiation, step 2: the bodies of the comma-separated
          digests.  A digest we no longer hold means the file changed
          between the map fetch and this call: EAGAIN tells the puller
          to fall back to a whole-file fetch rather than mix
          generations. *)
       Counters.incr t.counters "phys.ctl.readchunks";
       let* target, vi = ctl_target t path who in
       if vi.vi_kind <> Aux_attrs.Freg then Error Errno.EISDIR
       else
         let* _vi, data = fetch_file t target in
         let chunks = chunks_of_content t data in
         let by_digest = Hashtbl.create 16 in
         List.iter
           (fun c ->
             if not (Hashtbl.mem by_digest c.Chunking.digest) then
               Hashtbl.add by_digest c.Chunking.digest c)
           chunks;
         let buf = Buffer.create 4096 in
         let rec serve = function
           | [] -> Ok ()
           | d :: rest ->
             (match Hashtbl.find_opt by_digest d with
              | None -> Error Errno.EAGAIN
              | Some c ->
                Buffer.add_string buf
                  (Printf.sprintf "chunk=%s %d\n" c.Chunking.digest c.Chunking.len);
                Buffer.add_string buf (Chunking.slice data c);
                Buffer.add_char buf '\n';
                serve rest)
         in
         let* () = serve (String.split_on_char ',' wanted) in
         Ok (ctl_vnode (Buffer.contents buf))
     | "stats", _ ->
       Counters.incr t.counters "phys.ctl.stats";
       Metrics.incr t.obs.Obs.metrics "phys.ctl.stats";
       Ok (ctl_vnode (stats_body t))
     | "peers", _ ->
       let body =
         t.peers
         |> List.map (fun (r, h) -> Printf.sprintf "%d@%s" r h)
         |> String.concat ","
       in
       Ok (ctl_vnode (body ^ "\n"))
     | "meta", _ ->
       Ok
         (ctl_vnode
            (Printf.sprintf "vref=%d.%d\nrid=%d\n" t.vref.Ids.alloc t.vref.Ids.vol t.rid))
     | "resolve", who :: _ ->
       let* ufs_dir = resolve_dir t path in
       let* fdir = load_fdir t ufs_dir in
       (match Fdir.find_live fdir who with
        | None -> Error Errno.ENOENT
        | Some e ->
          Ok
            (ctl_vnode
               (Printf.sprintf "fid=%s\nkind=%s\n" (Ids.fid_to_hex e.Fdir.fid)
                  (Aux_attrs.kind_to_string e.Fdir.kind))))
     | _, _ -> Error Errno.EINVAL)

let root t = dir_vnode t [] Aux_attrs.Fdir

(* ------------------------------------------------------------------ *)
(* Installation (pull side of propagation and reconciliation)          *)

let install_file ?(span = 0) ?(via = "prop") t path ~vv ~uid ~data ~origin_rid =
  let* parent, fid = split_file_path path in
  let* parent_ufs = resolve_dir t parent in
  let* local =
    match Aux_attrs.load ~dir:parent_ufs fid with
    | Ok aux -> Ok (Some aux)
    | Error Errno.ENOENT -> Ok None
    | Error _ as e -> e
  in
  let adopt () =
    let* () = Shadow.install ~dir:parent_ufs fid ~data in
    let now = Clock.now t.clock in
    Span.event t.obs.Obs.spans span ~host:t.host ~tick:now "shadow:swap";
    let merged_vv =
      match local with
      | None -> vv
      | Some aux -> Vv.merge aux.Aux_attrs.vv vv
    in
    let aux =
      {
        (Aux_attrs.make Aux_attrs.Freg) with
        Aux_attrs.vv = merged_vv;
        uid;
        span;
        digest = Some (Chunking.digest_hex data);
      }
    in
    let* () = Aux_attrs.store ~dir:parent_ufs fid aux in
    (* Write-through: the next chunk-map request for these contents (a
       peer pulling them onward) is a cache probe, not a re-chunk. *)
    chunk_cache_put t data (Chunking.split data);
    Span.event t.obs.Obs.spans span ~host:t.host ~tick:now ("install:" ^ via);
    (* The convergence measurement: ticks from the originating write
       (the span's first event) to this replica holding the version. *)
    (match Span.start_tick t.obs.Obs.spans span with
    | Some t0 ->
      Metrics.observe t.obs.Obs.metrics "prop.lag" (now - t0);
      Metrics.observe t.obs.Obs.metrics ("prop.lag." ^ t.host) (now - t0)
    | None -> ());
    (* A dominating version supersedes any conflict reported here: the
       owner (or another replica) has already resolved it. *)
    let superseded = Conflict_log.resolve_matching t.conflicts ~fidpath:path in
    if superseded > 0 then
      Log.info (fun m ->
          m ~tags:(log_tags t.host) "r%d: conflict on %s superseded by a dominating remote version" t.rid
            (Ids.fidpath_to_string path));
    Counters.incr t.counters "phys.install";
    Counters.add t.counters "phys.install.bytes" (String.length data);
    (* Adopting a remote version is a local state change: peers that
       summarized us before this install must walk us again. *)
    note_summary_event t parent;
    Ok Installed
  in
  match local with
  | None -> adopt ()
  | Some aux ->
    let stored =
      match parent_ufs.Vnode.lookup (Ids.fid_to_hex fid) with Ok _ -> true | Error _ -> false
    in
    if not stored then adopt ()
    else
      (match Vv.compare_vv vv aux.Aux_attrs.vv with
       | Vv.Dominates -> adopt ()
       | Vv.Equal | Vv.Dominated -> Ok Up_to_date
       | Vv.Concurrent ->
         (* Report once: periodic reconciliation re-detects the same
            conflict every pass until the owner resolves it.  The aux
            flag alone is not enough to suppress the report — it
            survives a crash while the in-memory log does not, and a
            flag with no pending entry would leave the conflict
            invisible to the owner forever. *)
         if
           (not aux.Aux_attrs.conflict)
           || not (Conflict_log.has_pending t.conflicts ~fidpath:path)
         then begin
           (match
              Aux_attrs.store ~dir:parent_ufs fid { aux with Aux_attrs.conflict = true }
            with
            | Ok () | Error _ -> ());
           let (_ : Conflict_log.entry) =
             Conflict_log.report t.conflicts ~vref:t.vref ~fidpath:path ~fid
               ~owner_uid:aux.Aux_attrs.uid ~detected_at:(Clock.now t.clock)
               (Conflict_log.File_update
                  {
                    local_vv = aux.Aux_attrs.vv;
                    remote_vv = vv;
                    remote_rid = origin_rid;
                    remote_data = data;
                  })
           in
           Log.warn (fun m ->
               m ~tags:(log_tags t.host) "r%d: concurrent update conflict on %s (local %a, remote r%d %a)" t.rid
                 (Ids.fidpath_to_string path) Vv.pp aux.Aux_attrs.vv origin_rid Vv.pp vv);
           Counters.incr t.counters "phys.conflict.file"
         end;
         Ok (Conflict aux.Aux_attrs.vv))

let force_install t path ~vv ~uid ~data =
  let* parent, fid = split_file_path path in
  let* parent_ufs = resolve_dir t parent in
  let* () = Shadow.install ~dir:parent_ufs fid ~data in
  let aux =
    {
      (Aux_attrs.make Aux_attrs.Freg) with
      Aux_attrs.vv = vv;
      uid;
      conflict = false;
      digest = Some (Chunking.digest_hex data);
    }
  in
  let* () = Aux_attrs.store ~dir:parent_ufs fid aux in
  chunk_cache_put t data (Chunking.split data);
  note_summary_event t parent;
  file_event ~vv t path fid;
  Ok ()

(* Apply one Fdir merge action to local storage.  [merged] is the
   post-merge directory, consulted so shared storage survives while any
   other live name still references the fid. *)
let apply_action t path ufs_dir merged action =
  match action with
  | Fdir.Expire _ -> Ok ()
  | Fdir.Materialize e ->
    (match e.Fdir.kind with
     | Aux_attrs.Freg ->
       (* Entry adopted; contents arrive by pull.  Store a zero-history
          aux so version queries answer "not stored". *)
       (match Aux_attrs.load ~dir:ufs_dir e.Fdir.fid with
        | Ok _ -> Ok ()
        | Error Errno.ENOENT ->
          Aux_attrs.store ~dir:ufs_dir e.Fdir.fid (Aux_attrs.make Aux_attrs.Freg)
        | Error _ as err -> err)
     | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
       (match ufs_dir.Vnode.lookup (Ids.fid_to_hex e.Fdir.fid) with
        | Ok _ -> Ok ()
        | Error Errno.ENOENT ->
          let* _child = make_dir_storage t ufs_dir e.Fdir.fid (Aux_attrs.make e.Fdir.kind) in
          Ok ()
        | Error _ as err -> err))
  | Fdir.Unmaterialize e ->
    (match e.Fdir.kind with
     | Aux_attrs.Freg -> drop_file_storage merged ufs_dir e.Fdir.fid
     | Aux_attrs.Fdir | Aux_attrs.Fgraft when Fdir.find_by_fid merged e.Fdir.fid <> None ->
       (* A rename left a dead birth and a live one for the same fid in
          this directory; the storage belongs to the surviving name. *)
       Ok ()
     | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
       let hex = Ids.fid_to_hex e.Fdir.fid in
       (match ufs_dir.Vnode.lookup hex with
        | Error Errno.ENOENT -> Ok ()
        | Error _ as err -> err
        | Ok child_ufs ->
          let* child_fdir = load_fdir t child_ufs in
          if Fdir.live child_fdir = [] then begin
            let* () = rm_tree ufs_dir hex in
            ignore_enoent (ufs_dir.Vnode.remove (Ids.aux_name e.Fdir.fid))
          end
          else if t.dir_merge = `Crdt then begin
            (* CRDT mode: leave the subtree's storage in place behind
               the tombstone.  The repair pass re-parents it into the
               replicated lost+found as joinable Fdir ops, so every
               replica converges on the same placement — unlike the
               replica-local ORPHANS move below. *)
            Counters.incr t.counters "phys.crdt.kept_dead_dir";
            Ok ()
          end
          else begin
            (* Remove/update conflict: the directory died remotely while
               it gained content here.  Preserve the contents. *)
            let* orphanage = Namei.mkdir_p ~root:t.container orphans_dirname in
            let* uniq = alloc_uniq t in
            let orphan_name = Printf.sprintf "%s.%d" hex uniq in
            let* () = ufs_dir.Vnode.rename hex orphanage orphan_name in
            let* () = ignore_enoent (ufs_dir.Vnode.remove (Ids.aux_name e.Fdir.fid)) in
            let (_ : Conflict_log.entry) =
              Conflict_log.report t.conflicts ~vref:t.vref ~fidpath:(path @ [ e.Fdir.fid ])
                ~fid:e.Fdir.fid ~owner_uid:0 ~detected_at:(Clock.now t.clock)
                (Conflict_log.Removed_while_updated
                   { orphaned_to = orphans_dirname ^ "/" ^ orphan_name })
            in
            Log.warn (fun m ->
                m ~tags:(log_tags t.host) "r%d: directory %s removed remotely while updated here; contents preserved in %s"
                  t.rid hex orphan_name);
            Counters.incr t.counters "phys.conflict.orphan";
            Ok ()
          end))

let merge_dir t path ~remote_rid remote =
  let* ufs_dir = resolve_dir t path in
  let* local = load_fdir t ufs_dir in
  let peer_rids = List.map fst t.peers in
  (* CRDT mode keeps a tombstoned directory's storage in place for the
     repair pass — so its tombstone must stay discoverable too.  Defer
     expiry while the stored subtree still holds live entries; once
     repair re-parents it (the storage moves away or empties out) the
     tombstone expires on the next exchange. *)
  let may_expire (e : Fdir.entry) =
    t.dir_merge <> `Crdt
    ||
    match e.Fdir.kind with
    | Aux_attrs.Freg -> true
    | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
      (match ufs_dir.Vnode.lookup (Ids.fid_to_hex e.Fdir.fid) with
       | Error _ -> true
       | Ok child ->
         (match load_fdir t child with
          | Error _ -> true
          | Ok f ->
            if Fdir.live f = [] then true
            else begin
              Counters.incr t.counters "phys.crdt.expire_deferred";
              false
            end))
  in
  let result =
    Fdir.merge ~may_expire ~local_rid:t.rid ~remote_rid ~peers:peer_rids local remote
  in
  let rec apply = function
    | [] -> Ok ()
    | a :: rest ->
      let* () = apply_action t path ufs_dir result.Fdir.merged a in
      apply rest
  in
  let* () = apply result.Fdir.actions in
  let* () = store_fdir t ufs_dir result.Fdir.merged in
  (* Any observable change to the stored directory — entries, tombstone
     expiry, known-map gossip — is an incorporation event peers must not
     prune past. *)
  if Fdir.encode local <> Fdir.encode result.Fdir.merged then note_summary_event t path;
  List.iter
    (fun (colliding_name, births) ->
      let fid =
        match Fdir.find_birth result.Fdir.merged (List.hd births) with
        | Some e -> e.Fdir.fid
        | None -> Ids.root_fid
      in
      let (_ : Conflict_log.entry) =
        Conflict_log.report t.conflicts ~vref:t.vref ~fidpath:path ~fid ~owner_uid:0
          ~detected_at:(Clock.now t.clock)
          (Conflict_log.Name_collision { name = colliding_name; births })
      in
      Log.info (fun m ->
          m ~tags:(log_tags t.host) "r%d: name collision on %S in %s repaired deterministically" t.rid colliding_name
            (Ids.fidpath_to_string path));
      Counters.incr t.counters "phys.conflict.name")
    result.Fdir.new_collisions;
  Counters.incr t.counters "phys.merge_dir";
  Ok result

(* ------------------------------------------------------------------ *)
(* CRDT tree-repair primitives

   The repair pass ({!Crdt_merge}) works over *storage*, not the live
   namespace: in [`Crdt] mode tombstoned directories keep their UFS
   subtree in place, so a dir that lost every live link (concurrent
   cross-renames) is still addressable here.  These primitives expose
   exactly the mutations the repair needs, each expressed as an
   ordinary joinable Fdir operation so partial-knowledge replicas
   converge by merge. *)

(* Visit every directory whose storage is reachable under the
   namespace-parallel layout — dead entries included — exactly once. *)
let walk_stored_dirs t f =
  let visited = Hashtbl.create 32 in
  let rec go path ufs_dir =
    match load_fdir t ufs_dir with
    | Error Errno.ENOENT -> Ok () (* half-built storage; skip *)
    | Error _ as e -> e
    | Ok fdir ->
      f path fdir;
      let rec children = function
        | [] -> Ok ()
        | (e : Fdir.entry) :: rest ->
          (match e.Fdir.kind with
           | Aux_attrs.Freg -> children rest
           | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
             let hex = Ids.fid_to_hex e.Fdir.fid in
             if Hashtbl.mem visited hex then children rest
             else begin
               Hashtbl.replace visited hex ();
               match ufs_dir.Vnode.lookup hex with
               | Error Errno.ENOENT -> children rest
               | Error _ as err -> err
               | Ok child ->
                 let* () = go (path @ [ e.Fdir.fid ]) child in
                 children rest
             end)
      in
      children fdir.Fdir.entries
  in
  Hashtbl.replace visited (Ids.fid_to_hex Ids.root_fid) ();
  let* root_ufs = t.container.Vnode.lookup (Ids.fid_to_hex Ids.root_fid) in
  go [] root_ufs

(* The UFS directory currently holding [fid]'s storage, if any. *)
let find_dir_storage t fid =
  let target = Ids.fid_to_hex fid in
  let found = ref None in
  let rec go ufs_dir =
    match ufs_dir.Vnode.lookup target with
    | Ok _ ->
      found := Some ufs_dir;
      Ok ()
    | Error _ ->
      let* entries = ufs_dir.Vnode.readdir () in
      let rec descend = function
        | [] -> Ok ()
        | (e : Vnode.dirent) :: rest ->
          if !found <> None then Ok ()
          else if
            e.Vnode.entry_kind <> Vnode.VDIR && e.Vnode.entry_kind <> Vnode.VGRAFT
          then descend rest
          else
            let* child = ufs_dir.Vnode.lookup e.Vnode.entry_name in
            let* () = go child in
            descend rest
      in
      descend entries
  in
  let* root_ufs = t.container.Vnode.lookup (Ids.fid_to_hex Ids.root_fid) in
  let* () = go root_ufs in
  Ok !found

(* Tombstone a live entry of the directory stored at [path] (a storage
   path — the directory itself may be behind a tombstone).  Idempotent:
   an already-dead or expired entry is a no-op. *)
let demote_entry t path birth =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  match Fdir.kill fdir ~rid:t.rid birth with
  | Error Errno.ENOENT -> Ok false
  | Error _ as e -> e
  | Ok fdir ->
    let* () = store_fdir t ufs_dir fdir in
    note_summary_event t path;
    dir_event t path;
    Counters.incr t.counters "phys.crdt.demote";
    Ok true

(* Ensure the lost+found entry and storage exist under the root.
   Returns its UFS dir, or [None] when an unrelated live "lost+found"
   already claims the name (user-created; repair then skips attaches). *)
let ensure_lost_found t =
  let* root_ufs = resolve_dir t [] in
  let* root_fdir = load_fdir t root_ufs in
  let birth = { Fdir.b_rid = lost_found_fid.Ids.issuer; b_seq = lost_found_fid.Ids.uniq } in
  let storage () =
    match root_ufs.Vnode.lookup (Ids.fid_to_hex lost_found_fid) with
    | Ok v -> Ok v
    | Error Errno.ENOENT ->
      make_dir_storage t root_ufs lost_found_fid (Aux_attrs.make Aux_attrs.Fdir)
    | Error _ as e -> e
  in
  match Fdir.find_birth root_fdir birth with
  | Some { Fdir.status = Fdir.Live; _ } ->
    let* v = storage () in
    Ok (Some v)
  | Some _ -> Ok None (* the orphanage itself was removed; honor that *)
  | None ->
    (match
       Fdir.add root_fdir ~rid:t.rid ~name:lost_found_name ~fid:lost_found_fid
         ~kind:Aux_attrs.Fdir ~birth
     with
     | Error _ -> Ok None (* a user-created "lost+found" holds the name *)
     | Ok root_fdir ->
       let* v = storage () in
       let* () = store_fdir t root_ufs root_fdir in
       note_summary_event t [];
       dir_event t [];
       Ok (Some v))

(* Re-parent an unplaced directory into lost+found: add a live entry
   with a purely fid-derived name and the directory's own creation
   birth — both computable from the fid alone, so concurrent repairs on
   different replicas produce the *same* entry and join cleanly — then
   move its storage (subtree and aux) underneath.  Returns whether
   anything changed. *)
let attach_to_lost_found t ~fid ~kind =
  if Ids.fid_equal fid lost_found_fid || Ids.fid_equal fid Ids.root_fid then Ok false
  else
    let* lf = ensure_lost_found t in
    match lf with
    | None -> Ok false
    | Some lf_ufs ->
      let* lf_fdir = load_fdir t lf_ufs in
      let hex = Ids.fid_to_hex fid in
      let birth = { Fdir.b_rid = fid.Ids.issuer; b_seq = fid.Ids.uniq } in
      let lf_path = [ lost_found_fid ] in
      let* entry_added =
        match Fdir.find_birth lf_fdir birth with
        | Some _ -> Ok false (* attached before (possibly since removed by a user) *)
        | None ->
          (match Fdir.add lf_fdir ~rid:t.rid ~name:hex ~fid ~kind ~birth with
           | Error _ -> Ok false
           | Ok lf_fdir ->
             let* () = store_fdir t lf_ufs lf_fdir in
             note_summary_event t lf_path;
             dir_event t lf_path;
             Ok true)
      in
      let* storage_moved =
        match lf_ufs.Vnode.lookup hex with
        | Ok _ -> Ok false
        | Error Errno.ENOENT ->
          let* holder = find_dir_storage t fid in
          (match holder with
           | Some parent_ufs ->
             (* Same rule as dir_rename: flush pending summary events
                before relocating the subtree's aux files. *)
             let* _ = flush_summaries t in
             let* () = parent_ufs.Vnode.rename hex lf_ufs hex in
             let* () =
               match Aux_attrs.load ~dir:parent_ufs fid with
               | Ok aux ->
                 let* () = Aux_attrs.store ~dir:lf_ufs fid aux in
                 ignore_enoent (parent_ufs.Vnode.remove (Ids.aux_name fid))
               | Error Errno.ENOENT -> Aux_attrs.store ~dir:lf_ufs fid (Aux_attrs.make kind)
               | Error _ as e -> e
             in
             Ok true
           | None ->
             (* Entry known, storage never materialized here. *)
             let* _v = make_dir_storage t lf_ufs fid (Aux_attrs.make kind) in
             Ok true)
        | Error _ as e -> e
      in
      if entry_added || storage_moved then begin
        note_summary_event t lf_path;
        Counters.incr t.counters "phys.crdt.attach";
        Ok true
      end
      else Ok false

(* ------------------------------------------------------------------ *)
(* Graft points (paper §4.3)                                           *)

let volume_entry_name (vref : Ids.volume_ref) =
  Printf.sprintf "volume.%d.%d" vref.Ids.alloc vref.Ids.vol

let replica_entry_name r h = Printf.sprintf "replica.%d@%s" r h

let add_plain_entry t ufs_dir fdir name =
  let* uniq = alloc_uniq t in
  let fid = { Ids.issuer = t.rid; uniq } in
  let birth = { Fdir.b_rid = t.rid; b_seq = uniq } in
  let* fdir = Fdir.add fdir ~rid:t.rid ~name ~fid ~kind:Aux_attrs.Freg ~birth in
  let* () = Aux_attrs.store ~dir:ufs_dir fid (Aux_attrs.make Aux_attrs.Freg) in
  Ok fdir

let make_graft_point t ~parent ~name ~target ~replicas =
  let* ufs_dir = resolve_dir t parent in
  let* fdir = load_fdir t ufs_dir in
  let* uniq = alloc_uniq t in
  let fid = { Ids.issuer = t.rid; uniq } in
  let birth = { Fdir.b_rid = t.rid; b_seq = uniq } in
  let* fdir = Fdir.add fdir ~rid:t.rid ~name ~fid ~kind:Aux_attrs.Fgraft ~birth in
  let aux =
    { (Aux_attrs.make Aux_attrs.Fgraft) with Aux_attrs.graft_target = Some target }
  in
  let* child_ufs = make_dir_storage t ufs_dir fid aux in
  let* child_fdir = load_fdir t child_ufs in
  let* child_fdir = add_plain_entry t child_ufs child_fdir (volume_entry_name target) in
  let rec add_replicas fdir = function
    | [] -> Ok fdir
    | (r, h) :: rest ->
      let* fdir = add_plain_entry t child_ufs fdir (replica_entry_name r h) in
      add_replicas fdir rest
  in
  let* child_fdir = add_replicas child_fdir replicas in
  let* () = store_fdir t child_ufs child_fdir in
  let* () = store_fdir t ufs_dir fdir in
  note_summary_event t (parent @ [ fid ]);
  dir_event t parent;
  Ok ()

let parse_graft_entries fdir =
  let parse (name, _) (target, replicas) =
    if String.length name > 7 && String.sub name 0 7 = "volume." then
      match String.split_on_char '.' name with
      | [ _; a; v ] ->
        (match int_of_string_opt a, int_of_string_opt v with
         | Some alloc, Some vol -> (Some { Ids.alloc; vol }, replicas)
         | _, _ -> (target, replicas))
      | _ -> (target, replicas)
    else if String.length name > 8 && String.sub name 0 8 = "replica." then
      let body = String.sub name 8 (String.length name - 8) in
      match String.index_opt body '@' with
      | None -> (target, replicas)
      | Some i ->
        (match int_of_string_opt (String.sub body 0 i) with
         | None -> (target, replicas)
         | Some r ->
           (target, (r, String.sub body (i + 1) (String.length body - i - 1)) :: replicas))
    else (target, replicas)
  in
  let target, replicas = List.fold_right parse (Fdir.live fdir) (None, []) in
  (target, replicas)

let graft_point_info t path =
  let* fdir = fetch_dir t path in
  match parse_graft_entries fdir with
  | Some target, replicas -> Ok (target, replicas)
  | None, _ -> Error Errno.EIO

let graft_entries_of_fdir fdir =
  match parse_graft_entries fdir with
  | Some target, replicas -> Some (target, replicas)
  | None, _ -> None

let add_graft_replica t path r h =
  let* ufs_dir = resolve_dir t path in
  let* fdir = load_fdir t ufs_dir in
  let* fdir = add_plain_entry t ufs_dir fdir (replica_entry_name r h) in
  let* () = store_fdir t ufs_dir fdir in
  note_summary_event t path;
  dir_event t path;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create ?(obs = Obs.default) ~container ~clock ~host ~vref ~rid ~peers () =
  let t =
    {
      container;
      clock;
      host;
      vref;
      rid;
      next_uniq = 2; (* 1 is the root fid *)
      peers;
      notifier = None;
      conflicts = Conflict_log.create ();
      counters = Counters.create ();
      obs;
      open_count = 0;
      dir_merge = `Legacy;
      pending_summaries = Hashtbl.create 64;
      fdir_cache = Hashtbl.create 64;
      chunk_cache = Hashtbl.create 16;
    }
  in
  let* () = store_meta t in
  let root_aux =
    (* A summary-native image: the root claims the (empty) event history
       from birth, so attach never mistakes it for a pre-summary image. *)
    { (Aux_attrs.make Aux_attrs.Fdir) with Aux_attrs.summary = Some Vv.empty }
  in
  let* _root = make_dir_storage t container Ids.root_fid root_aux in
  Ok t

(* Remove leftover shadow files under [dir], recursively. *)
let rec sweep_shadows dir =
  let* entries = dir.Vnode.readdir () in
  let is_shadow name =
    let suffix = ".shadow" in
    String.length name > String.length suffix
    && String.sub name (String.length name - String.length suffix) (String.length suffix)
       = suffix
  in
  let rec go count = function
    | [] -> Ok count
    | e :: rest ->
      if is_shadow e.Vnode.entry_name then
        let* () = ignore_enoent (dir.Vnode.remove e.Vnode.entry_name) in
        go (count + 1) rest
      else if e.Vnode.entry_kind = Vnode.VDIR then
        let* child = dir.Vnode.lookup e.Vnode.entry_name in
        let* sub = sweep_shadows child in
        go (count + sub) rest
      else go count rest
  in
  go 0 entries

let recover t =
  let* root_ufs = t.container.Vnode.lookup (Ids.fid_to_hex Ids.root_fid) in
  sweep_shadows root_ufs

(* fsck path for images written before summary vectors existed: claim,
   for every directory, exactly this replica's own event history (all of
   it is trivially incorporated locally; all other components stay zero,
   which only under-claims). *)
let recompute_summaries t =
  let claim = Vv.singleton t.rid (t.next_uniq - 1) in
  let rec go parent_ufs fid =
    let* aux = Aux_attrs.load ~dir:parent_ufs fid in
    let* () = Aux_attrs.store ~dir:parent_ufs fid { aux with Aux_attrs.summary = Some claim } in
    let* child_ufs = parent_ufs.Vnode.lookup (Ids.fid_to_hex fid) in
    let* fdir = load_fdir t child_ufs in
    let rec walk = function
      | [] -> Ok ()
      | e :: rest ->
        (match e.Fdir.kind with
         | Aux_attrs.Freg -> walk rest
         | Aux_attrs.Fdir | Aux_attrs.Fgraft ->
           let* () = go child_ufs e.Fdir.fid in
           walk rest)
    in
    walk (Fdir.live_fids fdir)
  in
  Counters.incr t.counters "phys.summary.recompute";
  go t.container Ids.root_fid

let attach ?(obs = Obs.default) ~container ~clock ~host () =
  let t =
    {
      container;
      clock;
      host;
      vref = { Ids.alloc = 0; vol = 0 };
      rid = 0;
      next_uniq = 2;
      peers = [];
      notifier = None;
      conflicts = Conflict_log.create ();
      counters = Counters.create ();
      obs;
      open_count = 0;
      dir_merge = `Legacy;
      pending_summaries = Hashtbl.create 64;
      fdir_cache = Hashtbl.create 64;
      chunk_cache = Hashtbl.create 16;
    }
  in
  let* () = load_meta t in
  let* _count = recover t in
  let* () =
    match Aux_attrs.load ~dir:container Ids.root_fid with
    | Ok { Aux_attrs.summary = Some _; _ } -> Ok ()
    | Ok { Aux_attrs.summary = None; _ } -> recompute_summaries t
    | Error Errno.ENOENT -> Ok ()
    | Error _ as e -> e
  in
  Ok t
