(** The update-propagation daemon (paper §3.2).

    One per host.  Receives update-notification datagrams for the volume
    replicas the host stores, parks them in the {!New_version_cache}, and
    on each {!run_once} pulls the new versions in:

    - regular files: fetch contents + version vector from the origin
      replica and adopt them via the shadow-file atomic commit
      ({!Physical.install_file}); a concurrent local history is reported,
      never overwritten;
    - directories: fetch the origin's directory state and reconcile with
      {!Physical.merge_dir}; entries materialized by the merge are queued
      for their own pulls.

    Propagation is an optimization, not a correctness mechanism: if the
    origin is unreachable, the entry is retried with exponential backoff
    and eventually abandoned to the periodic reconciliation protocol. *)

type t

val create :
  ?delay:int ->
  ?max_attempts:int ->
  ?backoff_base:int ->
  ?backoff_max:int ->
  ?deadline:int ->
  ?seed:int ->
  ?obs:Obs.t ->
  ?delta:bool ->
  ?liveness:(string -> Gossip.liveness) ->
  clock:Clock.t ->
  host:string ->
  connect:Remote.connector ->
  local_replica:(Ids.volume_ref -> Physical.t option) ->
  unit -> t
(** [delay] (default 0) is the minimum age before a cache entry is acted
    on — the "later, more convenient time"; larger delays batch bursty
    updates.  [max_attempts] (default 5) bounds retries per entry.

    [delta] (default [true]) selects the chunk-negotiation fetch path
    ({!Delta.fetch_file}) for regular files; [false] forces plain
    whole-file fetches — the measurement baseline for the DELTA
    experiment and an escape hatch if chunking misbehaves.

    A pull that fails with [EUNREACHABLE] is requeued with exponential
    backoff plus jitter (other failures — typically ordering, a parent
    directory still in flight — retry immediately): after
    the [n]th failure the entry sleeps [backoff_base * 2^(n-1)] ticks
    (capped at [backoff_max], defaults 2 and 64) plus up to that much
    jitter again, drawn from a PRNG seeded by [seed] (default: a hash of
    [host], so every daemon jitters differently but deterministically).
    An entry older than [deadline] ticks (default 500; 0 disables) is
    abandoned at its next failure regardless of attempts left.

    [liveness] (default: everyone [Alive]) is the gossip failure
    detector's verdict on a host name.  Pulls whose origin is [Suspect]
    or [Dead] are parked without an RPC (counted as
    ["prop.rpcs_skipped_dead"]) until the origin refutes the suspicion
    or the deadline abandons the entry to reconciliation, so a dead
    origin no longer burns the retry budget. *)

val on_notify : t -> Notify.event -> unit
(** Feed one notification (wire this to the host's datagram handler).
    Events for volumes this host has no replica of are ignored. *)

val run_once : t -> int
(** Process everything currently ready; returns the number of pulls
    attempted.  Never raises: per-entry failures are retried or dropped. *)

val pending : t -> int
val cache : t -> New_version_cache.t
val counters : t -> Counters.t
(** ["prop.pull.file"], ["prop.pull.dir"], ["prop.pull.delta"] (file
    pulls that travelled as chunk deltas), ["prop.bytes"] (every byte a
    pull put on the wire: file bodies, directory fetches, chunk maps and
    negotiation requests), ["prop.bytes_saved"] (remote file size the
    delta path did {e not} ship), ["prop.chunks_hit"] /
    ["prop.chunks_miss"] (map chunks resolved locally vs fetched),
    ["prop.delta_fallback"] (delta path degraded to a whole-file fetch:
    pre-chunking peer, raced contents or failed verification),
    ["prop.skipped_dominated"] (pulls dropped with no RPC because the
    notification's version vector was already dominated locally),
    ["prop.uptodate_header"] (pulls answered by the chunk-map header
    alone), ["prop.nvc_deduped"] (notifications collapsed into pending
    entries), ["prop.conflicts"], ["prop.retries"],
    ["prop.backoff_ticks"] (cumulative sleep imposed by backoff),
    ["prop.abandoned"], ["prop.rpcs_skipped_dead"]. *)
