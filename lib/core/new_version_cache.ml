type entry = {
  vref : Ids.volume_ref;
  fidpath : Ids.file_id list;
  fid : Ids.file_id;
  kind : Aux_attrs.fkind;
  origin_rid : Ids.replica_id;
  origin_host : string;
  span : int;
  vv : Version_vector.t;
  queued_at : int;
  mutable attempts : int;
  mutable not_before : int;  (* backoff: ignore until the clock reaches this *)
}

type key = int * int * string (* alloc, vol, fidpath *)

type t = { table : (key, entry) Hashtbl.t; mutable notes : int; mutable deduped : int }

let create () = { table = Hashtbl.create 32; notes = 0; deduped = 0 }

let key_of vref fidpath =
  (vref.Ids.alloc, vref.Ids.vol, Ids.fidpath_to_string fidpath)

let note t (e : Notify.event) ~now =
  t.notes <- t.notes + 1;
  let key = key_of e.Notify.vref e.Notify.fidpath in
  match Hashtbl.find_opt t.table key with
  | Some pending ->
    (* Absorb: keep the earliest queue time, follow the newest origin,
       and merge the advertised histories — the pull must satisfy every
       notification it collapses. *)
    t.deduped <- t.deduped + 1;
    Hashtbl.replace t.table key
      {
        pending with
        origin_rid = e.Notify.origin_rid;
        origin_host = e.Notify.origin_host;
        kind = e.Notify.kind;
        span = (if e.Notify.span <> 0 then e.Notify.span else pending.span);
        vv = Version_vector.merge pending.vv e.Notify.vv;
      };
    true
  | None ->
    Hashtbl.replace t.table key
      {
        vref = e.Notify.vref;
        fidpath = e.Notify.fidpath;
        fid = e.Notify.fid;
        kind = e.Notify.kind;
        origin_rid = e.Notify.origin_rid;
        origin_host = e.Notify.origin_host;
        span = e.Notify.span;
        vv = e.Notify.vv;
        queued_at = now;
        attempts = 0;
        not_before = 0;
      };
    false

let take_ready t ~now ~min_age =
  let ready, _ =
    Hashtbl.fold
      (fun key e (ready, keep) ->
        if now - e.queued_at >= min_age && now >= e.not_before then
          ((key, e) :: ready, keep)
        else (ready, keep))
      t.table ([], ())
  in
  List.iter (fun (key, _) -> Hashtbl.remove t.table key) ready;
  List.map snd ready
  |> List.sort (fun a b -> Int.compare a.queued_at b.queued_at)

let requeue t e = Hashtbl.replace t.table (key_of e.vref e.fidpath) e

let peek t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> Int.compare a.queued_at b.queued_at)

let size t = Hashtbl.length t.table
let notes t = t.notes
let deduped t = t.deduped
