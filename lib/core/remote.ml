type connector =
  host:string -> vref:Ids.volume_ref -> rid:Ids.replica_id -> (Vnode.t, Errno.t) result

let ( let* ) = Result.bind

let walk root path =
  let rec go v = function
    | [] -> Ok v
    | fid :: rest ->
      let* child = v.Vnode.lookup (Ids.fid_to_at_name fid) in
      go child rest
  in
  go root path

(* Control requests must evade the NFS client's name-lookup cache: a
   repeated lookup of the same encoded name would be answered with the
   cached (stale) response vnode (the "unexpected behavior" of paper
   §2.2).  A per-call serial number makes every request name unique. *)
let ctl_serial = ref 0

(* The sized variant also reports the bytes the exchange put on the wire
   (request name + response body — the walk to the parent directory is
   not charged), so callers can account transfer costs honestly. *)
let ctl_sized dir ~op ~args =
  incr ctl_serial;
  let args = args @ [ Printf.sprintf "n%d" !ctl_serial ] in
  let* name = Ctl_name.encode ~op ~args in
  let* response_vnode = dir.Vnode.lookup name in
  let* body = Vnode.read_all response_vnode in
  Ok (body, String.length name + String.length body)

let ctl dir ~op ~args =
  let* body, _wire = ctl_sized dir ~op ~args in
  Ok body

(* A control op addressed to [path]: issued on the parent directory with
   the final component as "@hex" argument, or on the root with ".";
   [extra] args follow the target. *)
let ctl_at_sized root path ~op ~extra =
  match List.rev path with
  | [] -> ctl_sized root ~op ~args:("." :: extra)
  | fid :: rev_parent ->
    let* parent = walk root (List.rev rev_parent) in
    ctl_sized parent ~op ~args:(Ids.fid_to_at_name fid :: extra)

let ctl_at root path ~op =
  let* body, _wire = ctl_at_sized root path ~op ~extra:[] in
  Ok body

let parse_fields s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.index_opt line '=' with
         | None -> None
         | Some i ->
           Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)))

let parse_kind = function
  | "reg" -> Some Aux_attrs.Freg
  | "dir" -> Some Aux_attrs.Fdir
  | "graft" -> Some Aux_attrs.Fgraft
  | _ -> None

let parse_version_info s =
  let fields = parse_fields s in
  let find k = List.assoc_opt k fields in
  match find "kind", find "vv", find "size", find "uid", find "stored" with
  | Some kind, Some vv, Some size, Some uid, Some stored ->
    (match
       parse_kind kind, Version_vector.decode vv, int_of_string_opt size,
       int_of_string_opt uid
     with
     | Some vi_kind, Some vv, Some size, Some uid ->
       (* "span" is absent in responses from pre-tracing servers. *)
       let vi_span =
         match find "span" with
         | None -> 0
         | Some s -> Option.value ~default:0 (int_of_string_opt s)
       in
       (* Likewise "summary" is absent from pre-summary servers (and for
          regular files); [None] tells the reconciler it cannot prune. *)
       let vi_summary =
         match find "summary" with None -> None | Some s -> Version_vector.decode s
       in
       Ok
         {
           Physical.vi_kind;
           vi_vv = vv;
           vi_size = size;
           vi_uid = uid;
           vi_stored = stored = "1";
           vi_span;
           vi_summary;
         }
     | _, _, _, _ -> Error Errno.EIO)
  | _, _, _, _, _ -> Error Errno.EIO

let get_version root path =
  let* response = ctl_at root path ~op:"getvv" in
  parse_version_info response

(* First occurrence of "\n--\n" at or after [i]: hop from newline to
   newline instead of re-comparing the whole separator at every byte. *)
let find_sep response i =
  let n = String.length response in
  let rec go i =
    match String.index_from_opt response i '\n' with
    | None -> None
    | Some j ->
      if j + 3 < n && response.[j + 1] = '-' && response.[j + 2] = '-'
         && response.[j + 3] = '\n'
      then Some j
      else go (j + 1)
  in
  if i >= n then None else go i

let fetch_file_sized root path =
  let* response, wire = ctl_at_sized root path ~op:"readfile" ~extra:[] in
  (* Header lines, then a "--" separator line, then the raw contents. *)
  match find_sep response 0 with
  | None -> Error Errno.EIO
  | Some i ->
    let header = String.sub response 0 i in
    let data_start = i + 4 in
    let data = String.sub response data_start (String.length response - data_start) in
    let* vi = parse_version_info (header ^ "\n") in
    Ok (vi, data, wire)

let fetch_file root path =
  let* vi, data, _wire = fetch_file_sized root path in
  Ok (vi, data)

let fetch_dir_sized root path =
  let* response, wire = ctl_at_sized root path ~op:"getdir" ~extra:[] in
  match Fdir.decode response with None -> Error Errno.EIO | Some d -> Ok (d, wire)

let fetch_dir root path =
  let* d, _wire = fetch_dir_sized root path in
  Ok d

(* ---------------- delta negotiation (content-defined chunks) -------- *)

type chunk_map = {
  cm_vi : Physical.version_info;
  cm_digest : string option;
      (* whole-content digest from the header; absent from peers that
         predate it *)
  cm_chunks : Chunking.chunk list;
}

let fetch_chunk_map root path =
  let* response, wire = ctl_at_sized root path ~op:"getchunkmap" ~extra:[] in
  match find_sep response 0 with
  | None -> Error Errno.EIO
  | Some i ->
    let header = String.sub response 0 i ^ "\n" in
    let data_start = i + 4 in
    let body = String.sub response data_start (String.length response - data_start) in
    let* cm_vi = parse_version_info header in
    let cm_digest = List.assoc_opt "digest" (parse_fields header) in
    (match Chunking.decode_map body with
     | None -> Error Errno.EIO
     | Some cm_chunks -> Ok ({ cm_vi; cm_digest; cm_chunks }, wire))

(* How many digests ride in one "readchunks" request: the 255-byte
   ctl-name component budget, minus the op, "@hex" target, percent
   escapes and serial, leaves room for five 33-byte digest+comma runs. *)
let readchunks_batch = 5

(* Response framing: per requested chunk, a "chunk=<digest> <len>" line,
   then [len] raw bytes, then a newline separator. *)
let parse_chunk_bodies response table =
  let n = String.length response in
  let rec go i =
    if i >= n then Ok ()
    else
      match String.index_from_opt response i '\n' with
      | None -> Error Errno.EIO
      | Some j ->
        let line = String.sub response i (j - i) in
        if String.length line > 6 && String.sub line 0 6 = "chunk=" then (
          match String.index_opt line ' ' with
          | None -> Error Errno.EIO
          | Some sp ->
            let digest = String.sub line 6 (sp - 6) in
            (match
               int_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1))
             with
             | None -> Error Errno.EIO
             | Some len when len >= 0 && j + 1 + len <= n ->
               let body = String.sub response (j + 1) len in
               (* Verify before trusting: a corrupt or mismatched body
                  must not be assembled into the shadow file. *)
               if Chunking.digest_hex body <> digest then Error Errno.EIO
               else begin
                 Hashtbl.replace table digest body;
                 go (j + 1 + len + 1)
               end
             | Some _ -> Error Errno.EIO))
        else Error Errno.EIO
  in
  go 0

let fetch_chunks root path digests =
  let table = Hashtbl.create (List.length digests * 2) in
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | d :: rest -> take (k - 1) (d :: acc) rest
  in
  let rec batches wire = function
    | [] -> Ok (table, wire)
    | ds ->
      let batch, rest = take readchunks_batch [] ds in
      let csv = String.concat "," batch in
      let* response, w = ctl_at_sized root path ~op:"readchunks" ~extra:[ csv ] in
      let* () = parse_chunk_bodies response table in
      batches (wire + w) rest
  in
  batches 0 digests

type dir_versions = {
  dv_summary : Version_vector.t option;
  dv_fdir : Fdir.t;
  dv_children : (Ids.file_id * Physical.version_info) list;
}

(* Response layout (see the "getdirvvs" ctl op in {!Physical}):
     summary=<vv>            (absent on pre-summary servers)
     fdir:
     <Fdir.encode body>
     endfdir:
     child=<hex-fid>         (one block per live child)
     <encode_version_info body>
     ... *)
let fetch_dir_versions root path =
  let* response = ctl_at root path ~op:"getdirvvs" in
  let lines = String.split_on_char '\n' response in
  let rec split_until marker acc = function
    | [] -> Error Errno.EIO
    | l :: rest when l = marker -> Ok (List.rev acc, rest)
    | l :: rest -> split_until marker (l :: acc) rest
  in
  let* header, rest = split_until "fdir:" [] lines in
  let* body, rest = split_until "endfdir:" [] rest in
  let* dv_fdir =
    match Fdir.decode (String.concat "\n" body ^ "\n") with
    | Some d -> Ok d
    | None -> Error Errno.EIO
  in
  let dv_summary =
    match List.assoc_opt "summary" (parse_fields (String.concat "\n" header)) with
    | None -> None
    | Some s -> Version_vector.decode s
  in
  let is_child l = String.length l > 6 && String.sub l 0 6 = "child=" in
  let finish acc = function
    | None, _ -> Ok acc
    | Some fid, block ->
      let* vi = parse_version_info (String.concat "\n" (List.rev block) ^ "\n") in
      Ok ((fid, vi) :: acc)
  in
  let rec children acc cur = function
    | [] ->
      let* acc = finish acc cur in
      Ok (List.rev acc)
    | l :: rest when is_child l ->
      let* acc = finish acc cur in
      (match Ids.fid_of_hex (String.sub l 6 (String.length l - 6)) with
       | Some fid -> children acc (Some fid, []) rest
       | None -> Error Errno.EIO)
    | l :: rest ->
      (match cur with
       | None, _ -> children acc cur rest (* stray blank line *)
       | Some fid, block -> children acc (Some fid, l :: block) rest)
  in
  let* dv_children = children [] (None, []) rest in
  Ok { dv_summary; dv_fdir; dv_children }

let resolve dir name =
  let* response = ctl dir ~op:"resolve" ~args:[ name ] in
  let fields = parse_fields response in
  match List.assoc_opt "fid" fields, List.assoc_opt "kind" fields with
  | Some fid, Some kind ->
    (match Ids.fid_of_hex fid, kind with
     | Some fid, "reg" -> Ok (fid, Aux_attrs.Freg)
     | Some fid, "dir" -> Ok (fid, Aux_attrs.Fdir)
     | Some fid, "graft" -> Ok (fid, Aux_attrs.Fgraft)
     | _, _ -> Error Errno.EIO)
  | _, _ -> Error Errno.EIO

let peers root =
  let* response = ctl root ~op:"peers" ~args:[] in
  match String.trim response with
  | "" -> Ok []
  | body ->
    let parse part =
      match String.index_opt part '@' with
      | None -> None
      | Some i ->
        (match int_of_string_opt (String.sub part 0 i) with
         | None -> None
         | Some r -> Some (r, String.sub part (i + 1) (String.length part - i - 1)))
    in
    let parts = String.split_on_char ',' body |> List.map parse in
    if List.exists Option.is_none parts then Error Errno.EIO
    else Ok (List.filter_map Fun.id parts)

let meta root =
  let* response = ctl root ~op:"meta" ~args:[] in
  let fields = parse_fields response in
  match List.assoc_opt "vref" fields, List.assoc_opt "rid" fields with
  | Some vref, Some rid ->
    (match String.split_on_char '.' vref, int_of_string_opt rid with
     | [ a; v ], Some rid ->
       (match int_of_string_opt a, int_of_string_opt v with
        | Some alloc, Some vol -> Ok ({ Ids.alloc; vol }, rid)
        | _, _ -> Error Errno.EIO)
     | _, _ -> Error Errno.EIO)
  | _, _ -> Error Errno.EIO

let stats root = ctl root ~op:"stats" ~args:[]

let flag_to_string = function
  | Vnode.Read_only -> "ro"
  | Vnode.Write_only -> "wo"
  | Vnode.Read_write -> "rw"

let send_open dir fid flag =
  let who = match fid with None -> "." | Some fid -> Ids.fid_to_at_name fid in
  let* _resp = ctl dir ~op:"open" ~args:[ who; flag_to_string flag ] in
  Ok ()

let send_close dir fid =
  let who = match fid with None -> "." | Some fid -> Ids.fid_to_at_name fid in
  let* _resp = ctl dir ~op:"close" ~args:[ who ] in
  Ok ()
