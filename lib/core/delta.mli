(** Delta fetch: pull a remote file by content-defined chunks.

    The client half of the chunk negotiation ({!Remote.fetch_chunk_map} /
    {!Remote.fetch_chunks}): fetch the origin's chunk map, diff it
    against the locally stored copy's map, fetch only the missing
    bodies, reassemble, and verify the whole-content digest end to end.
    Used by the propagation daemon and the reconciler; the caller still
    owns installation, so {!Physical.install_file}'s conflict detection
    and the shadow-swap atomicity are untouched. *)

type mode =
  | Delta     (** negotiated by chunks (or answered up-to-date by header) *)
  | Whole     (** no usable local copy: plain whole-file fetch *)
  | Fallback  (** delta path abandoned (pre-chunking peer, raced
                  contents, failed verification): whole-file fetch, with
                  the negotiation bytes already spent kept on the bill *)

type stats = {
  mode : mode;
  wire_bytes : int;   (** request names + response bodies, all RPCs *)
  saved_bytes : int;  (** remote file size minus [wire_bytes], floored at 0 *)
  chunks_hit : int;   (** map chunks resolved from the local copy *)
  chunks_miss : int;  (** map chunks whose bodies had to travel *)
}

type outcome =
  | Data of Physical.version_info * string
  | Up_to_date of Physical.version_info
      (** the chunk-map header showed the local history dominates: no
          contents travelled and nothing needs installing *)

val min_delta_size : int
(** Local copies smaller than this are not worth negotiating over. *)

val fetch_file :
  local:Physical.t ->
  remote_root:Vnode.t ->
  Physical.fidpath ->
  (outcome * stats, Errno.t) result
