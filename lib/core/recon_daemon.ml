type t = {
  period : int;
  clock : Clock.t;
  host : string;
  connect : Remote.connector;
  replicas : unit -> (Ids.volume_ref * Physical.t) list;
  liveness : string -> Gossip.liveness;
  rotation : (int * int, int) Hashtbl.t;  (* volume -> peer cursor *)
  counters : Counters.t;
  obs : Obs.t;
  dir_merge : [ `Legacy | `Crdt ] option;  (* None: each replica's sticky mode *)
  resolver : Resolver.t;
  mutable next_due : int;
}

let create ?(period = 100) ?(obs = Obs.default)
    ?(liveness = fun _ -> Gossip.Alive) ?dir_merge ?(resolver = Resolver.Owner_report)
    ~clock ~host ~connect ~replicas () =
  {
    period;
    clock;
    host;
    connect;
    replicas;
    liveness;
    rotation = Hashtbl.create 8;
    counters = Counters.create ();
    obs;
    dir_merge;
    resolver;
    next_due = Clock.now clock + period;
  }

let counters t = t.counters
let next_due t = t.next_due

(* Per-daemon private counter plus the shared cluster-wide registry, so
   recon activity shows up in Cluster.metrics_snapshot. *)
let count t key = Obs.count t.obs t.counters key
let count_n t key n = Obs.count ~n t.obs t.counters key

(* Reconcile one local replica against its next rotation peer.  An
   unreachable peer is skipped — the daemon fails over to the following
   peers in rotation order rather than wasting the whole period, so one
   dead host degrades a pass gracefully instead of erroring it out.
   When a gossip failure detector is wired in, peers it considers
   suspect or dead are tried last (never never): a healthy peer earlier
   in the order absorbs the pass without a single wasted RPC, while a
   cluster of all-doubtful peers still gets probed, preserving the
   reconciliation guarantee. *)
let reconcile_one t (vref, phys) =
  let my_rid = Physical.rid phys in
  let peers =
    Array.of_list
      (List.filter (fun (rid, _) -> rid <> my_rid) (Physical.peers phys))
  in
  let npeers = Array.length peers in
  if npeers = 0 then Reconcile.empty_stats
  else begin
    let key = (vref.Ids.alloc, vref.Ids.vol) in
    let cursor = Option.value ~default:0 (Hashtbl.find_opt t.rotation key) in
    Hashtbl.replace t.rotation key (cursor + 1);
    let rank (_, h) =
      match t.liveness h with
      | Gossip.Alive -> 0
      | Gossip.Suspect -> 1
      | Gossip.Dead -> 2
    in
    let ordered =
      List.init npeers (fun k -> peers.((cursor + k) mod npeers))
      |> List.stable_sort (fun a b -> compare (rank a) (rank b))
      |> Array.of_list
    in
    let doubtful =
      Array.fold_left (fun n p -> if rank p > 0 then n + 1 else n) 0 ordered
    in
    let rec try_peer k =
      if k >= npeers then begin
        (* Every peer unreachable this pass; reconciliation will catch
           up when somebody returns. *)
        count t "recon.errors";
        { Reconcile.empty_stats with errors = 1 }
      end
      else begin
        let remote_rid, remote_host = ordered.(k) in
        count t "recon.pairs";
        match t.connect ~host:remote_host ~vref ~rid:remote_rid with
        | Error _ ->
          count t "recon.skipped";
          try_peer (k + 1)
        | Ok remote_root ->
          if doubtful > 0 && rank ordered.(k) = 0 then
            (* A healthy peer took the pass; every doubtful peer behind
               it was spared a connect this period. *)
            count_n t "recon.skipped_doubtful" doubtful;
          (match
             Reconcile.reconcile_volume ?dir_merge:t.dir_merge ~resolver:t.resolver
               ~local:phys ~remote_root ~remote_rid ()
           with
           | Ok stats -> stats
           | Error _ ->
             (* Mid-reconcile failure (e.g. the link died): no failover —
                partial progress is already durable and the next period
                resumes. *)
             count t "recon.errors";
             { Reconcile.empty_stats with errors = 1 })
      end
    in
    try_peer 0
  end

let force t =
  count t "recon.passes";
  t.next_due <- Clock.now t.clock + t.period;
  List.fold_left
    (fun acc replica -> Reconcile.add_stats acc (reconcile_one t replica))
    Reconcile.empty_stats (t.replicas ())

let tick t = if Clock.now t.clock >= t.next_due then Some (force t) else None
