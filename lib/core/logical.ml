module Vv = Version_vector

type selection = Most_recent | Prefer_local | First_available

type replica_conn = {
  rc_rid : Ids.replica_id;
  rc_host : string;
  mutable rc_root : Vnode.t option;  (* connected lazily, dropped on failure *)
}

type graft = {
  g_vref : Ids.volume_ref;
  mutable g_replicas : replica_conn list;
  mutable g_last_used : int;
  g_auto : bool;
}

type lock = { mutable readers : int; mutable writer : bool }

type t = {
  host : string;
  clock : Clock.t;
  connect : Remote.connector;
  selection : selection;
  liveness : string -> Gossip.liveness;
  grafts : (int * int, graft) Hashtbl.t;
  locks : (int * int * int * int, lock) Hashtbl.t;  (* alloc, vol, fid issuer, fid uniq *)
  counters : Counters.t;
  obs : Obs.t;
}

let create ?(selection = Most_recent) ?(obs = Obs.default)
    ?(liveness = fun _ -> Gossip.Alive) ~host ~clock ~connect () =
  {
    host;
    clock;
    connect;
    selection;
    liveness;
    grafts = Hashtbl.create 8;
    locks = Hashtbl.create 16;
    counters = Counters.create ();
    obs;
  }

let host t = t.host
let counters t = t.counters
let obs t = t.obs

(* Every mutating operation is stamped with a fresh causal span here, at
   the top of the stack: the span id rides the ambient context down
   through any interposed NFS, the physical layer, and the journal, and
   is multicast onward with the update notification. *)
let traced t label f =
  let spans = t.obs.Obs.spans in
  let id = Span.start spans ~host:t.host ~tick:(Clock.now t.clock) label in
  Metrics.incr t.obs.Obs.metrics "logical.updates";
  let ctx =
    Span.make_ctx ~spans ~id ~host:t.host ~now:(fun () -> Clock.now t.clock)
  in
  Span.with_ctx ctx f

let vkey (v : Ids.volume_ref) = (v.Ids.alloc, v.Ids.vol)

let graft_volume t vref ~replicas =
  if not (Hashtbl.mem t.grafts (vkey vref)) then
    Hashtbl.replace t.grafts (vkey vref)
      {
        g_vref = vref;
        g_replicas = List.map (fun (r, h) -> { rc_rid = r; rc_host = h; rc_root = None }) replicas;
        g_last_used = Clock.now t.clock;
        g_auto = false;
      }

let autograft_volume t vref ~replicas =
  if not (Hashtbl.mem t.grafts (vkey vref)) then begin
    Counters.incr t.counters "logical.autograft";
    Hashtbl.replace t.grafts (vkey vref)
      {
        g_vref = vref;
        g_replicas = List.map (fun (r, h) -> { rc_rid = r; rc_host = h; rc_root = None }) replicas;
        g_last_used = Clock.now t.clock;
        g_auto = true;
      }
  end

let ungraft t vref = Hashtbl.remove t.grafts (vkey vref)

let grafted t =
  Hashtbl.fold
    (fun _ g acc -> (g.g_vref, List.map (fun rc -> (rc.rc_rid, rc.rc_host)) g.g_replicas) :: acc)
    t.grafts []

let prune_grafts t ~idle =
  let now = Clock.now t.clock in
  let victims =
    Hashtbl.fold
      (fun key g acc -> if g.g_auto && now - g.g_last_used >= idle then key :: acc else acc)
      t.grafts []
  in
  List.iter (Hashtbl.remove t.grafts) victims;
  Counters.add t.counters "logical.prune" (List.length victims);
  List.length victims

let reset_connections t =
  Hashtbl.iter
    (fun _ g -> List.iter (fun rc -> rc.rc_root <- None) g.g_replicas)
    t.grafts

let find_graft t vref =
  match Hashtbl.find_opt t.grafts (vkey vref) with
  | Some g -> Ok g
  | None -> Error Errno.ENOENT

let ( let* ) = Result.bind

(* Connect (or reuse) the physical root of one replica. *)
let replica_root t g rc =
  match rc.rc_root with
  | Some root -> Ok root
  | None ->
    (match t.connect ~host:rc.rc_host ~vref:g.g_vref ~rid:rc.rc_rid with
     | Ok root ->
       rc.rc_root <- Some root;
       Ok root
     | Error _ as e -> e)

(* Candidate replicas in policy order for an operation on [path].

   With a gossip failure detector wired in, the first pass ([all =
   false]) does not even attempt to connect replicas whose host is
   suspect or dead — under [Most_recent] that also saves the per-replica
   version poll.  The verdict is advisory: if every replica is doubtful
   the full list is used anyway, and the caller's retry pass always
   considers everyone, so a false suspicion costs one extra pass, never
   availability. *)
let candidates t ~all g path =
  let considered =
    if all then g.g_replicas
    else
      match
        List.filter (fun rc -> t.liveness rc.rc_host = Gossip.Alive) g.g_replicas
      with
      | [] -> g.g_replicas
      | live ->
        let skipped = List.length g.g_replicas - List.length live in
        if skipped > 0 then begin
          Counters.add t.counters "logical.skipped_doubtful" skipped;
          Metrics.add t.obs.Obs.metrics "logical.skipped_doubtful" skipped
        end;
        live
  in
  let reachable =
    List.filter_map
      (fun rc ->
        match replica_root t g rc with Ok root -> Some (rc, root) | Error _ -> None)
      considered
  in
  match t.selection with
  | First_available -> reachable
  | Prefer_local ->
    let local, rest = List.partition (fun (rc, _) -> rc.rc_host = t.host) reachable in
    local @ rest
  | Most_recent ->
    (* Ask each accessible replica for its version of [path]; order by
       descending update-history size, stored copies first.  Replicas
       that cannot answer (partition arose, object unknown) go last. *)
    let scored =
      List.map
        (fun (rc, root) ->
          match Remote.get_version root path with
          | Ok vi ->
            let score =
              (if vi.Physical.vi_stored then 1_000_000 else 0) + Vv.sum vi.Physical.vi_vv
            in
            (score, (rc, root))
          | Error _ -> (-1, (rc, root)))
        reachable
    in
    List.stable_sort (fun (a, _) (b, _) -> Int.compare b a) scored |> List.map snd

(* Try [f] against each candidate replica until one succeeds; failing
   over on availability errors is exactly one-copy availability. *)
let with_replica t vref path f =
  Counters.incr t.counters "logical.ops";
  let* g = find_graft t vref in
  g.g_last_used <- Clock.now t.clock;
  let saw_unreachable = ref false in
  let rec attempt first enoent = function
    | [] -> Error (if enoent then Errno.ENOENT else Errno.EUNREACHABLE)
    | (rc, root) :: rest ->
      (match f root with
       | Ok v ->
         if not first then Counters.incr t.counters "logical.fallback";
         Ok v
       | Error (Errno.EUNREACHABLE | Errno.EAGAIN | Errno.ESTALE) ->
         (* Drop a dead connection so a later retry reconnects. *)
         saw_unreachable := true;
         rc.rc_root <- None;
         attempt false enoent rest
       | Error Errno.ENOENT ->
         (* This replica may simply be behind (unable to resolve the fid
            path yet); another may hold the object.  A genuinely missing
            object returns ENOENT once every candidate agrees. *)
         attempt false true rest
       | Error _ as e -> e)
  in
  let pass all =
    saw_unreachable := false;
    let cands = candidates t ~all g path in
    if List.length cands < List.length g.g_replicas then saw_unreachable := true;
    attempt true false cands
  in
  match pass false with
  | Error (Errno.EUNREACHABLE | Errno.ENOENT) when !saw_unreachable ->
    (* Some replica could not be consulted — the object may live exactly
       there, and transient RPC failures are per-call.  One fresh pass
       (reconnects included, liveness hints ignored) stands for the
       client's timeout-and-retry; a genuine miss (every replica
       answered) never re-polls. *)
    Counters.incr t.counters "logical.retry_pass";
    pass true
  | r -> r

(* ------------------------------------------------------------------ *)
(* Concurrency control (paper §2.5: "the logical layer performs
   concurrency control on logical files")                              *)

let lock_key vref (fid : Ids.file_id) =
  (vref.Ids.alloc, vref.Ids.vol, fid.Ids.issuer, fid.Ids.uniq)

let lock_acquire t vref fid flag =
  let key = lock_key vref fid in
  let lock =
    match Hashtbl.find_opt t.locks key with
    | Some l -> l
    | None ->
      let l = { readers = 0; writer = false } in
      Hashtbl.replace t.locks key l;
      l
  in
  match flag with
  | Vnode.Read_only ->
    if lock.writer then begin
      Counters.incr t.counters "logical.lock_denied";
      Error Errno.EAGAIN
    end
    else begin
      lock.readers <- lock.readers + 1;
      Ok ()
    end
  | Vnode.Write_only | Vnode.Read_write ->
    if lock.writer || lock.readers > 0 then begin
      Counters.incr t.counters "logical.lock_denied";
      Error Errno.EAGAIN
    end
    else begin
      lock.writer <- true;
      Ok ()
    end

let lock_release t vref fid flag =
  let key = lock_key vref fid in
  match Hashtbl.find_opt t.locks key with
  | None -> ()
  | Some lock ->
    (match flag with
     | Vnode.Read_only -> lock.readers <- max 0 (lock.readers - 1)
     | Vnode.Write_only | Vnode.Read_write -> lock.writer <- false);
    if lock.readers = 0 && not lock.writer then Hashtbl.remove t.locks key

let open_locks t = Hashtbl.length t.locks

(* ------------------------------------------------------------------ *)
(* The logical vnode                                                   *)

type lnode = {
  ln_vref : Ids.volume_ref;
  ln_path : Physical.fidpath;
  ln_kind : Aux_attrs.fkind;
  mutable ln_open : Vnode.open_flag option;
}

type Vnode.vdata += Log_vnode of t * lnode

let self_fid ln =
  match List.rev ln.ln_path with [] -> Ids.root_fid | fid :: _ -> fid

let parent_path ln =
  match List.rev ln.ln_path with [] -> [] | _ :: rev -> List.rev rev

let rec make t ln : Vnode.t =
  let walk_self root = Remote.walk root ln.ln_path in
  {
    (Vnode.not_supported (Log_vnode (t, ln))) with
    getattr =
      (fun () ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* v = walk_self root in
            v.Vnode.getattr ()));
    setattr =
      (fun sa ->
        traced t "update:setattr" @@ fun () ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* v = walk_self root in
            v.Vnode.setattr sa));
    lookup = (fun name -> logical_lookup t ln name);
    create =
      (fun name ->
        let* fid =
          traced t "update:create" @@ fun () ->
          with_replica t ln.ln_vref ln.ln_path (fun root ->
              let* dir = walk_self root in
              let* _new_vnode = dir.Vnode.create name in
              let* fid, _kind = Remote.resolve dir name in
              Ok fid)
        in
        Ok
          (make t
             {
               ln_vref = ln.ln_vref;
               ln_path = ln.ln_path @ [ fid ];
               ln_kind = Aux_attrs.Freg;
               ln_open = None;
             }));
    mkdir =
      (fun name ->
        let* fid =
          traced t "update:mkdir" @@ fun () ->
          with_replica t ln.ln_vref ln.ln_path (fun root ->
              let* dir = walk_self root in
              let* _new_vnode = dir.Vnode.mkdir name in
              let* fid, _kind = Remote.resolve dir name in
              Ok fid)
        in
        Ok
          (make t
             {
               ln_vref = ln.ln_vref;
               ln_path = ln.ln_path @ [ fid ];
               ln_kind = Aux_attrs.Fdir;
               ln_open = None;
             }));
    remove =
      (fun name ->
        traced t "update:remove" @@ fun () ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* dir = walk_self root in
            dir.Vnode.remove name));
    rmdir =
      (fun name ->
        traced t "update:rmdir" @@ fun () ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* dir = walk_self root in
            dir.Vnode.rmdir name));
    rename =
      (fun sname dst dname ->
        match dst.Vnode.data with
        | Log_vnode (t', dst_ln)
          when t' == t && Ids.vref_equal dst_ln.ln_vref ln.ln_vref ->
          traced t "update:rename" @@ fun () ->
          with_replica t ln.ln_vref ln.ln_path (fun root ->
              let* src_dir = walk_self root in
              let* dst_dir = Remote.walk root dst_ln.ln_path in
              src_dir.Vnode.rename sname dst_dir dname)
        | _ -> Error Errno.EXDEV);
    link =
      (fun target name ->
        match target.Vnode.data with
        | Log_vnode (t', target_ln)
          when t' == t && Ids.vref_equal target_ln.ln_vref ln.ln_vref ->
          traced t "update:link" @@ fun () ->
          with_replica t ln.ln_vref ln.ln_path (fun root ->
              let* dir = walk_self root in
              let* target_v = Remote.walk root target_ln.ln_path in
              dir.Vnode.link target_v name)
        | _ -> Error Errno.EXDEV);
    readdir =
      (fun () ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* dir = walk_self root in
            dir.Vnode.readdir ()));
    read =
      (fun ~off ~len ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* v = walk_self root in
            v.Vnode.read ~off ~len));
    write =
      (fun ~off data ->
        traced t "update:write" @@ fun () ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* v = walk_self root in
            v.Vnode.write ~off data));
    openv =
      (fun flag ->
        let* () = lock_acquire t ln.ln_vref (self_fid ln) flag in
        ln.ln_open <- Some flag;
        (* Deliver the open to the physical layer through the encoded
           lookup channel; a plain [openv] would be discarded by an
           interposed NFS (paper §2.2/§2.3). *)
        let result =
          with_replica t ln.ln_vref ln.ln_path (fun root ->
              let* parent = Remote.walk root (parent_path ln) in
              let fid = match ln.ln_path with [] -> None | _ -> Some (self_fid ln) in
              Remote.send_open parent fid flag)
        in
        (match result with
         | Ok () -> ()
         | Error _ -> () (* the open itself still succeeds: hint only *));
        Ok ());
    closev =
      (fun () ->
        match ln.ln_open with
        | None -> Error Errno.EINVAL
        | Some flag ->
          lock_release t ln.ln_vref (self_fid ln) flag;
          ln.ln_open <- None;
          let result =
            with_replica t ln.ln_vref ln.ln_path (fun root ->
                let* parent = Remote.walk root (parent_path ln) in
                let fid = match ln.ln_path with [] -> None | _ -> Some (self_fid ln) in
                Remote.send_close parent fid)
          in
          (match result with Ok () -> () | Error _ -> ());
          Ok ());
    fsync =
      (fun () ->
        with_replica t ln.ln_vref ln.ln_path (fun root ->
            let* v = walk_self root in
            v.Vnode.fsync ()));
    inactive = (fun () -> Ok ());
  }

and logical_lookup t ln name =
  if Ctl_name.is_ctl name then
    (* Control names are not directory entries: pass them through to the
       physical layer (possibly across an interposed NFS), which decodes
       the operation and answers with a synthetic vnode. *)
    with_replica t ln.ln_vref ln.ln_path (fun root ->
        let* dir = Remote.walk root ln.ln_path in
        dir.Vnode.lookup name)
  else
  let* fid, kind =
    with_replica t ln.ln_vref ln.ln_path (fun root ->
        let* dir = Remote.walk root ln.ln_path in
        Remote.resolve dir name)
  in
  let child_path = ln.ln_path @ [ fid ] in
  match kind with
  | Aux_attrs.Freg | Aux_attrs.Fdir ->
    Ok (make t { ln_vref = ln.ln_vref; ln_path = child_path; ln_kind = kind; ln_open = None })
  | Aux_attrs.Fgraft ->
    (* Autograft (paper §4.4): read the graft point's entries, locate the
       target volume's replicas, graft, and transparently continue at
       the grafted volume's root. *)
    let* target, replicas =
      with_replica t ln.ln_vref child_path (fun root ->
          let* fdir = Remote.fetch_dir root child_path in
          match Physical.graft_entries_of_fdir fdir with
          | Some info -> Ok info
          | None -> Error Errno.EIO)
    in
    autograft_volume t target ~replicas;
    Ok (make t { ln_vref = target; ln_path = []; ln_kind = Aux_attrs.Fdir; ln_open = None })

let root t vref =
  let* _g = find_graft t vref in
  Ok (make t { ln_vref = vref; ln_path = []; ln_kind = Aux_attrs.Fdir; ln_open = None })
