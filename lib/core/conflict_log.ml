type detail =
  | File_update of {
      local_vv : Version_vector.t;
      remote_vv : Version_vector.t;
      remote_rid : Ids.replica_id;
      remote_data : string;
    }
  | Name_collision of { name : string; births : Fdir.birth list }
  | Removed_while_updated of { orphaned_to : string }

type entry = {
  id : int;
  vref : Ids.volume_ref;
  fidpath : Ids.file_id list;
  fid : Ids.file_id;
  owner_uid : int;
  detail : detail;
  detected_at : int;
  mutable resolved : bool;
}

type t = { mutable entries : entry list; mutable next_id : int }

let create () = { entries = []; next_id = 0 }

let report t ~vref ~fidpath ~fid ~owner_uid ~detected_at detail =
  let entry =
    {
      id = t.next_id;
      vref;
      fidpath;
      fid;
      owner_uid;
      detail;
      detected_at;
      resolved = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.entries <- entry :: t.entries;
  entry

let all t = List.rev t.entries

let pending t = List.filter (fun e -> not e.resolved) (all t)

let find t id = List.find_opt (fun e -> e.id = id) t.entries

let mark_resolved t id =
  match find t id with None -> () | Some e -> e.resolved <- true

let same_path fidpath e =
  List.length e.fidpath = List.length fidpath
  && List.for_all2 Ids.fid_equal e.fidpath fidpath

let has_pending t ~fidpath =
  List.exists
    (fun e ->
      (not e.resolved)
      && (match e.detail with File_update _ -> true | _ -> false)
      && same_path fidpath e)
    t.entries

let resolve_matching t ~fidpath =
  let same_path e = same_path fidpath e in
  List.fold_left
    (fun n e ->
      match e.detail with
      | File_update _ when (not e.resolved) && same_path e ->
        e.resolved <- true;
        n + 1
      | _ -> n)
    0 t.entries

let pp_entry ppf e =
  let detail =
    match e.detail with
    | File_update { local_vv; remote_vv; remote_rid; _ } ->
      Fmt.str "file update conflict: local %a vs remote(r%d) %a" Version_vector.pp local_vv
        remote_rid Version_vector.pp remote_vv
    | Name_collision { name; births } ->
      Fmt.str "name collision on %S (%d entries, auto-repaired)" name (List.length births)
    | Removed_while_updated { orphaned_to } ->
      Fmt.str "removed while updated; contents preserved in %s" orphaned_to
  in
  Fmt.pf ppf "[#%d %a /%s owner=%d t=%d%s] %s" e.id Ids.pp_vref e.vref
    (Ids.fidpath_to_string e.fidpath)
    e.owner_uid e.detected_at
    (if e.resolved then " resolved" else "")
    detail
