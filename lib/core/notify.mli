(** Update notification events (paper §2.5, §3.2).

    When a logical layer has a physical layer apply an update, "an
    asynchronous multicast datagram is sent to all available replicas
    informing them that a new version of a file may be obtained from the
    replica receiving the update."  In this reproduction the physical
    layer that applies an update emits one {!event}; the host runtime
    broadcasts it as best-effort datagrams.  Notifications are pure
    hints: losing every one of them only delays convergence until the
    next reconciliation pass. *)

type event = {
  vref : Ids.volume_ref;
  fidpath : Ids.file_id list;
      (** namespace fid-path of the updated object itself ([[]] means the
          volume root; for non-root objects the last element is [fid]).
          Lets the receiver locate its replica through the
          namespace-parallel on-disk layout, without a global fid index. *)
  fid : Ids.file_id;
  kind : Aux_attrs.fkind;
  origin_rid : Ids.replica_id;   (** replica holding the new version *)
  origin_host : string;          (** where to pull it from *)
  span : int;
      (** causal trace span of the originating update ({!Span.none} when
          the update was not traced); receivers thread it through the
          new-version cache into the propagation pull so the whole
          cross-host flow lands on one timeline *)
  vv : Version_vector.t;
      (** the origin replica's version vector for the updated file at
          notification time ([empty] for directory events, follow-up
          pulls and events from pre-delta origins).  A receiver whose own
          history already dominates a non-empty [vv] skips the pull
          outright — a duplicate or raced notification costs no RPC at
          all instead of a whole-file transfer that installs as
          up-to-date. *)
}

type Sim_net.payload += Ficus_notify of event

val pp : Format.formatter -> event -> unit
