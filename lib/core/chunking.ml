(* Content-defined chunking for delta propagation.

   Boundaries are chosen by a gear rolling hash: at byte [i] the hash is
   h_i = (h_{i-1} << 1) + gear[byte_i], and a boundary is declared when
   the low [mask_bits] bits of h are all zero.  Because each shift pushes
   older bytes toward the high bits, the low [mask_bits] bits of h depend
   only on the last [mask_bits] bytes — boundaries are a pure function of
   a small local window, which is the whole point: inserting bytes near
   the front of a file shifts every later byte, but as soon as the window
   re-aligns the remaining boundaries (and therefore the remaining chunk
   digests) are exactly the ones the old file had.  Only the chunks
   overlapping the edit change identity.

   The gear table is derived from a fixed seed by a splitmix-style
   generator, never from the environment: two replicas built from the
   same source must cut identical boundaries or the negotiation protocol
   would ship every chunk every time. *)

type chunk = { off : int; len : int; digest : string }

let min_size = 1024
let max_size = 16384
let mask_bits = 12
let mask = (1 lsl mask_bits) - 1

(* splitmix-style generator truncated to OCaml's 63-bit native int; seed
   fixed for protocol compatibility across replicas and versions. *)
let gear =
  let state = ref 0x1E3779B97F4A7C15 in
  Array.init 256 (fun _ ->
      state := (!state + 0x1E3779B97F4A7C15) land max_int;
      let z = !state in
      let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
      let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
      (z lxor (z lsr 31)) land max_int)

let digest_hex s = Digest.to_hex (Digest.string s)

let split data =
  let n = String.length data in
  let chunks = ref [] in
  let cut start len =
    let body = String.sub data start len in
    chunks := { off = start; len; digest = digest_hex body } :: !chunks
  in
  let start = ref 0 in
  let h = ref 0 in
  for i = 0 to n - 1 do
    h := ((!h lsl 1) + Array.unsafe_get gear (Char.code (String.unsafe_get data i)))
         land max_int;
    let len = i - !start + 1 in
    if len >= max_size || (len >= min_size && !h land mask = 0) then begin
      cut !start len;
      start := i + 1;
      h := 0
    end
  done;
  if !start < n then cut !start (n - !start);
  List.rev !chunks

let total_length chunks = List.fold_left (fun acc c -> acc + c.len) 0 chunks

(* One line per chunk, offsets implied by accumulation:
     chunk=<32-hex-md5> <len> *)
let encode_map chunks =
  let buf = Buffer.create (44 * List.length chunks) in
  List.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "chunk=%s %d\n" c.digest c.len))
    chunks;
  Buffer.contents buf

let is_hex_digest s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let decode_map s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let parse (off, acc) line =
    match acc with
    | None -> (off, None)
    | Some chunks ->
      if String.length line > 6 && String.sub line 0 6 = "chunk=" then
        match String.index_opt line ' ' with
        | None -> (off, None)
        | Some sp ->
          let digest = String.sub line 6 (sp - 6) in
          let len = String.sub line (sp + 1) (String.length line - sp - 1) in
          (match int_of_string_opt len with
           | Some len when len > 0 && is_hex_digest digest ->
             (off + len, Some ({ off; len; digest } :: chunks))
           | _ -> (off, None))
      else (off, None)
  in
  match List.fold_left parse (0, Some []) lines with
  | _, None -> None
  | _, Some chunks -> Some (List.rev chunks)

let slice data c = String.sub data c.off c.len

(* Reassemble file contents from a chunk map, resolving each digest
   either locally ([have]) or from the fetched bodies ([fetched]).
   Returns [None] if any digest is unresolvable or a body's length
   disagrees with the map. *)
let reassemble chunks ~have ~fetched =
  let buf = Buffer.create (total_length chunks) in
  let ok =
    List.for_all
      (fun c ->
        let body =
          match have c.digest with Some b -> Some b | None -> fetched c.digest
        in
        match body with
        | Some b when String.length b = c.len ->
          Buffer.add_string buf b;
          true
        | _ -> false)
      chunks
  in
  if ok then Some (Buffer.contents buf) else None
