(** Content-defined chunking for delta propagation.

    File contents are split into variable-size chunks at boundaries
    chosen by a gear rolling hash of a small sliding window, so an edit
    (even an insert that shifts every later byte) changes the identity of
    only the chunks overlapping it: once the hash window re-aligns, every
    later boundary — and therefore every later chunk digest — is the one
    the unedited file had.  The propagation daemon negotiates by digest:
    a puller that already stores most of a file's chunks fetches only the
    missing bodies.

    The boundary parameters and the gear table seed are part of the wire
    protocol: all replicas must cut identical boundaries for negotiation
    to find common chunks. *)

type chunk = {
  off : int;      (** byte offset of the chunk in the file *)
  len : int;
  digest : string;  (** 32-char lowercase hex MD5 of the chunk body *)
}

val min_size : int
(** No boundary is declared before a chunk reaches this size (1 KiB),
    bounding per-chunk overhead. *)

val max_size : int
(** A boundary is forced at this size (16 KiB), bounding the damage of
    pathological (e.g. constant) content that never hashes to one. *)

val mask_bits : int
(** Number of low hash bits that must be zero at a boundary; expected
    chunk size ≈ [min_size + 2^mask_bits] (≈ 5 KiB). *)

val split : string -> chunk list
(** Deterministic: equal contents yield equal chunk lists on every
    replica.  Chunks are contiguous, cover the input exactly, and every
    chunk but the last has [min_size <= len <= max_size].  The empty
    string splits into no chunks. *)

val digest_hex : string -> string
(** Hex MD5 of a whole body (the same digest [split] gives each chunk). *)

val total_length : chunk list -> int

val encode_map : chunk list -> string
(** One line per chunk, [chunk=<hex-digest> <len>]; offsets are implied
    by accumulation, so the map is position-independent. *)

val decode_map : string -> chunk list option
(** Inverse of {!encode_map} (tolerating a missing trailing newline);
    [None] on any malformed line. *)

val slice : string -> chunk -> string
(** The chunk's body within its file's contents. *)

val reassemble :
  chunk list ->
  have:(string -> string option) ->
  fetched:(string -> string option) ->
  string option
(** Rebuild file contents from a chunk map, resolving each digest first
    against locally held bodies ([have]), then against freshly fetched
    ones ([fetched]).  [None] if any digest is unresolvable or a body's
    length disagrees with the map — callers fall back to a whole-file
    fetch. *)
