module Vv = Version_vector

(* The per-replica knowledge map is consulted once per (tombstone, peer)
   pair during GC and updated on every merge; a sorted map keeps that
   logarithmic where the old assoc list went quadratic on wide replica
   sets. *)
module Kmap = Map.Make (Int)

type birth = { b_rid : Ids.replica_id; b_seq : int }

type status = Live | Dead of { death_vv : Vv.t }

type entry = {
  name : string;
  fid : Ids.file_id;
  kind : Aux_attrs.fkind;
  birth : birth;
  status : status;
}

type t = {
  entries : entry list;
  vv : Vv.t;
  known : Vv.t Kmap.t;
}

let birth_compare a b =
  match Int.compare a.b_rid b.b_rid with 0 -> Int.compare a.b_seq b.b_seq | c -> c

let birth_equal a b = birth_compare a b = 0

let empty rid = { entries = []; vv = Vv.empty; known = Kmap.singleton rid Vv.empty }

let is_live e = match e.status with Live -> true | Dead _ -> false

let sort_entries entries = List.sort (fun a b -> birth_compare a.birth b.birth) entries

(* ------------------------------------------------------------------ *)
(* Read-time collision repair: among live entries sharing a name, the
   oldest birth keeps the plain name; younger ones read as
   "name#<rid>.<seq>" (further '#'-extended if even that collides).
   Purely a function of the entry set, so every replica computes the
   same view — no merge-time mutation is needed for convergence.      *)

let live t =
  let live_entries = List.filter is_live t.entries in
  let plain_names =
    List.fold_left (fun acc e -> e.name :: acc) [] live_entries
    |> List.sort_uniq String.compare
  in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let current = Option.value ~default:[] (Hashtbl.find_opt by_name e.name) in
      Hashtbl.replace by_name e.name (e :: current))
    live_entries;
  let effective e =
    match Hashtbl.find_opt by_name e.name with
    | Some [ _ ] | None -> e.name
    | Some group ->
      let winner =
        List.fold_left (fun acc c -> if birth_compare c.birth acc.birth < 0 then c else acc)
          (List.hd group) group
      in
      if birth_equal winner.birth e.birth then e.name
      else
        let rec fresh candidate =
          if List.mem candidate plain_names then fresh (candidate ^ "#") else candidate
        in
        fresh (Printf.sprintf "%s#%d.%d" e.name e.birth.b_rid e.birth.b_seq)
  in
  List.map (fun e -> (effective e, e)) live_entries
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_live t name =
  List.find_map (fun (n, e) -> if n = name then Some e else None) (live t)

let find_by_fid t fid =
  List.find_opt (fun e -> is_live e && Ids.fid_equal e.fid fid) t.entries

(* Live entries deduplicated by fid (a hard-linked file appears once),
   in effective-name order.  The unit of work for reconciliation. *)
let live_fids t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (_, e) ->
      let k = Ids.fid_to_hex e.fid in
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.replace seen k ();
        Some e
      end)
    (live t)

let find_birth t birth = List.find_opt (fun e -> birth_equal e.birth birth) t.entries

(* ------------------------------------------------------------------ *)
(* Local updates                                                       *)

let bump t rid =
  let vv = Vv.bump t.vv rid in
  let known = Kmap.add rid vv t.known in
  { t with vv; known }

let valid_name name =
  name <> "" && String.length name <= 200 && not (String.contains name '/')
  && not (Ctl_name.is_ctl name)
  && name.[0] <> '@'

let add t ~rid ~name ~fid ~kind ~birth =
  if not (valid_name name) then Error Errno.EINVAL
  else if find_birth t birth <> None then Error Errno.EINVAL
  else if find_live t name <> None then Error Errno.EEXIST
  else
    let t = bump t rid in
    let e = { name; fid; kind; birth; status = Live } in
    Ok { t with entries = sort_entries (e :: t.entries) }

let kill t ~rid birth =
  match find_birth t birth with
  | None -> Error Errno.ENOENT
  | Some e ->
    (match e.status with
     | Dead _ -> Error Errno.ENOENT
     | Live ->
       let t = bump t rid in
       let dead = { e with status = Dead { death_vv = t.vv } } in
       let entries =
         List.map (fun e' -> if birth_equal e'.birth birth then dead else e') t.entries
       in
       Ok { t with entries })

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)

type action =
  | Materialize of entry
  | Unmaterialize of entry
  | Expire of entry

type merge_result = {
  merged : t;
  actions : action list;
  new_collisions : (string * birth list) list;
}

let collisions t =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if is_live e then
        Hashtbl.replace groups e.name
          (e.birth :: Option.value ~default:[] (Hashtbl.find_opt groups e.name)))
    t.entries;
  Hashtbl.fold
    (fun name births acc ->
      if List.length births > 1 then (name, List.sort birth_compare births) :: acc else acc)
    groups []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge ?(may_expire = fun _ -> true) ~local_rid ~remote_rid ~peers local remote =
  (* Entry union: a tombstone on either side wins for its birth. *)
  let table = Hashtbl.create 32 in
  let note e =
    let key = (e.birth.b_rid, e.birth.b_seq) in
    match Hashtbl.find_opt table key with
    | None -> Hashtbl.replace table key e
    | Some prev ->
      let chosen =
        match prev.status, e.status with
        | Dead { death_vv = d1 }, Dead { death_vv = d2 } ->
          (* Both sides killed this birth, possibly at divergent vvs.
             Join the death vectors so the tombstone itself converges
             byte-wise (and GC waits for the later of the two kills). *)
          if Vv.equal d1 d2 then prev
          else { prev with status = Dead { death_vv = Vv.merge d1 d2 } }
        | Dead _, _ -> prev
        | _, Dead _ -> e
        | Live, Live -> prev
      in
      Hashtbl.replace table key chosen
  in
  List.iter note local.entries;
  List.iter note remote.entries;
  let union = Hashtbl.fold (fun _ e acc -> e :: acc) table [] |> sort_entries in
  (* Gossip the knowledge map.  The remote replica has reached its own
     vv; we are about to reach the merged vv. *)
  let merged_vv = Vv.merge local.vv remote.vv in
  let known_of m rid = Option.value ~default:Vv.empty (Kmap.find_opt rid m.known) in
  let known =
    (* Pointwise merge of the two knowledge maps… *)
    Kmap.merge
      (fun _rid l r ->
        match l, r with
        | Some l, Some r -> Some (Vv.merge l r)
        | (Some _ as v), None | None, (Some _ as v) -> v
        | None, None -> None)
      local.known remote.known
    (* …then fold in what this very merge proves: the remote has reached
       its own vv, we are about to reach the merged vv, and every listed
       peer at least has an (empty) row. *)
    |> fun m ->
    List.fold_left
      (fun m rid ->
        if Kmap.mem rid m then m else Kmap.add rid Vv.empty m)
      m peers
    |> Kmap.add remote_rid (Vv.merge (known_of remote remote_rid |> Vv.merge (known_of local remote_rid)) remote.vv)
    |> Kmap.add local_rid (Vv.merge (known_of local local_rid |> Vv.merge (known_of remote local_rid)) merged_vv)
  in
  (* Tombstone GC: drop tombstones every peer is known to have applied. *)
  let everyone_knows death_vv =
    List.for_all
      (fun rid -> Vv.dominates (Option.value ~default:Vv.empty (Kmap.find_opt rid known)) death_vv)
      peers
  in
  let kept, expired =
    List.partition
      (fun e ->
        match e.status with
        | Live -> true
        | Dead { death_vv } -> not (everyone_knows death_vv && may_expire e))
      union
  in
  let merged = { entries = kept; vv = merged_vv; known } in
  (* Actions: difference between the local live view and the merged one. *)
  let was_live birth entries =
    List.exists (fun e -> birth_equal e.birth birth && is_live e) entries
  in
  let actions = ref [] in
  List.iter
    (fun e ->
      match e.status with
      | Live ->
        if not (was_live e.birth local.entries) then actions := Materialize e :: !actions
      | Dead _ ->
        if was_live e.birth local.entries then actions := Unmaterialize e :: !actions)
    union;
  (* [union] already produced any needed Unmaterialize for these. *)
  List.iter (fun e -> actions := Expire e :: !actions) expired;
  let local_collisions = collisions local in
  let new_collisions =
    List.filter (fun (name, _) -> not (List.mem_assoc name local_collisions)) (collisions merged)
  in
  { merged; actions = List.rev !actions; new_collisions }

(* ------------------------------------------------------------------ *)
(* Serialization: line-oriented, names percent-escaped.                *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\t' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape = Ctl_name.unescape

let encode t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "V %s\n" (Vv.encode t.vv));
  Kmap.iter
    (fun rid vv -> Buffer.add_string buf (Printf.sprintf "K %d %s\n" rid (Vv.encode vv)))
    t.known;  (* Kmap iterates in ascending rid order, as the sort did *)
  List.iter
    (fun e ->
      let status =
        match e.status with
        | Live -> "L"
        | Dead { death_vv } -> Printf.sprintf "D %s" (Vv.encode death_vv)
      in
      Buffer.add_string buf
        (Printf.sprintf "E %s %s %d.%d %s %s\n" (escape e.name) (Ids.fid_to_hex e.fid)
           e.birth.b_rid e.birth.b_seq
           (Aux_attrs.kind_to_string e.kind)
           status))
    t.entries;
  Buffer.contents buf

let decode_kind = function
  | "reg" -> Some Aux_attrs.Freg
  | "dir" -> Some Aux_attrs.Fdir
  | "graft" -> Some Aux_attrs.Fgraft
  | _ -> None

let decode_birth s =
  match String.split_on_char '.' s with
  | [ r; q ] ->
    (match int_of_string_opt r, int_of_string_opt q with
     | Some b_rid, Some b_seq -> Some { b_rid; b_seq }
     | _, _ -> None)
  | _ -> None

let decode_vv_field s = if s = "-" then Some Vv.empty else Vv.decode s

let decode s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let rec go acc = function
    | [] ->
      let { entries; vv; known } = acc in
      Some { entries = sort_entries entries; vv; known }
    | line :: rest ->
      (match String.split_on_char ' ' line with
       | [ "V"; vv ] ->
         (match Vv.decode vv with
          | Some vv -> go { acc with vv } rest
          | None -> None)
       | [ "K"; rid; vv ] ->
         (match int_of_string_opt rid, Vv.decode vv with
          | Some rid, Some vv -> go { acc with known = Kmap.add rid vv acc.known } rest
          | _, _ -> None)
       | "E" :: name :: fid :: birth :: kind :: status ->
         let parsed =
           match unescape name, Ids.fid_of_hex fid, decode_birth birth, decode_kind kind with
           | Some name, Some fid, Some birth, Some kind ->
             (match status with
              | [ "L" ] -> Some { name; fid; kind; birth; status = Live }
              | [ "D"; dvv ] ->
                (match decode_vv_field dvv with
                 | Some death_vv -> Some { name; fid; kind; birth; status = Dead { death_vv } }
                 | None -> None)
              | _ -> None)
           | _, _, _, _ -> None
         in
         (match parsed with
          | Some e -> go { acc with entries = e :: acc.entries } rest
          | None -> None)
       | _ -> None)
  in
  go { entries = []; vv = Vv.empty; known = Kmap.empty } lines

let pp_entry ppf e =
  let status =
    match e.status with
    | Live -> "live"
    | Dead { death_vv } -> Fmt.str "dead@%a" Vv.pp death_vv
  in
  Fmt.pf ppf "%s -> %a [%d.%d %s %s]" e.name Ids.pp_fid e.fid e.birth.b_rid e.birth.b_seq
    (Aux_attrs.kind_to_string e.kind) status
