module Vv = Version_vector

type mode = Delta | Whole | Fallback

type stats = {
  mode : mode;
  wire_bytes : int;
  saved_bytes : int;
  chunks_hit : int;
  chunks_miss : int;
}

type outcome =
  | Data of Physical.version_info * string
  | Up_to_date of Physical.version_info

let ( let* ) = Result.bind

(* Below this size the chunk map plus negotiation round trips cannot
   beat just shipping the file. *)
let min_delta_size = 2 * Chunking.min_size

let stats_of ~mode ~wire ~size ~hit ~miss =
  { mode; wire_bytes = wire; saved_bytes = max 0 (size - wire); chunks_hit = hit;
    chunks_miss = miss }

let whole ~mode ~extra_wire remote_root path =
  let* vi, data, wire = Remote.fetch_file_sized remote_root path in
  Ok
    ( Data (vi, data),
      {
        mode;
        wire_bytes = wire + extra_wire;
        saved_bytes = 0;
        chunks_hit = 0;
        chunks_miss = 0;
      } )

(* Delta-or-whole fetch of a regular file from [remote_root].

   The delta path only pays when this replica already stores a
   reasonably sized copy to diff against; otherwise every chunk would
   miss and the negotiation is strictly worse than one readfile.  Any
   delta-path surprise — a pre-chunking peer (EINVAL), contents racing
   ahead of the served map (EAGAIN), a reassembly or digest mismatch —
   degrades to the whole-file fetch, with the bytes already spent kept
   on the bill. *)
let fetch_file ~local ~remote_root path =
  let local_copy =
    match Physical.fetch_file local path with
    | Ok (lvi, ldata)
      when lvi.Physical.vi_stored && String.length ldata >= min_delta_size ->
      Some (lvi, ldata)
    | Ok _ | Error _ -> None
  in
  match local_copy with
  | None -> whole ~mode:Whole ~extra_wire:0 remote_root path
  | Some (lvi, ldata) ->
    (match Remote.fetch_chunk_map remote_root path with
     | Error Errno.EINVAL ->
       (* Pre-chunking peer: the getdirvvs precedent — degrade, never
          fail. *)
       whole ~mode:Fallback ~extra_wire:0 remote_root path
     | Error _ as e -> e
     | Ok (cm, map_wire) ->
       let rvi = cm.Remote.cm_vi in
       if Vv.dominates lvi.Physical.vi_vv rvi.Physical.vi_vv then
         (* The map header already proves we're current: a duplicate or
            raced notification is answered without the contents. *)
         Ok
           ( Up_to_date rvi,
             stats_of ~mode:Delta ~wire:map_wire ~size:rvi.Physical.vi_size ~hit:0
               ~miss:0 )
       else begin
         let local_chunks = Physical.chunks_of_content local ldata in
         let have_tbl = Hashtbl.create 64 in
         List.iter
           (fun c ->
             if not (Hashtbl.mem have_tbl c.Chunking.digest) then
               Hashtbl.add have_tbl c.Chunking.digest c)
           local_chunks;
         let hit = ref 0 and miss = ref 0 in
         let missing =
           List.filter_map
             (fun c ->
               if Hashtbl.mem have_tbl c.Chunking.digest then begin
                 incr hit;
                 None
               end
               else begin
                 incr miss;
                 Some c.Chunking.digest
               end)
             cm.Remote.cm_chunks
         in
         (* A digest missing twice in the map still travels once. *)
         let missing = List.sort_uniq String.compare missing in
         match Remote.fetch_chunks remote_root path missing with
         | Error (Errno.EAGAIN | Errno.EINVAL) ->
           whole ~mode:Fallback ~extra_wire:map_wire remote_root path
         | Error _ as e -> e
         | Ok (bodies, chunk_wire) ->
           let have d =
             Option.map (Chunking.slice ldata) (Hashtbl.find_opt have_tbl d)
           in
           let reassembled =
             Chunking.reassemble cm.Remote.cm_chunks ~have
               ~fetched:(Hashtbl.find_opt bodies)
           in
           let verified =
             match reassembled, cm.Remote.cm_digest with
             | Some data, Some d when Chunking.digest_hex data <> d -> None
             | r, _ -> r
           in
           (match verified with
            | None ->
              (* Never install bytes that failed the end-to-end check. *)
              whole ~mode:Fallback ~extra_wire:(map_wire + chunk_wire) remote_root
                path
            | Some data ->
              Ok
                ( Data (rvi, data),
                  stats_of ~mode:Delta ~wire:(map_wire + chunk_wire)
                    ~size:rvi.Physical.vi_size ~hit:!hit ~miss:!miss ))
       end)
