(** A from-scratch Unix file system on a simulated disk.

    This is the storage substrate Ficus stacks on: inodes, allocation
    bitmaps, directories, and a write-through buffer cache, with a real
    on-disk layout so that every metadata or data access is charged to the
    device unless the buffer cache absorbs it.  It deliberately keeps the
    4.2BSD UFS shape the paper assumes — inode + data page per file
    touched — because the §6 I/O-overhead numbers are stated in exactly
    those units.

    Differences from a production UFS, chosen for the simulation:
    ["."]/[".."] entries are implicit; [link] may target directories
    (Ficus directories form a DAG — paper §2.5); by default all metadata
    writes are synchronous write-through.

    Formatting with [~journal_blocks] reserves a write-ahead journal
    region at the tail of the disk and turns every mutating operation
    into a transaction: its block writes buffer in memory, group commit
    seals batches of transactions into the log (amortizing the paper's
    one-I/O-per-metadata-touch cost), a checkpoint later writes them
    home, and {!mount} replays sealed batches after a crash.  See
    {!Journal} for the protocol and DESIGN.md for the on-disk format. *)

type t

type inum = int
(** Inode number; the root directory is inode 1 (0 is reserved). *)

type kind = Reg | Dir

type attrs = {
  kind : kind;
  size : int;
  nlink : int;
  mtime : int;
  mode : int;
  uid : int;
  gen : int;  (** incremented each time the inode slot is reused *)
}

type 'a io = ('a, Errno.t) result

val mkfs :
  ?cache_capacity:int -> ?ninodes:int -> ?inode_size:int ->
  ?journal_blocks:int -> ?journal_flush_blocks:int -> ?journal_flush_age:int ->
  now:(unit -> int) -> Disk.t -> t io
(** Format the disk and mount the fresh file system.  [now] supplies
    mtime stamps (typically the simulated clock).  Default [ninodes] is
    one per four data blocks.  [inode_size] (default 128, min 128, must
    divide the block size) controls how many inodes share a block: the
    I/O-accounting experiments set it to the block size so each inode
    fetch is one I/O, as on a cylinder-group UFS where distinct files'
    inodes rarely share a cached block.

    [journal_blocks] (default 0 = unjournaled, else at least 4) reserves
    that many blocks at the tail of the disk for the write-ahead
    journal.  [journal_flush_blocks] (default 32) and
    [journal_flush_age] (default 8 clock units) are the group-commit
    thresholds: staged transactions flush to the log when that many
    distinct blocks are dirty, or when {!journal_tick} finds the oldest
    commit has waited that long. *)

val mount :
  ?cache_capacity:int -> ?journal_flush_blocks:int -> ?journal_flush_age:int ->
  now:(unit -> int) -> Disk.t -> t io
(** Mount an existing file system (e.g. after a simulated crash: the
    buffer cache starts cold).  If the superblock names a journal
    region, sealed record groups are replayed and torn tails discarded
    before the mount returns — the recovered state is always the state
    after some prefix of committed transactions.  Fails with [EINVAL] on
    a bad superblock. *)

val root : t -> inum
val cache : t -> Block_cache.t
val disk : t -> Disk.t

val nfree_blocks : t -> int io
val nfree_inodes : t -> int io

(** {1 Inode operations} *)

val stat : t -> inum -> attrs io
val set_mode : t -> inum -> int -> unit io
val set_uid : t -> inum -> int -> unit io
val set_mtime : t -> inum -> int -> unit io

val read : t -> inum -> off:int -> len:int -> string io
(** Short read at EOF; [""] past EOF; [EISDIR] on directories. *)

val write : t -> inum -> off:int -> string -> unit io
(** Extends the file as needed; sparse gaps read back as zeros. *)

val truncate : t -> inum -> int -> unit io
(** Shrink (freeing blocks) or extend (zero-filled) to exactly [len]. *)

(** {1 Directory operations} *)

val dir_lookup : t -> inum -> string -> inum io
val dir_entries : t -> inum -> (string * inum * kind) list io

val create : t -> dir:inum -> string -> inum io
(** New empty regular file; [EEXIST] if the name is taken. *)

val mkdir : t -> dir:inum -> string -> inum io

val link : t -> dir:inum -> string -> inum -> unit io
(** Add a name for an existing inode (directories allowed — see above). *)

val unlink : t -> dir:inum -> string -> unit io
(** Remove a name for a non-directory; the inode and its blocks are freed
    when the last link goes. *)

val rmdir : t -> dir:inum -> string -> unit io
(** Remove a directory name.  Removing the {e last} link to a non-empty
    directory is [ENOTEMPTY]; removing one of several links is fine. *)

val rename : t -> sdir:inum -> sname:string -> ddir:inum -> dname:string -> unit io
(** Atomic within the file system.  An existing destination is replaced
    ([ENOTEMPTY] if it is a non-empty directory's last link). *)

(** {1 Maintenance} *)

val journaled : t -> bool
(** Whether this file system was formatted with a write-ahead journal. *)

val sync : t -> unit io
(** Make every completed operation durable.  Journaled: force the group
    commit (staged transactions are sealed into the log) and checkpoint
    (logged blocks are written home and the log empties) — after [sync]
    returns [Ok], a crash at any later point loses nothing done before
    it.  Unjournaled: a no-op, because the write-through cache already
    put every completed operation on the device. *)

val journal_tick : t -> unit io
(** The clock-driven half of group commit: flush the staged
    transactions iff the oldest has waited at least the flush age.
    Driven alongside the propagation/reconciliation daemons (see
    [Cluster.tick_daemons]); a no-op when unjournaled. *)

val journal_pending : t -> bool
(** Is a group commit staged and waiting to age out?  While [false],
    {!journal_tick} is a no-op, so the cluster's ready-queue may skip
    this host's flush daemon.  Always [false] when unjournaled. *)

val journal_stats : t -> (string * int) list
(** Journal lifetime counters ({!Journal.stats}); [[]] when unjournaled. *)

val crash_reboot : t -> unit io
(** Simulate a power failure and reboot in place: drop the buffer cache
    and every volatile journal structure (staged commits are lost
    atomically), then replay the journal from the device exactly as a
    fresh {!mount} would.  Unjournaled: just the cold cache. *)

val check : t -> (unit, string) result
(** Cheap fsck: bitmap vs. reachable blocks/inodes, link counts.  Used by
    property tests, {!val-crash_reboot} sweeps, and [Cluster.reboot]. *)

(** {1 Wire formats}

    Exposed for property tests: the packed directory encoding (u32 inum,
    u8 kind, u8 namelen, name bytes per entry, zero-inum terminator).
    [parse_dir] tolerates a torn suffix — a record cut off mid-append
    parses as exactly the preceding complete entries. *)

val serialize_dir : (string * inum * kind) list -> string
val parse_dir : string -> (string * inum * kind) list
