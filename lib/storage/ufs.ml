(* On-disk layout:
     block 0            superblock
     ibitmap blocks     inode allocation bitmap (bit 0 reserved)
     bbitmap blocks     block allocation bitmap (metadata pre-marked)
     itable blocks      128-byte inode slots, inum 1.. (slot 0 unused)
     data blocks        file and directory contents
     journal blocks     write-ahead journal region (optional, at the end)
   Inode slot: kind u8, pad, nlink u16, size u32, mtime u32, mode u16,
   uid u16, gen u32, 12 direct u32, 1 single-indirect u32.
   Freed slots keep their gen so reallocation can bump it (NFS staleness). *)

type inum = int

type kind = Reg | Dir

type attrs = {
  kind : kind;
  size : int;
  nlink : int;
  mtime : int;
  mode : int;
  uid : int;
  gen : int;
}

type 'a io = ('a, Errno.t) result

let ( let* ) = Result.bind

let magic = 0x0F1C05F5
let default_inode_size = 128
let ndirect = 12
let max_name = 255

type superblock = {
  nblocks : int;
  ninodes : int;
  inode_size : int;
  ibitmap_start : int;
  ibitmap_blocks : int;
  bbitmap_start : int;
  bbitmap_blocks : int;
  itable_start : int;
  itable_blocks : int;
  data_start : int;
  journal_start : int;  (* = nblocks when there is no journal *)
  journal_blocks : int;  (* 0 = unjournaled *)
}

type t = {
  cache : Block_cache.t;
  sb : superblock;
  bs : int;  (* block size *)
  now : unit -> int;
  journal : Journal.t option;
}

type ino = {
  i_kind : int;  (* 0 free, 1 Reg, 2 Dir *)
  i_nlink : int;
  i_size : int;
  i_mtime : int;
  i_mode : int;
  i_uid : int;
  i_gen : int;
  i_direct : int array;
  i_indirect : int;
}

(* ------------------------------------------------------------------ *)
(* Superblock                                                          *)

let encode_sb bs sb =
  let b = Bytes.make bs '\000' in
  Codec.set_u32 b 0 magic;
  Codec.set_u32 b 4 sb.nblocks;
  Codec.set_u32 b 8 sb.ninodes;
  Codec.set_u32 b 12 sb.ibitmap_start;
  Codec.set_u32 b 16 sb.ibitmap_blocks;
  Codec.set_u32 b 20 sb.bbitmap_start;
  Codec.set_u32 b 24 sb.bbitmap_blocks;
  Codec.set_u32 b 28 sb.itable_start;
  Codec.set_u32 b 32 sb.itable_blocks;
  Codec.set_u32 b 36 sb.data_start;
  Codec.set_u32 b 40 sb.inode_size;
  Codec.set_u32 b 44 sb.journal_start;
  Codec.set_u32 b 48 sb.journal_blocks;
  b

let decode_sb b =
  if Codec.get_u32 b 0 <> magic then Error Errno.EINVAL
  else
    Ok
      {
        nblocks = Codec.get_u32 b 4;
        ninodes = Codec.get_u32 b 8;
        ibitmap_start = Codec.get_u32 b 12;
        ibitmap_blocks = Codec.get_u32 b 16;
        bbitmap_start = Codec.get_u32 b 20;
        bbitmap_blocks = Codec.get_u32 b 24;
        itable_start = Codec.get_u32 b 28;
        itable_blocks = Codec.get_u32 b 32;
        data_start = Codec.get_u32 b 36;
        inode_size = Codec.get_u32 b 40;
        (* Pre-journal images have zeros here: no journal region. *)
        journal_start =
          (if Codec.get_u32 b 48 = 0 then Codec.get_u32 b 4 else Codec.get_u32 b 44);
        journal_blocks = Codec.get_u32 b 48;
      }

(* ------------------------------------------------------------------ *)
(* Block I/O                                                           *)

(* Every metadata and data access funnels through these three, so the
   journal (when present) sees all of it: reads observe the transaction
   dirty set and any committed-but-not-yet-checkpointed blocks; writes
   buffer in the open transaction instead of hitting the device. *)

let bread t blk =
  match t.journal with
  | Some j -> Journal.read j blk
  | None -> Block_cache.read t.cache blk

let bread_copy t blk =
  match t.journal with
  | Some j -> Journal.read_copy j blk
  | None -> Block_cache.read_copy t.cache blk

let bwrite t blk buf =
  match t.journal with
  | Some j -> Journal.write j blk buf
  | None -> Block_cache.write t.cache blk buf

(* Run [f] as one journaled transaction: its writes become durable
   together (at the next group-commit flush) or not at all, and an error
   rolls every one of them back.  Unjournaled: plain write-through. *)
let with_txn t f =
  match t.journal with
  | None -> f ()
  | Some j ->
    Journal.begin_txn j;
    (match f () with
     | Ok _ as r ->
       (match Journal.commit_txn j with
        | Ok () -> r
        | Error _ as e ->
          (* The flush failed on the device; the staged writes stay in
             memory for a later retry, but this caller sees the error. *)
          e)
     | Error _ as e ->
       Journal.abort_txn j;
       e)

(* ------------------------------------------------------------------ *)
(* Bitmaps                                                             *)

let bit_test t ~start bit =
  let bits_per_block = t.bs * 8 in
  let* b = bread t (start + (bit / bits_per_block)) in
  let byte = Codec.get_u8 b (bit mod bits_per_block / 8) in
  Ok (byte land (1 lsl (bit mod 8)) <> 0)

let bit_update t ~start bit value =
  let bits_per_block = t.bs * 8 in
  let blk = start + (bit / bits_per_block) in
  let* b = bread_copy t blk in
  let idx = bit mod bits_per_block / 8 in
  let mask = 1 lsl (bit mod 8) in
  let byte = Codec.get_u8 b idx in
  let byte = if value then byte lor mask else byte land lnot mask in
  Codec.set_u8 b idx byte;
  bwrite t blk b

(* First clear bit below [limit], or ENOSPC-style [None]. *)
let bit_find_clear t ~start ~nbitmap_blocks ~limit =
  let bits_per_block = t.bs * 8 in
  let rec scan_block bi =
    if bi >= nbitmap_blocks then Ok None
    else
      let* b = bread t (start + bi) in
      let base = bi * bits_per_block in
      let rec scan_byte i =
        if i >= t.bs then scan_block (bi + 1)
        else
          let byte = Codec.get_u8 b i in
          if byte = 0xff then scan_byte (i + 1)
          else
            let rec scan_bit j =
              if j >= 8 then scan_byte (i + 1)
              else
                let bit = base + (i * 8) + j in
                if bit >= limit then Ok None
                else if byte land (1 lsl j) = 0 then Ok (Some bit)
                else scan_bit (j + 1)
            in
            scan_bit 0
      in
      scan_byte 0
  in
  scan_block 0

let count_clear_bits t ~start ~nbitmap_blocks ~limit =
  let bits_per_block = t.bs * 8 in
  let rec go bi acc =
    if bi >= nbitmap_blocks then Ok acc
    else
      let* b = bread t (start + bi) in
      let base = bi * bits_per_block in
      let acc = ref acc in
      for i = 0 to t.bs - 1 do
        let byte = Codec.get_u8 b i in
        for j = 0 to 7 do
          let bit = base + (i * 8) + j in
          if bit < limit && byte land (1 lsl j) = 0 then incr acc
        done
      done;
      go (bi + 1) !acc
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Inode table                                                         *)

let inodes_per_block t = t.bs / t.sb.inode_size

let inode_loc t inum =
  let blk = t.sb.itable_start + ((inum - 1) / inodes_per_block t) in
  let off = (inum - 1) mod inodes_per_block t * t.sb.inode_size in
  (blk, off)

let decode_ino b off =
  {
    i_kind = Codec.get_u8 b off;
    i_nlink = Codec.get_u16 b (off + 2);
    i_size = Codec.get_u32 b (off + 4);
    i_mtime = Codec.get_u32 b (off + 8);
    i_mode = Codec.get_u16 b (off + 12);
    i_uid = Codec.get_u16 b (off + 14);
    i_gen = Codec.get_u32 b (off + 16);
    i_direct = Array.init ndirect (fun k -> Codec.get_u32 b (off + 20 + (4 * k)));
    i_indirect = Codec.get_u32 b (off + 68);
  }

let encode_ino b off ino =
  Codec.set_u8 b off ino.i_kind;
  Codec.set_u16 b (off + 2) ino.i_nlink;
  Codec.set_u32 b (off + 4) ino.i_size;
  Codec.set_u32 b (off + 8) ino.i_mtime;
  Codec.set_u16 b (off + 12) ino.i_mode;
  Codec.set_u16 b (off + 14) ino.i_uid;
  Codec.set_u32 b (off + 16) ino.i_gen;
  Array.iteri (fun k v -> Codec.set_u32 b (off + 20 + (4 * k)) v) ino.i_direct;
  Codec.set_u32 b (off + 68) ino.i_indirect

let valid_inum t inum = inum >= 1 && inum <= t.sb.ninodes

let read_ino t inum =
  if not (valid_inum t inum) then Error Errno.EINVAL
  else
    let blk, off = inode_loc t inum in
    let* b = bread t blk in
    Ok (decode_ino b off)

let read_live_ino t inum =
  let* ino = read_ino t inum in
  if ino.i_kind = 0 then Error Errno.ESTALE else Ok ino

let write_ino t inum ino =
  let blk, off = inode_loc t inum in
  let* b = bread_copy t blk in
  encode_ino b off ino;
  bwrite t blk b

(* ------------------------------------------------------------------ *)
(* mkfs / mount                                                        *)

let layout ~bs ~nblocks ~ninodes ~inode_size ~journal_blocks =
  let bits_per_block = bs * 8 in
  let ceil_div a b = (a + b - 1) / b in
  let ibitmap_blocks = ceil_div (ninodes + 1) bits_per_block in
  let bbitmap_blocks = ceil_div nblocks bits_per_block in
  let itable_blocks = ceil_div ninodes (bs / inode_size) in
  let ibitmap_start = 1 in
  let bbitmap_start = ibitmap_start + ibitmap_blocks in
  let itable_start = bbitmap_start + bbitmap_blocks in
  let data_start = itable_start + itable_blocks in
  {
    nblocks;
    ninodes;
    inode_size;
    ibitmap_start;
    ibitmap_blocks;
    bbitmap_start;
    bbitmap_blocks;
    itable_start;
    itable_blocks;
    data_start;
    (* The journal takes the tail of the disk so the data region stays
       contiguous; journal_start = nblocks means no journal. *)
    journal_start = nblocks - journal_blocks;
    journal_blocks;
  }

let empty_ino = {
  i_kind = 0;
  i_nlink = 0;
  i_size = 0;
  i_mtime = 0;
  i_mode = 0;
  i_uid = 0;
  i_gen = 0;
  i_direct = Array.make ndirect 0;
  i_indirect = 0;
}

let root _t = 1
let cache t = t.cache
let disk t = Block_cache.disk t.cache

(* The journal talks to the world through closures: home blocks go
   through the buffer cache (write-through, so checkpoint and replay
   leave cache and media consistent); log-region blocks go straight to
   the device so log traffic never pollutes the LRU. *)
let make_journal ~cache ~sb ~bs ~flush_blocks ~flush_age ~now =
  let disk = Block_cache.disk cache in
  Journal.create
    {
      Journal.block_size = bs;
      home_read = (fun blk -> Block_cache.read cache blk);
      home_write = (fun blk buf -> Block_cache.write cache blk buf);
      log_read = (fun blk -> Disk.read disk blk);
      log_write = (fun blk buf -> Disk.write disk blk buf);
    }
    ~start:sb.journal_start ~blocks:sb.journal_blocks ~flush_blocks ~flush_age ~now ()

let mkfs ?(cache_capacity = 256) ?ninodes ?(inode_size = default_inode_size)
    ?(journal_blocks = 0) ?(journal_flush_blocks = 32) ?(journal_flush_age = 8) ~now disk =
  let bs = Disk.block_size disk in
  if bs < 512 || inode_size < default_inode_size || bs mod inode_size <> 0
     || journal_blocks < 0
     || (journal_blocks > 0 && journal_blocks < 4)
  then Error Errno.EINVAL
  else
    let nblocks = Disk.nblocks disk in
    let ninodes = match ninodes with Some n -> n | None -> max 16 (nblocks / 4) in
    let sb = layout ~bs ~nblocks ~ninodes ~inode_size ~journal_blocks in
    if sb.data_start >= sb.journal_start then Error Errno.ENOSPC
    else begin
      let cache = Block_cache.create ~capacity:cache_capacity disk in
      (* Format with direct write-through; the journal only starts
         intercepting once the image is complete. *)
      let t = { cache; sb; bs; now; journal = None } in
      let* () = Block_cache.write cache 0 (encode_sb bs sb) in
      (* Zero both bitmaps and the inode table. *)
      let zero = Bytes.make bs '\000' in
      let rec zero_range blk n =
        if n = 0 then Ok ()
        else
          let* () = Block_cache.write cache blk zero in
          zero_range (blk + 1) (n - 1)
      in
      let* () = zero_range sb.ibitmap_start sb.ibitmap_blocks in
      let* () = zero_range sb.bbitmap_start sb.bbitmap_blocks in
      let* () = zero_range sb.itable_start sb.itable_blocks in
      (* Reserve inode 0 and all metadata blocks. *)
      let* () = bit_update t ~start:sb.ibitmap_start 0 true in
      let rec mark blk =
        if blk >= sb.data_start then Ok ()
        else
          let* () = bit_update t ~start:sb.bbitmap_start blk true in
          mark (blk + 1)
      in
      let* () = mark 0 in
      (* Reserve the journal region so the allocator never hands it out. *)
      let rec mark_journal blk =
        if blk >= nblocks then Ok ()
        else
          let* () = bit_update t ~start:sb.bbitmap_start blk true in
          mark_journal (blk + 1)
      in
      let* () = mark_journal sb.journal_start in
      (* Root directory: inode 1, empty. *)
      let* () = bit_update t ~start:sb.ibitmap_start 1 true in
      let root_ino = { empty_ino with i_kind = 2; i_nlink = 1; i_mtime = now (); i_mode = 0o755; i_gen = 1 } in
      let* () = write_ino t 1 root_ino in
      if journal_blocks = 0 then Ok t
      else begin
        let j =
          make_journal ~cache ~sb ~bs ~flush_blocks:journal_flush_blocks
            ~flush_age:journal_flush_age ~now
        in
        let* () = Journal.format j in
        Ok { t with journal = Some j }
      end
    end

let mount ?(cache_capacity = 256) ?(journal_flush_blocks = 32) ?(journal_flush_age = 8)
    ~now disk =
  let bs = Disk.block_size disk in
  let cache = Block_cache.create ~capacity:cache_capacity disk in
  let* b = Block_cache.read cache 0 in
  let* sb = decode_sb b in
  if sb.nblocks <> Disk.nblocks disk then Error Errno.EINVAL
  else if sb.journal_blocks = 0 then Ok { cache; sb; bs; now; journal = None }
  else begin
    let j =
      make_journal ~cache ~sb ~bs ~flush_blocks:journal_flush_blocks
        ~flush_age:journal_flush_age ~now
    in
    (* Crash recovery: re-apply every sealed record group, discard any
       torn tail, and start with an empty log. *)
    let* (_applied : int) = Journal.recover j in
    Ok { cache; sb; bs; now; journal = Some j }
  end

let nfree_blocks t =
  count_clear_bits t ~start:t.sb.bbitmap_start ~nbitmap_blocks:t.sb.bbitmap_blocks
    ~limit:t.sb.nblocks

let nfree_inodes t =
  count_clear_bits t ~start:t.sb.ibitmap_start ~nbitmap_blocks:t.sb.ibitmap_blocks
    ~limit:(t.sb.ninodes + 1)

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let alloc_block t =
  let* found =
    bit_find_clear t ~start:t.sb.bbitmap_start ~nbitmap_blocks:t.sb.bbitmap_blocks
      ~limit:t.sb.nblocks
  in
  match found with
  | None -> Error Errno.ENOSPC
  | Some blk ->
    let* () = bit_update t ~start:t.sb.bbitmap_start blk true in
    Ok blk

let free_block t blk =
  if blk = 0 then Ok () else bit_update t ~start:t.sb.bbitmap_start blk false

let alloc_inode t ~kind ~mode ~uid =
  let* found =
    bit_find_clear t ~start:t.sb.ibitmap_start ~nbitmap_blocks:t.sb.ibitmap_blocks
      ~limit:(t.sb.ninodes + 1)
  in
  match found with
  | None -> Error Errno.ENFILE
  | Some inum ->
    let* () = bit_update t ~start:t.sb.ibitmap_start inum true in
    let* old = read_ino t inum in
    let ino =
      {
        empty_ino with
        i_kind = (match kind with Reg -> 1 | Dir -> 2);
        i_nlink = 1;
        i_mtime = t.now ();
        i_mode = mode;
        i_uid = uid;
        i_gen = old.i_gen + 1;
      }
    in
    let* () = write_ino t inum ino in
    Ok inum

(* ------------------------------------------------------------------ *)
(* Block mapping: 12 direct + 1 single indirect                        *)

let ptrs_per_block t = t.bs / 4

let max_file_blocks t = ndirect + ptrs_per_block t

(* Physical block for file block [n], or 0 if unmapped. *)
let bmap t ino n =
  if n < ndirect then Ok ino.i_direct.(n)
  else if n >= max_file_blocks t then Error Errno.EFBIG
  else if ino.i_indirect = 0 then Ok 0
  else
    let* b = bread t ino.i_indirect in
    Ok (Codec.get_u32 b (4 * (n - ndirect)))

(* Ensure file block [n] is mapped, allocating as needed.  Returns the
   physical block and the (possibly updated) inode. *)
let bmap_alloc t ino n =
  if n >= max_file_blocks t then Error Errno.EFBIG
  else if n < ndirect then
    if ino.i_direct.(n) <> 0 then Ok (ino.i_direct.(n), ino)
    else
      let* blk = alloc_block t in
      let direct = Array.copy ino.i_direct in
      direct.(n) <- blk;
      Ok (blk, { ino with i_direct = direct })
  else
    let* indirect, ino =
      if ino.i_indirect <> 0 then Ok (ino.i_indirect, ino)
      else
        let* blk = alloc_block t in
        let* () = bwrite t blk (Bytes.make t.bs '\000') in
        Ok (blk, { ino with i_indirect = blk })
    in
    let* b = bread_copy t indirect in
    let slot = 4 * (n - ndirect) in
    let existing = Codec.get_u32 b slot in
    if existing <> 0 then Ok (existing, ino)
    else
      let* blk = alloc_block t in
      Codec.set_u32 b slot blk;
      let* () = bwrite t indirect b in
      Ok (blk, ino)

(* ------------------------------------------------------------------ *)
(* File read / write / truncate                                        *)

let read_at t ino ~off ~len =
  if off < 0 || len < 0 then Error Errno.EINVAL
  else
    let len = min len (max 0 (ino.i_size - off)) in
    if len = 0 then Ok ""
    else begin
      let out = Bytes.make len '\000' in
      let rec copy pos =
        if pos >= len then Ok ()
        else
          let fpos = off + pos in
          let fblk = fpos / t.bs in
          let boff = fpos mod t.bs in
          let chunk = min (t.bs - boff) (len - pos) in
          let* phys = bmap t ino fblk in
          let* () =
            if phys = 0 then Ok () (* sparse: zeros *)
            else
              let* b = bread t phys in
              Bytes.blit b boff out pos chunk;
              Ok ()
          in
          copy (pos + chunk)
      in
      let* () = copy 0 in
      Ok (Bytes.to_string out)
    end

let write_at t inum ino ~off data =
  if off < 0 then Error Errno.EINVAL
  else begin
    let len = String.length data in
    let rec store ino pos =
      if pos >= len then Ok ino
      else
        let fpos = off + pos in
        let fblk = fpos / t.bs in
        let boff = fpos mod t.bs in
        let chunk = min (t.bs - boff) (len - pos) in
        let* was_mapped = bmap t ino fblk in
        let* phys, ino = bmap_alloc t ino fblk in
        let* buf =
          if chunk = t.bs || was_mapped = 0 then Ok (Bytes.make t.bs '\000')
          else bread_copy t phys
        in
        Bytes.blit_string data pos buf boff chunk;
        let* () = bwrite t phys buf in
        store ino (pos + chunk)
    in
    let* ino = store ino 0 in
    let ino = { ino with i_size = max ino.i_size (off + len); i_mtime = t.now () } in
    let* () = write_ino t inum ino in
    Ok ()
  end

(* Free all blocks at file-block index >= [keep]. *)
let free_blocks_from t ino ~keep =
  let rec free_direct n direct =
    if n >= ndirect then Ok direct
    else if n < keep || direct.(n) = 0 then free_direct (n + 1) direct
    else
      let* () = free_block t direct.(n) in
      direct.(n) <- 0;
      free_direct (n + 1) direct
  in
  let* direct = free_direct 0 (Array.copy ino.i_direct) in
  if ino.i_indirect = 0 then Ok { ino with i_direct = direct }
  else
    let* b = bread_copy t ino.i_indirect in
    let nptrs = ptrs_per_block t in
    let rec free_ind i any_kept =
      if i >= nptrs then Ok any_kept
      else
        let ptr = Codec.get_u32 b (4 * i) in
        if ndirect + i < keep then free_ind (i + 1) (any_kept || ptr <> 0)
        else if ptr = 0 then free_ind (i + 1) any_kept
        else
          let* () = free_block t ptr in
          Codec.set_u32 b (4 * i) 0;
          free_ind (i + 1) any_kept
    in
    let* any_kept = free_ind 0 false in
    if any_kept then
      let* () = bwrite t ino.i_indirect b in
      Ok { ino with i_direct = direct }
    else
      let* () = free_block t ino.i_indirect in
      Ok { ino with i_direct = direct; i_indirect = 0 }

let truncate_ino t inum ino len =
  if len < 0 then Error Errno.EINVAL
  else if len >= ino.i_size then
    (* Extension: the gap reads back as zeros (sparse or zero-padded). *)
    write_ino t inum { ino with i_size = len; i_mtime = t.now () }
  else begin
    let keep = (len + t.bs - 1) / t.bs in
    let* ino = free_blocks_from t ino ~keep in
    (* Zero the tail of the last kept block so later extension cannot
       resurrect stale bytes. *)
    let* () =
      if len mod t.bs = 0 then Ok ()
      else
        let* phys = bmap t ino (len / t.bs) in
        if phys = 0 then Ok ()
        else
          let* b = bread_copy t phys in
          Bytes.fill b (len mod t.bs) (t.bs - (len mod t.bs)) '\000';
          bwrite t phys b
    in
    write_ino t inum { ino with i_size = len; i_mtime = t.now () }
  end

let free_inode t inum ino =
  let* _ino = free_blocks_from t ino ~keep:0 in
  (* Keep the generation in the dead slot so reallocation bumps it. *)
  let* () = write_ino t inum { empty_ino with i_gen = ino.i_gen } in
  bit_update t ~start:t.sb.ibitmap_start inum false

(* ------------------------------------------------------------------ *)
(* Directories                                                         *)

(* Directory data is a packed entry list:
   u32 inum, u8 kind, u8 namelen, name bytes. *)

(* Directory data ends at a zero-inum terminator record (or at the data
   size).  The terminator makes in-place rewrites crash-safe: new content
   plus terminator is written first, and any stale tail bytes or a stale
   (larger) size field are simply never parsed. *)
let parse_dir data =
  let n = String.length data in
  let rec go pos acc =
    if pos + 6 > n then List.rev acc
    else begin
      let inum =
        Char.code data.[pos]
        lor (Char.code data.[pos + 1] lsl 8)
        lor (Char.code data.[pos + 2] lsl 16)
        lor (Char.code data.[pos + 3] lsl 24)
      in
      if inum = 0 then List.rev acc
      else begin
        let kind = if Char.code data.[pos + 4] = 2 then Dir else Reg in
        let namelen = Char.code data.[pos + 5] in
        if pos + 6 + namelen > n then
          (* Torn suffix: a crash cut off a record that was being
             appended.  Everything before it is intact. *)
          List.rev acc
        else
          let name = String.sub data (pos + 6) namelen in
          go (pos + 6 + namelen) ((name, inum, kind) :: acc)
      end
    end
  in
  go 0 []

let serialize_dir entries =
  let buf = Buffer.create 256 in
  let emit (name, inum, kind) =
    Buffer.add_char buf (Char.chr (inum land 0xff));
    Buffer.add_char buf (Char.chr ((inum lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr ((inum lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((inum lsr 24) land 0xff));
    Buffer.add_char buf (Char.chr (match kind with Reg -> 1 | Dir -> 2));
    Buffer.add_char buf (Char.chr (String.length name));
    Buffer.add_string buf name
  in
  List.iter emit entries;
  Buffer.contents buf

let valid_name name =
  let len = String.length name in
  len > 0 && len <= max_name && not (String.contains name '/')

let load_dir t inum =
  let* ino = read_live_ino t inum in
  if ino.i_kind <> 2 then Error Errno.ENOTDIR
  else
    let* data = read_at t ino ~off:0 ~len:ino.i_size in
    Ok (ino, parse_dir data)

(* Rewrite directory contents in place.  For a directory that fits in one
   block this is a single data-block write followed by bookkeeping: a
   crash in between leaves either the old or the new entry set, never a
   mixture and never an empty directory (see the terminator note above). *)
let store_dir t inum ino entries =
  if entries = [] then truncate_ino t inum ino 0
  else begin
    let data = serialize_dir entries ^ String.make 6 '\000' in
    let* () = write_at t inum ino ~off:0 data in
    let* ino = read_live_ino t inum in
    if ino.i_size > String.length data then truncate_ino t inum ino (String.length data)
    else Ok ()
  end

let dir_entries t inum =
  let* _ino, entries = load_dir t inum in
  Ok entries

let dir_lookup t inum name =
  let* _ino, entries = load_dir t inum in
  match List.find_opt (fun (n, _, _) -> n = name) entries with
  | Some (_, child, _) -> Ok child
  | None -> Error Errno.ENOENT

(* ------------------------------------------------------------------ *)
(* Public attribute operations                                         *)

let stat t inum =
  let* ino = read_live_ino t inum in
  Ok
    {
      kind = (if ino.i_kind = 2 then Dir else Reg);
      size = ino.i_size;
      nlink = ino.i_nlink;
      mtime = ino.i_mtime;
      mode = ino.i_mode;
      uid = ino.i_uid;
      gen = ino.i_gen;
    }

let set_mode t inum mode =
  with_txn t @@ fun () ->
  let* ino = read_live_ino t inum in
  write_ino t inum { ino with i_mode = mode land 0xffff }

let set_uid t inum uid =
  with_txn t @@ fun () ->
  let* ino = read_live_ino t inum in
  write_ino t inum { ino with i_uid = uid land 0xffff }

let set_mtime t inum mtime =
  with_txn t @@ fun () ->
  let* ino = read_live_ino t inum in
  write_ino t inum { ino with i_mtime = mtime }

let read t inum ~off ~len =
  let* ino = read_live_ino t inum in
  if ino.i_kind = 2 then Error Errno.EISDIR else read_at t ino ~off ~len

let write t inum ~off data =
  with_txn t @@ fun () ->
  let* ino = read_live_ino t inum in
  if ino.i_kind = 2 then Error Errno.EISDIR else write_at t inum ino ~off data

let truncate t inum len =
  with_txn t @@ fun () ->
  let* ino = read_live_ino t inum in
  if ino.i_kind = 2 then Error Errno.EISDIR else truncate_ino t inum ino len

(* ------------------------------------------------------------------ *)
(* Namespace operations                                                *)

let add_entry t dir name child kind =
  if not (valid_name name) then
    Error (if String.length name > max_name then Errno.ENAMETOOLONG else Errno.EINVAL)
  else
    let* ino, entries = load_dir t dir in
    if List.exists (fun (n, _, _) -> n = name) entries then Error Errno.EEXIST
    else store_dir t dir ino (entries @ [ (name, child, kind) ])

let create t ~dir name =
  with_txn t @@ fun () ->
  let* _ = load_dir t dir in
  let* exists = match dir_lookup t dir name with
    | Ok _ -> Ok true
    | Error Errno.ENOENT -> Ok false
    | Error _ as e -> e
  in
  if exists then Error Errno.EEXIST
  else
    let* inum = alloc_inode t ~kind:Reg ~mode:0o644 ~uid:0 in
    let* () = add_entry t dir name inum Reg in
    Ok inum

let mkdir t ~dir name =
  with_txn t @@ fun () ->
  let* _ = load_dir t dir in
  let* exists = match dir_lookup t dir name with
    | Ok _ -> Ok true
    | Error Errno.ENOENT -> Ok false
    | Error _ as e -> e
  in
  if exists then Error Errno.EEXIST
  else
    let* inum = alloc_inode t ~kind:Dir ~mode:0o755 ~uid:0 in
    let* () = add_entry t dir name inum Dir in
    Ok inum

let link t ~dir name target =
  with_txn t @@ fun () ->
  let* ino = read_live_ino t target in
  if ino.i_nlink >= 0xffff then Error Errno.EMLINK
  else
    let* () = add_entry t dir name target (if ino.i_kind = 2 then Dir else Reg) in
    write_ino t target { ino with i_nlink = ino.i_nlink + 1 }

let remove_entry t dir name =
  let* ino, entries = load_dir t dir in
  match List.find_opt (fun (n, _, _) -> n = name) entries with
  | None -> Error Errno.ENOENT
  | Some (_, child, kind) ->
    let entries = List.filter (fun (n, _, _) -> n <> name) entries in
    let* () = store_dir t dir ino entries in
    Ok (child, kind)

let drop_link t inum =
  let* ino = read_live_ino t inum in
  let nlink = ino.i_nlink - 1 in
  if nlink <= 0 then free_inode t inum ino
  else write_ino t inum { ino with i_nlink = nlink }

let unlink t ~dir name =
  with_txn t @@ fun () ->
  let* child = dir_lookup t dir name in
  let* ino = read_live_ino t child in
  if ino.i_kind = 2 then Error Errno.EISDIR
  else
    let* _ = remove_entry t dir name in
    drop_link t child

let rmdir t ~dir name =
  with_txn t @@ fun () ->
  let* child = dir_lookup t dir name in
  let* ino = read_live_ino t child in
  if ino.i_kind <> 2 then Error Errno.ENOTDIR
  else
    let* _ino, entries = load_dir t child in
    if ino.i_nlink <= 1 && entries <> [] then Error Errno.ENOTEMPTY
    else
      let* _ = remove_entry t dir name in
      drop_link t child

(* Check that replacing [d] (the existing destination) is legal, without
   yet touching anything. *)
let check_replaceable t ~src_is_dir d =
  let* dst_ino = read_live_ino t d in
  let dst_is_dir = dst_ino.i_kind = 2 in
  match src_is_dir, dst_is_dir with
  | true, false -> Error Errno.ENOTDIR
  | false, true -> Error Errno.EISDIR
  | true, true ->
    let* _ino, entries = load_dir t d in
    if dst_ino.i_nlink <= 1 && entries <> [] then Error Errno.ENOTEMPTY else Ok ()
  | false, false -> Ok ()

(* Journaled, the whole rename — including the shadow-file commit point
   below — is one transaction: the directory rewrite and the dropped
   link become durable together, closing the crash window that
   write-through ordering could only shrink (the "leaks the old inode"
   case in the same-directory-replace arm). *)
let rename t ~sdir ~sname ~ddir ~dname =
  with_txn t @@ fun () ->
  if not (valid_name dname) then Error Errno.EINVAL
  else
    let* src = dir_lookup t sdir sname in
    let* src_ino = read_live_ino t src in
    let src_is_dir = src_ino.i_kind = 2 in
    let src_kind = if src_is_dir then Dir else Reg in
    let* dst_existing =
      match dir_lookup t ddir dname with
      | Ok d -> Ok (Some d)
      | Error Errno.ENOENT -> Ok None
      | Error _ as e -> e
    in
    match dst_existing with
    | Some d when d = src ->
      (* Same object under both names: POSIX says do nothing. *)
      Ok ()
    | Some d when sdir = ddir ->
      (* The commit point of the shadow-file protocol: one directory
         rewrite retargets the name, and only afterwards is the replaced
         inode released.  A crash in between leaks the old inode but the
         name always resolves to a complete version. *)
      let* () = check_replaceable t ~src_is_dir d in
      let* ino, entries = load_dir t sdir in
      let entries =
        List.filter (fun (n, _, _) -> n <> sname && n <> dname) entries
        @ [ (dname, src, src_kind) ]
      in
      let* () = store_dir t sdir ino entries in
      drop_link t d
    | Some d ->
      let* () = check_replaceable t ~src_is_dir d in
      let* _ = remove_entry t ddir dname in
      let* () = drop_link t d in
      let* _ = remove_entry t sdir sname in
      add_entry t ddir dname src src_kind
    | None when sdir = ddir ->
      let* ino, entries = load_dir t sdir in
      let entries =
        List.map (fun (n, i, k) -> if n = sname then (dname, i, k) else (n, i, k)) entries
      in
      store_dir t sdir ino entries
    | None ->
      let* _ = remove_entry t sdir sname in
      add_entry t ddir dname src src_kind

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)

let journaled t = t.journal <> None

let sync t =
  match t.journal with
  | None -> Ok () (* write-through: every completed op is already on disk *)
  | Some j ->
    (* Force the group commit (every committed transaction becomes
       durable) and checkpoint (logged blocks go home, log empties). *)
    Journal.checkpoint j

let journal_tick t =
  match t.journal with None -> Ok () | Some j -> Journal.tick j

let journal_pending t =
  match t.journal with None -> false | Some j -> Journal.pending j

let journal_stats t =
  match t.journal with None -> [] | Some j -> Journal.stats j

let crash_reboot t =
  (* Power-failure semantics: the buffer cache and every journal
     structure that lives in memory are lost; whatever reached the
     device survives.  Replay then restores the last sealed group
     commit, exactly as a fresh [mount] would. *)
  Block_cache.invalidate t.cache;
  match t.journal with
  | None -> Ok ()
  | Some j ->
    Journal.crash j;
    let* (_applied : int) = Journal.recover j in
    Ok ()

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)

let check t =
  (* Walk the namespace from the root, counting references and reachable
     blocks, and compare against the bitmaps and stored link counts. *)
  let refcount = Hashtbl.create 64 in
  let bump inum = Hashtbl.replace refcount inum (1 + Option.value ~default:0 (Hashtbl.find_opt refcount inum)) in
  let reachable_blocks = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  let problems = ref [] in
  let complain fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let note_blocks ino =
    Array.iter (fun b -> if b <> 0 then Hashtbl.replace reachable_blocks b ()) ino.i_direct;
    if ino.i_indirect <> 0 then begin
      Hashtbl.replace reachable_blocks ino.i_indirect ();
      match bread t ino.i_indirect with
      | Error _ -> complain "unreadable indirect block %d" ino.i_indirect
      | Ok b ->
        for i = 0 to ptrs_per_block t - 1 do
          let p = Codec.get_u32 b (4 * i) in
          if p <> 0 then Hashtbl.replace reachable_blocks p ()
        done
    end
  in
  let rec walk inum =
    if not (Hashtbl.mem visited inum) then begin
      Hashtbl.replace visited inum ();
      match read_ino t inum with
      | Error _ -> complain "unreadable inode %d" inum
      | Ok ino ->
        if ino.i_kind = 0 then complain "reference to free inode %d" inum
        else begin
          note_blocks ino;
          if ino.i_kind = 2 then
            match load_dir t inum with
            | Error _ -> complain "unreadable directory %d" inum
            | Ok (_, entries) ->
              List.iter
                (fun (_, child, _) ->
                  bump child;
                  walk child)
                entries
        end
    end
  in
  bump 1;
  walk 1;
  (* Link counts. *)
  Hashtbl.iter
    (fun inum refs ->
      match read_ino t inum with
      | Error _ -> ()
      | Ok ino ->
        if ino.i_kind <> 0 && ino.i_nlink <> refs then
          complain "inode %d: nlink=%d but %d references" inum ino.i_nlink refs)
    refcount;
  (* Inode bitmap vs. reachability. *)
  for inum = 1 to t.sb.ninodes do
    match bit_test t ~start:t.sb.ibitmap_start inum with
    | Error _ -> complain "unreadable inode bitmap for %d" inum
    | Ok used ->
      let reachable = Hashtbl.mem visited inum in
      if used && not reachable then complain "inode %d allocated but unreachable" inum
      else if (not used) && reachable then complain "inode %d reachable but free" inum
  done;
  (* Block bitmap vs. reachability (metadata blocks are always used,
     and so is the journal region at the tail of the disk). *)
  for blk = t.sb.data_start to t.sb.journal_start - 1 do
    match bit_test t ~start:t.sb.bbitmap_start blk with
    | Error _ -> complain "unreadable block bitmap for %d" blk
    | Ok used ->
      let reachable = Hashtbl.mem reachable_blocks blk in
      if used && not reachable then complain "block %d allocated but unreferenced" blk
      else if (not used) && reachable then complain "block %d referenced but free" blk
  done;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))
