(** NFS client vnode layer.

    Exposes a remote export as a local vnode stack — this is how a Ficus
    logical layer talks to a physical layer on another host without
    either knowing the other is remote (paper §2.2: "any layer that uses
    a vnode interface can be unaware whether the immediately adjacent
    functional layers are local, or perhaps remote").

    Faithfully non-faithful, like the real thing:
    - [openv]/[closev] succeed locally and are {b never forwarded}
      (stateless protocol) — the reason for the {!Ctl_name} encoding;
    - attribute and name-lookup caches serve possibly-stale answers
      until a TTL expires, and there is no way for an upper layer to
      disable them ("not fully controllable", §2.2).  Set both TTLs to
      zero to model a cache-disabled mount. *)

type m
(** A client mount. *)

val mount :
  ?attr_ttl:int ->
  ?name_ttl:int ->
  ?data_ttl:int ->
  ?readdir_ttl:int ->
  ?max_retries:int ->
  ?obs:Obs.t ->
  Sim_net.t ->
  client:Sim_net.host_id ->
  server:Sim_net.host_id ->
  export:string ->
  (m, Errno.t) result
(** TTLs are in simulated clock ticks (attribute, name and readdir
    caches default to 30, matching SunOS's 3-second attribute cache at
    10 ticks/s; the file-block cache [data_ttl] defaults to 0 =
    disabled, so replication experiments see every read — enable it to
    study the §2.2 staleness).  Fails with [EUNREACHABLE] if the server
    cannot be reached, [ENOENT] for an unknown export.

    The readdir cache follows the name cache's discipline plus a
    mount-wide {e invalidation serial}: every namespace mutation made
    through this mount bumps the serial and drops the affected
    directory's listing, and a cached listing is served only while both
    its TTL and its fill-time serial are current — so a client always
    re-reads its own mutations, while cross-host staleness is bounded
    by the TTL exactly as for attributes and names.  Hits are counted
    in ["nfs.client.readdir_hits"] and mirrored into [obs]'s metrics
    registry (default {!Obs.default}).

    [max_retries] (default 3) bounds retransmissions of {e idempotent}
    requests (reads, lookups, absolute-offset writes) after an
    [EUNREACHABLE] RPC failure — the real client's timeout/retransmit
    loop.  Namespace mutations (create, remove, rename…) are never
    retransmitted.  On [ESTALE] or a still-unreachable server, every
    cached attribute, name and data block for the file handle involved
    is invalidated. *)

val root : m -> Vnode.t

val flush_caches : m -> unit
(** Drop the attribute, name, data and readdir caches (client reboot /
    explicit purge). *)

val counters : m -> Counters.t
(** ["nfs.client.calls"], ["nfs.client.attr_hits"],
    ["nfs.client.name_hits"], ["nfs.client.readdir_hits"],
    ["nfs.client.openclose_dropped"],
    ["nfs.client.retries"], ["nfs.client.backoff_ticks"] (modeled
    retransmission waiting), ["nfs.client.stale"]. *)
