type fh = string

type request =
  | Root of string
  | Getattr of fh
  | Setattr of fh * Vnode.setattr
  | Lookup of fh * string
  | Create of fh * string
  | Mkdir of fh * string
  | Remove of fh * string
  | Rmdir of fh * string
  | Rename of fh * string * fh * string
  | Link of fh * fh * string
  | Readdir of fh
  | Read of fh * int * int
  | Write of fh * int * string
  | Traced of int * request
      (* A request stamped with a causal trace span id.  NFS itself is
         stateless, so the only way a trace crosses the wire is inside
         the request — the same smuggling trick as the ctl-names. *)

type response =
  | R_ok
  | R_attrs of Vnode.attrs
  | R_node of fh * Vnode.attrs
  | R_dirents of Vnode.dirent list
  | R_data of string
  | R_error of Errno.t

type Sim_net.payload +=
  | Nfs_request of request
  | Nfs_response of response

(* Requests that mutate server state; the interesting ones to trace. *)
let rec is_update = function
  | Setattr _ | Create _ | Mkdir _ | Remove _ | Rmdir _ | Rename _ | Link _ | Write _ ->
    true
  | Root _ | Getattr _ | Lookup _ | Readdir _ | Read _ -> false
  | Traced (_, req) -> is_update req

(* Wire-size estimates for the simulated transport: a fixed per-message
   framing overhead (opcode + XID, roughly what an RPC header costs)
   plus every variable-length field.  The simulator never marshals, so
   these are the protocol's honest sizing of what WOULD travel — the
   transport-level cross-check for the propagation layer's own
   "prop.bytes" accounting. *)
let header_size = 16

let rec wire_size_request = function
  | Root e -> header_size + String.length e
  | Getattr fh | Readdir fh -> header_size + String.length fh
  | Setattr (fh, _) -> header_size + String.length fh + 16
  | Lookup (fh, n) | Create (fh, n) | Mkdir (fh, n) | Remove (fh, n) | Rmdir (fh, n)
    ->
    header_size + String.length fh + String.length n
  | Rename (s, sn, d, dn) ->
    header_size + String.length s + String.length sn + String.length d
    + String.length dn
  | Link (d, t, n) ->
    header_size + String.length d + String.length t + String.length n
  | Read (fh, _, _) -> header_size + String.length fh + 16
  | Write (fh, _, data) -> header_size + String.length fh + 8 + String.length data
  | Traced (_, req) -> 8 + wire_size_request req

let attrs_size = 32 (* kind + size + three timestamps, fixed-width *)

let wire_size_response = function
  | R_ok -> header_size
  | R_attrs _ -> header_size + attrs_size
  | R_node (fh, _) -> header_size + String.length fh + attrs_size
  | R_dirents entries ->
    List.fold_left
      (fun acc (e : Vnode.dirent) -> acc + String.length e.Vnode.entry_name + 8)
      header_size entries
  | R_data data -> header_size + String.length data
  | R_error _ -> header_size + 4

let rec pp_request ppf = function
  | Root e -> Fmt.pf ppf "ROOT %s" e
  | Getattr fh -> Fmt.pf ppf "GETATTR %s" fh
  | Setattr (fh, _) -> Fmt.pf ppf "SETATTR %s" fh
  | Lookup (fh, n) -> Fmt.pf ppf "LOOKUP %s %s" fh n
  | Create (fh, n) -> Fmt.pf ppf "CREATE %s %s" fh n
  | Mkdir (fh, n) -> Fmt.pf ppf "MKDIR %s %s" fh n
  | Remove (fh, n) -> Fmt.pf ppf "REMOVE %s %s" fh n
  | Rmdir (fh, n) -> Fmt.pf ppf "RMDIR %s %s" fh n
  | Rename (s, sn, d, dn) -> Fmt.pf ppf "RENAME %s/%s -> %s/%s" s sn d dn
  | Link (d, t, n) -> Fmt.pf ppf "LINK %s <- %s as %s" t d n
  | Readdir fh -> Fmt.pf ppf "READDIR %s" fh
  | Read (fh, off, len) -> Fmt.pf ppf "READ %s off=%d len=%d" fh off len
  | Write (fh, off, data) -> Fmt.pf ppf "WRITE %s off=%d len=%d" fh off (String.length data)
  | Traced (span, req) -> Fmt.pf ppf "TRACED %d %a" span pp_request req
