type fh = string

type request =
  | Root of string
  | Getattr of fh
  | Setattr of fh * Vnode.setattr
  | Lookup of fh * string
  | Create of fh * string
  | Mkdir of fh * string
  | Remove of fh * string
  | Rmdir of fh * string
  | Rename of fh * string * fh * string
  | Link of fh * fh * string
  | Readdir of fh
  | Read of fh * int * int
  | Write of fh * int * string
  | Traced of int * request
      (* A request stamped with a causal trace span id.  NFS itself is
         stateless, so the only way a trace crosses the wire is inside
         the request — the same smuggling trick as the ctl-names. *)

type response =
  | R_ok
  | R_attrs of Vnode.attrs
  | R_node of fh * Vnode.attrs
  | R_dirents of Vnode.dirent list
  | R_data of string
  | R_error of Errno.t

type Sim_net.payload +=
  | Nfs_request of request
  | Nfs_response of response

(* Requests that mutate server state; the interesting ones to trace. *)
let rec is_update = function
  | Setattr _ | Create _ | Mkdir _ | Remove _ | Rmdir _ | Rename _ | Link _ | Write _ ->
    true
  | Root _ | Getattr _ | Lookup _ | Readdir _ | Read _ -> false
  | Traced (_, req) -> is_update req

let rec pp_request ppf = function
  | Root e -> Fmt.pf ppf "ROOT %s" e
  | Getattr fh -> Fmt.pf ppf "GETATTR %s" fh
  | Setattr (fh, _) -> Fmt.pf ppf "SETATTR %s" fh
  | Lookup (fh, n) -> Fmt.pf ppf "LOOKUP %s %s" fh n
  | Create (fh, n) -> Fmt.pf ppf "CREATE %s %s" fh n
  | Mkdir (fh, n) -> Fmt.pf ppf "MKDIR %s %s" fh n
  | Remove (fh, n) -> Fmt.pf ppf "REMOVE %s %s" fh n
  | Rmdir (fh, n) -> Fmt.pf ppf "RMDIR %s %s" fh n
  | Rename (s, sn, d, dn) -> Fmt.pf ppf "RENAME %s/%s -> %s/%s" s sn d dn
  | Link (d, t, n) -> Fmt.pf ppf "LINK %s <- %s as %s" t d n
  | Readdir fh -> Fmt.pf ppf "READDIR %s" fh
  | Read (fh, off, len) -> Fmt.pf ppf "READ %s off=%d len=%d" fh off len
  | Write (fh, off, data) -> Fmt.pf ppf "WRITE %s off=%d len=%d" fh off (String.length data)
  | Traced (span, req) -> Fmt.pf ppf "TRACED %d %a" span pp_request req
