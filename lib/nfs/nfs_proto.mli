(** The simulated NFS wire protocol (Sandberg et al. 1985).

    Deliberately {e stateless}, like the original: there is no open, no
    close, and no server-side client state beyond the file-handle table.
    This is the semantic mismatch the paper works around (§2.2): a layer
    above NFS never receives open/close, so Ficus encodes them into
    [Lookup] names instead ({!Ctl_name}). *)

type fh = string
(** Opaque file handle.  Clients must not interpret it; servers encode
    export, slot and epoch so stale handles are detected. *)

type request =
  | Root of string                       (** mount: root fh of an export *)
  | Getattr of fh
  | Setattr of fh * Vnode.setattr
  | Lookup of fh * string
  | Create of fh * string
  | Mkdir of fh * string
  | Remove of fh * string
  | Rmdir of fh * string
  | Rename of fh * string * fh * string  (** src dir, src, dst dir, dst *)
  | Link of fh * fh * string             (** dir, target, new name *)
  | Readdir of fh
  | Read of fh * int * int               (** fh, offset, length *)
  | Write of fh * int * string           (** fh, offset, data *)
  | Traced of int * request
      (** a request carrying the causal trace span id of the update it
          belongs to; the stateless protocol has nowhere else to put it *)

type response =
  | R_ok
  | R_attrs of Vnode.attrs
  | R_node of fh * Vnode.attrs           (** lookup/create/mkdir result *)
  | R_dirents of Vnode.dirent list
  | R_data of string
  | R_error of Errno.t

type Sim_net.payload +=
  | Nfs_request of request
  | Nfs_response of response

val is_update : request -> bool
(** The request mutates server state (unwraps {!Traced}). *)

val wire_size_request : request -> int
val wire_size_response : response -> int
(** Wire-size estimates: a fixed framing overhead per message plus every
    variable-length field.  The simulator never marshals, so these size
    what {e would} travel; {!Nfs_client} feeds them into
    ["nfs.client.bytes_out"] / ["nfs.client.bytes_in"] as the
    transport-level cross-check of the propagation layer's own
    ["prop.bytes"] accounting. *)

val pp_request : Format.formatter -> request -> unit
