(** Stateless NFS server: exposes one or more vnode stacks ("exports")
    over the simulated network.

    The server is generic over whatever stack it exports — a bare UFS, or
    a Ficus physical layer, exactly as in paper Figure 2 where the NFS
    server sits between the logical and physical layers.  File handles
    index a per-server table stamped with an epoch; {!restart} simulates
    a server reboot, after which every outstanding handle is [ESTALE]. *)

type t

val create : ?obs:Obs.t -> Sim_net.t -> host:Sim_net.host_id -> t
(** Create the server and register its RPC handler on [host].  [obs]
    (default {!Obs.default}) receives the trace events of
    {!Nfs_proto.Traced} requests; the server re-establishes the caller's
    span context around the layers below it. *)

val host : t -> Sim_net.host_id

val add_export : t -> name:string -> Vnode.t -> unit
(** Export a stack root under [name]; replaces any previous export with
    the same name. *)

val restart : t -> unit
(** Forget every issued file handle (new epoch), as a stateless server
    does on reboot.  Exports survive — they are configuration. *)

val handle : t -> Nfs_proto.request -> Nfs_proto.response
(** The request dispatcher (exposed for direct-call tests; the network
    path goes through the registered RPC handler). *)

val issued_handles : t -> int
