open Nfs_proto

type m = {
  net : Sim_net.t;
  client : Sim_net.host_id;
  server : Sim_net.host_id;
  export : string;
  max_retries : int;
  attr_ttl : int;
  name_ttl : int;
  data_ttl : int;
  readdir_ttl : int;
  attr_cache : (fh, Vnode.attrs * int) Hashtbl.t;          (* fh -> attrs, expiry *)
  name_cache : (fh * string, fh * int) Hashtbl.t;          (* dir fh, name -> fh, expiry *)
  data_cache : (fh * int * int, string * int) Hashtbl.t;   (* fh, off, len -> data, expiry *)
  readdir_cache : (fh, Vnode.dirent list * int * int) Hashtbl.t;
      (* dir fh -> entries, mutation serial at fill, expiry *)
  mutable mutation_serial : int;
      (* bumped by every namespace mutation through this mount; a cached
         listing is served only while its serial still matches, so the
         client never re-reads its own mutations stale (the same
         discipline the name cache gets from targeted removals) *)
  counters : Counters.t;
  obs : Obs.t;
  mutable root_fh : fh;
}

type Vnode.vdata += Nfs_vnode of m * fh

let now m = Clock.now (Sim_net.clock m.net)

(* A retransmission is only safe when replaying the request cannot
   corrupt state.  This is the classical NFS idempotency split: reads
   and full-state writes (Setattr, Write at an absolute offset) replay
   harmlessly; namespace mutations do not (a replayed Create after a
   lost reply would see EEXIST, a replayed Remove ENOENT). *)
let rec idempotent = function
  | Root _ | Getattr _ | Lookup _ | Readdir _ | Read _ | Setattr _ | Write _ -> true
  | Create _ | Mkdir _ | Remove _ | Rmdir _ | Rename _ | Link _ -> false
  | Traced (_, req) -> idempotent req

let rpc m req =
  (* When an ambient trace is active, stamp its span id into the wire
     request so the server continues the same timeline. *)
  let req =
    match Span.ambient_id () with
    | 0 -> req
    | span ->
      if is_update req then Span.emit "nfs:rpc";
      Traced (span, req)
  in
  (* Bounded retry with exponential backoff on idempotent requests.  The
     shared clock is owned by the simulation driver, so the backoff is
     not spent on the clock; each retry stands for one timed-out
     retransmission, and the waiting it models is recorded in
     "nfs.client.backoff_ticks". *)
  let rec go tries =
    Counters.incr m.counters "nfs.client.calls";
    Counters.add m.counters "nfs.client.bytes_out" (wire_size_request req);
    match Sim_net.call m.net ~src:m.client ~dst:m.server (Nfs_request req) with
    | Error Errno.EUNREACHABLE when idempotent req && tries < m.max_retries ->
      Counters.incr m.counters "nfs.client.retries";
      Counters.add m.counters "nfs.client.backoff_ticks" (1 lsl tries);
      go (tries + 1)
    | Error _ as e -> e
    | Ok (Nfs_response resp) ->
      Counters.add m.counters "nfs.client.bytes_in" (wire_size_response resp);
      Ok resp
    | Ok _ -> Error Errno.EINVAL
  in
  go 0

let ( let* ) = Result.bind

(* Drop any cached state about [fh]; on ESTALE or update. *)
let forget_attrs m fh = Hashtbl.remove m.attr_cache fh

(* A namespace mutation under [fh]: the listing is gone and the
   mount-wide serial moves, invalidating any listing filled before now. *)
let dirty_dir m fh =
  m.mutation_serial <- m.mutation_serial + 1;
  Hashtbl.remove m.readdir_cache fh

let forget_data m fh =
  let stale =
    Hashtbl.fold
      (fun ((fh', _, _) as key) _ acc -> if fh' = fh then key :: acc else acc)
      m.data_cache []
  in
  List.iter (Hashtbl.remove m.data_cache) stale

(* Every cached fact about [fh], including name-cache entries resolving
   to it, is suspect once the server said ESTALE (its epoch moved — the
   handle is from before a restart) or stopped being reachable (we may
   reconnect to a restarted server). *)
let invalidate_fh m fh =
  forget_attrs m fh;
  forget_data m fh;
  Hashtbl.remove m.readdir_cache fh;
  let stale =
    Hashtbl.fold
      (fun key (fh', _) acc -> if fh' = fh then key :: acc else acc)
      m.name_cache []
  in
  List.iter (Hashtbl.remove m.name_cache) stale

let on_error m fh e =
  (match e with
   | Errno.ESTALE ->
     Counters.incr m.counters "nfs.client.stale";
     invalidate_fh m fh
   | Errno.EUNREACHABLE -> invalidate_fh m fh
   | _ -> ());
  Error e

let expect_ok m fh req =
  match rpc m req with
  | Error e -> on_error m fh e
  | Ok R_ok -> Ok ()
  | Ok (R_error e) -> on_error m fh e
  | Ok _ -> Error Errno.EINVAL

let cache_data m fh ~off ~len data =
  if m.data_ttl > 0 then
    Hashtbl.replace m.data_cache (fh, off, len) (data, now m + m.data_ttl)

let cached_data m fh ~off ~len =
  match Hashtbl.find_opt m.data_cache (fh, off, len) with
  | Some (data, expiry) when now m < expiry ->
    Counters.incr m.counters "nfs.client.data_hits";
    Some data
  | Some _ ->
    Hashtbl.remove m.data_cache (fh, off, len);
    None
  | None -> None

let cache_attrs m fh attrs =
  if m.attr_ttl > 0 then Hashtbl.replace m.attr_cache fh (attrs, now m + m.attr_ttl)

let cache_name m dir name fh =
  if m.name_ttl > 0 then Hashtbl.replace m.name_cache (dir, name) (fh, now m + m.name_ttl)

let cached_attrs m fh =
  match Hashtbl.find_opt m.attr_cache fh with
  | Some (attrs, expiry) when now m < expiry ->
    Counters.incr m.counters "nfs.client.attr_hits";
    Some attrs
  | Some _ ->
    Hashtbl.remove m.attr_cache fh;
    None
  | None -> None

let cache_readdir m fh entries =
  if m.readdir_ttl > 0 then
    Hashtbl.replace m.readdir_cache fh
      (entries, m.mutation_serial, now m + m.readdir_ttl)

let cached_readdir m fh =
  match Hashtbl.find_opt m.readdir_cache fh with
  | Some (entries, serial, expiry)
    when now m < expiry && serial = m.mutation_serial ->
    Counters.incr m.counters "nfs.client.readdir_hits";
    Metrics.incr m.obs.Obs.metrics "nfs.client.readdir_hits";
    Some entries
  | Some _ ->
    Hashtbl.remove m.readdir_cache fh;
    None
  | None -> None

let cached_name m dir name =
  match Hashtbl.find_opt m.name_cache (dir, name) with
  | Some (fh, expiry) when now m < expiry ->
    Counters.incr m.counters "nfs.client.name_hits";
    Some fh
  | Some _ ->
    Hashtbl.remove m.name_cache (dir, name);
    None
  | None -> None

let rec make m fh : Vnode.t =
  let sibling (v : Vnode.t) =
    match v.Vnode.data with
    | Nfs_vnode (m', fh') when m' == m -> Ok fh'
    | _ -> Error Errno.EXDEV
  in
  let node_result = function
    | R_node (child_fh, attrs) ->
      cache_attrs m child_fh attrs;
      Ok (child_fh, attrs)
    | R_error e -> on_error m fh e
    | _ -> Error Errno.EINVAL
  in
  {
    (Vnode.not_supported (Nfs_vnode (m, fh))) with
    getattr =
      (fun () ->
        match cached_attrs m fh with
        | Some attrs -> Ok attrs
        | None ->
          let* resp = rpc m (Getattr fh) in
          (match resp with
           | R_attrs attrs ->
             cache_attrs m fh attrs;
             Ok attrs
           | R_error e ->
             forget_attrs m fh;
             on_error m fh e
           | _ -> Error Errno.EINVAL));
    setattr =
      (fun sa ->
        forget_attrs m fh;
        expect_ok m fh (Setattr (fh, sa)));
    lookup =
      (fun name ->
        match cached_name m fh name with
        | Some child_fh -> Ok (make m child_fh)
        | None ->
          let* resp = rpc m (Lookup (fh, name)) in
          let* child_fh, _attrs = node_result resp in
          cache_name m fh name child_fh;
          Ok (make m child_fh));
    create =
      (fun name ->
        forget_attrs m fh;
        dirty_dir m fh;
        let* resp = rpc m (Create (fh, name)) in
        let* child_fh, _ = node_result resp in
        cache_name m fh name child_fh;
        Ok (make m child_fh));
    mkdir =
      (fun name ->
        forget_attrs m fh;
        dirty_dir m fh;
        let* resp = rpc m (Mkdir (fh, name)) in
        let* child_fh, _ = node_result resp in
        cache_name m fh name child_fh;
        Ok (make m child_fh));
    remove =
      (fun name ->
        forget_attrs m fh;
        Hashtbl.remove m.name_cache (fh, name);
        dirty_dir m fh;
        expect_ok m fh (Remove (fh, name)));
    rmdir =
      (fun name ->
        forget_attrs m fh;
        Hashtbl.remove m.name_cache (fh, name);
        dirty_dir m fh;
        expect_ok m fh (Rmdir (fh, name)));
    rename =
      (fun sname dst_dir dname ->
        let* dfh = sibling dst_dir in
        Hashtbl.remove m.name_cache (fh, sname);
        Hashtbl.remove m.name_cache (dfh, dname);
        forget_attrs m fh;
        forget_attrs m dfh;
        dirty_dir m fh;
        dirty_dir m dfh;
        expect_ok m fh (Rename (fh, sname, dfh, dname)));
    link =
      (fun target name ->
        let* tfh = sibling target in
        forget_attrs m fh;
        forget_attrs m tfh;
        dirty_dir m fh;
        expect_ok m fh (Link (fh, tfh, name)));
    readdir =
      (fun () ->
        match cached_readdir m fh with
        | Some entries -> Ok entries
        | None ->
          let* resp = rpc m (Readdir fh) in
          (match resp with
           | R_dirents entries ->
             cache_readdir m fh entries;
             Ok entries
           | R_error e -> on_error m fh e
           | _ -> Error Errno.EINVAL));
    read =
      (fun ~off ~len ->
        match cached_data m fh ~off ~len with
        | Some data -> Ok data
        | None ->
          let* resp = rpc m (Read (fh, off, len)) in
          (match resp with
           | R_data data ->
             cache_data m fh ~off ~len data;
             Ok data
           | R_error e -> on_error m fh e
           | _ -> Error Errno.EINVAL));
    write =
      (fun ~off data ->
        forget_attrs m fh;
        forget_data m fh;
        expect_ok m fh (Write (fh, off, data)));
    (* The stateless protocol has no open or close: both succeed locally
       and nothing reaches the server (paper §2.2). *)
    openv =
      (fun _ ->
        Counters.incr m.counters "nfs.client.openclose_dropped";
        Ok ());
    closev =
      (fun () ->
        Counters.incr m.counters "nfs.client.openclose_dropped";
        Ok ());
    fsync = (fun () -> Ok ());
    inactive = (fun () -> Ok ());
  }

let mount ?(attr_ttl = 30) ?(name_ttl = 30) ?(data_ttl = 0) ?(readdir_ttl = 30)
    ?(max_retries = 3) ?(obs = Obs.default) net ~client ~server ~export =
  if max_retries < 0 then invalid_arg "Nfs_client.mount";
  let m =
    {
      net;
      client;
      server;
      export;
      max_retries;
      attr_ttl;
      name_ttl;
      data_ttl;
      readdir_ttl;
      attr_cache = Hashtbl.create 64;
      name_cache = Hashtbl.create 64;
      data_cache = Hashtbl.create 64;
      readdir_cache = Hashtbl.create 16;
      mutation_serial = 0;
      counters = Counters.create ();
      obs;
      root_fh = "";
    }
  in
  let* resp = rpc m (Root export) in
  match resp with
  | R_node (fh, attrs) ->
    m.root_fh <- fh;
    cache_attrs m fh attrs;
    Ok m
  | R_error e -> Error e
  | _ -> Error Errno.EINVAL

let root m = make m m.root_fh

let flush_caches m =
  Hashtbl.reset m.attr_cache;
  Hashtbl.reset m.name_cache;
  Hashtbl.reset m.data_cache;
  Hashtbl.reset m.readdir_cache

let counters m = m.counters
