open Nfs_proto

type t = {
  net : Sim_net.t;
  host : Sim_net.host_id;
  exports : (string, Vnode.t) Hashtbl.t;
  table : (int, Vnode.t) Hashtbl.t;  (* slot -> vnode *)
  mutable next_slot : int;
  mutable epoch : int;
  obs : Obs.t;
}

let host t = t.host

let encode_fh t slot = Printf.sprintf "fh:%d:%d:%d" t.host t.epoch slot

let decode_fh t fh =
  match String.split_on_char ':' fh with
  | [ "fh"; h; e; s ] ->
    (match int_of_string_opt h, int_of_string_opt e, int_of_string_opt s with
     | Some h, Some e, Some s when h = t.host && e = t.epoch -> Some s
     | _, _, _ -> None)
  | _ -> None

let issue t v =
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  Hashtbl.replace t.table slot v;
  encode_fh t slot

let resolve t fh =
  match decode_fh t fh with
  | None -> Error Errno.ESTALE
  | Some slot ->
    (match Hashtbl.find_opt t.table slot with
     | None -> Error Errno.ESTALE
     | Some v -> Ok v)

let ( let* ) = Result.bind

let node_response t v =
  let* attrs = v.Vnode.getattr () in
  Ok (R_node (issue t v, attrs))

let rec handle t req : response =
  let result =
    match req with
    | Traced (span, req) ->
      (* Re-establish the caller's trace context for the layers below
         this server (physical layer, journal): the span id arrived on
         the wire because NFS has no other channel for it. *)
      let ctx =
        Span.make_ctx ~spans:t.obs.Obs.spans ~id:span
          ~host:(Sim_net.host_name t.net t.host)
          ~now:(fun () -> Clock.now (Sim_net.clock t.net))
      in
      Span.with_ctx ctx (fun () ->
          if is_update req then Span.emit "nfs:serve";
          Ok (handle t req))
    | Root name ->
      (match Hashtbl.find_opt t.exports name with
       | None -> Error Errno.ENOENT
       | Some v -> node_response t v)
    | Getattr fh ->
      let* v = resolve t fh in
      let* attrs = v.Vnode.getattr () in
      Ok (R_attrs attrs)
    | Setattr (fh, sa) ->
      let* v = resolve t fh in
      let* () = v.Vnode.setattr sa in
      Ok R_ok
    | Lookup (fh, name) ->
      let* v = resolve t fh in
      let* child = v.Vnode.lookup name in
      node_response t child
    | Create (fh, name) ->
      let* v = resolve t fh in
      let* child = v.Vnode.create name in
      node_response t child
    | Mkdir (fh, name) ->
      let* v = resolve t fh in
      let* child = v.Vnode.mkdir name in
      node_response t child
    | Remove (fh, name) ->
      let* v = resolve t fh in
      let* () = v.Vnode.remove name in
      Ok R_ok
    | Rmdir (fh, name) ->
      let* v = resolve t fh in
      let* () = v.Vnode.rmdir name in
      Ok R_ok
    | Rename (sfh, sname, dfh, dname) ->
      let* sv = resolve t sfh in
      let* dv = resolve t dfh in
      let* () = sv.Vnode.rename sname dv dname in
      Ok R_ok
    | Link (dfh, tfh, name) ->
      let* dv = resolve t dfh in
      let* tv = resolve t tfh in
      let* () = dv.Vnode.link tv name in
      Ok R_ok
    | Readdir fh ->
      let* v = resolve t fh in
      let* entries = v.Vnode.readdir () in
      Ok (R_dirents entries)
    | Read (fh, off, len) ->
      let* v = resolve t fh in
      let* data = v.Vnode.read ~off ~len in
      Ok (R_data data)
    | Write (fh, off, data) ->
      let* v = resolve t fh in
      let* () = v.Vnode.write ~off data in
      Ok R_ok
  in
  match result with Ok resp -> resp | Error e -> R_error e

let create ?(obs = Obs.default) net ~host =
  let t =
    {
      net;
      host;
      exports = Hashtbl.create 4;
      table = Hashtbl.create 64;
      next_slot = 0;
      epoch = 0;
      obs;
    }
  in
  let rpc ~src:_ payload =
    match payload with
    | Nfs_request req -> Some (Nfs_response (handle t req))
    | _ -> None
  in
  Sim_net.register_rpc net host rpc;
  t

let add_export t ~name root = Hashtbl.replace t.exports name root

let restart t =
  Hashtbl.reset t.table;
  t.epoch <- t.epoch + 1;
  t.next_slot <- 0

let issued_handles t = Hashtbl.length t.table
