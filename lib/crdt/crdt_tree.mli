(** Pure conflict-free replicated tree resolution, after Ahmed-Nacer,
    Martin & Urso, "File system on CRDT" (PAPERS.md).

    Ficus directory reconciliation merges each directory's entry set as
    a join-semilattice (OR-set with tombstone-wins), which converges
    per directory but leaves the {e tree} unconstrained: concurrent
    cross-renames can make the parent graph a DAG, orphan whole
    subtrees behind tombstoned parents, or create cycles that no
    replica can reach from the root.  This module is the pure decision
    kernel that repairs the graph into a tree, deterministically, from
    nothing but join-stable facts — so any two replicas that have seen
    the same set of links compute the same repair, and replicas that
    have seen {e different} subsets compute repairs whose effects are
    themselves joinable directory operations (tombstones and adds with
    deterministic births).

    Nodes are abstract [(issuer, uniq)] file ids; links are live
    directory entries naming a child directory.  Nothing here touches
    storage: the caller discovers links, applies decisions. *)

type node = int * int
(** A directory identified by its file id [(issuer, uniq)]. *)

type link = {
  l_parent : node;
  l_child : node;
  l_name : string;
  l_birth : int * int;  (** the entry's birth [(b_rid, b_seq)] *)
}
(** A live directory entry in [l_parent] naming child directory
    [l_child].  Births are allocated once per entry creation and never
    reused, so they are join-stable: every replica that has the entry
    has it with this exact birth. *)

type decision =
  | Keep of link      (** the winning parent link; no action needed *)
  | Demote of link    (** a losing live link: tombstone it *)
  | Attach of node
      (** re-parent this node into the conflict orphanage with a
          deterministic name and birth derived from its id *)

type resolution = {
  decisions : decision list;
  cycles_broken : int;  (** cycles in the winner graph that were cut *)
  orphans : int;        (** nodes with no live parent link anywhere *)
  losers : int;         (** live links demoted (multi-parent + cycle cuts) *)
}

val compare_link : link -> link -> int
(** The deterministic total order used to pick one winning parent per
    node: orphanage links first (a completed repair is never undone by
    a later merge — the anti-oscillation rule), then descending birth
    sequence (the per-origin update counter, our join-stable proxy for
    vv dominance: a later rename by the same origin always has a
    larger [b_seq]), then origin host id, then parent fid.  Every
    replica sorts any common subset of links identically. *)

val resolve :
  root:node -> orphanage:node -> nodes:node list -> links:link list -> resolution
(** [resolve ~root ~orphanage ~nodes ~links] decides a repair.

    [nodes] is every directory the caller can see (link endpoints are
    added implicitly); [links] every {e live} parent link among them.
    The result re-roots every node: one winning parent each (extra
    live parents demoted), nodes with no live parent attached to the
    orphanage, and cycles in the winner graph cut by attaching the
    smallest fid of each cycle to the orphanage (demoting the link the
    cycle entered it by).  The orphanage and the root are fixed points
    and never re-parented.  Decisions are ordered: [Attach]es first
    (parents must exist before children move), then [Demote]s, then
    [Keep]s. *)
