type t =
  | Lww
  | Owner_report
  | App_merge of (string -> string -> string)

let name = function
  | Lww -> "lww"
  | Owner_report -> "owner-report"
  | App_merge _ -> "app-merge"
