(** Pluggable file-conflict resolvers for the CRDT merge path.

    When reconciliation finds two concurrent versions of a file, the
    resolver decides what happens to the multi-value register:

    - [Lww]: install {!Mv_register.winner} with the joined version
      vector — fully automatic, deterministic on every replica, no
      pending conflict left behind.
    - [Owner_report]: the paper's behavior — leave the register
      pending in {!Conflict_log} for the owner to resolve (via
      [ficusctl resolve] or {!Reconcile.resolve_file_conflict}).
    - [App_merge f]: fold the application's merge callback over the
      register ({!Mv_register.merge_all}) and install the result —
      deterministic as long as [f] is. *)

type t =
  | Lww
  | Owner_report
  | App_merge of (string -> string -> string)

val name : t -> string
(** ["lww"], ["owner-report"], ["app-merge"] — for counters and spans. *)
