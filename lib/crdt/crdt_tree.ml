(* Deterministic tree repair over join-stable link facts.  See the mli
   for the model; the algorithm:

     1. group live links by child; pick one winner per child by
        [compare_link] (orphanage-priority, then birth order);
     2. fixpoint reachability from {root, orphanage} over winner links;
     3. unreached nodes with no candidate at all -> Attach (orphan);
        their subtrees attach through them;
     4. anything still unreached is on or behind a cycle in the winner
        graph: walk the winner chain to find the cycle, attach its
        smallest node to the orphanage and demote the winner link that
        closed the cycle; repeat until everything is reached.

   Every choice reads only data that joins identically on all replicas
   (link sets, births, fids), so two replicas with the same knowledge
   emit the same decisions, and the decisions themselves (tombstones,
   orphanage adds with births derived from the child fid) are joinable
   directory operations — partial-knowledge replicas converge by
   merging each other's repairs. *)

type node = int * int

type link = {
  l_parent : node;
  l_child : node;
  l_name : string;
  l_birth : int * int;
}

type decision = Keep of link | Demote of link | Attach of node

type resolution = {
  decisions : decision list;
  cycles_broken : int;
  orphans : int;
  losers : int;
}

let node_compare (a1, a2) (b1, b2) =
  match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c

let compare_link a b =
  (* Winner-first order.  Orphanage priority is handled inside
     [resolve] (it knows the orphanage id); here: descending birth seq,
     then ascending origin rid, then parent fid — a strict total order
     because births are unique per entry. *)
  let a_rid, a_seq = a.l_birth and b_rid, b_seq = b.l_birth in
  match Int.compare b_seq a_seq with
  | 0 ->
    (match Int.compare a_rid b_rid with
     | 0 -> node_compare a.l_parent b.l_parent
     | c -> c)
  | c -> c

module NodeMap = Map.Make (struct
  type t = node

  let compare = node_compare
end)

module NodeSet = Set.Make (struct
  type t = node

  let compare = node_compare
end)

let resolve ~root ~orphanage ~nodes ~links =
  (* Universe: declared nodes plus every link endpoint, minus the two
     fixed points. *)
  let universe =
    List.fold_left
      (fun acc l -> NodeSet.add l.l_parent (NodeSet.add l.l_child acc))
      (NodeSet.of_list nodes) links
  in
  let universe = NodeSet.remove root (NodeSet.remove orphanage universe) in
  (* Candidates per child, winner-first. *)
  let by_child =
    List.fold_left
      (fun acc l ->
        if node_compare l.l_child root = 0 || node_compare l.l_child orphanage = 0
        then acc (* the root and the orphanage are never re-parented *)
        else
          NodeMap.update l.l_child
            (function None -> Some [ l ] | Some ls -> Some (l :: ls))
            acc)
      NodeMap.empty links
  in
  let order ls =
    let orph, rest =
      List.partition (fun l -> node_compare l.l_parent orphanage = 0) ls
    in
    List.sort compare_link orph @ List.sort compare_link rest
  in
  let by_child = NodeMap.map order by_child in
  let winner = ref (NodeMap.map List.hd by_child) in
  (* Nodes whose parent is (or becomes) the orphanage are anchors, as
     are the root and the orphanage themselves: descendants place
     through them. *)
  let anchors = ref (NodeSet.add root (NodeSet.singleton orphanage)) in
  let demoted = ref [] in
  let attached = ref [] in
  let cycles = ref 0 in
  let orphans = ref 0 in
  let attach_to_orphanage n =
    attached := n :: !attached;
    anchors := NodeSet.add n !anchors;
    (match NodeMap.find_opt n !winner with
     | Some l -> demoted := l :: !demoted
     | None -> ());
    winner := NodeMap.remove n !winner
  in
  (* Fixpoint: a node is placed iff it is an anchor or its winner's
     parent is placed. *)
  let placed () =
    let placed = ref !anchors in
    let again = ref true in
    while !again do
      again := false;
      NodeMap.iter
        (fun child l ->
          if (not (NodeSet.mem child !placed)) && NodeSet.mem l.l_parent !placed
          then begin
            placed := NodeSet.add child !placed;
            again := true
          end)
        !winner
    done;
    !placed
  in
  (* Pass 1: nodes with no live parent link at all are orphans. *)
  NodeSet.iter
    (fun n ->
      if not (NodeMap.mem n !winner) then begin
        incr orphans;
        attached := n :: !attached;
        anchors := NodeSet.add n !anchors
      end)
    universe;
  (* Pass 2: cut cycles until the winner graph places everything.  Each
     iteration removes one node from the cyclic part, so it
     terminates. *)
  let continue = ref true in
  while !continue do
    let p = placed () in
    let unplaced = NodeSet.filter (fun n -> not (NodeSet.mem n p)) universe in
    if NodeSet.is_empty unplaced then continue := false
    else begin
      (* Walk a winner chain from some unplaced node: it must revisit a
         node (a chain reaching an anchor would have been placed). *)
      let start = NodeSet.min_elt unplaced in
      let rec chase seen n =
        if NodeSet.mem n seen then
          (* [n] closes a cycle; collect the cycle's members by walking
             the winners from [n] around back to [n]. *)
          let rec members acc m =
            let l = NodeMap.find m !winner in
            if node_compare l.l_parent n = 0 then m :: acc
            else members (m :: acc) l.l_parent
          in
          members [] n
        else chase (NodeSet.add n seen) (NodeMap.find n !winner).l_parent
      in
      let cycle = chase NodeSet.empty start in
      let victim =
        List.fold_left
          (fun a b -> if node_compare b a < 0 then b else a)
          (List.hd cycle) cycle
      in
      incr cycles;
      attach_to_orphanage victim
    end
  done;
  (* Every non-winning live link is a loser. *)
  NodeMap.iter
    (fun child ls ->
      match NodeMap.find_opt child !winner with
      | Some w -> List.iter (fun l -> if l != w then demoted := l :: !demoted) ls
      | None ->
        (* [child] was attached to the orphanage; every non-orphanage
           link loses (the one its cycle entered by is already in). *)
        List.iter
          (fun l ->
            if node_compare l.l_parent orphanage <> 0 && not (List.memq l !demoted)
            then demoted := l :: !demoted)
          ls)
    by_child;
  let keeps = NodeMap.fold (fun _ l acc -> Keep l :: acc) !winner [] in
  let decisions =
    List.map (fun n -> Attach n) (List.sort_uniq node_compare !attached)
    @ List.map (fun l -> Demote l) (List.rev !demoted)
    @ keeps
  in
  {
    decisions;
    cycles_broken = !cycles;
    orphans = !orphans;
    losers = List.length !demoted;
  }
