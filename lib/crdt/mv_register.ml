module Vv = Version_vector

type version = { mv_vv : Vv.t; mv_data : string }

type t = version list (* invariant: pairwise concurrent *)

let empty = []

let digest s = Digest.to_hex (Digest.string s)

let lww_compare a b =
  match Int.compare (Vv.sum b.mv_vv) (Vv.sum a.mv_vv) with
  | 0 ->
    (match String.compare (digest a.mv_data) (digest b.mv_data) with
     | 0 -> String.compare (Vv.encode a.mv_vv) (Vv.encode b.mv_vv)
     | c -> c)
  | c -> c

let add t v =
  let rec go acc = function
    | [] -> List.rev (v :: acc)
    | w :: rest ->
      (match Vv.compare_vv v.mv_vv w.mv_vv with
       | Vv.Dominated -> List.rev_append acc (w :: rest) (* v adds nothing *)
       | Vv.Equal ->
         (* Same history: keep one representative, deterministically. *)
         let keep = if lww_compare v w <= 0 then v else w in
         List.rev_append acc (keep :: rest)
       | Vv.Dominates -> go acc rest (* w is superseded *)
       | Vv.Concurrent -> go (w :: acc) rest)
  in
  go [] t

let join a b = List.fold_left add a b
let versions t = List.sort lww_compare t
let cardinal = List.length
let winner t = match versions t with [] -> None | v :: _ -> Some v

let merge_all f t =
  match versions t with
  | [] -> None
  | first :: rest ->
    List.fold_left
      (fun acc v ->
        { mv_vv = Vv.merge acc.mv_vv v.mv_vv; mv_data = f acc.mv_data v.mv_data })
      first rest
    |> Option.some
