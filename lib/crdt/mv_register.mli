(** Multi-value registers for concurrently updated files.

    A register holds the maximal antichain of versions seen for one
    file: joining in a version drops everything it dominates and is
    dropped if dominated, so two replicas exchanging registers converge
    to the same antichain regardless of order — the classic MV-register
    CRDT, with Ficus version vectors as the causal order.

    On top of the antichain, [winner] is the deterministic last-writer-
    wins pick every replica agrees on without communicating: largest
    total update count first (the vector that has absorbed the most
    history), then content digest, then the encoded vector — a total
    order over join-stable data only. *)

type version = { mv_vv : Version_vector.t; mv_data : string }

type t
(** A maximal antichain of concurrent versions. *)

val empty : t

val add : t -> version -> t
(** Join one version in: dominated versions (either direction) are
    dropped; a duplicate history (equal vv) keeps the
    lexicographically-smaller-digest data so ties break identically
    everywhere. *)

val join : t -> t -> t
val versions : t -> version list
(** The antichain, in [lww_compare] winner-first order. *)

val cardinal : t -> int

val lww_compare : version -> version -> int
(** Winner-first total order: descending [Version_vector.sum], then
    data digest, then encoded vector. *)

val winner : t -> version option
(** The last-writer-wins pick; [None] on an empty register. *)

val merge_all : (string -> string -> string) -> t -> version option
(** App-level merge: fold the user callback over the antichain in
    [lww_compare] order (so every replica folds identically); the
    result's vector is the join of every input's.  [None] when empty. *)
