(** Epidemic membership and peer liveness.

    The paper's stance on replicated state is epidemic: update hints are
    a best-effort multicast and everything converges by periodic
    pairwise reconciliation (§2.5, §3.2).  This module applies the same
    discipline to the {e membership} metadata itself — which hosts
    exist, which volume replicas each one stores, and whether each is
    believed alive — instead of the seed's synchronous peer-list
    fan-out.

    Each host keeps a {b membership table}: one {!entry} per known host,
    owned (mutated) only by that host and stamped with an
    [(incarnation, heartbeat)] pair.  Entries are exchanged by {b
    anti-entropy}: every [period] ticks a host picks a random peer and
    runs a three-message digest push/pull (Syn: digest; Ack: fresher
    entries + wanted hosts; Ack2: the requested entries) over unreliable
    {!Sim_net} datagrams.  The join on concurrent entries is a max over
    a total order, so exchange is commutative, associative and
    idempotent — any delivery order, duplicates included, converges.

    A {b failure detector} piggybacks on the same traffic: hearing from
    a peer directly, or learning a strictly fresher entry for it
    indirectly, refreshes its last-heard tick.  A peer silent for
    [suspect_missed] gossip periods becomes {!Suspect}, for
    [dead_missed] periods {!Dead}; a fresher incarnation or heartbeat
    refutes either.  Consumers read the verdict via {!liveness} and must
    treat it as a hint only (skip doubtful peers first, fall back to
    everyone) so one-copy availability is never sacrificed to a false
    suspicion. *)

(** {1 Liveness verdicts} *)

type liveness = Alive | Suspect | Dead

val liveness_to_string : liveness -> string
val pp_liveness : Format.formatter -> liveness -> unit

(** {1 Membership entries} *)

type status =
  | Member  (** participating host *)
  | Left    (** departed for good; beats [Member] at an equal stamp *)

type entry = {
  e_host : string;          (** owning host; only it mutates the entry *)
  e_incarnation : int;      (** bumped by the owner to refute stale news *)
  e_heartbeat : int;        (** bumped by the owner every gossip round *)
  e_status : status;
  e_replicas : (int * int * int) list;
      (** volume replicas stored on the host, as sorted
          [(allocator, volume, replica-id)] triples — kept as raw ints
          so this library sits below [Ids] in the dependency order *)
  e_cindex : int;
      (** highest control-plane committed index this host has observed —
          the bridge by which raft-committed control state reaches
          non-coordinators: it rides ordinary anti-entropy and lets any
          host compare the freshness of a gossip-learned view against a
          coordinator's committed index.  0 on gossip-only clusters. *)
  e_span : int;  (** span of the membership delta this entry carries *)
}

val entry_key :
  entry -> int * int * int * (int * int * int) list * int * int
(** Total order used by {!entry_join}: incarnation, heartbeat, status
    rank ([Left] above [Member]), replicas, control index, span. *)

val entry_join : entry -> entry -> entry
(** Least upper bound of two entries for the same host (max by
    {!entry_key}).  Raises [Invalid_argument] on differing hosts. *)

val entry_fresher : entry -> entry -> bool
(** [entry_fresher a b]: does [a] carry strictly newer evidence of life
    — a greater [(incarnation, heartbeat)] stamp — than [b]? *)

(** {1 Configuration} *)

type config = {
  period : int;          (** clock ticks between gossip rounds *)
  suspect_missed : int;  (** silent periods before [Suspect] *)
  dead_missed : int;     (** silent periods before [Dead] *)
  dead_probe_one_in : int;
      (** 1/n of partner picks ignore liveness entirely, so a
          wrongly-declared-dead peer is still probed and can refute *)
}

val default_config : config
(** [{ period = 4; suspect_missed = 3; dead_missed = 8;
      dead_probe_one_in = 4 }] *)

(** {1 The per-host daemon} *)

type t

val create :
  ?config:config -> ?seed:int -> obs:Obs.t -> net:Sim_net.t ->
  Sim_net.host_id -> t
(** Create the gossip daemon for one simulated host and register its
    datagram handler on [net].  The daemon starts knowing only itself
    (status [Member], no replicas); acquaintances arrive epidemically,
    or immediately via {!introduce} at bootstrap. *)

val host : t -> string
val config : t -> config

val introduce : t -> t -> unit
(** Bootstrap shortcut for the simulation harness: hand each daemon the
    other's current self-entry, as if a join datagram had been
    delivered.  Everything after first contact is epidemic. *)

val set_replicas :
  t -> ?label:string -> ?cindex:int -> (int * int * int) list -> unit
(** Local membership delta: replace this host's replica set, bump its
    heartbeat and start a fresh span (labelled [label], default
    ["member:update"]) that travels with the entry — remote hosts append
    a ["gossip:learn"] event when the delta first reaches them.
    [cindex], when given, raises the entry's control-index high-water
    mark (it never lowers — the mark is monotone). *)

val leave : t -> unit
(** Mark this host [Left].  The tombstone spreads epidemically and wins
    over any [Member] entry with the same stamp. *)

val tick : t -> int
(** Drive the daemon: refresh liveness verdicts (recording
    suspect/dead/alive transitions in the metrics registry and span
    store) and, when a period boundary has passed, bump the local
    heartbeat and start an anti-entropy exchange with one partner.
    Returns the number of rounds begun (0 or 1). *)

val next_due : t -> int
(** The earliest clock tick at which {!tick} could possibly act: the
    next round boundary, or the earliest tick a silent peer crosses a
    suspect/dead threshold — whichever comes first.  Datagram arrival
    resets it to the current tick (a merge may flip a verdict
    immediately).  Calling {!tick} while [Clock.now < next_due] is
    guaranteed to be a no-op, which is what lets a driver skip idle
    daemons without changing a single observable (rounds fire at the
    same ticks, transitions are recorded at the same ticks, the PRNG is
    consumed identically). *)

val peers_version : t -> int
(** Monotone counter bumped whenever the table changes in a way
    {!replica_peers} or {!view} could observe: an entry learned, or a
    merge/local delta that changed a status or replica set.  Heartbeat
    refreshes do not bump it, so a consumer may cache derived peer lists
    keyed on this version instead of re-deriving every tick. *)

val liveness : t -> string -> liveness
(** Current verdict for a host name.  Unknown hosts — and the local host
    itself — are [Alive]: suspicion requires evidence. *)

val last_heard : t -> string -> int option

val membership : t -> entry list
(** The local table, sorted by host name (self included). *)

val view : t -> (string * int * status * (int * int * int) list) list
(** Heartbeat-free projection [(host, incarnation, status, replicas)],
    sorted by host: two tables agree on membership iff their views are
    equal, even though heartbeats keep counting. *)

val control_index : t -> int
(** The highest control-plane committed index any entry in the local
    table vouches for (own entry included) — how fresh a committed
    control view this host has provably seen.  0 when no coordinator
    state has ever reached it. *)

val replica_peers : t -> alloc:int -> vol:int -> (int * string) list
(** Who stores volume [(alloc, vol)], according to the local table:
    [(replica-id, host)] pairs from every [Member] entry, sorted by
    replica id. *)
