(* Epidemic membership & anti-entropy peer state.  See gossip.mli for
   the model; the short version: every host owns exactly one entry,
   stamps it with (incarnation, heartbeat), and tables converge by
   periodic random push/pull because the per-entry join is a max over a
   total order. *)

let src = Logs.Src.create "gossip" ~doc:"Epidemic membership"

module Log = (val Logs.src_log src : Logs.LOG)

type liveness = Alive | Suspect | Dead

let liveness_to_string = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

let pp_liveness fmt l = Format.pp_print_string fmt (liveness_to_string l)

type status = Member | Left

type entry = {
  e_host : string;
  e_incarnation : int;
  e_heartbeat : int;
  e_status : status;
  e_replicas : (int * int * int) list;
  e_cindex : int;
  e_span : int;
}

let status_rank = function Member -> 0 | Left -> 1

(* The join below is [max] by this key, which makes it a semilattice:
   commutative, associative, idempotent.  That is the whole correctness
   argument for anti-entropy — any delivery order with any duplication
   converges — and the qcheck suite checks it mechanically.  Status,
   replicas and the control index participate so even stamp ties (which
   owner-only mutation should never produce, but dropped-and-reordered
   wires might) resolve identically everywhere. *)
let entry_key e =
  ( e.e_incarnation,
    e.e_heartbeat,
    status_rank e.e_status,
    e.e_replicas,
    e.e_cindex,
    e.e_span )

let entry_join a b =
  if not (String.equal a.e_host b.e_host) then
    invalid_arg "Gossip.entry_join: different hosts";
  if compare (entry_key a) (entry_key b) >= 0 then a else b

let entry_fresher a b =
  compare (a.e_incarnation, a.e_heartbeat) (b.e_incarnation, b.e_heartbeat) > 0

type config = {
  period : int;
  suspect_missed : int;
  dead_missed : int;
  dead_probe_one_in : int;
}

let default_config =
  { period = 4; suspect_missed = 3; dead_missed = 8; dead_probe_one_in = 4 }

type peer_state = {
  mutable p_entry : entry;
  mutable p_last_heard : int;
  mutable p_liveness : liveness;
}

type t = {
  g_host : string;
  g_id : Sim_net.host_id;
  g_net : Sim_net.t;
  g_clock : Clock.t;
  g_obs : Obs.t;
  g_config : config;
  g_rng : Random.State.t;
  g_table : (string, peer_state) Hashtbl.t;
  mutable g_next_round : int;
  mutable g_next_due : int;
      (* earliest tick at which tick can do anything: the next round
         boundary, or the earliest liveness-threshold crossing among
         peers.  Datagram arrival resets it to now (a merge can change
         verdicts immediately).  Conservative: running tick earlier is
         always a no-op. *)
  mutable g_peers_version : int;
      (* bumped whenever the table changes in a way replica_peers or
         view could observe (entry learned, status or replica-set
         changed) — lets consumers cache derived peer lists *)
}

(* Wire protocol: three asynchronous datagrams per exchange.  A digest
   carries stamps only; full entries travel in the two delta legs. *)

type digest_item = { d_host : string; d_incarnation : int; d_heartbeat : int }

type Sim_net.payload +=
  | Gossip_syn of { g_from : string; g_digest : digest_item list }
  | Gossip_ack of { g_from : string; g_delta : entry list; g_want : string list }
  | Gossip_ack2 of { g_from : string; g_delta : entry list }

let now t = Clock.now t.g_clock
let metrics t = t.g_obs.Obs.metrics
let spans t = t.g_obs.Obs.spans

let self t = Hashtbl.find t.g_table t.g_host

let host t = t.g_host
let config t = t.g_config

let find_id t name =
  List.find_opt
    (fun id -> String.equal (Sim_net.host_name t.g_net id) name)
    (Sim_net.hosts t.g_net)

(* Failure detection: verdicts derive from the last-heard tick, so any
   direct message — or an indirectly learned fresher entry — refutes
   suspicion.  Transitions are recorded in both halves of Obs. *)

let verdict t ps =
  if String.equal ps.p_entry.e_host t.g_host then Alive
  else if ps.p_entry.e_status = Left then Dead
  else
    let age = now t - ps.p_last_heard in
    if age < t.g_config.period * t.g_config.suspect_missed then Alive
    else if age < t.g_config.period * t.g_config.dead_missed then Suspect
    else Dead

let refresh_liveness t =
  Hashtbl.iter
    (fun _ ps ->
      let next = verdict t ps in
      if next <> ps.p_liveness then begin
        let label =
          Printf.sprintf "gossip:%s" (liveness_to_string next)
        in
        Metrics.incr (metrics t)
          (match next with
          | Suspect -> "gossip.suspect_events"
          | Dead -> "gossip.dead_events"
          | Alive -> "gossip.alive_events");
        let span = Span.start (spans t) ~host:t.g_host ~tick:(now t) label in
        Span.event (spans t) span ~host:t.g_host ~tick:(now t)
          (Printf.sprintf "%s judges %s %s" t.g_host ps.p_entry.e_host
             (liveness_to_string next));
        Log.debug (fun m ->
            m "%s: %s is now %s" t.g_host ps.p_entry.e_host
              (liveness_to_string next));
        ps.p_liveness <- next
      end)
    t.g_table

let note_heard t name =
  t.g_next_due <- now t;
  match Hashtbl.find_opt t.g_table name with
  | Some ps when not (String.equal name t.g_host) ->
      ps.p_last_heard <- now t
  | _ -> ()

(* Merge one received entry.  Owner-only mutation means a fresher entry
   is always strictly better news; the join keeps the table a lattice
   even when it is not. *)
let merge t e =
  t.g_next_due <- now t;
  if String.equal e.e_host t.g_host then begin
    (* Someone is spreading fresher news about us than we ourselves
       hold — a stale [Left] tombstone, or state from before a restart.
       We are demonstrably alive, so refute with a higher incarnation
       (the version-vector move: dominate, don't argue). *)
    let ps = self t in
    if compare (entry_key e) (entry_key ps.p_entry) > 0 then begin
      ps.p_entry <-
        {
          ps.p_entry with
          e_incarnation = e.e_incarnation + 1;
          e_heartbeat = ps.p_entry.e_heartbeat + 1;
        };
      Metrics.incr (metrics t) "gossip.refutes";
      Span.event (spans t) ps.p_entry.e_span ~host:t.g_host ~tick:(now t)
        "gossip:refute"
    end
  end
  else
    match Hashtbl.find_opt t.g_table e.e_host with
    | None ->
        Hashtbl.replace t.g_table e.e_host
          {
            p_entry = e;
            p_last_heard = now t;
            p_liveness = (if e.e_status = Left then Dead else Alive);
          };
        t.g_peers_version <- t.g_peers_version + 1;
        Metrics.incr (metrics t) "gossip.members_learned";
        Span.event (spans t) e.e_span ~host:t.g_host ~tick:(now t)
          "gossip:learn"
    | Some ps ->
        let old = ps.p_entry in
        let joined = entry_join old e in
        if compare (entry_key joined) (entry_key old) <> 0 then begin
          ps.p_entry <- joined;
          if joined.e_status <> old.e_status || joined.e_replicas <> old.e_replicas
          then t.g_peers_version <- t.g_peers_version + 1;
          Metrics.incr (metrics t) "gossip.updates";
          if entry_fresher e old then
            (* Fresh evidence of life, even secondhand, resets the
               failure detector (and may refute a suspicion on the next
               refresh). *)
            ps.p_last_heard <- now t;
          if e.e_span <> Span.none && e.e_span <> old.e_span then
            Span.event (spans t) e.e_span ~host:t.g_host ~tick:(now t)
              "gossip:learn"
        end

let digest t =
  Hashtbl.fold
    (fun _ ps acc ->
      {
        d_host = ps.p_entry.e_host;
        d_incarnation = ps.p_entry.e_incarnation;
        d_heartbeat = ps.p_entry.e_heartbeat;
      }
      :: acc)
    t.g_table []

let stamp_of t name =
  Option.map
    (fun ps -> (ps.p_entry.e_incarnation, ps.p_entry.e_heartbeat))
    (Hashtbl.find_opt t.g_table name)

(* Entries of ours strictly fresher than the remote digest (or absent
   from it). *)
let fresher_than_digest t dg =
  Hashtbl.fold
    (fun name ps acc ->
      let mine = (ps.p_entry.e_incarnation, ps.p_entry.e_heartbeat) in
      let theirs =
        List.find_opt (fun d -> String.equal d.d_host name) dg
        |> Option.map (fun d -> (d.d_incarnation, d.d_heartbeat))
      in
      match theirs with
      | Some st when compare st mine >= 0 -> acc
      | _ -> ps.p_entry :: acc)
    t.g_table []

(* Hosts the remote digest knows better than we do. *)
let wanted_from_digest t dg =
  List.filter_map
    (fun d ->
      match stamp_of t d.d_host with
      | None -> Some d.d_host
      | Some mine ->
          if compare (d.d_incarnation, d.d_heartbeat) mine > 0 then
            Some d.d_host
          else None)
    dg

let send t ~dst payload =
  match find_id t dst with
  | Some id -> Sim_net.send t.g_net ~src:t.g_id ~dst:id payload
  | None -> ()

let handle t ~src:_ payload =
  match payload with
  | Gossip_syn { g_from; g_digest } ->
      Metrics.incr (metrics t) "gossip.syn_received";
      note_heard t g_from;
      let delta = fresher_than_digest t g_digest in
      let want = wanted_from_digest t g_digest in
      send t ~dst:g_from
        (Gossip_ack { g_from = t.g_host; g_delta = delta; g_want = want })
  | Gossip_ack { g_from; g_delta; g_want } ->
      Metrics.incr (metrics t) "gossip.exchanges";
      note_heard t g_from;
      List.iter (merge t) g_delta;
      let reply =
        List.filter_map
          (fun name ->
            Option.map
              (fun ps -> ps.p_entry)
              (Hashtbl.find_opt t.g_table name))
          g_want
      in
      if reply <> [] then
        send t ~dst:g_from (Gossip_ack2 { g_from = t.g_host; g_delta = reply })
  | Gossip_ack2 { g_from; g_delta } ->
      note_heard t g_from;
      List.iter (merge t) g_delta
  | _ -> ()

let create ?(config = default_config) ?seed ~obs ~net id =
  let name = Sim_net.host_name net id in
  let seed = Option.value seed ~default:(0x60551 + id) in
  let t =
    {
      g_host = name;
      g_id = id;
      g_net = net;
      g_clock = Sim_net.clock net;
      g_obs = obs;
      g_config = config;
      g_rng = Random.State.make [| seed; id |];
      g_table = Hashtbl.create 16;
      g_next_round = 0;
      g_next_due = 0;
      g_peers_version = 0;
    }
  in
  let entry =
    {
      e_host = name;
      e_incarnation = 1;
      e_heartbeat = 0;
      e_status = Member;
      e_replicas = [];
      e_cindex = 0;
      e_span = Span.none;
    }
  in
  Hashtbl.replace t.g_table name
    { p_entry = entry; p_last_heard = Clock.now t.g_clock; p_liveness = Alive };
  Sim_net.register_handler net id (fun ~src payload -> handle t ~src payload);
  t

let introduce a b =
  merge a (self b).p_entry;
  merge b (self a).p_entry

let bump_self t ?span ?status ?replicas ?cindex ~label () =
  let ps = self t in
  let e = ps.p_entry in
  let span =
    match span with
    | Some s -> s
    | None -> e.e_span
  in
  ps.p_entry <-
    {
      e with
      e_heartbeat = e.e_heartbeat + 1;
      e_status = Option.value status ~default:e.e_status;
      e_replicas = Option.value replicas ~default:e.e_replicas;
      (* The control index is a high-water mark: it only moves up, even
         if the caller hands us something stale. *)
      e_cindex = max e.e_cindex (Option.value cindex ~default:e.e_cindex);
      e_span = span;
    };
  ps.p_last_heard <- now t;
  ignore label

let set_replicas t ?(label = "member:update") ?cindex replicas =
  let replicas = List.sort_uniq compare replicas in
  let span = Span.start (spans t) ~host:t.g_host ~tick:(now t) label in
  bump_self t ~span ~replicas ?cindex ~label ();
  t.g_peers_version <- t.g_peers_version + 1;
  Metrics.incr (metrics t) "gossip.deltas";
  Log.info (fun m ->
      m "%s: membership delta %s (%d replicas)" t.g_host label
        (List.length replicas))

let leave t =
  let span = Span.start (spans t) ~host:t.g_host ~tick:(now t) "member:leave" in
  bump_self t ~span ~status:Left ~label:"member:leave" ();
  t.g_peers_version <- t.g_peers_version + 1;
  Metrics.incr (metrics t) "gossip.deltas"

let pick_partner t =
  let candidates =
    Hashtbl.fold
      (fun name ps acc ->
        if String.equal name t.g_host || ps.p_entry.e_status = Left then acc
        else ps :: acc)
      t.g_table []
    (* Hashtbl.fold order is unspecified; sort so partner choice depends
       only on the seeded PRNG. *)
    |> List.sort (fun a b -> String.compare a.p_entry.e_host b.p_entry.e_host)
  in
  if candidates = [] then None
  else
    let probe_all =
      t.g_config.dead_probe_one_in > 0
      && Random.State.int t.g_rng t.g_config.dead_probe_one_in = 0
    in
    let pool =
      if probe_all then candidates
      else
        match List.filter (fun ps -> ps.p_liveness <> Dead) candidates with
        | [] -> candidates
        | live -> live
    in
    Some (List.nth pool (Random.State.int t.g_rng (List.length pool)))

(* When can the next tick possibly do anything?  Either the round
   boundary, or a peer silently crossing a liveness threshold.  Verdict
   thresholds are exact ticks ([p_last_heard + period·missed]), and
   [p_last_heard] only moves via datagrams — which reset [g_next_due] to
   now — so a tick skipped while [now < g_next_due] is provably the
   no-op it would have been: no round due, no transition to record. *)
let compute_next_due t =
  let horizon = ref t.g_next_round in
  let cfg = t.g_config in
  Hashtbl.iter
    (fun name ps ->
      if (not (String.equal name t.g_host)) && ps.p_entry.e_status = Member then
        match ps.p_liveness with
        | Alive ->
            horizon :=
              min !horizon (ps.p_last_heard + (cfg.period * cfg.suspect_missed))
        | Suspect ->
            horizon :=
              min !horizon (ps.p_last_heard + (cfg.period * cfg.dead_missed))
        | Dead -> ())
    t.g_table;
  t.g_next_due <- !horizon

let next_due t = t.g_next_due

let peers_version t = t.g_peers_version

let tick t =
  refresh_liveness t;
  let rounds =
    if now t < t.g_next_round then 0
    else begin
      t.g_next_round <- now t + t.g_config.period;
      bump_self t ~label:"heartbeat" ();
      Metrics.incr (metrics t) "gossip.rounds";
      (match pick_partner t with
      | None -> ()
      | Some partner ->
          Metrics.incr (metrics t) "gossip.syn_sent";
          send t ~dst:partner.p_entry.e_host
            (Gossip_syn { g_from = t.g_host; g_digest = digest t }));
      1
    end
  in
  compute_next_due t;
  rounds

let liveness t name =
  if String.equal name t.g_host then Alive
  else
    match Hashtbl.find_opt t.g_table name with
    | None -> Alive
    | Some ps -> verdict t ps

let last_heard t name =
  match Hashtbl.find_opt t.g_table name with
  | Some ps when not (String.equal name t.g_host) -> Some ps.p_last_heard
  | _ -> None

let membership t =
  Hashtbl.fold (fun _ ps acc -> ps.p_entry :: acc) t.g_table []
  |> List.sort (fun a b -> String.compare a.e_host b.e_host)

let view t =
  List.map
    (fun e -> (e.e_host, e.e_incarnation, e.e_status, e.e_replicas))
    (membership t)

(* The highest control-plane committed index any entry in the table
   vouches for.  Not per-owner: committed state is global, so the best
   evidence any neighbour carries bounds how stale our control view can
   be. *)
let control_index t =
  Hashtbl.fold (fun _ ps acc -> max acc ps.p_entry.e_cindex) t.g_table 0

let replica_peers t ~alloc ~vol =
  Hashtbl.fold
    (fun _ ps acc ->
      if ps.p_entry.e_status <> Member then acc
      else
        List.fold_left
          (fun acc (a, v, r) ->
            if a = alloc && v = vol then (r, ps.p_entry.e_host) :: acc
            else acc)
          acc ps.p_entry.e_replicas)
    t.g_table []
  |> List.sort compare
